package recipes

import (
	"fmt"
	"testing"
	"time"

	"faaskeeper"
	"faaskeeper/internal/sim"
)

func harness(t *testing.T, seed int64, horizon time.Duration, fn func(s *faaskeeper.Simulation, d *faaskeeper.Deployment)) {
	t.Helper()
	s := faaskeeper.NewSimulation(seed)
	d := s.DeployFaaSKeeper(faaskeeper.DeploymentOptions{
		UserStore:      faaskeeper.StoreHybrid,
		HeartbeatEvery: 30 * time.Second,
	})
	done := false
	s.Go(func() { fn(s, d); done = true })
	s.RunFor(horizon)
	s.Shutdown()
	if !done {
		t.Fatal("scenario did not finish within the horizon")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	harness(t, 1, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		setup, _ := d.Connect("setup")
		setup.Create("/lock", nil, 0)
		inside, maxInside, total := 0, 0, 0
		wg := sim.NewWaitGroup(s.Kernel())
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("w%d", i)
			wg.Add(1)
			s.Go(func() {
				defer wg.Done()
				c, err := d.Connect(id)
				if err != nil {
					t.Errorf("%s connect: %v", id, err)
					return
				}
				defer c.Close()
				m := NewMutex(s, c, "/lock")
				for r := 0; r < 2; r++ {
					if err := m.Lock(); err != nil {
						t.Errorf("%s lock: %v", id, err)
						return
					}
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					total++
					s.Sleep(100 * time.Millisecond)
					inside--
					if err := m.Unlock(); err != nil {
						t.Errorf("%s unlock: %v", id, err)
						return
					}
				}
			})
		}
		wg.Wait()
		setup.Close()
		if maxInside != 1 {
			t.Errorf("max holders = %d", maxInside)
		}
		if total != 8 {
			t.Errorf("acquisitions = %d", total)
		}
	})
}

func TestMutexDoubleLockAndUnheldUnlock(t *testing.T) {
	harness(t, 2, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		c, _ := d.Connect("solo")
		defer c.Close()
		c.Create("/lock", nil, 0)
		m := NewMutex(s, c, "/lock")
		if err := m.Unlock(); err != ErrNotHeld {
			t.Errorf("unheld unlock: %v", err)
		}
		if err := m.Lock(); err != nil {
			t.Errorf("lock: %v", err)
		}
		if err := m.Lock(); err == nil {
			t.Error("double lock should fail")
		}
		if err := m.Unlock(); err != nil {
			t.Errorf("unlock: %v", err)
		}
	})
}

func TestElectionFailover(t *testing.T) {
	harness(t, 3, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		setup, _ := d.Connect("setup")
		setup.Create("/election", nil, 0)
		var order []string
		clients := make([]*faaskeeper.Client, 3)
		elections := make([]*Election, 3)
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("cand%d", i)
			c, err := d.Connect(id)
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			clients[i] = c
			elections[i] = NewElection(s, c, "/election", func() { order = append(order, id) })
			if err := elections[i].Campaign(); err != nil {
				t.Errorf("%s campaign: %v", id, err)
			}
			s.Sleep(time.Second)
		}
		if len(order) != 1 || order[0] != "cand0" || !elections[0].Leading() {
			t.Errorf("initial leader: %v", order)
		}
		// Crash the leader: the heartbeat evicts its session and the next
		// candidate is promoted through its predecessor watch.
		clients[0].Crash()
		s.Sleep(3 * time.Minute)
		if len(order) != 2 || order[1] != "cand1" {
			t.Errorf("failover order: %v", order)
		}
		// Graceful resignation promotes the last candidate.
		if err := elections[1].Resign(); err != nil {
			t.Errorf("resign: %v", err)
		}
		s.Sleep(time.Minute)
		if len(order) != 3 || order[2] != "cand2" {
			t.Errorf("after resignation: %v", order)
		}
		clients[1].Close()
		clients[2].Close()
		setup.Close()
	})
}

func TestBarrier(t *testing.T) {
	harness(t, 4, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		setup, _ := d.Connect("setup")
		setup.Create("/barrier", nil, 0)
		const parties = 3
		entered := 0
		afterBarrier := 0
		wg := sim.NewWaitGroup(s.Kernel())
		for i := 0; i < parties; i++ {
			id := fmt.Sprintf("p%d", i)
			delay := time.Duration(i) * 2 * time.Second
			wg.Add(1)
			s.Go(func() {
				defer wg.Done()
				c, _ := d.Connect(id)
				defer c.Close()
				b := NewBarrier(s, c, "/barrier", id, parties)
				s.Sleep(delay) // stagger arrivals
				entered++
				if err := b.Enter(); err != nil {
					t.Errorf("%s enter: %v", id, err)
					return
				}
				// Everyone must have arrived before anyone proceeds.
				if entered != parties {
					t.Errorf("%s passed the barrier with only %d arrived", id, entered)
				}
				afterBarrier++
				if err := b.Leave(); err != nil {
					t.Errorf("%s leave: %v", id, err)
				}
			})
		}
		wg.Wait()
		setup.Close()
		if afterBarrier != parties {
			t.Errorf("passed = %d", afterBarrier)
		}
	})
}

func TestDistributedQueueFIFO(t *testing.T) {
	harness(t, 5, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		setup, _ := d.Connect("setup")
		setup.Create("/queue", nil, 0)
		producer, _ := d.Connect("producer")
		consumer, _ := d.Connect("consumer")
		defer producer.Close()
		defer consumer.Close()
		q := NewQueue(s, producer, "/queue")
		cq := NewQueue(s, consumer, "/queue")
		for i := 0; i < 5; i++ {
			if err := q.Put([]byte{byte(i)}); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}
		for i := 0; i < 5; i++ {
			data, err := cq.Take()
			if err != nil {
				t.Errorf("take %d: %v", i, err)
				return
			}
			if data[0] != byte(i) {
				t.Errorf("item %d = %d (FIFO broken)", i, data[0])
			}
		}
		setup.Close()
	})
}

func TestQueueBlocksUntilProducer(t *testing.T) {
	harness(t, 6, time.Hour, func(s *faaskeeper.Simulation, d *faaskeeper.Deployment) {
		setup, _ := d.Connect("setup")
		setup.Create("/queue", nil, 0)
		consumer, _ := d.Connect("consumer")
		producer, _ := d.Connect("producer")
		defer consumer.Close()
		defer producer.Close()
		var got []byte
		var tTake time.Duration
		wg := sim.NewWaitGroup(s.Kernel())
		wg.Add(1)
		s.Go(func() {
			defer wg.Done()
			data, err := NewQueue(s, consumer, "/queue").Take()
			if err != nil {
				t.Errorf("take: %v", err)
				return
			}
			got = data
			tTake = s.Now()
		})
		s.Sleep(10 * time.Second)
		if err := NewQueue(s, producer, "/queue").Put([]byte("late")); err != nil {
			t.Errorf("put: %v", err)
		}
		wg.Wait()
		if string(got) != "late" || tTake < 10*time.Second {
			t.Errorf("take returned %q at %v", got, tTake)
		}
		setup.Close()
	})
}
