// Package recipes implements the classic ZooKeeper coordination recipes on
// top of the FaaSKeeper client: distributed mutex, leader election, double
// barrier, and a distributed FIFO queue. They exercise exactly the
// primitives the paper highlights (ephemeral + sequential nodes, one-shot
// watches, conditional versions) and work unchanged against the serverless
// deployment.
package recipes

import (
	"errors"
	"fmt"
	"sort"

	"faaskeeper"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// ErrNotHeld is returned when unlocking a mutex that is not held.
var ErrNotHeld = errors.New("recipes: lock not held")

// Mutex is the ZooKeeper lock recipe: ephemeral sequential children under
// a lock node; the smallest sequence holds the lock, every waiter watches
// only its predecessor (no herd effect).
type Mutex struct {
	sim    *faaskeeper.Simulation
	client *faaskeeper.Client
	root   string
	myNode string
}

// NewMutex creates a mutex rooted at root (the node must exist).
func NewMutex(s *faaskeeper.Simulation, c *faaskeeper.Client, root string) *Mutex {
	return &Mutex{sim: s, client: c, root: root}
}

// Lock blocks until the calling session holds the mutex.
func (m *Mutex) Lock() error {
	if m.myNode != "" {
		return fmt.Errorf("recipes: mutex already held via %s", m.myNode)
	}
	name, err := m.client.Create(m.root+"/lock-", nil,
		faaskeeper.FlagEphemeral|faaskeeper.FlagSequential)
	if err != nil {
		return err
	}
	m.myNode = name
	for {
		kids, err := m.client.GetChildren(m.root)
		if err != nil {
			return err
		}
		sort.Strings(kids)
		mine := znode.Base(m.myNode)
		idx := sort.SearchStrings(kids, mine)
		if idx >= len(kids) || kids[idx] != mine {
			m.myNode = ""
			return fmt.Errorf("recipes: lock node %s vanished", mine)
		}
		if idx == 0 {
			return nil
		}
		pred := m.root + "/" + kids[idx-1]
		gone := sim.NewFuture[struct{}](m.sim.Kernel())
		st, err := m.client.ExistsW(pred, func(faaskeeper.Notification) {
			gone.TryComplete(struct{}{})
		})
		if err != nil {
			return err
		}
		if st != nil {
			gone.Wait()
		}
	}
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() error {
	if m.myNode == "" {
		return ErrNotHeld
	}
	err := m.client.Delete(m.myNode, -1)
	m.myNode = ""
	return err
}

// Election is the leader-election recipe. Each candidate calls Campaign
// once; the callback fires when (and each time) this candidate becomes the
// leader.
type Election struct {
	sim    *faaskeeper.Simulation
	client *faaskeeper.Client
	root   string
	myNode string
	onLead func()
	led    bool
}

// NewElection creates an election rooted at root (the node must exist).
func NewElection(s *faaskeeper.Simulation, c *faaskeeper.Client, root string, onLead func()) *Election {
	return &Election{sim: s, client: c, root: root, onLead: onLead}
}

// Campaign enters the election; it returns once the candidate is either
// leading (callback invoked) or parked behind a predecessor watch.
func (e *Election) Campaign() error {
	if e.myNode == "" {
		name, err := e.client.Create(e.root+"/cand-", nil,
			faaskeeper.FlagEphemeral|faaskeeper.FlagSequential)
		if err != nil {
			return err
		}
		e.myNode = name
	}
	kids, err := e.client.GetChildren(e.root)
	if err != nil {
		return err
	}
	sort.Strings(kids)
	mine := znode.Base(e.myNode)
	idx := sort.SearchStrings(kids, mine)
	if idx == 0 {
		if !e.led {
			e.led = true
			e.onLead()
		}
		return nil
	}
	pred := e.root + "/" + kids[idx-1]
	st, err := e.client.ExistsW(pred, func(faaskeeper.Notification) {
		_ = e.Campaign() // predecessor left: re-evaluate
	})
	if err != nil {
		return err
	}
	if st == nil {
		return e.Campaign()
	}
	return nil
}

// Leading reports whether this candidate has become the leader.
func (e *Election) Leading() bool { return e.led }

// Resign leaves the election (deleting the candidate node).
func (e *Election) Resign() error {
	if e.myNode == "" {
		return nil
	}
	err := e.client.Delete(e.myNode, -1)
	e.myNode = ""
	e.led = false
	return err
}

// Barrier is the double-barrier recipe: Enter blocks until `count`
// participants arrived; Leave blocks until everyone left.
type Barrier struct {
	sim    *faaskeeper.Simulation
	client *faaskeeper.Client
	root   string
	name   string
	count  int
}

// NewBarrier creates a barrier under root for the given participant count.
func NewBarrier(s *faaskeeper.Simulation, c *faaskeeper.Client, root, name string, count int) *Barrier {
	return &Barrier{sim: s, client: c, root: root, name: name, count: count}
}

// Enter registers this participant and waits for the barrier to fill.
func (b *Barrier) Enter() error {
	if _, err := b.client.Create(b.root+"/"+b.name, nil, faaskeeper.FlagEphemeral); err != nil {
		return err
	}
	for {
		arrived := sim.NewFuture[struct{}](b.sim.Kernel())
		kids, err := b.client.GetChildrenW(b.root, func(faaskeeper.Notification) {
			arrived.TryComplete(struct{}{})
		})
		if err != nil {
			return err
		}
		if len(kids) >= b.count {
			return nil
		}
		arrived.Wait()
	}
}

// Leave removes this participant and waits until the barrier drains.
func (b *Barrier) Leave() error {
	if err := b.client.Delete(b.root+"/"+b.name, -1); err != nil && !errors.Is(err, faaskeeper.ErrNoNode) {
		return err
	}
	for {
		left := sim.NewFuture[struct{}](b.sim.Kernel())
		kids, err := b.client.GetChildrenW(b.root, func(faaskeeper.Notification) {
			left.TryComplete(struct{}{})
		})
		if err != nil {
			return err
		}
		if len(kids) == 0 {
			return nil
		}
		left.Wait()
	}
}

// Queue is the distributed FIFO queue recipe over sequential nodes.
type Queue struct {
	sim    *faaskeeper.Simulation
	client *faaskeeper.Client
	root   string
}

// NewQueue creates a queue rooted at root (the node must exist).
func NewQueue(s *faaskeeper.Simulation, c *faaskeeper.Client, root string) *Queue {
	return &Queue{sim: s, client: c, root: root}
}

// Put enqueues a payload.
func (q *Queue) Put(data []byte) error {
	_, err := q.client.Create(q.root+"/item-", data, faaskeeper.FlagSequential)
	return err
}

// Take dequeues the oldest item, blocking while the queue is empty.
func (q *Queue) Take() ([]byte, error) {
	for {
		more := sim.NewFuture[struct{}](q.sim.Kernel())
		kids, err := q.client.GetChildrenW(q.root, func(faaskeeper.Notification) {
			more.TryComplete(struct{}{})
		})
		if err != nil {
			return nil, err
		}
		if len(kids) == 0 {
			more.Wait()
			continue
		}
		sort.Strings(kids)
		for _, kid := range kids {
			path := q.root + "/" + kid
			data, _, err := q.client.GetData(path)
			if errors.Is(err, faaskeeper.ErrNoNode) {
				continue // another consumer won this item
			}
			if err != nil {
				return nil, err
			}
			if err := q.client.Delete(path, -1); errors.Is(err, faaskeeper.ErrNoNode) {
				continue
			} else if err != nil {
				return nil, err
			}
			return data, nil
		}
	}
}
