// Atomicswap: an operator rolls a service's configuration forward in two
// halves that live on DIFFERENT write shards — the endpoint map and the
// feature flags must advance together. The racy classic is two sequential
// set_data calls: a reader between them observes generation g's endpoints
// with generation g+1's flags (exactly the hazard the configwatch example
// works around by keeping everything in one node). With multi() the swap
// is one cross-shard transaction — a version guard on the rollout pointer
// plus both writes — committed atomically by the two-phase coordinator
// (package txn), so the checkers' reverse-order reads can never observe a
// torn pair. Concurrent operators race the same guard: exactly one swap
// wins each round and the loser retries against the new state.
package main

import (
	"fmt"
	"time"

	"faaskeeper"
)

const checkers = 6

// gen parses a config value's generation number ("v3" -> 3).
func gen(b []byte) int {
	n := 0
	for _, ch := range b[1:] {
		n = n*10 + int(ch-'0')
	}
	return n
}

func main() {
	sim := faaskeeper.NewSimulation(11)
	deployment := sim.DeployFaaSKeeper(faaskeeper.DeploymentOptions{
		UserStore:   faaskeeper.StoreKV,
		WriteShards: 4,
		EnableTxn:   true,
	})

	mismatches, reads := 0, 0
	sim.Go(func() {
		operator, err := deployment.Connect("operator")
		if err != nil {
			panic(err)
		}
		// /endpoints and /flags hash to different shards; /active is the
		// guarded pointer every swap must win.
		operator.Create("/endpoints", []byte("v0"), 0)
		operator.Create("/flags", []byte("v0"), 0)
		operator.Create("/active", []byte("v0"), 0)

		// Checkers continuously read both halves; a mismatch would be the
		// torn state the racy two-step pattern exposes.
		stop := false
		for i := 0; i < checkers; i++ {
			id := fmt.Sprintf("checker-%d", i)
			c, err := deployment.Connect(id)
			if err != nil {
				panic(err)
			}
			sim.Go(func() {
				for !stop {
					// Read in REVERSE write order: the transaction writes
					// /endpoints before /flags, so if a checker sees flags
					// at generation g, endpoints must already be at >= g —
					// anything less is a torn (partially applied) swap. The
					// two-step pattern breaks this constantly; one atomic
					// multi() never does.
					fl, _, err1 := c.GetData("/flags")
					ep, _, err2 := c.GetData("/endpoints")
					if err1 == nil && err2 == nil {
						reads++
						if gen(ep) < gen(fl) {
							mismatches++
							fmt.Printf("[t=%7v] %s saw TORN config: endpoints=%s flags=%s\n",
								sim.Now().Truncate(time.Millisecond), id, ep, fl)
						}
					}
					sim.Sleep(40 * time.Millisecond)
				}
			})
		}

		// The operator rolls out five generations; each swap guards on the
		// pointer's version so concurrent tooling cannot double-flip.
		for round := 1; round <= 5; round++ {
			sim.Sleep(700 * time.Millisecond)
			_, st, err := operator.GetData("/active")
			if err != nil {
				panic(err)
			}
			next := fmt.Sprintf("v%d", round)
			results, err := operator.Multi(
				faaskeeper.CheckOp("/active", st.Version),
				faaskeeper.SetDataOp("/endpoints", []byte(next), -1),
				faaskeeper.SetDataOp("/flags", []byte(next), -1),
				faaskeeper.SetDataOp("/active", []byte(next), st.Version),
			)
			if err != nil {
				fmt.Printf("[t=%7v] swap to %s lost the guard (%v), retrying next round\n",
					sim.Now().Truncate(time.Millisecond), next, err)
				continue
			}
			fmt.Printf("[t=%7v] swapped both halves to %s (txids %d/%d)\n",
				sim.Now().Truncate(time.Millisecond), next, results[1].Txid, results[2].Txid)
		}
		sim.Sleep(300 * time.Millisecond)
		stop = true
		operator.Close()
	})
	sim.Run()
	sim.Shutdown()

	fmt.Printf("\n%d paired reads, %d torn configs observed (must be 0)\n", reads, mismatches)
	fmt.Printf("total cost $%.6f pay-as-you-go\n", deployment.TotalCost())
	if mismatches != 0 {
		panic("atomic swap exposed a torn configuration")
	}
}
