// Quickstart: deploy a simulated FaaSKeeper, create and read nodes, leave
// a watch, observe the pay-as-you-go bill.
package main

import (
	"fmt"
	"time"

	"faaskeeper"
)

func main() {
	sim := faaskeeper.NewSimulation(1)
	deployment := sim.DeployFaaSKeeper(faaskeeper.DeploymentOptions{})

	sim.Go(func() {
		client, err := deployment.Connect("quickstart")
		if err != nil {
			panic(err)
		}
		defer client.Close()

		// Writes travel through the session queue, the follower function,
		// the leader queue, and the leader function before landing in the
		// user store (Algorithms 1 and 2 of the paper).
		if _, err := client.Create("/app", []byte("root"), 0); err != nil {
			panic(err)
		}
		if _, err := client.Create("/app/config", []byte("timeout=30"), 0); err != nil {
			panic(err)
		}

		// Reads bypass functions entirely: the client fetches straight
		// from cloud storage.
		data, stat, err := client.GetData("/app/config")
		if err != nil {
			panic(err)
		}
		fmt.Printf("read %q (version %d, mzxid %d) at virtual t=%v\n",
			data, stat.Version, stat.Mzxid, sim.Now())

		// Watches push one-shot notifications.
		client.GetDataW("/app/config", func(n faaskeeper.Notification) {
			fmt.Printf("watch: %s on %s (txid %d) at t=%v\n", n.Event, n.Path, n.Txid, sim.Now())
		})
		if _, err := client.SetData("/app/config", []byte("timeout=60"), stat.Version); err != nil {
			panic(err)
		}

		// Conditional updates reject stale versions.
		if _, err := client.SetData("/app/config", []byte("nope"), 0); err != nil {
			fmt.Println("stale write rejected:", err)
		}

		children, _ := client.GetChildren("/app")
		fmt.Println("children of /app:", children)

		sim.Sleep(2 * time.Second) // drain the notification
	})
	sim.Run()
	sim.Shutdown()

	fmt.Printf("\nvirtual time elapsed: %v\n", sim.Now())
	fmt.Printf("total pay-as-you-go cost: $%.6f\n", deployment.TotalCost())
	for cat, c := range deployment.CostBreakdown() {
		fmt.Printf("  %-16s $%.7f\n", cat, c)
	}
}
