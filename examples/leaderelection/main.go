// Leaderelection: the classic ZooKeeper recipe on FaaSKeeper — candidates
// create ephemeral sequential nodes and the smallest sequence number
// leads; everyone else watches its predecessor. When the leader's session
// dies, the next candidate is notified and takes over.
package main

import (
	"fmt"
	"sort"
	"time"

	"faaskeeper"
	"faaskeeper/internal/znode"
)

const electionRoot = "/election"

type candidate struct {
	id     string
	client *faaskeeper.Client
	myNode string
	sim    *faaskeeper.Simulation
	lead   func(string)
}

// campaign implements the recipe: create an ephemeral sequential node,
// then either lead or watch the predecessor.
func (c *candidate) campaign() error {
	if c.myNode == "" {
		name, err := c.client.Create(electionRoot+"/cand-", []byte(c.id), faaskeeper.FlagEphemeral|faaskeeper.FlagSequential)
		if err != nil {
			return err
		}
		c.myNode = name
	}
	kids, err := c.client.GetChildren(electionRoot)
	if err != nil {
		return err
	}
	sort.Strings(kids)
	mine := znode.Base(c.myNode)
	idx := sort.SearchStrings(kids, mine)
	if idx == 0 {
		c.lead(c.id)
		return nil
	}
	pred := electionRoot + "/" + kids[idx-1]
	// Watch the immediate predecessor only: no herd effect.
	st, err := c.client.ExistsW(pred, func(faaskeeper.Notification) {
		if err := c.campaign(); err != nil {
			fmt.Println(c.id, "re-campaign failed:", err)
		}
	})
	if err != nil {
		return err
	}
	if st == nil {
		return c.campaign() // predecessor vanished before the watch landed
	}
	fmt.Printf("[t=%7v] %s waits behind %s\n", c.sim.Now().Truncate(time.Millisecond), c.id, pred)
	return nil
}

func main() {
	sim := faaskeeper.NewSimulation(11)
	deployment := sim.DeployFaaSKeeper(faaskeeper.DeploymentOptions{
		HeartbeatEvery: 30 * time.Second, // evicts crashed leaders
	})

	var leaders []string
	sim.Go(func() {
		setup, _ := deployment.Connect("setup")
		setup.Create(electionRoot, nil, 0)

		cands := make([]*candidate, 3)
		for i := range cands {
			id := fmt.Sprintf("node-%d", i)
			cl, err := deployment.Connect(id)
			if err != nil {
				panic(err)
			}
			cands[i] = &candidate{
				id: id, client: cl, sim: sim,
				lead: func(who string) {
					fmt.Printf("[t=%7v] %s is now the leader\n", sim.Now().Truncate(time.Millisecond), who)
					leaders = append(leaders, who)
				},
			}
			if err := cands[i].campaign(); err != nil {
				panic(err)
			}
			sim.Sleep(time.Second)
		}

		// The current leader crashes; the heartbeat function notices the
		// dead session and removes its ephemeral node, promoting the next.
		sim.Sleep(5 * time.Second)
		fmt.Printf("[t=%7v] killing %s\n", sim.Now().Truncate(time.Millisecond), leaders[0])
		cands[0].client.Crash()

		sim.Sleep(3 * time.Minute)
		setup.Close()
	})
	sim.RunFor(10 * time.Minute)
	sim.Shutdown()

	fmt.Printf("\nleadership history: %v\n", leaders)
	if len(leaders) < 2 {
		fmt.Println("WARNING: failover did not happen")
	}
}
