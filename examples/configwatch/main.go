// Configwatch: the paper's motivating scenario — a fleet of services
// consumes configuration from the coordination service and reacts to
// updates through watches, while an operator occasionally rolls out new
// versions. Request volume is tiny and bursty: exactly the workload where
// a serverless deployment costs a fraction of three always-on VMs.
//
// The whole configuration lives in ONE node here, so each rollout is a
// single atomic set_data. A config split across several nodes must NOT be
// rolled out as sequential set_data calls — readers would observe torn
// half-updated states between them. See examples/atomicswap for the
// multi() transaction that swaps a multi-node (even cross-shard) config
// atomically.
package main

import (
	"fmt"
	"time"

	"faaskeeper"
	"faaskeeper/internal/costmodel"
)

const workers = 8

func main() {
	sim := faaskeeper.NewSimulation(7)
	deployment := sim.DeployFaaSKeeper(faaskeeper.DeploymentOptions{UserStore: faaskeeper.StoreHybrid})

	reloads := 0
	sim.Go(func() {
		operator, err := deployment.Connect("operator")
		if err != nil {
			panic(err)
		}
		operator.Create("/service", nil, 0)
		operator.Create("/service/config", []byte("v1"), 0)

		// Each worker watches the config node and re-arms its watch on
		// every change, as a real consumer would.
		for i := 0; i < workers; i++ {
			id := fmt.Sprintf("worker-%d", i)
			w, err := deployment.Connect(id)
			if err != nil {
				panic(err)
			}
			var arm func()
			arm = func() {
				_, _, err := w.GetDataW("/service/config", func(n faaskeeper.Notification) {
					data, _, _ := w.GetData("/service/config")
					fmt.Printf("[t=%7v] %s reloaded config %q\n", sim.Now().Truncate(time.Millisecond), id, data)
					reloads++
					arm()
				})
				if err != nil {
					panic(err)
				}
			}
			arm()
		}

		// The operator ships three config versions over an hour.
		for v := 2; v <= 4; v++ {
			sim.Sleep(20 * time.Minute)
			if _, err := operator.SetData("/service/config", []byte(fmt.Sprintf("v%d", v)), -1); err != nil {
				panic(err)
			}
			fmt.Printf("[t=%7v] operator rolled out v%d\n", sim.Now().Truncate(time.Millisecond), v)
		}
		sim.Sleep(5 * time.Second)
		operator.Close()
	})
	sim.Run()
	sim.Shutdown()

	fmt.Printf("\n%d watch-driven reloads across %d workers\n", reloads, workers)
	fmt.Printf("one hour of coordination cost $%.6f pay-as-you-go\n", deployment.TotalCost())
	m := costmodel.NewAWSModel(512)
	z := costmodel.ZooKeeperDeployment{P: m.P, Servers: 3, InstanceType: "t3.small", DiskGB: 20}
	fmt.Printf("three always-on t3.small VMs would cost $%.4f for the same hour\n", z.TotalDailyCost()/24)
}
