// Distributedlock: the ZooKeeper lock recipe on FaaSKeeper. Contenders
// enqueue ephemeral sequential nodes under the lock; the holder is the
// smallest sequence number, and each waiter watches its predecessor. The
// example runs several contenders over a shared critical section and
// verifies mutual exclusion.
package main

import (
	"fmt"
	"sort"
	"time"

	"faaskeeper"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

const lockRoot = "/locks/resource"

type mutex struct {
	c      *faaskeeper.Client
	myNode string
	s      *faaskeeper.Simulation
}

// Lock blocks until this contender owns the lock.
func (m *mutex) Lock() error {
	name, err := m.c.Create(lockRoot+"/lock-", nil, faaskeeper.FlagEphemeral|faaskeeper.FlagSequential)
	if err != nil {
		return err
	}
	m.myNode = name
	for {
		kids, err := m.c.GetChildren(lockRoot)
		if err != nil {
			return err
		}
		sort.Strings(kids)
		mine := znode.Base(m.myNode)
		idx := sort.SearchStrings(kids, mine)
		if idx == 0 {
			return nil // we hold the lock
		}
		pred := lockRoot + "/" + kids[idx-1]
		released := sim.NewFuture[struct{}](m.s.Kernel())
		st, err := m.c.ExistsW(pred, func(faaskeeper.Notification) {
			released.TryComplete(struct{}{})
		})
		if err != nil {
			return err
		}
		if st != nil {
			released.Wait() // predecessor still holds it: wait for deletion
		}
	}
}

// Unlock releases the lock.
func (m *mutex) Unlock() error {
	err := m.c.Delete(m.myNode, -1)
	m.myNode = ""
	return err
}

func main() {
	s := faaskeeper.NewSimulation(23)
	deployment := s.DeployFaaSKeeper(faaskeeper.DeploymentOptions{UserStore: faaskeeper.StoreHybrid})

	const contenders = 4
	const rounds = 3
	inCritical := 0
	maxInCritical := 0
	acquisitions := 0

	s.Go(func() {
		setup, _ := deployment.Connect("setup")
		setup.Create("/locks", nil, 0)
		setup.Create(lockRoot, nil, 0)

		done := sim.NewWaitGroup(s.Kernel())
		for i := 0; i < contenders; i++ {
			id := fmt.Sprintf("worker-%d", i)
			done.Add(1)
			s.Go(func() {
				defer done.Done()
				cl, err := deployment.Connect(id)
				if err != nil {
					panic(err)
				}
				defer cl.Close()
				m := &mutex{c: cl, s: s}
				for r := 0; r < rounds; r++ {
					if err := m.Lock(); err != nil {
						panic(id + ": " + err.Error())
					}
					inCritical++
					if inCritical > maxInCritical {
						maxInCritical = inCritical
					}
					acquisitions++
					fmt.Printf("[t=%8v] %s acquired (round %d)\n", s.Now().Truncate(time.Millisecond), id, r+1)
					s.Sleep(250 * time.Millisecond) // critical section
					inCritical--
					if err := m.Unlock(); err != nil {
						panic(id + ": unlock: " + err.Error())
					}
				}
			})
		}
		done.Wait()
		setup.Close()
	})
	s.Run()
	s.Shutdown()

	fmt.Printf("\n%d acquisitions, max concurrent holders = %d\n", acquisitions, maxInCritical)
	if maxInCritical != 1 || acquisitions != contenders*rounds {
		fmt.Println("MUTUAL EXCLUSION VIOLATED")
	} else {
		fmt.Println("mutual exclusion held")
	}
}
