// Package faaskeeper is the public façade of the FaaSKeeper reproduction:
// a serverless coordination service with ZooKeeper's consistency model and
// interface, rebuilt from the HPDC 2024 paper "FaaSKeeper: Learning from
// Building Serverless Services with ZooKeeper as an Example" on top of a
// deterministic simulation of the cloud substrate.
//
// A minimal session looks like this:
//
//	sim := faaskeeper.NewSimulation(1)
//	deployment := sim.DeployFaaSKeeper(faaskeeper.DeploymentOptions{})
//	sim.Go(func() {
//		client, _ := deployment.Connect("session-1")
//		defer client.Close()
//		client.Create("/config", []byte("v1"), 0)
//		data, stat, _ := client.GetData("/config")
//		_ = data
//		_ = stat
//	})
//	sim.Run()
//
// Everything — functions, queues, storage, clients — runs in virtual time
// inside the simulation, so a full day of traffic executes in milliseconds
// and runs are reproducible from the seed.
package faaskeeper

import (
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/zk"
	"faaskeeper/internal/znode"
)

// Re-exported data-model types.
type (
	// Stat is a node's metadata, as in ZooKeeper.
	Stat = znode.Stat
	// Flags control node creation.
	Flags = znode.Flags
	// Notification is a watch event delivered to callbacks.
	Notification = core.Notification
	// WatchCallback receives one-shot watch events.
	WatchCallback = fkclient.WatchCallback
)

// Node creation flags.
const (
	FlagEphemeral  = znode.FlagEphemeral
	FlagSequential = znode.FlagSequential
)

// Client-facing errors.
var (
	ErrNodeExists  = core.ErrNodeExists
	ErrNoNode      = core.ErrNoNode
	ErrBadVersion  = core.ErrBadVersion
	ErrNotEmpty    = core.ErrNotEmpty
	ErrTxnAborted  = core.ErrTxnAborted
	ErrTxnDisabled = core.ErrTxnDisabled
)

// Transaction types (Client.Multi; requires DeploymentOptions.EnableTxn).
type (
	// MultiOp is one sub-operation of a transaction.
	MultiOp = txn.Op
	// MultiResult is one sub-operation's outcome.
	MultiResult = txn.Result
)

// Transaction sub-op constructors, mirroring ZooKeeper's multi vocabulary.
var (
	// CreateOp builds a create sub-op.
	CreateOp = txn.Create
	// SetDataOp builds a set_data sub-op (version -1 matches any).
	SetDataOp = txn.SetData
	// DeleteOp builds a delete sub-op (version -1 matches any).
	DeleteOp = txn.Delete
	// CheckOp builds a version guard (-1 checks bare existence).
	CheckOp = txn.Check
)

// Simulation owns the virtual-time kernel everything runs in.
type Simulation struct {
	k *sim.Kernel
}

// NewSimulation creates a deterministic simulation with the given seed.
func NewSimulation(seed int64) *Simulation {
	return &Simulation{k: sim.NewKernel(seed)}
}

// Kernel exposes the underlying simulation kernel for advanced callers.
func (s *Simulation) Kernel() *sim.Kernel { return s.k }

// Go spawns a simulated process (client code must run inside one).
func (s *Simulation) Go(fn func()) { s.k.Go("user", fn) }

// Run executes the simulation until no work remains and returns the final
// virtual time.
func (s *Simulation) Run() time.Duration { return s.k.Run() }

// RunFor executes at most d of virtual time (use it when a deployment has
// recurring work such as a scheduled heartbeat).
func (s *Simulation) RunFor(d time.Duration) time.Duration { return s.k.RunFor(d) }

// Shutdown releases all parked process goroutines.
func (s *Simulation) Shutdown() { s.k.Shutdown() }

// Sleep pauses the calling process for d of virtual time.
func (s *Simulation) Sleep(d time.Duration) { s.k.Sleep(d) }

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.k.Now() }

// StoreKind selects the user data store backend.
type StoreKind = core.StoreKind

// User store backends.
const (
	StoreObject = core.StoreObject // S3-like (the paper's base setup)
	StoreKV     = core.StoreKV     // DynamoDB-like
	StoreHybrid = core.StoreHybrid // small nodes in KV, large in objects
	StoreMem    = core.StoreMem    // Redis-like cache on a VM
)

// CacheMode selects the read-path cache tier.
type CacheMode = core.CacheMode

// Cache tiers.
const (
	CacheOff      = core.CacheOff      // reads hit the user store directly
	CacheRegional = core.CacheRegional // shared per-region cache node
	CacheTwoLevel = core.CacheTwoLevel // client cache + regional node
)

// DeploymentOptions configures a FaaSKeeper deployment.
type DeploymentOptions struct {
	// GCP deploys the Google Cloud profile instead of AWS.
	GCP bool
	// UserStore picks the read path's storage backend (default object
	// storage, as in the paper's base AWS deployment).
	UserStore StoreKind
	// FunctionMemoryMB sizes the follower and leader functions (default 2048).
	FunctionMemoryMB int
	// ARM runs the functions on Graviton-like sandboxes.
	ARM bool
	// HeartbeatEvery enables the scheduled heartbeat function.
	HeartbeatEvery time.Duration
	// ExtraRegions adds user-store replicas updated in parallel.
	ExtraRegions []string
	// CollectPhases records per-phase latency samples.
	CollectPhases bool
	// WriteShards partitions the leader write pipeline by znode subtree
	// into N ordered queues with one serialized leader instance each.
	// Default 1 — the paper-faithful single totally-ordered write path.
	// See the exp "sharding" experiment for the scaling behavior.
	WriteShards int
	// BatchWrites enables the leader's batching distributor: within one
	// queue batch, user-store writes to the same node fold into the
	// final state, parents get one child-list read-modify-write per
	// batch, and cache invalidations coalesce into one record per
	// touched path. Default false — the paper's per-message
	// distribution. See the "batching" experiment for the behavior.
	BatchWrites bool
	// MaxBatch caps how many queued messages one distributor flush may
	// fold (0 = the whole invocation batch). Only used with BatchWrites.
	MaxBatch int
	// CacheMode deploys the read-path cache tier in front of the user
	// store: a push-invalidated regional cache node (CacheRegional),
	// optionally combined with a per-session client cache
	// (CacheTwoLevel). Default CacheOff — the paper's direct read path.
	// See the "caching" experiment for the latency/cost behavior.
	CacheMode CacheMode
	// CacheCapacityB sizes each regional cache node (default 64 MB).
	CacheCapacityB int
	// ClientCacheCapacityB sizes each session's client cache in
	// CacheTwoLevel mode (default 256 kB).
	ClientCacheCapacityB int
	// CacheTTL bounds client-cache staleness (default 5 s).
	CacheTTL time.Duration
	// EnableTxn enables ZooKeeper-style multi() transactions: atomic
	// multi-op commits via Client.Multi, coordinated across sharded
	// leader pipelines with a two-phase commit where the ops span shards
	// (single-shard multis take a fast path with no 2PC overhead).
	// Default false — multi() is rejected and the paper pipeline is
	// untouched. See the "txn" experiment for commit latency and abort
	// behavior versus participant-shard count.
	EnableTxn bool
	// DynamicShards turns the fixed WriteShards route into a live,
	// epoch-versioned shard map that can be resharded at runtime —
	// Deployment.GrowShards/ShrinkShards move consistent-hash slots,
	// SplitSubtree/MergeSubtree re-route a hot subtree at depth 2 —
	// without stopping the pipeline. Default false — the static route.
	// See the "reshard" experiment for the recovery behavior.
	DynamicShards bool
	// AutoShard enables the shard auto-scaling policy (implies
	// DynamicShards): sustained queue depth splits the dominant hot
	// subtree or grows the shard count; idle splits merge back. Note the
	// policy monitor runs for the lifetime of the simulation — drive
	// kernels hosting it with RunFor, like deployments with a heartbeat.
	AutoShard AutoShard
	// CacheWarmK prefetches the regional cache node's K hottest entries
	// into each new session's client cache on connect (CacheTwoLevel
	// only), removing the first-read miss penalty of short-lived
	// sessions. Default 0 — cold connects, as in the paper.
	CacheWarmK int
	// WireCodec selects the hot-path message serialization: "gob"
	// (default, paper-faithful — byte-identical golden trace) or
	// "binary" (the zero-copy varint codec of internal/wire: pooled
	// encode buffers, reflection-free decoding, and the client's
	// cached-read decode memo). Same protocol semantics either way.
	WireCodec string
	// Telemetry enables the virtual-time observability subsystem
	// (package obs): a causal span per request covering every pipeline
	// stage, plus counters/gauges/histograms keyed by component, shard,
	// and region. Spans are pure bookkeeping — virtual timing and wire
	// bytes are identical either way — and with Telemetry off (the
	// default) every instrumentation point is a zero-allocation no-op.
	// Export via Deployment.Obs: Chrome trace-event JSON
	// (obs.WriteChromeTrace), a Prometheus-style text dump
	// (obs.WritePrometheus), or a per-request span log
	// (obs.WriteSpanLog). See the "telemetry" experiment.
	Telemetry bool
	// CostAccounting enables per-request dollar attribution: every
	// pay-as-you-go charge a request causes is billed to it at the
	// instant the charge occurs, aggregated into (category, shard,
	// region) cost cells with $/1M-requests gauges, and — when Telemetry
	// is also on — folded into each request's spans so per-stage costs
	// telescope to the exact request total. Default false: every
	// attribution point is a no-op and virtual timing is untouched. See
	// the "cost" experiment and Deployment.Obs().Cost.
	CostAccounting bool
	// CostBudgetUSDPerHour arms the ledger's burn-rate monitor: spend is
	// evaluated over tumbling windows of virtual time and a window
	// exceeding this hourly rate emits a breach gauge and a "cost.breach"
	// span. 0 disarms (the default). Requires CostAccounting.
	CostBudgetUSDPerHour float64
	// CostBudgetWindow is the burn-rate evaluation window (default 1 s of
	// virtual time).
	CostBudgetWindow time.Duration
}

// AutoShard is the shard auto-scaling policy (DeploymentOptions.AutoShard).
type AutoShard = core.AutoShard

// Deployment is a running FaaSKeeper instance.
type Deployment struct {
	sim  *Simulation
	core *core.Deployment
}

// DeployFaaSKeeper provisions storage, queues, and the four functions.
func (s *Simulation) DeployFaaSKeeper(opts DeploymentOptions) *Deployment {
	profile := cloud.AWSProfile()
	if opts.GCP {
		profile = cloud.GCPProfile()
	}
	cfg := core.Config{
		Profile:              profile,
		UserStore:            opts.UserStore,
		FollowerMemMB:        opts.FunctionMemoryMB,
		LeaderMemMB:          opts.FunctionMemoryMB,
		HeartbeatEvery:       opts.HeartbeatEvery,
		CollectPhases:        opts.CollectPhases,
		WriteShards:          opts.WriteShards,
		BatchWrites:          opts.BatchWrites,
		MaxBatch:             opts.MaxBatch,
		CacheMode:            opts.CacheMode,
		CacheCapacityB:       opts.CacheCapacityB,
		ClientCacheCapacityB: opts.ClientCacheCapacityB,
		CacheTTL:             opts.CacheTTL,
		EnableTxn:            opts.EnableTxn,
		DynamicShards:        opts.DynamicShards,
		AutoShard:            opts.AutoShard,
		CacheWarmK:           opts.CacheWarmK,
		WireCodec:            opts.WireCodec,
		Telemetry:            opts.Telemetry,
		CostAccounting:       opts.CostAccounting,
		CostBudgetUSDPerHour: opts.CostBudgetUSDPerHour,
		CostBudgetWindow:     opts.CostBudgetWindow,
	}
	if opts.ARM {
		cfg.Arch = faas.ARM
	}
	for _, r := range opts.ExtraRegions {
		cfg.ExtraRegions = append(cfg.ExtraRegions, cloud.Region(r))
	}
	return &Deployment{sim: s, core: core.NewDeployment(s.k, cfg)}
}

// Core exposes the underlying deployment for experiments and inspection.
func (d *Deployment) Core() *core.Deployment { return d.core }

// GrowShards grows a dynamic deployment to n shard queues through the
// live reshard protocol (must be called from inside a simulated process).
func (d *Deployment) GrowShards(n int) error { return d.core.GrowShards(n) }

// ShrinkShards retires trailing shard queues down to n (not below the
// initial WriteShards).
func (d *Deployment) ShrinkShards(n int) error { return d.core.ShrinkShards(n) }

// SplitSubtree re-routes a hot top-level subtree (e.g. "/hot") over ways
// new shard queues, hashing the second path segment so parents and
// children below the subtree root stay colocated.
func (d *Deployment) SplitSubtree(prefix string, ways int) error {
	return d.core.SplitSubtree(prefix, ways)
}

// MergeSubtree folds a split subtree back onto its pre-split route.
func (d *Deployment) MergeSubtree(prefix string) error { return d.core.MergeSubtree(prefix) }

// ShardMapInfo renders the live routing table (empty on static
// deployments). Must be called from inside a simulated process.
func (d *Deployment) ShardMapInfo() string {
	m := d.core.LoadShardMap(cloud.ClientCtx(d.core.Cfg.Profile.Home))
	if m == nil {
		return "static sharding (DynamicShards off)"
	}
	return m.String()
}

// Obs returns the deployment's telemetry hub — the request tracer and the
// component metrics registry (inert unless DeploymentOptions.Telemetry).
func (d *Deployment) Obs() *obs.Hub { return d.core.Obs }

// TotalCost returns the accumulated pay-as-you-go dollars.
func (d *Deployment) TotalCost() float64 { return d.core.Env.Meter.Total() }

// CostBreakdown returns the per-service dollars.
func (d *Deployment) CostBreakdown() map[string]float64 { return d.core.Env.Meter.Snapshot() }

// Client is a FaaSKeeper session handle.
type Client = fkclient.Client

// Connect opens a session in the deployment's home region. Must be called
// from inside a simulated process (Simulation.Go).
func (d *Deployment) Connect(sessionID string) (*Client, error) {
	return fkclient.Connect(d.core, sessionID, d.core.Cfg.Profile.Home)
}

// ConnectFrom opens a session from a specific region, reading from the
// closest user-store replica.
func (d *Deployment) ConnectFrom(sessionID, region string) (*Client, error) {
	return fkclient.Connect(d.core, sessionID, cloud.Region(region))
}

// ZKEnsemble is the baseline ZooKeeper deployment used for comparisons.
type ZKEnsemble struct {
	sim *Simulation
	ens *zk.Ensemble
}

// ZKClient is a baseline ZooKeeper session.
type ZKClient = zk.Client

// DeployZooKeeper starts an n-server baseline ensemble (n defaults to 3).
func (s *Simulation) DeployZooKeeper(n int) *ZKEnsemble {
	env := cloud.NewEnv(s.k, cloud.AWSProfile())
	return &ZKEnsemble{sim: s, ens: zk.NewEnsemble(env, zk.Config{Servers: n})}
}

// Ensemble exposes the underlying ensemble.
func (z *ZKEnsemble) Ensemble() *zk.Ensemble { return z.ens }

// Connect opens a session against server idx.
func (z *ZKEnsemble) Connect(serverIdx int) (*ZKClient, error) {
	return zk.Connect(z.ens, serverIdx)
}
