package obs

import (
	"math"
	"sort"

	"faaskeeper/internal/sim"
)

// Cost accounting works in integer picodollars (1 pd = 1e-12 USD) so that
// per-request attribution is exact: integer sums are order-independent,
// whereas summing the float charges of interleaved requests in different
// orders drifts in the last bits and breaks the conservation invariant
// (sum of span costs == request cost == registry delta). One convenient
// identity falls out: a category's picodollars-per-op IS its micro-dollars
// per million ops, so the $/1M gauges are a plain integer division.
const PdPerUSD = 1e12

// USDToPd converts a dollar charge to picodollars, rounding half away
// from zero (charges are tiny positive floats; rounding keeps the ledger
// within half a picodollar of the float meter per charge).
func USDToPd(usd float64) int64 { return int64(math.Round(usd * PdPerUSD)) }

// PdToUSD converts picodollars back to dollars.
func PdToUSD(pd int64) float64 { return float64(pd) / PdPerUSD }

// costCell aggregates one billing category refined by shard and region.
// The registry keys are precomputed at cell creation so the per-charge
// gauge mirror costs two map stores and no string building.
type costCell struct {
	pd, n    int64
	pdKey    Key // gauge: total picodollars
	perOpKey Key // gauge: pd/op == micro-USD per 1M ops
	opsKey   Key // counter: billed operations (telemetry-gated)
}

type costKey struct {
	cat    string
	shard  int
	region string
}

// Budget declares a spend target for the burn-rate monitor: a dollars-
// per-hour budget evaluated over tumbling windows of virtual time.
type Budget struct {
	USDPerHour float64
	Window     sim.Time // default 1 virtual second
}

// CostLedger is the always-on aggregation side of cost attribution: every
// charge made under an attribution sink lands here exactly once, split
// into (category, shard, region) cells, per-trace totals, and a grand
// total — all in picodollars. Cells mirror into the registry's gauges
// (which, like the AutoShard queue-depth signals, function without
// Telemetry), so Prometheus dumps carry cost series on any deployment
// with cost accounting enabled. A disabled ledger is a nil-check no-op.
type CostLedger struct {
	enabled bool
	reg     *Registry
	tracer  *Tracer
	clock   sim.Clock

	cells   map[costKey]*costCell
	byTrace map[int64]int64
	totalPd int64
	sysPd   int64 // trace-0 bucket: batch remainders, untraced requests

	budget     Budget
	budgetPdHr int64
	winStart   sim.Time
	winPd      int64
	breaches   int64
}

// NewCostLedger builds a ledger over the registry (gauge mirror) and
// tracer (breach events). A disabled ledger records nothing.
func NewCostLedger(clock sim.Clock, reg *Registry, tracer *Tracer, enabled bool) *CostLedger {
	return &CostLedger{
		enabled: enabled,
		reg:     reg,
		tracer:  tracer,
		clock:   clock,
		cells:   map[costKey]*costCell{},
		byTrace: map[int64]int64{},
	}
}

// Enabled reports whether the ledger records charges.
func (l *CostLedger) Enabled() bool { return l != nil && l.enabled }

// SetBudget arms the burn-rate monitor. Zero USDPerHour disarms it.
func (l *CostLedger) SetBudget(b Budget) {
	if l == nil {
		return
	}
	if b.Window <= 0 {
		b.Window = sim.Time(1e9) // 1 virtual second
	}
	l.budget = b
	l.budgetPdHr = USDToPd(b.USDPerHour)
	l.winStart = l.clock.Now()
	l.winPd = 0
}

// Charge records one metered charge in the category's cell and the grand
// total, mirrors the cell into the registry, advances the budget window,
// and returns the charge in picodollars — the exact amount the caller
// must then distribute with Attribute so the ledger stays conserved.
func (l *CostLedger) Charge(cat string, shard int, region string, usd float64, n int64) int64 {
	if !l.Enabled() {
		return 0
	}
	pd := USDToPd(usd)
	ck := costKey{cat: cat, shard: shard, region: region}
	c := l.cells[ck]
	if c == nil {
		c = &costCell{
			pdKey:    Key{Component: "cost_pd", Name: cat, Shard: shard, Region: region},
			perOpKey: Key{Component: "cost_per1m", Name: cat, Shard: shard, Region: region},
			opsKey:   Key{Component: "cost_ops", Name: cat, Shard: shard, Region: region},
		}
		l.cells[ck] = c
	}
	c.pd += pd
	c.n += n
	l.totalPd += pd
	l.reg.SetGauge(c.pdKey, c.pd)
	if c.n > 0 {
		l.reg.SetGauge(c.perOpKey, c.pd/c.n)
	}
	l.reg.Inc(c.opsKey, n)
	l.burn(pd)
	return pd
}

// Attribute assigns pd picodollars of an already-Charged amount to a
// trace (0 = the system bucket: untraced requests, batch-amortization
// remainders). Callers must attribute exactly what Charge returned,
// split however they like — the conservation invariant is
// total == system + sum over traces.
func (l *CostLedger) Attribute(trace, pd int64) {
	if !l.Enabled() || pd == 0 {
		return
	}
	if trace == 0 {
		l.sysPd += pd
		return
	}
	l.byTrace[trace] += pd
}

// burn advances the tumbling budget window and emits a breach when the
// window's spend rate exceeds the declared budget: a counter-like gauge,
// a burn-rate gauge (micro-USD/hour), and an instant span in the trace
// log when telemetry records.
func (l *CostLedger) burn(pd int64) {
	if l.budgetPdHr <= 0 {
		return
	}
	now := l.clock.Now()
	elapsed := now - l.winStart
	if elapsed < l.budget.Window {
		l.winPd += pd
		return
	}
	// pd/hour over the closed window; micro-USD/hour fits the gauge.
	ratePdHr := int64(float64(l.winPd) * float64(sim.Time(3600*1e9)) / float64(elapsed))
	l.reg.SetGauge(Key{Component: "cost", Name: "burn_usd_per_hour_micro"}, ratePdHr/1e6)
	if ratePdHr > l.budgetPdHr {
		l.breaches++
		l.reg.SetGauge(Key{Component: "cost", Name: "budget_breaches"}, l.breaches)
		l.tracer.End(l.tracer.Start(0, SpanCostBreach, "", 0, ""))
	}
	l.winStart = now
	l.winPd = pd
}

// TotalPd returns the grand total in picodollars.
func (l *CostLedger) TotalPd() int64 {
	if l == nil {
		return 0
	}
	return l.totalPd
}

// TotalUSD returns the grand total in dollars.
func (l *CostLedger) TotalUSD() float64 { return PdToUSD(l.TotalPd()) }

// TracePd returns one trace's attributed total in picodollars — the
// client-billed cost of that request.
func (l *CostLedger) TracePd(trace int64) int64 {
	if l == nil {
		return 0
	}
	return l.byTrace[trace]
}

// TraceUSD returns one trace's attributed total in dollars.
func (l *CostLedger) TraceUSD(trace int64) float64 { return PdToUSD(l.TracePd(trace)) }

// SystemPd returns the trace-0 bucket: charges attributed to the pipeline
// rather than any single request.
func (l *CostLedger) SystemPd() int64 {
	if l == nil {
		return 0
	}
	return l.sysPd
}

// AttributedPd returns system + sum of per-trace totals. On a conserved
// ledger it equals TotalPd exactly.
func (l *CostLedger) AttributedPd() int64 {
	if l == nil {
		return 0
	}
	s := l.sysPd
	for _, pd := range l.byTrace {
		s += pd
	}
	return s
}

// Traces lists the trace ids with attributed cost, sorted.
func (l *CostLedger) Traces() []int64 {
	if l == nil {
		return nil
	}
	out := make([]int64, 0, len(l.byTrace))
	for tr := range l.byTrace {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CategoryPd returns the accumulated picodollars of one (category, shard,
// region) cell.
func (l *CostLedger) CategoryPd(cat string, shard int, region string) int64 {
	if l == nil {
		return 0
	}
	c := l.cells[costKey{cat: cat, shard: shard, region: region}]
	if c == nil {
		return 0
	}
	return c.pd
}

// Breaches returns how many budget windows exceeded the burn-rate target.
func (l *CostLedger) Breaches() int64 {
	if l == nil {
		return 0
	}
	return l.breaches
}

// Reset clears all cells, per-trace totals, and the budget window (the
// experiment warm-up boundary). Enabled state and budget are preserved.
func (l *CostLedger) Reset() {
	if l == nil {
		return
	}
	l.cells = map[costKey]*costCell{}
	l.byTrace = map[int64]int64{}
	l.totalPd = 0
	l.sysPd = 0
	l.winPd = 0
	l.breaches = 0
	l.winStart = l.clock.Now()
}
