package obs

import (
	"bytes"
	"testing"

	"faaskeeper/internal/sim"
)

// TestCostLedgerConservation exercises the ledger's core identity: every
// Charge lands in exactly one cell and the grand total, and attributing
// exactly what Charge returned keeps AttributedPd == TotalPd regardless
// of how the picodollars are split across traces.
func TestCostLedgerConservation(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry(false)
	l := NewCostLedger(clk, reg, NewTracer(clk, reg, false), true)

	pd := l.Charge("kv.write", 1, "us", 1.25e-6, 1)
	l.Attribute(42, pd)
	pd = l.Charge("queue.msg", 0, "", 4e-7, 1)
	l.Attribute(42, pd/2)
	l.Attribute(43, pd-pd/2)
	pd = l.Charge("faas.follower", 1, "", 7.7e-7, 1)
	l.Attribute(0, pd) // untraced: the system bucket

	if l.AttributedPd() != l.TotalPd() {
		t.Fatalf("attributed %d pd != total %d pd", l.AttributedPd(), l.TotalPd())
	}
	if got := l.CategoryPd("kv.write", 1, "us"); got != USDToPd(1.25e-6) {
		t.Fatalf("kv.write cell = %d pd", got)
	}
	if l.SystemPd() != USDToPd(7.7e-7) {
		t.Fatalf("system bucket = %d pd", l.SystemPd())
	}
	if got := len(l.Traces()); got != 2 {
		t.Fatalf("traces with cost = %d, want 2", got)
	}
	// The gauge mirror carries the same totals the accessors report.
	if g := reg.Gauge(Key{Component: "cost_pd", Name: "kv.write", Shard: 1, Region: "us"}); g != l.CategoryPd("kv.write", 1, "us") {
		t.Fatalf("cost_pd gauge = %d", g)
	}
	// pd per op is micro-USD per million ops by construction.
	if g := reg.Gauge(Key{Component: "cost_per1m", Name: "kv.write", Shard: 1, Region: "us"}); g != USDToPd(1.25e-6) {
		t.Fatalf("cost_per1m gauge = %d", g)
	}
}

// TestCostDisabledAllocatesNothing locks the off-path budget for the cost
// subsystem: a disabled ledger and tracer must make every attribution
// call a zero-allocation early return.
func TestCostDisabledAllocatesNothing(t *testing.T) {
	clk := &fakeClock{}
	h := NewHub(clk, false, false)
	if allocs := testing.AllocsPerRun(200, func() {
		pd := h.Cost.Charge("kv.write", 1, "us", 1e-6, 1)
		h.Cost.Attribute(7, pd)
		h.Tracer.AddCost(7, 0, pd)
	}); allocs != 0 {
		t.Fatalf("disabled cost path allocated %.1f/op, want 0", allocs)
	}
}

// TestCostSpanAttribution checks the span-level landing rules: an open
// concurrent leg absorbs its own charges, stage charges land on the
// current stage, and post-finish charges park and join the root at
// export — so the per-trace span sum stays exact.
func TestCostSpanAttribution(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry(true)
	tr := NewTracer(clk, reg, true)
	l := NewCostLedger(clk, reg, tr, true)
	trace := TraceOf("s", 1)

	tr.StartRequest(trace, "set_data", "/a")
	tr.Stage(trace, StageCommit)
	l.Attribute(trace, 100)
	tr.AddCost(trace, 0, 100) // lands on the open commit stage
	leg := tr.Start(trace, SpanStoreWrite, "/a", 1, "us")
	l.Attribute(trace, 40)
	tr.AddCost(trace, leg, 40) // lands on the store-write leg
	tr.End(leg)
	tr.Finish(trace)
	l.Attribute(trace, 7)
	tr.AddCost(trace, 0, 7) // late: parks, joins the root at export

	var sum int64
	var rootPd, stagePd, legPd int64
	for _, sp := range tr.Spans() {
		sum += sp.CostPd
		switch sp.Name {
		case "set_data":
			rootPd = sp.CostPd
		case StageCommit:
			stagePd = sp.CostPd
		case SpanStoreWrite:
			legPd = sp.CostPd
		}
	}
	if stagePd != 100 || legPd != 40 || rootPd != 7 {
		t.Fatalf("span costs (stage, leg, root) = (%d, %d, %d), want (100, 40, 7)", stagePd, legPd, rootPd)
	}
	if sum != l.TracePd(trace) {
		t.Fatalf("span cost sum %d != ledger trace total %d", sum, l.TracePd(trace))
	}

	// The Chrome export carries the dollars alongside the timings.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("cost_usd")) {
		t.Fatal("chrome trace missing cost_usd args")
	}
}

// TestCostBudgetBreach drives the tumbling-window burn monitor past its
// declared rate and checks the breach surfaces everywhere it should: the
// counter accessor, the gauge, and (with telemetry on) an instant span.
func TestCostBudgetBreach(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry(true)
	tr := NewTracer(clk, reg, true)
	l := NewCostLedger(clk, reg, tr, true)
	l.SetBudget(Budget{USDPerHour: 1e-3, Window: sim.Time(1e9)})

	// $2e-6 in the first second is a $7.2e-3/hour burn — 7x the budget.
	l.Attribute(0, l.Charge("kv.write", 0, "", 2e-6, 1))
	clk.t = sim.Time(15e8) // 1.5 s: the next charge closes the window
	l.Attribute(0, l.Charge("kv.write", 0, "", 1e-9, 1))

	if l.Breaches() != 1 {
		t.Fatalf("breaches = %d, want 1", l.Breaches())
	}
	if reg.Gauge(Key{Component: "cost", Name: "budget_breaches"}) != 1 {
		t.Fatal("breach gauge not set")
	}
	found := false
	for _, sp := range tr.Spans() {
		if sp.Name == SpanCostBreach {
			found = true
		}
	}
	if !found {
		t.Fatal("no cost.breach instant span recorded")
	}

	// Under budget: a slow second must not breach.
	l.Reset()
	clk.t += sim.Time(1e9)
	l.Attribute(0, l.Charge("kv.write", 0, "", 1e-9, 1))
	clk.t += sim.Time(2e9)
	l.Attribute(0, l.Charge("kv.write", 0, "", 1e-9, 1))
	if l.Breaches() != 0 {
		t.Fatalf("under-budget windows breached %d times", l.Breaches())
	}
}
