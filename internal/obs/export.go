package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one complete ("X") event of the Chrome trace-event JSON
// format, loadable into chrome://tracing or Perfetto. Timestamps and
// durations are microseconds of virtual time.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t int64) float64 { return float64(t) / 1e3 }

// WriteChromeTrace renders spans as a Chrome trace-event JSON array. Each
// trace becomes one thread row (tid = trace id), so a request reads as a
// horizontal band of its stages with concurrent legs stacked beneath;
// trace-0 pipeline spans share the 0 row.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	evs := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		cat := "stage"
		if sp.Parent == 0 && sp.Trace != 0 {
			cat = "request"
		}
		var args map[string]any
		if sp.Path != "" || sp.Region != "" || sp.Shard != 0 || sp.CostPd != 0 {
			args = map[string]any{}
			if sp.Path != "" {
				args["path"] = sp.Path
			}
			if sp.Region != "" {
				args["region"] = sp.Region
			}
			if sp.Shard != 0 {
				args["shard"] = sp.Shard
			}
			if sp.CostPd != 0 {
				args["cost_usd"] = PdToUSD(sp.CostPd)
			}
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name, Cat: cat, Ph: "X",
			Ts: usec(int64(sp.Start)), Dur: usec(int64(sp.End - sp.Start)),
			Pid: 1, Tid: sp.Trace, Args: args,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	b, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ValidateChromeTrace parses a Chrome trace-event JSON blob and reports
// the distinct event names it carries — the self-check the CI smoke and
// the telemetry experiment run over their own exports.
func ValidateChromeTrace(b []byte) (names map[string]int, err error) {
	var evs []chromeEvent
	if err := json.Unmarshal(b, &evs); err != nil {
		return nil, fmt.Errorf("obs: invalid chrome trace: %w", err)
	}
	names = map[string]int{}
	for _, ev := range evs {
		if ev.Ph != "X" || ev.Dur < 0 {
			return nil, fmt.Errorf("obs: malformed event %q (ph=%q dur=%v)", ev.Name, ev.Ph, ev.Dur)
		}
		names[ev.Name]++
	}
	return names, nil
}

// WriteSpanLog renders one span per line as JSON, ordered by (trace,
// start, id): the structured per-request history a linearizability
// checker can consume.
func WriteSpanLog(w io.Writer, spans []Span) error {
	out := make([]Span, len(spans))
	copy(out, spans)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	enc := json.NewEncoder(w)
	for _, sp := range out {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a key into a Prometheus metric name:
// fk_<component>_<name> with dots and dashes folded to underscores.
func promName(k Key) string {
	mangle := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			default:
				return '_'
			}
		}, s)
	}
	return "fk_" + mangle(k.Component) + "_" + mangle(k.Name)
}

func promLabels(k Key, extra string) string {
	var parts []string
	if k.Shard != 0 {
		parts = append(parts, fmt.Sprintf("shard=%q", fmt.Sprint(k.Shard)))
	}
	if k.Region != "" {
		parts = append(parts, fmt.Sprintf("region=%q", k.Region))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters and gauges as-is, histograms as quantile summaries
// (milliseconds) with _count lines.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, k := range r.CounterKeys() {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n",
			name, name, promLabels(k, ""), r.Counter(k)); err != nil {
			return err
		}
	}
	for _, k := range r.GaugeKeys() {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n",
			name, name, promLabels(k, ""), r.Gauge(k)); err != nil {
			return err
		}
	}
	for _, k := range r.HistKeys() {
		s := r.Hist(k)
		if s == nil || s.N() == 0 {
			continue
		}
		name := promName(k) + "_ms"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range []float64{50, 90, 99} {
			if _, err := fmt.Fprintf(w, "%s%s %.4f\n",
				name, promLabels(k, fmt.Sprintf("quantile=%q", fmt.Sprintf("%.2f", q/100))),
				s.Percentile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(k, ""), s.N()); err != nil {
			return err
		}
	}
	return nil
}
