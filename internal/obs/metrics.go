package obs

import (
	"sort"

	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

// Key identifies one instrument: a (component, name) pair refined by the
// shard and region it measures (zero values when not applicable). Being a
// comparable struct, map lookups with it never allocate — the hot path
// pays a hash, not a garbage string key.
type Key struct {
	Component string
	Name      string
	Shard     int
	Region    string
}

// Registry holds counters, gauges, and histograms for every component.
//
// Counters and histograms are hot-path instruments: they record only when
// the registry is enabled (Config.Telemetry) and are strict no-ops —
// zero allocation, zero map traffic — when it is not. Gauges are
// control-plane instruments sampled at low rate (the AutoShard monitor's
// queue depths): they always function, so policy decisions can be fed
// from the registry on deployments that never enable span telemetry.
type Registry struct {
	enabled  bool
	counters map[Key]int64
	gauges   map[Key]int64
	hists    map[Key]*stats.Sample
}

// NewRegistry builds a registry; enabled gates the hot-path instruments.
func NewRegistry(enabled bool) *Registry {
	return &Registry{
		enabled:  enabled,
		counters: map[Key]int64{},
		gauges:   map[Key]int64{},
		hists:    map[Key]*stats.Sample{},
	}
}

// Enabled reports whether hot-path instruments record.
func (r *Registry) Enabled() bool { return r != nil && r.enabled }

// Inc adds delta to a counter. No-op when disabled.
func (r *Registry) Inc(k Key, delta int64) {
	if !r.Enabled() {
		return
	}
	r.counters[k] += delta
}

// Counter reads a counter's current value.
func (r *Registry) Counter(k Key) int64 {
	if r == nil {
		return 0
	}
	return r.counters[k]
}

// SetGauge records a sampled level. Gauges always function (see the type
// comment); they are written from control-plane loops, never per-message.
func (r *Registry) SetGauge(k Key, v int64) {
	if r == nil {
		return
	}
	r.gauges[k] = v
}

// Gauge reads the last sampled level (0 if never set).
func (r *Registry) Gauge(k Key) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[k]
}

// Observe adds one duration observation (in milliseconds, the stats
// convention) to the key's histogram. No-op when disabled.
func (r *Registry) Observe(k Key, d sim.Time) {
	if !r.Enabled() {
		return
	}
	s := r.hists[k]
	if s == nil {
		s = stats.NewSample(1024)
		r.hists[k] = s
	}
	s.AddDur(d)
}

// Hist returns the key's histogram sample, or nil if nothing observed.
func (r *Registry) Hist(k Key) *stats.Sample {
	if r == nil {
		return nil
	}
	return r.hists[k]
}

// Reset clears every instrument (the experiment warm-up boundary).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.counters = map[Key]int64{}
	r.gauges = map[Key]int64{}
	r.hists = map[Key]*stats.Sample{}
}

func sortKeys(ks []Key) []Key {
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Region < b.Region
	})
	return ks
}

// CounterKeys lists the counters with recorded values, sorted.
func (r *Registry) CounterKeys() []Key {
	if r == nil {
		return nil
	}
	ks := make([]Key, 0, len(r.counters))
	for k := range r.counters {
		ks = append(ks, k)
	}
	return sortKeys(ks)
}

// GaugeKeys lists the gauges that have been set, sorted.
func (r *Registry) GaugeKeys() []Key {
	if r == nil {
		return nil
	}
	ks := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		ks = append(ks, k)
	}
	return sortKeys(ks)
}

// HistKeys lists the histograms with observations, sorted.
func (r *Registry) HistKeys() []Key {
	if r == nil {
		return nil
	}
	ks := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		ks = append(ks, k)
	}
	return sortKeys(ks)
}

// Hub bundles one deployment's tracer, registry, and cost ledger.
type Hub struct {
	Tracer  *Tracer
	Metrics *Registry
	Cost    *CostLedger
}

// NewHub wires a registry, a tracer over it, and a cost ledger. telemetry
// gates the hot-path instruments of the first two; cost gates the ledger
// independently, so a deployment can account dollars without recording
// spans (the ledger's gauge mirror rides the always-on gauge side).
func NewHub(clock sim.Clock, telemetry, cost bool) *Hub {
	reg := NewRegistry(telemetry)
	tr := NewTracer(clock, reg, telemetry)
	return &Hub{Tracer: tr, Metrics: reg, Cost: NewCostLedger(clock, reg, tr, cost)}
}

// Reset clears spans, metrics, and the cost ledger (the experiment
// warm-up boundary).
func (h *Hub) Reset() {
	if h == nil {
		return
	}
	h.Tracer.Reset()
	h.Metrics.Reset()
	h.Cost.Reset()
}
