// Package obs is the virtual-time telemetry subsystem: causal request
// spans, a component metrics registry, and exporters (Chrome trace-event
// JSON, Prometheus text, structured span log).
//
// Tracing is causal and deterministic: the trace id of a request is a
// pure function of (session, sequence) — TraceOf — so every pipeline
// stage (client, follower, leader, distributor, transaction coordinator)
// derives the same id independently, with no extra bytes on the gob wire
// (the binary codec carries it as a first-class trailing field). A
// request's spans form one tree: a root span covering submit to response,
// a telescoping chain of stage spans that partition the root exactly
// (each Stage call closes the current stage and opens the next, so stage
// durations sum to the end-to-end virtual time by construction), and
// free-floating child spans for legs that run concurrently with the
// critical path (the follower's commit, per-region store writes, watch
// deliveries, 2PC votes).
//
// Everything is built for the simulator's cooperative scheduling: exactly
// one process runs at a time, so the tracer and registry need no locks,
// and timestamps come from a sim.Clock so spans live in virtual time.
// When disabled (the default), every call is an early-return with zero
// allocation — the write path's allocation budgets do not move.
package obs

import (
	"sort"

	"faaskeeper/internal/sim"
)

// fnv64 constants (FNV-1a), inlined so minting a trace id never allocates
// a hash.Hash on the hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// TraceOf deterministically mints the trace id of a client request from
// its session id and per-session sequence number — the pair that already
// uniquely identifies a request end to end. Every stage recomputes it
// from fields the wire already carries, so gob messages stay
// byte-identical to the untraced pipeline.
func TraceOf(session string, seq int64) int64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(session); i++ {
		h ^= uint64(session[i])
		h *= fnvPrime64
	}
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seq >> (8 * i)))
		h *= fnvPrime64
	}
	// Clear the sign bit like WatchID, and never collide with the
	// "untraced" sentinel 0.
	id := int64(h &^ (1 << 63))
	if id == 0 {
		id = 1
	}
	return id
}

// Span is one closed interval of a request's life. Trace 0 marks a
// pipeline-level span not attributed to a single request (a batched
// distributor flush serving many folded requests at once).
type Span struct {
	ID     int64    `json:"id"`
	Parent int64    `json:"parent,omitempty"`
	Trace  int64    `json:"trace,omitempty"`
	Name   string   `json:"name"`
	Path   string   `json:"path,omitempty"`
	Shard  int      `json:"shard,omitempty"`
	Region string   `json:"region,omitempty"`
	Start  sim.Time `json:"start_ns"`
	End    sim.Time `json:"end_ns"`
	// CostPd is the pay-as-you-go cost attributed to this span, in integer
	// picodollars (1e-12 USD; see CostLedger). Span costs telescope like
	// durations: a trace's spans sum exactly to its ledger total.
	CostPd int64 `json:"cost_pd,omitempty"`
}

// CostUSD converts the span's attributed cost to dollars.
func (s Span) CostUSD() float64 { return PdToUSD(s.CostPd) }

// Tracer records spans against a virtual clock. The zero of every method
// is a no-op when the tracer is disabled or nil, costing nothing on the
// hot path.
type Tracer struct {
	clock   sim.Clock
	metrics *Registry
	enabled bool
	nextID  int64
	closed  []Span
	open    map[int64]*Span
	roots   map[int64]int64 // trace -> root span id (kept after Finish for late children)
	cur     map[int64]int64 // trace -> currently open stage span id
	late    map[int64]int64 // trace -> cost (pd) charged after the trace finished
	errs    []string
}

// NewTracer builds a tracer over the clock. A disabled tracer records
// nothing. Closed spans are mirrored into reg's per-stage histograms when
// reg is non-nil.
func NewTracer(clock sim.Clock, reg *Registry, enabled bool) *Tracer {
	return &Tracer{
		clock:   clock,
		metrics: reg,
		enabled: enabled,
		open:    map[int64]*Span{},
		roots:   map[int64]int64{},
		cur:     map[int64]int64{},
		late:    map[int64]int64{},
	}
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

func (t *Tracer) errf(msg string) { t.errs = append(t.errs, msg) }

func (t *Tracer) alloc(trace, parent int64, name, path string, shard int, region string) int64 {
	t.nextID++
	id := t.nextID
	t.open[id] = &Span{
		ID: id, Parent: parent, Trace: trace, Name: name, Path: path,
		Shard: shard, Region: region, Start: t.clock.Now(),
	}
	return id
}

func (t *Tracer) close(id int64) {
	sp, ok := t.open[id]
	if !ok {
		t.errf("span closed twice or never opened")
		return
	}
	delete(t.open, id)
	sp.End = t.clock.Now()
	t.closed = append(t.closed, *sp)
	if t.metrics != nil {
		t.metrics.Observe(Key{Component: "span", Name: sp.Name, Shard: sp.Shard, Region: sp.Region}, sp.End-sp.Start)
	}
}

// StartRequest opens a request's root span (named after the operation)
// and its first stage, "client.submit". Minting the same trace twice is
// recorded as an invariant violation.
func (t *Tracer) StartRequest(trace int64, op, path string) {
	if !t.Enabled() || trace == 0 {
		return
	}
	if _, dup := t.roots[trace]; dup {
		t.errf("duplicate root span for trace")
		return
	}
	root := t.alloc(trace, 0, op, path, 0, "")
	t.roots[trace] = root
	t.cur[trace] = t.alloc(trace, root, StageSubmit, path, 0, "")
}

// Stage closes the trace's current stage and opens the next one, so the
// stage chain telescopes: stage durations always sum exactly to the root
// span. Unknown traces (requests issued before telemetry was enabled, or
// internal traffic) are ignored.
func (t *Tracer) Stage(trace int64, name string) {
	if !t.Enabled() || trace == 0 {
		return
	}
	root, ok := t.roots[trace]
	if !ok {
		return
	}
	if _, live := t.open[root]; !live {
		// The trace already finished: a superseded duplicate hop (e.g. a
		// message stranded in its old shard's queue by a reshard, drained
		// after the re-routed retry answered). Opening a stage now would
		// leak it — the chain's endpoints belong to the live request only.
		return
	}
	if cur, ok := t.cur[trace]; ok {
		t.close(cur)
	}
	t.cur[trace] = t.alloc(trace, root, name, "", 0, "")
}

// Finish closes the trace's current stage and its root span. The trace's
// root stays registered so late concurrent legs (a watch delivery landing
// after the response) still attach to the tree.
func (t *Tracer) Finish(trace int64) {
	if !t.Enabled() || trace == 0 {
		return
	}
	root, ok := t.roots[trace]
	if !ok {
		return
	}
	if cur, ok := t.cur[trace]; ok {
		t.close(cur)
		delete(t.cur, trace)
	}
	if _, stillOpen := t.open[root]; stillOpen {
		t.close(root)
	} else {
		t.errf("trace finished twice")
	}
}

// Start opens a child span for a leg that runs concurrently with the
// stage chain (a store write, a watch delivery, a 2PC vote). It returns
// the span handle for End; 0 when disabled. Trace 0 records a
// pipeline-level span outside any request tree.
func (t *Tracer) Start(trace int64, name, path string, shard int, region string) int64 {
	if !t.Enabled() {
		return 0
	}
	return t.alloc(trace, t.roots[trace], name, path, shard, region)
}

// End closes a child span opened by Start. End(0) is a no-op, so callers
// can unconditionally End what Start returned.
func (t *Tracer) End(id int64) {
	if !t.Enabled() || id == 0 {
		return
	}
	t.close(id)
}

// AddCost attributes pd picodollars of pay-as-you-go cost to a span of
// the trace, at the instant the underlying charge occurs. With a non-zero
// span handle (an open concurrent leg — a store write, a watch delivery,
// a 2PC vote) the cost lands on that span; otherwise it lands on the
// trace's currently open stage, so stage costs telescope to the request
// total exactly as stage durations do. A charge arriving after the trace
// finished (the leader's post-respond bookkeeping) is parked and joined
// onto the root span at export time, keeping the per-trace sum exact.
func (t *Tracer) AddCost(trace, span, pd int64) {
	if !t.Enabled() || pd == 0 {
		return
	}
	if span != 0 {
		if sp, ok := t.open[span]; ok {
			sp.CostPd += pd
			return
		}
	}
	if trace == 0 {
		return
	}
	if cur, ok := t.cur[trace]; ok {
		if sp, live := t.open[cur]; live {
			sp.CostPd += pd
			return
		}
	}
	if _, known := t.roots[trace]; known {
		t.late[trace] += pd
	}
}

// joinLate folds parked post-finish costs onto each trace's root span in
// an exported copy (the live records stay untouched so exports are
// idempotent).
func (t *Tracer) joinLate(out []Span) {
	if len(t.late) == 0 {
		return
	}
	for i := range out {
		if pd := t.late[out[i].Trace]; pd != 0 && out[i].ID == t.roots[out[i].Trace] {
			out[i].CostPd += pd
		}
	}
}

// Spans returns the closed spans in closing order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.closed))
	copy(out, t.closed)
	t.joinLate(out)
	return out
}

// TraceSpans returns the closed spans of one trace, ordered by start time
// (span id breaks ties deterministically).
func (t *Tracer) TraceSpans(trace int64) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, sp := range t.closed {
		if sp.Trace == trace {
			out = append(out, sp)
		}
	}
	t.joinLate(out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Traces lists the distinct trace ids with a recorded root, sorted.
func (t *Tracer) Traces() []int64 {
	if t == nil {
		return nil
	}
	out := make([]int64, 0, len(t.roots))
	for tr := range t.roots {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OpenCount reports spans started but not yet closed — zero once a run
// has fully drained.
func (t *Tracer) OpenCount() int {
	if t == nil {
		return 0
	}
	return len(t.open)
}

// Errors returns recorded invariant violations (double close, duplicate
// root). Empty on a well-formed run.
func (t *Tracer) Errors() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.errs...)
}

// Reset drops all recorded spans and trace state (the experiment warm-up
// boundary). Enabled state is preserved.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.closed = nil
	t.errs = nil
	t.open = map[int64]*Span{}
	t.roots = map[int64]int64{}
	t.cur = map[int64]int64{}
	t.late = map[int64]int64{}
}

// Canonical stage and child-span names, shared by the pipeline
// instrumentation, the telemetry experiment, and the CI smoke assertion.
const (
	StageSubmit    = "client.submit"     // request built, waiting for the sender worker
	StageQueue     = "queue.session"     // in the session FIFO queue to the follower
	StageValidate  = "follower.validate" // follower lock/validate/push (Algorithm 1 steps 1-3)
	StageRetry     = "follower.retry"    // waiting out a stale shard route mid-reshard
	StageLeaderQ   = "queue.leader"      // in the sharded ordered leader queue
	StageCommit    = "leader.commit"     // leader awaitCommit + watch query (Algorithm 2 steps 1-2)
	StageFlush     = "distributor.flush" // distributor fold/flush to user stores
	StageRespond   = "response.net"      // response queued back to the client
	StageTxnPrep   = "txn.prepare"       // 2PC: intents written, votes collected
	StageTxnCommit = "txn.commit"        // 2PC: per-shard commit drive + ready barrier
	StageTxnApply  = "txn.apply"         // 2PC: atomic user-store apply

	SpanFollowerCommit = "follower.commit" // system-store commit, concurrent with queue.leader
	SpanStoreWrite     = "store.write"     // one region's user-store write
	SpanCacheInval     = "cache.invalidate"
	SpanWatchDeliver   = "watch.deliver"  // watch function invocation + delivery
	SpanFanoutPublish  = "fanout.publish" // one-record notification to the fan-out nodes
	SpanTxnVote        = "txn.vote"       // one shard's intent conversion + vote
	SpanTxnShard       = "txn.shard"      // one shard leader's commit leg

	SpanCostBreach = "cost.breach" // budget monitor burn-rate breach (instant)
)
