package obs

import (
	"bytes"
	"strings"
	"testing"

	"faaskeeper/internal/sim"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func TestTraceOfDeterministicAndDistinct(t *testing.T) {
	a := TraceOf("s1", 1)
	if a != TraceOf("s1", 1) {
		t.Fatal("TraceOf not deterministic")
	}
	if a <= 0 {
		t.Fatalf("trace id must be positive, got %d", a)
	}
	seen := map[int64]bool{}
	for _, s := range []string{"s1", "s2", "setup", "writer-10"} {
		for seq := int64(1); seq <= 50; seq++ {
			id := TraceOf(s, seq)
			if seen[id] {
				t.Fatalf("collision at (%s,%d)", s, seq)
			}
			seen[id] = true
		}
	}
}

func TestStageChainTelescopes(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk, nil, true)
	trace := TraceOf("s", 1)
	tr.StartRequest(trace, "set_data", "/a")
	clk.t = 10
	tr.Stage(trace, StageQueue)
	clk.t = 25
	tr.Stage(trace, StageValidate)
	clk.t = 40
	ch := tr.Start(trace, SpanFollowerCommit, "/a", 2, "us")
	clk.t = 70
	tr.End(ch)
	clk.t = 100
	tr.Finish(trace)

	if tr.OpenCount() != 0 {
		t.Fatalf("open spans after finish: %d", tr.OpenCount())
	}
	if errs := tr.Errors(); len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	spans := tr.TraceSpans(trace)
	var root *Span
	var stageSum sim.Time
	for i := range spans {
		sp := spans[i]
		switch {
		case sp.Parent == 0:
			if root != nil {
				t.Fatal("two roots")
			}
			root = &spans[i]
		case sp.Name != SpanFollowerCommit:
			stageSum += sp.End - sp.Start
		}
	}
	if root == nil {
		t.Fatal("no root span")
	}
	if root.End-root.Start != 100 {
		t.Fatalf("root duration %v, want 100", root.End-root.Start)
	}
	if stageSum != root.End-root.Start {
		t.Fatalf("stage sum %v != root %v", stageSum, root.End-root.Start)
	}
	for _, sp := range spans {
		if sp.Parent != 0 && sp.Parent != root.ID {
			t.Fatalf("span %q has parent %d, want root %d", sp.Name, sp.Parent, root.ID)
		}
	}
}

func TestTracerInvariantViolationsRecorded(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk, nil, true)
	trace := TraceOf("s", 2)
	tr.StartRequest(trace, "create", "/x")
	tr.StartRequest(trace, "create", "/x") // duplicate mint
	id := tr.Start(trace, SpanStoreWrite, "", 0, "us")
	tr.End(id)
	tr.End(id) // double close
	tr.Finish(trace)
	tr.Finish(trace) // double finish
	if len(tr.Errors()) != 3 {
		t.Fatalf("want 3 recorded violations, got %v", tr.Errors())
	}
}

func TestLateChildAttachesAfterFinish(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk, nil, true)
	trace := TraceOf("s", 3)
	tr.StartRequest(trace, "set_data", "/w")
	clk.t = 5
	tr.Finish(trace)
	clk.t = 6
	id := tr.Start(trace, SpanWatchDeliver, "/w", 0, "eu") // watch lands after the response
	clk.t = 9
	tr.End(id)
	spans := tr.TraceSpans(trace)
	var rootID int64
	for _, sp := range spans {
		if sp.Parent == 0 {
			rootID = sp.ID
		}
	}
	for _, sp := range spans {
		if sp.Name == SpanWatchDeliver && sp.Parent != rootID {
			t.Fatalf("late child parent %d, want root %d", sp.Parent, rootID)
		}
	}
	if len(tr.Errors()) != 0 {
		t.Fatalf("errors: %v", tr.Errors())
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry(true)
	k := Key{Component: "leader", Name: "commits", Shard: 1}
	r.Inc(k, 2)
	r.Inc(k, 3)
	if got := r.Counter(k); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := Key{Component: "leader", Name: "queue_depth", Shard: 0}
	r.SetGauge(g, 7)
	if r.Gauge(g) != 7 {
		t.Fatal("gauge readback")
	}
	h := Key{Component: "span", Name: StageCommit}
	r.Observe(h, 2*sim.Ms(1))
	r.Observe(h, 4*sim.Ms(1))
	if s := r.Hist(h); s == nil || s.N() != 2 {
		t.Fatal("hist observations lost")
	}
	// Disabled registry: counters and hists are inert, gauges still work.
	off := NewRegistry(false)
	off.Inc(k, 1)
	off.Observe(h, sim.Ms(1))
	off.SetGauge(g, 3)
	if off.Counter(k) != 0 || off.Hist(h) != nil || off.Gauge(g) != 3 {
		t.Fatal("disabled registry gating wrong")
	}
}

// TestDisabledPathAllocatesNothing locks the write-path budget: with
// telemetry off every tracer and registry call must be a zero-allocation
// early return.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	clk := &fakeClock{}
	h := NewHub(clk, false, false)
	trace := TraceOf("s", 9)
	if allocs := testing.AllocsPerRun(200, func() {
		h.Tracer.StartRequest(trace, "set_data", "/a")
		h.Tracer.Stage(trace, StageCommit)
		id := h.Tracer.Start(trace, SpanStoreWrite, "/a", 1, "us")
		h.Tracer.End(id)
		h.Tracer.Finish(trace)
		h.Metrics.Inc(Key{Component: "leader", Name: "commits"}, 1)
		h.Metrics.Observe(Key{Component: "span", Name: StageCommit}, sim.Ms(1))
	}); allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_ = TraceOf("session-name", 1234)
	}); allocs != 0 {
		t.Fatalf("TraceOf allocated %.1f/op, want 0", allocs)
	}
}

func TestChromeTraceExportRoundTrips(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk, nil, true)
	trace := TraceOf("s", 4)
	tr.StartRequest(trace, "set_data", "/a")
	clk.t = 3 * sim.Ms(1)
	tr.Stage(trace, StageCommit)
	clk.t = 5 * sim.Ms(1)
	tr.Finish(trace)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	names, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"set_data", StageSubmit, StageCommit} {
		if names[want] == 0 {
			t.Fatalf("exported trace missing %q: %v", want, names)
		}
	}
}

func TestSpanLogAndPrometheusExports(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry(true)
	tr := NewTracer(clk, reg, true)
	trace := TraceOf("s", 5)
	tr.StartRequest(trace, "create", "/p")
	clk.t = 2 * sim.Ms(1)
	tr.Finish(trace)
	reg.Inc(Key{Component: "leader", Name: "commits", Shard: 1}, 4)
	reg.SetGauge(Key{Component: "leader", Name: "queue_depth", Shard: 1}, 2)

	var log bytes.Buffer
	if err := WriteSpanLog(&log, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(log.String(), "\n"); lines != 2 {
		t.Fatalf("span log lines = %d, want 2", lines)
	}

	var prom bytes.Buffer
	if err := WritePrometheus(&prom, reg); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"fk_leader_commits{shard=\"1\"} 4",
		"fk_leader_queue_depth{shard=\"1\"} 2",
		"fk_span_create_ms",
		"quantile=\"0.50\"",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}
