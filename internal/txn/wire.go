package txn

// Binary wire codecs for the op vocabulary (package wire). The gob
// encoders in txn.go remain the paper-faithful default; these are the
// fast-path equivalents selected by Config.WireCodec: "binary". Both op
// lists also ride inside core's leader messages, so the element codecs
// are exported for core to compose.

import (
	"fmt"

	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

// Format tags: one leading byte per blob so a corrupt or mis-routed
// buffer fails loudly instead of decoding garbage.
const (
	tagOps      byte = 0xA1
	tagResolved byte = 0xA2
)

// maxOps bounds decoded op counts so corrupt input cannot drive huge
// allocations (the wire package's collection ceiling).
const maxOps = 1 << 20

// EncodeOpsWith serializes an op list with the chosen codec. The binary
// bytes are freshly owned (the record layer retains them).
func EncodeOpsWith(c wire.Codec, ops []Op) []byte {
	if c == wire.Gob {
		return EncodeOps(ops)
	}
	e := wire.NewEncoder()
	e.Byte(tagOps)
	e.Uvarint(uint64(len(ops)))
	for i := range ops {
		AppendOp(e, ops[i])
	}
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// DecodeOpsWith parses an op blob produced by EncodeOpsWith under the
// same codec.
func DecodeOpsWith(c wire.Codec, b []byte) ([]Op, error) {
	if c == wire.Gob {
		return DecodeOps(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagOps {
		return nil, fmt.Errorf("%w: txn ops tag", wire.ErrCorrupt)
	}
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > maxOps {
		return nil, fmt.Errorf("%w: txn ops count", wire.ErrCorrupt)
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, ReadOp(&d))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// EncodeResolvedWith serializes a resolved-op list with the chosen codec.
func EncodeResolvedWith(c wire.Codec, ops []ResolvedOp) []byte {
	if c == wire.Gob {
		return EncodeResolved(ops)
	}
	e := wire.NewEncoder()
	e.Byte(tagResolved)
	AppendResolvedOps(e, ops)
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// DecodeResolvedWith parses a resolved-op blob under the same codec.
func DecodeResolvedWith(c wire.Codec, b []byte) ([]ResolvedOp, error) {
	if c == wire.Gob {
		return DecodeResolved(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagResolved {
		return nil, fmt.Errorf("%w: txn resolved tag", wire.ErrCorrupt)
	}
	ops := ReadResolvedOps(&d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// AppendOp appends one Op in the binary format.
func AppendOp(e *wire.Encoder, op Op) {
	e.String(string(op.Type))
	e.String(op.Path)
	e.Bytes(op.Data)
	e.Varint(int64(op.Version))
	e.Byte(byte(op.Flags))
}

// ReadOp decodes one Op. Data is a zero-copy view into the input.
func ReadOp(d *wire.Decoder) Op {
	return Op{
		Type:    OpType(d.String()),
		Path:    d.String(),
		Data:    d.Bytes(),
		Version: int32(d.Varint()),
		Flags:   znode.Flags(d.Byte()),
	}
}

// AppendResolvedOps appends a count-prefixed resolved-op list.
func AppendResolvedOps(e *wire.Encoder, ops []ResolvedOp) {
	e.Uvarint(uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		e.String(string(op.Type))
		e.String(op.Path)
		e.String(op.ParentPath)
		e.Bytes(op.Data)
		e.Varint(int64(op.Version))
		e.Varint(int64(op.Cversion))
		e.String(op.EphOwner)
		e.String(op.ChildAdd)
		e.String(op.ChildDel)
		e.Varint(int64(op.Shard))
	}
}

// ReadResolvedOps decodes a count-prefixed resolved-op list. Data fields
// are zero-copy views into the input.
func ReadResolvedOps(d *wire.Decoder) []ResolvedOp {
	n := int(d.Uvarint())
	if n > maxOps {
		d.Fail()
	}
	if d.Err() != nil || n <= 0 {
		return nil
	}
	ops := make([]ResolvedOp, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, ResolvedOp{
			Type:       OpType(d.String()),
			Path:       d.String(),
			ParentPath: d.String(),
			Data:       d.Bytes(),
			Version:    int32(d.Varint()),
			Cversion:   int32(d.Varint()),
			EphOwner:   d.String(),
			ChildAdd:   d.String(),
			ChildDel:   d.String(),
			Shard:      int(d.Varint()),
		})
	}
	return ops
}
