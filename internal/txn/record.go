package txn

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/wire"
)

// Status is a transaction record's state. Transitions are one-way and
// guarded by conditional writes, so commit and abort are mutually
// exclusive even between a crashed coordinator and its redelivered retry:
//
//	preparing ──► committed ──► applied
//	     └──────► aborted
type Status string

// Record statuses.
const (
	StatusPreparing Status = "preparing"
	StatusCommitted Status = "committed"
	StatusApplied   Status = "applied"
	StatusAborted   Status = "aborted"
)

// ErrStatusConflict is returned when a conditional status transition finds
// the record in a different state (a concurrent or resumed coordinator
// already decided).
var ErrStatusConflict = errors.New("txn: record status conflict")

// Record keys and attributes in the system store.
const (
	recordKeyPrefix = "txn:"
	reqKeyPrefix    = "txnreq:"
	seqKey          = "txnseq"

	attrSeqCtr   = "n"
	attrStatus   = "status"
	attrSession  = "session"
	attrSeq      = "seq"
	attrOps      = "ops"
	attrResolved = "resolved"
	attrVotes    = "votes"
	attrReady    = "ready"
	attrCommits  = "commits"
	attrID       = "id"
)

func recordKey(id int64) string { return recordKeyPrefix + strconv.FormatInt(id, 10) }

func reqKey(session string, seq int64) string {
	return reqKeyPrefix + session + "/" + strconv.FormatInt(seq, 10)
}

// Record is the decoded durable transaction record.
type Record struct {
	ID       int64
	Status   Status
	Session  string
	Seq      int64
	Ops      []Op
	Resolved []ResolvedOp
	Votes    map[int]string // shard -> "ok" or failure code
	Ready    map[int]bool   // shards whose leader finished its commit phase
	Commits  map[int]int64  // shard -> leader-queue txid of its commit message
}

// Store manages transaction records in the system store. All mutations are
// single conditional writes or atomic list appends — the same primitives
// the deregistration fanout barrier uses — so every step is idempotent
// under queue-retry redelivery and safe against a coordinator racing its
// own crashed predecessor.
type Store struct {
	tbl *kv.Table
	k   *sim.Kernel

	// trackLive maintains an atomic counter of records between Begin and
	// Delete. Off by default (zero cost for deployments that never ask);
	// the dynamic-sharding reshard engine enables it to quiesce in-flight
	// transactions before draining source shards.
	trackLive bool

	// codec selects the op-blob serialization (zero value = gob, the
	// paper-faithful default).
	codec wire.Codec

	// metrics, when set, counts record life-cycle transitions (begins,
	// votes, decisions) — inert no-ops unless the registry's hot-path
	// instruments are enabled.
	metrics *obs.Registry
}

// SetWireCodec selects the record's op-blob codec (set once at deployment
// time, before any transaction runs).
func (s *Store) SetWireCodec(c wire.Codec) { s.codec = c }

// SetMetrics wires the deployment's metrics registry into the record
// store (set once at deployment time).
func (s *Store) SetMetrics(r *obs.Registry) { s.metrics = r }

func (s *Store) count(name string, shard int) {
	s.metrics.Inc(obs.Key{Component: "txn", Name: name, Shard: shard}, 1)
}

// liveKey / attrLive hold the live-record counter item.
const (
	liveKey  = "txnlive"
	attrLive = "n"
)

// TrackLive toggles live-record counting (set once at deployment time,
// before any transaction runs).
func (s *Store) TrackLive(on bool) { s.trackLive = on }

// Live returns the number of records currently between Begin and Delete
// (0 when tracking is off — callers must only rely on it with tracking
// enabled).
func (s *Store) Live(ctx cloud.Ctx) int64 {
	it, ok := s.tbl.Get(ctx, liveKey, true)
	if !ok {
		return 0
	}
	return it[attrLive].Num
}

func (s *Store) bumpLive(ctx cloud.Ctx, delta int64) {
	if !s.trackLive {
		return
	}
	_, _ = s.tbl.Update(ctx, liveKey, []kv.Update{kv.Add{Name: attrLive, Delta: delta}}, nil)
}

// NewStore binds a record store to the deployment's system table.
func NewStore(tbl *kv.Table, k *sim.Kernel) *Store {
	return &Store{tbl: tbl, k: k}
}

// Mint allocates a fresh transaction id from the system-store counter
// (coordinators are stateless functions; an in-memory counter would repeat
// after a restart and let a stale record shadow a new transaction).
func (s *Store) Mint(ctx cloud.Ctx) (int64, error) {
	it, err := s.tbl.Update(ctx, seqKey, []kv.Update{kv.Add{Name: attrSeqCtr, Delta: 1}}, nil)
	if err != nil {
		return 0, err
	}
	return it[attrSeqCtr].Num, nil
}

// Begin writes the durable record in StatusPreparing and points the
// request key at it, so a redelivered coordinator invocation finds the
// in-flight transaction instead of starting a second one.
func (s *Store) Begin(ctx cloud.Ctx, id int64, session string, seq int64, ops []Op) error {
	if err := s.tbl.Put(ctx, recordKey(id), kv.Item{
		attrStatus:  kv.S(string(StatusPreparing)),
		attrSession: kv.S(session),
		attrSeq:     kv.N(seq),
		attrOps:     kv.B(EncodeOpsWith(s.codec, ops)),
	}, nil); err != nil {
		return err
	}
	s.count("begin", 0)
	s.bumpLive(ctx, 1)
	return s.tbl.Put(ctx, reqKey(session, seq), kv.Item{attrID: kv.N(id)}, nil)
}

// IDForRequest returns the transaction id an earlier invocation of the
// same (session, seq) request started, or false.
func (s *Store) IDForRequest(ctx cloud.Ctx, session string, seq int64) (int64, bool) {
	it, ok := s.tbl.Get(ctx, reqKey(session, seq), true)
	if !ok {
		return 0, false
	}
	return it[attrID].Num, true
}

// Lookup reads and decodes a record (false when it no longer exists —
// finished transactions are garbage collected).
func (s *Store) Lookup(ctx cloud.Ctx, id int64) (Record, bool) {
	it, ok := s.tbl.Get(ctx, recordKey(id), true)
	if !ok {
		return Record{}, false
	}
	return s.decodeRecord(id, it), true
}

func (s *Store) decodeRecord(id int64, it kv.Item) Record {
	r := Record{
		ID:      id,
		Status:  Status(it[attrStatus].Str),
		Session: it[attrSession].Str,
		Seq:     it[attrSeq].Num,
		Votes:   map[int]string{},
		Ready:   map[int]bool{},
		Commits: map[int]int64{},
	}
	if b := it[attrOps].Byt; len(b) > 0 {
		r.Ops, _ = DecodeOpsWith(s.codec, b)
	}
	if b := it[attrResolved].Byt; len(b) > 0 {
		r.Resolved, _ = DecodeResolvedWith(s.codec, b)
	}
	for _, m := range it[attrVotes].SL {
		if shard, val, ok := splitMarker(m); ok {
			if _, dup := r.Votes[shard]; !dup {
				r.Votes[shard] = val // first vote wins; redelivered dups ignored
			}
		}
	}
	for _, m := range it[attrReady].SL {
		if shard, _, ok := splitMarker(m); ok {
			r.Ready[shard] = true
		}
	}
	for _, m := range it[attrCommits].SL {
		if shard, val, ok := splitMarker(m); ok {
			if txid, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.Commits[shard] = txid
			}
		}
	}
	return r
}

// splitMarker parses a "<shard>/<value>" barrier marker.
func splitMarker(m string) (shard int, val string, ok bool) {
	i := strings.IndexByte(m, '/')
	if i < 0 {
		return 0, "", false
	}
	shard, err := strconv.Atoi(m[:i])
	if err != nil {
		return 0, "", false
	}
	return shard, m[i+1:], true
}

// Vote atomically appends one shard's prepare verdict ("ok" or a failure
// code) and returns the decoded record after the append — the caller sees
// every vote cast so far, exactly like the deregistration ack barrier.
// Duplicate votes from a redelivered prepare are harmless: votes are read
// as a per-shard set and the first value wins.
func (s *Store) Vote(ctx cloud.Ctx, id int64, shard int, verdict string) (Record, error) {
	mark := fmt.Sprintf("%d/%s", shard, verdict)
	it, err := s.tbl.Update(ctx, recordKey(id),
		[]kv.Update{kv.StrListAppend{Name: attrVotes, Vals: []string{mark}}}, nil)
	if err != nil {
		return Record{}, err
	}
	s.count("vote_"+verdictClass(verdict), shard)
	return s.decodeRecord(id, it), nil
}

// verdictClass buckets a prepare verdict for the metrics registry: "ok"
// stays, every failure code folds into "fail" (codes are unbounded).
func verdictClass(verdict string) string {
	if verdict == "ok" {
		return "ok"
	}
	return "fail"
}

// Decide performs the conditional status transition that makes the
// commit/abort decision durable; resolved (may be nil on abort) records
// the validated op list any later actor replays the commit from.
func (s *Store) Decide(ctx cloud.Ctx, id int64, from, to Status, resolved []ResolvedOp) error {
	ups := []kv.Update{kv.Set{Name: attrStatus, V: kv.S(string(to))}}
	if resolved != nil {
		ups = append(ups, kv.Set{Name: attrResolved, V: kv.B(EncodeResolvedWith(s.codec, resolved))})
	}
	_, err := s.tbl.Update(ctx, recordKey(id), ups,
		kv.Eq{Name: attrStatus, V: kv.S(string(from))})
	if errors.Is(err, kv.ErrConditionFailed) {
		return ErrStatusConflict
	}
	if err == nil {
		s.count("decide_"+string(to), 0)
	}
	return err
}

// NoteCommit records the leader-queue txid the coordinator minted for one
// shard's commit message, so a resumed coordinator neither re-pushes a
// shard that was already driven nor loses the txid its results need.
func (s *Store) NoteCommit(ctx cloud.Ctx, id int64, shard int, txid int64) error {
	mark := fmt.Sprintf("%d/%d", shard, txid)
	_, err := s.tbl.Update(ctx, recordKey(id),
		[]kv.Update{kv.StrListAppend{Name: attrCommits, Vals: []string{mark}}}, nil)
	return err
}

// Ready atomically appends one shard leader's commit-phase-done marker and
// reports how many distinct shards are ready, letting the coordinator
// barrier on all participants before the atomic apply.
func (s *Store) Ready(ctx cloud.Ctx, id int64, shard int) (int, error) {
	mark := fmt.Sprintf("%d/ok", shard)
	it, err := s.tbl.Update(ctx, recordKey(id),
		[]kv.Update{kv.StrListAppend{Name: attrReady, Vals: []string{mark}}}, nil)
	if err != nil {
		return 0, err
	}
	return len(s.decodeRecord(id, it).Ready), nil
}

// Delete garbage collects a finished record and its request pointer.
func (s *Store) Delete(ctx cloud.Ctx, id int64, session string, seq int64) {
	if s.trackLive {
		// Decrement only when the record still exists: Delete is called
		// from multiple recovery paths and must stay idempotent.
		if err := s.tbl.Delete(ctx, recordKey(id), kv.Exists{}); err != nil {
			_ = s.tbl.Delete(ctx, reqKey(session, seq), nil)
			return
		}
		s.bumpLive(ctx, -1)
		_ = s.tbl.Delete(ctx, reqKey(session, seq), nil)
		return
	}
	_ = s.tbl.Delete(ctx, recordKey(id), nil)
	_ = s.tbl.Delete(ctx, reqKey(session, seq), nil)
}

// awaitAttempts bounds every polling barrier; with the linear backoff
// below the window is far beyond any simulated commit latency.
const awaitAttempts = 120

// AwaitStatus polls until the record reaches one of the wanted statuses
// and returns it. A missing record reports ok=true with found=false: a
// finished transaction's record is garbage collected, which any waiter
// may treat as "applied and cleaned up".
func (s *Store) AwaitStatus(ctx cloud.Ctx, id int64, want ...Status) (Record, bool, bool) {
	for i := 0; i < awaitAttempts; i++ {
		rec, found := s.Lookup(ctx, id)
		if !found {
			return Record{}, false, true
		}
		for _, w := range want {
			if rec.Status == w {
				return rec, true, true
			}
		}
		s.k.Sleep(sim.Time(i+1) * sim.Ms(1))
	}
	return Record{}, false, false
}

// AwaitReady polls until n distinct shards posted their ready markers.
func (s *Store) AwaitReady(ctx cloud.Ctx, id int64, n int) (Record, bool) {
	for i := 0; i < awaitAttempts; i++ {
		rec, found := s.Lookup(ctx, id)
		if found && len(rec.Ready) >= n {
			return rec, true
		}
		s.k.Sleep(sim.Time(i+1) * sim.Ms(1))
	}
	return Record{}, false
}
