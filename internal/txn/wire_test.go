package txn

import (
	"reflect"
	"testing"

	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

func testOps() []Op {
	return []Op{
		Create("/t/a", []byte("data"), znode.FlagEphemeral),
		SetData("/t/b", nil, 7),
		Delete("/t/c", -1),
		Check("/t", 3),
	}
}

func testResolved() []ResolvedOp {
	return []ResolvedOp{
		{Type: OpCreate, Path: "/t/a0001", ParentPath: "/t", Data: []byte("d"), Cversion: 4, EphOwner: "sess", ChildAdd: "a0001", Shard: 2},
		{Type: OpSetData, Path: "/t/b", Data: nil, Version: 8, Shard: 0},
		{Type: OpDelete, Path: "/t/c", ParentPath: "/t", Version: 2, ChildDel: "c", Shard: 1},
		{Type: OpCheck, Path: "/t"},
	}
}

func normOps(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	for i := range out {
		if len(out[i].Data) == 0 {
			out[i].Data = nil
		}
	}
	return out
}

func normResolved(ops []ResolvedOp) []ResolvedOp {
	out := append([]ResolvedOp(nil), ops...)
	for i := range out {
		if len(out[i].Data) == 0 {
			out[i].Data = nil
		}
	}
	return out
}

func TestOpsCodecEquivalence(t *testing.T) {
	ops := testOps()
	for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
		got, err := DecodeOpsWith(c, EncodeOpsWith(c, ops))
		if err != nil {
			t.Fatalf("%v decode: %v", c, err)
		}
		if !reflect.DeepEqual(normOps(got), normOps(ops)) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", c, got, ops)
		}
	}
}

func TestResolvedCodecEquivalence(t *testing.T) {
	ops := testResolved()
	for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
		got, err := DecodeResolvedWith(c, EncodeResolvedWith(c, ops))
		if err != nil {
			t.Fatalf("%v decode: %v", c, err)
		}
		if !reflect.DeepEqual(normResolved(got), normResolved(ops)) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", c, got, ops)
		}
	}
}

func TestOpsDecodeRejectsCorrupt(t *testing.T) {
	if _, err := DecodeOpsWith(wire.Binary, []byte{0xEE}); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := DecodeResolvedWith(wire.Binary, EncodeOpsWith(wire.Binary, testOps())); err == nil {
		t.Error("resolved decode accepted an ops blob")
	}
	// A truncated buffer must error, not return a partial list silently.
	full := EncodeOpsWith(wire.Binary, testOps())
	if _, err := DecodeOpsWith(wire.Binary, full[:len(full)/2]); err == nil {
		t.Error("truncated ops accepted")
	}
}

// TestOpsBinaryAllocBudget locks the binary round trip's allocation
// ceiling: one detached encode buffer plus the decoded list and its
// strings. The gob path runs an order of magnitude more.
func TestOpsBinaryAllocBudget(t *testing.T) {
	ops := testOps()
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeOpsWith(wire.Binary, EncodeOpsWith(wire.Binary, ops)); err != nil {
			t.Fatal(err)
		}
	}); allocs > 16 {
		t.Errorf("ops binary round trip: %.0f allocs, budget 16", allocs)
	}
}

// FuzzOpsCodecs round-trips one fuzzed op through both codecs and
// requires they agree on the decoded value.
func FuzzOpsCodecs(f *testing.F) {
	f.Add("create", "/a", []byte("d"), int32(-1), byte(1))
	f.Add("", "", []byte(nil), int32(0), byte(0))
	f.Fuzz(func(t *testing.T, opType string, path string, data []byte, version int32, flags byte) {
		ops := []Op{{Type: OpType(opType), Path: path, Data: data, Version: version, Flags: znode.Flags(flags)}}
		bin, err := DecodeOpsWith(wire.Binary, EncodeOpsWith(wire.Binary, ops))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := DecodeOpsWith(wire.Gob, EncodeOpsWith(wire.Gob, ops))
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normOps(bin), normOps(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
	})
}

// FuzzResolvedCodecs does the same for the resolved-op vocabulary.
func FuzzResolvedCodecs(f *testing.F) {
	f.Add("create", "/a", "/p", []byte("d"), int32(1), int32(2), "e", "a", "", 3)
	f.Fuzz(func(t *testing.T, opType string, path string, parent string, data []byte,
		version int32, cversion int32, ephOwner string, childAdd string, childDel string, shard int) {
		ops := []ResolvedOp{{
			Type: OpType(opType), Path: path, ParentPath: parent, Data: data,
			Version: version, Cversion: cversion, EphOwner: ephOwner,
			ChildAdd: childAdd, ChildDel: childDel, Shard: shard,
		}}
		bin, err := DecodeResolvedWith(wire.Binary, EncodeResolvedWith(wire.Binary, ops))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := DecodeResolvedWith(wire.Gob, EncodeResolvedWith(wire.Gob, ops))
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normResolved(bin), normResolved(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
	})
}
