package txn

import (
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/sim"
)

func newStore(seed int64) (*sim.Kernel, *Store, cloud.Ctx) {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	tbl := kv.NewTable(env, "system")
	return k, NewStore(tbl, k), cloud.ClientCtx(cloud.RegionAWSHome)
}

func TestRouteGroupsByShard(t *testing.T) {
	shardOf := func(p string) int { return len(p) % 3 }
	ops := []Op{
		SetData("/aa", nil, -1),  // len 3 -> shard 0
		Create("/b", nil, 0),     // len 2 -> shard 2
		Check("/cc", -1),         // len 3 -> shard 0
		Delete("/dddd", -1),      // len 5 -> shard 2
		SetData("/eeee", nil, 0), // len 5 -> shard 2
	}
	shards, byShard := Route(ops, shardOf)
	if len(shards) != 2 || shards[0] != 0 || shards[1] != 2 {
		t.Fatalf("shards = %v", shards)
	}
	if got := byShard[0]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("shard 0 ops = %v", got)
	}
	if got := byShard[2]; len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("shard 2 ops = %v", got)
	}
}

func TestOpsCodecRoundTrip(t *testing.T) {
	ops := []Op{
		Create("/a", []byte("x"), 3),
		SetData("/b", []byte("y"), 7),
		Delete("/c", -1),
		Check("/d", 2),
	}
	got, err := DecodeOps(EncodeOps(ops))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ops) || got[0].Type != OpCreate || string(got[1].Data) != "y" ||
		got[2].Version != -1 || got[3].Path != "/d" {
		t.Errorf("round trip = %+v", got)
	}
	resolved := []ResolvedOp{{Type: OpCreate, Path: "/a", ParentPath: "/", ChildAdd: "a", Shard: 2}}
	r2, err := DecodeResolved(EncodeResolved(resolved))
	if err != nil || len(r2) != 1 || r2[0].Shard != 2 || r2[0].ChildAdd != "a" {
		t.Errorf("resolved round trip = %+v (%v)", r2, err)
	}
}

func TestRecordLifecycle(t *testing.T) {
	k, s, ctx := newStore(1)
	k.Go("test", func() {
		id, err := s.Mint(ctx)
		if err != nil || id != 1 {
			t.Errorf("mint: %d %v", id, err)
		}
		ops := []Op{SetData("/a", []byte("x"), 0), SetData("/b", []byte("y"), 0)}
		if err := s.Begin(ctx, id, "sess", 7, ops); err != nil {
			t.Fatalf("begin: %v", err)
		}
		if got, ok := s.IDForRequest(ctx, "sess", 7); !ok || got != id {
			t.Errorf("IDForRequest = %d %v", got, ok)
		}
		rec, found := s.Lookup(ctx, id)
		if !found || rec.Status != StatusPreparing || len(rec.Ops) != 2 {
			t.Fatalf("lookup: %+v %v", rec, found)
		}
		// Votes behave as a per-shard set (idempotent under redelivery).
		if _, err := s.Vote(ctx, id, 0, "ok"); err != nil {
			t.Fatalf("vote: %v", err)
		}
		if _, err := s.Vote(ctx, id, 0, "ok"); err != nil {
			t.Fatalf("dup vote: %v", err)
		}
		rec, _ = s.Vote(ctx, id, 2, "fail:bad_version")
		if len(rec.Votes) != 2 || rec.Votes[0] != "ok" || rec.Votes[2] != "fail:bad_version" {
			t.Errorf("votes = %v", rec.Votes)
		}
		// Status transitions are conditional and one-way.
		resolved := []ResolvedOp{{Type: OpSetData, Path: "/a", Version: 1}}
		if err := s.Decide(ctx, id, StatusPreparing, StatusCommitted, resolved); err != nil {
			t.Fatalf("decide: %v", err)
		}
		if err := s.Decide(ctx, id, StatusPreparing, StatusAborted, nil); err != ErrStatusConflict {
			t.Errorf("conflicting decide = %v, want ErrStatusConflict", err)
		}
		rec, _ = s.Lookup(ctx, id)
		if rec.Status != StatusCommitted || len(rec.Resolved) != 1 || rec.Resolved[0].Version != 1 {
			t.Errorf("committed record = %+v", rec)
		}
		// Commit txids and ready markers accumulate per shard.
		_ = s.NoteCommit(ctx, id, 0, 40)
		_ = s.NoteCommit(ctx, id, 2, 42)
		if n, _ := s.Ready(ctx, id, 0); n != 1 {
			t.Errorf("ready count = %d", n)
		}
		if n, _ := s.Ready(ctx, id, 2); n != 2 {
			t.Errorf("ready count = %d", n)
		}
		if rec, ok := s.AwaitReady(ctx, id, 2); !ok || rec.Commits[2] != 42 {
			t.Errorf("await ready: %+v %v", rec, ok)
		}
		if rec, found, ok := s.AwaitStatus(ctx, id, StatusCommitted); !ok || !found || rec.Status != StatusCommitted {
			t.Errorf("await status: %+v %v %v", rec, found, ok)
		}
		s.Delete(ctx, id, "sess", 7)
		if _, found := s.Lookup(ctx, id); found {
			t.Error("record survived delete")
		}
		if _, ok := s.IDForRequest(ctx, "sess", 7); ok {
			t.Error("request pointer survived delete")
		}
		// A missing record reads as finished to any waiter.
		if _, found, ok := s.AwaitStatus(ctx, id, StatusApplied); found || !ok {
			t.Errorf("await on missing record: found=%v ok=%v", found, ok)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestMintMonotonic(t *testing.T) {
	k, s, ctx := newStore(2)
	k.Go("test", func() {
		var last int64
		for i := 0; i < 5; i++ {
			id, err := s.Mint(ctx)
			if err != nil || id <= last {
				t.Errorf("mint %d: %d (%v)", i, id, err)
			}
			last = id
		}
	})
	k.Run()
	k.Shutdown()
}
