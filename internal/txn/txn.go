// Package txn is the cross-shard transaction coordinator subsystem behind
// FaaSKeeper's ZooKeeper-style multi(): the operation vocabulary, the
// shard routing of an operation list, and the durable transaction record
// that drives a two-phase commit across the sharded leader pipelines.
//
// The package deliberately owns only the protocol state — op lists, the
// record's status machine (preparing → committed → applied, or aborted),
// and the storage-backed vote/ready barriers modeled on the deregistration
// fanout ack pattern. The pipeline integration (intent locks on node
// items, leader-queue commit messages, the atomic user-store apply) lives
// in package core, which imports this one.
package txn

import (
	"bytes"
	"encoding/gob"
	"sort"

	"faaskeeper/internal/znode"
)

// OpType identifies one sub-operation of a multi().
type OpType string

// Multi sub-operation types, following ZooKeeper's multi vocabulary.
const (
	OpCreate  OpType = "create"
	OpSetData OpType = "set_data"
	OpDelete  OpType = "delete"
	OpCheck   OpType = "check" // version guard: validates, changes nothing
)

// Op is one requested sub-operation of a multi().
type Op struct {
	Type    OpType
	Path    string
	Data    []byte
	Version int32 // expected version; -1 matches any (ignored for create)
	Flags   znode.Flags
}

// Create builds a create sub-op.
func Create(path string, data []byte, flags znode.Flags) Op {
	return Op{Type: OpCreate, Path: path, Data: data, Version: -1, Flags: flags}
}

// SetData builds a set_data sub-op.
func SetData(path string, data []byte, version int32) Op {
	return Op{Type: OpSetData, Path: path, Data: data, Version: version}
}

// Delete builds a delete sub-op.
func Delete(path string, version int32) Op {
	return Op{Type: OpDelete, Path: path, Version: version}
}

// Check builds a version-check sub-op (-1 checks bare existence).
func Check(path string, version int32) Op {
	return Op{Type: OpCheck, Path: path, Version: version}
}

// Result is one sub-operation's client-visible outcome. Code uses the
// service's ZooKeeper error vocabulary ("ok", "no_node", "bad_version",
// ...); CodeAborted marks sub-ops rolled back because a sibling failed
// validation.
type Result struct {
	Type OpType
	Path string // final path (differs from the request for sequential nodes)
	Code string
	Stat znode.Stat
	Txid int64
}

// Code values the coordinator itself produces (the rest of the vocabulary
// comes from the validating pipeline and matches core's result codes).
const (
	CodeOK      = "ok"
	CodeAborted = "txn_aborted" // rolled back: a sibling op failed validation
)

// ResolvedOp is a validated sub-operation with everything the commit phase
// needs to rebuild its system-store updates and user-store state on any
// actor — the coordinator after a crash, or a shard leader replaying a
// commit. It is what the durable record stores once the decision is
// committed.
type ResolvedOp struct {
	Type       OpType
	Path       string // final path (sequential suffix resolved)
	ParentPath string // "" for set_data/check
	Data       []byte
	Version    int32 // node's new data version (set_data), 0 for create
	Cversion   int32 // parent's new child version (create/delete)
	EphOwner   string
	ChildAdd   string
	ChildDel   string
	Shard      int
}

// Effectful reports whether the op mutates state (checks do not).
func (r ResolvedOp) Effectful() bool { return r.Type != OpCheck }

// EncodeOps serializes an op list for the durable record.
func EncodeOps(ops []Op) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ops); err != nil {
		panic("txn: ops marshal: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeOps parses a record's op blob.
func DecodeOps(b []byte) ([]Op, error) {
	var ops []Op
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ops)
	return ops, err
}

// EncodeResolved serializes the decision's resolved op list.
func EncodeResolved(ops []ResolvedOp) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ops); err != nil {
		panic("txn: resolved ops marshal: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeResolved parses a record's resolved-op blob.
func DecodeResolved(b []byte) ([]ResolvedOp, error) {
	var ops []ResolvedOp
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&ops)
	return ops, err
}

// Route partitions a multi's ops among write shards: shardOf is the
// deployment's path-to-shard function (core.ShardOf partially applied).
// It returns the participant shards in ascending order and the op indices
// owned by each. Parent items are colocated with their children by the
// sharding design, so an op's shard is fully determined by its own path.
func Route(ops []Op, shardOf func(string) int) (shards []int, byShard map[int][]int) {
	byShard = map[int][]int{}
	for i, op := range ops {
		s := shardOf(op.Path)
		byShard[s] = append(byShard[s], i)
	}
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	return shards, byShard
}
