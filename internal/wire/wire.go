// Package wire is the hand-rolled binary codec backing the hot message
// paths: length-prefixed, varint-based, reflection-free, with pooled
// encode buffers and a zero-copy decoder.
//
// Two codecs exist side by side. Gob is the paper-faithful default: every
// message type keeps its original encoding/gob representation, so the
// golden virtual-time trace stays byte-identical (queue latencies are a
// function of message size). Binary is the fast path: each wire type owns
// a compact hand-written format built from the primitives here. The
// deployment picks one via Config.WireCodec and threads it to every
// encode/decode site; decoding is codec-directed, never sniffed.
//
// Ownership rules:
//
//   - Encoder buffers come from a sync.Pool. Call Release once the bytes
//     have been consumed or copied (cloud/queue.Send copies the body, so
//     Release immediately after Send is safe). If the callee retains the
//     slice (e.g. faas.InvokeAsync captures the payload in a goroutine),
//     call Detach first to hand over ownership.
//   - Decoder.Bytes returns a sub-slice of the input, not a copy. Callers
//     that outlive the input buffer must copy; callers decoding a queue
//     message they own may alias freely.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Codec selects the wire representation for the hot message types.
type Codec uint8

// Available codecs. Gob is the zero value so an unset Config stays
// paper-faithful.
const (
	Gob Codec = iota
	Binary
)

// Parse maps a Config.WireCodec string to a Codec. The empty string means
// the default (gob).
func Parse(name string) (Codec, error) {
	switch name {
	case "", "gob":
		return Gob, nil
	case "binary":
		return Binary, nil
	}
	return Gob, fmt.Errorf("wire: unknown codec %q (want \"gob\" or \"binary\")", name)
}

func (c Codec) String() string {
	if c == Binary {
		return "binary"
	}
	return "gob"
}

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("wire: corrupt encoding")

// maxCount bounds decoded collection lengths so corrupt input cannot
// drive huge allocations (same ceiling znode uses).
const maxCount = 1 << 20

// Encoder is an append-only scratch buffer. Obtain with NewEncoder,
// return with Release.
type Encoder struct {
	buf []byte
}

var encPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 512)} },
}

// NewEncoder takes a pooled encoder with an empty buffer.
func NewEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

// Release returns the encoder (and its buffer, unless Detached) to the
// pool. The encoder must not be used afterwards.
func (e *Encoder) Release() {
	if cap(e.buf) > 1<<16 {
		// Don't let one giant payload pin a large buffer in the pool.
		e.buf = nil
	}
	encPool.Put(e)
}

// Data returns the encoded bytes. The slice aliases the pooled buffer:
// valid until Release, unless Detach hands over ownership.
func (e *Encoder) Data() []byte { return e.buf }

// Detach relinquishes the current buffer so the bytes survive Release.
// A no-op when nothing was written (the gob path never touches the
// encoder, and keeping its capacity pooled is free).
func (e *Encoder) Detach() {
	if len(e.buf) != 0 {
		e.buf = nil
	}
}

// Byte appends one byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zig-zag signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Int64s appends a count-prefixed []int64.
func (e *Encoder) Int64s(v []int64) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, x := range v {
		e.buf = binary.AppendVarint(e.buf, x)
	}
}

// Ints appends a count-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, x := range v {
		e.buf = binary.AppendVarint(e.buf, int64(x))
	}
}

// Strings appends a count-prefixed []string.
func (e *Encoder) Strings(v []string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, s := range v {
		e.String(s)
	}
}

// Decoder walks an encoded buffer. Errors latch: after the first
// malformed read every subsequent read returns the zero value, and Err
// reports the failure once at the end (the znode reader pattern).
type Decoder struct {
	buf []byte
	err error
}

// NewDecoder wraps b for decoding. The decoder is a value type; keep it
// on the stack.
func NewDecoder(b []byte) Decoder { return Decoder{buf: b} }

// Err returns the latched decode error, wrapping ErrCorrupt.
func (d *Decoder) Err() error { return d.err }

// Len reports the unread byte count.
func (d *Decoder) Len() int { return len(d.buf) }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

// Fail latches a corrupt-input error from outside the package, for
// composed codecs that reject a value the primitives decoded (an
// out-of-range count, a bad tag mid-stream).
func (d *Decoder) Fail() { d.fail() }

// Byte reads one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool { return d.Byte() == 1 }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// String reads a length-prefixed string (allocates the string copy).
func (d *Decoder) String() string { return string(d.view()) }

// Bytes reads a length-prefixed byte slice as a zero-copy view into the
// input. nil for an empty slice.
func (d *Decoder) Bytes() []byte {
	b := d.view()
	if len(b) == 0 {
		return nil
	}
	return b
}

// BytesCopy reads a length-prefixed byte slice into fresh memory for
// callers that outlive the input buffer.
func (d *Decoder) BytesCopy() []byte {
	b := d.view()
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *Decoder) view() []byte {
	ln := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < ln {
		d.fail()
		return nil
	}
	b := d.buf[:ln]
	d.buf = d.buf[ln:]
	return b
}

// Int64s reads a count-prefixed []int64. nil for an empty list.
func (d *Decoder) Int64s() []int64 {
	n := d.count()
	if n <= 0 {
		return nil
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Varint())
	}
	return out
}

// Ints reads a count-prefixed []int. nil for an empty list.
func (d *Decoder) Ints() []int {
	n := d.count()
	if n <= 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int(d.Varint()))
	}
	return out
}

// Strings reads a count-prefixed []string. nil for an empty list.
func (d *Decoder) Strings() []string {
	n := d.count()
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String())
	}
	return out
}

func (d *Decoder) count() int {
	n := d.Uvarint()
	if n > maxCount {
		d.fail()
		return 0
	}
	return int(n)
}

// UvarintLen reports the encoded size of v, for exact size accounting
// without encoding (the cache invalidation cost model uses this).
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// VarintLen reports the encoded size of the zig-zag varint for v.
func VarintLen(v int64) int {
	return UvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}
