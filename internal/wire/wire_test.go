package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	e.Byte(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Uvarint(0)
	e.Uvarint(math.MaxUint64)
	e.Varint(-1)
	e.Varint(math.MinInt64)
	e.Varint(math.MaxInt64)
	e.String("")
	e.String("hello/世界")
	e.Bytes(nil)
	e.Bytes([]byte{1, 2, 3})
	e.Int64s([]int64{-5, 0, 7})
	e.Ints([]int{4, -9})
	e.Strings([]string{"a", "", "ccc"})

	d := NewDecoder(e.Data())
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip")
	}
	if d.Uvarint() != 0 || d.Uvarint() != math.MaxUint64 {
		t.Error("Uvarint round trip")
	}
	if d.Varint() != -1 || d.Varint() != math.MinInt64 || d.Varint() != math.MaxInt64 {
		t.Error("Varint round trip")
	}
	if d.String() != "" || d.String() != "hello/世界" {
		t.Error("String round trip")
	}
	if d.Bytes() != nil {
		t.Error("empty Bytes should decode nil")
	}
	if !bytes.Equal(d.Bytes(), []byte{1, 2, 3}) {
		t.Error("Bytes round trip")
	}
	if got := d.Int64s(); len(got) != 3 || got[0] != -5 || got[1] != 0 || got[2] != 7 {
		t.Errorf("Int64s = %v", got)
	}
	if got := d.Ints(); len(got) != 2 || got[0] != 4 || got[1] != -9 {
		t.Errorf("Ints = %v", got)
	}
	if got := d.Strings(); len(got) != 3 || got[0] != "a" || got[1] != "" || got[2] != "ccc" {
		t.Errorf("Strings = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("trailing bytes: %d", d.Len())
	}
}

func TestDecoderZeroCopyView(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	e.Bytes([]byte("payload"))
	buf := append([]byte(nil), e.Data()...)

	d := NewDecoder(buf)
	view := d.Bytes()
	buf[len(buf)-1] = 'X' // mutate the input: a view must observe it
	if string(view) != "payloaX" {
		t.Errorf("Bytes is not a view: %q", view)
	}

	d2 := NewDecoder(buf)
	cp := d2.BytesCopy()
	buf[len(buf)-1] = 'Y'
	if string(cp) != "payloaX" {
		t.Errorf("BytesCopy aliased the input: %q", cp)
	}
}

func TestDecoderErrorLatches(t *testing.T) {
	// A truncated length prefix fails, and every later read stays zero.
	d := NewDecoder([]byte{0x05, 'a'}) // claims 5 bytes, has 1
	if got := d.String(); got != "" {
		t.Errorf("short String = %q", got)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Byte() != 0 || d.Uvarint() != 0 || d.Varint() != 0 || d.Bytes() != nil {
		t.Error("reads after error must return zero values")
	}
}

func TestDecoderCountCeiling(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	e.Uvarint(maxCount + 1) // a corrupt count must not drive allocation
	d := NewDecoder(e.Data())
	if got := d.Int64s(); got != nil {
		t.Errorf("oversized count decoded: %v", got)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v", d.Err())
	}
}

func TestEncoderDetach(t *testing.T) {
	e := NewEncoder()
	e.String("keep me")
	b := e.Data()
	e.Detach()
	e.Release()
	// Drain the pool slot and overwrite: the detached bytes must survive.
	e2 := NewEncoder()
	e2.String("overwrite")
	d := NewDecoder(b)
	if got := d.String(); got != "keep me" {
		t.Errorf("detached bytes clobbered: %q", got)
	}
	e2.Release()
}

func TestVarintLenMatchesEncoding(t *testing.T) {
	var scratch [binary.MaxVarintLen64]byte
	for _, v := range []uint64{0, 1, 0x7F, 0x80, 1 << 14, 1 << 21, math.MaxUint64} {
		if got, want := UvarintLen(v), binary.PutUvarint(scratch[:], v); got != want {
			t.Errorf("UvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []int64{0, -1, 1, 63, 64, -64, -65, math.MinInt64, math.MaxInt64} {
		if got, want := VarintLen(v), binary.PutVarint(scratch[:], v); got != want {
			t.Errorf("VarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

// FuzzPrimitives round-trips one of each primitive through the encoder
// and decoder and checks exact value recovery plus the size accountants.
func FuzzPrimitives(f *testing.F) {
	f.Add(uint64(0), int64(0), "", []byte(nil))
	f.Add(uint64(math.MaxUint64), int64(math.MinInt64), "path/節点", []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, u uint64, v int64, s string, b []byte) {
		e := NewEncoder()
		defer e.Release()
		e.Uvarint(u)
		e.Varint(v)
		e.String(s)
		e.Bytes(b)
		d := NewDecoder(e.Data())
		if got := d.Uvarint(); got != u {
			t.Fatalf("Uvarint: %d != %d", got, u)
		}
		if got := d.Varint(); got != v {
			t.Fatalf("Varint: %d != %d", got, v)
		}
		if got := d.String(); got != s {
			t.Fatalf("String: %q != %q", got, s)
		}
		if got := d.Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("Bytes: %v != %v", got, b)
		}
		if err := d.Err(); err != nil || d.Len() != 0 {
			t.Fatalf("err=%v trailing=%d", err, d.Len())
		}
	})
}

// FuzzDecoderNeverPanics feeds arbitrary bytes through every read method:
// corrupt input must latch an error, never panic or over-allocate.
func FuzzDecoderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		d := NewDecoder(b)
		_ = d.Byte()
		_ = d.Bool()
		_ = d.Uvarint()
		_ = d.Varint()
		_ = d.String()
		_ = d.Bytes()
		_ = d.BytesCopy()
		_ = d.Int64s()
		_ = d.Ints()
		_ = d.Strings()
	})
}
