// Package fksync implements the paper's serverless synchronization
// primitives (Section 2.1, Section 3.3) on top of the key-value store's
// conditional update expressions: the timed lock (a lease that a crashed
// function cannot hold forever), the atomic counter, and the atomic list.
// Each operation is a single conditional write to a single item.
package fksync

import (
	"errors"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/sim"
)

// LockAttr is the item attribute holding the lock timestamp.
const LockAttr = "lock"

// Lock errors.
var (
	ErrLockHeld = errors.New("fksync: lock held")
	ErrLockLost = errors.New("fksync: lock lost or expired")
)

// Lock is an acquired timed lock on one item.
type Lock struct {
	Key       string
	Timestamp int64 // virtual-time nanoseconds at acquisition
}

// LockManager acquires and releases timed locks on a table's items.
type LockManager struct {
	tbl     *kv.Table
	env     *cloud.Env
	maxHold time.Duration
}

// NewLockManager creates a manager whose locks auto-expire after maxHold.
func NewLockManager(env *cloud.Env, tbl *kv.Table, maxHold time.Duration) *LockManager {
	if maxHold <= 0 {
		maxHold = 5 * time.Second
	}
	return &LockManager{tbl: tbl, env: env, maxHold: maxHold}
}

// MaxHold returns the lease duration.
func (m *LockManager) MaxHold() time.Duration { return m.maxHold }

// acquireCond is the paper's lock condition: the lock is free when no
// timestamp is present or the existing timestamp is older than the
// maximum holding time.
func (m *LockManager) acquireCond(now int64) kv.Cond {
	return kv.Or{
		kv.AttrNotExists{Name: LockAttr},
		kv.NumLt{Name: LockAttr, V: now - int64(m.maxHold)},
	}
}

// Acquire attempts to take the lock once. On success it returns the lock
// and the item's current state (the follower needs the node's old data to
// validate the operation). A held, unexpired lock yields ErrLockHeld.
func (m *LockManager) Acquire(ctx cloud.Ctx, key string) (Lock, kv.Item, error) {
	now := int64(m.env.K.Now())
	item, err := m.tbl.Update(ctx, key,
		[]kv.Update{kv.Set{Name: LockAttr, V: kv.N(now)}},
		m.acquireCond(now))
	if errors.Is(err, kv.ErrConditionFailed) {
		return Lock{}, nil, ErrLockHeld
	}
	if err != nil {
		return Lock{}, nil, err
	}
	return Lock{Key: key, Timestamp: now}, item, nil
}

// AcquireWait retries Acquire with linear backoff until it succeeds or
// attempts are exhausted.
func (m *LockManager) AcquireWait(ctx cloud.Ctx, key string, attempts int) (Lock, kv.Item, error) {
	if attempts <= 0 {
		attempts = 50
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		l, item, err := m.Acquire(ctx, key)
		if err == nil {
			return l, item, nil
		}
		lastErr = err
		if !errors.Is(err, ErrLockHeld) {
			return Lock{}, nil, err
		}
		m.env.K.Sleep(sim.Time(i+1) * 2 * sim.Ms(1))
	}
	return Lock{}, nil, lastErr
}

// heldCond guards every mutation under the lock: the stored timestamp must
// still be ours, so a lock lost to expiry cannot overwrite newer state.
func heldCond(l Lock) kv.Cond {
	return kv.Eq{Name: LockAttr, V: kv.N(l.Timestamp)}
}

// Release drops the lock without modifying the item.
func (m *LockManager) Release(ctx cloud.Ctx, l Lock) error {
	_, err := m.tbl.Update(ctx, l.Key, []kv.Update{kv.Remove{Name: LockAttr}}, heldCond(l))
	if errors.Is(err, kv.ErrConditionFailed) {
		return ErrLockLost
	}
	return err
}

// CommitUnlock atomically applies updates and releases the lock in a
// single conditional write (step ④ of Algorithm 1). If the lease expired,
// nothing is written.
func (m *LockManager) CommitUnlock(ctx cloud.Ctx, l Lock, updates []kv.Update) (kv.Item, error) {
	all := make([]kv.Update, 0, len(updates)+1)
	all = append(all, updates...)
	all = append(all, kv.Remove{Name: LockAttr})
	item, err := m.tbl.Update(ctx, l.Key, all, heldCond(l))
	if errors.Is(err, kv.ErrConditionFailed) {
		return nil, ErrLockLost
	}
	return item, err
}

// TxPart is one item's contribution to a multi-node commit.
type TxPart struct {
	Lock    Lock
	Updates []kv.Update
	Delete  bool // delete the item instead of updating it
}

// CommitUnlockTx commits several locked items in one transaction that
// fails or succeeds atomically (creating a node also updates the locked
// parent, Section 3.1).
func (m *LockManager) CommitUnlockTx(ctx cloud.Ctx, parts []TxPart) error {
	return m.CommitUnlockTxGuard(ctx, parts, nil)
}

// CommitUnlockTxGuard is CommitUnlockTx with extra condition-only legs
// joined into the same atomic transaction — the dynamic write path pins
// its shard-map routing generation this way, so a commit racing a reshard
// fails atomically with the guard instead of landing on a stale route.
func (m *LockManager) CommitUnlockTxGuard(ctx cloud.Ctx, parts []TxPart, guards []kv.TxOp) error {
	ops := make([]kv.TxOp, 0, len(parts)+len(guards))
	for _, p := range parts {
		op := kv.TxOp{Key: p.Lock.Key, Cond: heldCond(p.Lock), Delete: p.Delete}
		if !p.Delete {
			op.Updates = make([]kv.Update, 0, len(p.Updates)+1)
			op.Updates = append(op.Updates, p.Updates...)
			op.Updates = append(op.Updates, kv.Remove{Name: LockAttr})
		}
		ops = append(ops, op)
	}
	ops = append(ops, guards...)
	err := m.tbl.Transact(ctx, ops)
	if errors.Is(err, kv.ErrConditionFailed) {
		return ErrLockLost
	}
	return err
}

// Counter is an atomic counter stored in a single item attribute.
type Counter struct {
	tbl  *kv.Table
	key  string
	attr string
}

// NewCounter binds a counter to tbl[key].attr.
func NewCounter(tbl *kv.Table, key, attr string) *Counter {
	return &Counter{tbl: tbl, key: key, attr: attr}
}

// Add atomically adds delta and returns the new value.
func (c *Counter) Add(ctx cloud.Ctx, delta int64) (int64, error) {
	item, err := c.tbl.Update(ctx, c.key, []kv.Update{kv.Add{Name: c.attr, Delta: delta}}, nil)
	if err != nil {
		return 0, err
	}
	return item[c.attr].Num, nil
}

// Get reads the current value (0 when unset).
func (c *Counter) Get(ctx cloud.Ctx, consistent bool) (int64, error) {
	item, ok := c.tbl.Get(ctx, c.key, consistent)
	if !ok {
		return 0, nil
	}
	return item[c.attr].Num, nil
}

// List is an atomic list of int64 stored in a single item attribute; it
// supports safe expansion and truncation (the epoch counter's backing
// primitive).
type List struct {
	tbl  *kv.Table
	key  string
	attr string
}

// NewList binds a list to tbl[key].attr.
func NewList(tbl *kv.Table, key, attr string) *List {
	return &List{tbl: tbl, key: key, attr: attr}
}

// Append atomically appends values and returns the new content.
func (l *List) Append(ctx cloud.Ctx, vals ...int64) ([]int64, error) {
	item, err := l.tbl.Update(ctx, l.key, []kv.Update{kv.ListAppend{Name: l.attr, Vals: vals}}, nil)
	if err != nil {
		return nil, err
	}
	return item[l.attr].NL, nil
}

// Remove atomically removes all occurrences of the given values.
func (l *List) Remove(ctx cloud.Ctx, vals ...int64) ([]int64, error) {
	item, err := l.tbl.Update(ctx, l.key, []kv.Update{kv.ListRemove{Name: l.attr, Vals: vals}}, nil)
	if err != nil {
		return nil, err
	}
	return item[l.attr].NL, nil
}

// Get reads the current content.
func (l *List) Get(ctx cloud.Ctx, consistent bool) ([]int64, error) {
	item, ok := l.tbl.Get(ctx, l.key, consistent)
	if !ok {
		return nil, nil
	}
	return item[l.attr].NL, nil
}
