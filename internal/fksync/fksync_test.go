package fksync

import (
	"errors"
	"testing"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/sim"
)

func setup(seed int64) (*sim.Kernel, *cloud.Env, *kv.Table, cloud.Ctx) {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	tbl := kv.NewTable(env, "system")
	return k, env, tbl, cloud.ClientCtx(cloud.RegionAWSHome)
}

func TestLockMutualExclusion(t *testing.T) {
	k, env, tbl, ctx := setup(1)
	m := NewLockManager(env, tbl, time.Second)
	holders := 0
	maxHolders := 0
	for i := 0; i < 5; i++ {
		k.Go("worker", func() {
			l, _, err := m.AcquireWait(ctx, "node:/x", 0)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			k.Sleep(10 * sim.Ms(1))
			holders--
			if err := m.Release(ctx, l); err != nil {
				t.Errorf("release: %v", err)
			}
		})
	}
	k.Run()
	if maxHolders != 1 {
		t.Fatalf("max concurrent holders = %d", maxHolders)
	}
}

func TestLockExpiresAndCanBeStolen(t *testing.T) {
	k, env, tbl, ctx := setup(2)
	m := NewLockManager(env, tbl, 500*time.Millisecond)
	k.Go("crashy", func() {
		_, _, err := m.Acquire(ctx, "node:/x")
		if err != nil {
			t.Errorf("first acquire: %v", err)
		}
		// Crashes without releasing.
	})
	var stolen bool
	k.Go("second", func() {
		k.Sleep(50 * sim.Ms(1))
		if _, _, err := m.Acquire(ctx, "node:/x"); !errors.Is(err, ErrLockHeld) {
			t.Errorf("early steal should fail: %v", err)
		}
		k.Sleep(600 * sim.Ms(1)) // past the lease
		if _, _, err := m.Acquire(ctx, "node:/x"); err != nil {
			t.Errorf("steal after expiry: %v", err)
		} else {
			stolen = true
		}
	})
	k.Run()
	if !stolen {
		t.Fatal("expired lock was not reacquired")
	}
}

func TestExpiredHolderCannotCommit(t *testing.T) {
	// The paper: "To prevent accidental overwriting after losing the lock,
	// each update to a locked resource compares the stored timestamp."
	k, env, tbl, ctx := setup(3)
	m := NewLockManager(env, tbl, 200*time.Millisecond)
	k.Go("slow", func() {
		l, _, err := m.Acquire(ctx, "node:/x")
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		k.Sleep(400 * sim.Ms(1)) // lease expires mid-work
		// Meanwhile "fast" stole the lock below.
		_, err = m.CommitUnlock(ctx, l, []kv.Update{kv.Set{Name: "v", V: kv.N(1)}})
		if !errors.Is(err, ErrLockLost) {
			t.Errorf("stale commit err = %v, want ErrLockLost", err)
		}
	})
	k.Go("fast", func() {
		k.Sleep(250 * sim.Ms(1))
		l, _, err := m.Acquire(ctx, "node:/x")
		if err != nil {
			t.Errorf("steal: %v", err)
			return
		}
		if _, err := m.CommitUnlock(ctx, l, []kv.Update{kv.Set{Name: "v", V: kv.N(2)}}); err != nil {
			t.Errorf("fresh commit: %v", err)
		}
	})
	k.Run()
	it, _ := tbl.Peek("node:/x")
	if it["v"].Num != 2 {
		t.Fatalf("v = %v, stale writer overwrote", it["v"])
	}
	if _, hasLock := it[LockAttr]; hasLock {
		t.Fatal("lock attr not cleared")
	}
}

func TestCommitUnlockAppliesAtomically(t *testing.T) {
	k, env, tbl, ctx := setup(4)
	m := NewLockManager(env, tbl, time.Second)
	k.Go("w", func() {
		l, _, _ := m.Acquire(ctx, "node:/x")
		_, err := m.CommitUnlock(ctx, l, []kv.Update{
			kv.Set{Name: "v", V: kv.N(7)},
			kv.ListAppend{Name: "pending", Vals: []int64{3}},
		})
		if err != nil {
			t.Errorf("commit: %v", err)
		}
		// Lock released: immediate re-acquire must succeed.
		if _, _, err := m.Acquire(ctx, "node:/x"); err != nil {
			t.Errorf("reacquire: %v", err)
		}
	})
	k.Run()
	it, _ := tbl.Peek("node:/x")
	if it["v"].Num != 7 || len(it["pending"].NL) != 1 {
		t.Fatalf("item = %v", it)
	}
}

func TestCommitUnlockTxMultiNode(t *testing.T) {
	k, env, tbl, ctx := setup(5)
	m := NewLockManager(env, tbl, time.Second)
	k.Go("w", func() {
		ln, _, _ := m.Acquire(ctx, "node:/parent/child")
		lp, _, _ := m.Acquire(ctx, "node:/parent")
		err := m.CommitUnlockTx(ctx, []TxPart{
			{Lock: ln, Updates: []kv.Update{kv.Set{Name: "exists", V: kv.N(1)}}},
			{Lock: lp, Updates: []kv.Update{kv.StrListAppend{Name: "children", Vals: []string{"child"}}}},
		})
		if err != nil {
			t.Errorf("tx: %v", err)
		}
	})
	k.Run()
	child, _ := tbl.Peek("node:/parent/child")
	parent, _ := tbl.Peek("node:/parent")
	if child["exists"].Num != 1 {
		t.Fatalf("child = %v", child)
	}
	if len(parent["children"].SL) != 1 || parent["children"].SL[0] != "child" {
		t.Fatalf("parent = %v", parent)
	}
	if _, locked := parent[LockAttr]; locked {
		t.Fatal("parent still locked")
	}
}

func TestCommitUnlockTxFailsAtomically(t *testing.T) {
	k, env, tbl, ctx := setup(6)
	m := NewLockManager(env, tbl, time.Second)
	k.Go("w", func() {
		ln, _, _ := m.Acquire(ctx, "node:/a")
		stale := Lock{Key: "node:/b", Timestamp: 1} // never acquired
		err := m.CommitUnlockTx(ctx, []TxPart{
			{Lock: ln, Updates: []kv.Update{kv.Set{Name: "v", V: kv.N(1)}}},
			{Lock: stale, Updates: []kv.Update{kv.Set{Name: "v", V: kv.N(2)}}},
		})
		if !errors.Is(err, ErrLockLost) {
			t.Errorf("tx err = %v", err)
		}
	})
	k.Run()
	a, _ := tbl.Peek("node:/a")
	if a["v"].Num != 0 {
		t.Fatalf("partial tx applied: %v", a)
	}
}

func TestAtomicCounter(t *testing.T) {
	k, env, tbl, ctx := setup(7)
	c := NewCounter(tbl, "fxid", "v")
	results := map[int64]bool{}
	for i := 0; i < 10; i++ {
		k.Go("inc", func() {
			v, err := c.Add(ctx, 1)
			if err != nil {
				t.Errorf("add: %v", err)
				return
			}
			if results[v] {
				t.Errorf("duplicate counter value %d", v)
			}
			results[v] = true
		})
	}
	k.Run()
	_ = env
	if len(results) != 10 || !results[10] {
		t.Fatalf("results = %v", results)
	}
	k2 := sim.NewKernel(8)
	env2 := cloud.NewEnv(k2, cloud.AWSProfile())
	tbl2 := kv.NewTable(env2, "t")
	c2 := NewCounter(tbl2, "x", "v")
	k2.Go("read", func() {
		if v, _ := c2.Get(cloud.ClientCtx(cloud.RegionAWSHome), true); v != 0 {
			t.Errorf("unset counter = %d", v)
		}
	})
	k2.Run()
}

func TestAtomicList(t *testing.T) {
	k, env, tbl, ctx := setup(9)
	_ = env
	l := NewList(tbl, "epoch:us-east-1", "w")
	k.Go("w", func() {
		if got, _ := l.Append(ctx, 1, 2); len(got) != 2 {
			t.Errorf("append: %v", got)
		}
		if got, _ := l.Append(ctx, 3); len(got) != 3 {
			t.Errorf("append: %v", got)
		}
		got, _ := l.Remove(ctx, 2)
		if len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Errorf("remove: %v", got)
		}
		if got, _ := l.Get(ctx, true); len(got) != 2 {
			t.Errorf("get: %v", got)
		}
	})
	k.Run()
}

func TestLockLatencyMatchesPaperShape(t *testing.T) {
	// Table 6a: locking a 64 kB item is much slower than a 1 kB item, and
	// the conditional update adds ~2.5 ms to the median regular write.
	k, env, tbl, ctx := setup(10)
	m := NewLockManager(env, tbl, time.Second)
	var lockSmall, lockLarge, plain sim.Time
	k.Go("bench", func() {
		tbl.Put(ctx, "small", kv.Item{"d": kv.B(make([]byte, 1024))}, nil)
		tbl.Put(ctx, "large", kv.Item{"d": kv.B(make([]byte, 64*1024))}, nil)
		n := 60
		t0 := k.Now()
		for i := 0; i < n; i++ {
			l, _, _ := m.Acquire(ctx, "small")
			m.Release(ctx, l)
		}
		lockSmall = (k.Now() - t0) / sim.Time(2*n)
		t0 = k.Now()
		for i := 0; i < n; i++ {
			l, _, _ := m.Acquire(ctx, "large")
			m.Release(ctx, l)
		}
		lockLarge = (k.Now() - t0) / sim.Time(2*n)
		t0 = k.Now()
		for i := 0; i < n; i++ {
			tbl.Update(ctx, "small", []kv.Update{kv.Set{Name: "x", V: kv.N(1)}}, nil)
		}
		plain = (k.Now() - t0) / sim.Time(n)
	})
	k.Run()
	if lockLarge < 5*lockSmall {
		t.Fatalf("64kB lock %v not >> 1kB lock %v", lockLarge, lockSmall)
	}
	if lockSmall <= plain {
		t.Fatalf("conditional lock %v not slower than plain write %v", lockSmall, plain)
	}
	if d := sim.DurMs(lockSmall - plain); d < 1 || d > 6 {
		t.Fatalf("conditional surcharge = %.2f ms, want ~2.5", d)
	}
}
