package sim

// FaultHook is the kernel-level fault-injection seam. A hook installed
// with SetFaultHook is consulted by the simulated cloud services at their
// failure points: labeled pipeline stages ask Crash whether the function
// should die there, queue triggers ask Redeliver whether a successfully
// processed batch should be delivered a second time (at-least-once
// semantics), queues ask DeliveryDelay for extra in-flight latency, and
// the storage latency model asks OpDelay for per-operation jitter.
//
// The hook is nil by default and every call site guards on that, so a
// deployment without a hook runs byte-identical to one built before this
// seam existed — in particular the golden virtual-time trace does not
// move, and no random numbers are drawn. Implementations live outside the
// simulator (package chaos); they must draw randomness from their own
// seeded source, never from the kernel's, so installing a hook perturbs
// timing only through the faults it actually injects.
type FaultHook interface {
	// Crash reports whether the currently running function should fail at
	// the labeled stage while processing (session, seq). The call site
	// returns an error to its trigger, which retries the batch — so an
	// implementation must bound how often it fires for one key or the
	// retry budget drains and requests are lost.
	Crash(stage, session string, seq int64) bool

	// Redeliver reports whether the batch just processed successfully by
	// the named function should be delivered once more — the duplicate
	// delivery every at-least-once queue permits.
	Redeliver(fn string) bool

	// DeliveryDelay returns extra latency to add to one batch delivery
	// from the named queue (0 for none).
	DeliveryDelay(queue string) Time

	// OpDelay returns extra latency to add to one storage/service
	// operation (0 for none).
	OpDelay() Time
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
func (k *Kernel) SetFaultHook(h FaultHook) { k.fault = h }

// Fault returns the installed fault-injection hook, nil when none is set.
func (k *Kernel) Fault() FaultHook { return k.fault }
