// Package sim implements a deterministic discrete-event simulation kernel.
//
// All concurrency in the simulated cloud (functions, storage services,
// queues, clients, ZooKeeper servers) is expressed as sim processes.
// Exactly one process is runnable at any instant: the kernel hands control
// to a process, the process runs until it blocks on a kernel primitive
// (Sleep, Future.Wait, Queue.Pop, ...) and control returns to the kernel,
// which advances virtual time to the next scheduled event. Runs are fully
// deterministic for a given seed, there are no data races by construction,
// and virtual time is free: simulating 24 hours costs only the events that
// occur within them.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, measured as an offset from the start
// of the simulation.
type Time = time.Duration

// Kernel is the discrete-event scheduler. Create one with NewKernel, spawn
// processes with Go or Spawn, then call Run (or RunFor) to execute events.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     int64
	current *Process
	parked  chan struct{}
	rng     *rand.Rand
	nextID  int64
	live    map[int64]*Process
	stopped bool
	fault   FaultHook
}

// Process is a simulated thread of control. Processes are created by
// Kernel.Go and scheduled cooperatively by the kernel.
type Process struct {
	id   int64
	name string
	k    *Kernel

	resume  chan struct{}
	parkSeq int64 // bumped on every resume; wake-ups carrying an older seq are stale
	done    bool
	killed  bool
}

// killedPanic is the value panicked through a process stack when the kernel
// shuts down while the process is parked.
type killedPanic struct{}

type event struct {
	at      Time
	seq     int64 // insertion order; total tiebreaker for determinism
	proc    *Process
	wakeSeq int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		live:   make(map[int64]*Process),
	}
}

// Clock is the read-only view of a virtual clock: the hook telemetry
// spans (and any other passive observer) use to timestamp events without
// holding a reference to the whole kernel. *Kernel implements it.
type Clock interface {
	Now() Time
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from inside processes (or before Run), never concurrently.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Current returns the currently running process. It is only meaningful when
// called from inside a process.
func (k *Kernel) Current() *Process { return k.current }

// Name returns the process name given at spawn time.
func (p *Process) Name() string { return p.name }

// ID returns the unique process id.
func (p *Process) ID() int64 { return p.id }

// Done reports whether the process function has returned.
func (p *Process) Done() bool { return p.done }

func (k *Kernel) scheduleWake(at Time, p *Process, wakeSeq int64) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, proc: p, wakeSeq: wakeSeq})
}

// park blocks the current process until some event wakes it. It must be
// called with at least one wake-up already scheduled (or registered with a
// future/queue), otherwise the process sleeps forever.
func (k *Kernel) park() {
	p := k.current
	k.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{})
	}
}

// Go spawns a new process executing fn, scheduled to start at the current
// virtual time. It may be called before Run or from inside a running
// process.
func (k *Kernel) Go(name string, fn func()) *Process {
	k.nextID++
	p := &Process{id: k.nextID, name: name, k: k, resume: make(chan struct{})}
	k.live[p.id] = p
	go func() {
		<-p.resume
		if p.killed {
			p.done = true
			delete(k.live, p.id)
			k.parked <- struct{}{}
			return
		}
		defer func() {
			p.done = true
			delete(k.live, p.id)
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); ok {
					k.parked <- struct{}{}
					return
				}
				panic(r) // real bug: crash loudly
			}
			k.parked <- struct{}{}
		}()
		fn()
	}()
	k.scheduleWake(k.now, p, 0)
	return p
}

// Sleep suspends the current process for d of virtual time.
func (k *Kernel) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p := k.current
	k.scheduleWake(k.now+d, p, p.parkSeq)
	k.park()
}

// Yield reschedules the current process at the current time, letting any
// other process scheduled for the same instant run first.
func (k *Kernel) Yield() { k.Sleep(0) }

// Run executes events until none remain or the kernel is stopped. It
// returns the final virtual time. Processes still parked when Run returns
// (for example servers waiting for requests) are left suspended; call
// Shutdown to release their goroutines.
func (k *Kernel) Run() Time {
	return k.RunUntil(1<<62 - 1)
}

// RunUntil executes events with timestamps <= limit and returns the final
// virtual time (which may exceed limit only if it already did on entry).
func (k *Kernel) RunUntil(limit Time) Time {
	for len(k.events) > 0 && !k.stopped {
		if k.events.peek().at > limit {
			k.now = limit
			break
		}
		ev := heap.Pop(&k.events).(event)
		p := ev.proc
		if p.done || ev.wakeSeq != p.parkSeq {
			continue // stale wake-up (timeout raced with completion, etc.)
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		p.parkSeq++
		k.current = p
		p.resume <- struct{}{}
		<-k.parked
	}
	k.current = nil
	return k.now
}

// RunFor runs the simulation for d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) Time { return k.RunUntil(k.now + d) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Live returns the number of processes that have been spawned and have not
// yet finished.
func (k *Kernel) Live() int { return len(k.live) }

// Shutdown terminates all live processes by unwinding their stacks, so the
// underlying goroutines exit. The kernel must not be used afterwards. It is
// safe to call after Run returns; it must not be called from inside a
// process.
func (k *Kernel) Shutdown() {
	// Drain any still-pending events so stale resumes do not interfere.
	k.events = nil
	for _, p := range k.live {
		if p.done {
			continue
		}
		p.killed = true
		k.current = p
		p.resume <- struct{}{}
		<-k.parked
	}
	k.live = map[int64]*Process{}
}

// waiter records a parked process together with the park generation the
// wake-up must match; stale generations are dropped by the scheduler.
type waiter struct {
	p   *Process
	seq int64
}

func (k *Kernel) waiterFor(p *Process) waiter { return waiter{p: p, seq: p.parkSeq} }

func (k *Kernel) wake(w waiter) { k.scheduleWake(k.now, w.p, w.seq) }

func (k *Kernel) wakeAt(at Time, w waiter) { k.scheduleWake(at, w.p, w.seq) }

// String implements fmt.Stringer for debugging.
func (p *Process) String() string { return fmt.Sprintf("proc(%d:%s)", p.id, p.name) }
