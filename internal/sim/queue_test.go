package sim

import (
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	k.Go("consumer", func() {
		for i := 0; i < 5; i++ {
			v, ok := q.Pop()
			if !ok {
				t.Errorf("unexpected close")
				return
			}
			got = append(got, v)
		}
	})
	k.Go("producer", func() {
		for i := 0; i < 5; i++ {
			k.Sleep(time.Millisecond)
			q.Push(i)
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("len %d", len(got))
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[string](k)
	var at Time
	k.Go("consumer", func() {
		q.Pop()
		at = k.Now()
	})
	k.Go("producer", func() {
		k.Sleep(7 * time.Millisecond)
		q.Push("x")
	})
	k.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("popped at %v", at)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var ok bool
	var at Time
	k.Go("consumer", func() {
		_, ok = q.PopTimeout(3 * time.Millisecond)
		at = k.Now()
	})
	k.Run()
	if ok || at != 3*time.Millisecond {
		t.Fatalf("ok=%v at=%v", ok, at)
	}
}

func TestQueuePopTimeoutDeliversEarlyPush(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var v int
	var ok bool
	k.Go("consumer", func() { v, ok = q.PopTimeout(10 * time.Millisecond) })
	k.Go("producer", func() {
		k.Sleep(2 * time.Millisecond)
		q.Push(9)
	})
	k.Run()
	if !ok || v != 9 {
		t.Fatalf("v=%d ok=%v", v, ok)
	}
}

func TestQueueClose(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	q.Push(1)
	var vals []int
	var closedSeen bool
	k.Go("consumer", func() {
		for {
			v, ok := q.Pop()
			if !ok {
				closedSeen = true
				return
			}
			vals = append(vals, v)
		}
	})
	k.Go("closer", func() {
		k.Sleep(time.Millisecond)
		q.Close()
	})
	k.Run()
	if !closedSeen || len(vals) != 1 {
		t.Fatalf("closed=%v vals=%v", closedSeen, vals)
	}
}

func TestQueuePopBatchCollectsBuffered(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	for i := 0; i < 7; i++ {
		q.Push(i)
	}
	var batch []int
	k.Go("poller", func() { batch = q.PopBatch(5, 0) })
	k.Run()
	if len(batch) != 5 || batch[0] != 0 || batch[4] != 4 {
		t.Fatalf("batch = %v", batch)
	}
	if q.Len() != 2 {
		t.Fatalf("left %d", q.Len())
	}
}

func TestQueuePopBatchWindowGathersLateArrivals(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var batch []int
	k.Go("poller", func() { batch = q.PopBatch(10, 5*time.Millisecond) })
	k.Go("producer", func() {
		q.Push(0)
		k.Sleep(2 * time.Millisecond)
		q.Push(1)
		k.Sleep(10 * time.Millisecond) // outside the window
		q.Push(2)
	})
	k.Run()
	if len(batch) != 2 {
		t.Fatalf("batch = %v", batch)
	}
}

func TestTwoConsumersShareItemsWithoutLoss(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	seen := map[int]bool{}
	consume := func() {
		for {
			v, ok := q.Pop()
			if !ok {
				return
			}
			if seen[v] {
				t.Errorf("duplicate %d", v)
			}
			seen[v] = true
			k.Sleep(time.Millisecond)
		}
	}
	k.Go("c1", consume)
	k.Go("c2", consume)
	k.Go("producer", func() {
		for i := 0; i < 20; i++ {
			q.Push(i)
			k.Sleep(time.Millisecond / 2)
		}
		q.Close()
	})
	k.Run()
	if len(seen) != 20 {
		t.Fatalf("saw %d items", len(seen))
	}
}
