package sim

// Future is a one-shot value that processes can wait on. It is the
// simulation counterpart of a channel receive with exactly one send.
type Future[T any] struct {
	k       *Kernel
	done    bool
	val     T
	waiters []waiter
}

// NewFuture creates an incomplete future bound to kernel k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed value; it is only meaningful once Done
// reports true.
func (f *Future[T]) Value() T { return f.val }

// Complete resolves the future and wakes all waiters. Completing an
// already-complete future panics: in the protocols built on top of futures
// a double completion is always a bug.
func (f *Future[T]) Complete(v T) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = v
	for _, w := range f.waiters {
		f.k.wake(w)
	}
	f.waiters = nil
}

// TryComplete resolves the future if it is not already resolved and reports
// whether this call won.
func (f *Future[T]) TryComplete(v T) bool {
	if f.done {
		return false
	}
	f.Complete(v)
	return true
}

// Wait blocks the current process until the future completes and returns
// its value. If the future is already complete it returns immediately
// without yielding.
func (f *Future[T]) Wait() T {
	if !f.done {
		p := f.k.current
		f.waiters = append(f.waiters, f.k.waiterFor(p))
		f.k.park()
	}
	return f.val
}

// WaitTimeout waits for at most d of virtual time. It returns the value and
// true if the future completed, or the zero value and false on timeout.
func (f *Future[T]) WaitTimeout(d Time) (T, bool) {
	if !f.done {
		p := f.k.current
		w := f.k.waiterFor(p)
		f.waiters = append(f.waiters, w)
		f.k.wakeAt(f.k.now+d, w)
		f.k.park()
	}
	if !f.done {
		var zero T
		return zero, false
	}
	return f.val, true
}

// WaitGroup waits for a collection of processes or operations to finish.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiters []waiter
}

// NewWaitGroup creates a WaitGroup bound to kernel k.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add increments the outstanding-operation count by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the count, waking waiters when it reaches zero.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			wg.k.wake(w)
		}
		wg.waiters = nil
	}
}

// Wait blocks until the count is zero.
func (wg *WaitGroup) Wait() {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, wg.k.waiterFor(wg.k.current))
		wg.k.park()
	}
}

// Semaphore is a counting semaphore with FIFO wake-up order.
type Semaphore struct {
	k       *Kernel
	permits int
	waiters []waiter
}

// NewSemaphore creates a semaphore with the given number of permits.
func NewSemaphore(k *Kernel, permits int) *Semaphore {
	return &Semaphore{k: k, permits: permits}
}

// Acquire takes one permit, blocking while none are available.
func (s *Semaphore) Acquire() {
	for s.permits == 0 {
		s.waiters = append(s.waiters, s.k.waiterFor(s.k.current))
		s.k.park()
	}
	s.permits--
}

// TryAcquire takes a permit if one is free and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits == 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns one permit and wakes one waiter if any.
func (s *Semaphore) Release() {
	s.permits++
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.seq == w.p.parkSeq && !w.p.done { // still parked on us
			s.k.wake(w)
			return
		}
	}
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.permits }
