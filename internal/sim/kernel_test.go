package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Go("sleeper", func() {
		k.Sleep(5 * time.Second)
		woke = k.Now()
	})
	end := k.Run()
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if end != 5*time.Second {
		t.Fatalf("run ended at %v, want 5s", end)
	}
}

func TestEventOrderingIsDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		k := NewKernel(seed)
		var order []string
		spawn := func(name string, d time.Duration) {
			k.Go(name, func() {
				k.Sleep(d)
				order = append(order, name)
			})
		}
		spawn("a", 3*time.Millisecond)
		spawn("b", 1*time.Millisecond)
		spawn("c", 2*time.Millisecond)
		spawn("d", 1*time.Millisecond) // same time as b: spawn order breaks the tie
		k.Run()
		return order
	}
	want := []string{"b", "d", "c", "a"}
	for seed := int64(0); seed < 3; seed++ {
		got := run(seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %v", seed, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: got %v want %v", seed, got, want)
			}
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	k := NewKernel(1)
	var hits []Time
	k.Go("outer", func() {
		k.Sleep(time.Second)
		k.Go("inner", func() {
			k.Sleep(time.Second)
			hits = append(hits, k.Now())
		})
		k.Sleep(3 * time.Second)
		hits = append(hits, k.Now())
	})
	k.Run()
	if len(hits) != 2 || hits[0] != 2*time.Second || hits[1] != 4*time.Second {
		t.Fatalf("hits = %v", hits)
	}
}

func TestFutureWaitAndComplete(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var got int
	var at Time
	k.Go("waiter", func() {
		got = f.Wait()
		at = k.Now()
	})
	k.Go("completer", func() {
		k.Sleep(10 * time.Millisecond)
		f.Complete(42)
	})
	k.Run()
	if got != 42 || at != 10*time.Millisecond {
		t.Fatalf("got %d at %v", got, at)
	}
}

func TestFutureWaitTimeout(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[string](k)
	var ok bool
	var at Time
	k.Go("waiter", func() {
		_, ok = f.WaitTimeout(5 * time.Millisecond)
		at = k.Now()
	})
	k.Run()
	if ok {
		t.Fatal("expected timeout")
	}
	if at != 5*time.Millisecond {
		t.Fatalf("timed out at %v", at)
	}
}

func TestFutureTimeoutThenLateCompleteIsIgnored(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var timedOut bool
	var resumedTwice int
	k.Go("waiter", func() {
		_, ok := f.WaitTimeout(time.Millisecond)
		timedOut = !ok
		resumedTwice++
		k.Sleep(10 * time.Millisecond) // late Complete must not wake this sleep early
		resumedTwice++
	})
	k.Go("late", func() {
		k.Sleep(2 * time.Millisecond)
		f.Complete(7)
	})
	end := k.Run()
	if !timedOut {
		t.Fatal("want timeout")
	}
	if resumedTwice != 2 {
		t.Fatalf("resume count %d", resumedTwice)
	}
	if end != 11*time.Millisecond {
		t.Fatalf("end %v", end)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(1)
	wg := NewWaitGroup(k)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		d := time.Duration(i) * time.Second
		k.Go("w", func() {
			k.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func() {
		wg.Wait()
		doneAt = k.Now()
	})
	k.Run()
	if doneAt != 3*time.Second {
		t.Fatalf("doneAt %v", doneAt)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 2)
	active, maxActive := 0, 0
	for i := 0; i < 6; i++ {
		k.Go("worker", func() {
			sem.Acquire()
			active++
			if active > maxActive {
				maxActive = active
			}
			k.Sleep(time.Second)
			active--
			sem.Release()
		})
	}
	end := k.Run()
	if maxActive != 2 {
		t.Fatalf("maxActive = %d, want 2", maxActive)
	}
	if end != 3*time.Second {
		t.Fatalf("end %v, want 3s (6 jobs / 2 wide / 1s each)", end)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Go("ticker", func() {
		for {
			k.Sleep(time.Second)
			ticks++
		}
	})
	k.RunFor(5500 * time.Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if k.Now() != 5500*time.Millisecond {
		t.Fatalf("now = %v", k.Now())
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Fatalf("live = %d after shutdown", k.Live())
	}
}

func TestShutdownReleasesParkedProcesses(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	for i := 0; i < 4; i++ {
		k.Go("blocked", func() {
			q.Pop() // blocks forever
		})
	}
	k.Run()
	if k.Live() != 4 {
		t.Fatalf("live = %d, want 4 parked", k.Live())
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Fatalf("live = %d after shutdown", k.Live())
	}
}

func TestYieldInterleavesSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Go("a", func() {
		order = append(order, 1)
		k.Yield()
		order = append(order, 3)
	})
	k.Go("b", func() {
		order = append(order, 2)
		k.Yield()
		order = append(order, 4)
	})
	k.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}
