package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestTimeNeverRegressesProperty: no matter how sleeps interleave, the
// kernel's clock is non-decreasing at every wake-up and every process
// wakes exactly as many times as it sleeps.
func TestTimeNeverRegressesProperty(t *testing.T) {
	f := func(seed int64, delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel(seed)
		var last Time
		ok := true
		wakes := 0
		for pi := 0; pi < 4; pi++ {
			pi := pi
			k.Go("p", func() {
				for j, d := range delays {
					if j%4 != pi {
						continue
					}
					k.Sleep(time.Duration(d) * time.Microsecond)
					if k.Now() < last {
						ok = false
					}
					last = k.Now()
					wakes++
				}
			})
		}
		k.Run()
		k.Shutdown()
		return ok && wakes == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismAcrossRunsProperty: identical seeds produce identical
// schedules even with randomized latency sampling in between.
func TestDeterminismAcrossRunsProperty(t *testing.T) {
	run := func(seed int64) []Time {
		k := NewKernel(seed)
		d := Q(1, 3, 9, 20, 100)
		var trace []Time
		for p := 0; p < 3; p++ {
			k.Go("p", func() {
				for i := 0; i < 10; i++ {
					k.Sleep(d.Sample(k.Rand()))
					trace = append(trace, k.Now())
				}
			})
		}
		k.Run()
		k.Shutdown()
		return trace
	}
	for seed := int64(0); seed < 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: divergence at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestFutureCompletedTwicePanics guards the double-completion invariant.
func TestFutureCompletedTwicePanics(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	k.Go("x", func() {
		f.Complete(1)
		defer func() {
			if recover() == nil {
				t.Error("second Complete did not panic")
			}
		}()
		f.Complete(2)
	})
	k.Run()
	k.Shutdown()
	if f.TryComplete(3) {
		// TryComplete on a done future must report false.
		t.Error("TryComplete on done future returned true")
	}
}

// TestSemaphoreTryAcquire covers the non-blocking path.
func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(1)
	s := NewSemaphore(k, 1)
	k.Go("x", func() {
		if !s.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if s.TryAcquire() {
			t.Error("second TryAcquire should fail")
		}
		s.Release()
		if s.Available() != 1 {
			t.Errorf("available = %d", s.Available())
		}
	})
	k.Run()
	k.Shutdown()
}

// TestWaitGroupNegativePanics guards against double Done.
func TestWaitGroupNegativePanics(t *testing.T) {
	k := NewKernel(1)
	wg := NewWaitGroup(k)
	k.Go("x", func() {
		wg.Add(1)
		wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("negative WaitGroup did not panic")
			}
		}()
		wg.Done()
	})
	k.Run()
	k.Shutdown()
}
