package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestConstAndUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if d := (Const(5 * time.Millisecond)).Sample(r); d != 5*time.Millisecond {
		t.Fatalf("const sample %v", d)
	}
	u := Uniform{Lo: time.Millisecond, Hi: 2 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := u.Sample(r)
		if d < u.Lo || d > u.Hi {
			t.Fatalf("uniform out of range: %v", d)
		}
	}
}

func TestQuantileReproducesCalibrationPoints(t *testing.T) {
	// The DynamoDB 1 kB write row from Table 6a of the paper.
	d := Q(3.95, 4.35, 4.79, 6.33, 60.26)
	checks := []struct {
		u    float64
		want float64
	}{
		{0, 3.95}, {0.5, 4.35}, {0.95, 4.79}, {0.99, 6.33}, {1, 60.26},
	}
	for _, c := range checks {
		got := DurMs(d.at(c.u))
		if got < c.want*0.999 || got > c.want*1.001 {
			t.Fatalf("at(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

func TestQuantileEmpiricalPercentiles(t *testing.T) {
	d := Q(3.95, 4.35, 4.79, 6.33, 60.26)
	r := rand.New(rand.NewSource(7))
	n := 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = DurMs(d.Sample(r))
	}
	sort.Float64s(samples)
	p50 := samples[n/2]
	p99 := samples[n*99/100]
	if p50 < 4.0 || p50 > 4.7 {
		t.Fatalf("empirical p50 = %v", p50)
	}
	if p99 < 5.0 || p99 > 9.0 {
		t.Fatalf("empirical p99 = %v", p99)
	}
	if samples[0] < 3.95 || samples[n-1] > 60.26 {
		t.Fatalf("range [%v, %v]", samples[0], samples[n-1])
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	d := Q(1, 2, 10, 50, 300)
	f := func(a, b float64) bool {
		ua, ub := a-float64(int(a)), b-float64(int(b)) // frac parts in (-1,1)
		if ua < 0 {
			ua = -ua
		}
		if ub < 0 {
			ub = -ub
		}
		lo, hi := ua, ub
		if lo > hi {
			lo, hi = hi, lo
		}
		return d.at(lo) <= d.at(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("short", func() { NewQuantile([]float64{0}, []float64{1}) })
	mustPanic("span", func() { NewQuantile([]float64{0.1, 1}, []float64{1, 2}) })
	mustPanic("nonmono-q", func() { NewQuantile([]float64{0, 0.5, 0.5, 1}, []float64{1, 2, 3, 4}) })
	mustPanic("decreasing-v", func() { NewQuantile([]float64{0, 1}, []float64{2, 1}) })
	mustPanic("nonpositive", func() { NewQuantile([]float64{0, 1}, []float64{0, 1}) })
}

func TestScaleShiftSum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	base := Const(10 * time.Millisecond)
	if got := Scale(base, 2).Sample(r); got != 20*time.Millisecond {
		t.Fatalf("scale: %v", got)
	}
	if got := Shift(base, 5*time.Millisecond).Sample(r); got != 15*time.Millisecond {
		t.Fatalf("shift: %v", got)
	}
	s := Sum{base, base, Const(time.Millisecond)}
	if got := s.Sample(r); got != 21*time.Millisecond {
		t.Fatalf("sum: %v", got)
	}
}

func TestMsRoundTrip(t *testing.T) {
	if Ms(2.5) != 2500*time.Microsecond {
		t.Fatalf("Ms: %v", Ms(2.5))
	}
	if DurMs(2500*time.Microsecond) != 2.5 {
		t.Fatalf("DurMs: %v", DurMs(2500*time.Microsecond))
	}
}
