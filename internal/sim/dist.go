package sim

import (
	"math"
	"math/rand"
	"time"
)

// Dist is a latency distribution sampled with the kernel's random source.
type Dist interface {
	Sample(r *rand.Rand) time.Duration
}

// Const is a distribution that always returns the same duration.
type Const time.Duration

// Sample implements Dist.
func (c Const) Sample(*rand.Rand) time.Duration { return time.Duration(c) }

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample implements Dist.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Int63n(int64(u.Hi-u.Lo)))
}

// Quantile is a piecewise-linear inverse CDF through calibration points.
// Interpolation happens in the log domain so the long right tails reported
// in the paper (p99 and max far above the median) are reproduced without
// distorting the body of the distribution.
type Quantile struct {
	qs []float64 // strictly increasing in [0,1]
	vs []float64 // corresponding values, milliseconds, > 0
}

// Q builds a Quantile distribution from the five statistics the paper
// reports for its latency tables: min, median, p95, p99 and max, all in
// milliseconds.
func Q(min, p50, p95, p99, max float64) *Quantile {
	return NewQuantile(
		[]float64{0, 0.50, 0.95, 0.99, 1},
		[]float64{min, p50, p95, p99, max},
	)
}

// Q90 builds a Quantile distribution from min/p50/p90/p95/p99 rows
// (Table 3 in the paper uses p90 instead of max).
func Q90(min, p50, p90, p95, p99 float64) *Quantile {
	// Extrapolate a max at 1.5x p99: the paper's Table 3 omits it and the
	// exact tail end has no effect on medians or p99s we report.
	return NewQuantile(
		[]float64{0, 0.50, 0.90, 0.95, 0.99, 1},
		[]float64{min, p50, p90, p95, p99, p99 * 1.5},
	)
}

// NewQuantile builds a distribution from arbitrary (quantile, value) pairs.
// Quantiles must start at 0, end at 1, and increase strictly; values must
// be positive and non-decreasing.
func NewQuantile(qs, vs []float64) *Quantile {
	if len(qs) != len(vs) || len(qs) < 2 {
		panic("sim: NewQuantile needs matching quantile/value slices of length >= 2")
	}
	if qs[0] != 0 || qs[len(qs)-1] != 1 {
		panic("sim: quantiles must span [0,1]")
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] <= qs[i-1] {
			panic("sim: quantiles must increase strictly")
		}
		if vs[i] < vs[i-1] {
			panic("sim: quantile values must be non-decreasing")
		}
	}
	if vs[0] <= 0 {
		panic("sim: quantile values must be positive")
	}
	return &Quantile{qs: append([]float64(nil), qs...), vs: append([]float64(nil), vs...)}
}

// Sample implements Dist.
func (d *Quantile) Sample(r *rand.Rand) time.Duration {
	u := r.Float64()
	return d.at(u)
}

// at evaluates the inverse CDF at u in [0,1].
func (d *Quantile) at(u float64) time.Duration {
	if u <= 0 {
		return msToDur(d.vs[0])
	}
	if u >= 1 {
		return msToDur(d.vs[len(d.vs)-1])
	}
	i := 1
	for d.qs[i] < u {
		i++
	}
	lo, hi := d.qs[i-1], d.qs[i]
	vlo, vhi := d.vs[i-1], d.vs[i]
	t := (u - lo) / (hi - lo)
	// Log-domain interpolation keeps heavy tails heavy.
	v := math.Exp(math.Log(vlo)*(1-t) + math.Log(vhi)*t)
	return msToDur(v)
}

// Scale returns a distribution that multiplies every sample of d by f.
func Scale(d Dist, f float64) Dist { return scaled{d: d, f: f} }

type scaled struct {
	d Dist
	f float64
}

func (s scaled) Sample(r *rand.Rand) time.Duration {
	return time.Duration(float64(s.d.Sample(r)) * s.f)
}

// Shift returns a distribution that adds a constant offset to every sample.
func Shift(d Dist, off time.Duration) Dist { return shifted{d: d, off: off} }

type shifted struct {
	d   Dist
	off time.Duration
}

func (s shifted) Sample(r *rand.Rand) time.Duration { return s.d.Sample(r) + s.off }

// Sum samples each distribution once and adds the results.
type Sum []Dist

// Sample implements Dist.
func (s Sum) Sample(r *rand.Rand) time.Duration {
	var t time.Duration
	for _, d := range s {
		t += d.Sample(r)
	}
	return t
}

// Ms converts milliseconds to a duration; convenient for latency tables.
func Ms(ms float64) time.Duration { return msToDur(ms) }

// DurMs converts a duration to float milliseconds; used when reporting.
func DurMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}
