package sim

// Queue is an unbounded FIFO channel between simulation processes. Pushes
// never block; Pops block while the queue is empty.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []waiter
	closed  bool
}

// NewQueue creates an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes one blocked popper, if any.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		panic("sim: push on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed: blocked and future Pops return ok=false
// once the buffer drains.
func (q *Queue[T]) Close() {
	q.closed = true
	for _, w := range q.waiters {
		q.k.wake(w)
	}
	q.waiters = nil
}

func (q *Queue[T]) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.seq == w.p.parkSeq && !w.p.done {
			q.k.wake(w)
			return
		}
	}
}

// Pop removes and returns the head item, blocking while the queue is empty.
// It returns ok=false only if the queue is closed and drained.
func (q *Queue[T]) Pop() (T, bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, q.k.waiterFor(q.k.current))
		q.k.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If more items remain, keep the wake-up chain going for other poppers.
	if len(q.items) > 0 {
		q.wakeOne()
	}
	return v, true
}

// TryPop removes the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopTimeout waits at most d for an item. ok is false on timeout or close.
func (q *Queue[T]) PopTimeout(d Time) (T, bool) {
	deadline := q.k.now + d
	for len(q.items) == 0 {
		if q.closed || q.k.now >= deadline {
			var zero T
			return zero, false
		}
		w := q.k.waiterFor(q.k.current)
		q.waiters = append(q.waiters, w)
		q.k.wakeAt(deadline, w)
		q.k.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.items) > 0 {
		q.wakeOne()
	}
	return v, true
}

// PopBatch pops up to max items: it blocks for the first item, then keeps
// collecting whatever is already buffered (and whatever arrives within
// window, if window > 0) until max items are gathered. This mirrors how
// cloud queue pollers assemble invocation batches.
func (q *Queue[T]) PopBatch(max int, window Time) []T {
	first, ok := q.Pop()
	if !ok {
		return nil
	}
	batch := []T{first}
	deadline := q.k.now + window
	for len(batch) < max {
		if len(q.items) > 0 {
			v, _ := q.TryPop()
			batch = append(batch, v)
			continue
		}
		if window <= 0 || q.k.now >= deadline {
			break
		}
		v, ok := q.PopTimeout(deadline - q.k.now)
		if !ok {
			break
		}
		batch = append(batch, v)
	}
	return batch
}
