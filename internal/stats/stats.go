// Package stats provides the small set of summary statistics used by every
// experiment in the reproduction: exact percentiles over collected samples,
// distribution summaries matching the rows the paper reports (min / p50 /
// p90 / p95 / p99 / max), and fixed-window throughput counters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates float64 observations (by convention, milliseconds).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDur appends a duration observation converted to milliseconds.
func (s *Sample) AddDur(d time.Duration) { s.Add(float64(d) / float64(time.Millisecond)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the raw observations (unsorted order is not preserved once
// a percentile has been requested).
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) with linear
// interpolation between closest ranks. It panics on an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		panic("stats: mean of empty sample")
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Summary is the five-number (plus p90/mean) summary used in the paper's
// latency tables.
type Summary struct {
	N                            int
	Min, P50, P90, P95, P99, Max float64
	Mean                         float64
}

// Summarize computes a Summary for the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:    s.N(),
		Min:  s.Min(),
		P50:  s.Percentile(50),
		P90:  s.Percentile(90),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
		Mean: s.Mean(),
	}
}

// String renders the summary in the paper's row format.
func (s Summary) String() string {
	return fmt.Sprintf("min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%d)",
		s.Min, s.P50, s.P95, s.P99, s.Max, s.N)
}

// Counter tracks event counts in fixed windows of virtual time, used for
// throughput plots (events per second over the run).
type Counter struct {
	window time.Duration
	counts map[int64]int64
}

// NewCounter creates a counter with the given window size.
func NewCounter(window time.Duration) *Counter {
	if window <= 0 {
		panic("stats: counter window must be positive")
	}
	return &Counter{window: window, counts: map[int64]int64{}}
}

// Tick records one event at virtual time t.
func (c *Counter) Tick(t time.Duration) { c.counts[int64(t/c.window)]++ }

// TickN records n events at virtual time t.
func (c *Counter) TickN(t time.Duration, n int64) { c.counts[int64(t/c.window)] += n }

// Rates returns the per-window rates in events/second, ordered by window.
func (c *Counter) Rates() []float64 {
	if len(c.counts) == 0 {
		return nil
	}
	var maxW int64
	for w := range c.counts {
		if w > maxW {
			maxW = w
		}
	}
	perSec := float64(time.Second) / float64(c.window)
	rates := make([]float64, maxW+1)
	for w, n := range c.counts {
		rates[w] = float64(n) * perSec
	}
	return rates
}

// MedianRate returns the median of the per-window rates, the statistic the
// paper uses for throughput experiments.
func (c *Counter) MedianRate() float64 {
	rates := c.Rates()
	if len(rates) == 0 {
		return 0
	}
	s := NewSample(len(rates))
	for _, r := range rates {
		s.Add(r)
	}
	return s.Percentile(50)
}

// Total returns the total number of events recorded.
func (c *Counter) Total() int64 {
	var t int64
	for _, n := range c.counts {
		t += n
	}
	return t
}
