package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileExact(t *testing.T) {
	s := NewSample(5)
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Fatalf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	s := NewSample(2)
	s.Add(10)
	s.Add(20)
	if got := s.Percentile(50); got != 15 {
		t.Fatalf("p50 = %v", got)
	}
}

func TestMeanAndDur(t *testing.T) {
	s := NewSample(2)
	s.AddDur(10 * time.Millisecond)
	s.AddDur(20 * time.Millisecond)
	if got := s.Mean(); got != 15 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSummarizeOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := NewSample(1000)
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64() * 100)
	}
	sum := s.Summarize()
	if !(sum.Min <= sum.P50 && sum.P50 <= sum.P90 && sum.P90 <= sum.P95 &&
		sum.P95 <= sum.P99 && sum.P99 <= sum.Max) {
		t.Fatalf("summary not ordered: %+v", sum)
	}
	if sum.N != 1000 {
		t.Fatalf("n = %d", sum.N)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSample(len(vals))
		for _, v := range vals {
			s.Add(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSample(0).Percentile(50)
}

func TestCounterRates(t *testing.T) {
	c := NewCounter(time.Second)
	for i := 0; i < 10; i++ {
		c.Tick(time.Duration(i) * 200 * time.Millisecond) // 5/s for 2s
	}
	rates := c.Rates()
	if len(rates) != 2 || rates[0] != 5 || rates[1] != 5 {
		t.Fatalf("rates = %v", rates)
	}
	if c.MedianRate() != 5 {
		t.Fatalf("median = %v", c.MedianRate())
	}
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestCounterTickN(t *testing.T) {
	c := NewCounter(100 * time.Millisecond)
	c.TickN(0, 7)
	if c.Total() != 7 {
		t.Fatalf("total = %d", c.Total())
	}
	if got := c.Rates()[0]; got != 70 {
		t.Fatalf("rate = %v", got)
	}
}
