package shardmap

// Binary codec for the durable routing table (package wire). Gob stays
// the default blob format; the binary format sorts map keys so equal maps
// always encode to equal bytes — the map blob participates in item-level
// conditional writes and deterministic replay, so encoding must not
// depend on Go's map iteration order.

import (
	"fmt"
	"sort"

	"faaskeeper/internal/wire"
)

const tagMap byte = 0xC1

// maxEntries bounds decoded collection counts so corrupt input cannot
// drive huge allocations or unbounded read loops.
const maxEntries = 1 << 20

// encodeMapWith serializes the map with the chosen codec. Binary bytes
// are freshly owned (they are stored in the durable item).
func encodeMapWith(c wire.Codec, m *Map) []byte {
	if c == wire.Gob {
		return encodeMap(m)
	}
	e := wire.NewEncoder()
	e.Byte(tagMap)
	e.Varint(m.Epoch)
	e.Varint(int64(m.Base))
	e.Varint(int64(m.Queues))
	appendIntMap(e, m.Overrides)
	e.Uvarint(uint64(len(m.Splits)))
	for _, sp := range m.Splits {
		e.String(sp.Prefix)
		e.Ints(sp.Shards)
	}
	appendInt64Map(e, m.SeqBase)
	appendInt64Map(e, m.Gens)
	e.Bool(m.Mig != nil)
	if m.Mig != nil {
		e.Ints(m.Mig.Slots)
		e.Strings(m.Mig.Prefixes)
		e.Ints(m.Mig.Sources)
		e.Ints(m.Mig.Dests)
	}
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// decodeMapWith parses a map blob under the same codec.
func decodeMapWith(c wire.Codec, b []byte) (*Map, error) {
	if c == wire.Gob {
		return decodeMap(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagMap {
		return nil, fmt.Errorf("%w: shard map tag", wire.ErrCorrupt)
	}
	m := &Map{
		Epoch:  d.Varint(),
		Base:   int(d.Varint()),
		Queues: int(d.Varint()),
	}
	m.Overrides = readIntMap(&d)
	ns := int(d.Uvarint())
	if ns > maxEntries {
		d.Fail()
	}
	if d.Err() == nil && ns > 0 {
		m.Splits = make([]Split, 0, ns)
		for i := 0; i < ns; i++ {
			m.Splits = append(m.Splits, Split{Prefix: d.String(), Shards: d.Ints()})
		}
	}
	m.SeqBase = readInt64Map(&d)
	m.Gens = readInt64Map(&d)
	if d.Bool() {
		m.Mig = &Migration{
			Slots:    d.Ints(),
			Prefixes: d.Strings(),
			Sources:  d.Ints(),
			Dests:    d.Ints(),
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func appendIntMap(e *wire.Encoder, m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Varint(int64(k))
		e.Varint(int64(m[k]))
	}
}

func readIntMap(d *wire.Decoder) map[int]int {
	n := int(d.Uvarint())
	out := map[int]int{}
	if n > maxEntries {
		d.Fail()
	}
	if d.Err() != nil {
		return out
	}
	for i := 0; i < n; i++ {
		k := int(d.Varint())
		out[k] = int(d.Varint())
	}
	return out
}

func appendInt64Map(e *wire.Encoder, m map[int]int64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Varint(int64(k))
		e.Varint(m[k])
	}
}

func readInt64Map(d *wire.Decoder) map[int]int64 {
	n := int(d.Uvarint())
	out := map[int]int64{}
	if n > maxEntries {
		d.Fail()
	}
	if d.Err() != nil {
		return out
	}
	for i := 0; i < n; i++ {
		k := int(d.Varint())
		out[k] = d.Varint()
	}
	return out
}
