package shardmap

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strconv"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/wire"
)

// The durable map lives in one system-store item. The routing table itself
// is a gob blob; the per-shard generations are mirrored into numeric
// attributes so a writer's commit transaction can pin "my shard's routing
// has not changed since I routed" with a plain conditional check — the
// same single-item conditional-expression primitive every other
// FaaSKeeper protocol builds on.
const (
	// DefaultKey is the system-store key of the shard map item.
	DefaultKey = "shardmap"

	attrMapBlob  = "map"
	attrMapEpoch = "epoch"
	genAttrPre   = "g"
)

// ErrNoMap is returned when the map item is missing (a deployment that
// never enabled dynamic sharding).
var ErrNoMap = errors.New("shardmap: no shard map stored")

// GenAttr names the per-shard generation attribute.
func GenAttr(shard int) string { return genAttrPre + strconv.Itoa(shard) }

// GenCond is the commit guard: the shard's stored generation still equals
// gen. Generation 0 also matches a never-bumped (absent) attribute.
func GenCond(shard int, gen int64) kv.Cond {
	eq := kv.Eq{Name: GenAttr(shard), V: kv.N(gen)}
	if gen == 0 {
		return kv.Or{kv.AttrNotExists{Name: GenAttr(shard)}, eq}
	}
	return eq
}

// Store reads and writes the durable map item.
type Store struct {
	tbl   *kv.Table
	key   string
	codec wire.Codec // map-blob serialization (zero value = gob)
}

// SetWireCodec selects the map-blob codec (set once at deployment time,
// before the map is seeded).
func (s *Store) SetWireCodec(c wire.Codec) { s.codec = c }

// NewStore binds a store to the deployment's system table.
func NewStore(tbl *kv.Table) *Store {
	return &Store{tbl: tbl, key: DefaultKey}
}

// Key returns the map item's key (commit guards reference it).
func (s *Store) Key() string { return s.key }

func encodeMap(m *Map) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic("shardmap: marshal: " + err.Error())
	}
	return buf.Bytes()
}

func decodeMap(b []byte) (*Map, error) {
	var m Map
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m); err != nil {
		return nil, err
	}
	if m.Overrides == nil {
		m.Overrides = map[int]int{}
	}
	if m.SeqBase == nil {
		m.SeqBase = map[int]int64{}
	}
	if m.Gens == nil {
		m.Gens = map[int]int64{}
	}
	return &m, nil
}

func (s *Store) item(m *Map) kv.Item {
	it := kv.Item{
		attrMapBlob:  kv.B(encodeMapWith(s.codec, m)),
		attrMapEpoch: kv.N(m.Epoch),
	}
	for shard, gen := range m.Gens {
		it[GenAttr(shard)] = kv.N(gen)
	}
	return it
}

// Seed stores the epoch-0 map at deployment time, free of charge (the
// deployment bootstrap, like the tree root).
func (s *Store) Seed(m *Map) { s.tbl.SeedPut(s.key, s.item(m)) }

// Load reads the current map with a strongly consistent get.
func (s *Store) Load(ctx cloud.Ctx) (*Map, error) {
	it, ok := s.tbl.GetView(ctx, s.key, true)
	if !ok {
		return nil, ErrNoMap
	}
	return decodeMapWith(s.codec, it[attrMapBlob].Byt)
}

// Write replaces the durable map. Reshard transitions are serialized by
// the engine's timed lock, so the write is unconditional.
func (s *Store) Write(ctx cloud.Ctx, m *Map) error {
	return s.tbl.Put(ctx, s.key, s.item(m), nil)
}
