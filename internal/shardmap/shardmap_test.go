package shardmap

import (
	"fmt"
	"testing"
)

// TestEpochZeroMatchesDefaultRoute: a freshly seeded map must route every
// path exactly like the static pipeline's mod-N hash — that equivalence
// is what keeps a dynamic deployment's epoch 0 byte-compatible with the
// sharded write path.
func TestEpochZeroMatchesDefaultRoute(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		m := New(n)
		for i := 0; i < 500; i++ {
			p := fmt.Sprintf("/seg%d/child%d", i, i)
			if got, want := m.ShardFor(p), DefaultShard(p, n); got != want {
				t.Fatalf("n=%d: ShardFor(%q) = %d, default %d", n, p, got, want)
			}
		}
		if m.ShardFor("/") != 0 {
			t.Fatalf("root must route to shard 0")
		}
	}
}

// TestGrowMinimalMovement: growing the queue count moves only the
// segments of reassigned slots — roughly Slots/queues per new queue — and
// every moved segment lands on a new queue.
func TestGrowMinimalMovement(t *testing.T) {
	m := New(4)
	next, err := m.PlanGrow(6)
	if err != nil || next == nil {
		t.Fatalf("PlanGrow: %v %v", next, err)
	}
	if next.Mig == nil || len(next.Mig.Slots) == 0 {
		t.Fatal("grow plan has no migration")
	}
	final := next.Flip(0)
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		p := fmt.Sprintf("/t%d", i)
		before, after := m.ShardFor(p), final.ShardFor(p)
		if before != after {
			moved++
			if after < 4 {
				t.Fatalf("moved segment %q landed on old shard %d", p, after)
			}
		}
	}
	// Two new queues own 2/6 of the slots; allow generous hashing slack.
	frac := float64(moved) / float64(total)
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("grow moved %.0f%% of segments, want ~33%%", frac*100)
	}
	if final.Epoch != m.Epoch+1 {
		t.Fatalf("flip epoch = %d", final.Epoch)
	}
}

// TestSplitColocationAndSharing: a split keeps parents and children below
// the subtree root colocated, routes only the split prefix differently,
// and marks the subtree root shared.
func TestSplitColocationAndSharing(t *testing.T) {
	m := New(2)
	next, err := m.PlanSplit("/hot", 4)
	if err != nil {
		t.Fatalf("PlanSplit: %v", err)
	}
	final := next.Flip(123456)
	if final.Queues != 6 {
		t.Fatalf("queues = %d, want 6", final.Queues)
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		parent := fmt.Sprintf("/hot/n%d", i)
		child := parent + "/leaf/deep"
		ps, cs := final.ShardFor(parent), final.ShardFor(child)
		if ps != cs {
			t.Fatalf("split broke colocation: %q on %d, %q on %d", parent, ps, child, cs)
		}
		if ps < 2 || ps >= 6 {
			t.Fatalf("split path %q routed to non-target shard %d", parent, ps)
		}
		seen[ps] = true
	}
	if len(seen) < 3 {
		t.Fatalf("split spread over %d targets, want >= 3", len(seen))
	}
	if !final.Shared("/hot") {
		t.Fatal("split subtree root must be shared")
	}
	if final.Shared("/hot/n1") || final.Shared("/cold") {
		t.Fatal("non-root split paths must not be shared")
	}
	// Unrelated segments keep their route.
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/cold%d", i)
		if m.ShardFor(p) != final.ShardFor(p) {
			t.Fatalf("split moved unrelated path %q", p)
		}
	}
	// SeqBase of every target cleared the bound.
	for _, s := range []int{2, 3, 4, 5} {
		if final.SeqBase[s] <= 123456/Stride {
			t.Fatalf("target %d SeqBase %d below bound", s, final.SeqBase[s])
		}
	}
	// Merge restores the original route.
	merged, err := final.PlanMerge("/hot")
	if err != nil {
		t.Fatalf("PlanMerge: %v", err)
	}
	restored := merged.Flip(999999)
	if got, want := restored.ShardFor("/hot/n3/x"), m.ShardFor("/hot/n3/x"); got != want {
		t.Fatalf("merge routed /hot to %d, want %d", got, want)
	}
	if restored.Shared("/hot") {
		t.Fatal("merged subtree root must not stay shared")
	}
}

// TestTxidMonotonicAcrossFlips: per-shard txids stay strictly increasing
// through SeqBase bumps, decode back to their minting shard, and a
// destination's post-flip txids exceed the migration bound.
func TestTxidMonotonicAcrossFlips(t *testing.T) {
	m := New(2)
	next, _ := m.PlanSplit("/hot", 2)
	bound := m.Txid(500, 1) // source shard 1 minted 500 messages
	final := next.Flip(bound)
	for shard := 0; shard < final.Queues; shard++ {
		var last int64 = -1
		for seq := int64(1); seq < 50; seq++ {
			tx := final.Txid(seq, shard)
			if tx <= last {
				t.Fatalf("shard %d txid regressed: %d after %d", shard, tx, last)
			}
			if ShardOfTxid(tx) != shard {
				t.Fatalf("txid %d decodes to %d, want %d", tx, ShardOfTxid(tx), shard)
			}
			last = tx
		}
	}
	for _, dst := range []int{2, 3} {
		if first := final.Txid(1, dst); first <= bound {
			t.Fatalf("dest %d first txid %d does not clear bound %d", dst, first, bound)
		}
	}
}

// TestBlockedGating: only migrating paths block during a transition.
func TestBlockedGating(t *testing.T) {
	m := New(2)
	next, _ := m.PlanSplit("/hot", 2)
	gated := m.Gate(next.Mig)
	if !gated.Blocked("/hot/a") || !gated.Blocked("/hot") {
		t.Fatal("split subtree must be gated")
	}
	if gated.Blocked("/cold/a") || gated.Blocked("/") {
		t.Fatal("unrelated paths must not be gated")
	}
	if gated.GenOf(next.Mig.Sources[0]) != m.GenOf(next.Mig.Sources[0])+1 {
		t.Fatal("gate must bump source generations")
	}
	// Compose the flip like the reshard engine: routing from the plan,
	// generations carried over from the gate, bumped again at the flip.
	flip := next.Clone()
	flip.Gens = gated.Clone().Gens
	final := flip.Flip(0)
	if final.Blocked("/hot/a") {
		t.Fatal("flip must clear the gate")
	}
	if final.GenOf(next.Mig.Sources[0]) != m.GenOf(next.Mig.Sources[0])+2 {
		t.Fatal("flip must bump source generations again")
	}
}

// TestShrinkRevertsGrow: shrinking back retires the grown queues and
// restores the original routes.
func TestShrinkRevertsGrow(t *testing.T) {
	m := New(4)
	grown, _ := m.PlanGrow(6)
	g := grown.Flip(0)
	shrunk, err := g.PlanShrink(4)
	if err != nil {
		t.Fatalf("PlanShrink: %v", err)
	}
	s := shrunk.Flip(777 * Stride)
	for i := 0; i < 500; i++ {
		p := fmt.Sprintf("/t%d", i)
		if s.ShardFor(p) != m.ShardFor(p) {
			t.Fatalf("shrink did not restore route of %q", p)
		}
	}
	if _, err := m.PlanShrink(2); err == nil {
		t.Fatal("shrinking below the base modulus must fail")
	}
	if _, err := m.PlanGrow(MaxShards + 1); err == nil {
		t.Fatal("growing past the cap must fail")
	}
}

// TestGenCond: the commit guard's conditions behave on present and
// missing generation attributes.
func TestGenCond(t *testing.T) {
	if GenCond(1, 0) == nil || GenCond(1, 3) == nil {
		t.Fatal("GenCond returned nil")
	}
	// Gen 0 must match a never-written attribute (epoch-0 deployments).
	if !GenCond(0, 0).Eval(nil, false) {
		t.Fatal("GenCond(shard, 0) must hold on a missing item")
	}
	if GenCond(0, 1).Eval(nil, false) {
		t.Fatal("GenCond(shard, 1) must fail on a missing item")
	}
}
