package shardmap

import (
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/sim"
)

// TestStoreRoundTrip: the durable store preserves the whole map through a
// write/load cycle and mirrors the per-shard generations into attributes
// the commit guard can condition on.
func TestStoreRoundTrip(t *testing.T) {
	k := sim.NewKernel(7)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	tbl := kv.NewTable(env, "system")
	s := NewStore(tbl)
	ctx := cloud.ClientCtx(env.Profile.Home)

	k.Go("test", func() {
		m := New(2)
		s.Seed(m)
		got, err := s.Load(ctx)
		if err != nil || got.Base != 2 || got.Queues != 2 || got.Epoch != 0 {
			t.Errorf("seed round trip: %+v %v", got, err)
			return
		}
		next, _ := m.PlanSplit("/hot", 2)
		gated := m.Gate(next.Mig)
		if err := s.Write(ctx, gated); err != nil {
			t.Errorf("write gated: %v", err)
			return
		}
		got, err = s.Load(ctx)
		if err != nil || got.Mig == nil || got.GenOf(next.Mig.Sources[0]) != 1 {
			t.Errorf("gated round trip: %+v %v", got, err)
			return
		}
		// The mirrored generation attribute guards conditional commits.
		it, _ := tbl.Peek(s.Key())
		src := next.Mig.Sources[0]
		if !GenCond(src, 1).Eval(it, true) {
			t.Error("current generation must satisfy its own guard")
		}
		if GenCond(src, 0).Eval(it, true) {
			t.Error("superseded generation must fail the guard")
		}
		flip := next.Clone()
		flip.Gens = gated.Clone().Gens
		final := flip.Flip(1000 * Stride)
		if err := s.Write(ctx, final); err != nil {
			t.Errorf("write flip: %v", err)
			return
		}
		got, err = s.Load(ctx)
		if err != nil || got.Epoch != 1 || got.Mig != nil || len(got.Splits) != 1 {
			t.Errorf("flip round trip: %+v %v", got, err)
		}
		if _, err := NewStore(kv.NewTable(env, "empty")).Load(ctx); err == nil {
			t.Error("loading a missing map must fail")
		}
	})
	k.Run()
	k.Shutdown()
}
