// Package shardmap implements the epoch-versioned routing table behind
// FaaSKeeper's dynamic write sharding: a durable map from znode paths to
// leader write shards that can change at runtime — growing or shrinking
// the shard count with consistent-hash-style slot moves, and sub-splitting
// a hot top-level subtree at depth 2 — without stopping the pipeline.
//
// The static design (PR 1) routes a path by hashing its top-level segment
// modulo the deployment's fixed shard count; every layer (follower,
// leader, transaction coordinator, client) recomputes that pure function.
// This package keeps the same default route as epoch 0 — a map that was
// never resharded routes byte-for-byte like core.ShardOf — and layers two
// reassignment mechanisms on top:
//
//   - Slot overrides: every top-level segment hashes into one of Slots
//     fixed slots; a slot may be overridden to a specific shard. Growing
//     from N to N+1 queues assigns ~Slots/(N+1) slots to the new shard and
//     leaves every other segment's route untouched — the minimal-movement
//     property of a consistent-hash ring with fixed virtual points.
//
//   - Subtree splits: a hot top-level subtree ("/hot") is re-routed at
//     depth 2 — each second-level segment hashes over the split's target
//     shards, so "/hot/a" and every descendant of "/hot/a" share a shard
//     (parent/child colocation holds for all affected paths); only the
//     subtree root itself becomes a shared path, maintained under a
//     cross-shard lock exactly like the tree root.
//
// A transition between two maps is described by a Migration and driven by
// the live-reshard protocol in package core: the coordinator gates the
// migrating prefixes (writers to them wait), drains the source shards'
// queues behind a fence message, bumps the affected shards' generations,
// and flips the epoch. Writers stamp the generation they routed with on
// their system-store commit; a commit racing a reshard fails its
// generation guard and retries against the new map — the same
// reject-and-retry shape as the Z4 epoch-stamp gate.
//
// Transaction ids stay globally unique and strictly increasing per shard
// across reshards: in dynamic mode txid = (queueSeqNo + SeqBase[shard]) *
// Stride + shard, and a migration raises the destination's SeqBase past
// every txid the source could have minted, so per-path mzxid never
// regresses when a path changes shards.
package shardmap

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

const (
	// Slots is the fixed consistent-hash slot count. Each top-level
	// segment hashes into one slot; reassignment granularity is one slot.
	Slots = 256

	// Stride is the txid interleave base of a dynamic deployment:
	// txid = (seqNo + SeqBase[shard])*Stride + shard. Fixing it (rather
	// than using the live shard count) keeps txid-to-shard decoding
	// stable across epochs, so client-side per-shard MRD floors survive a
	// map change.
	Stride = 64

	// MaxShards caps the shard queues a dynamic deployment may grow to
	// (shard ids must stay below Stride).
	MaxShards = Stride
)

// Split re-routes one top-level subtree at depth 2: paths under Prefix
// hash their second segment over Shards. The prefix node itself is owned
// by Shards[0] for data writes but its child list is rebuilt by every
// target shard, making it a shared path (see Map.Shared).
type Split struct {
	Prefix string // top-level path, e.g. "/hot"
	Shards []int
}

// Migration describes an in-flight transition. While non-nil on the
// durable map, writers to the migrating paths wait for the flip (the
// quiesce gate); everything else proceeds.
type Migration struct {
	Slots    []int    // slot ids whose override changes
	Prefixes []string // top-level subtree prefixes being split or merged
	Sources  []int    // shards that must drain before the flip
	Dests    []int    // shards gaining paths (SeqBase raised at the flip)
}

// Map is one epoch of the routing table.
type Map struct {
	Epoch  int64 // bumped on every routing flip
	Base   int   // modulus of the default route (the initial WriteShards)
	Queues int   // provisioned shard queues; routing targets [0, Queues)

	Overrides map[int]int   // slot -> shard reassignments
	Splits    []Split       // hot-subtree split rules
	SeqBase   map[int]int64 // per-shard txid sequence base
	Gens      map[int]int64 // per-shard routing generation (commit guard)

	Mig *Migration // non-nil while a reshard transition is in flight
}

// New returns the epoch-0 map of a deployment with `shards` write shards:
// it routes every path exactly like the static core.ShardOf(path, shards).
func New(shards int) *Map {
	if shards <= 0 {
		shards = 1
	}
	return &Map{
		Base:      shards,
		Queues:    shards,
		Overrides: map[int]int{},
		SeqBase:   map[int]int64{},
		Gens:      map[int]int64{},
	}
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	n := *m
	n.Overrides = make(map[int]int, len(m.Overrides))
	for k, v := range m.Overrides {
		n.Overrides[k] = v
	}
	n.SeqBase = make(map[int]int64, len(m.SeqBase))
	for k, v := range m.SeqBase {
		n.SeqBase[k] = v
	}
	n.Gens = make(map[int]int64, len(m.Gens))
	for k, v := range m.Gens {
		n.Gens[k] = v
	}
	n.Splits = make([]Split, len(m.Splits))
	for i, s := range m.Splits {
		n.Splits[i] = Split{Prefix: s.Prefix, Shards: append([]int(nil), s.Shards...)}
	}
	if m.Mig != nil {
		mg := Migration{
			Slots:    append([]int(nil), m.Mig.Slots...),
			Prefixes: append([]string(nil), m.Mig.Prefixes...),
			Sources:  append([]int(nil), m.Mig.Sources...),
			Dests:    append([]int(nil), m.Mig.Dests...),
		}
		n.Mig = &mg
	}
	return &n
}

// TopSegment returns a path's first segment ("" for the root).
func TopSegment(path string) string {
	if len(path) < 2 || path[0] != '/' {
		return ""
	}
	rest := path[1:]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// SubSegment returns a path's second segment ("" when the path has fewer
// than two segments).
func SubSegment(path string) string {
	if len(path) < 2 || path[0] != '/' {
		return ""
	}
	rest := path[1:]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return ""
	}
	rest = rest[i+1:]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return rest[:j]
	}
	return rest
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// DefaultShard is the static route of the original sharded write path: the
// FNV hash of the top-level segment modulo n, root on shard 0. Epoch 0 of
// every map routes identically (core.ShardOf delegates here).
func DefaultShard(path string, n int) int {
	if n <= 1 {
		return 0
	}
	seg := TopSegment(path)
	if seg == "" {
		return 0
	}
	return int(hash32(seg) % uint32(n))
}

// SlotOf maps a top-level segment to its consistent-hash slot. A distinct
// suffix decorrelates the slot hash from the default-route hash, so a
// slot's segments are not biased toward one base shard.
func SlotOf(seg string) int {
	return int(hash32(seg+"\x00slot") % Slots)
}

func (m *Map) split(seg string) *Split {
	for i := range m.Splits {
		if m.Splits[i].Prefix == "/"+seg {
			return &m.Splits[i]
		}
	}
	return nil
}

// ShardFor routes a path under this map: split rules first (depth-2 hash
// over the split's targets; the subtree root itself is owned by the first
// target), then slot overrides, then the epoch-0 default route.
func (m *Map) ShardFor(path string) int {
	seg := TopSegment(path)
	if seg == "" {
		return 0
	}
	if sp := m.split(seg); sp != nil && len(sp.Shards) > 0 {
		sub := SubSegment(path)
		if sub == "" {
			return sp.Shards[0]
		}
		return sp.Shards[int(hash32(sub+"\x00sub")%uint32(len(sp.Shards)))]
	}
	if s, ok := m.Overrides[SlotOf(seg)]; ok {
		return s
	}
	return DefaultShard(path, m.Base)
}

// SplitFor returns the split rule that routes to the given shard, if any
// — the reverse of a Split's Shards list, used by the cost-aware
// auto-shard policy to attribute a shard's queue-delay cost to the split
// that created it.
func (m *Map) SplitFor(shard int) (Split, bool) {
	for _, sp := range m.Splits {
		for _, s := range sp.Shards {
			if s == shard {
				return sp, true
			}
		}
	}
	return Split{}, false
}

// Shared reports whether a path's user-store object is rebuilt by more
// than one shard leader: the tree root of any multi-queue deployment, and
// the root node of a split subtree (its child list is spliced by every
// split target). Shared paths are serialized under a cross-shard lock and
// excluded from the session-local client cache.
func (m *Map) Shared(path string) bool {
	seg := TopSegment(path)
	if seg == "" {
		return m.Queues > 1
	}
	if SubSegment(path) != "" {
		return false
	}
	sp := m.split(seg)
	return sp != nil && len(sp.Shards) > 1
}

// Blocked reports whether writes to path must wait for the in-flight
// migration to flip: the path's subtree is being split or merged, or its
// slot's override is changing. Everything else — including other prefixes
// on the source shards — keeps flowing.
func (m *Map) Blocked(path string) bool {
	if m.Mig == nil {
		return false
	}
	seg := TopSegment(path)
	if seg == "" {
		return false // the root never migrates (always shard 0)
	}
	for _, p := range m.Mig.Prefixes {
		if p == "/"+seg {
			return true
		}
	}
	if len(m.Mig.Slots) > 0 && m.split(seg) == nil {
		slot := SlotOf(seg)
		for _, s := range m.Mig.Slots {
			if s == slot {
				return true
			}
		}
	}
	return false
}

// GenOf returns a shard's routing generation (0 until its first reshard).
func (m *Map) GenOf(shard int) int64 { return m.Gens[shard] }

// Txid mints the dynamic-mode transaction id for a queue sequence number
// on a shard: strictly increasing per shard (SeqBase only grows), globally
// unique, and decodable back to the minting shard via ShardOfTxid.
func (m *Map) Txid(seqNo int64, shard int) int64 {
	return (seqNo+m.SeqBase[shard])*Stride + int64(shard)
}

// ShardOfTxid recovers the minting shard from a dynamic-mode txid.
func ShardOfTxid(txid int64) int { return int(txid % Stride) }

// bumpGens raises the routing generation of every listed shard.
func (m *Map) bumpGens(shards []int) {
	for _, s := range shards {
		m.Gens[s]++
	}
}

// affected returns the union of a migration's source and destination
// shards (the shards whose generations bump at the gate and the flip).
func (mig *Migration) affected() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range append(append([]int(nil), mig.Sources...), mig.Dests...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// Gate returns the gated intermediate map of a planned transition: same
// routing as the current map, Mig set, affected generations bumped. The
// core reshard engine writes it durably before fencing the sources.
func (m *Map) Gate(mig *Migration) *Map {
	g := m.Clone()
	g.Mig = mig
	g.bumpGens(mig.affected())
	return g
}

// allShards lists [0, Queues).
func (m *Map) allShards() []int {
	out := make([]int, m.Queues)
	for i := range out {
		out[i] = i
	}
	return out
}

// validatePrefix requires a top-level path ("/x").
func validatePrefix(prefix string) error {
	if len(prefix) < 2 || prefix[0] != '/' || strings.ContainsRune(prefix[1:], '/') {
		return fmt.Errorf("shardmap: split prefix must be a top-level path, got %q", prefix)
	}
	return nil
}

// PlanGrow plans growth to `queues` shard queues by overriding ~Slots/queues
// slots per new shard (slot s moves to new shard q when s % queues == q),
// leaving every other segment's route untouched. The returned map carries
// the Migration; Epoch/SeqBase are finalized by the reshard engine at the
// flip.
func (m *Map) PlanGrow(queues int) (*Map, error) {
	if queues <= m.Queues {
		return nil, fmt.Errorf("shardmap: grow to %d <= current %d queues", queues, m.Queues)
	}
	if queues > MaxShards {
		return nil, fmt.Errorf("shardmap: %d queues exceeds the %d-shard cap", queues, MaxShards)
	}
	next := m.Clone()
	next.Queues = queues
	mig := &Migration{Sources: m.allShards()}
	for slot := 0; slot < Slots; slot++ {
		q := slot % queues
		if q < m.Queues {
			continue // slot stays with its current owner
		}
		if cur, ok := next.Overrides[slot]; ok && cur == q {
			continue
		}
		next.Overrides[slot] = q
		mig.Slots = append(mig.Slots, slot)
		mig.Dests = appendUnique(mig.Dests, q)
	}
	if len(mig.Slots) == 0 {
		return nil, nil
	}
	next.Mig = mig
	return next, nil
}

// PlanShrink plans shrinking to `queues` shard queues (not below Base: the
// default route's modulus cannot be re-spread without moving every
// segment). Slots overridden to a removed shard revert to their previous
// route; the surviving shards are all potential destinations.
func (m *Map) PlanShrink(queues int) (*Map, error) {
	if queues >= m.Queues {
		return nil, fmt.Errorf("shardmap: shrink to %d >= current %d queues", queues, m.Queues)
	}
	if queues < m.Base {
		return nil, fmt.Errorf("shardmap: cannot shrink below the base modulus %d", m.Base)
	}
	for _, sp := range m.Splits {
		for _, s := range sp.Shards {
			if s >= queues {
				return nil, fmt.Errorf("shardmap: split %s targets shard %d; merge it first", sp.Prefix, s)
			}
		}
	}
	next := m.Clone()
	next.Queues = queues
	mig := &Migration{}
	for slot, s := range m.Overrides {
		if s < queues {
			continue
		}
		delete(next.Overrides, slot)
		// Reverting to the base route scatters the slot's segments over
		// the base shards; keep the override when the slot must stay off
		// its base shard? No: base shards all survive (queues >= Base).
		mig.Slots = append(mig.Slots, slot)
		mig.Sources = appendUnique(mig.Sources, s)
	}
	if len(mig.Slots) == 0 {
		next.Mig = nil
		return next, nil // no traffic to move: just retire the queues
	}
	sort.Ints(mig.Slots)
	mig.Dests = next.allShards()
	next.Mig = mig
	return next, nil
}

// PlanSplit plans sub-splitting a hot top-level subtree over `ways` new
// shard queues appended at the end of the queue range. A prefix that is
// already split is re-split over fresh targets (the old targets become
// sources).
func (m *Map) PlanSplit(prefix string, ways int) (*Map, error) {
	if err := validatePrefix(prefix); err != nil {
		return nil, err
	}
	if ways < 2 {
		return nil, fmt.Errorf("shardmap: split needs >= 2 ways, got %d", ways)
	}
	if m.Queues+ways > MaxShards {
		return nil, fmt.Errorf("shardmap: split to %d queues exceeds the %d-shard cap", m.Queues+ways, MaxShards)
	}
	next := m.Clone()
	targets := make([]int, ways)
	for i := range targets {
		targets[i] = m.Queues + i
	}
	mig := &Migration{Prefixes: []string{prefix}, Dests: targets}
	if old := m.split(prefix[1:]); old != nil {
		mig.Sources = append([]int(nil), old.Shards...)
		for i := range next.Splits {
			if next.Splits[i].Prefix == prefix {
				next.Splits[i].Shards = targets
			}
		}
	} else {
		mig.Sources = []int{m.ShardFor(prefix)}
		next.Splits = append(next.Splits, Split{Prefix: prefix, Shards: targets})
	}
	next.Queues = m.Queues + ways
	next.Mig = mig
	return next, nil
}

// PlanMerge plans folding a split subtree back onto its pre-split route.
// The split's target queues stay provisioned but idle (PlanShrink retires
// trailing queues once nothing routes to them).
func (m *Map) PlanMerge(prefix string) (*Map, error) {
	if err := validatePrefix(prefix); err != nil {
		return nil, err
	}
	old := m.split(prefix[1:])
	if old == nil {
		return nil, fmt.Errorf("shardmap: %s is not split", prefix)
	}
	next := m.Clone()
	for i := range next.Splits {
		if next.Splits[i].Prefix == prefix {
			next.Splits = append(next.Splits[:i], next.Splits[i+1:]...)
			break
		}
	}
	next.Mig = &Migration{
		Prefixes: []string{prefix},
		Sources:  append([]int(nil), old.Shards...),
		Dests:    []int{next.ShardFor(prefix)},
	}
	return next, nil
}

// Flip finalizes a gated transition: Epoch bumps, the migration gate
// clears, affected generations bump again, and every destination's SeqBase
// rises past `bound` — the largest txid any source shard could have minted
// before its fence — so migrated paths' mzxids never regress.
func (m *Map) Flip(bound int64) *Map {
	f := m.Clone()
	if f.Mig == nil {
		return f
	}
	base := bound/Stride + 1
	for _, dst := range f.Mig.Dests {
		if f.SeqBase[dst] < base {
			f.SeqBase[dst] = base
		}
	}
	f.bumpGens(f.Mig.affected())
	f.Mig = nil
	f.Epoch++
	return f
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

// String renders the live map for dumps (fkcli reshard map).
func (m *Map) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d  base %d  queues %d  overrides %d", m.Epoch, m.Base, m.Queues, len(m.Overrides))
	for _, sp := range m.Splits {
		fmt.Fprintf(&b, "\n  split %s -> %v", sp.Prefix, sp.Shards)
	}
	if len(m.SeqBase) > 0 {
		keys := make([]int, 0, len(m.SeqBase))
		for k := range m.SeqBase {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "\n  seqbase shard %d: %d", k, m.SeqBase[k])
		}
	}
	if m.Mig != nil {
		fmt.Fprintf(&b, "\n  MIGRATING slots=%v prefixes=%v sources=%v dests=%v",
			m.Mig.Slots, m.Mig.Prefixes, m.Mig.Sources, m.Mig.Dests)
	}
	return b.String()
}
