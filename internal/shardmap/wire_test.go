package shardmap

import (
	"bytes"
	"reflect"
	"testing"

	"faaskeeper/internal/wire"
)

func testMap() *Map {
	return &Map{
		Epoch:     9,
		Base:      2,
		Queues:    6,
		Overrides: map[int]int{0: 4, 3: 5},
		Splits:    []Split{{Prefix: "/hot", Shards: []int{4, 5}}, {Prefix: "/cold", Shards: []int{1}}},
		SeqBase:   map[int]int64{4: 100, 5: 200},
		Gens:      map[int]int64{0: 1, 4: 2},
		Mig: &Migration{
			Slots:    []int{1, 2},
			Prefixes: []string{"/hot/a", "/hot/b"},
			Sources:  []int{0, 0},
			Dests:    []int{4, 5},
		},
	}
}

func TestMapCodecEquivalence(t *testing.T) {
	for _, m := range []*Map{testMap(), {Epoch: 1, Base: 1, Queues: 1}} {
		for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
			got, err := decodeMapWith(c, encodeMapWith(c, m))
			if err != nil {
				t.Fatalf("%v decode: %v", c, err)
			}
			// Both decoders nil-fill maps, so normalize the input the
			// same way before comparing.
			want := *m
			if want.Overrides == nil {
				want.Overrides = map[int]int{}
			}
			if want.SeqBase == nil {
				want.SeqBase = map[int]int64{}
			}
			if want.Gens == nil {
				want.Gens = map[int]int64{}
			}
			if !reflect.DeepEqual(got, &want) {
				t.Errorf("%v round trip:\n got %+v\nwant %+v", c, got, &want)
			}
		}
	}
}

// TestMapBinaryDeterministic pins the sorted-key encoding: the blob
// participates in item-level conditional writes, so equal maps must
// encode to equal bytes regardless of map iteration order.
func TestMapBinaryDeterministic(t *testing.T) {
	ref := encodeMapWith(wire.Binary, testMap())
	for i := 0; i < 32; i++ {
		m := testMap() // fresh maps each round: new iteration order
		if b := encodeMapWith(wire.Binary, m); !bytes.Equal(b, ref) {
			t.Fatalf("encoding differs between runs:\n%x\n%x", ref, b)
		}
	}
}

func TestMapDecodeRejectsCorrupt(t *testing.T) {
	if _, err := decodeMapWith(wire.Binary, []byte{0x00, 0x01}); err == nil {
		t.Error("bad tag accepted")
	}
	full := encodeMapWith(wire.Binary, testMap())
	if _, err := decodeMapWith(wire.Binary, full[:len(full)-3]); err == nil {
		t.Error("truncated map accepted")
	}
}

// FuzzMapCodecs round-trips fuzzed scalar and map fields through both
// codecs and requires field-level agreement.
func FuzzMapCodecs(f *testing.F) {
	f.Add(int64(1), 2, 4, 0, 5, "/hot", int64(7))
	f.Fuzz(func(t *testing.T, epoch int64, base int, queues int, ovKey int, ovVal int, prefix string, seq int64) {
		m := &Map{
			Epoch:     epoch,
			Base:      base,
			Queues:    queues,
			Overrides: map[int]int{ovKey: ovVal},
			Splits:    []Split{{Prefix: prefix, Shards: []int{base}}},
			SeqBase:   map[int]int64{ovKey: seq},
			Gens:      map[int]int64{},
		}
		bin, err := decodeMapWith(wire.Binary, encodeMapWith(wire.Binary, m))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := decodeMapWith(wire.Gob, encodeMapWith(wire.Gob, m))
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(bin, g) {
			t.Fatalf("codecs disagree:\nbinary %+v\n   gob %+v", bin, g)
		}
	})
}
