package core

// The auto-shard decision core, extracted from the monitor loop so the
// policy can be unit-tested on synthetic depth schedules without running
// a deployment. The monitor owns the sampling (gauges, mapView) and the
// mechanics of acting (SplitSubtree / GrowShards / MergeSubtree); the
// policy owns only the decision.

import (
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/shardmap"
)

// autoShardAction is one tick's verdict: at most one reshard per tick,
// and merges are only considered on ticks that did not split.
type autoShardAction struct {
	splitShard int    // hot shard to reshard this tick; -1 for none
	merge      string // split prefix to fold back; "" for none
}

// autoShardPolicy accumulates streaks and — in cost-aware mode — the
// queue-delay dollar pools the economic objective compares against the
// reshard-transition estimate.
type autoShardPolicy struct {
	cfg        AutoShard
	reshardUSD float64 // estimated $ per reshard transition

	hotStreak  map[int]int
	idleStreak map[string]int

	// delayPool prices each shard's queueing backlog: every sample adds
	// depth x Interval x DelayUSDPerItemSec. A split "spends" the hot
	// shard's pool; the pool is the delay cost the split relieves.
	delayPool map[int]float64

	// splitPaid is the delay cost a split's shards have absorbed since
	// the split — the evidence that the split (and the merge that would
	// undo it) earned their transitions.
	splitPaid map[string]float64
}

func newAutoShardPolicy(cfg AutoShard, reshardUSD float64) *autoShardPolicy {
	return &autoShardPolicy{
		cfg:        cfg,
		reshardUSD: reshardUSD,
		hotStreak:  map[int]int{},
		idleStreak: map[string]int{},
		delayPool:  map[int]float64{},
		splitPaid:  map[string]float64{},
	}
}

// step ingests one round of depth samples (depth must tolerate any shard
// in [0, m.Queues)) and returns the action to take. With CostAware off
// the decisions reduce exactly to the depth-threshold policy: a shard hot
// for Sustain samples splits, a split idle for MergeIdle samples merges.
// Cost-aware mode keeps the streaks as the trigger but adds an economic
// gate on each:
//
//   - split only once the hot shard's delay pool has paid for the
//     estimated reshard transition — sustained-but-mild heat that never
//     costs a transition's dollars never warrants one;
//   - merge only once the split has absorbed delay cost covering both
//     its own transition and the merge's. A split that went idle before
//     earning its keep stays: merging would spend reshard dollars to
//     relieve nothing, and the next spike would spend them again.
func (p *autoShardPolicy) step(m *shardmap.Map, depth func(int) int64) autoShardAction {
	act := autoShardAction{splitShard: -1}
	dt := p.cfg.Interval.Seconds()
	for s := 0; s < m.Queues; s++ {
		c := float64(depth(s)) * dt * p.cfg.DelayUSDPerItemSec
		p.delayPool[s] += c
		if sp, ok := m.SplitFor(s); ok {
			p.splitPaid[sp.Prefix] += c
		}
	}
	acted := false
	for s := 0; s < m.Queues; s++ {
		if depth(s) >= int64(p.cfg.SplitDepth) {
			p.hotStreak[s]++
		} else {
			p.hotStreak[s] = 0
		}
		if acted || p.hotStreak[s] < p.cfg.Sustain {
			continue
		}
		if p.cfg.CostAware && p.delayPool[s] < p.reshardUSD {
			continue
		}
		p.hotStreak[s] = 0
		p.delayPool[s] = 0
		acted = true
		act.splitShard = s
	}
	if p.cfg.MergeIdle > 0 && !acted {
		for _, sp := range m.Splits {
			idle := true
			for _, s := range sp.Shards {
				if depth(s) > 0 {
					idle = false
					break
				}
			}
			if idle {
				p.idleStreak[sp.Prefix]++
			} else {
				p.idleStreak[sp.Prefix] = 0
			}
			if p.idleStreak[sp.Prefix] < p.cfg.MergeIdle {
				continue
			}
			if p.cfg.CostAware && p.splitPaid[sp.Prefix] < 2*p.reshardUSD {
				continue
			}
			p.idleStreak[sp.Prefix] = 0
			delete(p.splitPaid, sp.Prefix)
			for _, s := range sp.Shards {
				delete(p.delayPool, s)
			}
			act.merge = sp.Prefix
			break
		}
	}
	return act
}

// reshardEstimateUSD prices one reshard transition for the policy's
// economic gates from the deployment's own pricing sheet.
func (d *Deployment) reshardEstimateUSD() float64 {
	m := costmodel.Model{P: d.Cfg.Profile.Pricing}
	return m.ReshardEstimate(d.Cfg.AutoShard.SplitWays, 512)
}
