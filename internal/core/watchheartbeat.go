package core

import (
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/wire"
)

// heartbeatPrepBase is the per-client probe preparation cost inside the
// heartbeat sandbox (scaled by the sandbox's CPU/I/O allocation).
var heartbeatPrepBase = sim.Q(0.3, 1.2, 2.5, 4.0, 10)

// watchHandler is the free watch function (Section 4.1 "Decoupling Watch
// Delivery"): it fans one notification out to every subscribed client in
// parallel and waits for the deliveries before returning, which is what
// lets the leader's epoch bookkeeping treat the invocation's completion as
// "notification delivered". This per-session enumeration is the
// paper-faithful path; with Config.WatchFanout the leader instead
// publishes one record per (path, txid) to the regional fan-out node
// (internal/watchfanout), which owns session membership and delivery
// pacing — see Deployment.FanoutFor.
func (d *Deployment) watchHandler(inv *faas.Invocation) error {
	p, err := decodeWatchPayloadWith(d.Cfg.codec, inv.Payload)
	if err != nil {
		return err
	}
	n := Notification{WatchID: p.WatchID, Event: p.Event, Path: p.Path, Txid: p.Txid}
	wg := sim.NewWaitGroup(d.K)
	for _, session := range p.Sessions {
		session := session
		wg.Add(1)
		d.K.Go("watch-send", func() {
			defer wg.Done()
			d.notify(session, n, n.wireSize())
			// Wait one round trip for the client's TCP-level delivery
			// acknowledgment before declaring the notification delivered.
			d.K.Sleep(d.Env.Profile.ClientRTT.Sample(d.K.Rand()))
		})
	}
	wg.Wait()
	return nil
}

// heartbeatHandler is the scheduled heartbeat function (Section 3.6): scan
// the session table, ping every session that owns ephemeral nodes in
// parallel, and start eviction for the ones that do not answer in time by
// queueing a deregistration request into their processing queue.
func (d *Deployment) heartbeatHandler(inv *faas.Invocation) error {
	t0 := d.K.Now()
	defer func() { d.recordPhase("heartbeat.total", d.K.Now()-t0) }()
	// Heartbeat work (and the sandbox's own GB-s) is system overhead: no
	// single request caused it, so it bills the ledger's trace-0 bucket.
	inv.Ctx = d.billSys(inv.Ctx, 0)
	inv.Bill = inv.Ctx.Bill
	items := d.System.Scan(inv.Ctx)
	type probe struct {
		session string
		alive   *sim.Future[bool]
	}
	var probes []probe
	for _, it := range items {
		if len(it.Key) <= len(sessionKeyPrefix) || it.Key[:len(sessionKeyPrefix)] != sessionKeyPrefix {
			continue
		}
		session := it.Key[len(sessionKeyPrefix):]
		if len(it.Item[attrSessionEph].SL) == 0 {
			continue // no ephemeral state at risk: skip the probe
		}
		st := d.sessions[session]
		alive := sim.NewFuture[bool](d.K)
		probes = append(probes, probe{session: session, alive: alive})
		if st == nil || st.closed {
			alive.Complete(false)
			continue
		}
		// Preparing each probe (serialization, connection setup) is
		// sequential work inside the sandbox; its cost shrinks with larger
		// memory allocations, which is why Figure 13's execution time
		// drops as memory grows.
		d.K.Sleep(d.Env.OpTime(inv.Ctx, heartbeatPrepBase, sim.Ms(1), 1024))
		nonce := d.K.Rand().Int63()
		d.K.Go("heartbeat-ping", func() {
			d.notify(session, Ping{Nonce: nonce}, 16)
			deadline := d.K.Now() + sim.Time(d.Cfg.HeartbeatTimeout)
			for {
				remaining := deadline - d.K.Now()
				if remaining <= 0 {
					alive.TryComplete(false)
					return
				}
				pong, ok := st.pongs.PopTimeout(remaining)
				if !ok {
					alive.TryComplete(false)
					return
				}
				if pong.Nonce == nonce {
					alive.TryComplete(true)
					return
				}
				// Stale pong from a previous round: keep waiting.
			}
		})
	}
	for _, p := range probes {
		if p.alive.Wait() {
			continue
		}
		d.evictSession(inv, p.session)
	}
	return nil
}

// evictSession places a deregistration request in the dead session's
// processing queue so its ephemeral nodes are removed through the ordinary
// ordered write path.
func (d *Deployment) evictSession(inv *faas.Invocation, session string) {
	st := d.sessions[session]
	var q *queue.Queue
	if st != nil && !st.closed {
		q = st.Queue
	} else {
		// Transport already gone (client process died): run the
		// deregistration inline; the system store is the source of truth.
		req := Request{Session: session, Op: OpDeregister, Version: -1}
		_ = d.followerDeregister(inv.Ctx, req)
		return
	}
	req := Request{Session: session, Op: OpDeregister, Version: -1}
	e := wire.NewEncoder()
	_, _ = q.Send(inv.Ctx, session, req.EncodeWith(d.Cfg.codec, e))
	e.Release()
}
