package core

// Cost-attribution glue: the sinks the pipeline hangs off cloud.Ctx.Bill
// so that every metered charge — function GB-s, store read/write units
// (including conditional-write retries), queue deliveries, cache hits and
// VM accrual, watch pushes, transaction votes — lands in the deployment's
// cost ledger exactly once, attributed to the request that caused it and
// to the open span covering the work. Every helper returns its input
// unchanged (or nil) when Config.CostAccounting is off, so the
// instrumentation points cost nothing on the default configuration.
//
// Attribution must ride the context rather than any "current request"
// global: cloud primitives Sleep before charging, and the simulator's
// cooperative scheduler interleaves dozens of requests across those
// yields — by the time a charge fires, some other request is "current".
// The same cooperative scheduling is why the ledger needs no locks: only
// one process runs at a time.

import "faaskeeper/internal/cloud"

// costOn reports whether the cost ledger records.
func (d *Deployment) costOn() bool {
	return d.Obs != nil && d.Obs.Cost.Enabled()
}

// costReqTrace returns the trace a request's charges are billed to, or 0
// (the system bucket) for deregistrations and other untraced requests.
// Unlike the telemetry helpers it does not gate on Config.Telemetry:
// dollar attribution works on deployments that never record spans.
func costReqTrace(req Request) int64 {
	if !tracedReq(req) {
		return 0
	}
	return req.trace()
}

// costMsgTrace is costReqTrace for the leader hop. OpTxnCommit is
// included: the cross-shard commit message's charges belong to the
// originating multi()'s bill.
func costMsgTrace(msg leaderMsg) int64 {
	if msg.Seq <= 0 || msg.Op == OpDeregister || msg.Op == OpReshardFence {
		return 0
	}
	return msg.trace()
}

// traceBill charges one request's trace (and, when span is a live span
// id, folds the dollars into that span so per-stage costs telescope).
type traceBill struct {
	d      *Deployment
	trace  int64
	span   int64
	shard  int
	region string
}

func (b *traceBill) BillOp(cat string, usd float64, n int64) {
	pd := b.d.Obs.Cost.Charge(cat, b.shard, b.region, usd, n)
	b.d.Obs.Cost.Attribute(b.trace, pd)
	b.d.Obs.Tracer.AddCost(b.trace, b.span, pd)
}

// foldBill amortizes a batched charge across the requests the fold
// serves: integer division splits the picodollars, with the remainder
// handed out one picodollar at a time to the leading traces so the split
// is deterministic and sums exactly to the charge. Untraced members
// (trace 0) keep their share in the system bucket.
type foldBill struct {
	d      *Deployment
	traces []int64
	shard  int
	region string
}

func (b *foldBill) BillOp(cat string, usd float64, n int64) {
	pd := b.d.Obs.Cost.Charge(cat, b.shard, b.region, usd, n)
	m := int64(len(b.traces))
	if m == 0 {
		b.d.Obs.Cost.Attribute(0, pd)
		return
	}
	share := pd / m
	rem := pd - share*m
	for i, tr := range b.traces {
		p := share
		if int64(i) < rem {
			p++
		}
		if p == 0 {
			continue
		}
		b.d.Obs.Cost.Attribute(tr, p)
		b.d.Obs.Tracer.AddCost(tr, 0, p)
	}
}

// billReq returns ctx billing every charge to the request's trace.
func (d *Deployment) billReq(ctx cloud.Ctx, req Request, shard int) cloud.Ctx {
	if !d.costOn() {
		return ctx
	}
	ctx.Bill = &traceBill{d: d, trace: costReqTrace(req), shard: shard}
	return ctx
}

// billMsg returns ctx billing every charge to the leader message's trace.
func (d *Deployment) billMsg(ctx cloud.Ctx, msg leaderMsg) cloud.Ctx {
	if !d.costOn() {
		return ctx
	}
	ctx.Bill = &traceBill{d: d, trace: costMsgTrace(msg), shard: msg.Shard}
	return ctx
}

// billSys returns ctx billing charges to the system bucket: control-plane
// work (heartbeats, reshard transitions) no single request caused.
func (d *Deployment) billSys(ctx cloud.Ctx, shard int) cloud.Ctx {
	if !d.costOn() {
		return ctx
	}
	ctx.Bill = &traceBill{d: d, shard: shard}
	return ctx
}

// billSpan returns ctx billing charges to an explicit trace and folding
// them into the open span id (reqSpan/tspan result; 0 falls back to the
// trace's current stage).
func (d *Deployment) billSpan(ctx cloud.Ctx, trace, span int64, shard int, region string) cloud.Ctx {
	if !d.costOn() {
		return ctx
	}
	ctx.Bill = &traceBill{d: d, trace: trace, span: span, shard: shard, region: region}
	return ctx
}

// billFold returns ctx amortizing charges across the fold's traces.
func (d *Deployment) billFold(ctx cloud.Ctx, traces []int64, shard int, region string) cloud.Ctx {
	if !d.costOn() {
		return ctx
	}
	ctx.Bill = &foldBill{d: d, traces: traces, shard: shard, region: region}
	return ctx
}

// BillRequestCtx returns ctx attributing charges to the request's trace —
// the client library's hook for billing the session-queue ingress send to
// the request it carries.
func (d *Deployment) BillRequestCtx(ctx cloud.Ctx, req Request) cloud.Ctx {
	return d.billReq(ctx, req, 0)
}

// BillSystemCtx returns ctx attributing charges to the ledger's system
// bucket — the client library's hook for its read path (reads are
// untraced; their store, cache, and queue charges still enter the ledger
// so $/1M-requests totals cover the whole workload).
func (d *Deployment) BillSystemCtx(ctx cloud.Ctx) cloud.Ctx {
	return d.billSys(ctx, 0)
}

// invBill returns the sink that amortizes an invocation's compute charge
// (GB-s for the whole sandbox run) across the batch's traces, or nil when
// accounting is off — faas.Invocation.Bill left nil keeps the charge out
// of the ledger entirely, matching every other unattributed meter charge.
func (d *Deployment) invBill(traces []int64, shard int) cloud.BillSink {
	if !d.costOn() {
		return nil
	}
	return &foldBill{d: d, traces: traces, shard: shard}
}
