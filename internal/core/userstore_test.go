package core

// Regression tests for the user-store backends: the mem store's
// read-latency accounting and the hybrid store's spill lifecycle.

import (
	"bytes"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// TestMemStoreReadChargesPostSleepSize: the transfer term of a mem-store
// read must be charged for the blob the read actually returns — the value
// present when the operation executes server-side — not for whatever the
// map held when the request was issued. A write that lands during the
// request's travel time is therefore both returned and paid for. (The old
// code looked the value up twice: latency from the pre-sleep blob, result
// from the post-sleep one, and the first lookup's hit/miss was discarded.)
func TestMemStoreReadChargesPostSleepSize(t *testing.T) {
	k := sim.NewKernel(7)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	s := NewMemStore(env, cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)

	// 10 MB at MemReadPerKB = 0.012 ms/kB is ~123 ms of transfer —
	// orders of magnitude above MemReadBase's 5 ms max, so the assertion
	// below can only pass if the post-sleep blob's size was charged.
	const bigB = 10 << 20
	big := &znode.Node{Path: "/big", Data: bytes.Repeat([]byte("x"), bigB)}
	transfer := sim.Time(float64(env.Profile.MemReadPerKB) * bigB / 1024)

	var elapsed sim.Time
	var readData []byte
	k.Go("reader", func() {
		// At issue time the node does not exist yet; the writer below
		// creates it while this request is in flight.
		t0 := k.Now()
		n, _, err := s.Read(ctx, "/big")
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		elapsed = k.Now() - t0
		readData = n.Data
	})
	k.Go("writer", func() {
		// MemReadBase samples at least 0.30 ms; seed the value inside
		// the reader's request-travel window (Seed applies instantly, so
		// the landing time is exact regardless of write latency).
		k.Sleep(sim.Ms(0.05))
		s.Seed(big)
	})
	k.Run()
	k.Shutdown()

	if len(readData) != bigB {
		t.Fatalf("read returned %d bytes, want the in-flight write's %d", len(readData), bigB)
	}
	if elapsed < transfer {
		t.Errorf("read took %v, below the %v transfer time of the returned blob: latency was charged for the wrong size", elapsed, transfer)
	}
}

// TestMemStoreReadMiss: a missing path still pays the request round trip
// and reports ErrUserNoNode.
func TestMemStoreReadMiss(t *testing.T) {
	k := sim.NewKernel(8)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	s := NewMemStore(env, cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("reader", func() {
		t0 := k.Now()
		if _, _, err := s.Read(ctx, "/nope"); err != ErrUserNoNode {
			t.Errorf("read miss = %v, want ErrUserNoNode", err)
		}
		if k.Now() == t0 {
			t.Error("miss should still pay the request latency")
		}
	})
	k.Run()
	k.Shutdown()
}

// TestHybridStoreShrinkDeletesSpill: a node written above the spill
// threshold and then rewritten below it must drop the stale spill object —
// otherwise the orphan blob leaks storage cost forever and a later grow
// cycle could resurrect stale bytes.
func TestHybridStoreShrinkDeletesSpill(t *testing.T) {
	k := sim.NewKernel(9)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	const threshold = 4096
	s := NewHybridStore(env, "shrink", cloud.RegionAWSHome, threshold)
	hs := s.(*hybridStore)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("test", func() {
		bigData := bytes.Repeat([]byte("b"), threshold+1)
		if err := s.Write(ctx, &znode.Node{Path: "/n", Data: bigData}, nil); err != nil {
			t.Fatalf("big write: %v", err)
		}
		if _, had := hs.bucket.Peek("/n"); !had {
			t.Fatal("above-threshold write should spill to the object store")
		}
		n, _, err := s.Read(ctx, "/n")
		if err != nil || !bytes.Equal(n.Data, bigData) {
			t.Fatalf("big read: %v (len %d)", err, len(n.Data))
		}

		smallData := []byte("small")
		if err := s.Write(ctx, &znode.Node{Path: "/n", Data: smallData}, nil); err != nil {
			t.Fatalf("small rewrite: %v", err)
		}
		if _, had := hs.bucket.Peek("/n"); had {
			t.Error("shrink must delete the stale spill object")
		}
		n, _, err = s.Read(ctx, "/n")
		if err != nil {
			t.Fatalf("read after shrink: %v", err)
		}
		if !bytes.Equal(n.Data, smallData) {
			t.Errorf("read after shrink = %q, want %q", n.Data, smallData)
		}
		if n.Stat.DataLength != int32(len(smallData)) {
			t.Errorf("DataLength = %d, want %d", n.Stat.DataLength, len(smallData))
		}
		if sb := s.StoredBytes(); sb > 2*threshold {
			t.Errorf("StoredBytes = %d still accounts the dropped spill", sb)
		}

		// Grow-shrink-grow keeps working (no tombstone interference).
		if err := s.Write(ctx, &znode.Node{Path: "/n", Data: bigData}, nil); err != nil {
			t.Fatalf("re-grow: %v", err)
		}
		n, _, err = s.Read(ctx, "/n")
		if err != nil || !bytes.Equal(n.Data, bigData) {
			t.Fatalf("read after re-grow: %v (len %d)", err, len(n.Data))
		}

		// Delete removes both halves.
		if err := s.Delete(ctx, "/n"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, had := hs.bucket.Peek("/n"); had {
			t.Error("delete must remove the spill object")
		}
		if _, _, err := s.Read(ctx, "/n"); err != ErrUserNoNode {
			t.Errorf("read after delete = %v, want ErrUserNoNode", err)
		}
	})
	k.Run()
	k.Shutdown()
}
