package core

import (
	"errors"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/object"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// StoreKind selects the user data store backend (Section 4.2).
type StoreKind string

// Available user store backends.
const (
	StoreObject StoreKind = "object" // S3 / Cloud Storage
	StoreKV     StoreKind = "kv"     // DynamoDB / Datastore
	StoreHybrid StoreKind = "hybrid" // small nodes in KV, large in object storage
	StoreMem    StoreKind = "mem"    // Redis-like in-memory cache on a VM
)

// ErrUserNoNode is returned when a read misses.
var ErrUserNoNode = errors.New("core: node not in user store")

// UserStore is the read-optimized, strongly consistent store clients read
// from directly. Writes always replace the full serialized node (no
// partial updates in cloud object stores — Requirement #6), stamped with
// the epoch list for watch ordering.
type UserStore interface {
	Kind() StoreKind
	Region() cloud.Region
	Write(ctx cloud.Ctx, n *znode.Node, epoch []int64) error
	Read(ctx cloud.Ctx, path string) (*znode.Node, []int64, error)
	Delete(ctx cloud.Ctx, path string) error
	// Seed stores a node with no latency or billing (deployment bootstrap).
	Seed(n *znode.Node)
	// StoredBytes reports retained bytes for storage-cost accounting.
	StoredBytes() int
}

// BatchWrite is one node's final state inside an atomic multi-path apply:
// a nil Node deletes the path.
type BatchWrite struct {
	Path  string
	Node  *znode.Node
	Epoch []int64
}

// AtomicApplier is the optional user-store capability a committed
// transaction's distribution uses: all writes of the batch become readable
// at one instant, so no reader can observe a partially applied multi().
// KV-backed stores implement it with the table's transactional write; the
// object store cannot (S3 has no multi-key transactions), so transactions
// there fall back to applying the writes sequentially in op order —
// readers then see a prefix of the transaction, never an arbitrary mix
// (documented in the README's transaction section).
type AtomicApplier interface {
	ApplyBatch(ctx cloud.Ctx, writes []BatchWrite) error
}

// objectStore keeps every node as one object.
type objectStore struct {
	bucket *object.Bucket
}

// NewObjectStore builds an object-backed user store.
func NewObjectStore(env *cloud.Env, name string, region cloud.Region) UserStore {
	return &objectStore{bucket: object.NewBucket(env, name, region)}
}

func (s *objectStore) Kind() StoreKind      { return StoreObject }
func (s *objectStore) Region() cloud.Region { return s.bucket.Region() }
func (s *objectStore) StoredBytes() int     { return s.bucket.TotalSize() }

func (s *objectStore) Write(ctx cloud.Ctx, n *znode.Node, epoch []int64) error {
	s.bucket.Put(ctx, n.Path, znode.Marshal(n, epoch))
	return nil
}

func (s *objectStore) Read(ctx cloud.Ctx, path string) (*znode.Node, []int64, error) {
	blob, err := s.bucket.Get(ctx, path)
	if errors.Is(err, object.ErrNoSuchKey) {
		return nil, nil, ErrUserNoNode
	}
	if err != nil {
		return nil, nil, err
	}
	return znode.Unmarshal(blob)
}

func (s *objectStore) Delete(ctx cloud.Ctx, path string) error {
	s.bucket.Delete(ctx, path)
	return nil
}

func (s *objectStore) Seed(n *znode.Node) { s.bucket.SeedPut(n.Path, znode.Marshal(n, nil)) }

// kvStore keeps every node as one KV item holding the serialized blob.
type kvStore struct {
	tbl    *kv.Table
	region cloud.Region
}

// NewKVStore builds a key-value-backed user store (bills under "userkv").
func NewKVStore(env *cloud.Env, name string, region cloud.Region) UserStore {
	tbl := kv.NewTable(env, name)
	tbl.SetCostCategory("userkv")
	return &kvStore{tbl: tbl, region: region}
}

func (s *kvStore) Kind() StoreKind      { return StoreKV }
func (s *kvStore) Region() cloud.Region { return s.region }
func (s *kvStore) StoredBytes() int     { return s.tbl.TotalSize() }

func (s *kvStore) Write(ctx cloud.Ctx, n *znode.Node, epoch []int64) error {
	return s.tbl.Put(ctx, n.Path, kv.Item{"n": kv.B(znode.Marshal(n, epoch))}, nil)
}

func (s *kvStore) Read(ctx cloud.Ctx, path string) (*znode.Node, []int64, error) {
	// A read-only view suffices: Unmarshal copies everything it keeps,
	// so nothing of table storage escapes (skips cloning the node blob).
	it, ok := s.tbl.GetView(ctx, path, true)
	if !ok {
		return nil, nil, ErrUserNoNode
	}
	return znode.Unmarshal(it["n"].Byt)
}

func (s *kvStore) Delete(ctx cloud.Ctx, path string) error {
	return s.tbl.Delete(ctx, path, nil)
}

func (s *kvStore) Seed(n *znode.Node) {
	s.tbl.SeedPut(n.Path, kv.Item{"n": kv.B(znode.Marshal(n, nil))})
}

// ApplyBatch makes all of a transaction's writes readable atomically via
// the table's transactional write (Requirement #6 has no bite here — the
// KV store does support multi-item transactions, unlike object storage).
func (s *kvStore) ApplyBatch(ctx cloud.Ctx, writes []BatchWrite) error {
	ops := make([]kv.TxOp, 0, len(writes))
	for _, w := range writes {
		if w.Node == nil {
			ops = append(ops, kv.TxOp{Key: w.Path, Delete: true})
			continue
		}
		ops = append(ops, kv.TxOp{Key: w.Path, Updates: []kv.Update{
			kv.Set{Name: "n", V: kv.B(znode.Marshal(w.Node, w.Epoch))},
		}})
	}
	return s.tbl.Transact(ctx, ops)
}

// hybridStore places nodes up to thresholdB fully in the KV store and
// splits larger ones: metadata in KV, data in object storage (Section 4.2
// "Hybrid storage"). Reads start at the KV store and only the infrequent
// large nodes pay the second request.
type hybridStore struct {
	tbl        *kv.Table
	bucket     *object.Bucket
	region     cloud.Region
	thresholdB int
}

// NewHybridStore builds the hybrid user store with the given spill
// threshold (the paper uses 4 kB).
func NewHybridStore(env *cloud.Env, name string, region cloud.Region, thresholdB int) UserStore {
	if thresholdB <= 0 {
		thresholdB = 4096
	}
	tbl := kv.NewTable(env, name+"-kv")
	tbl.SetCostCategory("userkv")
	return &hybridStore{
		tbl:        tbl,
		bucket:     object.NewBucket(env, name+"-spill", region),
		region:     region,
		thresholdB: thresholdB,
	}
}

func (s *hybridStore) Kind() StoreKind      { return StoreHybrid }
func (s *hybridStore) Region() cloud.Region { return s.region }
func (s *hybridStore) StoredBytes() int     { return s.tbl.TotalSize() + s.bucket.TotalSize() }

func (s *hybridStore) Write(ctx cloud.Ctx, n *znode.Node, epoch []int64) error {
	if len(n.Data) <= s.thresholdB {
		err := s.tbl.Put(ctx, n.Path, kv.Item{"n": kv.B(znode.Marshal(n, epoch))}, nil)
		if err == nil {
			// A previously large node may have shrunk; drop stale spill.
			if _, had := s.bucket.Peek(n.Path); had {
				s.bucket.Delete(ctx, n.Path)
			}
		}
		return err
	}
	meta := n.Clone()
	meta.Data = nil
	meta.Stat.DataLength = int32(len(n.Data))
	if err := s.tbl.Put(ctx, n.Path, kv.Item{
		"n":     kv.B(znode.Marshal(meta, epoch)),
		"spill": kv.N(1),
	}, nil); err != nil {
		return err
	}
	s.bucket.Put(ctx, n.Path, n.Data)
	return nil
}

func (s *hybridStore) Read(ctx cloud.Ctx, path string) (*znode.Node, []int64, error) {
	it, ok := s.tbl.GetView(ctx, path, true)
	if !ok {
		return nil, nil, ErrUserNoNode
	}
	n, epoch, err := znode.Unmarshal(it["n"].Byt)
	if err != nil {
		return nil, nil, err
	}
	if it["spill"].Num == 1 {
		data, err := s.bucket.Get(ctx, path)
		if err != nil {
			return nil, nil, fmt.Errorf("core: hybrid spill read: %w", err)
		}
		// Bucket.Get returns a read-only view of bucket storage; the node
		// hands Data to the application (GetDataW), so copy here.
		n.Data = append([]byte(nil), data...)
	}
	n.Stat.DataLength = int32(len(n.Data))
	return n, epoch, nil
}

func (s *hybridStore) Delete(ctx cloud.Ctx, path string) error {
	if err := s.tbl.Delete(ctx, path, nil); err != nil {
		return err
	}
	if _, had := s.bucket.Peek(path); had {
		s.bucket.Delete(ctx, path)
	}
	return nil
}

func (s *hybridStore) Seed(n *znode.Node) {
	if len(n.Data) <= s.thresholdB {
		s.tbl.SeedPut(n.Path, kv.Item{"n": kv.B(znode.Marshal(n, nil))})
		return
	}
	meta := n.Clone()
	meta.Data = nil
	s.tbl.SeedPut(n.Path, kv.Item{"n": kv.B(znode.Marshal(meta, nil)), "spill": kv.N(1)})
	s.bucket.SeedPut(n.Path, n.Data)
}

// memStore models a Redis instance on a provisioned VM: microsecond-scale
// operations, no per-operation billing (the VM bills by the hour instead).
type memStore struct {
	env    *cloud.Env
	region cloud.Region
	data   map[string][]byte
	ops    int64
}

// NewMemStore builds the in-memory cache user store.
func NewMemStore(env *cloud.Env, region cloud.Region) UserStore {
	return &memStore{env: env, region: region, data: map[string][]byte{}}
}

func (s *memStore) Kind() StoreKind      { return StoreMem }
func (s *memStore) Region() cloud.Region { return s.region }

func (s *memStore) StoredBytes() int {
	n := 0
	for _, b := range s.data {
		n += len(b)
	}
	return n
}

func (s *memStore) lat(ctx cloud.Ctx, base sim.Dist, perKB sim.Time, size int) sim.Time {
	return s.env.OpTime(ctx, base, perKB, size)
}

func (s *memStore) Write(ctx cloud.Ctx, n *znode.Node, epoch []int64) error {
	blob := znode.Marshal(n, epoch)
	p := s.env.Profile
	s.env.K.Sleep(s.lat(ctx, p.MemWriteBase, p.MemWritePerKB, len(blob)))
	s.ops++
	s.data[n.Path] = blob
	return nil
}

func (s *memStore) Read(ctx cloud.Ctx, path string) (*znode.Node, []int64, error) {
	p := s.env.Profile
	// Request travel and server processing come first; the single lookup
	// then observes whatever the store holds when the operation executes
	// server-side, and the transfer term is charged for exactly the blob
	// returned — the value and the size-driven latency can never diverge.
	s.env.K.Sleep(s.lat(ctx, p.MemReadBase, 0, 0))
	s.ops++
	blob, ok := s.data[path]
	if !ok {
		return nil, nil, ErrUserNoNode
	}
	s.env.K.Sleep(s.lat(ctx, sim.Const(0), p.MemReadPerKB, len(blob)))
	return znode.Unmarshal(blob)
}

func (s *memStore) Delete(ctx cloud.Ctx, path string) error {
	p := s.env.Profile
	s.env.K.Sleep(s.lat(ctx, p.MemWriteBase, p.MemWritePerKB, 0))
	s.ops++
	delete(s.data, path)
	return nil
}

func (s *memStore) Seed(n *znode.Node) { s.data[n.Path] = znode.Marshal(n, nil) }

// ApplyBatch applies every write in one in-memory step after a single
// write round trip: the Redis analogue of a MULTI/EXEC pipeline.
func (s *memStore) ApplyBatch(ctx cloud.Ctx, writes []BatchWrite) error {
	size := 0
	blobs := make([][]byte, len(writes))
	for i, w := range writes {
		if w.Node != nil {
			blobs[i] = znode.Marshal(w.Node, w.Epoch)
			size += len(blobs[i])
		}
	}
	p := s.env.Profile
	s.env.K.Sleep(s.lat(ctx, p.MemWriteBase, p.MemWritePerKB, size))
	s.ops++
	for i, w := range writes {
		if w.Node == nil {
			delete(s.data, w.Path)
		} else {
			s.data[w.Path] = blobs[i]
		}
	}
	return nil
}
