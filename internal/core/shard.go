package core

import (
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// The sharded write path partitions the leader pipeline by znode subtree:
// instead of one global ordered queue feeding one serialized leader
// instance, the deployment provisions WriteShards queues, each with its own
// single-concurrency leader trigger and its own epoch counters. Requests
// are routed by the top-level path segment, so a parent and all of its
// descendants always share a shard and the per-shard total order is enough
// for ZooKeeper's node-local invariants (sequential-node counters,
// not-empty checks, per-node mzxid monotonicity). Only the tree root is
// shared between shards; its user-store read-modify-write cycles are
// serialized by a system-store timed lock (rootUpdateLockKey), and
// session deregistration uses a system-store barrier item so the ack
// orders behind ephemeral deletions on every shard. With WriteShards = 1
// (the default) the pipeline collapses to the paper's single
// totally-ordered queue.
//
// With Config.DynamicShards the fixed mod-N route becomes the starting
// epoch of a durable routing table (package shardmap) that can be
// resharded live — consistent-hash slot moves to grow or shrink the queue
// count, and depth-2 sub-splits of a hot subtree — via the reshard
// protocol in reshard.go. Routing decisions then come from the map, txids
// interleave on the fixed shardmap.Stride so they stay decodable across
// epochs, and every follower commit pins the routed shard's map
// generation (dynGuard), rejecting writes routed with a stale map exactly
// like the Z4 epoch-stamp gate rejects stale reads.

// ShardOf maps a znode path to its write shard among n shards: the FNV
// hash of the top-level path segment modulo n. The root maps to shard 0.
// The client library and the follower compute it independently, like
// WatchID, so routing never needs a storage round trip. This is also
// epoch 0 of every dynamic shard map.
func ShardOf(path string, n int) int { return shardmap.DefaultShard(path, n) }

// shardTxid interleaves per-shard queue sequence numbers into globally
// unique transaction ids: txid = seqNo*n + shard. Within a shard txids
// stay strictly increasing (the property every per-node invariant relies
// on), and with n = 1 the txid is exactly the queue sequence number, as in
// the unsharded paper design. Dynamic deployments interleave on the fixed
// shardmap.Stride instead (see dynShards).
func shardTxid(seqNo int64, shard, n int) int64 {
	return seqNo*int64(n) + int64(shard)
}

// leaderQueueName names a shard's ordered queue; the single-shard
// deployment keeps the paper's original "leader" queue name.
func leaderQueueName(shard, n int) string {
	if n == 1 {
		return "leader"
	}
	return fmt.Sprintf("leader-%d", shard)
}

// dynShards is the dynamic-sharding state of a deployment (nil when
// Config.DynamicShards is off, keeping every static code path — and the
// golden trace — untouched). cur is the warm-sandbox cached view of the
// durable map, the same trust model as the follower's lastSeq cache: it
// may lag the store, and the commit-time generation guard is what makes a
// stale view safe.
type dynShards struct {
	store *shardmap.Store
	cur   *shardmap.Map

	// hot counts routed writes per top-level segment since the last
	// auto-shard sample — the policy's signal for picking the subtree to
	// split (a metrics service in a real deployment; warm state here).
	hot map[string]int64
}

// Dynamic reports whether the deployment routes through a live shard map.
func (d *Deployment) Dynamic() bool { return d.dyn != nil }

// mapView returns the warm cached map. Callers treat it as possibly
// stale: routing mistakes are caught by the commit generation guard.
func (d *Deployment) mapView() *shardmap.Map { return d.dyn.cur }

// refreshMap reloads the cached view with a strongly consistent read.
func (d *Deployment) refreshMap(ctx cloud.Ctx) *shardmap.Map {
	if m, err := d.dyn.store.Load(ctx); err == nil {
		d.dyn.cur = m
	}
	return d.dyn.cur
}

// LoadShardMap reads the current durable map (client libraries and tests;
// nil when the deployment is static).
func (d *Deployment) LoadShardMap(ctx cloud.Ctx) *shardmap.Map {
	if d.dyn == nil {
		return nil
	}
	m, err := d.dyn.store.Load(ctx)
	if err != nil {
		return d.dyn.cur
	}
	return m
}

// TxidShard recovers the shard that minted a txid: modulo the shard count
// on a static deployment, modulo the fixed stride on a dynamic one.
func (d *Deployment) TxidShard(txid int64) int {
	if d.dyn != nil {
		return shardmap.ShardOfTxid(txid)
	}
	return int(txid % int64(d.NumShards()))
}

// RouteShard returns the shard currently owning a path's writes.
func (d *Deployment) RouteShard(path string) int {
	if d.dyn != nil {
		return d.mapView().ShardFor(path)
	}
	return ShardOf(path, d.NumShards())
}

// routeFn returns a routing snapshot plus the map view it came from (nil
// on static deployments). A multi-op transaction resolves every path
// against one snapshot, so its shard groups are internally consistent even
// if the cached view refreshes mid-plan; the commit-time generation guard
// rejects the whole plan if the snapshot went stale.
func (d *Deployment) routeFn() (func(string) int, *shardmap.Map) {
	if d.dyn != nil {
		m := d.mapView()
		return m.ShardFor, m
	}
	n := d.NumShards()
	return func(p string) int { return ShardOf(p, n) }, nil
}

// isSharedPath reports whether the path's user-store object is rebuilt by
// more than one shard leader and therefore needs the cross-shard
// read-modify-write lock: the tree root of a multi-shard deployment, plus
// the root node of any split subtree on a dynamic one.
func (d *Deployment) isSharedPath(path string) bool {
	if d.dyn != nil {
		return d.mapView().Shared(path)
	}
	return d.NumShards() > 1 && path == znode.Root
}

// sharedLockKey names the timed lock serializing a shared path's
// user-store read-modify-write cycles. The tree root keeps the original
// key (the static pipeline's behavior is pinned by the golden trace).
func sharedLockKey(path string) string {
	if path == znode.Root {
		return rootUpdateLockKey
	}
	return rootUpdateLockKey + ":" + path
}

// awaitRoutable blocks while the path is gated by an in-flight migration:
// the quiesce phase of the live reshard. Only migrating prefixes wait;
// every other path routes immediately.
func (d *Deployment) awaitRoutable(ctx cloud.Ctx, path string) {
	if d.dyn == nil {
		return
	}
	if !d.mapView().Blocked(path) {
		return
	}
	for attempt := 0; ; attempt++ {
		if !d.refreshMap(ctx).Blocked(path) {
			return
		}
		d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
	}
}

// --- dynamic wire riders ---
//
// Dynamic-mode messages must carry the routing generation and the shard's
// txid base, but adding fields to leaderMsg would change its gob type
// descriptor — and with it the wire size and the golden trace of every
// deployment. Non-deregistration messages never use Fanout/DeregID, so the
// dynamic pipeline rides them (the precedent set by the transaction
// payloads riding Request.Data and leaderMsg.NodeBlob).

// dynStamp stores the routed shard's generation and txid base on a
// non-deregistration leader message.
func dynStamp(msg *leaderMsg, m *shardmap.Map) {
	if msg.Op == OpDeregister {
		return
	}
	msg.DeregID = m.GenOf(msg.Shard)
	msg.Fanout = int(m.SeqBase[msg.Shard])
}

// dynGen reads the stamped routing generation.
func dynGen(msg leaderMsg) int64 { return msg.DeregID }

// dynBase reads the stamped txid base.
func dynBase(msg leaderMsg) int64 { return int64(msg.Fanout) }

// msgTxid derives a leader message's transaction id from its queue
// sequence number: the static interleave, or the stride interleave with
// the stamped base on a dynamic deployment (the follower computed exactly
// the same value when it committed, so both sides agree without a map
// read).
func (d *Deployment) msgTxid(seqNo int64, msg leaderMsg) int64 {
	if d.dyn == nil {
		return shardTxid(seqNo, msg.Shard, d.NumShards())
	}
	if msg.Op == OpDeregister {
		return seqNo*shardmap.Stride + int64(msg.Shard)
	}
	return (seqNo+dynBase(msg))*shardmap.Stride + int64(msg.Shard)
}
