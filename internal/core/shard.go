package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// The sharded write path partitions the leader pipeline by znode subtree:
// instead of one global ordered queue feeding one serialized leader
// instance, the deployment provisions WriteShards queues, each with its own
// single-concurrency leader trigger and its own epoch counters. Requests
// are routed by the top-level path segment, so a parent and all of its
// descendants always share a shard and the per-shard total order is enough
// for ZooKeeper's node-local invariants (sequential-node counters,
// not-empty checks, per-node mzxid monotonicity). Only the tree root is
// shared between shards; its user-store read-modify-write cycles are
// serialized by a system-store timed lock (rootUpdateLockKey), and
// session deregistration uses a system-store barrier item so the ack
// orders behind ephemeral deletions on every shard. With WriteShards = 1
// (the default) the pipeline collapses to the paper's single
// totally-ordered queue.

// ShardOf maps a znode path to its write shard among n shards: the FNV
// hash of the top-level path segment modulo n. The root maps to shard 0.
// The client library and the follower compute it independently, like
// WatchID, so routing never needs a storage round trip.
func ShardOf(path string, n int) int {
	if n <= 1 {
		return 0
	}
	seg := topSegment(path)
	if seg == "" {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(seg))
	return int(h.Sum32() % uint32(n))
}

// topSegment returns the first path segment ("" for the root).
func topSegment(path string) string {
	if len(path) < 2 || path[0] != '/' {
		return ""
	}
	rest := path[1:]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// shardTxid interleaves per-shard queue sequence numbers into globally
// unique transaction ids: txid = seqNo*n + shard. Within a shard txids
// stay strictly increasing (the property every per-node invariant relies
// on), and with n = 1 the txid is exactly the queue sequence number, as in
// the unsharded paper design.
func shardTxid(seqNo int64, shard, n int) int64 {
	return seqNo*int64(n) + int64(shard)
}

// leaderQueueName names a shard's ordered queue; the single-shard
// deployment keeps the paper's original "leader" queue name.
func leaderQueueName(shard, n int) string {
	if n == 1 {
		return "leader"
	}
	return fmt.Sprintf("leader-%d", shard)
}
