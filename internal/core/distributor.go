package core

// The batching distributor (Config.BatchWrites) restructures the leader's
// update loop around batch-scoped state. Algorithm 2 stays intact per
// message — commit verification (➊/➋), watch claiming, and the pending
// pop (➎) run operation by operation so pipelined transactions on one
// node still see the correct pending heads — but the distribution (➌)
// moves to the batch level: within one queue batch, writes to the same
// node fold into the final state (one user-store write per region,
// stamped with the batch's epoch union and the path's newest txid),
// creates and deletes coalesce into one parent child-list
// read-modify-write per parent per batch, and the regional caches
// receive one multi-path invalidation record instead of one per message.
//
// Every per-operation guarantee survives the restructuring:
//
//   - Each client receives its own Stat carrying its own txid/mzxid,
//     computed during that message's commit phase before later writes
//     fold over it (no final-stat leakage).
//   - Watch ids enter the epoch counters during the commit phase, before
//     any of the batch's values become readable, so reads of the new
//     state always hold for undelivered notifications (Z4) — the same
//     pre-fire ordering the multi-shard pipeline uses. Deliveries launch
//     after the flush, each payload carrying its own operation's txid.
//   - Client notifications go out only after the flush: a response in
//     hand implies the write is readable (read-your-writes), exactly as
//     in the per-message path, and deregistration acks still order
//     behind every ephemeral deletion's distribution.
//   - Invalidations publish before any of the batch's writes land, so a
//     racing read of a pre-batch value can never re-fill a cache above
//     the overwrite (the cache tier's standing ordering argument).

import (
	"slices"
	"sync"

	"faaskeeper/internal/cache"
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// opResult is one message's buffered commit-phase outcome, completed
// (notify, watch launch, dereg ack) after the batch flush.
type opResult struct {
	msg   leaderMsg
	txid  int64
	code  Code
	stat  znode.Stat
	fired []firedWatch
	dereg bool
	drop  bool // stranded by a reshard: the follower owns the retry, stay silent
}

// nodeFold is the final folded user-store state of one touched node.
type nodeFold struct {
	node *znode.Node // object to write; nil when the final op deleted it
	del  bool
	txid int64 // newest txid folded into this path (invalidation floor)
}

// parentFold coalesces a batch's child-list splices on one parent.
type parentFold struct {
	present  map[string]bool // child name -> final presence, in op order
	names    []string        // first-touch order, for deterministic splicing
	cversion int32           // max over the folded operations
	pzxid    int64           // max txid over the folded operations
	consumed bool            // merged into a node write or the shared root
}

// batchFold accumulates the net effect of one queue batch on the user
// stores. Operations fold in txid order (the queue batch's order), so
// "last write wins" per node and the child presence map reflects the
// final create/delete outcome even for create→delete→create chains.
type batchFold struct {
	order       []string // node paths in first-touch order
	nodes       map[string]*nodeFold
	parentOrder []string
	parents     map[string]*parentFold
}

// batchFoldPool recycles the per-flush fold's maps and slices: every
// queue batch allocates one, and the bucket arrays dominate its cost.
var batchFoldPool = sync.Pool{New: func() any {
	return &batchFold{nodes: map[string]*nodeFold{}, parents: map[string]*parentFold{}}
}}

func newBatchFold() *batchFold { return batchFoldPool.Get().(*batchFold) }

// release returns the fold to the pool. Callers invoke it only once the
// flush holds no further references — after distributeFold's regional
// goroutines have all joined and any post-distribution lookups
// (transaction pending pops) are done. The entry structs are dropped,
// not recycled: node pointers were handed to the stores.
func (f *batchFold) release() {
	clear(f.nodes)
	clear(f.parents)
	f.order = f.order[:0]
	f.parentOrder = f.parentOrder[:0]
	batchFoldPool.Put(f)
}

// invSlicePool recycles the per-region invalidation record assembled on
// every batch flush; InvalidateBatch does not retain the slice (apply
// copies the epoch stamp it keeps).
var invSlicePool = sync.Pool{New: func() any { return new([]cache.Invalidation) }}

// parentFoldPool recycles the scratch fold the per-message pipeline's
// parent read-modify-write builds for every create/delete (spliceInto
// does not retain it). Folds owned by a batchFold are NOT pooled — they
// are dropped wholesale by batchFold.release.
var parentFoldPool = sync.Pool{New: func() any { return &parentFold{present: map[string]bool{}} }}

func newParentFold() *parentFold { return parentFoldPool.Get().(*parentFold) }

func (pf *parentFold) release() {
	clear(pf.present)
	pf.names = pf.names[:0]
	pf.cversion, pf.pzxid, pf.consumed = 0, 0, false
	parentFoldPool.Put(pf)
}

// foldWrite records path's newest object; an earlier write or tombstone
// of the same path in this batch is superseded.
func (f *batchFold) foldWrite(path string, n *znode.Node, txid int64) {
	nf, ok := f.nodes[path]
	if !ok {
		nf = &nodeFold{}
		f.nodes[path] = nf
		f.order = append(f.order, path)
	}
	nf.node, nf.del, nf.txid = n, false, txid
}

// foldDelete records that path's final state in this batch is deleted.
func (f *batchFold) foldDelete(path string, txid int64) {
	nf, ok := f.nodes[path]
	if !ok {
		nf = &nodeFold{}
		f.nodes[path] = nf
		f.order = append(f.order, path)
	}
	nf.node, nf.del, nf.txid = nil, true, txid
}

// foldParent applies one create/delete's child splice to the parent's
// coalesced state.
func (f *batchFold) foldParent(parent, childAdd, childDel string, cversion int32, txid int64) {
	pf, ok := f.parents[parent]
	if !ok {
		pf = &parentFold{present: map[string]bool{}}
		f.parents[parent] = pf
		f.parentOrder = append(f.parentOrder, parent)
	}
	if childAdd != "" {
		if _, seen := pf.present[childAdd]; !seen {
			pf.names = append(pf.names, childAdd)
		}
		pf.present[childAdd] = true
	}
	if childDel != "" {
		if _, seen := pf.present[childDel]; !seen {
			pf.names = append(pf.names, childDel)
		}
		pf.present[childDel] = false
	}
	if cversion > pf.cversion {
		pf.cversion = cversion
	}
	if txid > pf.pzxid {
		pf.pzxid = txid
	}
}

// spliceInto applies a parent fold to a node object: the final child
// presences (idempotently — the object may already reflect some of them)
// and the raised stamps, mirroring applyParentRMW's only-raise rule.
func spliceInto(n *znode.Node, pf *parentFold) {
	for _, name := range pf.names {
		if pf.present[name] {
			if !slices.Contains(n.Children, name) {
				n.Children = append(n.Children, name)
			}
		} else {
			n.Children = removeString(n.Children, name)
		}
	}
	if pf.cversion > n.Stat.Cversion {
		n.Stat.Cversion = pf.cversion
	}
	if pf.pzxid > n.Stat.Pzxid {
		n.Stat.Pzxid = pf.pzxid
	}
	n.Stat.NumChildren = int32(len(n.Children))
}

// leaderProcessBatched is the BatchWrites pipeline: commit each message,
// fold its effect, flush the fold, then complete the buffered operations
// in order. MaxBatch > 0 chunks one invocation batch into several flushes.
func (d *Deployment) leaderProcessBatched(ctx cloud.Ctx, msgs []decodedMsg, epochs map[cloud.Region][]int64) []watchCompletion {
	// Tombstone-GC lookahead: a delete followed in the same invocation by
	// another operation on the same path (create→delete→create) must not
	// collect the node item — the later operation's follower commit may
	// not have appended to the pending list yet, and collecting the item
	// would strand that commit. The per-message pipeline closes the same
	// window with its distribution latency; the batch knows outright.
	later := map[string]int{}
	for _, dm := range msgs {
		switch dm.msg.Op {
		case OpDeregister, OpReshardFence:
		case OpMulti, OpTxnCommit:
			// Transaction targets count toward the lookahead too, so a
			// batched delete before them never collects a tombstone the
			// transaction's commit still needs. The transaction itself
			// never decrements — at worst a tombstone lingers until the
			// next delete's collection, the lock-guard precedent.
			if tm, err := decodeTxnMsgWith(d.Cfg.codec, dm.msg.NodeBlob); err == nil {
				for _, p := range txnTargets(tm.Ops) {
					later[p]++
				}
			}
		default:
			later[dm.msg.Path]++
		}
	}
	var completions []watchCompletion
	var run []decodedMsg
	flushRun := func() {
		if len(run) == 0 {
			return
		}
		chunk := d.Cfg.MaxBatch
		if chunk <= 0 || chunk > len(run) {
			chunk = len(run)
		}
		for start := 0; start < len(run); start += chunk {
			end := min(start+chunk, len(run))
			completions = append(completions, d.flushBatch(ctx, run[start:end], later, epochs)...)
		}
		run = nil
	}
	for _, dm := range msgs {
		// Transaction messages are fold barriers: their distribution has
		// its own atomicity protocol, so the accumulated run flushes
		// first and the message runs through the per-message pipeline.
		if dm.msg.Op == OpMulti || dm.msg.Op == OpTxnCommit {
			flushRun()
			completions = append(completions, d.leaderProcess(d.billMsg(ctx, dm.msg), dm.msg, dm.txid, epochs)...)
			continue
		}
		// A reshard fence is a fold barrier too: the ack promises every
		// earlier message has been distributed, so the run must flush
		// before it is written.
		if dm.msg.Op == OpReshardFence {
			flushRun()
			d.ackFence(d.billSys(ctx, dm.msg.Shard), dm.msg)
			continue
		}
		run = append(run, dm)
	}
	flushRun()
	return completions
}

// flushBatch runs the commit phase over one chunk, distributes the folded
// state, and completes every buffered operation in queue order.
func (d *Deployment) flushBatch(ctx cloud.Ctx, msgs []decodedMsg, later map[string]int, epochs map[cloud.Region][]int64) []watchCompletion {
	tBatch := d.K.Now()
	fold := newBatchFold()
	// The batch-level distribution serves the whole chunk at once: its
	// charges amortize across the chunk's traces (untraced members keep
	// their share in the system bucket). Commit phases stay per-message.
	dctx := ctx
	if d.costOn() {
		traces := make([]int64, 0, len(msgs))
		for _, dm := range msgs {
			traces = append(traces, costMsgTrace(dm.msg))
		}
		dctx = d.billFold(ctx, traces, msgs[0].msg.Shard, "")
	}
	results := make([]opResult, 0, len(msgs))
	for _, dm := range msgs {
		t0 := d.K.Now()
		results = append(results, d.commitOne(d.billMsg(ctx, dm.msg), dm, fold, later, epochs))
		d.recordPhase("leader.commit", d.K.Now()-t0)
	}

	// Every committed message's chain enters the flush stage together: the
	// batch-level distribution serves all of them at once (its region legs
	// are recorded as trace-0 pipeline spans inside distributeFold).
	for _, r := range results {
		if !r.drop && !r.dereg && r.code == CodeOK {
			d.stageMsg(r.msg, obs.StageFlush)
		}
	}
	t0 := d.K.Now()
	d.distributeFold(dctx, fold, epochs, false)
	d.recordPhase("leader.update", d.K.Now()-t0)
	fold.release()

	var completions []watchCompletion
	for _, r := range results {
		if r.drop {
			continue
		}
		if r.dereg {
			// Processed only after the flush: the ack's shard-FIFO position
			// put it behind the session's ephemeral deletions, and the
			// flush just distributed them.
			if d.deregAckComplete(d.billMsg(ctx, r.msg), r.msg) {
				d.notifyResult(r.msg, r.txid, CodeOK, znode.Stat{})
			}
			continue
		}
		if d.fanoutOn() && r.code == CodeOK {
			// The batch's writes are readable: release this operation's
			// parked firings at the fan-out nodes.
			d.fanoutRelease(ctx, r.txid)
		}
		for _, fw := range r.fired {
			payload := watchPayload{
				WatchID: fw.wid, Event: fw.event, Path: fw.path, Txid: r.txid, Sessions: fw.sessions,
			}
			sp := d.tspan(d.msgTrace(r.msg), obs.SpanWatchDeliver, fw.path, r.msg.Shard, "")
			wctx := d.billSpan(ctx, costMsgTrace(r.msg), sp, r.msg.Shard, "")
			fut := d.Platform.InvokeAsync(wctx, FnWatch, d.encodeWatchOwned(payload))
			completions = append(completions, watchCompletion{wid: fw.wid, fut: fut, span: sp})
		}
		tn := d.K.Now()
		d.notifyResult(r.msg, r.txid, r.code, r.stat)
		d.recordPhase("leader.notify", d.K.Now()-tn)
	}
	// One total per flush, the container of every sub-phase above (the
	// per-message pipeline records one total per message instead; the
	// batched commit spans are sampled separately as leader.commit).
	d.recordPhase("leader.total", d.K.Now()-tBatch)
	return completions
}

// commitOne is the per-message commit phase: Algorithm 2 minus the
// distribution. It verifies the commit, claims watches and enters their
// ids into the epoch counters (pre-distribution, the multi-shard
// pre-fire ordering), folds the operation's effect, and pops the pending
// transaction so the next operation on the same node sees the correct
// head. The Stat is captured here, from this operation's own txid and
// version, before any later operation folds over the node.
func (d *Deployment) commitOne(ctx cloud.Ctx, dm decodedMsg, fold *batchFold, later map[string]int, epochs map[cloud.Region][]int64) opResult {
	msg, txid := dm.msg, dm.txid
	if msg.Op == OpDeregister {
		return opResult{msg: msg, txid: txid, dereg: true}
	}
	later[msg.Path]--
	d.stageMsg(msg, obs.StageCommit)
	t0 := d.K.Now()
	node, committed := d.awaitCommit(ctx, msg, txid)
	d.recordPhase("leader.get", d.K.Now()-t0)
	if !committed {
		if d.staleDynMsg(ctx, msg, dynGen(msg)) {
			// Same ownership resolution as the per-message pipeline: a
			// crashed follower's fenced message has no retry owner, so if
			// its orphaned locks are still in place the leader reclaims
			// them and answers instead of staying silent.
			if d.reclaimFencedMsg(ctx, msg) {
				return opResult{msg: msg, txid: txid, code: CodeSystemError}
			}
			return opResult{msg: msg, txid: txid, code: CodeSystemError, drop: true}
		}
		return opResult{msg: msg, txid: txid, code: CodeSystemError}
	}

	t0 = d.K.Now()
	var fired []firedWatch
	if d.fanoutOn() {
		// One record per (path, txid) to the fan-out nodes; released
		// after the batch's distribution (see flushBatch).
		d.fanoutPublish(ctx, msg, txid, epochs)
	} else {
		fired = d.queryWatches(ctx, msg)
		d.appendEpochs(ctx, fired, msg.Shard, epochs)
	}
	d.recordPhase("leader.watchquery", d.K.Now()-t0)

	var stat znode.Stat
	switch {
	case msg.Op == OpDelete:
		fold.foldDelete(msg.Path, txid)
		if msg.ParentPath != "" {
			fold.foldParent(msg.ParentPath, msg.ChildAdd, msg.ChildDel, msg.Cversion, txid)
		}
	default:
		if n := d.buildUserNode(msg, txid, node); n != nil {
			stat = n.Stat
			fold.foldWrite(msg.Path, n, txid)
			if msg.ParentPath != "" {
				fold.foldParent(msg.ParentPath, msg.ChildAdd, msg.ChildDel, msg.Cversion, txid)
			}
		}
	}

	d.popPending(ctx, msg, txid, later[msg.Path] == 0)
	return opResult{msg: msg, txid: txid, code: CodeOK, stat: stat, fired: fired}
}

// distributeFold is the batch-level ➌: one coalesced invalidation record,
// the final state of every touched node, and one read-modify-write per
// parent, per region in parallel. atomicApply is the transaction commit
// point (package txn): node writes go through the store's AtomicApplier
// when it has one, becoming readable at a single instant; stores without
// multi-key transactions (the object store) fall back to writing in fold
// order, so readers observe a prefix of the transaction, never an
// arbitrary mix.
func (d *Deployment) distributeFold(ctx cloud.Ctx, fold *batchFold, epochs map[cloud.Region][]int64, atomicApply bool) {
	if len(fold.order) == 0 && len(fold.parentOrder) == 0 {
		return
	}

	// Merge child-list splices into node objects rewritten in the same
	// batch: a per-parent RMW would read the store's pre-batch object and
	// either the splice or the data write would be lost. A parent deleted
	// in this batch drops its splices (its child list is moot). Shared
	// parents — the root of a sharded deployment, a split subtree's root
	// — are peeled off instead: their RMW must run under the cross-shard
	// lock.
	sharedPFs := map[string]*parentFold{}
	var sharedOrder []string
	for _, p := range fold.parentOrder {
		pf := fold.parents[p]
		if d.isSharedPath(p) {
			sharedPFs[p] = pf
			sharedOrder = append(sharedOrder, p)
			pf.consumed = true
			continue
		}
		nf, ok := fold.nodes[p]
		if !ok {
			continue
		}
		pf.consumed = true
		if nf.del {
			continue
		}
		spliceInto(nf.node, pf)
		if pf.pzxid > nf.txid {
			nf.txid = pf.pzxid
		}
	}

	// Cross-shard shared-path work — a data write to a shared object or a
	// create/delete splice under it — is serialized under the path's
	// shared lock, held once across the whole flush (the unbatched path
	// holds it across the corresponding per-op distribution for the same
	// reason: an interleaved RMW from another shard would lose children).
	// Locks are taken in sorted path order: two flushes on different
	// shards touching the same shared paths then never deadlock.
	lockSet := map[string]bool{}
	for _, p := range sharedOrder {
		lockSet[p] = true
	}
	for _, p := range fold.order {
		if nf := fold.nodes[p]; !nf.del && d.isSharedPath(p) {
			lockSet[p] = true
		}
	}
	lockPaths := make([]string, 0, len(lockSet))
	for p := range lockSet {
		lockPaths = append(lockPaths, p)
	}
	slices.Sort(lockPaths)
	for _, p := range lockPaths {
		lock := d.acquireSharedLock(ctx, p)
		defer func(l fksync.Lock) { _ = d.Locks.Release(ctx, l) }(lock)
	}
	for _, p := range fold.order {
		nf := fold.nodes[p]
		if nf.del || !d.isSharedPath(p) {
			continue
		}
		d.refreshSharedFromSystem(ctx, p, nf.node)
	}

	wg := sim.NewWaitGroup(d.K)
	for _, s := range d.Stores {
		s := s
		wg.Add(1)
		d.K.Go("leader-update-"+string(s.Region()), func() {
			defer wg.Done()
			stamp := epochs[s.Region()]
			// One coalesced record per touched path, published before any
			// of the batch's writes become readable in this region.
			if rc := d.CacheFor(s.Region()); rc != nil {
				// Batch legs serve many requests at once: recorded as
				// trace-0 pipeline spans rather than per-request children.
				tsp := d.tspan(0, obs.SpanCacheInval, "", -1, string(s.Region()))
				sp := invSlicePool.Get().(*[]cache.Invalidation)
				invs := fold.appendInvalidations((*sp)[:0], sharedPFs, stamp, d.cacheMapEpoch())
				rc.InvalidateBatch(ctx, invs)
				*sp = invs[:0]
				invSlicePool.Put(sp)
				d.spanEnd(tsp)
			}
			tsp := d.tspan(0, obs.SpanStoreWrite, "", -1, string(s.Region()))
			defer d.spanEnd(tsp)
			if aa, atomic := s.(AtomicApplier); atomicApply && atomic {
				writes := make([]BatchWrite, 0, len(fold.order))
				for _, p := range fold.order {
					nf := fold.nodes[p]
					if nf.del {
						writes = append(writes, BatchWrite{Path: p})
					} else {
						writes = append(writes, BatchWrite{Path: p, Node: nf.node, Epoch: stamp})
					}
				}
				_ = aa.ApplyBatch(ctx, writes)
			} else {
				for _, p := range fold.order {
					nf := fold.nodes[p]
					if nf.del {
						_ = s.Delete(ctx, p)
					} else {
						_ = s.Write(ctx, nf.node, stamp)
					}
				}
			}
			for _, p := range fold.parentOrder {
				pf := fold.parents[p]
				if pf.consumed {
					continue
				}
				d.applyParentFold(ctx, s, p, pf, stamp)
			}
		})
	}
	wg.Wait()

	// The shared parents' coalesced splices run after the regional writes,
	// still under the shared locks taken above (mirroring
	// updateSharedParent's position in the per-op pipeline).
	for _, p := range sharedOrder {
		p, pf := p, sharedPFs[p]
		rwg := sim.NewWaitGroup(d.K)
		for _, s := range d.Stores {
			s := s
			rwg.Add(1)
			d.K.Go("leader-root-"+string(s.Region()), func() {
				defer rwg.Done()
				d.applyParentFold(ctx, s, p, pf, epochs[s.Region()])
			})
		}
		rwg.Wait()
	}
}

// appendInvalidations assembles the batch's coalesced multi-path
// invalidation record for one region into invs (pooled scratch): each
// touched path once, at its newest folded txid. Shared parents' splices
// (flushed after the regional writes) are included so their floors are
// raised before their RMWs land too.
func (f *batchFold) appendInvalidations(invs []cache.Invalidation, shared map[string]*parentFold, stamp []int64, mapEpoch int64) []cache.Invalidation {
	for _, p := range f.order {
		invs = append(invs, cache.Invalidation{Path: p, Mzxid: f.nodes[p].txid, Epoch: stamp, MapEpoch: mapEpoch})
	}
	for _, p := range f.parentOrder {
		pf := f.parents[p]
		if _, isShared := shared[p]; pf.consumed && !isShared {
			continue // folded into the node write above
		}
		invs = append(invs, cache.Invalidation{Path: p, Mzxid: pf.pzxid, Epoch: stamp, MapEpoch: mapEpoch})
	}
	return invs
}

// applyParentFold is the batch's one read-modify-write per parent and
// region: read, apply the coalesced splices, raise the stamps, write
// back. The invalidation for this path was already published with the
// batch record.
func (d *Deployment) applyParentFold(ctx cloud.Ctx, s UserStore, path string, pf *parentFold, stamp []int64) {
	parent, _, err := s.Read(ctx, path)
	if err != nil {
		return
	}
	spliceInto(parent, pf)
	_ = s.Write(ctx, parent, stamp)
}
