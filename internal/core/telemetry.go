package core

// Telemetry glue: the handful of helpers the pipeline stages call to move
// a request's causal span chain forward (package obs). Every helper
// early-returns before touching the tracer — or even minting a trace id —
// when telemetry is off, so the instrumentation points cost nothing on the
// default configuration.

// traceOn reports whether span collection is active.
func (d *Deployment) traceOn() bool {
	return d.Obs != nil && d.Obs.Tracer.Enabled()
}

// tracedReq reports whether a request participates in causal tracing.
// Deregistrations are excluded: their fan-out acks and Seq:-1 ephemeral
// deletes don't follow the one-request-one-span-chain shape.
func tracedReq(req Request) bool {
	return req.Seq > 0 && req.Op != OpDeregister
}

// tracedMsg is tracedReq for the leader hop. OpTxnCommit is additionally
// excluded from *stage* transitions — the cross-shard commit fans one
// request into per-shard messages, and its stages are advanced by the
// coordinating follower instead — and OpReshardFence carries no request.
func tracedMsg(msg leaderMsg) bool {
	return msg.Seq > 0 && msg.Op != OpDeregister &&
		msg.Op != OpTxnCommit && msg.Op != OpReshardFence
}

// stageReq advances the request's span chain to the named stage.
func (d *Deployment) stageReq(req Request, stage string) {
	if !d.traceOn() || !tracedReq(req) {
		return
	}
	d.Obs.Tracer.Stage(req.trace(), stage)
}

// stageMsg advances the originating request's span chain from a leader hop.
func (d *Deployment) stageMsg(msg leaderMsg, stage string) {
	if !d.traceOn() || !tracedMsg(msg) {
		return
	}
	d.Obs.Tracer.Stage(msg.trace(), stage)
}

// finishReq closes the request's span chain (terminal response point).
func (d *Deployment) finishReq(req Request) {
	if !d.traceOn() || !tracedReq(req) {
		return
	}
	d.Obs.Tracer.Finish(req.trace())
}

// msgTrace returns the trace id a leader-side child span should attach to,
// or 0 when the message is untraced. Unlike tracedMsg it includes
// OpTxnCommit: the commit message's Session/Seq are the originating
// multi()'s, so its store writes and watch deliveries attach to that tree.
func (d *Deployment) msgTrace(msg leaderMsg) int64 {
	if !d.traceOn() || msg.Seq <= 0 ||
		msg.Op == OpDeregister || msg.Op == OpReshardFence {
		return 0
	}
	return msg.trace()
}

// reqSpan opens a child span under the request's root (0 when untraced).
func (d *Deployment) reqSpan(req Request, name string, shard int) int64 {
	if !d.traceOn() || !tracedReq(req) {
		return 0
	}
	return d.Obs.Tracer.Start(req.trace(), name, req.Path, shard, "")
}

// tspan opens a child span under an explicit trace id (0 is the shared
// pipeline track: batched folds that serve many requests at once).
func (d *Deployment) tspan(trace int64, name, path string, shard int, region string) int64 {
	if !d.traceOn() {
		return 0
	}
	return d.Obs.Tracer.Start(trace, name, path, shard, region)
}

// spanEnd closes a child span opened by reqSpan/tspan (no-op for id 0).
func (d *Deployment) spanEnd(id int64) {
	if id == 0 || !d.traceOn() {
		return
	}
	d.Obs.Tracer.End(id)
}
