package core

// Live resharding of the leader write pipeline (Config.DynamicShards).
//
// A reshard moves a set of paths — the segments of reassigned
// consistent-hash slots, or a whole hot subtree being split at depth 2 —
// from source shards to destination shards while the pipeline keeps
// serving everything else. The protocol rides the deployment's existing
// machinery instead of inventing new synchronization:
//
//	gate    write the map with the Migration set and the affected shards'
//	        generations bumped. Writers to migrating paths wait for the
//	        flip (awaitRoutable); every other writer keeps flowing, but
//	        its conditional commit now pins the routed shard's generation
//	        (dynGuard) — a commit that routed with the pre-gate map fails
//	        its guard and retries, exactly like a stale-epoch read retries
//	        behind the Z4 gate. Because every successful commit proves the
//	        gate was not yet set when it landed, every committed write to
//	        a migrating path sits AHEAD of the fence in its source queue.
//
//	drain   transactions quiesce first (their cross-shard commit messages
//	        are ordered by intents, not queues, so the engine waits for
//	        the durable record store to empty; new multis wait at the
//	        gate), then one OpReshardFence message is pushed into each
//	        source shard's queue. The shard's serialized leader acks the
//	        fence through a system-store barrier item — the
//	        deregistration-ack pattern — and FIFO order guarantees every
//	        committed migrating write has been fully distributed first.
//
//	flip    the new map is written with the epoch bumped, the gate
//	        cleared, the generations bumped again, and every destination
//	        shard's SeqBase raised past the largest txid any source could
//	        have minted, so a migrated path's mzxid never regresses.
//	        Readers never blocked at any point; the destination's leader
//	        only ever sees writes committed against the new map.
//
// Uncommitted messages stranded in a source queue (their follower's
// commit failed the generation guard and re-routed) are recognized by the
// leader — not committed AND stamped with a superseded generation — and
// dropped silently: the follower that owns the request is already
// retrying it, so answering would race the retry's response.

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/wire"
)

// Reshard errors.
var (
	ErrNotDynamic  = errors.New("core: resharding requires Config.DynamicShards")
	ErrReshardBusy = errors.New("core: reshard transition did not quiesce")
)

// errStaleRoute marks a follower commit rejected by the map-generation
// guard: the operation must re-route against the refreshed map.
var errStaleRoute = errors.New("core: write routed with a stale shard map")

const (
	// reshardLockKey serializes reshard transitions; the engine uses a
	// long-lease lock manager because a drain can outlive the node-lock
	// lease.
	reshardLockKey = "reshardlock"
	reshardSeqKey  = "reshardseq"
	attrReshardSeq = "n"

	fenceKeyPrefix = "reshardfence:"
)

func fenceKey(id int64) string    { return fenceKeyPrefix + strconv.FormatInt(id, 10) }
func fenceShardAttr(s int) string { return "s" + strconv.Itoa(s) }
func (d *Deployment) ctlCtx() cloud.Ctx {
	return d.billSys(cloud.ClientCtx(d.Cfg.Profile.Home), 0)
}

// dynGuard returns the extra transaction leg pinning the routed shard's
// map generation on a follower commit (nil on static deployments): the
// commit succeeds only if the shard's routing has not changed since the
// message was routed and pushed.
func (d *Deployment) dynGuard(shard int, gen int64) []kv.TxOp {
	if d.dyn == nil {
		return nil
	}
	return []kv.TxOp{{Key: d.dyn.store.Key(), Cond: shardmap.GenCond(shard, gen)}}
}

// dynGuardMV is dynGuard against an explicit map snapshot (multi-op plans
// pin the snapshot they routed with).
func (d *Deployment) dynGuardMV(mv *shardmap.Map, shard int) []kv.TxOp {
	if mv == nil {
		return nil
	}
	return []kv.TxOp{{Key: d.dyn.store.Key(), Cond: shardmap.GenCond(shard, mv.GenOf(shard))}}
}

// staleRoutedCommit classifies a failed guarded commit: true when the
// routed shard's generation moved (the write must re-route and retry),
// false when the timed-lock lease was genuinely lost.
func (d *Deployment) staleRoutedCommit(ctx cloud.Ctx, shard int, gen int64) bool {
	if d.dyn == nil {
		return false
	}
	return d.refreshMap(ctx).GenOf(shard) != gen
}

// staleDynMsg recognizes an uncommitted leader message stranded by a
// reshard: its stamped generation is superseded, so its follower already
// observed the guard failure and owns the retry — the leader must drop it
// without answering (a failure response would race the retry's response
// for the same client sequence number).
func (d *Deployment) staleDynMsg(ctx cloud.Ctx, msg leaderMsg, gen int64) bool {
	if d.dyn == nil || msg.Op == OpDeregister {
		return false
	}
	return d.refreshMap(ctx).GenOf(msg.Shard) != gen
}

// ackFence records a source shard's fence in the barrier item; the
// serialized leader calls it only after every earlier message in the
// queue has been fully processed and distributed.
func (d *Deployment) ackFence(ctx cloud.Ctx, msg leaderMsg) {
	_, _ = d.System.Update(ctx, fenceKey(msg.DeregID),
		[]kv.Update{kv.Set{Name: fenceShardAttr(msg.Shard), V: kv.N(1)}}, nil)
}

// GrowShards grows the deployment to `queues` shard queues, moving
// ~Slots/queues consistent-hash slots per new queue through the live
// reshard protocol. It must be called from inside a sim process.
func (d *Deployment) GrowShards(queues int) error {
	return d.reshard(func(cur *shardmap.Map) (*shardmap.Map, error) { return cur.PlanGrow(queues) })
}

// ShrinkShards retires trailing shard queues down to `queues` (not below
// the base modulus), reverting their slots to the pre-move owners. The
// queues stay provisioned but become idle.
func (d *Deployment) ShrinkShards(queues int) error {
	return d.reshard(func(cur *shardmap.Map) (*shardmap.Map, error) { return cur.PlanShrink(queues) })
}

// SplitSubtree re-routes a hot top-level subtree over `ways` new shard
// queues, hashing the second path segment so parents and children below
// the subtree root stay colocated. The subtree root itself becomes a
// shared path maintained under a cross-shard lock, like the tree root.
func (d *Deployment) SplitSubtree(prefix string, ways int) error {
	return d.reshard(func(cur *shardmap.Map) (*shardmap.Map, error) { return cur.PlanSplit(prefix, ways) })
}

// MergeSubtree folds a split subtree back onto its pre-split route.
func (d *Deployment) MergeSubtree(prefix string) error {
	return d.reshard(func(cur *shardmap.Map) (*shardmap.Map, error) { return cur.PlanMerge(prefix) })
}

// reshard drives one planned transition through gate → drain → flip.
func (d *Deployment) reshard(plan func(*shardmap.Map) (*shardmap.Map, error)) error {
	if d.dyn == nil {
		return ErrNotDynamic
	}
	ctx := d.ctlCtx()
	// Transitions serialize on a dedicated long-lease timed lock: a drain
	// can take longer than the node-lock lease, and two engines
	// interleaving their gates would tangle the generation bookkeeping.
	locks := fksync.NewLockManager(d.Env, d.System, 5*time.Minute)
	lock, _, err := locks.AcquireWait(ctx, reshardLockKey, 0)
	if err != nil {
		return err
	}
	defer func() { _ = locks.Release(ctx, lock) }()

	cur, err := d.dyn.store.Load(ctx)
	if err != nil {
		return err
	}
	next, err := plan(cur)
	if err != nil || next == nil {
		return err
	}

	// Provision destination queues before any routing can target them.
	for len(d.LeaderQs) < next.Queues {
		d.addShardQueue()
	}

	if next.Mig == nil {
		// Nothing migrates (e.g. retiring already-empty queues): flip
		// directly.
		next.Epoch = cur.Epoch + 1
		if err := d.dyn.store.Write(ctx, next); err != nil {
			return err
		}
		d.dyn.cur = next
		return nil
	}
	mig := next.Mig

	// Gate: migrating writers wait, affected shards' generations bump.
	gated := cur.Gate(mig)
	if err := d.dyn.store.Write(ctx, gated); err != nil {
		return err
	}
	d.dyn.cur = gated

	abort := func(cause error) error {
		// Clear the gate without changing routing; bump the generations
		// again so any commit stamped with the gate-era generation of an
		// affected shard re-routes against the restored map.
		restored := cur.Clone()
		restored.Gens = gated.Clone().Gens
		restored = restored.Gate(mig)
		restored.Mig = nil
		if werr := d.dyn.store.Write(ctx, restored); werr == nil {
			d.dyn.cur = restored
		}
		return cause
	}

	// Transactions quiesce: their phase-two commit messages are ordered
	// by intents rather than queue position, so none may be in flight
	// when the sources drain. New multis wait at the gate.
	if d.Cfg.EnableTxn {
		quiesced := false
		for attempt := 0; attempt < 2000; attempt++ {
			if d.Txns.Live(ctx) == 0 {
				quiesced = true
				break
			}
			d.K.Sleep(5 * sim.Ms(1))
		}
		if !quiesced {
			return abort(fmt.Errorf("%w: transactions still in flight", ErrReshardBusy))
		}
	}

	// Fence and drain every source shard.
	it, err := d.System.Update(ctx, reshardSeqKey,
		[]kv.Update{kv.Add{Name: attrReshardSeq, Delta: 1}}, nil)
	if err != nil {
		return abort(err)
	}
	fenceID := it[attrReshardSeq].Num
	for _, s := range mig.Sources {
		fence := leaderMsg{Op: OpReshardFence, Shard: s, DeregID: fenceID}
		e := wire.NewEncoder()
		_, err := d.LeaderQs[s].Send(ctx, "reshard", fence.encodeWith(d.Cfg.codec, e))
		e.Release()
		if err != nil {
			return abort(err)
		}
	}
	acked := false
	for attempt := 0; attempt < 4000; attempt++ {
		it, ok := d.System.Get(ctx, fenceKey(fenceID), true)
		if ok {
			all := true
			for _, s := range mig.Sources {
				if it[fenceShardAttr(s)].Num != 1 {
					all = false
					break
				}
			}
			if all {
				acked = true
				break
			}
		}
		d.K.Sleep(sim.Time(min(attempt+1, 5)) * 2 * sim.Ms(1))
	}
	if !acked {
		return abort(fmt.Errorf("%w: source shards did not drain", ErrReshardBusy))
	}
	_ = d.System.Delete(ctx, fenceKey(fenceID), nil)

	// Flip: the largest txid any source could have minted bounds the
	// destinations' SeqBase (the queue's sequence counter is the txid
	// source, so its current value is exactly that bound).
	var bound int64
	for _, s := range mig.Sources {
		b := (d.LeaderQs[s].LastSeqNo()+cur.SeqBase[s])*shardmap.Stride + int64(s)
		if b > bound {
			bound = b
		}
	}
	flip := next.Clone()
	flip.Epoch = cur.Epoch
	flip.Gens = gated.Clone().Gens
	final := flip.Flip(bound)
	if err := d.dyn.store.Write(ctx, final); err != nil {
		return abort(err)
	}
	d.dyn.cur = final
	return nil
}

// autoShardMonitor is the Config.AutoShard policy loop: a control-plane
// process sampling per-shard queue depth (a CloudWatch-style metric). It
// runs for the lifetime of the simulation — drive kernels hosting it with
// RunFor, like deployments with a scheduled heartbeat.
func (d *Deployment) autoShardMonitor() {
	pol := newAutoShardPolicy(d.Cfg.AutoShard, d.reshardEstimateUSD())
	for {
		d.K.Sleep(pol.cfg.Interval)
		m := d.mapView()
		// Publish every shard's sampled depth into the metrics registry
		// (gauges record regardless of Config.Telemetry), then make every
		// decision below from the gauges — the exported telemetry always
		// shows exactly the signal the policy acted on.
		for s := 0; s < len(d.LeaderQs); s++ {
			d.Obs.Metrics.SetGauge(
				obs.Key{Component: "leader", Name: "queue_depth", Shard: s},
				int64(d.LeaderQs[s].Len()))
		}
		depth := func(s int) int64 {
			if s >= len(d.LeaderQs) {
				return 0
			}
			return d.Obs.Metrics.Gauge(obs.Key{Component: "leader", Name: "queue_depth", Shard: s})
		}
		act := pol.step(m, depth)
		// The economic signal the policy weighs, in micro-dollars (the
		// same always-on gauge surface as the depth it derives from).
		for s := 0; s < m.Queues && s < len(d.LeaderQs); s++ {
			d.Obs.Metrics.SetGauge(
				obs.Key{Component: "autoshard", Name: "delay_cost_micro", Shard: s},
				int64(pol.delayPool[s]*1e6))
		}
		if act.splitShard >= 0 {
			s := act.splitShard
			seg, segWrites, shardWrites := d.hottestSegment(m, s)
			switch {
			case seg != "" && 2*segWrites >= shardWrites && m.Queues+pol.cfg.SplitWays <= pol.cfg.MaxShards:
				// One subtree dominates the hot shard: sub-split it so
				// the load spreads without disturbing anything else.
				_ = d.SplitSubtree("/"+seg, pol.cfg.SplitWays)
			case m.Queues < pol.cfg.MaxShards:
				// Diffuse load: add a queue and rebalance slots onto it.
				_ = d.GrowShards(m.Queues + 1)
			}
		}
		if act.merge != "" {
			_ = d.MergeSubtree(act.merge)
		}
		d.dyn.hot = map[string]int64{} // fresh sampling window
	}
}

// hottestSegment returns the top-level segment with the most routed
// writes on one shard in the current sampling window, its count, and the
// shard's total.
func (d *Deployment) hottestSegment(m *shardmap.Map, shard int) (string, int64, int64) {
	var best string
	var bestN, total int64
	for seg, n := range d.dyn.hot {
		if m.ShardFor("/"+seg) != shard {
			continue
		}
		total += n
		if n > bestN {
			best, bestN = seg, n
		}
	}
	return best, bestN, total
}
