package core

// Leader-side integration of the hierarchical watch fan-out tier
// (package watchfanout, behind Config.WatchFanout).
//
// With the tier on, the leader's watch-query step — a system-store
// GetView plus a conditional remove per fired one-shot group, both
// O(watcher-list size) — is replaced by ONE notification record per
// (path, txid) published to each region's fan-out node. The node owns
// registration matching and per-session delivery, and hands back only
// the watch ids that just became in-flight, which the leader appends to
// that region's shard epoch list so the client-side Z4 read gate keeps
// seeing in-flight watches in value stamps. After the change is
// distributed to the user stores, the leader releases the txid: parked
// firings become deliverable, and no session can be notified of a write
// it cannot yet read. Epoch-list *removal* also moves off the leader —
// the node retires a watch id once its last in-flight firing is
// delivered or coalesced into a newer one.

import (
	"errors"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/watchfanout"
)

// ErrFanoutOff rejects persistent/recursive watch registration when the
// fan-out tier is disabled: the legacy system-store watch items have no
// representation for them.
var ErrFanoutOff = errors.New("core: persistent watches require Config.WatchFanout")

// fanoutOn reports whether the fan-out tier owns watch matching and
// delivery for this deployment.
func (d *Deployment) fanoutOn() bool { return len(d.Fanouts) > 0 }

// fanoutChange maps a committed mutation to the one-record publication.
// Reads and control ops publish nothing.
func fanoutChange(msg leaderMsg, txid int64) (watchfanout.Change, bool) {
	var op watchfanout.Op
	switch msg.Op {
	case OpSetData:
		op = watchfanout.OpSet
	case OpCreate:
		op = watchfanout.OpCreate
	case OpDelete:
		op = watchfanout.OpDelete
	default:
		return watchfanout.Change{}, false
	}
	return watchfanout.Change{
		Op: op, Path: msg.Path, Parent: msg.ParentPath, Txid: txid, Shard: msg.Shard,
	}, true
}

// fanoutPublish is the fan-out replacement for queryWatches+appendEpochs
// on the leader hot path: publish the change to every region's node in
// parallel and stamp only the newly in-flight watch ids onto that
// region's shard epoch list (and the batch's in-memory mirror).
func (d *Deployment) fanoutPublish(ctx cloud.Ctx, msg leaderMsg, txid int64, epochs map[cloud.Region][]int64) {
	ch, ok := fanoutChange(msg, txid)
	if !ok {
		return
	}
	sp := d.tspan(d.msgTrace(msg), obs.SpanFanoutPublish, msg.Path, msg.Shard, "")
	pctx := d.billSpan(ctx, costMsgTrace(msg), sp, msg.Shard, "")
	wg := sim.NewWaitGroup(d.K)
	for _, n := range d.Fanouts {
		n := n
		wg.Add(1)
		d.K.Go("fanout-publish", func() {
			defer wg.Done()
			r := n.Region()
			for _, wid := range n.Publish(pctx, ch) {
				if _, err := d.System.Update(pctx, epochKey(r, msg.Shard),
					[]kv.Update{kv.ListAppend{Name: attrEpochList, Vals: []int64{wid}}}, nil); err == nil {
					epochs[r] = append(epochs[r], wid)
				}
			}
		})
	}
	wg.Wait()
	d.spanEnd(sp)
}

// fanoutRelease makes txid's parked firings deliverable on every node.
// Called after the change is readable in the user stores.
func (d *Deployment) fanoutRelease(ctx cloud.Ctx, txid int64) {
	for _, n := range d.Fanouts {
		n.Release(ctx, txid)
	}
}

// fanoutRegister adds a registration on the session's regional node and,
// for persistent kinds, appends the path to the session's durable watch
// set (read back at connect for cache warm-up).
func (d *Deployment) fanoutRegister(ctx cloud.Ctx, path string, wt WatchType, sessionID string, policy watchfanout.Policy, interval time.Duration) (int64, error) {
	n := d.FanoutFor(ctx.Region)
	if n == nil {
		return 0, ErrFanoutOff
	}
	wid := WatchID(path, wt)
	n.Register(ctx, watchfanout.Registration{
		Session:  sessionID,
		Path:     path,
		Kind:     watchfanout.Kind(wt),
		Policy:   policy,
		Interval: sim.Time(interval),
		WID:      wid,
	})
	if wt >= WatchPersistent {
		if _, err := d.System.Update(ctx, watchSetKey(sessionID),
			[]kv.Update{kv.StrListAppend{Name: attrWatchSet, Vals: []string{path}}}, nil); err != nil {
			return 0, err
		}
	}
	return wid, nil
}

// AddWatch registers a ZooKeeper 3.6-style persistent (or persistent
// recursive) watch for the session: data and child events fire without
// re-arming, a recursive registration covers the whole subtree, and the
// regional node paces deliveries by the registration's policy. Requires
// Config.WatchFanout.
func (d *Deployment) AddWatch(ctx cloud.Ctx, path string, recursive bool, policy watchfanout.Policy, interval time.Duration, sessionID string) (int64, error) {
	wt := WatchPersistent
	if recursive {
		wt = WatchPersistentRecursive
	}
	return d.fanoutRegister(ctx, path, wt, sessionID, policy, interval)
}

// SessionWatchSet reads back the session's durable persistent-watch
// paths (one strongly consistent system-store read).
func (d *Deployment) SessionWatchSet(ctx cloud.Ctx, sessionID string) []string {
	it, ok := d.System.GetView(ctx, watchSetKey(sessionID), true)
	if !ok {
		return nil
	}
	return append([]string(nil), it[attrWatchSet].SL...)
}

// FanoutKick is the client Z4 gate's escape hatch (see watchfanout.Kick):
// flush any open coalescing window for wid on the session's regional node
// and return the node's delivery watermark for it.
func (d *Deployment) FanoutKick(ctx cloud.Ctx, wid int64) int64 {
	n := d.FanoutFor(ctx.Region)
	if n == nil {
		return 0
	}
	return n.Kick(ctx, wid)
}
