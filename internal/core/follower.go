package core

import (
	"errors"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

// errInjectedCrash simulates a follower dying between the leader push and
// the system-store commit; the queue trigger retries the batch.
var errInjectedCrash = errors.New("core: injected follower crash")

// followerHandler is Algorithm 1: for every request in the batch, lock the
// touched nodes (①), validate the operation (②), push the validated change
// to the leader queue (③), and commit it to the system store together with
// the lock release (④).
func (d *Deployment) followerHandler(inv *faas.Invocation) error {
	var traces []int64
	if d.costOn() {
		// The sandbox's GB-s charge amortizes over the whole batch; the
		// splitter is installed on exit so it covers exactly the requests
		// that ran (including a partial batch ended by a crash).
		defer func() { inv.Bill = d.invBill(traces, 0) }()
	}
	for _, m := range inv.Messages {
		req, err := decodeRequestWith(d.Cfg.codec, m.Body)
		if err != nil {
			continue // malformed message: drop, never poison the queue
		}
		ctx := inv.Ctx
		if d.costOn() {
			traces = append(traces, costReqTrace(req))
			ctx = d.billReq(ctx, req, 0)
		}
		if err := d.processRequest(ctx, req); err != nil {
			return err
		}
	}
	return nil
}

func (d *Deployment) processRequest(ctx cloud.Ctx, req Request) error {
	// Warm-state deduplication: queue retries redeliver whole batches, and
	// a request that already went through must not be applied twice.
	if req.Seq > 0 && d.lastSeq[req.Session] >= req.Seq {
		return nil
	}
	// Crash before any work: the whole batch is redelivered and replayed
	// from scratch (nothing was locked, pushed, or committed yet).
	if d.crashAt(obs.StageValidate, req.Session, req.Seq) {
		return errInjectedCrash
	}
	d.stageReq(req, obs.StageValidate)
	t0 := d.K.Now()
	var err error
	switch req.Op {
	case OpCreate:
		err = d.retryStale(ctx, req, d.followerCreate)
	case OpSetData:
		err = d.retryStale(ctx, req, d.followerSetData)
	case OpDelete:
		err = d.retryStale(ctx, req, func(ctx cloud.Ctx, r Request) error {
			_, derr := d.followerDelete(ctx, r)
			return derr
		})
	case OpDeregister:
		err = d.followerDeregister(ctx, req)
	case OpMulti:
		err = d.followerMulti(ctx, req)
	default:
		d.respondFailure(req, CodeSystemError)
	}
	d.recordPhase("follower.total", d.K.Now()-t0)
	if err == nil && req.Seq > 0 {
		d.lastSeq[req.Session] = req.Seq
	}
	return err
}

// staleRouteRetries bounds how often one request re-routes after losing a
// race with a reshard (each retry re-reads the map, so one transition
// costs at most one extra round per in-flight write).
const staleRouteRetries = 8

// retryStale runs one write op with dynamic-mode re-routing: a commit
// rejected by the shard-map generation guard re-validates and re-routes
// against the refreshed map, after waiting out any migration gating the
// path. Static deployments call the op directly.
func (d *Deployment) retryStale(ctx cloud.Ctx, req Request, fn func(cloud.Ctx, Request) error) error {
	if d.dyn == nil {
		return fn(ctx, req)
	}
	var err error
	for attempt := 0; attempt <= staleRouteRetries; attempt++ {
		if attempt > 0 {
			// The retry stage spans the migration-gate wait; the chain then
			// re-enters validation against the refreshed map.
			d.stageReq(req, obs.StageRetry)
		}
		d.awaitRoutable(ctx, req.Path)
		if attempt > 0 {
			d.stageReq(req, obs.StageValidate)
		}
		err = fn(ctx, req)
		if !errors.Is(err, errStaleRoute) {
			return err
		}
	}
	d.respondFailure(req, CodeSystemError)
	return nil
}

// respondFailure notifies the client directly from the follower; rejected
// requests never reach the leader (Algorithm 1, ②).
func (d *Deployment) respondFailure(req Request, code Code) {
	d.stageReq(req, obs.StageRespond)
	resp := Response{Session: req.Session, Seq: req.Seq, Code: code, Path: req.Path}
	d.notify(req.Session, resp, resp.wireSize())
}

// lockNode acquires the timed lock and decodes the node's system state.
func (d *Deployment) lockNode(ctx cloud.Ctx, path string) (fksync.Lock, sysNode, error) {
	t0 := d.K.Now()
	lock, item, err := d.Locks.AcquireWait(ctx, nodeKey(path), 0)
	d.recordPhase("follower.lock", d.K.Now()-t0)
	return lock, decodeSysNode(item), err
}

func (d *Deployment) followerSetData(ctx cloud.Ctx, req Request) error {
	if len(req.Data) > d.Cfg.MaxNodeB {
		d.respondFailure(req, CodeTooLarge)
		return nil
	}
	lock, node, err := d.lockNodeClean(ctx, req.Path, 0)
	if err != nil {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	// ② Validate under the lock.
	if !node.Exists {
		d.unlockAll(ctx, lock)
		d.respondFailure(req, CodeNoNode)
		return nil
	}
	if req.Version != -1 && req.Version != node.Version {
		d.unlockAll(ctx, lock)
		d.respondFailure(req, CodeBadVersion)
		return nil
	}
	newVersion := node.Version + 1
	blob := znode.Marshal(node.toZNode(req.Path, req.Data), nil)
	msg := leaderMsg{
		Session: req.Session, Seq: req.Seq, Op: OpSetData, Path: req.Path,
		NodeBlob: blob, LockTs: lock.Timestamp, Version: newVersion,
	}
	// ③ Push to the leader queue; the FIFO sequence number is the txid.
	r, err := d.pushToLeader(ctx, msg)
	if err != nil {
		d.unlockAll(ctx, lock)
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	if d.crashInjected() || d.crashAt(obs.StageLeaderQ, req.Session, req.Seq) {
		return errInjectedCrash
	}
	// ④ Commit and unlock in one conditional write (joined with the
	// shard-map generation guard on a dynamic deployment).
	ups := []kv.Update{
		kv.Set{Name: attrVersion, V: kv.N(int64(newVersion))},
		kv.Set{Name: attrMzxid, V: kv.N(r.txid)},
		kv.ListAppend{Name: attrPending, Vals: []int64{r.txid}},
	}
	t0 := d.K.Now()
	sp := d.reqSpan(req, obs.SpanFollowerCommit, r.shard)
	cctx := d.billSpan(ctx, costReqTrace(req), sp, r.shard, "")
	if guard := d.dynGuard(r.shard, r.gen); guard != nil {
		err = d.Locks.CommitUnlockTxGuard(cctx, []fksync.TxPart{{Lock: lock, Updates: ups}}, guard)
	} else {
		_, err = d.Locks.CommitUnlock(cctx, lock, ups)
	}
	d.spanEnd(sp)
	d.recordPhase("follower.commit", d.K.Now()-t0)
	if err != nil {
		if d.staleRoutedCommit(ctx, r.shard, r.gen) {
			// Fenced by a reshard: nothing was written, the locks are
			// still ours — release them and re-route. The pushed message
			// strands in the old queue; its leader recognizes the
			// superseded generation and drops it silently.
			d.unlockAll(ctx, lock)
			return errStaleRoute
		}
		// Lost the lease: the leader's TryCommit may still save the
		// transaction; nothing more to do here.
		return nil
	}
	return nil
}

func (d *Deployment) followerCreate(ctx cloud.Ctx, req Request) error {
	if len(req.Data) > d.Cfg.MaxNodeB {
		d.respondFailure(req, CodeTooLarge)
		return nil
	}
	if req.Path == znode.Root {
		d.respondFailure(req, CodeNodeExists)
		return nil
	}
	parentPath := znode.Parent(req.Path)
	// Lock parent first, node second: a uniform top-down order prevents
	// deadlocks between concurrent creates/deletes.
	parentLock, parent, err := d.lockNodeClean(ctx, parentPath, 0)
	if err != nil {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	if !parent.Exists {
		d.unlockAll(ctx, parentLock)
		d.respondFailure(req, CodeNoNode)
		return nil
	}
	if parent.EphOwner != "" {
		d.unlockAll(ctx, parentLock)
		d.respondFailure(req, CodeNoChildrenEph)
		return nil
	}
	// Sequential nodes take their suffix from the parent's counter, read
	// under the parent lock.
	finalPath := req.Path
	if req.Flags&znode.FlagSequential != 0 {
		finalPath = znode.SequentialName(req.Path, parent.SeqCtr)
	}
	name := znode.Base(finalPath)

	nodeLock, node, err := d.lockNodeClean(ctx, finalPath, 0)
	if err != nil {
		d.unlockAll(ctx, parentLock)
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	if node.Exists {
		d.unlockAll(ctx, nodeLock, parentLock)
		d.respondFailure(req, CodeNodeExists)
		return nil
	}

	owner := ""
	if req.Flags&znode.FlagEphemeral != 0 {
		owner = req.Session
		// Track ephemeral ownership on the session record (used by the
		// heartbeat eviction path) BEFORE the push: once the message is in
		// the leader queue the node can commit even if this sandbox dies
		// (TryCommit), and an entry recorded only after a successful
		// commit would then be lost forever — leaking the node past its
		// session's death. The early entry is merely stale when the
		// create fails or is replayed: eviction's deletes are idempotent
		// and a live session keeps answering heartbeats, so a stale entry
		// costs one ping. (Replays short-circuit on node-exists above and
		// never reach here twice for a committed create.)
		if _, err := d.System.Update(ctx, sessionKey(req.Session),
			[]kv.Update{kv.StrListAppend{Name: attrSessionEph, Vals: []string{finalPath}}}, nil); err != nil {
			d.unlockAll(ctx, nodeLock, parentLock)
			d.respondFailure(req, CodeSystemError)
			return nil
		}
	}
	newNode := &znode.Node{
		Path: finalPath,
		Data: req.Data,
		Stat: znode.Stat{Ephemeral: owner != "", Owner: owner},
	}
	msg := leaderMsg{
		Session: req.Session, Seq: req.Seq, Op: OpCreate, Path: finalPath,
		NodeBlob:   znode.Marshal(newNode, nil),
		ParentPath: parentPath, ChildAdd: name,
		LockTs: nodeLock.Timestamp, ParentLockTs: parentLock.Timestamp,
		Cversion: parent.Cversion + 1, EphOwner: owner,
	}
	r, err := d.pushToLeader(ctx, msg)
	if err != nil {
		d.unlockAll(ctx, nodeLock, parentLock)
		code := CodeSystemError
		if errors.Is(err, errMsgTooLarge) {
			code = CodeTooLarge
		}
		d.respondFailure(req, code)
		return nil
	}
	txid := r.txid
	if d.crashInjected() || d.crashAt(obs.StageLeaderQ, req.Session, req.Seq) {
		return errInjectedCrash
	}
	// ④ A multi-node commit: the new node and its parent fail or succeed
	// together (Section 3.1).
	t0 := d.K.Now()
	sp := d.reqSpan(req, obs.SpanFollowerCommit, r.shard)
	err = d.Locks.CommitUnlockTxGuard(d.billSpan(ctx, costReqTrace(req), sp, r.shard, ""), []fksync.TxPart{
		{Lock: nodeLock, Updates: createNodeUpdates(txid, owner)},
		{Lock: parentLock, Updates: createParentUpdates(name, txid)},
	}, d.dynGuard(r.shard, r.gen))
	d.spanEnd(sp)
	d.recordPhase("follower.commit", d.K.Now()-t0)
	if err != nil {
		if d.staleRoutedCommit(ctx, r.shard, r.gen) {
			d.unlockAll(ctx, nodeLock, parentLock)
			return errStaleRoute
		}
		return nil // lease lost: leader TryCommit may recover
	}
	return nil
}

// createNodeUpdates is the follower's node-item commit; the leader's
// TryCommit reconstructs exactly the same updates.
func createNodeUpdates(txid int64, owner string) []kv.Update {
	return append(createNodeBase(txid, owner),
		kv.ListAppend{Name: attrPending, Vals: []int64{txid}})
}

// createNodeBase is the create commit without the pending append — the
// transaction path appends the pending entry once per node, even when
// several sub-ops touch it.
func createNodeBase(txid int64, owner string) []kv.Update {
	ups := []kv.Update{
		kv.Set{Name: attrExists, V: kv.N(1)},
		kv.Set{Name: attrVersion, V: kv.N(0)},
		kv.Set{Name: attrCversion, V: kv.N(0)},
		kv.Set{Name: attrCzxid, V: kv.N(txid)},
		kv.Set{Name: attrMzxid, V: kv.N(txid)},
		kv.Set{Name: attrPzxid, V: kv.N(txid)},
		kv.Set{Name: attrChildren, V: kv.StrList()},
	}
	if owner != "" {
		ups = append(ups, kv.Set{Name: attrEph, V: kv.S(owner)})
	}
	return ups
}

func createParentUpdates(name string, txid int64) []kv.Update {
	return []kv.Update{
		kv.StrListAppend{Name: attrChildren, Vals: []string{name}},
		kv.Add{Name: attrCversion, Delta: 1},
		kv.Add{Name: attrSeq, Delta: 1},
		kv.Set{Name: attrPzxid, V: kv.N(txid)},
	}
}

// followerDelete validates and commits one deletion. It returns the shard
// the deletion was routed to (the session-deregistration barrier must put
// its ack behind the deletion in exactly that queue) along with the usual
// handler error.
func (d *Deployment) followerDelete(ctx cloud.Ctx, req Request) (int, error) {
	shard := d.RouteShard(req.Path)
	if req.Path == znode.Root {
		d.respondFailure(req, CodeSystemError)
		return shard, nil
	}
	parentPath := znode.Parent(req.Path)
	parentLock, parent, err := d.lockNodeClean(ctx, parentPath, 0)
	if err != nil {
		d.respondFailure(req, CodeSystemError)
		return shard, nil
	}
	nodeLock, node, err := d.lockNodeClean(ctx, req.Path, 0)
	if err != nil {
		d.unlockAll(ctx, parentLock)
		d.respondFailure(req, CodeSystemError)
		return shard, nil
	}
	code := CodeOK
	switch {
	case !node.Exists:
		code = CodeNoNode
	case req.Version != -1 && req.Version != node.Version:
		code = CodeBadVersion
	case len(node.Children) > 0:
		code = CodeNotEmpty
	case !parent.Exists || !parent.hasChild(znode.Base(req.Path)):
		code = CodeSystemError
	}
	if code != CodeOK {
		d.unlockAll(ctx, nodeLock, parentLock)
		d.respondFailure(req, code)
		return shard, nil
	}
	name := znode.Base(req.Path)
	msg := leaderMsg{
		Session: req.Session, Seq: req.Seq, Op: OpDelete, Path: req.Path,
		ParentPath: parentPath, ChildDel: name,
		LockTs: nodeLock.Timestamp, ParentLockTs: parentLock.Timestamp,
		Cversion: parent.Cversion + 1, EphOwner: node.EphOwner,
	}
	r, err := d.pushToLeader(ctx, msg)
	if err != nil {
		d.unlockAll(ctx, nodeLock, parentLock)
		d.respondFailure(req, CodeSystemError)
		return r.shard, nil
	}
	txid := r.txid
	if d.crashInjected() || d.crashAt(obs.StageLeaderQ, req.Session, req.Seq) {
		return r.shard, errInjectedCrash
	}
	t0 := d.K.Now()
	sp := d.reqSpan(req, obs.SpanFollowerCommit, r.shard)
	err = d.Locks.CommitUnlockTxGuard(d.billSpan(ctx, costReqTrace(req), sp, r.shard, ""), []fksync.TxPart{
		{Lock: nodeLock, Updates: deleteNodeUpdates(txid)},
		{Lock: parentLock, Updates: deleteParentUpdates(name, txid)},
	}, d.dynGuard(r.shard, r.gen))
	d.spanEnd(sp)
	d.recordPhase("follower.commit", d.K.Now()-t0)
	if err != nil {
		if d.staleRoutedCommit(ctx, r.shard, r.gen) {
			d.unlockAll(ctx, nodeLock, parentLock)
			return r.shard, errStaleRoute
		}
		return r.shard, nil
	}
	if node.EphOwner != "" {
		_, _ = d.System.Update(ctx, sessionKey(node.EphOwner),
			[]kv.Update{kv.StrListRemove{Name: attrSessionEph, Vals: []string{req.Path}}}, nil)
	}
	return r.shard, nil
}

// deleteNodeUpdates tombstones the node (exists=0) while keeping the item
// so the leader can track the pending transaction; the leader garbage
// collects it after the pop.
func deleteNodeUpdates(txid int64) []kv.Update {
	return append(deleteNodeBase(txid),
		kv.ListAppend{Name: attrPending, Vals: []int64{txid}})
}

// deleteNodeBase is the delete commit without the pending append (see
// createNodeBase).
func deleteNodeBase(txid int64) []kv.Update {
	return []kv.Update{
		kv.Set{Name: attrExists, V: kv.N(0)},
		kv.Set{Name: attrMzxid, V: kv.N(txid)},
		kv.Remove{Name: attrEph},
	}
}

func deleteParentUpdates(name string, txid int64) []kv.Update {
	return []kv.Update{
		kv.StrListRemove{Name: attrChildren, Vals: []string{name}},
		kv.Add{Name: attrCversion, Delta: 1},
		kv.Set{Name: attrPzxid, V: kv.N(txid)},
	}
}

// followerDeregister closes a session: every ephemeral node it owns is
// deleted through the normal write pipeline, then the session record is
// removed (Section 3.6).
func (d *Deployment) followerDeregister(ctx cloud.Ctx, req Request) error {
	item, ok := d.System.Get(ctx, sessionKey(req.Session), true)
	if !ok {
		// Already gone: idempotent; answer directly.
		resp := Response{Session: req.Session, Seq: req.Seq, Code: CodeOK}
		d.notify(req.Session, resp, resp.wireSize())
		return nil
	}
	eph := append([]string(nil), item[attrSessionEph].SL...)
	touched := map[int]bool{}
	for _, path := range eph {
		// Seq -1: these deletions produce no client-visible responses; the
		// deregistration ack below covers them. The ack must ride the
		// queue each deletion actually committed to, so the shard comes
		// back from the delete itself (routing may change mid-loop on a
		// dynamic deployment).
		del := Request{Session: req.Session, Seq: -1, Op: OpDelete, Path: path, Version: -1}
		shard, err := d.followerDelete(ctx, del)
		for attempt := 0; errors.Is(err, errStaleRoute) && attempt < staleRouteRetries; attempt++ {
			d.awaitRoutable(ctx, path)
			shard, err = d.followerDelete(ctx, del)
		}
		if err != nil {
			return err
		}
		touched[shard] = true
	}
	if err := d.System.Delete(ctx, sessionKey(req.Session), nil); err != nil {
		return fmt.Errorf("core: deregister: %w", err)
	}
	if len(touched) == 0 {
		touched[0] = true // no ephemerals: any single shard may ack
	}
	// Acknowledge through the leader queue of every shard that received a
	// deletion: each shard's FIFO order puts the ack behind those
	// deletions, and the shard completing the ack set answers the client —
	// so the client sees the ack only after every deletion has been
	// distributed.
	// Multi-shard fanouts need an id: an atomic system-store counter
	// (followers are stateless, so an in-memory counter would repeat after
	// a restart and let stale markers of an abandoned fanout satisfy a new
	// barrier). A fanout abandoned by a push failure leaves its barrier
	// item behind; later fanouts ignore the stale markers (different id),
	// so the only cost is bounded system-store garbage on an
	// unreachable-in-practice path (acks are far below the queue limit).
	var deregID int64
	if len(touched) > 1 {
		it, err := d.System.Update(ctx, deregSeqKey,
			[]kv.Update{kv.Add{Name: attrDeregSeq, Delta: 1}}, nil)
		if err != nil {
			return fmt.Errorf("core: deregister id: %w", err)
		}
		deregID = it[attrDeregSeq].Num
	}
	for s := 0; s < d.NumShards(); s++ { // in shard order: determinism
		if !touched[s] {
			continue
		}
		ack := leaderMsg{
			Session: req.Session, Seq: req.Seq, Op: OpDeregister,
			Shard: s, Fanout: len(touched), DeregID: deregID,
		}
		if _, err := d.pushToShard(ctx, ack); err != nil {
			return err
		}
	}
	return nil
}

var errMsgTooLarge = errors.New("core: leader message exceeds queue limit")

// routed is the outcome of a leader-queue push: the derived transaction
// id, the shard the message landed on, and — on a dynamic deployment —
// the map generation it was routed with, which the follower's commit must
// pin (dynGuard).
type routed struct {
	txid  int64
	shard int
	gen   int64
}

// pushToLeader routes the validated change to its subtree's ordered queue
// (③) and returns the transaction id. With one shard this is the paper's
// single global FIFO queue and its total order of writes; with more, the
// order is total per shard, which suffices because no operation spans
// subtrees. A dynamic deployment routes through the shard map and stamps
// the message with the routing generation and the shard's txid base.
func (d *Deployment) pushToLeader(ctx cloud.Ctx, msg leaderMsg) (routed, error) {
	if d.dyn != nil {
		m := d.mapView()
		msg.Shard = m.ShardFor(msg.Path)
		dynStamp(&msg, m)
		if d.Cfg.AutoShard.Enabled {
			// Only the auto-shard monitor reads (and resets) the
			// per-segment counters; without it they would just grow.
			d.dyn.hot[shardmap.TopSegment(msg.Path)]++
		}
	} else {
		msg.Shard = ShardOf(msg.Path, d.NumShards())
	}
	return d.pushToShard(ctx, msg)
}

// pushToShard sends the message to the shard already set on it.
func (d *Deployment) pushToShard(ctx cloud.Ctx, msg leaderMsg) (routed, error) {
	t0 := d.K.Now()
	// Re-sink the bill so the queue-delivery cell is refined by the routed
	// shard (the caller's sink knows the trace but not the route).
	ctx = d.billMsg(ctx, msg)
	e := wire.NewEncoder()
	seqNo, err := d.LeaderQs[msg.Shard].Send(ctx, msg.Session, msg.encodeWith(d.Cfg.codec, e))
	e.Release()
	d.recordPhase("follower.push", d.K.Now()-t0)
	if errors.Is(err, queue.ErrTooLarge) {
		return routed{shard: msg.Shard, gen: dynGen(msg)}, errMsgTooLarge
	}
	if err == nil {
		d.stageMsg(msg, obs.StageLeaderQ)
	}
	if err == nil && msg.Seq > 0 && msg.Op != OpDeregister && msg.Op != OpTxnCommit {
		// Once pushed, the leader will complete (or TryCommit) this
		// request even if we crash right here — mark it processed so a
		// queue retry does not apply it a second time. Deregister acks are
		// excluded: their fanout must complete as a whole before the
		// request counts as processed (processRequest marks it then).
		// Cross-shard commit messages are excluded for the same reason: a
		// coordinator that crashes between shard pushes must be redriven
		// by redelivery until the whole transaction is applied.
		d.lastSeq[msg.Session] = msg.Seq
	}
	return routed{txid: d.msgTxid(seqNo, msg), shard: msg.Shard, gen: dynGen(msg)}, err
}

func (d *Deployment) unlockAll(ctx cloud.Ctx, locks ...fksync.Lock) {
	for _, l := range locks {
		_ = d.Locks.Release(ctx, l)
	}
}

func (d *Deployment) crashInjected() bool {
	p := d.Cfg.Faults.FollowerCrashAfterPush
	return p > 0 && d.K.Rand().Float64() < p
}

// crashAt asks the kernel's fault hook (package chaos) whether the
// function should die at the labeled pipeline stage while processing
// (session, seq). Without a hook — every non-chaos deployment — this is a
// nil check and nothing else.
func (d *Deployment) crashAt(stage, session string, seq int64) bool {
	h := d.K.Fault()
	return h != nil && h.Crash(stage, session, seq)
}
