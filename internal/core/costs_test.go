package core

import (
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// TestCostOffBillersAllocateNothing pins the cost-attribution call sites
// to the same budget as the telemetry hooks: with CostAccounting off,
// every bill* helper must return its context untouched without
// allocating — the pipeline pays nothing for instrumentation it is not
// using.
func TestCostOffBillersAllocateNothing(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDeployment(k, Config{})
	ctx := cloud.ClientCtx(d.Cfg.Profile.Home)
	req := Request{Session: "s", Seq: 1, Op: OpSetData, Path: "/a"}
	msg := leaderMsg{Session: "s", Seq: 1, Op: OpSetData, Path: "/a"}
	if allocs := testing.AllocsPerRun(200, func() {
		c := d.billReq(ctx, req, 0)
		c = d.billMsg(c, msg)
		c = d.billSys(c, 0)
		c = d.billSpan(c, 1, 2, 0, "us")
		c = d.billFold(c, nil, 0, "")
		if c.Bill != nil {
			t.Fatal("cost-off biller attached a sink")
		}
		if d.invBill(nil, 0) != nil {
			t.Fatal("cost-off invocation sink non-nil")
		}
	}); allocs != 0 {
		t.Fatalf("cost-off billers allocated %.1f/op, want 0", allocs)
	}
	k.Shutdown()
}
