package core

// Cross-shard multi() transactions (package txn): the coordinator rides in
// the follower function handling the OpMulti request, so it inherits the
// session's FIFO position and the queue's redelivery-based retry.
//
// Single-shard multis take a fast path through the existing pipeline: the
// coordinator locks every touched item (global lexicographic order),
// validates the ops against a speculative state, pushes ONE OpMulti
// message to the owning shard's queue, and commits all items in one
// multi-item conditional transaction — atomicity falls out of the
// system-store transaction plus the shard's serialized leader.
//
// Multis spanning shards run a two-phase commit:
//
//	prepare   lock every item, validate, then convert each shard group's
//	          timed locks into intent attributes (never lease-expire) and
//	          vote through the durable record's storage-backed barrier —
//	          the deregister-fanout ack pattern.
//	decide    one conditional status transition (preparing→committed with
//	          the resolved ops, or →aborted) makes the outcome durable; a
//	          crashed coordinator is resumed by queue redelivery from the
//	          record.
//	commit    one OpTxnCommit message per participant shard orders the
//	          transaction inside that shard's pipeline (txid minting,
//	          watch claiming, epoch entry, pending pops), guarded by
//	          intent-conditional idempotent system-store writes.
//	apply     after every shard leader posts its ready marker, the
//	          coordinator distributes ALL user-store writes in one atomic
//	          batch (AtomicApplier) — or in op order where the backend
//	          has no transactions — publishes one coalesced cache
//	          invalidation record first, and only then clears the
//	          intents, answers the client, and releases the deferred
//	          watch deliveries.
//
// Intents double as the isolation fence: any conflicting writer's
// follower blocks in lockNodeClean until the transaction's effects are
// readable, so no write can slip between a shard's commit and the atomic
// apply, and no reader ever observes uncommitted intents (nothing touches
// the user store before the apply).

import (
	"errors"
	"sort"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/znode"
)

// errTxnBarrier aborts the invocation so queue redelivery re-drives the
// committed transaction from its durable record.
var errTxnBarrier = errors.New("core: transaction barrier timed out; redelivery resumes")

// txnIntentAttempts bounds how long a writer waits on a foreign intent.
const txnIntentAttempts = 60

// lockNodeClean acquires the node's timed lock and resolves any
// transaction intent found on the item. A stale intent — its transaction
// already aborted, applied, or collected — is cleared inline under the
// held lock (cooperative recovery of a crashed coordinator's leftovers).
// A live intent (preparing or committed) owns the node: the lock is
// released and the acquisition retried, so conflicting writers serialize
// behind the transaction's apply. selfTxn tolerates the caller's own
// intent. With no intent present (every non-transactional deployment)
// the path is exactly lockNode: zero extra operations.
func (d *Deployment) lockNodeClean(ctx cloud.Ctx, path string, selfTxn int64) (fksync.Lock, sysNode, error) {
	for attempt := 0; attempt < txnIntentAttempts; attempt++ {
		lock, node, err := d.lockNode(ctx, path)
		if err != nil || node.TxnIntent == 0 || node.TxnIntent == selfTxn {
			return lock, node, err
		}
		rec, found := d.Txns.Lookup(ctx, node.TxnIntent)
		if !found || rec.Status == txn.StatusAborted || rec.Status == txn.StatusApplied {
			it, cerr := d.System.Update(ctx, nodeKey(path),
				[]kv.Update{kv.Remove{Name: attrTxnIntent}, kv.Remove{Name: attrTxnCommitMark}},
				kv.Eq{Name: fksync.LockAttr, V: kv.N(lock.Timestamp)})
			if cerr == nil {
				return lock, decodeSysNode(it), nil
			}
			// Lost our lease while clearing; take the lock again.
			continue
		}
		_ = d.Locks.Release(ctx, lock)
		d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
	}
	return fksync.Lock{}, sysNode{}, fksync.ErrLockHeld
}

// specNode is the coordinator's speculative view of one locked item, so
// later ops of the same multi validate against the earlier ops' effects
// (ZooKeeper validates multi ops sequentially against the evolving state).
type specNode struct {
	exists   bool
	version  int32
	cversion int32
	children map[string]bool
	ephOwner string
	seqCtr   int64
}

func specFrom(n sysNode) *specNode {
	children := map[string]bool{}
	for _, c := range n.Children {
		children[c] = true
	}
	return &specNode{
		exists: n.Exists, version: n.Version, cversion: n.Cversion,
		children: children, ephOwner: n.EphOwner, seqCtr: n.SeqCtr,
	}
}

func (s *specNode) childCount() int {
	n := 0
	for _, present := range s.children {
		if present {
			n++
		}
	}
	return n
}

// multiItem is one locked system item a transaction touches.
type multiItem struct {
	path   string
	lock   fksync.Lock
	shard  int  // owning shard group (the first-touching op's shard)
	intent bool // 2PC: the timed lock was converted into an intent
}

// multiPlan is the coordinator's prepared state: every touched item
// locked, every op validated and resolved. route is the plan's routing
// snapshot (one map view for the whole transaction); mv is the snapshot's
// map on a dynamic deployment (nil otherwise), whose per-shard
// generations guard the commit.
type multiPlan struct {
	resolved []txn.ResolvedOp
	items    map[string]*multiItem
	order    []string // lock acquisition order
	specs    map[string]*specNode
	route    func(string) int
	mv       *shardmap.Map
}

func newMultiPlan(d *Deployment) *multiPlan {
	p := &multiPlan{items: map[string]*multiItem{}, specs: map[string]*specNode{}}
	p.route, p.mv = d.routeFn()
	return p
}

// acquire locks one item (idempotently) and seeds its speculative state.
func (p *multiPlan) acquire(d *Deployment, ctx cloud.Ctx, path string, shard int) error {
	if _, held := p.items[path]; held {
		return nil
	}
	lock, node, err := d.lockNodeClean(ctx, path, 0)
	if err != nil {
		return err
	}
	p.items[path] = &multiItem{path: path, lock: lock, shard: shard}
	p.order = append(p.order, path)
	p.specs[path] = specFrom(node)
	return nil
}

// unlock releases every still-held timed lock (validation failure paths).
func (p *multiPlan) unlock(d *Deployment, ctx cloud.Ctx) {
	for _, path := range p.order {
		it := p.items[path]
		if !it.intent {
			_ = d.Locks.Release(ctx, it.lock)
		}
	}
}

// itemsByShard groups the locked items by owning shard for the parallel
// intent/vote phase.
func (p *multiPlan) itemsByShard() map[int][]*multiItem {
	groups := map[int][]*multiItem{}
	for _, path := range p.order {
		it := p.items[path]
		groups[it.shard] = append(groups[it.shard], it)
	}
	return groups
}

// lockTs returns the lock timestamps aligned with the acquisition order
// (the fast-path message carries them for the leader's commit replay).
func (p *multiPlan) lockTs() []int64 {
	ts := make([]int64, len(p.order))
	for i, path := range p.order {
		ts[i] = p.items[path].lock.Timestamp
	}
	return ts
}

// prepareMulti locks every touched item in global lexicographic order and
// validates the ops speculatively. On success the locks are still held.
// On validation failure every lock is released and the failing op's index
// and code are returned (failIdx >= 0). err is infrastructure-only.
func (d *Deployment) prepareMulti(ctx cloud.Ctx, req Request, reqOps []txn.Op) (plan *multiPlan, failIdx int, code Code, err error) {
	plan = newMultiPlan(d)
	// Statically known paths, each tagged with its first-touching op's
	// shard (parents are colocated with children; only the shared root can
	// be claimed by any op's shard).
	shardOf := map[string]int{}
	note := func(p string, s int) {
		if _, ok := shardOf[p]; !ok {
			shardOf[p] = s
		}
	}
	for _, op := range reqOps {
		s := plan.route(op.Path)
		switch op.Type {
		case txn.OpCreate:
			if op.Path == znode.Root {
				continue // validation will reject it
			}
			note(znode.Parent(op.Path), s)
			if op.Flags&znode.FlagSequential == 0 {
				note(op.Path, s)
			}
		case txn.OpDelete:
			if op.Path == znode.Root {
				continue
			}
			note(znode.Parent(op.Path), s)
			note(op.Path, s)
		default:
			note(op.Path, s)
		}
	}
	static := make([]string, 0, len(shardOf))
	for p := range shardOf {
		static = append(static, p)
	}
	// Lexicographic order is deadlock-free against single ops and other
	// multis: a parent is a strict prefix of its children, so the global
	// order refines the pipeline's parent-first rule. (Sequential-node
	// paths resolve during validation and may lock out of order; the timed
	// lease bounds the rare resulting contention.)
	sort.Strings(static)
	t0 := d.K.Now()
	for _, p := range static {
		if err := plan.acquire(d, ctx, p, shardOf[p]); err != nil {
			plan.unlock(d, ctx)
			return nil, -1, CodeSystemError, err
		}
	}
	for i, op := range reqOps {
		rop, code, err := d.validateMultiOp(ctx, plan, op, req.Session)
		if err != nil {
			plan.unlock(d, ctx)
			return nil, -1, CodeSystemError, err
		}
		if code != CodeOK {
			plan.unlock(d, ctx)
			return nil, i, code, nil
		}
		plan.resolved = append(plan.resolved, rop)
	}
	d.recordPhase("txn.prepare", d.K.Now()-t0)
	return plan, -1, CodeOK, nil
}

// validateMultiOp mirrors the follower's per-op validation against the
// plan's speculative state and resolves the op on success.
func (d *Deployment) validateMultiOp(ctx cloud.Ctx, plan *multiPlan, op txn.Op, session string) (txn.ResolvedOp, Code, error) {
	switch op.Type {
	case txn.OpSetData:
		sp := plan.specs[op.Path]
		if sp == nil || !sp.exists {
			return txn.ResolvedOp{}, CodeNoNode, nil
		}
		if op.Version != -1 && op.Version != sp.version {
			return txn.ResolvedOp{}, CodeBadVersion, nil
		}
		sp.version++
		return txn.ResolvedOp{
			Type: op.Type, Path: op.Path, Data: op.Data, Version: sp.version,
			EphOwner: sp.ephOwner, Shard: plan.route(op.Path),
		}, CodeOK, nil
	case txn.OpCheck:
		sp := plan.specs[op.Path]
		if sp == nil || !sp.exists {
			return txn.ResolvedOp{}, CodeNoNode, nil
		}
		if op.Version != -1 && op.Version != sp.version {
			return txn.ResolvedOp{}, CodeBadVersion, nil
		}
		return txn.ResolvedOp{Type: op.Type, Path: op.Path, Shard: plan.route(op.Path)}, CodeOK, nil
	case txn.OpCreate:
		if op.Path == znode.Root {
			return txn.ResolvedOp{}, CodeNodeExists, nil
		}
		parentPath := znode.Parent(op.Path)
		pp := plan.specs[parentPath]
		if pp == nil || !pp.exists {
			return txn.ResolvedOp{}, CodeNoNode, nil
		}
		if pp.ephOwner != "" {
			return txn.ResolvedOp{}, CodeNoChildrenEph, nil
		}
		finalPath := op.Path
		if op.Flags&znode.FlagSequential != 0 {
			finalPath = znode.SequentialName(op.Path, pp.seqCtr)
		}
		shard := plan.route(finalPath)
		if err := plan.acquire(d, ctx, finalPath, shard); err != nil {
			return txn.ResolvedOp{}, CodeSystemError, err
		}
		sp := plan.specs[finalPath]
		if sp.exists {
			return txn.ResolvedOp{}, CodeNodeExists, nil
		}
		owner := ""
		if op.Flags&znode.FlagEphemeral != 0 {
			owner = session
		}
		name := znode.Base(finalPath)
		pp.seqCtr++
		pp.cversion++
		pp.children[name] = true
		sp.exists, sp.version, sp.ephOwner = true, 0, owner
		sp.children = map[string]bool{}
		return txn.ResolvedOp{
			Type: op.Type, Path: finalPath, ParentPath: parentPath, Data: op.Data,
			Version: 0, Cversion: pp.cversion, EphOwner: owner, ChildAdd: name, Shard: shard,
		}, CodeOK, nil
	case txn.OpDelete:
		if op.Path == znode.Root {
			return txn.ResolvedOp{}, CodeSystemError, nil
		}
		parentPath := znode.Parent(op.Path)
		pp := plan.specs[parentPath]
		sp := plan.specs[op.Path]
		if sp == nil || !sp.exists {
			return txn.ResolvedOp{}, CodeNoNode, nil
		}
		if op.Version != -1 && op.Version != sp.version {
			return txn.ResolvedOp{}, CodeBadVersion, nil
		}
		if sp.childCount() > 0 {
			return txn.ResolvedOp{}, CodeNotEmpty, nil
		}
		name := znode.Base(op.Path)
		if pp == nil || !pp.exists || !pp.children[name] {
			return txn.ResolvedOp{}, CodeSystemError, nil
		}
		owner := sp.ephOwner
		sp.exists = false
		pp.cversion++
		pp.children[name] = false
		return txn.ResolvedOp{
			Type: op.Type, Path: op.Path, ParentPath: parentPath,
			Cversion: pp.cversion, EphOwner: owner, ChildDel: name, Shard: plan.route(op.Path),
		}, CodeOK, nil
	}
	return txn.ResolvedOp{}, CodeSystemError, nil
}

// multiUpdates rebuilds every touched item's system-store updates for a
// set of resolved ops committing at txid: per-op updates in op order, one
// pending append per target node (even when several sub-ops touch it).
// touched lists every item including check-only ones (which get no
// updates); targets are the nodes whose pending list carries the
// transaction. skipRoot omits the shared root item — in a cross-shard
// commit its updates are coordinator-owned (txnRootCommit), because ops
// from several shards may splice it and per-shard conditional commits
// would double-apply.
func multiUpdates(ops []txn.ResolvedOp, txid int64, skipRoot bool) (touched []string, ups map[string][]kv.Update, targets []string) {
	ups = map[string][]kv.Update{}
	seen := map[string]bool{}
	isTarget := map[string]bool{}
	touch := func(p string) bool {
		if skipRoot && p == znode.Root {
			return false
		}
		if !seen[p] {
			seen[p] = true
			touched = append(touched, p)
		}
		return true
	}
	for _, op := range ops {
		switch op.Type {
		case txn.OpCheck:
			touch(op.Path)
		case txn.OpCreate:
			if touch(op.Path) {
				ups[op.Path] = append(ups[op.Path], createNodeBase(txid, op.EphOwner)...)
				isTarget[op.Path] = true
			}
			if touch(op.ParentPath) {
				ups[op.ParentPath] = append(ups[op.ParentPath], createParentUpdates(op.ChildAdd, txid)...)
			}
		case txn.OpSetData:
			if touch(op.Path) {
				ups[op.Path] = append(ups[op.Path],
					kv.Set{Name: attrVersion, V: kv.N(int64(op.Version))},
					kv.Set{Name: attrMzxid, V: kv.N(txid)})
				isTarget[op.Path] = true
			}
		case txn.OpDelete:
			if touch(op.Path) {
				ups[op.Path] = append(ups[op.Path], deleteNodeBase(txid)...)
				isTarget[op.Path] = true
			}
			if touch(op.ParentPath) {
				ups[op.ParentPath] = append(ups[op.ParentPath], deleteParentUpdates(op.ChildDel, txid)...)
			}
		}
	}
	for _, p := range touched {
		if isTarget[p] {
			ups[p] = append(ups[p], kv.ListAppend{Name: attrPending, Vals: []int64{txid}})
			targets = append(targets, p)
		}
	}
	return touched, ups, targets
}

// --- shared helpers over resolved op lists ---

func effectfulShards(ops []txn.ResolvedOp) []int {
	seen := map[int]bool{}
	var shards []int
	for _, op := range ops {
		if op.Effectful() && !seen[op.Shard] {
			seen[op.Shard] = true
			shards = append(shards, op.Shard)
		}
	}
	sort.Ints(shards)
	return shards
}

func resolvedOfShard(ops []txn.ResolvedOp, shard int) []txn.ResolvedOp {
	var out []txn.ResolvedOp
	for _, op := range ops {
		if op.Shard == shard {
			out = append(out, op)
		}
	}
	return out
}

// anchorPath names a shard message's Path field: the shard's first
// effectful op's path (used for routing and client-visible echoes).
func anchorPath(ops []txn.ResolvedOp, shard int) string {
	for _, op := range ops {
		if op.Shard == shard && op.Effectful() {
			return op.Path
		}
	}
	return znode.Root
}

// txnTargets lists the effectful ops' node paths in first-touch order.
func txnTargets(ops []txn.ResolvedOp) []string {
	seen := map[string]bool{}
	var out []string
	for _, op := range ops {
		if op.Effectful() && !seen[op.Path] {
			seen[op.Path] = true
			out = append(out, op.Path)
		}
	}
	return out
}

// allItemPaths lists every system item the transaction touched (targets,
// parents, and check paths) for intent cleanup.
func allItemPaths(ops []txn.ResolvedOp) []string {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, op := range ops {
		add(op.Path)
		add(op.ParentPath)
	}
	return out
}

// staticPaths lists the statically known item paths of a requested op
// list (recovery cleanup; sequential-resolved paths self-heal through
// lockNodeClean's stale-intent clearing).
func staticPaths(ops []txn.Op) []string {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, op := range ops {
		add(op.Path)
		if (op.Type == txn.OpCreate || op.Type == txn.OpDelete) && op.Path != znode.Root {
			add(znode.Parent(op.Path))
		}
	}
	return out
}

// opMsgView adapts one resolved sub-op to the leaderMsg shape the watch
// query understands.
func opMsgView(op txn.ResolvedOp) leaderMsg {
	m := leaderMsg{Path: op.Path, ParentPath: op.ParentPath}
	switch op.Type {
	case txn.OpCreate:
		m.Op = OpCreate
	case txn.OpDelete:
		m.Op = OpDelete
	default:
		m.Op = OpSetData
	}
	return m
}

// txnCommitCond guards every per-item commit write: the intent must still
// be ours and the commit mark not yet set, making coordinator and leader
// replays race-safe and idempotent.
func txnCommitCond(id int64) kv.Cond {
	return kv.And{
		kv.Eq{Name: attrTxnIntent, V: kv.N(id)},
		kv.Not{C: kv.Eq{Name: attrTxnCommitMark, V: kv.N(id)}},
	}
}

// clearTxnMarks releases the transaction's intents (and commit marks) on
// the given items; conditional on ownership, so it is safe to call on
// paths that never received one.
func (d *Deployment) clearTxnMarks(ctx cloud.Ctx, id int64, paths []string) {
	for _, p := range paths {
		_, _ = d.System.Update(ctx, nodeKey(p),
			[]kv.Update{kv.Remove{Name: attrTxnIntent}, kv.Remove{Name: attrTxnCommitMark}},
			kv.Eq{Name: attrTxnIntent, V: kv.N(id)})
	}
}

// applyEphRecords updates the session records' ephemeral lists after a
// commit (outside the atomic transaction, like the single-op pipeline: a
// stale entry is harmless, deletes are idempotent).
func (d *Deployment) applyEphRecords(ctx cloud.Ctx, resolved []txn.ResolvedOp) {
	for _, op := range resolved {
		if op.EphOwner == "" {
			continue
		}
		switch op.Type {
		case txn.OpCreate:
			_, _ = d.System.Update(ctx, sessionKey(op.EphOwner),
				[]kv.Update{kv.StrListAppend{Name: attrSessionEph, Vals: []string{op.Path}}}, nil)
		case txn.OpDelete:
			_, _ = d.System.Update(ctx, sessionKey(op.EphOwner),
				[]kv.Update{kv.StrListRemove{Name: attrSessionEph, Vals: []string{op.Path}}}, nil)
		}
	}
}

// planWentStale reports whether any of a plan's shard groups routed with
// a since-superseded map generation (the transaction must re-route).
func (d *Deployment) planWentStale(ctx cloud.Ctx, plan *multiPlan) bool {
	if plan.mv == nil {
		return false
	}
	cur := d.refreshMap(ctx)
	for s := range plan.itemsByShard() {
		if cur.GenOf(s) != plan.mv.GenOf(s) {
			return true
		}
	}
	return false
}

// respondMultiAbort answers a multi() that failed validation: the failing
// op carries its own code, the siblings report the rollback. failIdx < 0
// marks a recovery answer where the failing op is no longer known.
func (d *Deployment) respondMultiAbort(req Request, reqOps []txn.Op, failIdx int, code Code) {
	d.stageReq(req, obs.StageRespond)
	results := make([]txn.Result, len(reqOps))
	for i, op := range reqOps {
		r := txn.Result{Type: op.Type, Path: op.Path, Code: txn.CodeAborted}
		if i == failIdx {
			r.Code = string(code)
		}
		results[i] = r
	}
	resp := Response{Session: req.Session, Seq: req.Seq, Code: code, Path: req.Path, MultiResults: results}
	d.notify(req.Session, resp, resp.wireSize())
}

// notifyMulti answers a committed multi() with its per-op results.
func (d *Deployment) notifyMulti(req Request, results []txn.Result, commits map[int]int64) {
	d.stageReq(req, obs.StageRespond)
	var maxTxid int64
	for _, t := range commits {
		if t > maxTxid {
			maxTxid = t
		}
	}
	resp := Response{
		Session: req.Session, Seq: req.Seq, Code: CodeOK, Path: req.Path,
		Txid: maxTxid, MultiResults: results,
	}
	if d.dyn != nil {
		resp.MapEpoch = d.mapView().Epoch
	}
	d.notify(req.Session, resp, resp.wireSize())
}

// buildTxnFold folds a committed transaction's resolved ops into the
// distributor's batch fold and builds the per-op client results. txidOf
// maps a shard to its commit txid (all ops of one shard share one txid,
// as a ZooKeeper multi shares one zxid). states supplies pre-read system
// states; missing ones are read from the system store.
func (d *Deployment) buildTxnFold(ctx cloud.Ctx, resolved []txn.ResolvedOp, txidOf func(int) int64, states map[string]sysNode) (*batchFold, []txn.Result) {
	fold := newBatchFold()
	results := make([]txn.Result, len(resolved))
	stateOf := func(p string) sysNode {
		if n, ok := states[p]; ok {
			return n
		}
		it, ok := d.System.Get(ctx, nodeKey(p), true)
		if !ok {
			return sysNode{}
		}
		n := decodeSysNode(it)
		states[p] = n
		return n
	}
	created := map[string]bool{}
	for i, op := range resolved {
		txid := txidOf(op.Shard)
		res := txn.Result{Type: op.Type, Path: op.Path, Code: txn.CodeOK}
		switch op.Type {
		case txn.OpCheck:
			// Validated at prepare; nothing to distribute.
		case txn.OpDelete:
			res.Txid = txid
			fold.foldDelete(op.Path, txid)
			fold.foldParent(op.ParentPath, "", op.ChildDel, op.Cversion, txid)
		case txn.OpCreate:
			res.Txid = txid
			n := &znode.Node{
				Path: op.Path,
				Data: op.Data,
				Stat: znode.Stat{
					Czxid: txid, Mzxid: txid, Pzxid: txid, Version: 0,
					Ephemeral: op.EphOwner != "", Owner: op.EphOwner,
					DataLength: int32(len(op.Data)),
				},
			}
			created[op.Path] = true
			res.Stat = n.Stat
			fold.foldWrite(op.Path, n, txid)
			fold.foldParent(op.ParentPath, op.ChildAdd, "", op.Cversion, txid)
		case txn.OpSetData:
			res.Txid = txid
			var st znode.Stat
			var children []string
			if created[op.Path] {
				st = znode.Stat{
					Czxid: txid, Mzxid: txid, Pzxid: txid, Version: op.Version,
					Ephemeral: op.EphOwner != "", Owner: op.EphOwner,
				}
			} else {
				state := stateOf(op.Path)
				children = append([]string(nil), state.Children...)
				st = znode.Stat{
					Czxid: state.Czxid, Mzxid: txid, Pzxid: state.Pzxid,
					Version: op.Version, Cversion: state.Cversion,
					Ephemeral: state.EphOwner != "", Owner: state.EphOwner,
					NumChildren: int32(len(children)),
				}
			}
			st.DataLength = int32(len(op.Data))
			n := &znode.Node{Path: op.Path, Data: op.Data, Stat: st, Children: children}
			res.Stat = st
			fold.foldWrite(op.Path, n, txid)
		}
		results[i] = res
	}
	return fold, results
}

// --- the coordinator (follower side) ---

// followerMulti handles an OpMulti request: validate statically, resume a
// redelivered in-flight transaction from its durable record, then run the
// single-shard fast path or the cross-shard two-phase commit.
func (d *Deployment) followerMulti(ctx cloud.Ctx, req Request) error {
	reqOps, err := txn.DecodeOpsWith(d.Cfg.codec, req.Data)
	if !d.Cfg.EnableTxn || err != nil || len(reqOps) == 0 {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	for i, op := range reqOps {
		if err := znode.ValidatePath(op.Path); err != nil {
			d.respondMultiAbort(req, reqOps, i, CodeSystemError)
			return nil
		}
		if len(op.Data) > d.Cfg.MaxNodeB {
			d.respondMultiAbort(req, reqOps, i, CodeTooLarge)
			return nil
		}
	}
	if id, ok := d.Txns.IDForRequest(ctx, req.Session, req.Seq); ok {
		done, err := d.resumeTxn(ctx, req, reqOps, id)
		if done || err != nil {
			return err
		}
		// The crashed attempt was aborted and cleaned; run a fresh one.
	}
	for attempt := 0; attempt <= staleRouteRetries; attempt++ {
		// A transaction's shard groups must all come from one map epoch,
		// and its phase-two commit messages are ordered by intents rather
		// than queue position — so multis simply wait out any in-flight
		// migration instead of gating per path (the reshard engine in
		// turn waits for live transactions to finish before draining).
		if attempt > 0 {
			d.stageReq(req, obs.StageRetry)
		}
		d.awaitTxnRoutable(ctx)
		if attempt > 0 {
			d.stageReq(req, obs.StageValidate)
		}
		route, _ := d.routeFn()
		shards, _ := txn.Route(reqOps, route)
		if len(shards) == 1 {
			err = d.multiFastPath(ctx, req, reqOps)
		} else {
			err = d.multiTwoPhase(ctx, req, reqOps)
		}
		if !errors.Is(err, errStaleRoute) {
			return err
		}
	}
	d.respondFailure(req, CodeSystemError)
	return nil
}

// awaitTxnRoutable blocks while any migration is in flight (dynamic
// deployments only; one strongly consistent map read per poll).
func (d *Deployment) awaitTxnRoutable(ctx cloud.Ctx) {
	if d.dyn == nil {
		return
	}
	if d.mapView().Mig == nil {
		return
	}
	for attempt := 0; d.refreshMap(ctx).Mig != nil; attempt++ {
		d.K.Sleep(sim.Time(min(attempt+1, 10)) * 2 * sim.Ms(1))
	}
}

// multiFastPath commits a single-shard multi through the existing
// pipeline: one leader message, one multi-item system-store transaction.
// No transaction record, no intents — the timed locks held across the
// commit and the shard's serialized leader give atomicity and isolation
// for free, so a WriteShards=1 deployment pays zero 2PC overhead.
func (d *Deployment) multiFastPath(ctx cloud.Ctx, req Request, reqOps []txn.Op) error {
	plan, failIdx, code, err := d.prepareMulti(ctx, req, reqOps)
	if err != nil {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	if failIdx >= 0 {
		d.respondMultiAbort(req, reqOps, failIdx, code)
		return nil
	}
	shards := effectfulShards(plan.resolved)
	if len(shards) == 0 {
		// Checks only: the locks proved every guard at one instant.
		plan.unlock(d, ctx)
		fold, results := d.buildTxnFold(ctx, plan.resolved, func(int) int64 { return 0 }, map[string]sysNode{})
		fold.release()
		d.notifyMulti(req, results, nil)
		return nil
	}
	if len(shards) > 1 {
		// Routing was decided on the REQUESTED paths, but a top-level
		// sequential create resolves to a different top segment — and so
		// possibly a different shard. Never commit a node outside its
		// owning shard's serialized pipeline: release and go through the
		// coordinator (revalidation reruns against fresh state).
		plan.unlock(d, ctx)
		return d.multiTwoPhase(ctx, req, reqOps)
	}
	shard := shards[0]
	msg := leaderMsg{
		Session: req.Session, Seq: req.Seq, Op: OpMulti, Shard: shard,
		Path: anchorPath(plan.resolved, shard),
		NodeBlob: d.encodeTxnMsgOwned(txnMsg{
			Ops: plan.resolved, ItemPaths: plan.order, LockTs: plan.lockTs(),
			traceID: obs.TraceOf(req.Session, req.Seq),
		}),
	}
	if plan.mv != nil {
		// Route with the plan's snapshot, not the live view: the commit
		// below pins the snapshot's generation, so a refresh between
		// planning and pushing cannot desynchronize message and guard.
		dynStamp(&msg, plan.mv)
	}
	r, err := d.pushToShard(ctx, msg)
	if err != nil {
		plan.unlock(d, ctx)
		code := CodeSystemError
		if errors.Is(err, errMsgTooLarge) {
			code = CodeTooLarge
		}
		d.respondFailure(req, code)
		return nil
	}
	txid := r.txid
	if d.crashInjected() || d.crashAt(obs.StageTxnPrep, req.Session, req.Seq) {
		return errInjectedCrash
	}
	// ④ One multi-item commit: every touched node and parent fails or
	// succeeds together, and the pending appends hand the transaction to
	// the shard's serialized leader.
	_, ups, _ := multiUpdates(plan.resolved, txid, false)
	parts := make([]fksync.TxPart, 0, len(plan.order))
	for _, p := range plan.order {
		parts = append(parts, fksync.TxPart{Lock: plan.items[p].lock, Updates: ups[p]})
	}
	t0 := d.K.Now()
	sp := d.reqSpan(req, obs.SpanFollowerCommit, r.shard)
	err = d.Locks.CommitUnlockTxGuard(d.billSpan(ctx, costReqTrace(req), sp, r.shard, ""), parts, d.dynGuard(r.shard, r.gen))
	d.spanEnd(sp)
	d.recordPhase("follower.commit", d.K.Now()-t0)
	if err != nil {
		if d.staleRoutedCommit(ctx, r.shard, r.gen) {
			plan.unlock(d, ctx)
			return errStaleRoute
		}
		return nil // lease lost: the leader's replay may still recover it
	}
	d.applyEphRecords(ctx, plan.resolved)
	return nil
}

// multiTwoPhase is the cross-shard coordinator: prepare (intents + votes),
// decide (durable record), then drive the per-shard commits and the
// atomic apply.
func (d *Deployment) multiTwoPhase(ctx cloud.Ctx, req Request, reqOps []txn.Op) error {
	id, err := d.Txns.Mint(ctx)
	if err != nil {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	if err := d.Txns.Begin(ctx, id, req.Session, req.Seq, reqOps); err != nil {
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	d.stageReq(req, obs.StageTxnPrep)
	plan, failIdx, code, err := d.prepareMulti(ctx, req, reqOps)
	if err != nil || failIdx >= 0 {
		_ = d.Txns.Decide(ctx, id, txn.StatusPreparing, txn.StatusAborted, nil)
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		if err != nil {
			d.respondFailure(req, CodeSystemError)
		} else {
			d.respondMultiAbort(req, reqOps, failIdx, code)
		}
		return nil
	}
	// Phase 1: convert each shard group's timed locks into intents and
	// vote through the record — the deregister-barrier ack pattern. The
	// groups are disjoint (parents are colocated with children; the shared
	// root belongs to its first-touching op's group), so they proceed in
	// parallel. The decision below is made from the votes as recorded,
	// never from coordinator-local state, so a resumed coordinator would
	// reach the same verdict.
	groups := plan.itemsByShard()
	wg := sim.NewWaitGroup(d.K)
	for s, items := range groups {
		s, items := s, items
		wg.Add(1)
		d.K.Go("txn-prepare", func() {
			defer wg.Done()
			vsp := d.reqSpan(req, obs.SpanTxnVote, s)
			defer d.spanEnd(vsp)
			// The whole vote leg — intent conversions plus the recorded
			// vote — bills into the per-shard vote span.
			vctx := d.billSpan(ctx, costReqTrace(req), vsp, s, "")
			verdict := "ok"
			for _, it := range items {
				var err error
				ups := []kv.Update{kv.Set{Name: attrTxnIntent, V: kv.N(id)}}
				// The intent conversion pins the group's routing
				// generation: once an intent is placed, the reshard
				// engine is already fenced out (it waits for live
				// transactions), so the guard only needs to reject a plan
				// routed with a superseded map.
				if guard := d.dynGuardMV(plan.mv, s); guard != nil {
					err = d.Locks.CommitUnlockTxGuard(vctx,
						[]fksync.TxPart{{Lock: it.lock, Updates: ups}}, guard)
				} else {
					_, err = d.Locks.CommitUnlock(vctx, it.lock, ups)
				}
				if err != nil {
					verdict = "fail:" + string(CodeSystemError)
					break // lease lost mid-prepare: isolation not guaranteed
				}
				it.intent = true
			}
			_, _ = d.Txns.Vote(vctx, id, s, verdict)
		})
	}
	wg.Wait()
	rec, found := d.Txns.Lookup(ctx, id)
	voteFail := !found || len(rec.Votes) < len(groups)
	for _, v := range rec.Votes {
		if v != "ok" {
			voteFail = true
		}
	}
	if voteFail {
		_ = d.Txns.Decide(ctx, id, txn.StatusPreparing, txn.StatusAborted, nil)
		plan.unlock(d, ctx) // locks that never became intents
		d.clearTxnMarks(ctx, id, plan.order)
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		if d.planWentStale(ctx, plan) {
			return errStaleRoute // re-route the whole transaction
		}
		d.respondFailure(req, CodeSystemError)
		return nil
	}
	// Decision: durable and exclusive. From here the transaction MUST
	// apply; every later step is idempotent and resumable by redelivery.
	if err := d.Txns.Decide(ctx, id, txn.StatusPreparing, txn.StatusCommitted, plan.resolved); err != nil {
		return nil // a resumed duplicate owns the record; let it drive
	}
	if d.crashInjected() || d.crashAt(obs.StageTxnCommit, req.Session, req.Seq) {
		return errInjectedCrash
	}
	return d.txnCommitDrive(ctx, req, id, plan.resolved, nil, false)
}

// txnCommitDrive executes phase 2 of a committed transaction — shared by
// the fresh path and record-based recovery (prior/repush set). Every step
// is conditional on record or item state, so partial progress by a
// crashed predecessor is absorbed, never double-applied.
func (d *Deployment) txnCommitDrive(ctx cloud.Ctx, req Request, id int64, resolved []txn.ResolvedOp, prior *txn.Record, repush bool) error {
	d.stageReq(req, obs.StageTxnCommit)
	t0 := d.K.Now()
	shards := effectfulShards(resolved)
	commits := map[int]int64{}
	ready := map[int]bool{}
	if prior != nil {
		for s, t := range prior.Commits {
			commits[s] = t
		}
		ready = prior.Ready
	}
	for _, s := range shards {
		_, pushed := commits[s]
		if pushed && (!repush || ready[s]) {
			continue
		}
		msg := leaderMsg{
			Session: req.Session, Seq: req.Seq, Op: OpTxnCommit, Shard: s,
			Path: anchorPath(resolved, s),
			NodeBlob: d.encodeTxnMsgOwned(txnMsg{
				ID: id, Ops: resolvedOfShard(resolved, s),
				traceID: obs.TraceOf(req.Session, req.Seq),
			}),
		}
		if d.dyn != nil {
			// Stamp the txid base so the shard's leader derives the same
			// txid the record holds (the generation is irrelevant here —
			// a committed transaction is applied regardless of reshards,
			// which wait for it instead).
			dynStamp(&msg, d.mapView())
		}
		r, err := d.pushToShard(ctx, msg)
		if err != nil {
			return err // redelivery re-drives from the record
		}
		if !pushed {
			_ = d.Txns.NoteCommit(ctx, id, s, r.txid)
			commits[s] = r.txid
		}
	}
	// The shared root's merged updates are coordinator-owned; then each
	// shard's items commit under the intent/mark guard. The leaders race
	// these writes with their own replays — first one wins.
	d.txnRootCommit(ctx, id, resolved, commits)
	for _, s := range shards {
		d.txnSysCommit(ctx, id, resolvedOfShard(resolved, s), commits[s])
	}
	if d.crashInjected() || d.crashAt(obs.StageTxnApply, req.Session, req.Seq) {
		return errInjectedCrash
	}
	// Barrier: every shard leader finished its commit phase (watches
	// claimed, epochs entered, pendings popped) — the storage-backed
	// ready markers, again the deregister-ack pattern.
	if _, ok := d.Txns.AwaitReady(ctx, id, len(shards)); !ok {
		return errTxnBarrier
	}
	// Atomic apply: one coalesced cache invalidation, then every
	// user-store write of the transaction in one batch.
	d.stageReq(req, obs.StageTxnApply)
	results := d.applyTxn(ctx, resolved, commits)
	_ = d.Txns.Decide(ctx, id, txn.StatusCommitted, txn.StatusApplied, nil)
	// Only now release the intents: conflicting writers were fenced until
	// the transaction became readable, deferred watch deliveries fire.
	d.clearTxnMarks(ctx, id, allItemPaths(resolved))
	d.applyEphRecords(ctx, resolved)
	d.notifyMulti(req, results, commits)
	d.Txns.Delete(ctx, id, req.Session, req.Seq)
	d.recordPhase("txn.commit", d.K.Now()-t0)
	return nil
}

// txnRootCommit applies the transaction's merged updates to the shared
// root item in one idempotent conditional write (see multiUpdates'
// skipRoot). Includes the root's pending append when the root itself is a
// target, so its shard's leader finds the transaction at the head.
func (d *Deployment) txnRootCommit(ctx cloud.Ctx, id int64, resolved []txn.ResolvedOp, commits map[int]int64) {
	var ups []kv.Update
	rootTarget := false
	var rootTxid int64
	for _, op := range resolved {
		txid := commits[op.Shard]
		switch {
		case op.Type == txn.OpSetData && op.Path == znode.Root:
			ups = append(ups,
				kv.Set{Name: attrVersion, V: kv.N(int64(op.Version))},
				kv.Set{Name: attrMzxid, V: kv.N(txid)})
			rootTarget = true
			rootTxid = txid
		case op.Type == txn.OpCreate && op.ParentPath == znode.Root:
			ups = append(ups, createParentUpdates(op.ChildAdd, txid)...)
		case op.Type == txn.OpDelete && op.ParentPath == znode.Root:
			ups = append(ups, deleteParentUpdates(op.ChildDel, txid)...)
		}
	}
	if len(ups) == 0 {
		return
	}
	if rootTarget {
		ups = append(ups, kv.ListAppend{Name: attrPending, Vals: []int64{rootTxid}})
	}
	ups = append(ups, kv.Set{Name: attrTxnCommitMark, V: kv.N(id)})
	_, _ = d.System.Update(ctx, nodeKey(znode.Root), ups, txnCommitCond(id))
}

// txnSysCommit applies one shard's system-store commit in a single
// transaction over its items, guarded per item by the intent/mark pair.
// A failed condition (false) means the racing replica — coordinator or
// leader replay, whichever lost — already applied it.
func (d *Deployment) txnSysCommit(ctx cloud.Ctx, id int64, ops []txn.ResolvedOp, txid int64) bool {
	touched, ups, _ := multiUpdates(ops, txid, true)
	if len(touched) == 0 {
		return false
	}
	txops := make([]kv.TxOp, 0, len(touched))
	for _, p := range touched {
		u := append(append([]kv.Update{}, ups[p]...), kv.Set{Name: attrTxnCommitMark, V: kv.N(id)})
		txops = append(txops, kv.TxOp{Key: nodeKey(p), Updates: u, Cond: txnCommitCond(id)})
	}
	return d.System.Transact(ctx, txops) == nil
}

// applyTxn is the commit point for readers: reload the per-region epoch
// unions (every participant's watch ids entered before its ready marker),
// fold the whole transaction, and distribute it atomically.
func (d *Deployment) applyTxn(ctx cloud.Ctx, resolved []txn.ResolvedOp, commits map[int]int64) []txn.Result {
	t0 := d.K.Now()
	epochs := map[cloud.Region][]int64{}
	for _, s := range d.Stores {
		e, _ := d.Epoch(ctx, s.Region())
		epochs[s.Region()] = e
	}
	fold, results := d.buildTxnFold(ctx, resolved, func(s int) int64 { return commits[s] }, map[string]sysNode{})
	d.distributeFold(ctx, fold, epochs, true)
	fold.release()
	d.recordPhase("txn.apply", d.K.Now()-t0)
	return results
}

// resumeTxn continues a redelivered coordinator from its durable record.
// done=false means the stale attempt was aborted and cleaned up and the
// caller should run a fresh transaction.
func (d *Deployment) resumeTxn(ctx cloud.Ctx, req Request, reqOps []txn.Op, id int64) (bool, error) {
	rec, found := d.Txns.Lookup(ctx, id)
	if !found {
		// The predecessor finished (the answer precedes collection); just
		// drop the dangling request pointer.
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		return true, nil
	}
	switch rec.Status {
	case txn.StatusPreparing:
		// Died mid-prepare: abort the attempt. Stray intents on
		// sequential-resolved paths self-heal through lockNodeClean.
		if err := d.Txns.Decide(ctx, id, txn.StatusPreparing, txn.StatusAborted, nil); err != nil {
			return true, nil // someone else owns the record now
		}
		d.clearTxnMarks(ctx, id, staticPaths(rec.Ops))
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		return false, nil
	case txn.StatusAborted:
		d.clearTxnMarks(ctx, id, staticPaths(rec.Ops))
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		d.respondMultiAbort(req, reqOps, -1, CodeTxnAborted)
		return true, nil
	case txn.StatusCommitted:
		return true, d.txnCommitDrive(ctx, req, id, rec.Resolved, &rec, true)
	case txn.StatusApplied:
		// Died between the apply and the answer: rebuild the results.
		fold, results := d.buildTxnFold(ctx, rec.Resolved,
			func(s int) int64 { return rec.Commits[s] }, map[string]sysNode{})
		fold.release()
		d.clearTxnMarks(ctx, id, allItemPaths(rec.Resolved))
		d.applyEphRecords(ctx, rec.Resolved)
		d.notifyMulti(req, results, rec.Commits)
		d.Txns.Delete(ctx, id, req.Session, req.Seq)
		return true, nil
	}
	return true, nil
}

// --- the leader side ---

// awaitTxnHeads resolves the push/commit race for a transaction message:
// every target node's pending head must become txid. Like awaitCommit it
// clears orphaned heads and replays the commit on behalf of a crashed
// coordinator — conditional on the fast path's timed locks or the
// cross-shard intents, whichever the message carries. shard/gen identify
// the message's routing for the dynamic foreign-head rule and the
// fast-path replay's generation guard.
func (d *Deployment) awaitTxnHeads(ctx cloud.Ctx, op OpCode, tm txnMsg, txid int64, shard int, gen int64) (map[string]sysNode, bool) {
	targets := txnTargets(tm.Ops)
	states := map[string]sysNode{}
	triedCommit := false
	for attempt := 0; attempt < 12; attempt++ {
		allOK := true
		for _, p := range targets {
			if _, done := states[p]; done {
				continue
			}
			it, ok := d.System.Get(ctx, nodeKey(p), true)
			if ok {
				node := decodeSysNode(it)
				if len(node.Pending) > 0 {
					head := node.Pending[0]
					if head == txid {
						states[p] = node
						continue
					}
					if d.dyn != nil && shardmap.ShardOfTxid(head) != shard {
						// Migration boundary: a foreign-shard head is a
						// live write of the path's new owner, never an
						// orphan of ours (see awaitCommit).
						allOK = false
						continue
					}
					if head < txid {
						_, _ = d.System.Update(ctx, nodeKey(p),
							[]kv.Update{kv.ListPopHead{Name: attrPending}},
							kv.NumListHeadEq{Name: attrPending, V: head})
						allOK = false
						continue
					}
					return nil, false // our entry was already consumed
				}
			}
			allOK = false
		}
		if allOK && len(states) == len(targets) {
			return states, true
		}
		if attempt >= 2 && !triedCommit {
			triedCommit = true
			d.tryCommitTxn(ctx, op, tm, txid, shard, gen)
			continue
		}
		d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
	}
	return nil, false
}

// tryCommitTxn replays a transaction message's system-store commit on
// behalf of a crashed coordinator: the fast path under the original timed
// locks (plus the routing-generation guard on a dynamic deployment, like
// tryCommit), a cross-shard shard under the intent/mark guard — never
// generation-guarded, because a durably committed transaction must stay
// appliable (the reshard engine waits live transactions out instead).
func (d *Deployment) tryCommitTxn(ctx cloud.Ctx, op OpCode, tm txnMsg, txid int64, shard int, gen int64) bool {
	if op == OpTxnCommit {
		return d.txnSysCommit(ctx, tm.ID, tm.Ops, txid)
	}
	// Fast path: rebuild the coordinator's multi-item CommitUnlockTx.
	_, ups, _ := multiUpdates(tm.Ops, txid, false)
	ts := map[string]int64{}
	for i, p := range tm.ItemPaths {
		if i < len(tm.LockTs) {
			ts[p] = tm.LockTs[i]
		}
	}
	txops := make([]kv.TxOp, 0, len(tm.ItemPaths))
	for _, p := range tm.ItemPaths {
		u := append(append([]kv.Update{}, ups[p]...), kv.Remove{Name: fksync.LockAttr})
		txops = append(txops, kv.TxOp{
			Key: nodeKey(p), Updates: u,
			Cond: kv.Eq{Name: fksync.LockAttr, V: kv.N(ts[p])},
		})
	}
	txops = append(txops, d.dynGuard(shard, gen)...)
	return d.System.Transact(ctx, txops) == nil
}

// leaderProcessMulti is the fast path's leader commit phase: await the
// multi-item commit, pre-fire watches, fold the whole transaction, and
// distribute it atomically within the shard's serialized pipeline.
func (d *Deployment) leaderProcessMulti(ctx cloud.Ctx, msg leaderMsg, tm txnMsg, txid int64, epochs map[cloud.Region][]int64) []watchCompletion {
	d.stageMsg(msg, obs.StageCommit)
	t0 := d.K.Now()
	states, ok := d.awaitTxnHeads(ctx, msg.Op, tm, txid, msg.Shard, dynGen(msg))
	d.recordPhase("leader.get", d.K.Now()-t0)
	if !ok {
		if d.staleDynMsg(ctx, msg, dynGen(msg)) {
			return nil // stranded by a reshard: the coordinator re-routes
		}
		d.notifyResult(msg, txid, CodeSystemError, znode.Stat{})
		return nil
	}
	// Watch ids enter the epoch counters before anything becomes readable
	// (the multi-shard pre-fire ordering; Z4 holds on every deployment).
	t0 = d.K.Now()
	var fired []firedWatch
	for _, op := range tm.Ops {
		if !op.Effectful() {
			continue
		}
		view := opMsgView(op)
		view.Shard = msg.Shard
		if d.fanoutOn() {
			d.fanoutPublish(ctx, view, txid, epochs)
			continue
		}
		f := d.queryWatches(ctx, view)
		d.appendEpochs(ctx, f, msg.Shard, epochs)
		fired = append(fired, f...)
	}
	d.recordPhase("leader.watchquery", d.K.Now()-t0)

	fold, results := d.buildTxnFold(ctx, tm.Ops, func(int) int64 { return txid }, states)
	d.stageMsg(msg, obs.StageFlush)
	t0 = d.K.Now()
	d.distributeFold(ctx, fold, epochs, true)
	d.recordPhase("leader.update", d.K.Now()-t0)
	if d.fanoutOn() {
		// The whole multi() is applied atomically above: every sub-op's
		// parked firings share this txid and release together.
		d.fanoutRelease(ctx, txid)
	}

	var comps []watchCompletion
	for _, f := range fired {
		payload := watchPayload{WatchID: f.wid, Event: f.event, Path: f.path, Txid: txid, Sessions: f.sessions}
		sp := d.tspan(d.msgTrace(msg), obs.SpanWatchDeliver, f.path, msg.Shard, "")
		fut := d.Platform.InvokeAsync(d.billSpan(ctx, costMsgTrace(msg), sp, msg.Shard, ""), FnWatch, d.encodeWatchOwned(payload))
		comps = append(comps, watchCompletion{wid: f.wid, fut: fut, span: sp})
	}

	// Pop each target's single pending entry; deleted nodes may be
	// collected — their user-store removal is already distributed, as in
	// the per-message pipeline.
	for _, p := range txnTargets(tm.Ops) {
		op := OpSetData
		if nf := fold.nodes[p]; nf != nil && nf.del {
			op = OpDelete
		}
		d.popPending(ctx, leaderMsg{Op: op, Path: p}, txid, true)
	}
	fold.release()
	d.stageMsg(msg, obs.StageRespond)
	resp := Response{
		Session: msg.Session, Seq: msg.Seq, Code: CodeOK, Path: msg.Path,
		Txid: txid, MultiResults: results,
	}
	if d.dyn != nil {
		resp.MapEpoch = d.mapView().Epoch
	}
	d.notify(msg.Session, resp, resp.wireSize())
	return comps
}

// leaderTxnCommit is one shard's commit phase of a cross-shard
// transaction: order it in the pipeline, claim watches and enter their
// ids, pop the pendings, and post the ready marker. The user-store apply
// belongs to the coordinator, so the leader NEVER blocks on other shards
// — watch deliveries defer themselves until the transaction is readable,
// each managing its own epoch exit (a blocking barrier here could
// deadlock two transactions crossing the same pair of shard queues in
// opposite orders).
func (d *Deployment) leaderTxnCommit(ctx cloud.Ctx, msg leaderMsg, tm txnMsg, txid int64, epochs map[cloud.Region][]int64) []watchCompletion {
	rec, found := d.Txns.Lookup(ctx, tm.ID)
	if !found || rec.Ready[msg.Shard] {
		return nil // duplicate delivery of a finished commit phase
	}
	if t, ok := rec.Commits[msg.Shard]; ok {
		txid = t // a re-pushed message: the first push's txid is authoritative
	}
	// The shard's whole commit phase is one child span of the originating
	// multi()'s tree (msgTrace resolves OpTxnCommit to that trace): the
	// per-shard legs of a cross-shard 2PC show up side by side. Its
	// charges — head polls, watch claims, pending pops, the ready marker —
	// bill into the same span.
	ssp := d.tspan(d.msgTrace(msg), obs.SpanTxnShard, msg.Path, msg.Shard, "")
	ctx = d.billSpan(ctx, costMsgTrace(msg), ssp, msg.Shard, "")
	t0 := d.K.Now()
	_, ok := d.awaitTxnHeads(ctx, msg.Op, tm, txid, msg.Shard, dynGen(msg))
	d.recordPhase("leader.get", d.K.Now()-t0)
	if !ok {
		// The coordinator died before its commit write and the intent
		// replay could not land; redelivery will re-drive us.
		d.spanEnd(ssp)
		return nil
	}
	t0 = d.K.Now()
	var fired []firedWatch
	fanoutPublished := false
	for _, op := range tm.Ops {
		if !op.Effectful() {
			continue
		}
		view := opMsgView(op)
		view.Shard = msg.Shard
		if d.fanoutOn() {
			d.fanoutPublish(ctx, view, txid, epochs)
			fanoutPublished = true
			continue
		}
		f := d.queryWatches(ctx, view)
		d.appendEpochs(ctx, f, msg.Shard, epochs)
		fired = append(fired, f...)
	}
	d.recordPhase("leader.watchquery", d.K.Now()-t0)
	// Pop pendings but never collect tombstones here: the intent must
	// keep fencing the path until the coordinator's atomic apply, and
	// collecting the item would drop it.
	for _, p := range txnTargets(tm.Ops) {
		d.popPending(ctx, leaderMsg{Op: OpSetData, Path: p}, txid, false)
	}
	_, _ = d.Txns.Ready(ctx, tm.ID, msg.Shard)
	d.spanEnd(ssp)
	if fanoutPublished {
		// Fan-out tier: the release defers itself until the coordinator's
		// atomic apply makes the transaction readable — the same ordering
		// the legacy post-apply delivery batch below enforces. The nodes
		// own delivery and epoch exit from there.
		d.K.Go("txn-fanout-release", func() {
			for {
				if _, _, ok := d.Txns.AwaitStatus(ctx, tm.ID, txn.StatusApplied); ok {
					break
				}
			}
			d.fanoutRelease(ctx, txid)
		})
	}
	if len(fired) > 0 {
		// One post-apply delivery batch for the whole shard: a single
		// goroutine polls the record once (instead of one poller per
		// watch), launches every delivery in parallel once the
		// transaction is readable, and — after all of them complete —
		// exits every watch id from each region's epoch counter in ONE
		// atomic list-remove per region instead of one per watch. Same
		// Z4 ordering (no delivery before the apply, no epoch exit before
		// its delivery completes), a per-shard-constant number of epoch
		// writes for watch-heavy transactional workloads.
		fired := fired
		tr := d.msgTrace(msg)
		ctr := costMsgTrace(msg)
		d.txnWatchBatches++
		d.txnWatchDeliveries += int64(len(fired))
		d.K.Go("txn-watch-batch", func() {
			// A missing record counts as applied (finished + collected).
			// A timed-out poll (ok=false) means the coordinator is still
			// being re-driven by redelivery: keep waiting — delivering
			// before the apply would notify a change that is not yet
			// readable (Z4).
			for {
				if _, _, ok := d.Txns.AwaitStatus(ctx, tm.ID, txn.StatusApplied); ok {
					break
				}
			}
			futs := make([]*sim.Future[error], 0, len(fired))
			wids := make([]int64, 0, len(fired))
			spans := make([]int64, 0, len(fired))
			for _, f := range fired {
				payload := watchPayload{WatchID: f.wid, Event: f.event, Path: f.path, Txid: txid, Sessions: f.sessions}
				sp := d.tspan(tr, obs.SpanWatchDeliver, f.path, msg.Shard, "")
				spans = append(spans, sp)
				futs = append(futs, d.Platform.InvokeAsync(d.billSpan(ctx, ctr, sp, msg.Shard, ""), FnWatch, d.encodeWatchOwned(payload)))
				wids = append(wids, f.wid)
			}
			for i, fut := range futs {
				_ = fut.Wait()
				d.spanEnd(spans[i])
			}
			for _, s := range d.Stores {
				_, _ = d.System.Update(ctx, epochKey(s.Region(), msg.Shard),
					[]kv.Update{kv.ListRemove{Name: attrEpochList, Vals: wids}}, nil)
			}
		})
	}
	return nil
}
