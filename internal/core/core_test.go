package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

func TestRequestEncodeDecode(t *testing.T) {
	r := Request{
		Session: "s1", Seq: 42, Op: OpCreate, Path: "/a/b",
		Data: []byte{1, 2, 3}, Version: -1, Flags: znode.FlagEphemeral,
	}
	got, err := DecodeRequest(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != "s1" || got.Seq != 42 || got.Op != OpCreate ||
		got.Path != "/a/b" || !bytes.Equal(got.Data, r.Data) ||
		got.Version != -1 || got.Flags != znode.FlagEphemeral {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeRequest([]byte("not json")); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestLeaderMsgEncodeDecode(t *testing.T) {
	m := leaderMsg{
		Session: "s", Seq: 7, Op: OpSetData, Path: "/x",
		NodeBlob: []byte{9, 9}, ParentPath: "/", ChildAdd: "x",
		LockTs: 123, ParentLockTs: 456, Version: 3, Cversion: 2, EphOwner: "s",
	}
	got, err := decodeLeaderMsg(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.LockTs != 123 || got.ParentLockTs != 456 || got.Version != 3 ||
		!bytes.Equal(got.NodeBlob, m.NodeBlob) || got.EphOwner != "s" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCodeErrorMapping(t *testing.T) {
	cases := []struct {
		code Code
		err  error
	}{
		{CodeOK, nil},
		{CodeNodeExists, ErrNodeExists},
		{CodeNoNode, ErrNoNode},
		{CodeBadVersion, ErrBadVersion},
		{CodeNotEmpty, ErrNotEmpty},
		{CodeNoChildrenEph, ErrNoChildrenEph},
		{CodeTooLarge, ErrTooLarge},
		{CodeSystemError, ErrSystemError},
	}
	for _, c := range cases {
		got := CodeError(c.code)
		if c.err == nil {
			if got != nil {
				t.Errorf("CodeError(%s) = %v", c.code, got)
			}
			continue
		}
		if !errors.Is(got, c.err) {
			t.Errorf("CodeError(%s) = %v, want %v", c.code, got, c.err)
		}
	}
}

func TestWatchIDStableAndDistinct(t *testing.T) {
	a := WatchID("/x", WatchData)
	b := WatchID("/x", WatchData)
	if a != b {
		t.Fatal("WatchID not deterministic")
	}
	if a < 0 {
		t.Fatal("WatchID must be non-negative")
	}
	if WatchID("/x", WatchChild) == a || WatchID("/y", WatchData) == a {
		t.Fatal("WatchID collisions across type/path")
	}
}

func newTestDeployment(seed int64, cfg Config) (*sim.Kernel, *Deployment) {
	k := sim.NewKernel(seed)
	return k, NewDeployment(k, cfg)
}

func TestDeploymentSeedsRoot(t *testing.T) {
	k, d := newTestDeployment(1, Config{})
	ctx := cloud.ClientCtx(d.Cfg.Profile.Home)
	var rootOK bool
	k.Go("check", func() {
		n, _, err := d.PrimaryStore().Read(ctx, znode.Root)
		rootOK = err == nil && n.Path == znode.Root
	})
	k.Run()
	k.Shutdown()
	if !rootOK {
		t.Fatal("root not seeded in user store")
	}
	if it, ok := d.System.Peek(nodeKey(znode.Root)); !ok || it[attrExists].Num != 1 {
		t.Fatal("root not seeded in system store")
	}
}

func userStoreKinds() []StoreKind {
	return []StoreKind{StoreObject, StoreKV, StoreHybrid, StoreMem}
}

func TestUserStoreRoundTripAllKinds(t *testing.T) {
	for _, kind := range userStoreKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			k := sim.NewKernel(3)
			env := cloud.NewEnv(k, cloud.AWSProfile())
			var s UserStore
			switch kind {
			case StoreObject:
				s = NewObjectStore(env, "u", cloud.RegionAWSHome)
			case StoreKV:
				s = NewKVStore(env, "u", cloud.RegionAWSHome)
			case StoreHybrid:
				s = NewHybridStore(env, "u", cloud.RegionAWSHome, 4096)
			case StoreMem:
				s = NewMemStore(env, cloud.RegionAWSHome)
			}
			ctx := cloud.ClientCtx(cloud.RegionAWSHome)
			k.Go("rt", func() {
				small := &znode.Node{Path: "/small", Data: []byte("hello"),
					Stat: znode.Stat{Mzxid: 5, Version: 1}, Children: []string{"c1"}}
				big := &znode.Node{Path: "/big", Data: make([]byte, 64*1024),
					Stat: znode.Stat{Mzxid: 6}}
				if err := s.Write(ctx, small, []int64{11}); err != nil {
					t.Errorf("write small: %v", err)
				}
				if err := s.Write(ctx, big, nil); err != nil {
					t.Errorf("write big: %v", err)
				}
				n, stamp, err := s.Read(ctx, "/small")
				if err != nil || string(n.Data) != "hello" || n.Stat.Mzxid != 5 {
					t.Errorf("read small: %+v %v", n, err)
				}
				if len(stamp) != 1 || stamp[0] != 11 {
					t.Errorf("stamp: %v", stamp)
				}
				nb, _, err := s.Read(ctx, "/big")
				if err != nil || len(nb.Data) != 64*1024 {
					t.Errorf("read big: %v", err)
				}
				if nb.Stat.DataLength != 64*1024 {
					t.Errorf("big DataLength = %d", nb.Stat.DataLength)
				}
				if err := s.Delete(ctx, "/small"); err != nil {
					t.Errorf("delete: %v", err)
				}
				if _, _, err := s.Read(ctx, "/small"); !errors.Is(err, ErrUserNoNode) {
					t.Errorf("read deleted: %v", err)
				}
			})
			k.Run()
			k.Shutdown()
		})
	}
}

func TestHybridStoreSpillsLargeNodes(t *testing.T) {
	k := sim.NewKernel(4)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	s := NewHybridStore(env, "u", cloud.RegionAWSHome, 4096).(*hybridStore)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("rt", func() {
		small := &znode.Node{Path: "/s", Data: make([]byte, 1000)}
		large := &znode.Node{Path: "/l", Data: make([]byte, 10000)}
		s.Write(ctx, small, nil)
		s.Write(ctx, large, nil)
		if _, spilled := s.bucket.Peek("/s"); spilled {
			t.Error("small node spilled to object store")
		}
		if _, spilled := s.bucket.Peek("/l"); !spilled {
			t.Error("large node not spilled")
		}
		// Shrinking a node must clean its spill object.
		large.Data = make([]byte, 100)
		s.Write(ctx, large, nil)
		if _, spilled := s.bucket.Peek("/l"); spilled {
			t.Error("stale spill object after shrink")
		}
		n, _, err := s.Read(ctx, "/l")
		if err != nil || len(n.Data) != 100 {
			t.Errorf("read after shrink: %v len=%d", err, len(n.Data))
		}
	})
	k.Run()
	k.Shutdown()
}

func TestHybridReadLatencySplit(t *testing.T) {
	// Small nodes must be served by one fast KV read; large nodes pay the
	// second object-store request (Section 4.2).
	k := sim.NewKernel(5)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	s := NewHybridStore(env, "u", cloud.RegionAWSHome, 4096)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	var tSmall, tLarge sim.Time
	k.Go("m", func() {
		s.Write(ctx, &znode.Node{Path: "/s", Data: make([]byte, 1024)}, nil)
		s.Write(ctx, &znode.Node{Path: "/l", Data: make([]byte, 100*1024)}, nil)
		n := 30
		t0 := k.Now()
		for i := 0; i < n; i++ {
			s.Read(ctx, "/s")
		}
		tSmall = (k.Now() - t0) / sim.Time(n)
		t0 = k.Now()
		for i := 0; i < n; i++ {
			s.Read(ctx, "/l")
		}
		tLarge = (k.Now() - t0) / sim.Time(n)
	})
	k.Run()
	k.Shutdown()
	if tLarge < 2*tSmall {
		t.Fatalf("hybrid large read %v not >> small read %v", tLarge, tSmall)
	}
	if tSmall > 10*time.Millisecond {
		t.Fatalf("hybrid small read too slow: %v", tSmall)
	}
}

func TestRegisterWatchAndEpoch(t *testing.T) {
	k, d := newTestDeployment(6, Config{})
	ctx := cloud.ClientCtx(d.Cfg.Profile.Home)
	var wid int64
	var epoch []int64
	k.Go("w", func() {
		var err error
		wid, err = d.RegisterWatch(ctx, "/cfg", WatchData, "s1")
		if err != nil {
			t.Errorf("register: %v", err)
		}
		epoch, _ = d.Epoch(ctx, d.Cfg.Profile.Home)
	})
	k.Run()
	k.Shutdown()
	if wid != WatchID("/cfg", WatchData) {
		t.Fatalf("wid = %d", wid)
	}
	if len(epoch) != 0 {
		t.Fatalf("epoch should start empty: %v", epoch)
	}
	it, ok := d.System.Peek(watchKey("/cfg"))
	if !ok || len(it[attrWatchData].SL) != 1 || it[attrWatchData].SL[0] != "s1" {
		t.Fatalf("watch item: %v", it)
	}
}

func TestCacheModeValidation(t *testing.T) {
	// Known modes (plus the "off" spelling) pass and normalize.
	for _, m := range []CacheMode{CacheOff, "off", CacheRegional, CacheTwoLevel} {
		c := Config{CacheMode: m}
		c.defaults()
		if m == "off" && c.CacheMode != CacheOff {
			t.Errorf("%q did not normalize to CacheOff", m)
		}
	}
	// A typo must fail loudly instead of silently deploying the wrong tier.
	for _, m := range []CacheMode{"OFF", "none", "twolevel", "two_level"} {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CacheMode %q accepted, want panic", m)
				}
			}()
			c := Config{CacheMode: m}
			c.defaults()
		}()
	}
}
