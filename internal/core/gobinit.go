package core

import (
	"encoding/gob"
	"io"

	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/txn"
)

// init pins encoding/gob's process-global type-id assignment for every
// wire type the deployment gob-encodes. Gob allocates type ids from a
// global counter in first-use order, and the ids appear (varint-encoded)
// in every encoded stream — so without pinning, the byte size of e.g. a
// transaction's resolved-op blob depends on which message types some
// EARLIER simulation in the same process happened to encode first. Billed
// payload sizes feed the virtual-time cost model, so that spills process
// history into simulated time and breaks cross-run determinism (the same
// seed replays differently depending on what ran before it).
//
// The order below matches the natural first-use order of the
// paper-faithful pipeline (client request, leader queue message, watch
// delivery), so the pinned golden trace is unchanged; the transaction,
// shard-map, and txn-record types follow in fixed order.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{
		Request{},
		leaderMsg{},
		watchPayload{},
		txnMsg{},
		[]txn.Op{},
		[]txn.ResolvedOp{},
		&shardmap.Map{},
	} {
		if err := enc.Encode(v); err != nil {
			panic("core: gob type pinning: " + err.Error())
		}
	}
}
