package core

import (
	"fmt"
	"math/rand"
	"testing"

	"faaskeeper/internal/znode"
)

// TestShardOfParentChildColocated: the routing invariant everything rests
// on — a node and every descendant map to the same shard, for any shard
// count, so no create/delete/sequential-counter operation spans shards.
func TestShardOfParentChildColocated(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	segs := []string{"a", "services", "locks", "config", "t17", "x-y_z", "0"}
	for iter := 0; iter < 2000; iter++ {
		// Build a random path of depth 1..5.
		depth := 1 + r.Intn(5)
		path := ""
		for i := 0; i < depth; i++ {
			path += "/" + segs[r.Intn(len(segs))] + fmt.Sprint(r.Intn(4))
		}
		for _, n := range []int{1, 2, 3, 4, 8, 16} {
			got := ShardOf(path, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", path, n, got)
			}
			parent := znode.Parent(path)
			if parent != znode.Root {
				if p := ShardOf(parent, n); p != got {
					t.Fatalf("parent %q on shard %d, child %q on shard %d (n=%d)",
						parent, p, path, got, n)
				}
			}
		}
	}
}

// TestShardOfSingleShardAndRoot: the degenerate cases are pinned — one
// shard routes everything to 0, and the root itself lives on shard 0.
func TestShardOfSingleShardAndRoot(t *testing.T) {
	for _, p := range []string{"/", "/a", "/a/b/c", "/deep/er/path"} {
		if s := ShardOf(p, 1); s != 0 {
			t.Errorf("ShardOf(%q, 1) = %d, want 0", p, s)
		}
	}
	for _, n := range []int{1, 2, 8} {
		if s := ShardOf(znode.Root, n); s != 0 {
			t.Errorf("ShardOf(/, %d) = %d, want 0", n, s)
		}
	}
}

// TestShardOfDeterministicAndSpread: routing is a pure function (client
// and follower compute it independently) and a modest number of subtrees
// populates every shard.
func TestShardOfDeterministicAndSpread(t *testing.T) {
	if ShardOf("/a/b", 8) != ShardOf("/a/b", 8) {
		t.Fatal("ShardOf not deterministic")
	}
	const n = 8
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[ShardOf(fmt.Sprintf("/t%d", i), n)] = true
	}
	if len(seen) != n {
		t.Errorf("200 subtrees hit only %d of %d shards", len(seen), n)
	}
}

// TestShardTxidUniqueAndOrdered: txids from different shards never
// collide, stay strictly increasing within a shard, and collapse to the
// raw queue sequence number in the single-shard configuration.
func TestShardTxidUniqueAndOrdered(t *testing.T) {
	const n = 8
	seen := map[int64]bool{}
	for shard := 0; shard < n; shard++ {
		prev := int64(-1)
		for seq := int64(1); seq <= 100; seq++ {
			txid := shardTxid(seq, shard, n)
			if seen[txid] {
				t.Fatalf("txid %d collides (shard %d seq %d)", txid, shard, seq)
			}
			seen[txid] = true
			if txid <= prev {
				t.Fatalf("txid not increasing within shard %d: %d after %d", shard, txid, prev)
			}
			prev = txid
		}
	}
	for seq := int64(1); seq <= 10; seq++ {
		if shardTxid(seq, 0, 1) != seq {
			t.Fatal("single-shard txid must equal the queue sequence number")
		}
	}
}

// TestDeploymentProvisionsShards: the deployment wires one ordered queue
// per shard, keeps the paper's queue name for the single-shard layout, and
// defaults to one shard.
func TestDeploymentProvisionsShards(t *testing.T) {
	_, d := newTestDeployment(11, Config{})
	if d.NumShards() != 1 || d.LeaderQs[0].Name() != "leader" {
		t.Fatalf("default deployment: %d shards, queue %q", d.NumShards(), d.LeaderQs[0].Name())
	}
	_, d4 := newTestDeployment(12, Config{WriteShards: 4})
	if d4.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", d4.NumShards())
	}
	for i, q := range d4.LeaderQs {
		if q.Name() != fmt.Sprintf("leader-%d", i) {
			t.Errorf("shard %d queue named %q", i, q.Name())
		}
		if !q.Ordered() {
			t.Errorf("shard %d queue not ordered", i)
		}
	}
}
