package core

import (
	"fmt"
	"strings"

	"faaskeeper/internal/cache"
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// leaderHandler is Algorithm 2: for each validated change it verifies the
// system-store commit (➊/➋), distributes the new data to every region's
// user store (➌), queries and fires watches (➍), notifies the client, and
// pops the per-node transaction (➎). Watch deliveries finish before the
// function returns, removing their ids from the epoch counters (➏).
type watchCompletion struct {
	wid int64
	fut *sim.Future[error]
	// span is the delivery's telemetry child span (0 with telemetry off),
	// opened at InvokeAsync and closed when the completion is reaped.
	span int64
}

// decodedMsg is one peeled leader-queue message with its derived txid.
type decodedMsg struct {
	msg  leaderMsg
	txid int64
}

func (d *Deployment) leaderHandler(inv *faas.Invocation) error {
	ctx := inv.Ctx
	// A batch comes from exactly one shard's queue; decoding is free, so
	// peel the messages first to learn the shard.
	msgs := make([]decodedMsg, 0, len(inv.Messages))
	shard := 0
	acksOnly := true
	for _, m := range inv.Messages {
		msg, err := decodeLeaderMsgWith(d.Cfg.codec, m.Body)
		if err != nil {
			continue
		}
		shard = msg.Shard
		if msg.Op != OpDeregister && msg.Op != OpReshardFence {
			acksOnly = false
		}
		msgs = append(msgs, decodedMsg{msg: msg, txid: d.msgTxid(m.SeqNo, msg)})
	}
	if len(msgs) == 0 {
		return nil
	}
	if d.costOn() {
		traces := make([]int64, 0, len(msgs))
		for _, dm := range msgs {
			traces = append(traces, costMsgTrace(dm.msg))
		}
		// The sandbox's GB-s and the batch-shared work below (epoch loads,
		// epoch removals after watch deliveries) amortize across the
		// batch's requests; per-message phases re-sink to their own trace.
		inv.Bill = d.invBill(traces, shard)
		ctx = d.billFold(ctx, traces, shard, "")
	}
	// Crash at batch start, before any message is processed or any epoch
	// entered: redelivery replays the whole batch through awaitCommit's
	// orphan/TryCommit path. Later crash windows are unsafe to fake at
	// this granularity (a watch already launched would strand its epoch
	// entry), so leader crashes are injected only here.
	if d.crashAt(obs.StageCommit, msgs[0].msg.Session, msgs[0].msg.Seq) {
		return errInjectedCrash
	}
	// Load the per-region epoch counters once per batch; they are
	// maintained in the system store across invocations (functions are
	// stateless) and mirrored here while the batch runs. With several
	// shards the per-region stamp is the union over every shard's list: a
	// strongly consistent read at batch start sees every watch id whose
	// notification causally precedes this batch's writes (the client that
	// triggered a write observed its previous response only after the
	// firing shard appended the id), so reads of any node still hold for
	// undelivered cross-shard notifications (Z4). On a multi-shard
	// deployment, batches of pure deregistration acks never touch epochs
	// and skip the reads (the single-shard path keeps them so it stays
	// operation-for-operation identical to the paper's pipeline).
	epochs := make(map[cloud.Region][]int64, len(d.Stores))
	if !acksOnly || d.NumShards() == 1 {
		if n := d.NumShards(); n == 1 {
			for _, s := range d.Stores {
				epochs[s.Region()] = d.epochShard(ctx, s.Region(), shard)
			}
		} else {
			cells := make([][]int64, len(d.Stores)*n)
			wg := sim.NewWaitGroup(d.K)
			for ri, s := range d.Stores {
				r := s.Region()
				for sh := 0; sh < n; sh++ {
					ri, sh := ri, sh
					wg.Add(1)
					d.K.Go("leader-epoch-load", func() {
						defer wg.Done()
						cells[ri*n+sh] = d.epochShard(ctx, r, sh)
					})
				}
			}
			wg.Wait()
			for ri, s := range d.Stores {
				var union []int64
				for sh := 0; sh < n; sh++ {
					union = append(union, cells[ri*n+sh]...)
				}
				epochs[s.Region()] = union
			}
		}
	}
	var completions []watchCompletion
	if d.Cfg.BatchWrites {
		// Batching distributor: per-message commit phases fold into one
		// (or a few, per MaxBatch) batch-level distributions. The paper's
		// per-message path below stays untouched — with BatchWrites off
		// the pipeline is byte-identical (golden trace test).
		completions = d.leaderProcessBatched(ctx, msgs, epochs)
	} else {
		for _, dm := range msgs {
			if dm.msg.Op == OpReshardFence {
				// Every earlier message of this serialized queue has been
				// fully processed and distributed: release the reshard
				// coordinator.
				d.ackFence(d.billSys(ctx, shard), dm.msg)
				continue
			}
			tTotal := d.K.Now()
			comps := d.leaderProcess(d.billMsg(ctx, dm.msg), dm.msg, dm.txid, epochs)
			completions = append(completions, comps...)
			d.recordPhase("leader.total", d.K.Now()-tTotal)
		}
	}
	// WaitAll(WatchCallback): every delivery completes before the function
	// returns, and its id leaves the epoch counter (➏).
	for _, c := range completions {
		_ = c.fut.Wait()
		d.spanEnd(c.span)
		for _, s := range d.Stores {
			r := s.Region()
			_, err := d.System.Update(ctx, epochKey(r, shard),
				[]kv.Update{kv.ListRemove{Name: attrEpochList, Vals: []int64{c.wid}}}, nil)
			if err != nil {
				return err
			}
			epochs[r] = removeID(epochs[r], c.wid)
		}
	}
	return nil
}

func (d *Deployment) leaderProcess(ctx cloud.Ctx, msg leaderMsg, txid int64, epochs map[cloud.Region][]int64) []watchCompletion {
	if msg.Op == OpMulti || msg.Op == OpTxnCommit {
		tm, err := decodeTxnMsgWith(d.Cfg.codec, msg.NodeBlob)
		if err != nil {
			return nil
		}
		if msg.Op == OpMulti {
			// A single-shard multi(): the fast path's leader commit phase.
			return d.leaderProcessMulti(ctx, msg, tm, txid, epochs)
		}
		// One shard's share of a cross-shard transaction commit.
		return d.leaderTxnCommit(ctx, msg, tm, txid, epochs)
	}
	if msg.Op == OpDeregister {
		if d.deregAckComplete(ctx, msg) {
			d.notifyResult(msg, txid, CodeOK, znode.Stat{})
		}
		return nil
	}
	// ➊ Fetch the node's control record and verify our transaction is the
	// head of its pending list (➋ trying to commit on behalf of a crashed
	// follower when it is not).
	d.stageMsg(msg, obs.StageCommit)
	t0 := d.K.Now()
	node, committed := d.awaitCommit(ctx, msg, txid)
	d.recordPhase("leader.get", d.K.Now()-t0)
	if !committed {
		if d.staleDynMsg(ctx, msg, dynGen(msg)) {
			// Stranded by a reshard. A live follower saw its commit fail
			// the generation guard and owns the re-route — answering here
			// would race the retry's response. But a follower that died
			// between push and commit never retries (the push marked the
			// request processed, so queue redelivery dedups it away); its
			// tell is the message's own lock timestamps still on the node.
			// Reclaiming those locks decides the race exactly once.
			if d.reclaimFencedMsg(ctx, msg) {
				d.notifyResult(msg, txid, CodeSystemError, znode.Stat{})
			}
			return nil
		}
		d.notifyResult(msg, txid, CodeSystemError, znode.Stat{})
		return nil
	}

	// On a multi-shard deployment, watches are claimed and their ids
	// entered into the epoch counters BEFORE the value is distributed:
	// once another client can read the new value, the id is already
	// visible to every shard's batch-start epoch union, so a write that
	// causally follows that read — even on another shard — is stamped
	// with the in-flight id and reads of it hold for the notification
	// (Z4). The single-shard leader is serialized and keeps the paper's
	// original distribute-then-query order.
	preFire := d.NumShards() > 1
	var fired []firedWatch
	if d.fanoutOn() {
		// Fan-out tier: one notification record per (path, txid) to the
		// regional nodes — published before distribution so the epoch
		// stamps land in the value writes (Z4), exactly like the
		// pre-fire path. The node owns delivery; the leader never
		// enumerates sessions and launches no watch function.
		t0 = d.K.Now()
		d.fanoutPublish(ctx, msg, txid, epochs)
		d.recordPhase("leader.watchquery", d.K.Now()-t0)
	} else if preFire {
		t0 = d.K.Now()
		fired = d.queryWatches(ctx, msg)
		d.appendEpochs(ctx, fired, msg.Shard, epochs)
		d.recordPhase("leader.watchquery", d.K.Now()-t0)
	}

	// ➌ Distribute the change to the user stores of every region in
	// parallel, stamped with that region's in-flight watch ids.
	d.stageMsg(msg, obs.StageFlush)
	t0 = d.K.Now()
	stat := d.updateUserStores(ctx, msg, txid, node, epochs)
	d.recordPhase("leader.update", d.K.Now()-t0)

	// ➍ Query watches (if not pre-claimed above) and launch deliveries.
	if d.fanoutOn() {
		// The change is readable everywhere: let the nodes deliver.
		d.fanoutRelease(ctx, txid)
	} else if !preFire {
		t0 = d.K.Now()
		fired = d.queryWatches(ctx, msg)
		d.recordPhase("leader.watchquery", d.K.Now()-t0)
	}

	var comps []watchCompletion
	for _, f := range fired {
		if !preFire {
			// The paper's interleaving: enter each id into the epoch
			// counters right before launching its delivery.
			d.appendEpochs(ctx, []firedWatch{f}, msg.Shard, epochs)
		}
		payload := watchPayload{
			WatchID: f.wid, Event: f.event, Path: f.path, Txid: txid, Sessions: f.sessions,
		}
		sp := d.tspan(d.msgTrace(msg), obs.SpanWatchDeliver, f.path, msg.Shard, "")
		// The delivery's whole cost — invocation, fan-out pushes, the watch
		// sandbox's GB-s — rides the propagated sink into this span.
		wctx := d.billSpan(ctx, costMsgTrace(msg), sp, msg.Shard, "")
		fut := d.Platform.InvokeAsync(wctx, FnWatch, d.encodeWatchOwned(payload))
		comps = append(comps, watchCompletion{wid: f.wid, fut: fut, span: sp})
	}

	// Notify the client of success.
	t0 = d.K.Now()
	d.notifyResult(msg, txid, CodeOK, stat)
	d.recordPhase("leader.notify", d.K.Now()-t0)

	d.popPending(ctx, msg, txid, true)
	return comps
}

// popPending is step ➎: pop the transaction from the node's pending list;
// once empty on a deleted node, garbage collect the tombstone (gc false
// suppresses the collection — the batched pipeline passes it when a later
// operation in the same invocation targets the path, whose commit may not
// have appended to the pending list yet).
func (d *Deployment) popPending(ctx cloud.Ctx, msg leaderMsg, txid int64, gc bool) {
	t0 := d.K.Now()
	key := nodeKey(msg.Path)
	it, err := d.System.Update(ctx, key,
		[]kv.Update{kv.ListPopHead{Name: attrPending}},
		kv.NumListHeadEq{Name: attrPending, V: txid})
	if err == nil && gc && msg.Op == OpDelete {
		after := decodeSysNode(it)
		if !after.Exists && len(after.Pending) == 0 {
			// The lock guard keeps the collection from racing a pipelined
			// re-create: a follower validating create-after-delete holds
			// the node lock from before its push until its commit, and
			// deleting the item in that window would strand the commit
			// (its conditional update needs the lock attribute to
			// survive). A locked tombstone is simply left for the next
			// delete's collection.
			_ = d.System.Delete(ctx, key, kv.And{
				kv.Eq{Name: attrExists, V: kv.N(0)},
				kv.Eq{Name: attrPending, V: kv.NumList()},
				kv.AttrNotExists{Name: "lock"},
			})
		}
	}
	d.recordPhase("leader.pop", d.K.Now()-t0)
}

// deregAckComplete processes one shard's deregistration ack and reports
// whether the whole fanout is now complete (the caller then answers the
// client). Each copy is FIFO-ordered behind the session's ephemeral
// deletions on its shard, so completion implies every deletion has been
// distributed. The barrier is a system-store item — functions are
// stateless — holding "<deregID>/<shard>" markers: the atomic append is
// idempotent under queue-retry redelivery (markers are counted as a set)
// and markers from an abandoned earlier fanout carry a different id, so
// they can never satisfy this one.
func (d *Deployment) deregAckComplete(ctx cloud.Ctx, msg leaderMsg) bool {
	if msg.Fanout <= 1 {
		// Single-shard ack: the queue order alone is the barrier, exactly
		// the paper's unsharded deregistration path.
		return true
	}
	mark := fmt.Sprintf("%d/%d", msg.DeregID, msg.Shard)
	it, err := d.System.Update(ctx, deregKey(msg.Session),
		[]kv.Update{kv.StrListAppend{Name: attrDeregAcks, Vals: []string{mark}}}, nil)
	if err != nil {
		return false
	}
	prefix := fmt.Sprintf("%d/", msg.DeregID)
	seen := map[string]bool{}
	for _, m := range it[attrDeregAcks].SL {
		if strings.HasPrefix(m, prefix) {
			seen[m] = true
		}
	}
	if len(seen) < msg.Fanout {
		return false
	}
	_ = d.System.Delete(ctx, deregKey(msg.Session), nil)
	return true
}

// awaitCommit resolves the race between the push (③, which intentionally
// precedes the commit ④) and the leader observing the transaction. It
// polls the node's pending list, replays the commit on behalf of a
// follower that appears to have died (➋), and clears orphaned pending
// heads left behind by transactions the leader previously abandoned —
// without this last step a single lost transaction would wedge the node's
// pipeline forever.
func (d *Deployment) awaitCommit(ctx cloud.Ctx, msg leaderMsg, txid int64) (sysNode, bool) {
	const attempts = 10
	triedCommit := false
	for attempt := 0; attempt < attempts; attempt++ {
		it, ok := d.System.GetView(ctx, nodeKey(msg.Path), true)
		if ok {
			node := decodeSysNode(it)
			if len(node.Pending) > 0 {
				head := node.Pending[0]
				if head == txid {
					return node, true
				}
				if d.dyn != nil && shardmap.ShardOfTxid(head) != msg.Shard {
					// A migration boundary: the head was minted by another
					// shard, and txids across shards carry no order — the
					// head is a live write of the path's new owner, never
					// an orphan of ours. Keep polling (an uncommitted
					// stray of this shard gives up and is dropped).
					d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
					continue
				}
				if head < txid {
					// Orphan from an abandoned transaction: pop and retry.
					_, _ = d.System.Update(ctx, nodeKey(msg.Path),
						[]kv.Update{kv.ListPopHead{Name: attrPending}},
						kv.NumListHeadEq{Name: attrPending, V: head})
					continue
				}
				// head > txid: our entry was already consumed (a duplicate
				// delivery after a retry); treat as not committed.
				return sysNode{}, false
			}
		}
		// Nothing pending: the follower's commit may still be in flight,
		// or the follower died after pushing. After a short grace period,
		// replay the commit ourselves (➋); whichever of the two
		// conditional commits lands first wins and the next poll decides.
		if attempt >= 2 && !triedCommit {
			triedCommit = true
			d.tryCommit(ctx, msg, txid)
			continue
		}
		d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
	}
	return sysNode{}, false
}

// reclaimFencedMsg resolves ownership of a pushed-then-fenced message
// whose follower may have died between push (③) and commit (④). A live
// follower either committed (locks gone) or saw the generation guard
// reject its commit and released the locks itself before re-routing
// (errStaleRoute) — in both cases the conditional release below fails and
// the follower owns the client's response. If the release lands, the
// locks were orphaned by a crash: no retry is coming (the push already
// marked the request processed in the warm-state dedup cache), so the
// caller must answer the client itself or the request is lost forever.
func (d *Deployment) reclaimFencedMsg(ctx cloud.Ctx, msg leaderMsg) bool {
	lockCond := func(ts int64) kv.Cond { return kv.Eq{Name: "lock", V: kv.N(ts)} }
	unlock := []kv.Update{kv.Remove{Name: "lock"}}
	switch msg.Op {
	case OpSetData:
		_, err := d.System.Update(ctx, nodeKey(msg.Path), unlock, lockCond(msg.LockTs))
		return err == nil
	case OpCreate, OpDelete:
		ops := []kv.TxOp{
			{Key: nodeKey(msg.Path), Updates: unlock, Cond: lockCond(msg.LockTs)},
			{Key: nodeKey(msg.ParentPath), Updates: unlock, Cond: lockCond(msg.ParentLockTs)},
		}
		return d.System.Transact(ctx, ops) == nil
	}
	return false
}

// tryCommit replays the follower's conditional commit using the lock
// timestamps carried in the message. It only succeeds while the original
// locks are still in place, which is exactly the crashed-follower window.
// On a dynamic deployment the replay carries the same shard-map
// generation guard the follower's own commit would have carried, so a
// replay can never land a write that a reshard already fenced out.
func (d *Deployment) tryCommit(ctx cloud.Ctx, msg leaderMsg, txid int64) bool {
	lockCond := func(ts int64) kv.Cond { return kv.Eq{Name: "lock", V: kv.N(ts)} }
	guard := d.dynGuard(msg.Shard, dynGen(msg))
	switch msg.Op {
	case OpSetData:
		ups := []kv.Update{
			kv.Set{Name: attrVersion, V: kv.N(int64(msg.Version))},
			kv.Set{Name: attrMzxid, V: kv.N(txid)},
			kv.ListAppend{Name: attrPending, Vals: []int64{txid}},
			kv.Remove{Name: "lock"},
		}
		if guard != nil {
			ops := append([]kv.TxOp{{Key: nodeKey(msg.Path), Updates: ups, Cond: lockCond(msg.LockTs)}}, guard...)
			return d.System.Transact(ctx, ops) == nil
		}
		_, err := d.System.Update(ctx, nodeKey(msg.Path), ups, lockCond(msg.LockTs))
		return err == nil
	case OpCreate:
		nodeUps := append(createNodeUpdates(txid, msg.EphOwner), kv.Remove{Name: "lock"})
		parentUps := append(createParentUpdates(msg.ChildAdd, txid), kv.Remove{Name: "lock"})
		ops := []kv.TxOp{
			{Key: nodeKey(msg.Path), Updates: nodeUps, Cond: lockCond(msg.LockTs)},
			{Key: nodeKey(msg.ParentPath), Updates: parentUps, Cond: lockCond(msg.ParentLockTs)},
		}
		return d.System.Transact(ctx, append(ops, guard...)) == nil
	case OpDelete:
		nodeUps := append(deleteNodeUpdates(txid), kv.Remove{Name: "lock"})
		parentUps := append(deleteParentUpdates(msg.ChildDel, txid), kv.Remove{Name: "lock"})
		ops := []kv.TxOp{
			{Key: nodeKey(msg.Path), Updates: nodeUps, Cond: lockCond(msg.LockTs)},
			{Key: nodeKey(msg.ParentPath), Updates: parentUps, Cond: lockCond(msg.ParentLockTs)},
		}
		return d.System.Transact(ctx, append(ops, guard...)) == nil
	}
	return false
}

// buildUserNode assembles the user-store object for one committed change:
// the follower's marshaled node patched with the transaction stamps only
// the leader knows. The version comes from the message, not from the
// system store: with pipelined writes the store may already reflect later
// commits. Nil for deletes (and undecodable blobs).
func (d *Deployment) buildUserNode(msg leaderMsg, txid int64, node sysNode) *znode.Node {
	if msg.Op == OpDelete {
		return nil
	}
	n, _, err := znode.Unmarshal(msg.NodeBlob)
	if err != nil {
		return nil
	}
	n.Stat.Mzxid = txid
	n.Stat.Version = msg.Version
	n.Stat.Czxid = node.Czxid
	if msg.Op == OpCreate {
		n.Stat.Czxid = txid
		n.Stat.Version = 0
	}
	n.Stat.Cversion = node.Cversion
	n.Stat.Pzxid = node.Pzxid
	n.Stat.DataLength = int32(len(n.Data))
	n.Children = node.Children
	n.Stat.NumChildren = int32(len(node.Children))
	return n
}

// updateUserStores writes the change to every region in parallel and
// returns the client-visible Stat.
func (d *Deployment) updateUserStores(ctx cloud.Ctx, msg leaderMsg, txid int64, node sysNode, epochs map[cloud.Region][]int64) znode.Stat {
	newNode := d.buildUserNode(msg, txid, node)
	if msg.Op != OpDelete && newNode == nil {
		return znode.Stat{}
	}

	// A parent is colocated with its children on one shard — except the
	// shared paths (the root, whose children span all shards, and the
	// root node of a split subtree, whose children span the split's
	// targets); their updates are serialized separately below. A data
	// write to a shared object itself must also hold the lock: a
	// full-object write racing another shard's child splice would revert
	// the child list. Under the lock the child list is refreshed from the
	// system store, the source of truth.
	sharedParent := msg.ParentPath != "" && d.isSharedPath(msg.ParentPath)
	if newNode != nil && d.isSharedPath(msg.Path) {
		lock := d.acquireSharedLock(ctx, msg.Path)
		defer func() { _ = d.Locks.Release(ctx, lock) }()
		d.refreshSharedFromSystem(ctx, msg.Path, newNode)
	}

	tr := d.msgTrace(msg)
	ctr := costMsgTrace(msg)
	wg := sim.NewWaitGroup(d.K)
	for _, s := range d.Stores {
		s := s
		wg.Add(1)
		d.K.Go("leader-update-"+string(s.Region()), func() {
			defer wg.Done()
			stamp := epochs[s.Region()]
			// Publish the invalidation record before the store write
			// lands: once the new value is readable, the regional cache
			// has already dropped the old entry and raised the path's
			// floor, so a concurrent read of the pre-write value can
			// never re-fill the cache above the overwrite (package
			// cache). A read in the window between the two sees exactly
			// what the direct path would: the store's current value.
			region := string(s.Region())
			if rc := d.CacheFor(s.Region()); rc != nil {
				sp := d.tspan(tr, obs.SpanCacheInval, msg.Path, msg.Shard, region)
				rc.Invalidate(d.billSpan(ctx, ctr, sp, msg.Shard, region), d.cacheInv(msg.Path, txid, stamp))
				d.spanEnd(sp)
			}
			sp := d.tspan(tr, obs.SpanStoreWrite, msg.Path, msg.Shard, region)
			sctx := d.billSpan(ctx, ctr, sp, msg.Shard, region)
			switch msg.Op {
			case OpDelete:
				_ = s.Delete(sctx, msg.Path)
			default:
				_ = s.Write(sctx, newNode, stamp)
			}
			d.spanEnd(sp)
			// Creates and deletes also change the parent's child list,
			// which lives in the parent's node object: a read-modify-write
			// cycle, because object stores lack partial updates
			// (Section 3.2, Requirement #6).
			if msg.ParentPath != "" && !sharedParent {
				d.applyParentRMW(d.billSpan(ctx, ctr, 0, msg.Shard, region), s, msg, txid, stamp)
			}
		})
	}
	wg.Wait()

	if sharedParent {
		d.updateSharedParent(ctx, msg, txid, epochs)
	}

	var stat znode.Stat
	if newNode != nil {
		stat = newNode.Stat
	}
	return stat
}

// applyParentRMW rebuilds the parent's user-store object in one region:
// read, splice the child list, raise the stamps, write back. The splice
// itself is spliceInto's shared rule set — applied idempotently (a root
// data write may have refreshed the child list from the system store
// while this splice was queued) with only-raised stamps (within a shard
// they are monotone anyway, and on the shared root two shards may apply
// their updates out of global txid order).
func (d *Deployment) applyParentRMW(ctx cloud.Ctx, s UserStore, msg leaderMsg, txid int64, stamp []int64) {
	parent, _, err := s.Read(ctx, msg.ParentPath)
	if err != nil {
		return
	}
	pf := newParentFold()
	defer pf.release()
	if msg.ChildAdd != "" {
		pf.names = append(pf.names, msg.ChildAdd)
		pf.present[msg.ChildAdd] = true
	}
	if msg.ChildDel != "" {
		pf.names = append(pf.names, msg.ChildDel)
		pf.present[msg.ChildDel] = false
	}
	pf.cversion = msg.Cversion
	pf.pzxid = txid
	spliceInto(parent, pf)
	// The rebuilt parent object is about to replace the cached copy whose
	// child list is now stale; invalidate before the write becomes
	// readable (same ordering argument as the node update above).
	if rc := d.CacheFor(s.Region()); rc != nil {
		rc.Invalidate(ctx, d.cacheInv(msg.ParentPath, txid, stamp))
	}
	_ = s.Write(ctx, parent, stamp)
}

// cacheInv assembles the leader's per-path invalidation record, stamped
// with the shard-map epoch on dynamic deployments (0 otherwise).
func (d *Deployment) cacheInv(path string, txid int64, stamp []int64) cache.Invalidation {
	return cache.Invalidation{Path: path, Mzxid: txid, Epoch: stamp, MapEpoch: d.cacheMapEpoch()}
}

// cacheMapEpoch is the map epoch carried on cache invalidation records.
func (d *Deployment) cacheMapEpoch() int64 {
	if d.dyn == nil {
		return 0
	}
	return d.mapView().Epoch
}

// appendEpochs enters fired watch ids into the shard's per-region epoch
// counters (and the batch's in-memory mirror).
func (d *Deployment) appendEpochs(ctx cloud.Ctx, fired []firedWatch, shard int, epochs map[cloud.Region][]int64) {
	for _, f := range fired {
		for _, s := range d.Stores {
			r := s.Region()
			_, err := d.System.Update(ctx, epochKey(r, shard),
				[]kv.Update{kv.ListAppend{Name: attrEpochList, Vals: []int64{f.wid}}}, nil)
			if err != nil {
				continue
			}
			epochs[r] = append(epochs[r], f.wid)
		}
	}
}

// refreshSharedFromSystem overwrites a shared object's child list (and
// raises its child stamps) from the system store, the source of truth.
// Must run under the path's shared lock: a full-object write racing
// another shard's child splice would otherwise revert the child list.
func (d *Deployment) refreshSharedFromSystem(ctx cloud.Ctx, path string, n *znode.Node) {
	it, ok := d.System.Get(ctx, nodeKey(path), true)
	if !ok {
		return
	}
	fresh := decodeSysNode(it)
	n.Children = fresh.Children
	n.Stat.NumChildren = int32(len(fresh.Children))
	if fresh.Cversion > n.Stat.Cversion {
		n.Stat.Cversion = fresh.Cversion
	}
	if fresh.Pzxid > n.Stat.Pzxid {
		n.Stat.Pzxid = fresh.Pzxid
	}
}

// acquireSharedLock takes the system-store timed lock serializing every
// write to a shared path's user-store object (the tree root, or the root
// node of a split subtree). It retries until acquired: the lease makes
// the lock recoverable after a crash, and skipping the update would
// permanently corrupt the shared object's child listing.
func (d *Deployment) acquireSharedLock(ctx cloud.Ctx, path string) fksync.Lock {
	for {
		l, _, err := d.Locks.AcquireWait(ctx, sharedLockKey(path), 0)
		if err == nil {
			return l
		}
	}
}

// updateSharedParent applies a create/delete under a shared parent to the
// parent's user-store object in every region, serialized under the
// path's shared lock (two shards interleaving the read-modify-write would
// lose children). The per-region stamps already hold the union of every
// shard's epoch list, so an in-flight child-watch notification fired by
// any shard still holds reads of the parent (Z4).
func (d *Deployment) updateSharedParent(ctx cloud.Ctx, msg leaderMsg, txid int64, epochs map[cloud.Region][]int64) {
	lock := d.acquireSharedLock(ctx, msg.ParentPath)
	defer func() { _ = d.Locks.Release(ctx, lock) }()

	wg := sim.NewWaitGroup(d.K)
	for _, s := range d.Stores {
		s := s
		wg.Add(1)
		d.K.Go("leader-root-"+string(s.Region()), func() {
			defer wg.Done()
			d.applyParentRMW(ctx, s, msg, txid, epochs[s.Region()])
		})
	}
	wg.Wait()
}

type firedWatch struct {
	wid      int64
	event    EventType
	path     string
	sessions []string
}

// queryWatches reads the watch registrations touched by this operation and
// clears the fired (one-shot) groups. Shared-path watch groups (the root
// of a multi-shard deployment, a split subtree's root) are claimed with a
// conditional remove: two shard leaders may race between the read and the
// clear there (shared paths are the only ones whose watches fire from
// more than one shard), and firing the same group twice would consume a
// watch the client re-registered in its callback — only the leader whose
// conditional clear lands gets to fire. Everywhere else the owning
// shard's leader is serialized and keeps the paper's one batched clear.
func (d *Deployment) queryWatches(ctx cloud.Ctx, msg leaderMsg) []firedWatch {
	var fired []firedWatch
	collect := func(path string, pairs []struct {
		attr  string
		wt    WatchType
		event EventType
	}) {
		it, ok := d.System.GetView(ctx, watchKey(path), true)
		if !ok {
			return
		}
		var clear []kv.Update
		for _, p := range pairs {
			sessions := it[p.attr].SL
			if len(sessions) == 0 {
				continue
			}
			if d.isSharedPath(path) {
				_, err := d.System.Update(ctx, watchKey(path),
					[]kv.Update{kv.Remove{Name: p.attr}}, kv.AttrExists{Name: p.attr})
				if err != nil {
					continue // another shard's leader claimed this group
				}
			} else {
				clear = append(clear, kv.Remove{Name: p.attr})
			}
			fired = append(fired, firedWatch{
				wid:      WatchID(path, p.wt),
				event:    p.event,
				path:     path,
				sessions: append([]string(nil), sessions...),
			})
		}
		if len(clear) > 0 {
			_, _ = d.System.Update(ctx, watchKey(path), clear, nil)
		}
	}
	type pair = struct {
		attr  string
		wt    WatchType
		event EventType
	}
	switch msg.Op {
	case OpSetData:
		collect(msg.Path, []pair{{attrWatchData, WatchData, EventDataChanged}})
	case OpCreate:
		collect(msg.Path, []pair{{attrWatchExists, WatchExists, EventCreated}})
		collect(msg.ParentPath, []pair{{attrWatchChild, WatchChild, EventChildrenChanged}})
	case OpDelete:
		collect(msg.Path, []pair{
			{attrWatchData, WatchData, EventDeleted},
			{attrWatchExists, WatchExists, EventDeleted},
		})
		collect(msg.ParentPath, []pair{{attrWatchChild, WatchChild, EventChildrenChanged}})
	}
	return fired
}

func (d *Deployment) notifyResult(msg leaderMsg, txid int64, code Code, stat znode.Stat) {
	d.stageMsg(msg, obs.StageRespond)
	resp := Response{
		Session: msg.Session, Seq: msg.Seq, Code: code, Path: msg.Path,
		Stat: stat, Txid: txid,
	}
	if d.dyn != nil {
		resp.MapEpoch = d.mapView().Epoch
	}
	d.notify(msg.Session, resp, resp.wireSize())
}

func removeString(ss []string, s string) []string {
	out := ss[:0:0]
	for _, x := range ss {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}

func removeID(ids []int64, id int64) []int64 {
	out := ids[:0:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}
