package core

import (
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// leaderHandler is Algorithm 2: for each validated change it verifies the
// system-store commit (➊/➋), distributes the new data to every region's
// user store (➌), queries and fires watches (➍), notifies the client, and
// pops the per-node transaction (➎). Watch deliveries finish before the
// function returns, removing their ids from the epoch counters (➏).
type watchCompletion struct {
	wid int64
	fut *sim.Future[error]
}

func (d *Deployment) leaderHandler(inv *faas.Invocation) error {
	ctx := inv.Ctx
	// Load the per-region epoch counters once per batch; they are
	// maintained in the system store across invocations (functions are
	// stateless) and mirrored here while the batch runs.
	epochs := make(map[cloud.Region][]int64, len(d.Stores))
	for _, s := range d.Stores {
		e, err := d.Epoch(ctx, s.Region())
		if err != nil {
			return err
		}
		epochs[s.Region()] = e
	}
	var completions []watchCompletion
	for _, m := range inv.Messages {
		msg, err := decodeLeaderMsg(m.Body)
		if err != nil {
			continue
		}
		tTotal := d.K.Now()
		comps := d.leaderProcess(ctx, msg, m.SeqNo, epochs)
		completions = append(completions, comps...)
		d.recordPhase("leader.total", d.K.Now()-tTotal)
	}
	// WaitAll(WatchCallback): every delivery completes before the function
	// returns, and its id leaves the epoch counter (➏).
	for _, c := range completions {
		_ = c.fut.Wait()
		for _, s := range d.Stores {
			r := s.Region()
			_, err := d.System.Update(ctx, epochKey(r),
				[]kv.Update{kv.ListRemove{Name: attrEpochList, Vals: []int64{c.wid}}}, nil)
			if err != nil {
				return err
			}
			epochs[r] = removeID(epochs[r], c.wid)
		}
	}
	return nil
}

func (d *Deployment) leaderProcess(ctx cloud.Ctx, msg leaderMsg, txid int64, epochs map[cloud.Region][]int64) []watchCompletion {
	if msg.Op == OpDeregister {
		// Deregistration ack: FIFO-ordered behind the session's ephemeral
		// deletions, so Close() returns only after they are distributed.
		d.notifyResult(msg, txid, CodeOK, znode.Stat{})
		return nil
	}
	// ➊ Fetch the node's control record and verify our transaction is the
	// head of its pending list (➋ trying to commit on behalf of a crashed
	// follower when it is not).
	t0 := d.K.Now()
	node, committed := d.awaitCommit(ctx, msg, txid)
	d.recordPhase("leader.get", d.K.Now()-t0)
	if !committed {
		d.notifyResult(msg, txid, CodeSystemError, znode.Stat{})
		return nil
	}

	// ➌ Distribute the change to the user stores of every region in
	// parallel, stamped with that region's in-flight watch ids.
	t0 = d.K.Now()
	stat := d.updateUserStores(ctx, msg, txid, node, epochs)
	d.recordPhase("leader.update", d.K.Now()-t0)

	// ➍ Query watches and launch deliveries.
	t0 = d.K.Now()
	fired := d.queryWatches(ctx, msg)
	d.recordPhase("leader.watchquery", d.K.Now()-t0)

	var comps []watchCompletion
	for _, f := range fired {
		for _, s := range d.Stores {
			r := s.Region()
			_, err := d.System.Update(ctx, epochKey(r),
				[]kv.Update{kv.ListAppend{Name: attrEpochList, Vals: []int64{f.wid}}}, nil)
			if err != nil {
				continue
			}
			epochs[r] = append(epochs[r], f.wid)
		}
		payload := watchPayload{
			WatchID: f.wid, Event: f.event, Path: f.path, Txid: txid, Sessions: f.sessions,
		}
		fut := d.Platform.InvokeAsync(ctx, FnWatch, payload.encode())
		comps = append(comps, watchCompletion{wid: f.wid, fut: fut})
	}

	// Notify the client of success.
	t0 = d.K.Now()
	d.notifyResult(msg, txid, CodeOK, stat)
	d.recordPhase("leader.notify", d.K.Now()-t0)

	// ➎ Pop the transaction from the node's pending list; once empty on a
	// deleted node, garbage collect the tombstone.
	t0 = d.K.Now()
	key := nodeKey(msg.Path)
	it, err := d.System.Update(ctx, key,
		[]kv.Update{kv.ListPopHead{Name: attrPending}},
		kv.NumListHeadEq{Name: attrPending, V: txid})
	if err == nil && msg.Op == OpDelete {
		after := decodeSysNode(it)
		if !after.Exists && len(after.Pending) == 0 {
			_ = d.System.Delete(ctx, key, kv.And{
				kv.Eq{Name: attrExists, V: kv.N(0)},
				kv.Eq{Name: attrPending, V: kv.NumList()},
			})
		}
	}
	d.recordPhase("leader.pop", d.K.Now()-t0)
	return comps
}

// awaitCommit resolves the race between the push (③, which intentionally
// precedes the commit ④) and the leader observing the transaction. It
// polls the node's pending list, replays the commit on behalf of a
// follower that appears to have died (➋), and clears orphaned pending
// heads left behind by transactions the leader previously abandoned —
// without this last step a single lost transaction would wedge the node's
// pipeline forever.
func (d *Deployment) awaitCommit(ctx cloud.Ctx, msg leaderMsg, txid int64) (sysNode, bool) {
	const attempts = 10
	triedCommit := false
	for attempt := 0; attempt < attempts; attempt++ {
		it, ok := d.System.Get(ctx, nodeKey(msg.Path), true)
		if ok {
			node := decodeSysNode(it)
			if len(node.Pending) > 0 {
				head := node.Pending[0]
				if head == txid {
					return node, true
				}
				if head < txid {
					// Orphan from an abandoned transaction: pop and retry.
					_, _ = d.System.Update(ctx, nodeKey(msg.Path),
						[]kv.Update{kv.ListPopHead{Name: attrPending}},
						kv.NumListHeadEq{Name: attrPending, V: head})
					continue
				}
				// head > txid: our entry was already consumed (a duplicate
				// delivery after a retry); treat as not committed.
				return sysNode{}, false
			}
		}
		// Nothing pending: the follower's commit may still be in flight,
		// or the follower died after pushing. After a short grace period,
		// replay the commit ourselves (➋); whichever of the two
		// conditional commits lands first wins and the next poll decides.
		if attempt >= 2 && !triedCommit {
			triedCommit = true
			d.tryCommit(ctx, msg, txid)
			continue
		}
		d.K.Sleep(sim.Time(attempt+1) * 2 * sim.Ms(1))
	}
	return sysNode{}, false
}

// tryCommit replays the follower's conditional commit using the lock
// timestamps carried in the message. It only succeeds while the original
// locks are still in place, which is exactly the crashed-follower window.
func (d *Deployment) tryCommit(ctx cloud.Ctx, msg leaderMsg, txid int64) bool {
	lockCond := func(ts int64) kv.Cond { return kv.Eq{Name: "lock", V: kv.N(ts)} }
	switch msg.Op {
	case OpSetData:
		ups := []kv.Update{
			kv.Set{Name: attrVersion, V: kv.N(int64(msg.Version))},
			kv.Set{Name: attrMzxid, V: kv.N(txid)},
			kv.ListAppend{Name: attrPending, Vals: []int64{txid}},
			kv.Remove{Name: "lock"},
		}
		_, err := d.System.Update(ctx, nodeKey(msg.Path), ups, lockCond(msg.LockTs))
		return err == nil
	case OpCreate:
		nodeUps := append(createNodeUpdates(txid, msg.EphOwner), kv.Remove{Name: "lock"})
		parentUps := append(createParentUpdates(msg.ChildAdd, txid), kv.Remove{Name: "lock"})
		err := d.System.Transact(ctx, []kv.TxOp{
			{Key: nodeKey(msg.Path), Updates: nodeUps, Cond: lockCond(msg.LockTs)},
			{Key: nodeKey(msg.ParentPath), Updates: parentUps, Cond: lockCond(msg.ParentLockTs)},
		})
		return err == nil
	case OpDelete:
		nodeUps := append(deleteNodeUpdates(txid), kv.Remove{Name: "lock"})
		parentUps := append(deleteParentUpdates(msg.ChildDel, txid), kv.Remove{Name: "lock"})
		err := d.System.Transact(ctx, []kv.TxOp{
			{Key: nodeKey(msg.Path), Updates: nodeUps, Cond: lockCond(msg.LockTs)},
			{Key: nodeKey(msg.ParentPath), Updates: parentUps, Cond: lockCond(msg.ParentLockTs)},
		})
		return err == nil
	}
	return false
}

// updateUserStores writes the change to every region in parallel and
// returns the client-visible Stat.
func (d *Deployment) updateUserStores(ctx cloud.Ctx, msg leaderMsg, txid int64, node sysNode, epochs map[cloud.Region][]int64) znode.Stat {
	var newNode *znode.Node
	if msg.Op != OpDelete {
		n, _, err := znode.Unmarshal(msg.NodeBlob)
		if err != nil {
			return znode.Stat{}
		}
		// Patch the transaction stamps only the leader knows. The version
		// comes from the message, not from the system store: with
		// pipelined writes the store may already reflect later commits.
		n.Stat.Mzxid = txid
		n.Stat.Version = msg.Version
		n.Stat.Czxid = node.Czxid
		if msg.Op == OpCreate {
			n.Stat.Czxid = txid
			n.Stat.Version = 0
		}
		n.Stat.Cversion = node.Cversion
		n.Stat.Pzxid = node.Pzxid
		n.Stat.DataLength = int32(len(n.Data))
		n.Children = node.Children
		n.Stat.NumChildren = int32(len(node.Children))
		newNode = n
	}

	wg := sim.NewWaitGroup(d.K)
	for _, s := range d.Stores {
		s := s
		wg.Add(1)
		d.K.Go("leader-update-"+string(s.Region()), func() {
			defer wg.Done()
			stamp := epochs[s.Region()]
			switch msg.Op {
			case OpDelete:
				_ = s.Delete(ctx, msg.Path)
			default:
				_ = s.Write(ctx, newNode, stamp)
			}
			// Creates and deletes also change the parent's child list,
			// which lives in the parent's node object: a read-modify-write
			// cycle, because object stores lack partial updates
			// (Section 3.2, Requirement #6).
			if msg.ParentPath != "" {
				parent, _, err := s.Read(ctx, msg.ParentPath)
				if err != nil {
					return
				}
				if msg.ChildAdd != "" {
					parent.Children = append(parent.Children, msg.ChildAdd)
				}
				if msg.ChildDel != "" {
					parent.Children = removeString(parent.Children, msg.ChildDel)
				}
				parent.Stat.Cversion = msg.Cversion
				parent.Stat.Pzxid = txid
				parent.Stat.NumChildren = int32(len(parent.Children))
				_ = s.Write(ctx, parent, stamp)
			}
		})
	}
	wg.Wait()

	var stat znode.Stat
	if newNode != nil {
		stat = newNode.Stat
	}
	return stat
}

type firedWatch struct {
	wid      int64
	event    EventType
	path     string
	sessions []string
}

// queryWatches reads the watch registrations touched by this operation and
// clears the fired (one-shot) groups.
func (d *Deployment) queryWatches(ctx cloud.Ctx, msg leaderMsg) []firedWatch {
	var fired []firedWatch
	collect := func(path string, pairs []struct {
		attr  string
		wt    WatchType
		event EventType
	}) {
		it, ok := d.System.Get(ctx, watchKey(path), true)
		if !ok {
			return
		}
		var clear []kv.Update
		for _, p := range pairs {
			sessions := it[p.attr].SL
			if len(sessions) == 0 {
				continue
			}
			fired = append(fired, firedWatch{
				wid:      WatchID(path, p.wt),
				event:    p.event,
				path:     path,
				sessions: append([]string(nil), sessions...),
			})
			clear = append(clear, kv.Remove{Name: p.attr})
		}
		if len(clear) > 0 {
			_, _ = d.System.Update(ctx, watchKey(path), clear, nil)
		}
	}
	type pair = struct {
		attr  string
		wt    WatchType
		event EventType
	}
	switch msg.Op {
	case OpSetData:
		collect(msg.Path, []pair{{attrWatchData, WatchData, EventDataChanged}})
	case OpCreate:
		collect(msg.Path, []pair{{attrWatchExists, WatchExists, EventCreated}})
		collect(msg.ParentPath, []pair{{attrWatchChild, WatchChild, EventChildrenChanged}})
	case OpDelete:
		collect(msg.Path, []pair{
			{attrWatchData, WatchData, EventDeleted},
			{attrWatchExists, WatchExists, EventDeleted},
		})
		collect(msg.ParentPath, []pair{{attrWatchChild, WatchChild, EventChildrenChanged}})
	}
	return fired
}

func (d *Deployment) notifyResult(msg leaderMsg, txid int64, code Code, stat znode.Stat) {
	resp := Response{
		Session: msg.Session, Seq: msg.Seq, Code: code, Path: msg.Path,
		Stat: stat, Txid: txid,
	}
	d.notify(msg.Session, resp, resp.wireSize())
}

func removeString(ss []string, s string) []string {
	out := ss[:0:0]
	for _, x := range ss {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}

func removeID(ids []int64, id int64) []int64 {
	out := ids[:0:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}
