package core

import (
	"fmt"
	"time"

	"faaskeeper/internal/cache"
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/network"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/shardmap"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/watchfanout"
	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

// CacheMode selects the read-path cache tier in front of the user store.
type CacheMode string

// Cache tiers. With CacheOff (the default) the read path is byte-for-byte
// the paper's direct store access.
const (
	CacheOff      CacheMode = ""          // no cache: reads hit the user store directly
	CacheRegional CacheMode = "regional"  // shared per-region cache node only
	CacheTwoLevel CacheMode = "two-level" // per-session client cache + regional node
)

// Function names deployed by FaaSKeeper (Section 3: four functions).
const (
	FnFollower  = "follower"
	FnLeader    = "leader"
	FnWatch     = "watch"
	FnHeartbeat = "heartbeat"
)

// Config selects the deployment's provider profile, storage backends, and
// function resources.
type Config struct {
	Profile   *cloud.Profile // default: cloud.AWSProfile()
	UserStore StoreKind      // default: StoreObject (the paper's base AWS setup)

	// HybridThresholdB is the KV/object split point (default 4 kB).
	HybridThresholdB int

	// ExtraRegions adds user-store replicas the leader updates in parallel.
	ExtraRegions []cloud.Region

	FollowerMemMB  int // default 2048
	LeaderMemMB    int // default 2048
	WatchMemMB     int // default 512
	HeartbeatMemMB int // default 512
	Arch           faas.Arch
	VCPU           float64

	LockLease        time.Duration // timed-lock lease (default 2 s)
	HeartbeatEvery   time.Duration // 0 disables the scheduled function
	HeartbeatTimeout time.Duration // client reply deadline (default 1.5 s)
	Retries          int           // event-function retry budget (default 2)

	// MaxNodeB caps node data (default 250 kB, the paper's AWS limit from
	// SQS message sizing; Section 4.4).
	MaxNodeB int

	// WriteShards partitions the leader pipeline by znode subtree: N
	// ordered queues, each with one serialized leader instance and its own
	// epoch counters. Default 1 — the paper's single totally-ordered
	// write path. See ShardOf for the routing function.
	WriteShards int

	// DynamicShards replaces the fixed mod-N route with the durable
	// epoch-versioned routing table of package shardmap, enabling live
	// resharding: GrowShards/ShrinkShards move consistent-hash slots to
	// added or retired queues, SplitSubtree re-routes a hot subtree at
	// depth 2, and MergeSubtree folds it back — all without stopping the
	// pipeline (reshard.go). Dynamic mode stamps each write's commit with
	// the routed shard's map generation, so a write racing a reshard is
	// rejected by its own conditional commit and retried against the new
	// map. Default false: the static pipeline, byte-identical to the
	// golden trace.
	DynamicShards bool

	// AutoShard is the shard auto-scaling policy (implies DynamicShards
	// when enabled): a monitor samples per-shard queue depth and splits a
	// sustained hot subtree (or grows the shard count) under load, and
	// merges an idle split back.
	AutoShard AutoShard

	// BatchWrites enables the leader's batching distributor: the handler
	// splits into a per-message commit phase (Algorithm 2's verification,
	// watch claiming, and transaction pop, unchanged per operation) and a
	// batch-level distributor that writes only the final folded state of
	// each touched node to the user stores, performs one parent child-list
	// read-modify-write per parent per batch, and publishes one coalesced
	// cache-invalidation record per touched path. Every per-operation
	// invariant is preserved: each client still receives its own Stat with
	// its own txid, watch payloads carry the firing operation's txid, and
	// epoch entries precede readability of the batch's writes (Z4).
	// Default false — the paper's one-write-per-message distribution,
	// byte-identical to the golden trace.
	BatchWrites bool

	// MaxBatch caps how many queued messages one distributor flush may
	// fold (0 = the whole invocation batch, itself bounded by the queue
	// technology's receive limit). Only meaningful with BatchWrites.
	MaxBatch int

	// EnableTxn enables ZooKeeper-style multi() transactions (package
	// txn): single-shard multis take a fast path through the leader
	// commit phase (one leader message, one multi-item system-store
	// transaction), and multis spanning shards run a two-phase commit
	// across the per-shard leader pipelines — prepare places intent locks
	// on the touched node items and votes through a storage-backed
	// barrier, a durable transaction record makes the decision
	// recoverable by queue redelivery, and the commit applies every
	// user-store write of the transaction in one atomic batch where the
	// backend supports it. Default false — multi() is rejected and no
	// transaction state ever touches the paper-faithful pipeline (the
	// golden trace stays byte-identical even with EnableTxn on, as long
	// as no multi() is issued).
	EnableTxn bool

	// CacheMode enables the read-path cache tier (package cache): a
	// shared regional cache node fronting each region's user store,
	// optionally combined with a per-session client cache. The leader
	// push-invalidates the regional node on every user-store write, and
	// clients apply the direct path's Z3/Z4 guards before serving a
	// cached entry. Default CacheOff — the paper's direct read path.
	CacheMode CacheMode

	// CacheCapacityB sizes each regional cache node (default 64 MB).
	CacheCapacityB int

	// ClientCacheCapacityB sizes each session's client cache in
	// CacheTwoLevel mode (default 256 kB).
	ClientCacheCapacityB int

	// CacheTTL bounds client-cache staleness: entries older than this
	// are refetched, preserving ZooKeeper's timeliness guarantee even
	// for sessions that never observe newer state (default 5 s). The
	// regional node needs no TTL — it is push-invalidated by the leader.
	CacheTTL time.Duration

	// CacheWarmK prefetches the regional cache node's K hottest entries
	// into a new session's client cache on connect (two-level mode only),
	// seeding the session's per-path floors so the first read of a hot
	// path is already a hit. Default 0 — cold connects, as in the paper.
	CacheWarmK int

	// WatchFanout enables the hierarchical watch fan-out tier (package
	// watchfanout): instead of enumerating watching sessions inside the
	// write hot path, the leader publishes ONE notification record per
	// (path, txid) to each region's fan-out node — colocated with the
	// regional cache — and the node owns the per-session delivery with
	// per-watch debounce/coalesce policies, plus ZooKeeper 3.6-style
	// persistent and recursive watches (Deployment.AddWatch). Watch
	// registration and matching move off the system store entirely, so
	// the leader's per-write watch work is O(1) in watcher count. The
	// epoch-stamp read gate (Z4) is preserved: a watch id enters the
	// shard epoch list when its first firing is published and leaves when
	// its last in-flight firing is delivered or coalesced into a newer
	// one. Default false — the paper's per-watcher delivery path,
	// byte-identical to the golden trace.
	WatchFanout bool

	// FanoutDebounce is the latest-wins coalescing window applied by
	// fan-out nodes to PolicyCoalesce registrations (default 10ms). Only
	// meaningful with WatchFanout.
	FanoutDebounce time.Duration

	// WireCodec selects the serialization of the hot message types
	// (session-queue requests, leader messages, transaction payloads,
	// watch invocations, the shard map): "gob" (default) is the
	// paper-faithful encoding whose message sizes the golden trace is
	// pinned to; "binary" is the hand-rolled zero-copy codec of package
	// wire — same semantics, compact varint framing, pooled encode
	// buffers, reflection-free decoding.
	WireCodec string

	// CollectPhases enables per-phase latency sampling (Figures 9-12,
	// Table 3).
	CollectPhases bool

	// Telemetry enables the virtual-time telemetry subsystem (package
	// obs): causal per-request span trees across the whole pipeline and
	// hot-path counters/histograms in the metrics registry. Trace ids are
	// derived from fields the wire already carries, so gob messages — and
	// therefore the golden virtual-time trace — stay byte-identical, and
	// with Telemetry off every instrumentation point is a zero-allocation
	// no-op. Default false. (Registry gauges, the AutoShard monitor's
	// control-plane signals, function regardless of this flag.)
	Telemetry bool

	// CostAccounting enables per-request dollar attribution (package obs
	// cost ledger): every pay-as-you-go charge a request causes — function
	// GB-s, store read/write units, queue deliveries, cache hits, watch
	// pushes, 2PC legs — is billed to its trace at the instant the charge
	// occurs, and mirrored into the registry's cost gauges. Works with or
	// without Telemetry (spans only carry per-stage costs when both are
	// on). Default false: every attribution point is a nil-sink no-op and
	// the golden virtual-time trace is byte-identical.
	CostAccounting bool

	// CostBudgetUSDPerHour arms the ledger's burn-rate monitor: spend is
	// evaluated over tumbling CostBudgetWindow windows of virtual time and
	// a window exceeding this hourly rate emits a breach gauge and an
	// instant "cost.breach" span. 0 disarms (the default).
	CostBudgetUSDPerHour float64

	// CostBudgetWindow is the burn-rate evaluation window (default 1 s of
	// virtual time).
	CostBudgetWindow time.Duration

	// Faults injects failures for resilience tests.
	Faults Faults

	// codec is WireCodec parsed by defaults(); zero value = gob.
	codec wire.Codec
}

// AutoShard configures shard auto-scaling (Config.AutoShard): the policy
// samples each shard queue's depth every Interval; a shard whose depth
// stays at or above SplitDepth for Sustain consecutive samples is
// resharded — by splitting its dominant subtree over SplitWays new queues
// when one top-level segment carries at least half of the shard's routed
// writes, or by growing the queue count otherwise — and a split whose
// target queues sit empty for MergeIdle consecutive samples is merged
// back.
type AutoShard struct {
	Enabled bool

	Interval   time.Duration // sampling period (default 1 s)
	SplitDepth int           // queue-depth threshold (default 6)
	Sustain    int           // consecutive hot samples before acting (default 3)
	SplitWays  int           // subtree split fanout (default 2)
	MaxShards  int           // queue-count ceiling (default 8)
	MergeIdle  int           // idle samples before merging a split; 0 = never

	// CostAware replaces the raw depth thresholds with an economic
	// objective: each sample accrues queue-delay cost
	// (depth × Interval × DelayUSDPerItemSec) into a per-shard pool, a
	// split is taken only once the hot shard's accumulated delay cost has
	// paid for the estimated costmodel.ReshardCost of performing it, and
	// an idle split is merged back only once the delay cost it absorbed
	// since splitting covers both reshard operations — so a split that
	// never earned its keep is kept (merging would spend reshard dollars
	// to save nothing, and a re-split would spend them again).
	CostAware bool

	// DelayUSDPerItemSec prices one queued item-second of delay (the
	// SLO-violation cost the policy weighs against reshard spend;
	// default $1e-6 per item-second).
	DelayUSDPerItemSec float64
}

func (a *AutoShard) defaults() {
	if a.Interval <= 0 {
		a.Interval = time.Second
	}
	if a.SplitDepth <= 0 {
		a.SplitDepth = 6
	}
	if a.Sustain <= 0 {
		a.Sustain = 3
	}
	if a.SplitWays < 2 {
		a.SplitWays = 2
	}
	if a.MaxShards <= 0 {
		a.MaxShards = 8
	}
	if a.MaxShards > shardmap.MaxShards {
		a.MaxShards = shardmap.MaxShards
	}
	if a.DelayUSDPerItemSec <= 0 {
		a.DelayUSDPerItemSec = 1e-6
	}
}

// Faults are injectable failure probabilities.
type Faults struct {
	// FollowerCrashAfterPush is the probability that the follower function
	// dies after pushing to the leader queue but before committing the
	// system store — the window Algorithm 2's TryCommit covers.
	FollowerCrashAfterPush float64
}

func (c *Config) defaults() {
	if c.Profile == nil {
		c.Profile = cloud.AWSProfile()
	}
	if c.UserStore == "" {
		c.UserStore = StoreObject
	}
	if c.HybridThresholdB <= 0 {
		c.HybridThresholdB = 4096
	}
	if c.FollowerMemMB <= 0 {
		c.FollowerMemMB = 2048
	}
	if c.LeaderMemMB <= 0 {
		c.LeaderMemMB = 2048
	}
	if c.WatchMemMB <= 0 {
		c.WatchMemMB = 512
	}
	if c.HeartbeatMemMB <= 0 {
		c.HeartbeatMemMB = 512
	}
	if c.LockLease <= 0 {
		c.LockLease = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 1500 * time.Millisecond
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.MaxNodeB <= 0 {
		c.MaxNodeB = 250 * 1024
	}
	if c.WriteShards <= 0 {
		c.WriteShards = 1
	}
	if c.AutoShard.Enabled {
		c.DynamicShards = true
		c.AutoShard.defaults()
	}
	if c.DynamicShards && c.WriteShards > shardmap.MaxShards {
		panic("core: DynamicShards supports at most 64 write shards")
	}
	if c.CacheWarmK < 0 {
		c.CacheWarmK = 0
	}
	if c.MaxBatch < 0 {
		c.MaxBatch = 0
	}
	switch c.CacheMode {
	case "off":
		c.CacheMode = CacheOff
	case CacheOff, CacheRegional, CacheTwoLevel:
	default:
		// A typo must not silently deploy the wrong tier (an unknown
		// string would otherwise enable the regional cache).
		panic("core: unknown CacheMode " + string(c.CacheMode))
	}
	// CacheCapacityB's 64 MB default is owned by cache.NewRegional (<= 0
	// passes through).
	if c.ClientCacheCapacityB <= 0 {
		c.ClientCacheCapacityB = 256 << 10
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 5 * time.Second
	}
	if c.FanoutDebounce <= 0 {
		c.FanoutDebounce = 10 * time.Millisecond
	}
	codec, err := wire.Parse(c.WireCodec)
	if err != nil {
		// A typo must not silently deploy the slow path as if it were
		// the requested fast one (or vice versa).
		panic("core: " + err.Error())
	}
	c.codec = codec
}

// Deployment is one running FaaSKeeper instance: storage, queues,
// functions, and the registry of connected sessions.
type Deployment struct {
	K        *sim.Kernel
	Env      *cloud.Env
	Platform *faas.Platform
	Cfg      Config

	System *kv.Table
	Locks  *fksync.LockManager
	Stores []UserStore // [0] is the home-region primary

	// Txns manages the durable transaction records of multi()
	// coordinators (package txn). Always non-nil; unused — and therefore
	// costless — unless Cfg.EnableTxn.
	Txns *txn.Store

	// Obs is the telemetry hub: the request tracer and the component
	// metrics registry. Always non-nil; the tracer and the registry's
	// hot-path instruments record only when Cfg.Telemetry is set, while
	// gauges (the AutoShard monitor's queue-depth signals) always work.
	Obs *obs.Hub

	// Caches holds one regional cache node per user store (aligned with
	// Stores); empty when CacheMode is CacheOff.
	Caches []*cache.Regional

	// Fanouts holds one watch fan-out node per user store (aligned with
	// Stores); empty unless Cfg.WatchFanout.
	Fanouts []*watchfanout.Node

	// LeaderQs holds one ordered queue per write shard; LeaderQs[s] feeds
	// shard s's serialized leader instance. A single-shard deployment has
	// exactly the paper's one global queue. A dynamic deployment appends
	// queues at runtime as the shard map grows.
	LeaderQs []*queue.Queue

	// dyn is the dynamic-sharding state (nil on static deployments; see
	// dynShards in shard.go).
	dyn *dynShards

	// txnWatchBatches / txnWatchDeliveries count the cross-shard
	// transaction watch pipeline: deliveries are individual watch-function
	// invocations, batches the per-shard post-apply groups that carried
	// them (one epoch-exit write per region per batch).
	txnWatchBatches    int64
	txnWatchDeliveries int64

	sessions map[string]*SessionTransport
	phases   map[string]*stats.Sample

	// lastSeq is the warm-sandbox deduplication cache: each session's
	// queue has exactly one concurrent follower instance, so remembering
	// the last processed sequence number in sandbox state suffices to make
	// queue-retry redelivery idempotent.
	lastSeq map[string]int64
}

// SessionTransport is the cloud-side plumbing of one client session: its
// request queue and the duplex connection used for responses,
// notifications, and heartbeats.
type SessionTransport struct {
	ID        string
	Region    cloud.Region
	Queue     *queue.Queue
	ClientEnd *network.End // client side: receive responses / notifications
	cloudEnd  *network.End
	pongs     *sim.Queue[Pong]
	closed    bool
}

// NewDeployment builds a FaaSKeeper deployment on kernel k. It deploys the
// four functions, wires the leader queue trigger, schedules the heartbeat,
// and seeds the tree root.
func NewDeployment(k *sim.Kernel, cfg Config) *Deployment {
	cfg.defaults()
	env := cloud.NewEnv(k, cfg.Profile)
	d := &Deployment{
		K:        k,
		Env:      env,
		Platform: faas.NewPlatform(env),
		Cfg:      cfg,
		System:   kv.NewTable(env, "system"),
		sessions: map[string]*SessionTransport{},
		phases:   map[string]*stats.Sample{},
		lastSeq:  map[string]int64{},
	}
	d.Obs = obs.NewHub(k, cfg.Telemetry, cfg.CostAccounting)
	if cfg.CostBudgetUSDPerHour > 0 {
		d.Obs.Cost.SetBudget(obs.Budget{
			USDPerHour: cfg.CostBudgetUSDPerHour,
			Window:     sim.Time(cfg.CostBudgetWindow),
		})
	}
	d.System.SetCostCategory("syskv")
	d.Locks = fksync.NewLockManager(env, d.System, cfg.LockLease)
	d.Txns = txn.NewStore(d.System, k)
	d.Txns.SetWireCodec(cfg.codec)
	d.Txns.SetMetrics(d.Obs.Metrics)

	regions := append([]cloud.Region{cfg.Profile.Home}, cfg.ExtraRegions...)
	for _, r := range regions {
		d.Stores = append(d.Stores, d.newUserStore(r))
		if cfg.CacheMode != CacheOff {
			rc := cache.NewRegional(env, r, cfg.CacheCapacityB)
			rc.SetWireCodec(cfg.codec)
			if cfg.CostAccounting {
				// Amortize the cache VM's hourly price over the regional
				// hits it serves (only when accounting: accrual adds
				// meter charges the seed experiments don't expect).
				rc.EnableVMAccrual()
			}
			d.Caches = append(d.Caches, rc)
		}
		if cfg.WatchFanout {
			region := r
			fn := watchfanout.New(env, region,
				func(session string, wid int64, ev watchfanout.Event, path string, txid int64) {
					n := Notification{WatchID: wid, Event: EventType(ev), Path: path, Txid: txid}
					d.notify(session, n, n.wireSize())
				},
				func(shard int, wid int64) {
					// The watch's last in-flight firing is done: retire it
					// from this region's shard epoch list so the read gate
					// stops holding for it.
					_, _ = d.System.Update(d.BillSystemCtx(cloud.ClientCtx(region)),
						epochKey(region, shard),
						[]kv.Update{kv.ListRemove{Name: attrEpochList, Vals: []int64{wid}}}, nil)
				},
				sim.Time(cfg.FanoutDebounce))
			if cfg.CostAccounting {
				fn.EnableVMAccrual()
				fn.SetBillCtx(d.BillSystemCtx(cloud.ClientCtx(region)))
			}
			d.Fanouts = append(d.Fanouts, fn)
		}
	}

	for s := 0; s < cfg.WriteShards; s++ {
		d.LeaderQs = append(d.LeaderQs,
			queue.New(env, leaderQueueName(s, cfg.WriteShards), cfg.Profile.OrderedQueueKind()))
	}

	if cfg.DynamicShards {
		d.dyn = &dynShards{store: shardmap.NewStore(d.System), hot: map[string]int64{}}
		d.dyn.store.SetWireCodec(cfg.codec)
		seedMap := shardmap.New(cfg.WriteShards)
		d.dyn.store.Seed(seedMap)
		d.dyn.cur = seedMap
		d.Txns.TrackLive(true)
	}

	d.Platform.Deploy(faas.Config{
		Name: FnFollower, MemoryMB: cfg.FollowerMemMB, Arch: cfg.Arch, VCPU: cfg.VCPU,
		Retries: cfg.Retries,
	}, d.followerHandler)
	d.Platform.Deploy(faas.Config{
		Name: FnLeader, MemoryMB: cfg.LeaderMemMB, Arch: cfg.Arch, VCPU: cfg.VCPU,
		Retries: cfg.Retries,
	}, d.leaderHandler)
	d.Platform.Deploy(faas.Config{
		Name: FnWatch, MemoryMB: cfg.WatchMemMB, Arch: cfg.Arch, VCPU: cfg.VCPU,
	}, d.watchHandler)
	d.Platform.Deploy(faas.Config{
		Name: FnHeartbeat, MemoryMB: cfg.HeartbeatMemMB,
	}, d.heartbeatHandler)

	// One concurrent leader instance per shard guarantees serialized
	// commits within a shard (Z3; a subtree never spans shards).
	for _, q := range d.LeaderQs {
		d.Platform.AddQueueTrigger(q, FnLeader, 1)
	}

	if cfg.HeartbeatEvery > 0 {
		d.Platform.AddSchedule(FnHeartbeat, cfg.HeartbeatEvery)
	}

	if cfg.AutoShard.Enabled {
		d.K.Go("autoshard-monitor", d.autoShardMonitor)
	}

	d.seedRoot()
	return d
}

// addShardQueue provisions one more leader queue with its serialized
// trigger (the reshard engine grows the fleet before flipping the map, so
// a routing target always has a consumer).
func (d *Deployment) addShardQueue() {
	s := len(d.LeaderQs)
	q := queue.New(d.Env, fmt.Sprintf("leader-%d", s), d.Cfg.Profile.OrderedQueueKind())
	d.LeaderQs = append(d.LeaderQs, q)
	d.Platform.AddQueueTrigger(q, FnLeader, 1)
}

// TxnWatchStats reports the cross-shard transaction watch pipeline's
// delivery batching: total watch-function invocations and the per-shard
// post-apply batches they were folded into.
func (d *Deployment) TxnWatchStats() (batches, deliveries int64) {
	return d.txnWatchBatches, d.txnWatchDeliveries
}

func (d *Deployment) newUserStore(r cloud.Region) UserStore {
	switch d.Cfg.UserStore {
	case StoreKV:
		return NewKVStore(d.Env, "user-data-"+string(r), r)
	case StoreHybrid:
		return NewHybridStore(d.Env, "user-data-"+string(r), r, d.Cfg.HybridThresholdB)
	case StoreMem:
		return NewMemStore(d.Env, r)
	default:
		return NewObjectStore(d.Env, "user-data-"+string(r), r)
	}
}

// seedRoot bootstraps "/" in system and user stores at no cost.
func (d *Deployment) seedRoot() {
	d.System.SeedPut(nodeKey(znode.Root), kv.Item{
		attrExists:   kv.N(1),
		attrChildren: kv.StrList(),
	})
	root := &znode.Node{Path: znode.Root}
	for _, s := range d.Stores {
		s.Seed(root)
	}
}

// PrimaryStore returns the home-region user store.
func (d *Deployment) PrimaryStore() UserStore { return d.Stores[0] }

// StoreFor returns the user store local to a region, falling back to the
// primary (clients connect to the closest storage, Section 4.1).
func (d *Deployment) StoreFor(region cloud.Region) UserStore {
	for _, s := range d.Stores {
		if s.Region() == region {
			return s
		}
	}
	return d.Stores[0]
}

// CacheFor returns the regional cache node local to a region (nil when the
// cache tier is off), with the same closest-replica fallback as StoreFor.
func (d *Deployment) CacheFor(region cloud.Region) *cache.Regional {
	if len(d.Caches) == 0 {
		return nil
	}
	for _, c := range d.Caches {
		if c.Region() == region {
			return c
		}
	}
	return d.Caches[0]
}

// FanoutFor returns the watch fan-out node local to a region (nil when
// the tier is off), with the same closest-replica fallback as StoreFor.
func (d *Deployment) FanoutFor(region cloud.Region) *watchfanout.Node {
	if len(d.Fanouts) == 0 {
		return nil
	}
	for _, n := range d.Fanouts {
		if n.Region() == region {
			return n
		}
	}
	return d.Fanouts[0]
}

// Connect provisions the cloud-side transport for a new session: a FIFO
// request queue with a follower trigger (one concurrent instance per
// session preserves the session's FIFO order while different sessions
// proceed in parallel — Section 4.3 "horizontal scaling"), and a duplex
// connection for responses.
func (d *Deployment) Connect(sessionID string, region cloud.Region) *SessionTransport {
	if _, dup := d.sessions[sessionID]; dup {
		panic("core: duplicate session " + sessionID)
	}
	q := queue.New(d.Env, "session-"+sessionID, d.Cfg.Profile.OrderedQueueKind())
	conn := network.NewConn(d.Env, d.Cfg.Profile.Home, region)
	st := &SessionTransport{
		ID:        sessionID,
		Region:    region,
		Queue:     q,
		ClientEnd: conn.B(),
		cloudEnd:  conn.A(),
		pongs:     sim.NewQueue[Pong](d.K),
	}
	d.sessions[sessionID] = st
	d.Platform.AddQueueTrigger(q, FnFollower, 1)
	// Ingress: route client->cloud traffic (heartbeat replies).
	d.K.Go("ingress-"+sessionID, func() {
		for {
			pkt, ok := st.cloudEnd.Recv()
			if !ok {
				return
			}
			if pong, isPong := pkt.Payload.(Pong); isPong {
				st.pongs.Push(pong)
			}
		}
	})
	return st
}

// Transport returns the transport of a connected session, or nil.
func (d *Deployment) Transport(sessionID string) *SessionTransport {
	return d.sessions[sessionID]
}

// ReleaseTransport tears down a session's queue and connection after the
// session has been deregistered.
func (d *Deployment) ReleaseTransport(sessionID string) {
	st := d.sessions[sessionID]
	if st == nil {
		return
	}
	st.closed = true
	st.Queue.Close()
	st.cloudEnd.Close()
	delete(d.sessions, sessionID)
}

// notify sends a message to the session's client, dropping it if the
// session is gone (a dead client's responses vanish, as in the cloud).
func (d *Deployment) notify(sessionID string, payload any, size int) {
	st := d.sessions[sessionID]
	if st == nil || st.closed {
		return
	}
	st.cloudEnd.Send(payload, size)
}

// recordPhase samples a per-phase latency when collection is enabled.
func (d *Deployment) recordPhase(name string, dur sim.Time) {
	if !d.Cfg.CollectPhases {
		return
	}
	s, ok := d.phases[name]
	if !ok {
		s = stats.NewSample(1024)
		d.phases[name] = s
	}
	s.AddDur(dur)
}

// Phase returns the collected samples for one phase name (nil if none).
func (d *Deployment) Phase(name string) *stats.Sample { return d.phases[name] }

// PhaseNames lists phases with recorded samples.
func (d *Deployment) PhaseNames() []string {
	names := make([]string, 0, len(d.phases))
	for n := range d.phases {
		names = append(names, n)
	}
	return names
}

// ResetMetrics clears the cost meter, phase samples, and telemetry
// spans/instruments (used after warmup).
func (d *Deployment) ResetMetrics() {
	d.Env.Meter.Reset()
	d.phases = map[string]*stats.Sample{}
	d.Obs.Reset()
}

// RegisterSession writes the session record; the client library calls this
// during connection establishment.
func (d *Deployment) RegisterSession(ctx cloud.Ctx, sessionID string) error {
	return d.System.Put(ctx, sessionKey(sessionID), kv.Item{
		attrSessionReg:  kv.N(1),
		attrSessionAddr: kv.S(string(ctx.Region)),
		attrSessionEph:  kv.StrList(),
	}, nil)
}

// RegisterWatch adds the session to the watch group for (path, type) and
// returns the watch id the client must remember for epoch-based read
// ordering. Registration is a single system-store write (Section 4.1:
// "adding insignificant cost").
func (d *Deployment) RegisterWatch(ctx cloud.Ctx, path string, wt WatchType, sessionID string) (int64, error) {
	if d.fanoutOn() {
		// The fan-out tier owns all registrations: one-shot watches keep
		// their exact client-visible semantics but live on the regional
		// node instead of the system store.
		return d.fanoutRegister(ctx, path, wt, sessionID, watchfanout.PolicyImmediate, 0)
	}
	if wt >= WatchPersistent {
		return 0, ErrFanoutOff
	}
	attr := watchAttr(wt)
	_, err := d.System.Update(ctx, watchKey(path),
		[]kv.Update{kv.StrListAppend{Name: attr, Vals: []string{sessionID}}}, nil)
	if err != nil {
		return 0, err
	}
	return WatchID(path, wt), nil
}

func watchAttr(wt WatchType) string {
	switch wt {
	case WatchData:
		return attrWatchData
	case WatchExists:
		return attrWatchExists
	default:
		return attrWatchChild
	}
}

// NumShards returns the number of write shards the leader pipeline is
// partitioned into (1 in the paper's base configuration).
func (d *Deployment) NumShards() int { return len(d.LeaderQs) }

// WireCodec reports the deployment's message codec (Config.WireCodec
// parsed); the client library encodes its requests with the same one.
func (d *Deployment) WireCodec() wire.Codec { return d.Cfg.codec }

// Epoch returns the in-flight watch ids for a region, aggregated over all
// write shards (strongly consistent system-store reads; exposed for tests
// and the client library). The error is always nil, kept for API
// stability.
func (d *Deployment) Epoch(ctx cloud.Ctx, region cloud.Region) ([]int64, error) {
	var all []int64
	for s := 0; s < d.NumShards(); s++ {
		all = append(all, d.epochShard(ctx, region, s)...)
	}
	return all, nil
}

// epochShard reads one shard's epoch counter for a region (a missing item
// means no in-flight watches).
func (d *Deployment) epochShard(ctx cloud.Ctx, region cloud.Region, shard int) []int64 {
	it, ok := d.System.GetView(ctx, epochKey(region, shard), true)
	if !ok {
		return nil
	}
	// The item is a read-only view; callers append to the returned slice
	// (appendEpochs), so the list itself must be a private copy. Copying
	// just the epoch list skips cloning the whole item.
	return append([]int64(nil), it[attrEpochList].NL...)
}
