// Package core implements FaaSKeeper itself — the paper's contribution: a
// ZooKeeper-compatible coordination service built entirely from serverless
// components. Write requests flow from per-session FIFO queues through
// concurrently operating follower functions (Algorithm 1) into one of N
// ordered leader queues — partitioned by znode subtree, a single global
// queue in the paper's base configuration — each feeding a serialized
// leader instance (Algorithm 2), which
// distributes committed changes to the user-visible store, fires watch
// notifications through a free watch function, and a scheduled heartbeat
// function prunes dead sessions. Reads never touch a function: clients
// access the user store directly.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"

	"faaskeeper/internal/obs"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/znode"
)

// OpCode identifies a write operation flowing through the queues.
type OpCode string

// Write operations.
const (
	OpCreate     OpCode = "create"
	OpSetData    OpCode = "set_data"
	OpDelete     OpCode = "delete"
	OpDeregister OpCode = "deregister" // session close / eviction

	// OpMulti is a client multi() request; on the leader queue it carries a
	// single-shard transaction's resolved sub-ops (the fast path).
	OpMulti OpCode = "multi"
	// OpTxnCommit is one shard's phase-two commit message of a cross-shard
	// transaction (package txn): it orders the transaction within the
	// shard's pipeline and carries the shard's resolved sub-ops.
	OpTxnCommit OpCode = "txn_commit"

	// OpReshardFence is the live-reshard drain barrier (package shardmap):
	// the reshard coordinator pushes one fence into each source shard's
	// queue after gating the migrating prefixes; when the shard's
	// serialized leader reaches it, every earlier message — in particular
	// every committed write to a migrating path — has been fully
	// distributed, and the leader's storage ack releases the coordinator
	// to flip the map epoch. DeregID carries the fence id.
	OpReshardFence OpCode = "reshard_fence"
)

// Code is the result of a write request, following ZooKeeper's error
// vocabulary.
type Code string

// Result codes.
const (
	CodeOK            Code = "ok"
	CodeNodeExists    Code = "node_exists"
	CodeNoNode        Code = "no_node"
	CodeBadVersion    Code = "bad_version"
	CodeNotEmpty      Code = "not_empty"
	CodeNoChildrenEph Code = "no_children_for_ephemerals"
	CodeSystemError   Code = "system_error"
	CodeTooLarge      Code = "too_large"
	CodeTxnAborted    Code = "txn_aborted" // multi() rolled back: a sibling op failed
)

// Client-facing errors corresponding to result codes.
var (
	ErrNodeExists    = errors.New("faaskeeper: node already exists")
	ErrNoNode        = errors.New("faaskeeper: node does not exist")
	ErrBadVersion    = errors.New("faaskeeper: version mismatch")
	ErrNotEmpty      = errors.New("faaskeeper: node has children")
	ErrNoChildrenEph = errors.New("faaskeeper: ephemeral nodes cannot have children")
	ErrSystemError   = errors.New("faaskeeper: system error")
	ErrTooLarge      = errors.New("faaskeeper: node data too large")
	ErrSessionClosed = errors.New("faaskeeper: session closed")
	ErrTxnAborted    = errors.New("faaskeeper: transaction aborted")
	ErrTxnDisabled   = errors.New("faaskeeper: transactions disabled (Config.EnableTxn)")
)

// CodeError converts a result code to the client-facing error (nil for OK).
func CodeError(c Code) error {
	switch c {
	case CodeOK:
		return nil
	case CodeNodeExists:
		return ErrNodeExists
	case CodeNoNode:
		return ErrNoNode
	case CodeBadVersion:
		return ErrBadVersion
	case CodeNotEmpty:
		return ErrNotEmpty
	case CodeNoChildrenEph:
		return ErrNoChildrenEph
	case CodeTooLarge:
		return ErrTooLarge
	case CodeTxnAborted:
		return ErrTxnAborted
	default:
		return fmt.Errorf("%w: %s", ErrSystemError, c)
	}
}

// Request is a client write request, serialized into the session queue.
// The wire format is binary (gob): unlike JSON's base64 expansion, a
// 250 kB payload stays within SQS's 256 kB message limit, which is exactly
// how the paper sizes its maximum node (Section 4.4).
// An OpMulti request carries its sub-operations (txn.EncodeOps) in Data:
// riding the existing field keeps the gob type descriptor — and with it
// the single-op wire format and the golden trace — byte-identical to the
// paper pipeline's.
type Request struct {
	Session string
	Seq     int64 // client-side FIFO sequence
	Op      OpCode
	Path    string
	Data    []byte
	Version int32 // expected version; -1 matches any
	Flags   znode.Flags

	// traceID is the request's causal trace id (package obs). Unexported:
	// gob skips it, so the descriptor — and the golden trace — stays
	// byte-identical. The binary codec carries it as a first-class trailing
	// field, and any stage can recompute it from (Session, Seq).
	traceID int64
}

// trace returns the causal trace id: the decoded wire field when present,
// else re-minted from (Session, Seq) — deterministic, so every pipeline
// stage derives the same id without any wire support.
func (r Request) trace() int64 {
	if r.traceID != 0 {
		return r.traceID
	}
	return obs.TraceOf(r.Session, r.Seq)
}

// Encode serializes the request for the cloud queue.
func (r Request) Encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		panic("core: request marshal: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeRequest parses a queue message body.
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
	return r, err
}

// leaderMsg is the follower-to-leader message carrying a validated change
// (step ③ of Algorithm 1). The queue's sequence number becomes the
// transaction id.
type leaderMsg struct {
	Session string
	Seq     int64
	Op      OpCode
	Path    string

	// Shard is the leader pipeline this message was routed to; txids are
	// derived from the shard queue's sequence number via shardTxid.
	Shard int
	// Fanout is set on OpDeregister acks: the number of shards the ack was
	// replicated to. The last shard to process its copy answers the client,
	// so the ack still orders behind every ephemeral deletion on every
	// shard the session touched. DeregID distinguishes this fanout from
	// any earlier, abandoned deregistration of the same session id.
	Fanout  int
	DeregID int64

	NodeBlob []byte // marshaled znode (mzxid patched by leader)

	ParentPath string
	ChildAdd   string
	ChildDel   string

	LockTs       int64 // for the leader's TryCommit fallback
	ParentLockTs int64

	Version  int32 // node's new data version
	Cversion int32 // parent's new child version

	EphOwner string

	// traceID mirrors Request.traceID across the follower→leader hop (see
	// there); unexported for the same gob-descriptor reason.
	traceID int64
}

// trace is leaderMsg's Request.trace counterpart.
func (m leaderMsg) trace() int64 {
	if m.traceID != 0 {
		return m.traceID
	}
	return obs.TraceOf(m.Session, m.Seq)
}

// txnMsg is the transaction payload an OpMulti or OpTxnCommit leader
// message carries in its NodeBlob field (like Request.Data, reusing the
// existing field keeps the single-op gob encoding byte-identical). Ops
// are the resolved sub-ops the message applies; ItemPaths/LockTs (fast
// path only) list the locked system items and their timed-lock
// timestamps, letting the leader replay the multi-item commit on behalf
// of a crashed coordinator, exactly like tryCommit's per-op
// reconstruction — cross-shard replays are guarded by the intent
// attribute instead.
type txnMsg struct {
	ID        int64
	Ops       []txn.ResolvedOp
	ItemPaths []string
	LockTs    []int64

	// traceID is the originating multi() request's causal trace id, set at
	// construction (txnMsg has no Session/Seq of its own to re-mint it
	// from). Unexported and always set deterministically, so the binary
	// encoding is identical whether telemetry is on or off.
	traceID int64
}

func (m txnMsg) encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic("core: txn msg marshal: " + err.Error())
	}
	return buf.Bytes()
}

func decodeTxnMsg(b []byte) (txnMsg, error) {
	var m txnMsg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return m, err
}

func (m leaderMsg) encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic("core: leader msg marshal: " + err.Error())
	}
	return buf.Bytes()
}

func decodeLeaderMsg(b []byte) (leaderMsg, error) {
	var m leaderMsg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return m, err
}

// Response is sent to the client over its notification connection: from
// the leader on success, or directly from the follower on validation
// failure.
type Response struct {
	Session string
	Seq     int64
	Code    Code
	Path    string // created node name (create), else echo
	Stat    znode.Stat
	Txid    int64

	// MultiResults carries a multi()'s per-op outcomes (nil otherwise).
	MultiResults []txn.Result

	// MapEpoch is the shard-map epoch the answering leader observed (0 on
	// static deployments): the client library refreshes its cached routing
	// table when a response proves a newer epoch exists. Responses travel
	// as in-memory payloads with a modeled wireSize, so the field adds no
	// bytes to the golden trace.
	MapEpoch int64
}

// wireSize estimates the response's on-wire size for the network model.
func (r Response) wireSize() int {
	n := len(r.Path) + 96
	for _, mr := range r.MultiResults {
		n += len(mr.Path) + 96
	}
	return n
}

// WatchType distinguishes the three watch registrations ZooKeeper offers.
type WatchType uint8

// Watch types.
const (
	WatchData WatchType = iota + 1
	WatchExists
	WatchChild
	// The persistent kinds (ZooKeeper 3.6 addWatch) are served by the
	// watch fan-out tier only — they never touch the legacy system-store
	// watch items. Values mirror watchfanout.Kind.
	WatchPersistent
	WatchPersistentRecursive
)

func (w WatchType) String() string {
	switch w {
	case WatchData:
		return "data"
	case WatchExists:
		return "exists"
	case WatchChild:
		return "child"
	case WatchPersistent:
		return "persistent"
	case WatchPersistentRecursive:
		return "recursive"
	}
	return "?"
}

// EventType describes what happened to a watched node.
type EventType uint8

// Watch event types.
const (
	EventDataChanged EventType = iota + 1
	EventCreated
	EventDeleted
	EventChildrenChanged
)

func (e EventType) String() string {
	switch e {
	case EventDataChanged:
		return "data_changed"
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventChildrenChanged:
		return "children_changed"
	}
	return "?"
}

// WatchID derives the stable identifier of a watch group (path, type).
// Both the client library and the leader compute it independently, so the
// id never needs an extra storage round trip; these are the identifiers
// carried in the epoch counters (Section 3.4).
func WatchID(path string, wt WatchType) int64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	h.Write([]byte{0, byte(wt)})
	return int64(h.Sum64() &^ (1 << 63))
}

// Notification is a watch event pushed to clients by the watch function.
type Notification struct {
	WatchID int64
	Event   EventType
	Path    string
	Txid    int64
}

func (n Notification) wireSize() int { return len(n.Path) + 40 }

// Ping is the heartbeat probe; clients answer with Pong on their session
// connection.
type Ping struct {
	Nonce int64
}

// Pong is the client's heartbeat reply.
type Pong struct {
	Session string
	Nonce   int64
}

// watchPayload is the free watch function's invocation payload.
type watchPayload struct {
	WatchID  int64
	Event    EventType
	Path     string
	Txid     int64
	Sessions []string
}

func (p watchPayload) encode() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		panic("core: watch payload marshal: " + err.Error())
	}
	return buf.Bytes()
}

func decodeWatchPayload(b []byte) (watchPayload, error) {
	var p watchPayload
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p)
	return p, err
}
