package core

// BenchmarkWireCodec isolates the codecs from the pipeline: encode and
// decode per hot message type, gob vs binary, with allocs reported. This
// is the microscopic view behind the BenchmarkFK* deltas — run with
//
//	go test ./internal/core -bench BenchmarkWireCodec -benchmem
//
// to see the per-message cost the binary codec removes.

import (
	"testing"

	"faaskeeper/internal/wire"
)

func BenchmarkWireCodec(b *testing.B) {
	req := testRequests()[1]
	lm := testLeaderMsgs()[1]
	tm := testTxnMsgs()[1]
	wp := testWatchPayloads()[1]
	for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
		c := c
		b.Run("request/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := wire.NewEncoder()
				if _, err := decodeRequestWith(c, req.EncodeWith(c, e)); err != nil {
					b.Fatal(err)
				}
				e.Release()
			}
		})
		b.Run("leadermsg/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := wire.NewEncoder()
				if _, err := decodeLeaderMsgWith(c, lm.encodeWith(c, e)); err != nil {
					b.Fatal(err)
				}
				e.Release()
			}
		})
		b.Run("txnmsg/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := wire.NewEncoder()
				if _, err := decodeTxnMsgWith(c, tm.encodeWith(c, e)); err != nil {
					b.Fatal(err)
				}
				e.Release()
			}
		})
		b.Run("watch/"+c.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := wire.NewEncoder()
				if _, err := decodeWatchPayloadWith(c, wp.encodeWith(c, e)); err != nil {
					b.Fatal(err)
				}
				e.Release()
			}
		})
	}
}
