package core

// Round-trip, cross-codec equivalence, and allocation-budget tests for
// the binary wire codecs. Every wire type must satisfy two properties:
// decode(encode(x)) == x under each codec, and the two codecs must be
// semantically equivalent — the same value decodes to the same value
// whichever representation carried it. Gob decodes empty slices as nil,
// so comparisons normalize nil vs empty.

import (
	"bytes"
	"reflect"
	"testing"

	"faaskeeper/internal/txn"
	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

func testRequests() []Request {
	return []Request{
		{},
		{Session: "s-1", Seq: 7, Op: OpCreate, Path: "/a/b", Data: []byte("payload"), Version: -1, Flags: znode.FlagEphemeral},
		{Session: "s-2", Seq: -3, Op: OpSetData, Path: "/x", Data: bytes.Repeat([]byte{0xFF}, 300), Version: 12},
		{Session: "watch", Op: OpDeregister, Path: "/w", Data: nil},
	}
}

func testLeaderMsgs() []leaderMsg {
	return []leaderMsg{
		{},
		{
			Session: "s", Seq: 9, Op: OpCreate, Path: "/p/c", Shard: 3, Fanout: 2, DeregID: 44,
			NodeBlob: []byte{1, 2, 3}, ParentPath: "/p", ChildAdd: "c", ChildDel: "d",
			LockTs: 100, ParentLockTs: 101, Version: 5, Cversion: 6, EphOwner: "owner",
		},
		{Session: "neg", Seq: -1, Op: OpDelete, Path: "/z", Version: -1},
	}
}

func testTxnMsgs() []txnMsg {
	return []txnMsg{
		{},
		{
			ID: 88,
			Ops: []txn.ResolvedOp{
				{Type: txn.OpCreate, Path: "/t/a", ParentPath: "/t", Data: []byte("d"), Cversion: 2, EphOwner: "e", ChildAdd: "a", Shard: 1},
				{Type: txn.OpDelete, Path: "/t/b", ParentPath: "/t", Version: 3, ChildDel: "b", Shard: 2},
				{Type: txn.OpCheck, Path: "/t"},
			},
			ItemPaths: []string{"/t/a", "/t/b"},
			LockTs:    []int64{10, -20},
		},
	}
}

func testWatchPayloads() []watchPayload {
	return []watchPayload{
		{},
		{WatchID: 5, Event: EventDataChanged, Path: "/w", Txid: 99, Sessions: []string{"a", "b"}},
	}
}

// normalize maps nil and empty slices to a canonical form so gob's
// nil-for-empty decoding compares equal to the binary decoder's output.
// The trace id is zeroed: the binary wire carries it as a trailing field
// (re-minted from Session/Seq when unset), while gob — which skips
// unexported fields — leaves re-derivation to the receiver.
func normReq(r Request) Request {
	if len(r.Data) == 0 {
		r.Data = nil
	}
	r.traceID = 0
	return r
}

func normLM(m leaderMsg) leaderMsg {
	if len(m.NodeBlob) == 0 {
		m.NodeBlob = nil
	}
	m.traceID = 0
	return m
}

func normTM(m txnMsg) txnMsg {
	for i := range m.Ops {
		if len(m.Ops[i].Data) == 0 {
			m.Ops[i].Data = nil
		}
	}
	if len(m.Ops) == 0 {
		m.Ops = nil
	}
	if len(m.ItemPaths) == 0 {
		m.ItemPaths = nil
	}
	if len(m.LockTs) == 0 {
		m.LockTs = nil
	}
	m.traceID = 0
	return m
}

func normWP(p watchPayload) watchPayload {
	if len(p.Sessions) == 0 {
		p.Sessions = nil
	}
	return p
}

func TestRequestCodecEquivalence(t *testing.T) {
	for _, r := range testRequests() {
		for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
			e := wire.NewEncoder()
			got, err := decodeRequestWith(c, r.EncodeWith(c, e))
			e.Release()
			if err != nil {
				t.Fatalf("%v decode: %v", c, err)
			}
			if !reflect.DeepEqual(normReq(got), normReq(r)) {
				t.Errorf("%v round trip: %+v != %+v", c, got, r)
			}
		}
	}
}

func TestLeaderMsgCodecEquivalence(t *testing.T) {
	for _, m := range testLeaderMsgs() {
		for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
			e := wire.NewEncoder()
			got, err := decodeLeaderMsgWith(c, m.encodeWith(c, e))
			e.Release()
			if err != nil {
				t.Fatalf("%v decode: %v", c, err)
			}
			if !reflect.DeepEqual(normLM(got), normLM(m)) {
				t.Errorf("%v round trip: %+v != %+v", c, got, m)
			}
		}
	}
}

func TestTxnMsgCodecEquivalence(t *testing.T) {
	for _, m := range testTxnMsgs() {
		for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
			e := wire.NewEncoder()
			got, err := decodeTxnMsgWith(c, m.encodeWith(c, e))
			e.Release()
			if err != nil {
				t.Fatalf("%v decode: %v", c, err)
			}
			if !reflect.DeepEqual(normTM(got), normTM(m)) {
				t.Errorf("%v round trip: %+v != %+v", c, got, m)
			}
		}
	}
}

func TestWatchPayloadCodecEquivalence(t *testing.T) {
	for _, p := range testWatchPayloads() {
		for _, c := range []wire.Codec{wire.Gob, wire.Binary} {
			e := wire.NewEncoder()
			got, err := decodeWatchPayloadWith(c, p.encodeWith(c, e))
			e.Release()
			if err != nil {
				t.Fatalf("%v decode: %v", c, err)
			}
			if !reflect.DeepEqual(normWP(got), normWP(p)) {
				t.Errorf("%v round trip: %+v != %+v", c, got, p)
			}
		}
	}
}

func TestDecodeRejectsWrongTag(t *testing.T) {
	e := wire.NewEncoder()
	defer e.Release()
	b := Request{Session: "s"}.EncodeWith(wire.Binary, e)
	if _, err := decodeLeaderMsgWith(wire.Binary, b); err == nil {
		t.Error("leaderMsg decode accepted a request blob")
	}
	if _, err := decodeTxnMsgWith(wire.Binary, b); err == nil {
		t.Error("txnMsg decode accepted a request blob")
	}
	if _, err := decodeWatchPayloadWith(wire.Binary, b); err == nil {
		t.Error("watchPayload decode accepted a request blob")
	}
}

// Allocation budgets for the binary hot paths, locked so a regression
// that reintroduces per-message garbage fails loudly. The counts are
// ceilings, not exact (minor Go-version variance): a full encode+decode
// round trip of a request is at most 5 allocations (three decoded
// strings, the Op string, slice headers) and a leader message at most 8.
// The gob equivalents run 30+ allocations per round trip — the budget
// tests double as the codec's raison d'être.
func TestBinaryAllocBudgets(t *testing.T) {
	req := testRequests()[1]
	lm := testLeaderMsgs()[1]
	if allocs := testing.AllocsPerRun(200, func() {
		e := wire.NewEncoder()
		b := req.EncodeWith(wire.Binary, e)
		if _, err := decodeRequestWith(wire.Binary, b); err != nil {
			t.Fatal(err)
		}
		e.Release()
	}); allocs > 5 {
		t.Errorf("request binary round trip: %.0f allocs, budget 5", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		e := wire.NewEncoder()
		b := lm.encodeWith(wire.Binary, e)
		if _, err := decodeLeaderMsgWith(wire.Binary, b); err != nil {
			t.Fatal(err)
		}
		e.Release()
	}); allocs > 8 {
		t.Errorf("leader msg binary round trip: %.0f allocs, budget 8", allocs)
	}
}

// FuzzRequestCodecs feeds arbitrary field values through both codecs and
// requires agreement: each round-trips exactly, and binary(x) decodes to
// the same value gob(x) decodes to.
func FuzzRequestCodecs(f *testing.F) {
	f.Add("s", int64(1), "create", "/a", []byte("d"), int32(-1), byte(1))
	f.Add("", int64(0), "", "", []byte(nil), int32(0), byte(0))
	f.Fuzz(func(t *testing.T, session string, seq int64, op string, path string, data []byte, version int32, flags byte) {
		r := Request{Session: session, Seq: seq, Op: OpCode(op), Path: path, Data: data, Version: version, Flags: znode.Flags(flags)}
		e := wire.NewEncoder()
		defer e.Release()
		bin, err := decodeRequestWith(wire.Binary, r.EncodeWith(wire.Binary, e))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := decodeRequestWith(wire.Gob, r.Encode())
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normReq(bin), normReq(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
		if !reflect.DeepEqual(normReq(bin), normReq(r)) {
			t.Fatalf("round trip: %+v != %+v", bin, r)
		}
	})
}

// FuzzLeaderMsgCodecs does the same for the leader pipeline message.
func FuzzLeaderMsgCodecs(f *testing.F) {
	f.Add("s", int64(2), "set_data", "/p", 1, 0, int64(3), []byte{9}, "/q", "a", "b", int64(4), int64(5), int32(6), int32(7), "o")
	f.Fuzz(func(t *testing.T, session string, seq int64, op string, path string, shard int, fanout int, deregID int64,
		blob []byte, parent string, childAdd string, childDel string, lockTs int64, parentLockTs int64,
		version int32, cversion int32, ephOwner string) {
		m := leaderMsg{
			Session: session, Seq: seq, Op: OpCode(op), Path: path, Shard: shard, Fanout: fanout,
			DeregID: deregID, NodeBlob: blob, ParentPath: parent, ChildAdd: childAdd, ChildDel: childDel,
			LockTs: lockTs, ParentLockTs: parentLockTs, Version: version, Cversion: cversion, EphOwner: ephOwner,
		}
		e := wire.NewEncoder()
		defer e.Release()
		bin, err := decodeLeaderMsgWith(wire.Binary, m.encodeWith(wire.Binary, e))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := decodeLeaderMsgWith(wire.Gob, m.encode())
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normLM(bin), normLM(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
		if !reflect.DeepEqual(normLM(bin), normLM(m)) {
			t.Fatalf("round trip: %+v != %+v", bin, m)
		}
	})
}

// FuzzWatchPayloadCodecs covers the watch invocation payload, including
// multi-element session lists.
func FuzzWatchPayloadCodecs(f *testing.F) {
	f.Add(int64(1), byte(2), "/w", int64(3), "a", "b")
	f.Fuzz(func(t *testing.T, wid int64, event byte, path string, txid int64, s1 string, s2 string) {
		p := watchPayload{WatchID: wid, Event: EventType(event), Path: path, Txid: txid, Sessions: []string{s1, s2}}
		e := wire.NewEncoder()
		defer e.Release()
		bin, err := decodeWatchPayloadWith(wire.Binary, p.encodeWith(wire.Binary, e))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := decodeWatchPayloadWith(wire.Gob, p.encode())
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normWP(bin), normWP(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
	})
}

// FuzzTxnMsgCodecs covers the transaction payload with one fuzzed
// resolved op plus list fields.
func FuzzTxnMsgCodecs(f *testing.F) {
	f.Add(int64(1), "create", "/t/a", "/t", []byte("d"), int32(1), int32(2), "e", "a", "", 3, "/t/a", int64(9))
	f.Fuzz(func(t *testing.T, id int64, opType string, path string, parent string, data []byte,
		version int32, cversion int32, ephOwner string, childAdd string, childDel string, shard int,
		itemPath string, lockTs int64) {
		m := txnMsg{
			ID: id,
			Ops: []txn.ResolvedOp{{
				Type: txn.OpType(opType), Path: path, ParentPath: parent, Data: data,
				Version: version, Cversion: cversion, EphOwner: ephOwner,
				ChildAdd: childAdd, ChildDel: childDel, Shard: shard,
			}},
			ItemPaths: []string{itemPath},
			LockTs:    []int64{lockTs},
		}
		e := wire.NewEncoder()
		defer e.Release()
		bin, err := decodeTxnMsgWith(wire.Binary, m.encodeWith(wire.Binary, e))
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		g, err := decodeTxnMsgWith(wire.Gob, m.encode())
		if err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(normTM(bin), normTM(g)) {
			t.Fatalf("codecs disagree: binary %+v, gob %+v", bin, g)
		}
	})
}
