package core

import (
	"strconv"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/znode"
)

// System-store key prefixes and attribute names. One DynamoDB-like table
// holds four kinds of items (Section 3.3): per-node control records (lock
// timestamp, committed metadata, pending transactions), session records,
// watch registrations, and the region epoch counters.
const (
	nodeKeyPrefix    = "node:"
	sessionKeyPrefix = "session:"
	watchKeyPrefix   = "watch:"
	epochKeyPrefix   = "epoch:"
	deregKeyPrefix   = "dereg:"

	// watchSetKeyPrefix items record each session's persistent watch
	// registrations (fan-out tier only): one string list of watched
	// paths, durable and cheap to read back at connect time for
	// watch-set cache warm-up.
	watchSetKeyPrefix = "watchset:"
	attrWatchSet      = "paths"

	// rootUpdateLockKey is the timed-lock item serializing cross-shard
	// read-modify-write cycles on the root node's user-store object.
	rootUpdateLockKey = "rootupdate"

	// attrDeregAcks accumulates "<deregID>/<shard>" markers on the
	// deregistration barrier item; deregSeqKey holds the system-store
	// counter minting the ids (followers are stateless, so the id must
	// survive restarts to keep abandoned-fanout markers distinguishable).
	attrDeregAcks = "acks"
	deregSeqKey   = "deregseq"
	attrDeregSeq  = "n"

	attrExists   = "exists"
	attrVersion  = "version"
	attrCversion = "cversion"
	attrCzxid    = "czxid"
	attrMzxid    = "mzxid"
	attrPzxid    = "pzxid"
	attrChildren = "children"
	attrEph      = "eph"
	attrSeq      = "seq"
	attrPending  = "pending"

	// attrTxnIntent marks a node item claimed by an in-flight cross-shard
	// transaction (package txn): the value is the transaction id. Unlike
	// the timed lock it never lease-expires — only the transaction's
	// commit or abort clears it, so a committed decision can always apply.
	// Writers finding a foreign intent consult the transaction record and
	// either clear a stale one or wait (see lockNodeClean).
	attrTxnIntent = "txnintent"

	// attrTxnCommitMark makes the cross-shard commit's per-item updates
	// idempotent: the conditional commit requires the intent AND the mark
	// to be absent for this transaction id, so the coordinator and a
	// leader replaying on its behalf can race without double-applying.
	// Both attributes are cleared together after the transaction's
	// user-store apply — the intent stays up to that point so no
	// conflicting write can slip between a shard's commit and the
	// atomic apply.
	attrTxnCommitMark = "txnmark"

	attrSessionEph  = "eph"
	attrSessionReg  = "reg"
	attrSessionAddr = "addr"

	attrWatchData   = "w_data"
	attrWatchExists = "w_exists"
	attrWatchChild  = "w_child"

	attrEpochList = "w"
)

func nodeKey(path string) string   { return nodeKeyPrefix + path }
func sessionKey(id string) string  { return sessionKeyPrefix + id }
func watchKey(path string) string  { return watchKeyPrefix + path }
func deregKey(id string) string    { return deregKeyPrefix + id }
func watchSetKey(id string) string { return watchSetKeyPrefix + id }

// epochKey names the per-region, per-shard watch epoch counter. Each
// leader shard keeps its own in-flight watch list, so shards never contend
// on epoch bookkeeping.
func epochKey(r cloud.Region, shard int) string {
	return epochKeyPrefix + string(r) + "/" + strconv.Itoa(shard)
}

// sysNode is the decoded view of a per-node system item.
type sysNode struct {
	Exists    bool
	Version   int32
	Cversion  int32
	Czxid     int64
	Mzxid     int64
	Pzxid     int64
	Children  []string
	EphOwner  string
	SeqCtr    int64
	Pending   []int64
	TxnIntent int64 // in-flight transaction id holding this node (0 = none)
}

func decodeSysNode(it kv.Item) sysNode {
	if it == nil {
		return sysNode{}
	}
	return sysNode{
		Exists:   it[attrExists].Num == 1,
		Version:  int32(it[attrVersion].Num),
		Cversion: int32(it[attrCversion].Num),
		Czxid:    it[attrCzxid].Num,
		Mzxid:    it[attrMzxid].Num,
		Pzxid:    it[attrPzxid].Num,
		// Children is copied: the item may be a read-only GetView of table
		// storage, and callers append to the list (spliceInto via
		// buildUserNode). Pending stays a view — all uses are read-only.
		Children:  append([]string(nil), it[attrChildren].SL...),
		EphOwner:  it[attrEph].Str,
		SeqCtr:    it[attrSeq].Num,
		Pending:   it[attrPending].NL,
		TxnIntent: it[attrTxnIntent].Num,
	}
}

// hasChild reports whether the child name is present.
func (s sysNode) hasChild(name string) bool {
	for _, c := range s.Children {
		if c == name {
			return true
		}
	}
	return false
}

// toZNode builds the client-visible node from system metadata plus data.
func (s sysNode) toZNode(path string, data []byte) *znode.Node {
	return &znode.Node{
		Path: path,
		Data: data,
		Stat: znode.Stat{
			Czxid:       s.Czxid,
			Mzxid:       s.Mzxid,
			Pzxid:       s.Pzxid,
			Version:     s.Version,
			Cversion:    s.Cversion,
			Ephemeral:   s.EphOwner != "",
			Owner:       s.EphOwner,
			DataLength:  int32(len(data)),
			NumChildren: int32(len(s.Children)),
		},
		Children: append([]string(nil), s.Children...),
	}
}
