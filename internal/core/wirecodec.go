package core

// Binary wire codecs for the pipeline's hot message types (package wire).
// The gob codecs in types.go stay the paper-faithful default — the golden
// virtual-time trace depends on gob's message sizes — and every decode is
// codec-directed by Config.WireCodec, never sniffed. Byte-slice fields
// (Request.Data, leaderMsg.NodeBlob, resolved-op Data) decode as
// zero-copy views into the queue message body, which the receiving
// handler owns; everything the pipeline retains beyond the handler
// (store items, marshaled znodes) is copied by the storage layer.

import (
	"fmt"

	"faaskeeper/internal/txn"
	"faaskeeper/internal/wire"
	"faaskeeper/internal/znode"
)

// Format tags distinguish the message families sharing a queue.
const (
	tagRequest   byte = 0xB1
	tagLeaderMsg byte = 0xB2
	tagTxnMsg    byte = 0xB3
	tagWatch     byte = 0xB4
)

// EncodeWith serializes the request with the chosen codec (exported: the
// client library encodes its own requests). Under binary the returned
// slice aliases e's pooled buffer: consume (queue.Send copies) before
// e.Release, or e.Detach to keep it.
func (r Request) EncodeWith(c wire.Codec, e *wire.Encoder) []byte {
	if c == wire.Gob {
		return r.Encode()
	}
	e.Byte(tagRequest)
	e.String(r.Session)
	e.Varint(r.Seq)
	e.String(string(r.Op))
	e.String(r.Path)
	e.Bytes(r.Data)
	e.Varint(int64(r.Version))
	e.Byte(byte(r.Flags))
	// Trailing causal trace id (package obs), always written: re-minted
	// from (Session, Seq) when unset, so the bytes never depend on whether
	// telemetry is enabled.
	e.Varint(r.trace())
	return e.Data()
}

// decodeRequestWith parses a session-queue body under the same codec.
func decodeRequestWith(c wire.Codec, b []byte) (Request, error) {
	if c == wire.Gob {
		return DecodeRequest(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagRequest {
		return Request{}, fmt.Errorf("%w: request tag", wire.ErrCorrupt)
	}
	r := Request{
		Session: d.String(),
		Seq:     d.Varint(),
		Op:      OpCode(d.String()),
		Path:    d.String(),
		Data:    d.Bytes(),
		Version: int32(d.Varint()),
		Flags:   znode.Flags(d.Byte()),
		traceID: d.Varint(),
	}
	return r, d.Err()
}

// encodeWith serializes the leader message with the chosen codec; same
// buffer ownership rules as Request.encodeWith.
func (m leaderMsg) encodeWith(c wire.Codec, e *wire.Encoder) []byte {
	if c == wire.Gob {
		return m.encode()
	}
	e.Byte(tagLeaderMsg)
	e.String(m.Session)
	e.Varint(m.Seq)
	e.String(string(m.Op))
	e.String(m.Path)
	e.Varint(int64(m.Shard))
	e.Varint(int64(m.Fanout))
	e.Varint(m.DeregID)
	e.Bytes(m.NodeBlob)
	e.String(m.ParentPath)
	e.String(m.ChildAdd)
	e.String(m.ChildDel)
	e.Varint(m.LockTs)
	e.Varint(m.ParentLockTs)
	e.Varint(int64(m.Version))
	e.Varint(int64(m.Cversion))
	e.String(m.EphOwner)
	e.Varint(m.trace()) // trailing trace id, same rule as Request
	return e.Data()
}

// decodeLeaderMsgWith parses a leader-queue body under the same codec.
func decodeLeaderMsgWith(c wire.Codec, b []byte) (leaderMsg, error) {
	if c == wire.Gob {
		return decodeLeaderMsg(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagLeaderMsg {
		return leaderMsg{}, fmt.Errorf("%w: leader msg tag", wire.ErrCorrupt)
	}
	m := leaderMsg{
		Session:      d.String(),
		Seq:          d.Varint(),
		Op:           OpCode(d.String()),
		Path:         d.String(),
		Shard:        int(d.Varint()),
		Fanout:       int(d.Varint()),
		DeregID:      d.Varint(),
		NodeBlob:     d.Bytes(),
		ParentPath:   d.String(),
		ChildAdd:     d.String(),
		ChildDel:     d.String(),
		LockTs:       d.Varint(),
		ParentLockTs: d.Varint(),
		Version:      int32(d.Varint()),
		Cversion:     int32(d.Varint()),
		EphOwner:     d.String(),
		traceID:      d.Varint(),
	}
	return m, d.Err()
}

// encodeWith serializes the transaction payload with the chosen codec;
// same buffer ownership rules as Request.encodeWith.
func (m txnMsg) encodeWith(c wire.Codec, e *wire.Encoder) []byte {
	if c == wire.Gob {
		return m.encode()
	}
	e.Byte(tagTxnMsg)
	e.Varint(m.ID)
	txn.AppendResolvedOps(e, m.Ops)
	e.Strings(m.ItemPaths)
	e.Int64s(m.LockTs)
	e.Varint(m.traceID) // set at construction; 0 only in hand-built fixtures
	return e.Data()
}

// decodeTxnMsgWith parses a transaction payload under the same codec.
func decodeTxnMsgWith(c wire.Codec, b []byte) (txnMsg, error) {
	if c == wire.Gob {
		return decodeTxnMsg(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagTxnMsg {
		return txnMsg{}, fmt.Errorf("%w: txn msg tag", wire.ErrCorrupt)
	}
	m := txnMsg{
		ID:        d.Varint(),
		Ops:       txn.ReadResolvedOps(&d),
		ItemPaths: d.Strings(),
		LockTs:    d.Int64s(),
		traceID:   d.Varint(),
	}
	return m, d.Err()
}

// encodeWith serializes the watch invocation payload with the chosen
// codec; same buffer ownership rules as Request.encodeWith (the faas
// platform retains async payloads — Detach before Release).
func (p watchPayload) encodeWith(c wire.Codec, e *wire.Encoder) []byte {
	if c == wire.Gob {
		return p.encode()
	}
	e.Byte(tagWatch)
	e.Varint(p.WatchID)
	e.Byte(byte(p.Event))
	e.String(p.Path)
	e.Varint(p.Txid)
	e.Strings(p.Sessions)
	return e.Data()
}

// encodeWatchOwned serializes a watch payload into bytes the callee may
// retain (faas.InvokeAsync captures its payload in a goroutine): the
// pooled scratch buffer is detached before the encoder is recycled.
func (d *Deployment) encodeWatchOwned(p watchPayload) []byte {
	e := wire.NewEncoder()
	b := p.encodeWith(d.Cfg.codec, e)
	e.Detach()
	e.Release()
	return b
}

// encodeTxnMsgOwned serializes a transaction payload into owned bytes
// (it rides inside a leaderMsg, outliving any scratch buffer scope).
func (d *Deployment) encodeTxnMsgOwned(m txnMsg) []byte {
	e := wire.NewEncoder()
	b := m.encodeWith(d.Cfg.codec, e)
	e.Detach()
	e.Release()
	return b
}

// decodeWatchPayloadWith parses a watch payload under the same codec.
func decodeWatchPayloadWith(c wire.Codec, b []byte) (watchPayload, error) {
	if c == wire.Gob {
		return decodeWatchPayload(b)
	}
	d := wire.NewDecoder(b)
	if d.Byte() != tagWatch {
		return watchPayload{}, fmt.Errorf("%w: watch payload tag", wire.ErrCorrupt)
	}
	p := watchPayload{
		WatchID:  d.Varint(),
		Event:    EventType(d.Byte()),
		Path:     d.String(),
		Txid:     d.Varint(),
		Sessions: d.Strings(),
	}
	return p, d.Err()
}
