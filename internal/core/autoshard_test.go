package core

import (
	"testing"
	"time"

	"faaskeeper/internal/shardmap"
)

// autoShardCase drives the extracted policy over a synthetic depth
// schedule: one row per monitor tick, one column per shard.
func driveAutoShard(p *autoShardPolicy, m *shardmap.Map, rows [][]int64) []autoShardAction {
	out := make([]autoShardAction, 0, len(rows))
	for _, row := range rows {
		row := row
		out = append(out, p.step(m, func(s int) int64 {
			if s >= len(row) {
				return 0
			}
			return row[s]
		}))
	}
	return out
}

func autoShardCfg(costAware bool) AutoShard {
	cfg := AutoShard{
		Enabled:   true,
		CostAware: costAware,
	}
	cfg.defaults()
	cfg.MergeIdle = 2
	return cfg
}

// splitMap models the state after "/hot" was split over shards 1 and 2.
func splitMap() *shardmap.Map {
	m := shardmap.New(1)
	m.Queues = 3
	m.Splits = []shardmap.Split{{Prefix: "/hot", Shards: []int{1, 2}}}
	return m
}

// TestAutoShardCostObjectiveFlipsMerge is the decision-flip demonstration:
// on the identical depth schedule — a split that goes idle immediately —
// the depth-threshold policy merges after MergeIdle quiet samples, while
// the cost-aware objective declines because the split never absorbed
// enough queue-delay cost to pay for its own transition plus the merge's.
func TestAutoShardCostObjectiveFlipsMerge(t *testing.T) {
	// Two idle ticks on the split's shards; no shard is hot.
	rows := [][]int64{{0, 0, 0}, {0, 0, 0}}

	est := 1e-4 // $ per reshard transition
	depthActs := driveAutoShard(newAutoShardPolicy(autoShardCfg(false), est), splitMap(), rows)
	costActs := driveAutoShard(newAutoShardPolicy(autoShardCfg(true), est), splitMap(), rows)

	if got := depthActs[len(depthActs)-1].merge; got != "/hot" {
		t.Fatalf("depth policy: want merge of /hot on tick %d, got %q", len(rows), got)
	}
	for i, a := range costActs {
		if a.merge != "" {
			t.Fatalf("cost policy: merged %q on tick %d despite an unpaid split", a.merge, i+1)
		}
	}
}

// TestAutoShardCostMergesPaidSplit is the other direction of the flip: a
// split that carried heavy load long enough to cover both reshard
// transitions is merged by the cost-aware policy once it idles — the
// objective is economic, not a refusal to ever merge.
func TestAutoShardCostMergesPaidSplit(t *testing.T) {
	cfg := autoShardCfg(true)
	est := 1e-4
	// Each loaded tick accrues 2 shards x depth 4 x 1 s x $1e-6 = $8e-6
	// of absorbed delay onto "/hot"; 30 ticks accrue $2.4e-4 >= 2 x est.
	// Depth 4 stays below SplitDepth (6) so no further split interferes.
	rows := make([][]int64, 0, 32)
	for i := 0; i < 30; i++ {
		rows = append(rows, []int64{0, 4, 4})
	}
	rows = append(rows, []int64{0, 0, 0}, []int64{0, 0, 0})

	acts := driveAutoShard(newAutoShardPolicy(cfg, est), splitMap(), rows)
	if got := acts[len(acts)-1].merge; got != "/hot" {
		t.Fatalf("cost policy: want merge of the paid-off /hot split, got %q", got)
	}
}

// TestAutoShardCostGatesSplit checks the split side of the objective: a
// sustained hot streak splits immediately under the depth policy but
// waits for the delay pool to cover the reshard estimate in cost mode.
func TestAutoShardCostGatesSplit(t *testing.T) {
	m := shardmap.New(1)
	m.Queues = 1

	// Depth 8 >= SplitDepth sustains from tick 1; each tick pools
	// 8 x 1 s x $1e-6 = $8e-6 on shard 0.
	rows := make([][]int64, 8)
	for i := range rows {
		rows[i] = []int64{8}
	}

	est := 5e-5 // needs ceil(est / 8e-6) = 7 ticks of pooled delay
	depthActs := driveAutoShard(newAutoShardPolicy(autoShardCfg(false), est), m, rows)
	costActs := driveAutoShard(newAutoShardPolicy(autoShardCfg(true), est), m, rows)

	firstSplit := func(acts []autoShardAction) int {
		for i, a := range acts {
			if a.splitShard == 0 {
				return i + 1
			}
		}
		return -1
	}
	if got := firstSplit(depthActs); got != 3 { // Sustain default
		t.Fatalf("depth policy: want split on tick 3, got %d", got)
	}
	if got := firstSplit(costActs); got != 7 {
		t.Fatalf("cost policy: want split deferred to tick 7, got %d", got)
	}
}

// TestAutoShardCostPolicyInterval ensures the pool prices delay in real
// sampled time: halving the interval halves each tick's accrual, so the
// same schedule takes twice as many ticks to afford the split.
func TestAutoShardCostPolicyInterval(t *testing.T) {
	cfg := autoShardCfg(true)
	cfg.Interval = 500 * time.Millisecond

	rows := make([][]int64, 16)
	for i := range rows {
		rows[i] = []int64{8}
	}
	est := 5e-5 // each tick pools $4e-6; affordable on tick 13
	acts := driveAutoShard(newAutoShardPolicy(cfg, est), shardmapOne(), rows)
	for i, a := range acts {
		switch {
		case i+1 < 13 && a.splitShard != -1:
			t.Fatalf("split on tick %d, before the pool covered the estimate", i+1)
		case i+1 == 13 && a.splitShard != 0:
			t.Fatalf("no split on tick 13 with the estimate covered")
		}
	}
}

func shardmapOne() *shardmap.Map {
	m := shardmap.New(1)
	m.Queues = 1
	return m
}
