package core

import (
	"slices"
	"testing"

	"faaskeeper/internal/znode"
)

func TestBatchFoldLastWriteWins(t *testing.T) {
	f := newBatchFold()
	f.foldWrite("/a", &znode.Node{Path: "/a", Data: []byte("1"), Stat: znode.Stat{Mzxid: 1}}, 1)
	f.foldWrite("/a", &znode.Node{Path: "/a", Data: []byte("2"), Stat: znode.Stat{Mzxid: 5}}, 5)
	f.foldWrite("/b", &znode.Node{Path: "/b"}, 3)
	if len(f.order) != 2 || f.order[0] != "/a" || f.order[1] != "/b" {
		t.Fatalf("order = %v", f.order)
	}
	nf := f.nodes["/a"]
	if string(nf.node.Data) != "2" || nf.txid != 5 || nf.del {
		t.Fatalf("fold of /a = %+v", nf)
	}
}

func TestBatchFoldCreateDeleteCreate(t *testing.T) {
	f := newBatchFold()
	f.foldWrite("/a/x", &znode.Node{Path: "/a/x", Data: []byte("one")}, 1)
	f.foldParent("/a", "x", "", 1, 1)
	f.foldDelete("/a/x", 2)
	f.foldParent("/a", "", "x", 2, 2)
	f.foldWrite("/a/x", &znode.Node{Path: "/a/x", Data: []byte("two")}, 3)
	f.foldParent("/a", "x", "", 3, 3)

	nf := f.nodes["/a/x"]
	if nf.del || string(nf.node.Data) != "two" || nf.txid != 3 {
		t.Fatalf("final node state = %+v", nf)
	}
	pf := f.parents["/a"]
	if !pf.present["x"] {
		t.Fatal("child x must be present after create-delete-create")
	}
	if pf.cversion != 3 || pf.pzxid != 3 {
		t.Fatalf("parent stamps = cversion %d pzxid %d, want 3/3", pf.cversion, pf.pzxid)
	}
	if len(f.order) != 1 || len(f.parentOrder) != 1 {
		t.Fatalf("one node + one parent expected: %v %v", f.order, f.parentOrder)
	}
}

func TestBatchFoldDeleteEndsChain(t *testing.T) {
	f := newBatchFold()
	f.foldWrite("/a/y", &znode.Node{Path: "/a/y"}, 4)
	f.foldParent("/a", "y", "", 1, 4)
	f.foldDelete("/a/y", 6)
	f.foldParent("/a", "", "y", 2, 6)
	nf := f.nodes["/a/y"]
	if !nf.del || nf.node != nil || nf.txid != 6 {
		t.Fatalf("final state must be the tombstone: %+v", nf)
	}
	if f.parents["/a"].present["y"] {
		t.Fatal("child y must be absent")
	}
}

func TestSpliceIntoIdempotentAndRaising(t *testing.T) {
	pf := &parentFold{present: map[string]bool{}, cversion: 7, pzxid: 42}
	pf.names = []string{"x", "y", "z"}
	pf.present["x"] = true  // already in the object: no duplicate
	pf.present["y"] = false // removed
	pf.present["z"] = true  // added
	n := &znode.Node{
		Path:     "/p",
		Children: []string{"x", "y"},
		Stat:     znode.Stat{Cversion: 9, Pzxid: 40},
	}
	spliceInto(n, pf)
	if len(n.Children) != 2 || !slices.Contains(n.Children, "x") || !slices.Contains(n.Children, "z") {
		t.Fatalf("children = %v, want [x z]", n.Children)
	}
	if n.Stat.Cversion != 9 {
		t.Errorf("cversion lowered to %d: stamps must only raise", n.Stat.Cversion)
	}
	if n.Stat.Pzxid != 42 {
		t.Errorf("pzxid = %d, want raised to 42", n.Stat.Pzxid)
	}
	if n.Stat.NumChildren != 2 {
		t.Errorf("NumChildren = %d", n.Stat.NumChildren)
	}
}

func TestBatchFoldInvalidations(t *testing.T) {
	f := newBatchFold()
	f.foldWrite("/p", &znode.Node{Path: "/p"}, 2)
	f.foldWrite("/p/c", &znode.Node{Path: "/p/c"}, 5)
	f.foldParent("/p", "c", "", 1, 5)
	f.foldParent("/q", "d", "", 1, 7)

	// /p's splice folds into its node write (the distributor marks it
	// consumed and raises the node txid); /q stays a standalone parent RMW.
	pf := f.parents["/p"]
	pf.consumed = true
	if pf.pzxid > f.nodes["/p"].txid {
		f.nodes["/p"].txid = pf.pzxid
	}

	stamp := []int64{11}
	invs := f.appendInvalidations(nil, nil, stamp, 0)
	got := map[string]int64{}
	for _, inv := range invs {
		if _, dup := got[inv.Path]; dup {
			t.Fatalf("path %s invalidated twice in one record", inv.Path)
		}
		got[inv.Path] = inv.Mzxid
		if len(inv.Epoch) != 1 || inv.Epoch[0] != 11 {
			t.Errorf("epoch stamp lost on %s: %v", inv.Path, inv.Epoch)
		}
	}
	want := map[string]int64{"/p": 5, "/p/c": 5, "/q": 7}
	for p, m := range want {
		if got[p] != m {
			t.Errorf("invalidation for %s at txid %d, want %d (all: %v)", p, got[p], m, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("invalidations = %v, want exactly %v", got, want)
	}
}
