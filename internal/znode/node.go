package znode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Flags control node creation, mirroring ZooKeeper's CreateMode.
type Flags uint8

// Node creation flags.
const (
	FlagEphemeral Flags = 1 << iota
	FlagSequential
)

// MaxDataBytes is ZooKeeper's 1 MB node-size ceiling; FaaSKeeper enforces
// tighter provider-specific limits on top (Section 4.4).
const MaxDataBytes = 1024 * 1024

// Stat is the node metadata exposed to clients, following ZooKeeper.
type Stat struct {
	Czxid       int64  // transaction id that created the node
	Mzxid       int64  // transaction id of the last modification
	Pzxid       int64  // transaction id of the last child change
	Version     int32  // number of data changes
	Cversion    int32  // number of child changes
	Ephemeral   bool   // owned by a session
	Owner       string // owning session id for ephemeral nodes
	DataLength  int32
	NumChildren int32
}

// Node is one tree node with data, metadata, and its children names.
type Node struct {
	Path     string
	Data     []byte
	Stat     Stat
	Children []string
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := *n
	out.Data = append([]byte(nil), n.Data...)
	out.Children = append([]string(nil), n.Children...)
	return &out
}

// SortedChildren returns the children in lexicographic order, the order
// get_children reports.
func (n *Node) SortedChildren() []string {
	out := append([]string(nil), n.Children...)
	sort.Strings(out)
	return out
}

// codec constants.
const (
	codecVersion = 1
)

// ErrCorrupt is returned when decoding malformed node bytes.
var ErrCorrupt = errors.New("znode: corrupt encoding")

// Marshal encodes the node (and the epoch stamp FaaSKeeper attaches for
// watch ordering) into a compact binary blob for object storage.
func Marshal(n *Node, epoch []int64) []byte {
	size := 1 + 10*binary.MaxVarintLen64 +
		len(n.Path) + len(n.Data) + len(n.Owner()) +
		binary.MaxVarintLen64*(2+len(epoch)+len(n.Children))
	for _, c := range n.Children {
		size += len(c)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, codecVersion)
	buf = appendString(buf, n.Path)
	buf = binary.AppendVarint(buf, n.Stat.Czxid)
	buf = binary.AppendVarint(buf, n.Stat.Mzxid)
	buf = binary.AppendVarint(buf, n.Stat.Pzxid)
	buf = binary.AppendVarint(buf, int64(n.Stat.Version))
	buf = binary.AppendVarint(buf, int64(n.Stat.Cversion))
	if n.Stat.Ephemeral {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendString(buf, n.Stat.Owner)
	buf = appendBytes(buf, n.Data)
	buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
	for _, c := range n.Children {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(epoch)))
	for _, e := range epoch {
		buf = binary.AppendVarint(buf, e)
	}
	return buf
}

// Unmarshal decodes a blob produced by Marshal, returning the node and the
// attached epoch stamp.
func Unmarshal(buf []byte) (*Node, []int64, error) {
	if len(buf) == 0 || buf[0] != codecVersion {
		return nil, nil, fmt.Errorf("%w: bad version", ErrCorrupt)
	}
	r := reader{buf: buf[1:]}
	n := &Node{}
	n.Path = r.str()
	n.Stat.Czxid = r.varint()
	n.Stat.Mzxid = r.varint()
	n.Stat.Pzxid = r.varint()
	n.Stat.Version = int32(r.varint())
	n.Stat.Cversion = int32(r.varint())
	n.Stat.Ephemeral = r.byte() == 1
	n.Stat.Owner = r.str()
	n.Data = r.bytes()
	nc := int(r.uvarint())
	if r.err == nil && nc >= 0 && nc <= 1<<20 {
		n.Children = make([]string, 0, nc)
		for i := 0; i < nc; i++ {
			n.Children = append(n.Children, r.str())
		}
	} else if nc > 1<<20 {
		return nil, nil, fmt.Errorf("%w: children count", ErrCorrupt)
	}
	ne := int(r.uvarint())
	var epoch []int64
	if r.err == nil && ne >= 0 && ne <= 1<<20 {
		epoch = make([]int64, 0, ne)
		for i := 0; i < ne; i++ {
			epoch = append(epoch, r.varint())
		}
	} else if ne > 1<<20 {
		return nil, nil, fmt.Errorf("%w: epoch count", ErrCorrupt)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	n.Stat.DataLength = int32(len(n.Data))
	n.Stat.NumChildren = int32(len(n.Children))
	return n, epoch, nil
}

// Owner is a nil-safe accessor used by Marshal size estimation.
func (n *Node) Owner() string { return n.Stat.Owner }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) bytes() []byte {
	ln := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)) < ln {
		r.fail()
		return nil
	}
	b := r.buf[:ln]
	r.buf = r.buf[ln:]
	return append([]byte(nil), b...)
}
