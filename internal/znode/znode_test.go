package znode

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidatePath(t *testing.T) {
	valid := []string{"/", "/a", "/a/b", "/config/server-1", "/a/b/c/d/e"}
	for _, p := range valid {
		if err := ValidatePath(p); err != nil {
			t.Errorf("ValidatePath(%q) = %v", p, err)
		}
	}
	invalid := []string{"", "a", "a/b", "/a/", "//", "/a//b", "/a/./b", "/a/../b", "/a/\x00b"}
	for _, p := range invalid {
		if err := ValidatePath(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("ValidatePath(%q) = %v, want ErrBadPath", p, err)
		}
	}
}

func TestParentBaseJoin(t *testing.T) {
	cases := []struct{ p, parent, base string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		if got := Parent(c.p); got != c.parent {
			t.Errorf("Parent(%q) = %q", c.p, got)
		}
		if got := Base(c.p); got != c.base {
			t.Errorf("Base(%q) = %q", c.p, got)
		}
	}
	if Join("/", "a") != "/a" || Join("/a", "b") != "/a/b" {
		t.Error("Join broken")
	}
	if Depth("/") != 0 || Depth("/a") != 1 || Depth("/a/b/c") != 3 {
		t.Error("Depth broken")
	}
}

func TestJoinParentInverseProperty(t *testing.T) {
	f := func(segs []string) bool {
		p := Root
		for _, s := range segs {
			s = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return 'x'
				}
				return r
			}, s)
			if s == "" || s == "." || s == ".." {
				s = "seg"
			}
			child := Join(p, s)
			if ValidatePath(child) != nil {
				return false
			}
			if Parent(child) != p || Base(child) != s {
				return false
			}
			p = child
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialName(t *testing.T) {
	if got := SequentialName("/locks/lock-", 7); got != "/locks/lock-0000000007" {
		t.Fatalf("got %q", got)
	}
	if SequentialName("/a-", 1) >= SequentialName("/a-", 2) {
		t.Fatal("sequential names must sort")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	n := &Node{
		Path: "/config/service",
		Data: []byte("payload-data"),
		Stat: Stat{
			Czxid: 10, Mzxid: 42, Pzxid: 40,
			Version: 3, Cversion: 2,
			Ephemeral: true, Owner: "session-9",
		},
		Children: []string{"b", "a", "c"},
	}
	epoch := []int64{100, 200, -1}
	buf := Marshal(n, epoch)
	got, gotEpoch, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != n.Path || !bytes.Equal(got.Data, n.Data) {
		t.Fatalf("node mismatch: %+v", got)
	}
	if got.Stat.Czxid != 10 || got.Stat.Mzxid != 42 || got.Stat.Pzxid != 40 ||
		got.Stat.Version != 3 || got.Stat.Cversion != 2 ||
		!got.Stat.Ephemeral || got.Stat.Owner != "session-9" {
		t.Fatalf("stat mismatch: %+v", got.Stat)
	}
	if got.Stat.DataLength != int32(len(n.Data)) || got.Stat.NumChildren != 3 {
		t.Fatalf("derived stat mismatch: %+v", got.Stat)
	}
	if len(gotEpoch) != 3 || gotEpoch[0] != 100 || gotEpoch[2] != -1 {
		t.Fatalf("epoch mismatch: %v", gotEpoch)
	}
	if got.Children[0] != "b" || got.Children[1] != "a" {
		t.Fatalf("children order not preserved: %v", got.Children)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(data []byte, children []string, epoch []int64, czxid, mzxid int64, version int32) bool {
		n := &Node{
			Path:     "/p",
			Data:     data,
			Stat:     Stat{Czxid: czxid, Mzxid: mzxid, Version: version},
			Children: children,
		}
		buf := Marshal(n, epoch)
		got, gotEpoch, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		if !bytes.Equal(got.Data, data) || got.Stat.Czxid != czxid ||
			got.Stat.Mzxid != mzxid || got.Stat.Version != version {
			return false
		}
		if len(got.Children) != len(children) || len(gotEpoch) != len(epoch) {
			return false
		}
		for i := range children {
			if got.Children[i] != children[i] {
				return false
			}
		}
		for i := range epoch {
			if gotEpoch[i] != epoch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	n := &Node{Path: "/a", Data: []byte("xyz")}
	buf := Marshal(n, nil)
	for _, bad := range [][]byte{
		nil,
		{},
		{99},    // wrong version
		buf[:4], // truncated
		buf[:len(buf)/2],
	} {
		if _, _, err := Unmarshal(bad); err == nil {
			t.Errorf("Unmarshal(%v) accepted corrupt input", bad)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := &Node{Path: "/a", Data: []byte{1}, Children: []string{"x"}}
	c := n.Clone()
	c.Data[0] = 9
	c.Children[0] = "y"
	if n.Data[0] != 1 || n.Children[0] != "x" {
		t.Fatal("clone aliases original")
	}
}

func TestSortedChildren(t *testing.T) {
	n := &Node{Children: []string{"c", "a", "b"}}
	got := n.SortedChildren()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
	if n.Children[0] != "c" {
		t.Fatal("SortedChildren mutated the node")
	}
}
