// Package znode defines the ZooKeeper data model shared by FaaSKeeper and
// the baseline ZooKeeper implementation: path algebra and validation, node
// metadata (Stat), creation flags, and a compact binary codec used when
// nodes are stored in cloud object storage.
package znode

import (
	"errors"
	"fmt"
	"strings"
)

// Root is the path of the tree root.
const Root = "/"

// Path validation errors.
var (
	ErrBadPath = errors.New("znode: invalid path")
)

// ValidatePath checks ZooKeeper path syntax: absolute, no empty or
// relative segments, no trailing slash (except the root itself).
func ValidatePath(p string) error {
	if p == "" {
		return fmt.Errorf("%w: empty", ErrBadPath)
	}
	if p[0] != '/' {
		return fmt.Errorf("%w: %q is not absolute", ErrBadPath, p)
	}
	if p == Root {
		return nil
	}
	if strings.HasSuffix(p, "/") {
		return fmt.Errorf("%w: %q has a trailing slash", ErrBadPath, p)
	}
	for _, seg := range strings.Split(p[1:], "/") {
		if seg == "" {
			return fmt.Errorf("%w: %q contains an empty segment", ErrBadPath, p)
		}
		if seg == "." || seg == ".." {
			return fmt.Errorf("%w: %q contains a relative segment", ErrBadPath, p)
		}
		if strings.ContainsAny(seg, "\x00") {
			return fmt.Errorf("%w: %q contains a null byte", ErrBadPath, p)
		}
	}
	return nil
}

// Parent returns the parent path ("/" for top-level nodes). The root has
// no parent; Parent("/") returns "/".
func Parent(p string) string {
	if p == Root {
		return Root
	}
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return Root
	}
	return p[:i]
}

// Base returns the final path segment.
func Base(p string) string {
	if p == Root {
		return ""
	}
	return p[strings.LastIndexByte(p, '/')+1:]
}

// Join concatenates a parent path and a child name.
func Join(parent, child string) string {
	if parent == Root {
		return Root + child
	}
	return parent + "/" + child
}

// Depth returns the number of segments (0 for the root).
func Depth(p string) int {
	if p == Root {
		return 0
	}
	return strings.Count(p, "/")
}

// SequentialName formats the monotonically increasing suffix ZooKeeper
// appends to sequential nodes.
func SequentialName(prefix string, n int64) string {
	return fmt.Sprintf("%s%010d", prefix, n)
}
