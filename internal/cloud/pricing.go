package cloud

import "math"

// Pricing captures the pay-as-you-go rates the paper quotes for AWS and
// GCP (Section 4.5, Table 4, Section 5.2.2) plus the IaaS rates used for
// the ZooKeeper baseline (Section 5.3.4). All prices are US dollars.
type Pricing struct {
	// Object storage (S3 / Cloud Storage).
	ObjectWritePerOp  float64 // $ per PUT
	ObjectReadPerOp   float64 // $ per GET
	ObjectStorageGBMo float64 // $ per GB-month retained

	// Key-value storage (DynamoDB / Datastore).
	KVWritePerUnit  float64 // $ per write unit
	KVWriteUnitB    int     // bytes per write unit (0 = flat per op)
	KVReadPerUnit   float64 // $ per strongly consistent read unit
	KVReadUnitB     int     // bytes per read unit (0 = flat per op)
	KVEventualScale float64 // multiplier for eventually consistent reads
	KVStorageGBMo   float64 // $ per GB-month retained

	// Queue (SQS / Pub/Sub).
	QueuePerMsgUnit float64 // $ per message unit (SQS: 64 kB increments)
	QueueUnitB      int     // bytes per message unit (0 = per-byte billing)
	QueuePerTB      float64 // $ per TB transferred (Pub/Sub)
	QueueMinMsgB    int     // minimum billed bytes per message (Pub/Sub: 1 kB)

	// Functions. AWS bundles CPU with memory; GCP (2nd gen) bills memory
	// and vCPU separately, which is what makes the paper's reduced-CPU
	// configurations 54-62% cheaper (Section 5.3.2).
	FaaSPerGBSecond   float64
	FaaSPerVCPUSecond float64 // 0 = CPU bundled with memory
	FaaSPerRequest    float64
	FaaSARMDiscount   float64 // multiplier on GB-s for ARM (AWS Graviton)

	// IaaS rates for the ZooKeeper baseline.
	VMHourly  map[string]float64 // instance type -> $/hour
	BlockGBMo float64            // EBS gp3 / PD $ per GB-month

	// CacheVMHourly is the provisioned regional cache node (ElastiCache /
	// Memorystore class): cache traffic itself is free per-operation, the
	// VM bills by the hour like the paper's "third-party" Redis store.
	CacheVMHourly float64
}

// AWSPricing returns the us-east-1 rates used throughout the paper.
func AWSPricing() Pricing {
	return Pricing{
		ObjectWritePerOp:  5e-6, // $5 per million PUTs   (W_S3 in Table 4)
		ObjectReadPerOp:   4e-7, // $0.4 per million GETs (R_S3 in Table 4)
		ObjectStorageGBMo: 0.023,
		KVWritePerUnit:    1.25e-6, // per 1 kB WCU (W_DD in Table 4)
		KVWriteUnitB:      1024,
		KVReadPerUnit:     0.25e-6, // per 4 kB RCU (R_DD in Table 4)
		KVReadUnitB:       4096,
		KVEventualScale:   0.5,
		KVStorageGBMo:     0.25,
		QueuePerMsgUnit:   0.5e-6, // $0.5 per million 64 kB chunks (Q in Table 4)
		QueueUnitB:        64 * 1024,
		FaaSPerGBSecond:   0.0000166667,
		FaaSPerRequest:    0.2e-6,
		FaaSARMDiscount:   0.8,
		VMHourly: map[string]float64{
			// On-demand us-east-1; daily costs of $0.5 / $1 / $2 per
			// Section 5.3.4.
			"t3.small":   0.0208,
			"t3.medium":  0.0416,
			"t3.large":   0.0832,
			"t3.2xlarge": 0.3328,
		},
		BlockGBMo:     0.08,  // gp3
		CacheVMHourly: 0.068, // cache.t3.medium, us-east-1 on-demand
	}
}

// GCPPricing returns the us-central1 rates described in Section 4.5:
// Datastore operations are flat-priced (2.4x / 1.44x DynamoDB's <=1 kB
// read/write), and Pub/Sub bills $40 per TB with a 1 kB minimum.
func GCPPricing() Pricing {
	return Pricing{
		ObjectWritePerOp:  5e-6, // "object storage costs the same"
		ObjectReadPerOp:   4e-7,
		ObjectStorageGBMo: 0.026,
		KVWritePerUnit:    1.44 * 1.25e-6, // flat per op
		KVWriteUnitB:      0,
		KVReadPerUnit:     2.4 * 0.25e-6, // flat per op
		KVReadUnitB:       0,
		KVEventualScale:   1, // Datastore bills the same either way
		KVStorageGBMo:     0.18,
		QueuePerTB:        40,
		QueueMinMsgB:      1024,
		FaaSPerGBSecond:   0.0000025,
		FaaSPerVCPUSecond: 0.000024,
		FaaSPerRequest:    0.4e-6,
		FaaSARMDiscount:   1,
		VMHourly: map[string]float64{
			"e2-small":  0.0168,
			"e2-medium": 0.0335,
		},
		BlockGBMo:     0.10,
		CacheVMHourly: 0.049, // Memorystore basic M1, us-central1
	}
}

// ObjectWriteCost returns the dollars for one object PUT of any size.
func (p Pricing) ObjectWriteCost(sizeB int) float64 { return p.ObjectWritePerOp }

// ObjectReadCost returns the dollars for one object GET of any size.
func (p Pricing) ObjectReadCost(sizeB int) float64 { return p.ObjectReadPerOp }

// KVWriteCost returns the dollars for one KV write of sizeB bytes.
func (p Pricing) KVWriteCost(sizeB int) float64 {
	return p.KVWritePerUnit * float64(units(sizeB, p.KVWriteUnitB))
}

// KVReadCost returns the dollars for one KV read of sizeB bytes.
func (p Pricing) KVReadCost(sizeB int, stronglyConsistent bool) float64 {
	c := p.KVReadPerUnit * float64(units(sizeB, p.KVReadUnitB))
	if !stronglyConsistent && p.KVEventualScale > 0 {
		c *= p.KVEventualScale
	}
	return c
}

// StoreWriteCost returns the dollars for one user-store write of sizeB
// bytes on the given backend — object storage for the paper's standard
// setup, KV for hybrid storage. This is the W_S3/W_DD term of Table 4,
// the per-operation charge the leader's batching distributor folds when
// several queued writes touch the same node.
func (p Pricing) StoreWriteCost(sizeB int, hybrid bool) float64 {
	if hybrid {
		return p.KVWriteCost(sizeB)
	}
	return p.ObjectWriteCost(sizeB)
}

// QueueMsgCost returns the dollars for one queued message of sizeB bytes.
func (p Pricing) QueueMsgCost(sizeB int) float64 {
	if p.QueueUnitB > 0 {
		return p.QueuePerMsgUnit * float64(units(sizeB, p.QueueUnitB))
	}
	b := sizeB
	if b < p.QueueMinMsgB {
		b = p.QueueMinMsgB
	}
	return p.QueuePerTB * float64(b) / 1e12
}

// FaaSCost returns the dollars for one function execution of the given
// duration. vcpu is the CPU allocation (ignored when CPU is bundled).
func (p Pricing) FaaSCost(memoryMB int, vcpu, seconds float64, arm bool) float64 {
	gbs := float64(memoryMB) / 1024 * seconds
	rate := p.FaaSPerGBSecond
	if arm && p.FaaSARMDiscount > 0 {
		rate *= p.FaaSARMDiscount
	}
	c := gbs*rate + p.FaaSPerRequest
	if p.FaaSPerVCPUSecond > 0 {
		if vcpu <= 0 {
			vcpu = 1
		}
		c += vcpu * seconds * p.FaaSPerVCPUSecond
	}
	return c
}

// VMDailyCost returns the dollars per day for count VMs of the given type.
func (p Pricing) VMDailyCost(instanceType string, count int) float64 {
	return p.VMHourly[instanceType] * 24 * float64(count)
}

// BlockStorageDailyCost returns the dollars per day for gb of block storage.
func (p Pricing) BlockStorageDailyCost(gb float64) float64 {
	return p.BlockGBMo * gb * 12 / 365
}

// CacheVMDailyCost returns the dollars per day for the regional cache
// nodes of the read-path cache tier.
func (p Pricing) CacheVMDailyCost(nodes int) float64 {
	return p.CacheVMHourly * 24 * float64(nodes)
}

// units computes ceil(size/unit) with a minimum of one unit.
func units(sizeB, unitB int) int64 {
	if unitB <= 0 {
		return 1
	}
	if sizeB <= 0 {
		return 1
	}
	return int64(math.Ceil(float64(sizeB) / float64(unitB)))
}
