package cloud

import (
	"time"

	"faaskeeper/internal/sim"
)

// QueueKind distinguishes the queue technologies benchmarked in
// Section 5.2.2.
type QueueKind string

// Queue kinds available in the profiles.
const (
	QueueFIFO     QueueKind = "fifo"     // SQS FIFO: ordered, batch <= 10
	QueueStandard QueueKind = "standard" // SQS standard: unordered, large batches
	QueueStream   QueueKind = "stream"   // DynamoDB Streams shard
	QueueOrdered  QueueKind = "ordered"  // Pub/Sub with ordering keys
)

// Profile holds the calibrated latency distributions and pricing for one
// provider. Base distributions come from the paper's published percentile
// rows (Tables 3 and 6a, Figures 4b, 7a, 7c); per-KB slopes are fitted
// between the published small/large size points.
type Profile struct {
	Name    string
	Pricing Pricing
	Home    Region

	// Key-value store (DynamoDB / Datastore).
	KVReadBase    sim.Dist
	KVReadPerKB   time.Duration
	KVWriteBase   sim.Dist // 1 kB item write
	KVWritePerKB  time.Duration
	KVCondPenalty sim.Dist // conditional/custom update expression surcharge
	KVTxPenalty   sim.Dist // transactions (Datastore); nil when cheap cond. updates exist
	KVListPerKB   time.Duration
	KVReplicaLag  time.Duration // eventual-consistency staleness window
	KVMaxItemB    int           // 400 kB on DynamoDB, 1 MB on Datastore

	// Object store (S3 / Cloud Storage).
	ObjReadBase   sim.Dist
	ObjReadPerKB  time.Duration
	ObjWriteBase  sim.Dist
	ObjWritePerKB time.Duration

	// Cross-region access penalty (Figure 4b).
	XRegionBase  sim.Dist
	XRegionPerKB time.Duration

	// In-memory cache store (Redis on a VM; "third-party" per the paper).
	MemReadBase   sim.Dist
	MemReadPerKB  time.Duration
	MemWriteBase  sim.Dist
	MemWritePerKB time.Duration

	// Queues.
	QueueSendBase  sim.Dist // synchronous send API call
	QueueSendPerKB time.Duration
	QueueDeliver   map[QueueKind]sim.Dist // send-complete -> trigger fire
	QueueMaxMsgB   int
	FIFOMaxBatch   int

	// Functions.
	ColdStart    sim.Dist
	WarmOverhead sim.Dist // per-invocation runtime overhead in a warm sandbox
	DirectInvoke sim.Dist // free-function API overhead (Figure 7a "Direct")
	DirectPerKB  time.Duration

	// Networking.
	ClientRTT sim.Dist // client VM <-> cloud endpoint, same region
	LANRTT    sim.Dist // server <-> server within a deployment (ZooKeeper)
	WireKBps  float64  // payload streaming rate on TCP links, KB per ms

	// ZooKeeper baseline knobs.
	ZKDiskSync sim.Dist // transaction-log fsync on each quorum write
}

// AWSProfile returns the latency/cost model for the AWS deployment
// (Lambda + DynamoDB + S3 + SQS in us-east-1).
func AWSProfile() *Profile {
	return &Profile{
		Name:    "aws",
		Pricing: AWSPricing(),
		Home:    RegionAWSHome,

		// Table 6a: regular DynamoDB write of 1 kB / 64 kB items.
		KVWriteBase:   sim.Q(3.95, 4.35, 4.79, 6.33, 60.26),
		KVWritePerKB:  sim.Ms(0.98), // (66.31-4.35)/63 per kB
		KVReadBase:    sim.Q(1.6, 4.0, 5.5, 9.0, 45),
		KVReadPerKB:   sim.Ms(0.050),
		KVCondPenalty: sim.Q(0.9, 2.45, 3.4, 7.8, 17.0), // +2.5 ms median (Section 5.2.1)
		KVTxPenalty:   nil,
		KVListPerKB:   sim.Ms(0.0685), // Table 6a list append 1024 x 1 kB
		KVReplicaLag:  20 * time.Millisecond,
		KVMaxItemB:    400 * 1024,

		// Figures 4b and 8-10: S3 access from the same region.
		ObjReadBase:   sim.Q(5, 11, 22, 35, 90),
		ObjReadPerKB:  sim.Ms(0.055),
		ObjWriteBase:  sim.Q(13, 25, 46, 60, 100),
		ObjWritePerKB: sim.Ms(0.235),

		XRegionBase:  sim.Q(120, 150, 190, 230, 300),
		XRegionPerKB: sim.Ms(0.30),

		MemReadBase:   sim.Q(0.30, 0.55, 0.95, 1.6, 5),
		MemReadPerKB:  sim.Ms(0.012),
		MemWriteBase:  sim.Q(0.35, 0.65, 1.1, 1.9, 6),
		MemWritePerKB: sim.Ms(0.013),

		// Table 3 "Push" row (4 B): the synchronous SQS send call.
		QueueSendBase:  sim.Q90(9.65, 13.35, 15.55, 17.28, 38.15),
		QueueSendPerKB: sim.Ms(0.239), // (72.18-13.35)/246 per kB
		QueueDeliver: map[QueueKind]sim.Dist{
			// Derived from Figure 7a end-to-end rows minus the send call
			// and the ~0.9 ms TCP reply.
			QueueFIFO:     sim.Q(4, 9.5, 60, 135, 150),
			QueueStandard: sim.Q(10, 25, 55, 100, 270),
			QueueStream:   sim.Q(170, 236, 258, 408, 730),
		},
		QueueMaxMsgB: 256 * 1024,
		FIFOMaxBatch: 10,

		ColdStart:    sim.Q(120, 180, 300, 450, 900),
		WarmOverhead: sim.Q(0.3, 1.0, 3.0, 8.0, 20),
		DirectInvoke: sim.Q(20, 37, 71, 120, 205), // Figure 7a "Direct" 64 B
		DirectPerKB:  sim.Ms(0.152),               // (48.69-39.0)/64 per kB

		ClientRTT: sim.Q(0.40, 0.86, 1.30, 2.0, 5.0), // Section 5.2.2: 864 us median
		LANRTT:    sim.Q(0.15, 0.30, 0.55, 0.9, 3.0),
		WireKBps:  1250, // ~10 Gb/s within a region

		ZKDiskSync: sim.Q(0.5, 1.4, 3.0, 6.0, 25),
	}
}

// GCPProfile returns the latency/cost model for the GCP deployment
// (Cloud Functions + Datastore + Cloud Storage + Pub/Sub in us-central1).
func GCPProfile() *Profile {
	return &Profile{
		Name:    "gcp",
		Pricing: GCPPricing(),
		Home:    RegionGCPHome,

		// Figure 8 (GCP): Datastore reads 2.3x slower than DynamoDB on
		// small nodes, ~30% faster on large nodes (shallower slope).
		KVReadBase:    sim.Q(3.5, 9.2, 14, 21, 60),
		KVReadPerKB:   sim.Ms(0.012),
		KVWriteBase:   sim.Q(7, 12, 19, 32, 95),
		KVWritePerKB:  sim.Ms(0.85),
		KVCondPenalty: nil,                      // Datastore has no conditional update expressions...
		KVTxPenalty:   sim.Q(4, 10, 16, 28, 85), // ...synchronization uses transactions
		KVListPerKB:   sim.Ms(0.09),
		KVReplicaLag:  25 * time.Millisecond,
		KVMaxItemB:    1024 * 1024,

		// "Object storage slower than AWS S3" (Figure 8, GCP panel).
		ObjReadBase:   sim.Q(9, 24, 45, 70, 160),
		ObjReadPerKB:  sim.Ms(0.085),
		ObjWriteBase:  sim.Q(22, 44, 80, 120, 260),
		ObjWritePerKB: sim.Ms(0.30),

		XRegionBase:  sim.Q(110, 145, 185, 225, 310),
		XRegionPerKB: sim.Ms(0.32),

		MemReadBase:   sim.Q(0.32, 0.6, 1.0, 1.7, 5),
		MemReadPerKB:  sim.Ms(0.012),
		MemWriteBase:  sim.Q(0.38, 0.7, 1.2, 2.0, 6),
		MemWritePerKB: sim.Ms(0.013),

		QueueSendBase:  sim.Q(4, 7, 12, 20, 50),
		QueueSendPerKB: sim.Ms(0.20),
		QueueDeliver: map[QueueKind]sim.Dist{
			// Figure 7c: unordered Pub/Sub beats direct invocation;
			// ordered subscriptions add >170 ms.
			QueueStandard: sim.Q(15, 30, 86, 105, 600),
			QueueOrdered:  sim.Q(150, 192, 226, 565, 580),
		},
		QueueMaxMsgB: 10 * 1024 * 1024,
		FIFOMaxBatch: 10,

		ColdStart:    sim.Q(200, 350, 700, 1200, 2500),
		WarmOverhead: sim.Q(0.4, 1.3, 3.5, 9.0, 25),
		DirectInvoke: sim.Q(45, 82, 93, 111, 1114), // Figure 7c "Direct" 64 B
		DirectPerKB:  sim.Ms(0.031),

		ClientRTT: sim.Q(0.45, 0.95, 1.4, 2.2, 6.0),
		LANRTT:    sim.Q(0.18, 0.35, 0.6, 1.0, 3.5),
		WireKBps:  1250,

		ZKDiskSync: sim.Q(0.5, 1.5, 3.2, 6.5, 27),
	}
}

// OrderedQueueKind returns the FIFO-capable queue kind for this provider:
// SQS FIFO on AWS, ordered Pub/Sub on GCP.
func (p *Profile) OrderedQueueKind() QueueKind {
	if _, ok := p.QueueDeliver[QueueFIFO]; ok {
		return QueueFIFO
	}
	return QueueOrdered
}
