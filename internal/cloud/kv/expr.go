package kv

import "fmt"

// Cond is a condition expression evaluated atomically against the current
// item state when an update commits, mirroring DynamoDB condition
// expressions (the mechanism behind the paper's synchronization
// primitives).
type Cond interface {
	Eval(item Item, exists bool) bool
	String() string
}

// Exists requires the item to exist.
type Exists struct{}

// Eval implements Cond.
func (Exists) Eval(_ Item, exists bool) bool { return exists }
func (Exists) String() string                { return "exists" }

// NotExists requires the item to not exist (attribute_not_exists on the
// key, in DynamoDB terms).
type NotExists struct{}

// Eval implements Cond.
func (NotExists) Eval(_ Item, exists bool) bool { return !exists }
func (NotExists) String() string                { return "not_exists" }

// AttrNotExists requires the named attribute to be absent.
type AttrNotExists struct{ Name string }

// Eval implements Cond.
func (c AttrNotExists) Eval(item Item, exists bool) bool {
	if !exists {
		return true
	}
	_, ok := item[c.Name]
	return !ok
}
func (c AttrNotExists) String() string { return fmt.Sprintf("attr_not_exists(%s)", c.Name) }

// AttrExists requires the named attribute to be present.
type AttrExists struct{ Name string }

// Eval implements Cond.
func (c AttrExists) Eval(item Item, exists bool) bool {
	if !exists {
		return false
	}
	_, ok := item[c.Name]
	return ok
}
func (c AttrExists) String() string { return fmt.Sprintf("attr_exists(%s)", c.Name) }

// Eq requires attribute Name to equal V.
type Eq struct {
	Name string
	V    Value
}

// Eval implements Cond.
func (c Eq) Eval(item Item, exists bool) bool {
	if !exists {
		return false
	}
	v, ok := item[c.Name]
	return ok && v.Equal(c.V)
}
func (c Eq) String() string { return fmt.Sprintf("%s == %s", c.Name, c.V) }

// NumLt requires numeric attribute Name to be strictly less than V.
type NumLt struct {
	Name string
	V    int64
}

// Eval implements Cond.
func (c NumLt) Eval(item Item, exists bool) bool {
	if !exists {
		return false
	}
	v, ok := item[c.Name]
	return ok && v.Kind == KindNumber && v.Num < c.V
}
func (c NumLt) String() string { return fmt.Sprintf("%s < %d", c.Name, c.V) }

// NumListHeadEq requires the first element of number-list attribute Name to
// equal V; used by the leader to pop per-node transactions in order.
type NumListHeadEq struct {
	Name string
	V    int64
}

// Eval implements Cond.
func (c NumListHeadEq) Eval(item Item, exists bool) bool {
	if !exists {
		return false
	}
	v, ok := item[c.Name]
	return ok && v.Kind == KindNumList && len(v.NL) > 0 && v.NL[0] == c.V
}
func (c NumListHeadEq) String() string { return fmt.Sprintf("head(%s) == %d", c.Name, c.V) }

// And is the conjunction of conditions.
type And []Cond

// Eval implements Cond.
func (c And) Eval(item Item, exists bool) bool {
	for _, sub := range c {
		if !sub.Eval(item, exists) {
			return false
		}
	}
	return true
}
func (c And) String() string { return joinConds(c, " AND ") }

// Or is the disjunction of conditions.
type Or []Cond

// Eval implements Cond.
func (c Or) Eval(item Item, exists bool) bool {
	for _, sub := range c {
		if sub.Eval(item, exists) {
			return true
		}
	}
	return false
}
func (c Or) String() string { return joinConds(c, " OR ") }

// Not negates a condition.
type Not struct{ C Cond }

// Eval implements Cond.
func (c Not) Eval(item Item, exists bool) bool { return !c.C.Eval(item, exists) }
func (c Not) String() string                   { return "NOT " + c.C.String() }

func joinConds[T Cond](cs []T, sep string) string {
	s := "("
	for i, c := range cs {
		if i > 0 {
			s += sep
		}
		s += c.String()
	}
	return s + ")"
}

// Update is a single update-expression action, applied atomically with any
// others in the same call.
type Update interface {
	Apply(item Item)
	payloadSize() int
}

// Set assigns attribute Name to V.
type Set struct {
	Name string
	V    Value
}

// Apply implements Update.
func (u Set) Apply(item Item)  { item[u.Name] = u.V.Clone() }
func (u Set) payloadSize() int { return u.V.Size() }

// Remove deletes attribute Name.
type Remove struct{ Name string }

// Apply implements Update.
func (u Remove) Apply(item Item)  { delete(item, u.Name) }
func (u Remove) payloadSize() int { return 0 }

// Add atomically adds Delta to numeric attribute Name, creating it at
// Delta when absent (DynamoDB ADD semantics — the atomic counter).
type Add struct {
	Name  string
	Delta int64
}

// Apply implements Update.
func (u Add) Apply(item Item) {
	v := item[u.Name]
	if v.Kind != KindNumber {
		v = N(0)
	}
	v.Num += u.Delta
	item[u.Name] = v
}
func (u Add) payloadSize() int { return 8 }

// ListAppend appends values to number-list attribute Name (the atomic
// list expansion primitive).
type ListAppend struct {
	Name string
	Vals []int64
}

// Apply implements Update.
func (u ListAppend) Apply(item Item) {
	v := item[u.Name]
	if v.Kind != KindNumList {
		v = NumList()
	}
	v.NL = append(append([]int64(nil), v.NL...), u.Vals...)
	item[u.Name] = v
}
func (u ListAppend) payloadSize() int { return 8 * len(u.Vals) }

// ListRemove removes all occurrences of the given values from number-list
// attribute Name (atomic list truncation).
type ListRemove struct {
	Name string
	Vals []int64
}

// Apply implements Update.
func (u ListRemove) Apply(item Item) {
	v, ok := item[u.Name]
	if !ok || v.Kind != KindNumList {
		return
	}
	drop := make(map[int64]bool, len(u.Vals))
	for _, x := range u.Vals {
		drop[x] = true
	}
	kept := v.NL[:0:0]
	for _, x := range v.NL {
		if !drop[x] {
			kept = append(kept, x)
		}
	}
	v.NL = kept
	item[u.Name] = v
}
func (u ListRemove) payloadSize() int { return 8 * len(u.Vals) }

// ListPopHead removes the first element of number-list attribute Name.
type ListPopHead struct{ Name string }

// Apply implements Update.
func (u ListPopHead) Apply(item Item) {
	v, ok := item[u.Name]
	if !ok || v.Kind != KindNumList || len(v.NL) == 0 {
		return
	}
	v.NL = append([]int64(nil), v.NL[1:]...)
	item[u.Name] = v
}
func (u ListPopHead) payloadSize() int { return 0 }

// StrListAppend appends strings to string-list attribute Name.
type StrListAppend struct {
	Name string
	Vals []string
}

// Apply implements Update.
func (u StrListAppend) Apply(item Item) {
	v := item[u.Name]
	if v.Kind != KindStrList {
		v = StrList()
	}
	v.SL = append(append([]string(nil), v.SL...), u.Vals...)
	item[u.Name] = v
}
func (u StrListAppend) payloadSize() int {
	n := 0
	for _, s := range u.Vals {
		n += len(s)
	}
	return n
}

// StrListRemove removes all occurrences of the given strings from
// string-list attribute Name.
type StrListRemove struct {
	Name string
	Vals []string
}

// Apply implements Update.
func (u StrListRemove) Apply(item Item) {
	v, ok := item[u.Name]
	if !ok || v.Kind != KindStrList {
		return
	}
	drop := make(map[string]bool, len(u.Vals))
	for _, s := range u.Vals {
		drop[s] = true
	}
	kept := v.SL[:0:0]
	for _, s := range v.SL {
		if !drop[s] {
			kept = append(kept, s)
		}
	}
	v.SL = kept
	item[u.Name] = v
}
func (u StrListRemove) payloadSize() int { return 0 }
