package kv

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

func newEnv(seed int64) (*sim.Kernel, *cloud.Env, cloud.Ctx) {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	return k, env, cloud.ClientCtx(cloud.RegionAWSHome)
}

func TestPutGetRoundTrip(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		if err := tbl.Put(ctx, "a", Item{"x": N(7), "s": S("hello")}, nil); err != nil {
			t.Errorf("put: %v", err)
		}
		it, ok := tbl.Get(ctx, "a", true)
		if !ok || it["x"].Num != 7 || it["s"].Str != "hello" {
			t.Errorf("get: %v %v", it, ok)
		}
		if _, ok := tbl.Get(ctx, "missing", true); ok {
			t.Error("missing key found")
		}
	})
	k.Run()
	if env.Meter.Count("kv.write") != 1 || env.Meter.Count("kv.read") != 2 {
		t.Fatalf("meter counts: %v", env.Meter)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		tbl.Put(ctx, "a", Item{"b": B([]byte{1, 2})}, nil)
		it, _ := tbl.Get(ctx, "a", true)
		it["b"].Byt[0] = 99
		it2, _ := tbl.Get(ctx, "a", true)
		if it2["b"].Byt[0] != 1 {
			t.Error("stored item was aliased by reader")
		}
	})
	k.Run()
}

func TestConditionalPut(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		if err := tbl.Put(ctx, "n", Item{"v": N(1)}, NotExists{}); err != nil {
			t.Errorf("first put: %v", err)
		}
		err := tbl.Put(ctx, "n", Item{"v": N(2)}, NotExists{})
		if !errors.Is(err, ErrConditionFailed) {
			t.Errorf("second put err = %v", err)
		}
		it, _ := tbl.Get(ctx, "n", true)
		if it["v"].Num != 1 {
			t.Errorf("overwrite happened: %v", it)
		}
	})
	k.Run()
}

func TestUpdateAtomicCounter(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		for i := 0; i < 5; i++ {
			if _, err := tbl.Update(ctx, "ctr", []Update{Add{"n", 2}}, nil); err != nil {
				t.Errorf("update: %v", err)
			}
		}
		it, _ := tbl.Get(ctx, "ctr", true)
		if it["n"].Num != 10 {
			t.Errorf("counter = %d", it["n"].Num)
		}
	})
	k.Run()
}

func TestUpdateListOps(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		tbl.Update(ctx, "l", []Update{ListAppend{"xs", []int64{1, 2, 3}}}, nil)
		tbl.Update(ctx, "l", []Update{ListAppend{"xs", []int64{4}}}, nil)
		tbl.Update(ctx, "l", []Update{ListRemove{"xs", []int64{2}}}, nil)
		it, _ := tbl.Get(ctx, "l", true)
		want := []int64{1, 3, 4}
		got := it["xs"].NL
		if len(got) != len(want) {
			t.Fatalf("list = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("list = %v", got)
			}
		}
		tbl.Update(ctx, "l", []Update{ListPopHead{"xs"}}, nil)
		it, _ = tbl.Get(ctx, "l", true)
		if it["xs"].NL[0] != 3 {
			t.Fatalf("after pop: %v", it["xs"].NL)
		}
	})
	k.Run()
}

func TestStrListOps(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		tbl.Update(ctx, "c", []Update{StrListAppend{"kids", []string{"a", "b"}}}, nil)
		tbl.Update(ctx, "c", []Update{StrListRemove{"kids", []string{"a"}}}, nil)
		it, _ := tbl.Get(ctx, "c", true)
		if len(it["kids"].SL) != 1 || it["kids"].SL[0] != "b" {
			t.Fatalf("kids = %v", it["kids"].SL)
		}
	})
	k.Run()
}

func TestConditionalUpdateLockSemantics(t *testing.T) {
	// Two writers race for a timed lock; exactly one must win.
	k, env, ctx := newEnv(42)
	tbl := NewTable(env, "state")
	wins := 0
	losses := 0
	acquire := func(ts int64) {
		cond := Or{AttrNotExists{"lock"}, NumLt{"lock", ts - 1000}}
		_, err := tbl.Update(ctx, "node", []Update{Set{"lock", N(ts)}}, cond)
		if err == nil {
			wins++
		} else if errors.Is(err, ErrConditionFailed) {
			losses++
		} else {
			t.Errorf("unexpected: %v", err)
		}
	}
	k.Go("w1", func() { acquire(10) })
	k.Go("w2", func() { acquire(11) })
	k.Run()
	if wins != 1 || losses != 1 {
		t.Fatalf("wins=%d losses=%d", wins, losses)
	}
}

func TestDeleteWithCondition(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		tbl.Put(ctx, "d", Item{"v": N(3)}, nil)
		if err := tbl.Delete(ctx, "d", Eq{"v", N(4)}); !errors.Is(err, ErrConditionFailed) {
			t.Errorf("mismatched delete: %v", err)
		}
		if err := tbl.Delete(ctx, "d", Eq{"v", N(3)}); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, ok := tbl.Get(ctx, "d", true); ok {
			t.Error("still present")
		}
		if err := tbl.Delete(ctx, "d", nil); err != nil {
			t.Errorf("idempotent delete: %v", err)
		}
	})
	k.Run()
}

func TestItemSizeLimit(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		big := make([]byte, 401*1024)
		if err := tbl.Put(ctx, "big", Item{"d": B(big)}, nil); !errors.Is(err, ErrItemTooLarge) {
			t.Errorf("put err = %v", err)
		}
		tbl.Put(ctx, "x", Item{"d": B(make([]byte, 399*1024))}, nil)
		_, err := tbl.Update(ctx, "x", []Update{Set{"e", B(make([]byte, 2*1024))}}, nil)
		if !errors.Is(err, ErrItemTooLarge) {
			t.Errorf("update err = %v", err)
		}
	})
	k.Run()
}

func TestEventualReadCanBeStale(t *testing.T) {
	k, env, ctx := newEnv(7)
	tbl := NewTable(env, "state")
	stale, fresh := 0, 0
	k.Go("client", func() {
		tbl.Put(ctx, "v", Item{"n": N(1)}, nil)
		k.Sleep(time.Second) // age the first version fully
		for i := 0; i < 50; i++ {
			tbl.Put(ctx, "v", Item{"n": N(2)}, nil)
			it, _ := tbl.Get(ctx, "v", false)
			if it["n"].Num == 1 {
				stale++
			} else {
				fresh++
			}
			tbl.Put(ctx, "v", Item{"n": N(1)}, nil)
			k.Sleep(100 * time.Millisecond)
		}
	})
	k.Run()
	if stale == 0 {
		t.Fatal("eventually consistent reads never returned stale data")
	}
	if fresh == 0 {
		t.Fatal("eventually consistent reads never caught up")
	}
	// Strongly consistent reads must never be stale.
	k2, env2, ctx2 := newEnv(7)
	tbl2 := NewTable(env2, "state")
	k2.Go("client", func() {
		for i := 0; i < 20; i++ {
			tbl2.Put(ctx2, "v", Item{"n": N(int64(i))}, nil)
			it, _ := tbl2.Get(ctx2, "v", true)
			if it["n"].Num != int64(i) {
				t.Errorf("strong read stale: %v", it)
			}
		}
	})
	k2.Run()
}

func TestTransactAllOrNothing(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	k.Go("client", func() {
		tbl.Put(ctx, "a", Item{"v": N(1)}, nil)
		err := tbl.Transact(ctx, []TxOp{
			{Key: "a", Updates: []Update{Set{"v", N(2)}}, Cond: Eq{"v", N(1)}},
			{Key: "b", Updates: []Update{Set{"v", N(9)}}, Cond: Exists{}}, // fails
		})
		if !errors.Is(err, ErrConditionFailed) {
			t.Errorf("tx err = %v", err)
		}
		it, _ := tbl.Get(ctx, "a", true)
		if it["v"].Num != 1 {
			t.Errorf("partial tx applied: %v", it)
		}
		err = tbl.Transact(ctx, []TxOp{
			{Key: "a", Updates: []Update{Set{"v", N(2)}}, Cond: Eq{"v", N(1)}},
			{Key: "b", Updates: []Update{Set{"v", N(9)}}},
		})
		if err != nil {
			t.Errorf("tx: %v", err)
		}
		ita, _ := tbl.Get(ctx, "a", true)
		itb, _ := tbl.Get(ctx, "b", true)
		if ita["v"].Num != 2 || itb["v"].Num != 9 {
			t.Errorf("tx results: %v %v", ita, itb)
		}
		// Transactional delete leg.
		err = tbl.Transact(ctx, []TxOp{{Key: "b", Delete: true, Cond: Exists{}}})
		if err != nil {
			t.Errorf("tx delete: %v", err)
		}
		if _, ok := tbl.Get(ctx, "b", true); ok {
			t.Error("b survived tx delete")
		}
	})
	k.Run()
}

func TestScanOrderAndBilling(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "sessions")
	k.Go("client", func() {
		tbl.Put(ctx, "c", Item{"v": N(3)}, nil)
		tbl.Put(ctx, "a", Item{"v": N(1)}, nil)
		tbl.Put(ctx, "b", Item{"v": N(2)}, nil)
		got := tbl.Scan(ctx)
		if len(got) != 3 || got[0].Key != "a" || got[1].Key != "b" || got[2].Key != "c" {
			t.Errorf("scan = %v", got)
		}
	})
	k.Run()
	if env.Meter.Count("kv.read") != 1 {
		t.Fatalf("scan should bill one read batch: %v", env.Meter)
	}
}

func TestStreamEmitsCommittedWrites(t *testing.T) {
	k, env, ctx := newEnv(1)
	tbl := NewTable(env, "state")
	s := tbl.EnableStream()
	var recs []StreamRecord
	k.Go("consumer", func() {
		for {
			r, ok := s.Records.Pop()
			if !ok {
				return
			}
			recs = append(recs, r)
		}
	})
	k.Go("writer", func() {
		tbl.Put(ctx, "a", Item{"v": N(1)}, nil)
		tbl.Put(ctx, "a", Item{"v": N(2)}, NotExists{}) // fails: no record
		tbl.Update(ctx, "a", []Update{Add{"v", 1}}, nil)
		tbl.Delete(ctx, "a", nil)
		s.Records.Close()
	})
	k.Run()
	if len(recs) != 3 {
		t.Fatalf("records = %v", recs)
	}
	if recs[0].SeqNo >= recs[1].SeqNo || recs[1].SeqNo >= recs[2].SeqNo {
		t.Fatal("stream sequence numbers not increasing")
	}
	if recs[2].Item != nil {
		t.Fatal("delete record should have nil item")
	}
}

func TestLatencyGrowsWithItemSize(t *testing.T) {
	// Table 6a: updating a 64 kB item is far slower than a 1 kB item even
	// when the change is 8 bytes.
	k, env, ctx := newEnv(3)
	tbl := NewTable(env, "state")
	var small, large sim.Time
	k.Go("client", func() {
		tbl.Put(ctx, "s", Item{"d": B(make([]byte, 1024))}, nil)
		tbl.Put(ctx, "l", Item{"d": B(make([]byte, 64*1024))}, nil)
		t0 := k.Now()
		for i := 0; i < 20; i++ {
			tbl.Update(ctx, "s", []Update{Set{"lock", N(1)}}, AttrNotExists{"nope"})
		}
		small = k.Now() - t0
		t0 = k.Now()
		for i := 0; i < 20; i++ {
			tbl.Update(ctx, "l", []Update{Set{"lock", N(1)}}, AttrNotExists{"nope"})
		}
		large = k.Now() - t0
	})
	k.Run()
	if float64(large) < 5*float64(small) {
		t.Fatalf("large-item updates too fast: small=%v large=%v", small, large)
	}
}

func TestValueCloneIndependence(t *testing.T) {
	f := func(ns []int64, ss []string, bs []byte) bool {
		v1 := NumList(ns...).Clone()
		v2 := StrList(ss...).Clone()
		v3 := B(bs).Clone()
		if len(ns) > 0 {
			ns[0]++
			if v1.NL[0] == ns[0] {
				return false
			}
		}
		if len(ss) > 0 {
			ss[0] += "x"
			if v2.SL[0] == ss[0] {
				return false
			}
		}
		if len(bs) > 0 {
			bs[0]++
			if v3.Byt[0] == bs[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestItemSizeAccounting(t *testing.T) {
	it := Item{"ab": N(1), "c": S("xyz"), "d": B([]byte{1, 2, 3, 4})}
	// 2+8 + 1+3 + 1+4 = 19
	if got := it.Size(); got != 19 {
		t.Fatalf("size = %d", got)
	}
	if NumList(1, 2, 3).Size() != 24 {
		t.Fatal("numlist size")
	}
	if StrList("ab", "c").Size() != 5 {
		t.Fatal("strlist size")
	}
}

func TestCondStringsAndCombinators(t *testing.T) {
	it := Item{"v": N(5), "xs": NumList(7, 8)}
	cases := []struct {
		c    Cond
		want bool
	}{
		{Exists{}, true},
		{Not{NotExists{}}, true},
		{AttrExists{"v"}, true},
		{AttrNotExists{"v"}, false},
		{Eq{"v", N(5)}, true},
		{Eq{"v", N(6)}, false},
		{NumLt{"v", 6}, true},
		{NumLt{"v", 5}, false},
		{NumListHeadEq{"xs", 7}, true},
		{NumListHeadEq{"xs", 8}, false},
		{And{Exists{}, Eq{"v", N(5)}}, true},
		{And{Exists{}, Eq{"v", N(6)}}, false},
		{Or{Eq{"v", N(6)}, NumLt{"v", 100}}, true},
		{Or{Eq{"v", N(6)}, NumLt{"v", 1}}, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(it, true); got != c.want {
			t.Errorf("%s = %v, want %v", c.c, got, c.want)
		}
		if c.c.String() == "" {
			t.Errorf("empty string for %T", c.c)
		}
	}
	// Absent item.
	if (Eq{"v", N(5)}).Eval(nil, false) {
		t.Error("Eq on absent item")
	}
	if !(NotExists{}).Eval(nil, false) {
		t.Error("NotExists on absent item")
	}
}
