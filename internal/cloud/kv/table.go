package kv

import (
	"errors"
	"fmt"
	"sort"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// Errors returned by table operations.
var (
	ErrConditionFailed = errors.New("kv: condition failed")
	ErrItemTooLarge    = errors.New("kv: item exceeds size limit")
	ErrNotFound        = errors.New("kv: item not found")
)

// Table is one simulated KV table. All methods must be called from inside
// sim processes: they sleep for the modelled operation latency and charge
// the environment's meter before touching state, so concurrent conditional
// updates contend exactly as they would against a real region.
type Table struct {
	env     *cloud.Env
	name    string
	costCat string
	items   map[string]*row
	keys    []string // sorted key index for deterministic scans
	dirty   bool

	stream *Stream
	seqNo  int64

	// Optional write-throughput model (Figure 6b): operations reserve
	// capacity slots; conditional updates consume more, which is what
	// caps locked updates at ~84% of plain-write throughput.
	writePerSec float64
	condCost    float64
	nextFree    sim.Time
}

type row struct {
	cur       Item
	prev      Item     // last overwritten version, for eventual reads
	writtenAt sim.Time // commit time of cur
}

// Stream is a DynamoDB-Streams-like change feed attached to a table.
type Stream struct {
	Records *sim.Queue[StreamRecord]
}

// StreamRecord describes one committed write.
type StreamRecord struct {
	SeqNo int64
	Key   string
	Item  Item // nil on delete
}

// NewTable creates an empty table in env.
func NewTable(env *cloud.Env, name string) *Table {
	return &Table{env: env, name: name, costCat: "kv", items: map[string]*row{}}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetCostCategory changes the meter category prefix (default "kv"), so
// deployments can separate system-store from user-store spending.
func (t *Table) SetCostCategory(cat string) { t.costCat = cat }

// SetWriteCapacity enables the write-throughput model: writes are admitted
// at up to opsPerSec, and conditional updates consume condCost capacity
// units each (1 = same as a plain write). Zero disables the limit.
func (t *Table) SetWriteCapacity(opsPerSec, condCost float64) {
	t.writePerSec = opsPerSec
	if condCost <= 0 {
		condCost = 1
	}
	t.condCost = condCost
}

// admitWrite queues the caller until table capacity is available and
// returns the queueing delay to add to the operation's latency.
func (t *Table) admitWrite(conditional bool) sim.Time {
	if t.writePerSec <= 0 {
		return 0
	}
	cost := 1.0
	if conditional {
		cost = t.condCost
	}
	return t.admitOp(cost)
}

func (t *Table) admitOp(cost float64) sim.Time {
	slot := sim.Time(cost / t.writePerSec * float64(sim.Ms(1000)))
	now := t.env.K.Now()
	start := t.nextFree
	if start < now {
		start = now
	}
	t.nextFree = start + slot
	return start - now
}

// EnableStream attaches a change feed to the table and returns it.
func (t *Table) EnableStream() *Stream {
	if t.stream == nil {
		t.stream = &Stream{Records: sim.NewQueue[StreamRecord](t.env.K)}
	}
	return t.stream
}

func (t *Table) profile() *cloud.Profile { return t.env.Profile }

// readLatency models a GetItem call for an item of size bytes. Reads share
// the table's capacity pool with writes when a limit is configured.
func (t *Table) readLatency(ctx cloud.Ctx, size int) sim.Time {
	p := t.profile()
	lat := t.env.OpTime(ctx, p.KVReadBase, p.KVReadPerKB, size)
	if t.writePerSec > 0 {
		lat += t.admitOp(1)
	}
	return lat
}

// writeLatency models a Put/Update call. Conditional or transactional
// updates pay the synchronization surcharge measured in Section 5.2.1; the
// latency grows with the *stored item's* size even when the change itself
// is small (Table 6a).
func (t *Table) writeLatency(ctx cloud.Ctx, itemSize, appendSize int, conditional bool) sim.Time {
	p := t.profile()
	base := t.admitWrite(conditional)
	base += t.env.OpTime(ctx, p.KVWriteBase, p.KVWritePerKB, itemSize)
	if appendSize > 0 {
		base += sim.Time(float64(p.KVListPerKB) * float64(appendSize) / 1024)
	}
	if conditional {
		if p.KVCondPenalty != nil {
			base += p.KVCondPenalty.Sample(t.env.K.Rand())
		} else if p.KVTxPenalty != nil {
			// Providers without conditional update expressions emulate them
			// with transactions (Datastore; Section 4.5).
			base += p.KVTxPenalty.Sample(t.env.K.Rand())
		}
	}
	return base
}

// Get returns a deep copy of the item. With consistent=false the read is
// eventually consistent: a read racing a recent write may return the
// previous version (and is billed at half price on AWS).
func (t *Table) Get(ctx cloud.Ctx, key string, consistent bool) (Item, bool) {
	r := t.items[key]
	size := 0
	if r != nil {
		size = r.cur.Size()
	}
	t.env.K.Sleep(t.readLatency(ctx, size))
	t.env.Charge(ctx, t.costCat+".read", t.profile().Pricing.KVReadCost(max(size, 1), consistent), 1)
	r = t.items[key] // re-fetch: state may have changed while we slept
	if r == nil {
		return nil, false
	}
	if !consistent && r.prev != nil {
		lag := t.profile().KVReplicaLag
		age := t.env.K.Now() - r.writtenAt
		if age < lag {
			// The replica lags behind with probability proportional to how
			// fresh the write is.
			pStale := 1 - float64(age)/float64(lag)
			if t.env.K.Rand().Float64() < pStale {
				return r.prev.Clone(), true
			}
		}
	}
	return r.cur.Clone(), true
}

// GetView is Get without the defensive deep copy: the returned item is a
// READ-ONLY view of table storage, valid until the caller's next yield
// point at the latest (a concurrent writer may commit a replacement; the
// view itself is never mutated in place — commits swap whole items).
// Callers must not modify the item or any slice it holds, and must copy
// whatever they retain or mutate. Hot read paths use it to skip cloning
// entire items — the paper's znode items carry the full node blob, so the
// clone dominated read-side allocation.
func (t *Table) GetView(ctx cloud.Ctx, key string, consistent bool) (Item, bool) {
	r := t.items[key]
	size := 0
	if r != nil {
		size = r.cur.Size()
	}
	t.env.K.Sleep(t.readLatency(ctx, size))
	t.env.Charge(ctx, t.costCat+".read", t.profile().Pricing.KVReadCost(max(size, 1), consistent), 1)
	r = t.items[key] // re-fetch: state may have changed while we slept
	if r == nil {
		return nil, false
	}
	if !consistent && r.prev != nil {
		lag := t.profile().KVReplicaLag
		age := t.env.K.Now() - r.writtenAt
		if age < lag {
			pStale := 1 - float64(age)/float64(lag)
			if t.env.K.Rand().Float64() < pStale {
				return r.prev, true
			}
		}
	}
	return r.cur, true
}

// Put stores item under key if cond (when non-nil) holds.
func (t *Table) Put(ctx cloud.Ctx, key string, item Item, cond Cond) error {
	size := item.Size()
	if size > t.profile().KVMaxItemB {
		return fmt.Errorf("%w: %d > %d", ErrItemTooLarge, size, t.profile().KVMaxItemB)
	}
	t.env.K.Sleep(t.writeLatency(ctx, size, 0, cond != nil))
	t.env.Charge(ctx, t.costCat+".write", t.profile().Pricing.KVWriteCost(size), 1)
	old, exists := t.lookup(key)
	if cond != nil && !cond.Eval(old, exists) {
		return ErrConditionFailed
	}
	t.commit(key, item.Clone())
	return nil
}

// Update applies the update actions atomically if cond holds, creating the
// item when absent (upsert semantics). It returns the new item state.
func (t *Table) Update(ctx cloud.Ctx, key string, updates []Update, cond Cond) (Item, error) {
	old, exists := t.lookup(key)
	size := 0
	if exists {
		size = old.Size()
	}
	appendSize := 0
	for _, u := range updates {
		appendSize += u.payloadSize()
	}
	t.env.K.Sleep(t.writeLatency(ctx, max(size, appendSize), appendSize, cond != nil))
	t.env.Charge(ctx, t.costCat+".write", t.profile().Pricing.KVWriteCost(max(size, appendSize)), 1)

	old, exists = t.lookup(key) // re-evaluate after the latency
	if cond != nil && !cond.Eval(old, exists) {
		return nil, ErrConditionFailed
	}
	var next Item
	if exists {
		next = old.Clone()
	} else {
		next = Item{}
	}
	for _, u := range updates {
		u.Apply(next)
	}
	if next.Size() > t.profile().KVMaxItemB {
		return nil, fmt.Errorf("%w: %d > %d", ErrItemTooLarge, next.Size(), t.profile().KVMaxItemB)
	}
	t.commit(key, next)
	return next.Clone(), nil
}

// Delete removes the item if cond holds. Deleting a missing item succeeds,
// as in DynamoDB, unless a condition requires existence.
func (t *Table) Delete(ctx cloud.Ctx, key string, cond Cond) error {
	old, exists := t.lookup(key)
	size := 0
	if exists {
		size = old.Size()
	}
	t.env.K.Sleep(t.writeLatency(ctx, size, 0, cond != nil))
	t.env.Charge(ctx, t.costCat+".write", t.profile().Pricing.KVWriteCost(max(size, 1)), 1)
	old, exists = t.lookup(key)
	if cond != nil && !cond.Eval(old, exists) {
		return ErrConditionFailed
	}
	if exists {
		delete(t.items, key)
		t.dirty = true
		t.emit(key, nil)
	}
	return nil
}

// TxOp is one leg of a multi-item transaction.
type TxOp struct {
	Key     string
	Updates []Update
	Cond    Cond
	Delete  bool
}

// Transact applies all ops atomically: every condition is checked against
// the pre-state and either all legs commit or none do. This is the
// transactional write FaaSKeeper uses for multi-node commits and the GCP
// port uses in place of conditional updates.
func (t *Table) Transact(ctx cloud.Ctx, ops []TxOp) error {
	size := 0
	for _, op := range ops {
		if it, ok := t.lookup(op.Key); ok {
			size += it.Size()
		}
		for _, u := range op.Updates {
			size += u.payloadSize()
		}
	}
	lat := t.writeLatency(ctx, size, 0, true)
	if p := t.profile().KVTxPenalty; p != nil {
		lat += p.Sample(t.env.K.Rand())
	}
	t.env.K.Sleep(lat)
	t.env.Charge(ctx, t.costCat+".write", t.profile().Pricing.KVWriteCost(max(size, 1))*float64(len(ops)), int64(len(ops)))

	// Check all conditions against the post-latency state.
	for _, op := range ops {
		old, exists := t.lookup(op.Key)
		if op.Cond != nil && !op.Cond.Eval(old, exists) {
			return ErrConditionFailed
		}
	}
	for _, op := range ops {
		if op.Delete {
			if _, ok := t.items[op.Key]; ok {
				delete(t.items, op.Key)
				t.dirty = true
				t.emit(op.Key, nil)
			}
			continue
		}
		old, exists := t.lookup(op.Key)
		var next Item
		if exists {
			next = old.Clone()
		} else {
			next = Item{}
		}
		for _, u := range op.Updates {
			u.Apply(next)
		}
		t.commit(op.Key, next)
	}
	return nil
}

// KeyItem pairs a key with its item for scans.
type KeyItem struct {
	Key  string
	Item Item
}

// Scan returns all items in key order, billing reads for the full table
// (the heartbeat function's session scan, Section 5.3.3).
func (t *Table) Scan(ctx cloud.Ctx) []KeyItem {
	total := 0
	for _, r := range t.items {
		total += r.cur.Size()
	}
	t.env.K.Sleep(t.readLatency(ctx, total))
	t.env.Charge(ctx, t.costCat+".read", t.profile().Pricing.KVReadCost(max(total, 1), true), 1)
	out := make([]KeyItem, 0, len(t.items))
	for _, k := range t.sortedKeys() {
		out = append(out, KeyItem{Key: k, Item: t.items[k].cur.Clone()})
	}
	return out
}

// Len returns the number of stored items (no latency; test helper).
func (t *Table) Len() int { return len(t.items) }

// TotalSize returns the summed item sizes in bytes (no latency).
func (t *Table) TotalSize() int {
	n := 0
	for _, r := range t.items {
		n += r.cur.Size()
	}
	return n
}

// SeedPut stores an item without latency or billing. Deployments use it to
// bootstrap state (the tree root, for example) before measurement starts.
func (t *Table) SeedPut(key string, item Item) {
	t.commit(key, item.Clone())
}

// Peek returns the stored item without latency or billing; tests and
// invariant checkers use it to inspect state without perturbing time.
func (t *Table) Peek(key string) (Item, bool) {
	r, ok := t.items[key]
	if !ok {
		return nil, false
	}
	return r.cur.Clone(), true
}

func (t *Table) lookup(key string) (Item, bool) {
	r, ok := t.items[key]
	if !ok {
		return nil, false
	}
	return r.cur, true
}

func (t *Table) commit(key string, next Item) {
	r, ok := t.items[key]
	if !ok {
		r = &row{}
		t.items[key] = r
		t.dirty = true
	}
	r.prev = r.cur
	r.cur = next
	r.writtenAt = t.env.K.Now()
	t.emit(key, next)
}

func (t *Table) emit(key string, item Item) {
	if t.stream == nil {
		return
	}
	t.seqNo++
	rec := StreamRecord{SeqNo: t.seqNo, Key: key}
	if item != nil {
		rec.Item = item.Clone()
	}
	t.stream.Records.Push(rec)
}

func (t *Table) sortedKeys() []string {
	if t.dirty || len(t.keys) != len(t.items) {
		t.keys = t.keys[:0]
		for k := range t.items {
			t.keys = append(t.keys, k)
		}
		sort.Strings(t.keys)
		t.dirty = false
	}
	return t.keys
}
