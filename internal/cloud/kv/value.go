// Package kv implements the simulated key-value database used as
// FaaSKeeper's system store: a DynamoDB/Datastore-like table with strongly
// and eventually consistent reads, conditional update expressions, atomic
// counters and list operations, multi-item transactions, change streams,
// per-operation billing, and latencies calibrated to the paper's Table 6a.
package kv

import (
	"bytes"
	"fmt"
	"strings"
)

// Kind enumerates the attribute value types the reproduction needs.
type Kind uint8

// Supported attribute kinds.
const (
	KindString Kind = iota
	KindNumber
	KindBytes
	KindNumList
	KindStrList
)

// Value is a typed attribute value (the equivalent of a DynamoDB
// AttributeValue restricted to the types FaaSKeeper uses).
type Value struct {
	Kind Kind
	Str  string
	Num  int64
	Byt  []byte
	NL   []int64
	SL   []string
}

// S builds a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// N builds a number value.
func N(n int64) Value { return Value{Kind: KindNumber, Num: n} }

// B builds a binary value.
func B(b []byte) Value { return Value{Kind: KindBytes, Byt: b} }

// NumList builds a number-list value.
func NumList(ns ...int64) Value { return Value{Kind: KindNumList, NL: ns} }

// StrList builds a string-list value.
func StrList(ss ...string) Value { return Value{Kind: KindStrList, SL: ss} }

// Size returns the billing size of the value in bytes.
func (v Value) Size() int {
	switch v.Kind {
	case KindString:
		return len(v.Str)
	case KindNumber:
		return 8
	case KindBytes:
		return len(v.Byt)
	case KindNumList:
		return 8 * len(v.NL)
	case KindStrList:
		n := 0
		for _, s := range v.SL {
			n += len(s) + 1
		}
		return n
	}
	return 0
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindNumber:
		return v.Num == o.Num
	case KindBytes:
		return bytes.Equal(v.Byt, o.Byt)
	case KindNumList:
		if len(v.NL) != len(o.NL) {
			return false
		}
		for i := range v.NL {
			if v.NL[i] != o.NL[i] {
				return false
			}
		}
		return true
	case KindStrList:
		if len(v.SL) != len(o.SL) {
			return false
		}
		for i := range v.SL {
			if v.SL[i] != o.SL[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Clone returns a deep copy so callers cannot alias stored state.
func (v Value) Clone() Value {
	switch v.Kind {
	case KindBytes:
		v.Byt = append([]byte(nil), v.Byt...)
	case KindNumList:
		v.NL = append([]int64(nil), v.NL...)
	case KindStrList:
		v.SL = append([]string(nil), v.SL...)
	}
	return v
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindNumber:
		return fmt.Sprintf("%d", v.Num)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.Byt))
	case KindNumList:
		return fmt.Sprintf("%v", v.NL)
	case KindStrList:
		return fmt.Sprintf("%q", v.SL)
	}
	return "?"
}

// Item is one table row: attribute name -> value.
type Item map[string]Value

// Size returns the billing size of the item: attribute names plus values.
func (it Item) Size() int {
	n := 0
	for k, v := range it {
		n += len(k) + v.Size()
	}
	return n
}

// Clone deep-copies the item.
func (it Item) Clone() Item {
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v.Clone()
	}
	return out
}

// String renders the item with attributes sorted for deterministic output.
func (it Item) String() string {
	keys := make([]string, 0, len(it))
	for k := range it {
		keys = append(keys, k)
	}
	// Tiny n: insertion sort keeps this dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", k, it[k])
	}
	b.WriteByte('}')
	return b.String()
}
