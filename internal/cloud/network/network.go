// Package network models the TCP connections of the reproduction: ordered,
// reliable, duplex links between clients and cloud endpoints (FaaSKeeper
// notification channels) and between ZooKeeper servers and clients.
//
// A link delivers messages in FIFO order after a one-way latency plus a
// size-dependent wire time. Sends do not block beyond a negligible local
// cost, mirroring kernel socket buffers.
package network

import (
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// Packet is one framed message on a link.
type Packet struct {
	Payload any
	Size    int
}

type timedPacket struct {
	Packet
	deliverAt sim.Time
}

// Conn is one duplex TCP-like connection. Use NewConn for a pair of ends.
type Conn struct {
	env  *cloud.Env
	a, b *End
}

// End is one endpoint of a connection.
type End struct {
	env         *cloud.Env
	peer        *End
	inbox       *sim.Queue[timedPacket]
	lastDeliver sim.Time
	oneWay      sim.Dist
	crossRegion bool
	closed      bool
}

// NewConn creates a connection between two regions. Cross-region
// connections pay the inter-region penalty on every message.
func NewConn(env *cloud.Env, ra, rb cloud.Region) *Conn {
	c := &Conn{env: env}
	cross := ra != rb
	mk := func() *End {
		return &End{
			env:         env,
			inbox:       sim.NewQueue[timedPacket](env.K),
			oneWay:      sim.Scale(env.Profile.ClientRTT, 0.5),
			crossRegion: cross,
		}
	}
	c.a, c.b = mk(), mk()
	c.a.peer, c.b.peer = c.b, c.a
	return c
}

// NewLANConn creates a low-latency connection inside one deployment
// (ZooKeeper server <-> server, server <-> collocated client).
func NewLANConn(env *cloud.Env) *Conn {
	c := &Conn{env: env}
	mk := func() *End {
		return &End{
			env:    env,
			inbox:  sim.NewQueue[timedPacket](env.K),
			oneWay: sim.Scale(env.Profile.LANRTT, 0.5),
		}
	}
	c.a, c.b = mk(), mk()
	c.a.peer, c.b.peer = c.b, c.a
	return c
}

// A returns the first endpoint.
func (c *Conn) A() *End { return c.a }

// B returns the second endpoint.
func (c *Conn) B() *End { return c.b }

// Send transmits a payload of the given size to the peer. It never blocks
// the sender for the full flight time; delivery order is FIFO and delivery
// time is monotone per direction (TCP semantics).
func (e *End) Send(payload any, size int) {
	if e.closed || e.peer.closed {
		return
	}
	env := e.env
	delay := e.oneWay.Sample(env.K.Rand())
	if e.crossRegion {
		delay += env.Profile.XRegionBase.Sample(env.K.Rand()) / 2
	}
	if env.Profile.WireKBps > 0 && size > 0 {
		delay += sim.Time(float64(size) / 1024 / env.Profile.WireKBps * float64(sim.Ms(1)))
	}
	at := env.K.Now() + delay
	if at < e.peer.lastDeliver {
		at = e.peer.lastDeliver // no reordering on the wire
	}
	e.peer.lastDeliver = at
	e.peer.inbox.Push(timedPacket{Packet: Packet{Payload: payload, Size: size}, deliverAt: at})
}

// Recv blocks until the next message arrives and returns it. ok is false
// once the connection is closed and drained.
func (e *End) Recv() (Packet, bool) {
	for {
		tp, ok := e.inbox.Pop()
		if !ok {
			return Packet{}, false
		}
		if wait := tp.deliverAt - e.env.K.Now(); wait > 0 {
			e.env.K.Sleep(wait)
		}
		return tp.Packet, true
	}
}

// RecvTimeout is Recv with a deadline; ok is false on timeout or close.
func (e *End) RecvTimeout(d sim.Time) (Packet, bool) {
	deadline := e.env.K.Now() + d
	tp, ok := e.inbox.PopTimeout(d)
	if !ok {
		return Packet{}, false
	}
	if tp.deliverAt > deadline {
		// Arrived on the wire but not deliverable before the deadline:
		// treat as timeout, but do not lose the packet.
		e.requeueFront(tp)
		e.env.K.Sleep(deadline - e.env.K.Now())
		return Packet{}, false
	}
	if wait := tp.deliverAt - e.env.K.Now(); wait > 0 {
		e.env.K.Sleep(wait)
	}
	return tp.Packet, true
}

func (e *End) requeueFront(tp timedPacket) {
	rest := make([]timedPacket, 0, e.inbox.Len()+1)
	rest = append(rest, tp)
	for {
		m, ok := e.inbox.TryPop()
		if !ok {
			break
		}
		rest = append(rest, m)
	}
	for _, m := range rest {
		e.inbox.Push(m)
	}
}

// Close closes this end; subsequent sends from either side are dropped and
// pending receives drain then report closure.
func (e *End) Close() {
	if !e.closed {
		e.closed = true
		e.inbox.Close()
	}
}

// Pending returns the number of undelivered messages (test helper).
func (e *End) Pending() int { return e.inbox.Len() }
