package network

import (
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

func newEnv(seed int64) (*sim.Kernel, *cloud.Env) {
	k := sim.NewKernel(seed)
	return k, cloud.NewEnv(k, cloud.AWSProfile())
}

func TestSendRecvRoundTrip(t *testing.T) {
	k, env := newEnv(1)
	c := NewConn(env, cloud.RegionAWSHome, cloud.RegionAWSHome)
	var got string
	var at sim.Time
	k.Go("receiver", func() {
		p, ok := c.B().Recv()
		if !ok {
			t.Error("closed")
			return
		}
		got = p.Payload.(string)
		at = k.Now()
	})
	k.Go("sender", func() {
		c.A().Send("hello", 5)
	})
	k.Run()
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if at <= 0 {
		t.Fatal("delivery was instantaneous")
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	k, env := newEnv(2)
	c := NewLANConn(env)
	var got []int
	k.Go("receiver", func() {
		for i := 0; i < 50; i++ {
			p, ok := c.B().Recv()
			if !ok {
				return
			}
			got = append(got, p.Payload.(int))
		}
	})
	k.Go("sender", func() {
		for i := 0; i < 50; i++ {
			// Mix of sizes so wire times differ; order must still hold.
			c.A().Send(i, (i%7)*1024)
		}
	})
	k.Run()
	if len(got) != 50 {
		t.Fatalf("received %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestSendDoesNotBlockSender(t *testing.T) {
	k, env := newEnv(3)
	c := NewConn(env, cloud.RegionAWSHome, cloud.RegionAWSHome)
	var sendDone sim.Time
	k.Go("sender", func() {
		for i := 0; i < 10; i++ {
			c.A().Send(i, 1024)
		}
		sendDone = k.Now()
	})
	k.Go("receiver", func() {
		for i := 0; i < 10; i++ {
			c.B().Recv()
		}
	})
	k.Run()
	if sendDone != 0 {
		t.Fatalf("sends blocked until %v", sendDone)
	}
}

func TestRecvTimeout(t *testing.T) {
	k, env := newEnv(4)
	c := NewLANConn(env)
	var ok bool
	var at sim.Time
	k.Go("receiver", func() {
		_, ok = c.B().RecvTimeout(10 * sim.Ms(1))
		at = k.Now()
	})
	k.Run()
	if ok || at != 10*sim.Ms(1) {
		t.Fatalf("ok=%v at=%v", ok, at)
	}
}

func TestRecvTimeoutDoesNotLosePackets(t *testing.T) {
	k, env := newEnv(5)
	c := NewConn(env, cloud.RegionAWSHome, cloud.RegionAWSRemote) // slow link
	var first, second bool
	var got int
	k.Go("receiver", func() {
		_, first = c.B().RecvTimeout(sim.Ms(1)) // too short for cross-region
		p, ok := c.B().Recv()
		second = ok
		if ok {
			got = p.Payload.(int)
		}
	})
	k.Go("sender", func() { c.A().Send(42, 8) })
	k.Run()
	if first {
		t.Fatal("timeout should have fired before cross-region delivery")
	}
	if !second || got != 42 {
		t.Fatalf("packet lost: ok=%v got=%d", second, got)
	}
}

func TestCrossRegionSlower(t *testing.T) {
	k, env := newEnv(6)
	same := NewConn(env, cloud.RegionAWSHome, cloud.RegionAWSHome)
	cross := NewConn(env, cloud.RegionAWSHome, cloud.RegionAWSRemote)
	var tSame, tCross sim.Time
	k.Go("same", func() {
		same.A().Send(1, 64)
		t0 := k.Now()
		same.B().Recv()
		tSame = k.Now() - t0
	})
	k.Go("cross", func() {
		cross.A().Send(1, 64)
		t0 := k.Now()
		cross.B().Recv()
		tCross = k.Now() - t0
	})
	k.Run()
	if tCross < 10*tSame {
		t.Fatalf("cross-region %v not much slower than same-region %v", tCross, tSame)
	}
}

func TestCloseDropsFutureSends(t *testing.T) {
	k, env := newEnv(7)
	c := NewLANConn(env)
	var recvOK bool
	k.Go("receiver", func() {
		c.B().Close()
		_, recvOK = c.B().Recv()
	})
	k.Go("sender", func() {
		k.Sleep(sim.Ms(1))
		c.A().Send("late", 4) // dropped
	})
	k.Run()
	if recvOK {
		t.Fatal("recv on closed end succeeded")
	}
	if c.B().Pending() != 0 {
		t.Fatal("packet queued after close")
	}
}
