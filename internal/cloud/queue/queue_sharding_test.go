package queue

// Invariants the sharded leader pipeline leans on: a failed batch retried
// via Requeue is redelivered before anything queued behind it (so a shard's
// transaction order survives consumer crashes), and Receive honors both the
// caller's max and the technology's batch cap on every queue kind.

import (
	"fmt"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// TestRequeueOrderingAfterFailedBatch: messages are requeued while later
// sends are already buffered behind them; the drain must replay the failed
// batch first and preserve the original global order, for both the ordered
// and the unordered kind.
func TestRequeueOrderingAfterFailedBatch(t *testing.T) {
	for _, kind := range []cloud.QueueKind{cloud.QueueFIFO, cloud.QueueStandard} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			k, env, ctx := newEnv(21)
			q := New(env, "retry", kind)
			var got []string
			k.Go("driver", func() {
				for i := 0; i < 5; i++ {
					q.Send(ctx, "s", []byte(fmt.Sprintf("m%d", i)))
				}
				k.Sleep(sim.Ms(2000))
				batch, ok := q.Receive(3)
				if !ok || len(batch) == 0 {
					t.Error("no first batch")
					return
				}
				// Consumer "fails"; more traffic arrives before the retry.
				q.Send(ctx, "s", []byte("m5"))
				q.Requeue(batch)
				for {
					b, ok := q.Receive(0)
					if !ok {
						return
					}
					for _, m := range b {
						got = append(got, string(m.Body))
					}
					if len(got) >= 6 {
						q.Close()
					}
				}
			})
			k.Run()
			k.Shutdown()
			if len(got) != 6 {
				t.Fatalf("drained %d messages: %v", len(got), got)
			}
			for i, m := range got {
				if m != fmt.Sprintf("m%d", i) {
					t.Fatalf("order broken after requeue at %d: %v", i, got)
				}
			}
		})
	}
}

// TestReceiveHonorsMaxBatch: an explicit max below the cap limits the
// batch, max <= 0 and oversized max clamp to the technology's MaxBatch,
// and no delivered batch ever exceeds it — on both queue kinds.
func TestReceiveHonorsMaxBatch(t *testing.T) {
	for _, kind := range []cloud.QueueKind{cloud.QueueFIFO, cloud.QueueStandard} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			k, env, ctx := newEnv(22)
			q := New(env, "caps", kind)
			cap := q.MaxBatch()
			if cap <= 0 {
				t.Fatalf("MaxBatch = %d", cap)
			}
			var sizes []int
			k.Go("driver", func() {
				for i := 0; i < 3*cap+5; i++ {
					q.Send(ctx, "s", []byte("x"))
				}
				k.Sleep(sim.Ms(2000))
				// Explicit small max.
				b, _ := q.Receive(2)
				sizes = append(sizes, len(b))
				// Oversized max clamps to the cap.
				b, _ = q.Receive(10 * cap)
				sizes = append(sizes, len(b))
				// Default (0) also clamps to the cap.
				b, _ = q.Receive(0)
				sizes = append(sizes, len(b))
				q.Close()
				for {
					b, ok := q.Receive(0)
					if !ok {
						return
					}
					sizes = append(sizes, len(b))
				}
			})
			k.Run()
			k.Shutdown()
			if sizes[0] != 2 {
				t.Errorf("Receive(2) delivered %d", sizes[0])
			}
			if sizes[1] != cap {
				t.Errorf("Receive(%d) delivered %d, want the cap %d", 10*cap, sizes[1], cap)
			}
			if sizes[2] != cap {
				t.Errorf("Receive(0) delivered %d, want the cap %d", sizes[2], cap)
			}
			total := 0
			for _, s := range sizes {
				total += s
				if s > cap {
					t.Errorf("batch of %d exceeds cap %d", s, cap)
				}
			}
			if total != 3*cap+5 {
				t.Errorf("drained %d of %d", total, 3*cap+5)
			}
		})
	}
}
