// Package queue implements the simulated cloud queues of Section 5.2.2:
// SQS FIFO (ordered message groups, batch <= 10, monotonically increasing
// sequence numbers), SQS standard (unordered, bursty batching), DynamoDB
// Streams shards, and GCP Pub/Sub with and without ordering keys.
//
// A queue satisfies FaaSKeeper's five requirements on the processing queue
// (Section 3.1): it invokes functions on messages (via faas triggers that
// poll Receive), upholds FIFO order per group, supports limiting consumer
// concurrency, batches items, and assigns monotonically increasing
// sequence numbers that serve as the transaction id.
package queue

import (
	"errors"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// ErrTooLarge is returned for messages above the provider's size limit.
var ErrTooLarge = errors.New("queue: message exceeds size limit")

// Message is one queued message.
type Message struct {
	SeqNo   int64  // monotonically increasing per queue: the txid source
	GroupID string // FIFO message group (one per client session)
	Body    []byte
	SentAt  sim.Time
}

// Queue is one simulated queue instance.
type Queue struct {
	env  *cloud.Env
	name string
	kind cloud.QueueKind

	seqNo       int64
	buf         *sim.Queue[Message]
	closed      bool
	groupFreeAt sim.Time
}

// New creates a queue of the given kind.
func New(env *cloud.Env, name string, kind cloud.QueueKind) *Queue {
	if _, ok := env.Profile.QueueDeliver[kind]; !ok {
		panic("queue: kind " + string(kind) + " not available in profile " + env.Profile.Name)
	}
	return &Queue{env: env, name: name, kind: kind, buf: sim.NewQueue[Message](env.K)}
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Kind returns the queue technology.
func (q *Queue) Kind() cloud.QueueKind { return q.kind }

// Ordered reports whether the queue preserves per-group FIFO order.
func (q *Queue) Ordered() bool {
	return q.kind == cloud.QueueFIFO || q.kind == cloud.QueueOrdered || q.kind == cloud.QueueStream
}

// MaxBatch returns the largest batch a trigger may receive.
func (q *Queue) MaxBatch() int {
	switch q.kind {
	case cloud.QueueFIFO:
		return q.env.Profile.FIFOMaxBatch // 10 on SQS FIFO
	case cloud.QueueStream:
		return 100
	default:
		return 10
	}
}

// Send enqueues a message, sleeping for the synchronous send-API latency
// and charging the per-message cost. It returns the assigned sequence
// number. The send latency is what the follower function pays at step ③
// of Algorithm 1 (the "Push" rows of Table 3).
func (q *Queue) Send(ctx cloud.Ctx, groupID string, body []byte) (int64, error) {
	p := q.env.Profile
	if len(body) > p.QueueMaxMsgB {
		return 0, ErrTooLarge
	}
	q.env.K.Sleep(q.env.OpTime(ctx, p.QueueSendBase, p.QueueSendPerKB, len(body)))
	q.env.Charge(ctx, "queue.msg", p.Pricing.QueueMsgCost(len(body)), 1)
	q.seqNo++
	m := Message{
		SeqNo:   q.seqNo,
		GroupID: groupID,
		Body:    append([]byte(nil), body...),
		SentAt:  q.env.K.Now(),
	}
	q.buf.Push(m)
	return m.SeqNo, nil
}

// Receive blocks until at least one message is available and returns a
// batch of up to max messages (capped by the queue technology), after the
// queue's delivery overhead. This is the poller API used by faas triggers.
// ok is false once the queue is closed and drained.
func (q *Queue) Receive(max int) ([]Message, bool) {
	if cap := q.MaxBatch(); max <= 0 || max > cap {
		max = cap
	}
	// Unordered queues accumulate for a short window, producing the large
	// bursty batches observed in Figure 7b.
	window := sim.Time(0)
	if !q.Ordered() {
		window = 20 * sim.Ms(1)
	}
	if q.kind == cloud.QueueFIFO {
		// SQS FIFO serializes each message group: a new batch only becomes
		// visible once the pacing interval from the previous one elapses.
		// Idle queues are unaffected, but sustained load saturates around
		// a hundred requests per second (Figure 7b).
		if wait := q.groupFreeAt - q.env.K.Now(); wait > 0 {
			q.env.K.Sleep(wait)
		}
	}
	batch := q.buf.PopBatch(max, window)
	if len(batch) == 0 {
		return nil, false
	}
	q.env.K.Sleep(q.env.Profile.QueueDeliver[q.kind].Sample(q.env.K.Rand()))
	if h := q.env.K.Fault(); h != nil {
		if d := h.DeliveryDelay(q.name); d > 0 {
			q.env.K.Sleep(d)
		}
	}
	if q.kind == cloud.QueueFIFO {
		q.groupFreeAt = q.env.K.Now() + sim.Time(len(batch))*fifoGroupPacing
	}
	return batch, true
}

// fifoGroupPacing is the per-message serialization delay of an SQS FIFO
// message group.
const fifoGroupPacing = 9 * time.Millisecond

// Requeue puts messages back at the head for retry after a consumer
// failure. Only the relative order within the returned batch is preserved,
// which suffices because FIFO consumers process one batch at a time.
func (q *Queue) Requeue(batch []Message) {
	// Re-push preserving order before anything currently buffered: rebuild.
	rest := make([]Message, 0, q.buf.Len())
	for {
		m, ok := q.buf.TryPop()
		if !ok {
			break
		}
		rest = append(rest, m)
	}
	for _, m := range batch {
		q.buf.Push(m)
	}
	for _, m := range rest {
		q.buf.Push(m)
	}
}

// Close marks the queue closed so pollers drain and stop.
func (q *Queue) Close() {
	if !q.closed {
		q.closed = true
		q.buf.Close()
	}
}

// Len returns the number of buffered messages.
func (q *Queue) Len() int { return q.buf.Len() }

// LastSeqNo returns the most recently assigned sequence number.
func (q *Queue) LastSeqNo() int64 { return q.seqNo }
