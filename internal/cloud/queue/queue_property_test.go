package queue

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// TestFIFOOrderUnderRandomBatchingProperty: whatever interleaving of sends
// and batched receives the schedule produces, an ordered queue must hand
// out messages in send order with monotonically increasing sequence
// numbers and no loss or duplication.
func TestFIFOOrderUnderRandomBatchingProperty(t *testing.T) {
	f := func(seed int64, nMsg uint8, gaps []uint8) bool {
		n := int(nMsg)%60 + 1
		k := sim.NewKernel(seed)
		env := cloud.NewEnv(k, cloud.AWSProfile())
		q := New(env, "prop", cloud.QueueFIFO)

		var got []Message
		k.Go("consumer", func() {
			for {
				batch, ok := q.Receive(0)
				if !ok {
					return
				}
				got = append(got, batch...)
			}
		})
		k.Go("producer", func() {
			for i := 0; i < n; i++ {
				body := make([]byte, 4)
				binary.LittleEndian.PutUint32(body, uint32(i))
				if _, err := q.Send(cloud.ClientCtx(cloud.RegionAWSHome), "g", body); err != nil {
					return
				}
				gap := sim.Time(0)
				if len(gaps) > 0 {
					gap = sim.Time(gaps[i%len(gaps)]) * sim.Ms(1)
				}
				k.Sleep(gap)
			}
			q.Close()
		})
		k.Run()
		k.Shutdown()

		if len(got) != n {
			return false
		}
		var lastSeq int64
		for i, m := range got {
			if binary.LittleEndian.Uint32(m.Body) != uint32(i) {
				return false
			}
			if m.SeqNo <= lastSeq {
				return false
			}
			lastSeq = m.SeqNo
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStandardQueueDeliversAllUnderBursts: the unordered queue may batch
// arbitrarily but must not lose or duplicate messages.
func TestStandardQueueDeliversAllUnderBursts(t *testing.T) {
	k := sim.NewKernel(9)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	q := New(env, "burst", cloud.QueueStandard)
	seen := map[int64]bool{}
	k.Go("consumer", func() {
		for {
			batch, ok := q.Receive(0)
			if !ok {
				return
			}
			for _, m := range batch {
				if seen[m.SeqNo] {
					t.Errorf("duplicate %d", m.SeqNo)
				}
				seen[m.SeqNo] = true
			}
		}
	})
	k.Go("producer", func() {
		ctx := cloud.ClientCtx(cloud.RegionAWSHome)
		for i := 0; i < 100; i++ {
			q.Send(ctx, "", []byte("x"))
			if i%10 == 9 {
				k.Sleep(50 * sim.Ms(1)) // bursts with pauses
			}
		}
		q.Close()
	})
	k.Run()
	k.Shutdown()
	if len(seen) != 100 {
		t.Fatalf("delivered %d of 100", len(seen))
	}
}
