package queue

import (
	"fmt"
	"math"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

func newEnv(seed int64) (*sim.Kernel, *cloud.Env, cloud.Ctx) {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	return k, env, cloud.ClientCtx(cloud.RegionAWSHome)
}

func TestSeqNoMonotonic(t *testing.T) {
	k, env, ctx := newEnv(1)
	q := New(env, "reqs", cloud.QueueFIFO)
	var seqs []int64
	k.Go("sender", func() {
		for i := 0; i < 10; i++ {
			s, err := q.Send(ctx, "session-1", []byte("req"))
			if err != nil {
				t.Errorf("send: %v", err)
			}
			seqs = append(seqs, s)
		}
	})
	k.Run()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	k, env, ctx := newEnv(2)
	q := New(env, "reqs", cloud.QueueFIFO)
	var got []string
	k.Go("consumer", func() {
		for {
			batch, ok := q.Receive(0)
			if !ok {
				return
			}
			for _, m := range batch {
				got = append(got, string(m.Body))
			}
		}
	})
	k.Go("sender", func() {
		for i := 0; i < 25; i++ {
			q.Send(ctx, "s", []byte(fmt.Sprintf("m%02d", i)))
		}
		q.Close()
	})
	k.Run()
	if len(got) != 25 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, m := range got {
		if m != fmt.Sprintf("m%02d", i) {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestFIFOBatchCap(t *testing.T) {
	k, env, ctx := newEnv(3)
	q := New(env, "reqs", cloud.QueueFIFO)
	var sizes []int
	k.Go("sender", func() {
		for i := 0; i < 25; i++ {
			q.Send(ctx, "s", []byte("x"))
		}
		q.Close()
	})
	k.Go("consumer", func() {
		// Start after all messages are buffered so batches fill up.
		k.Sleep(sim.Ms(2000))
		for {
			batch, ok := q.Receive(0)
			if !ok {
				return
			}
			sizes = append(sizes, len(batch))
		}
	})
	k.Run()
	total := 0
	for _, s := range sizes {
		total += s
		if s > 10 {
			t.Fatalf("FIFO batch of %d exceeds SQS cap of 10", s)
		}
	}
	if total != 25 {
		t.Fatalf("delivered %d", total)
	}
	if sizes[0] != 10 {
		t.Fatalf("first batch should be full: %v", sizes)
	}
}

func TestMessageSizeLimit(t *testing.T) {
	k, env, ctx := newEnv(4)
	q := New(env, "reqs", cloud.QueueFIFO)
	k.Go("sender", func() {
		if _, err := q.Send(ctx, "s", make([]byte, 257*1024)); err == nil {
			t.Error("oversized send accepted")
		}
	})
	k.Run()
}

func TestSendBillsPer64KBChunk(t *testing.T) {
	k, env, ctx := newEnv(5)
	q := New(env, "reqs", cloud.QueueFIFO)
	k.Go("sender", func() {
		q.Send(ctx, "s", make([]byte, 64))       // 1 unit
		q.Send(ctx, "s", make([]byte, 200*1024)) // 4 units
	})
	k.Run()
	want := 5 * 0.5e-6
	if got := env.Meter.Cost("queue.msg"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("queue cost = %v want %v", got, want)
	}
}

func TestRequeuePreservesHeadOrder(t *testing.T) {
	k, env, ctx := newEnv(6)
	q := New(env, "reqs", cloud.QueueFIFO)
	var got []string
	k.Go("sender", func() {
		for _, s := range []string{"a", "b", "c"} {
			q.Send(ctx, "s", []byte(s))
		}
		k.Sleep(sim.Ms(2000))
		batch, _ := q.Receive(0)
		q.Requeue(batch) // consumer failed; retry must see the same head
		for {
			b2, ok := q.Receive(0)
			if !ok {
				return
			}
			for _, m := range b2 {
				got = append(got, string(m.Body))
			}
			if len(got) >= 3 {
				q.Close()
			}
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestUnorderedQueueKindsAvailable(t *testing.T) {
	k, env, ctx := newEnv(7)
	std := New(env, "std", cloud.QueueStandard)
	if std.Ordered() {
		t.Fatal("standard queue should be unordered")
	}
	if !New(env, "f", cloud.QueueFIFO).Ordered() {
		t.Fatal("fifo queue should be ordered")
	}
	k.Go("x", func() {
		std.Send(ctx, "", []byte("a"))
		b, ok := std.Receive(0)
		if !ok || len(b) != 1 {
			t.Errorf("receive: %v %v", b, ok)
		}
	})
	k.Run()
}

func TestGCPOrderedQueue(t *testing.T) {
	k := sim.NewKernel(8)
	env := cloud.NewEnv(k, cloud.GCPProfile())
	ctx := cloud.ClientCtx(cloud.RegionGCPHome)
	q := New(env, "pubsub", cloud.QueueOrdered)
	var deliverDelay sim.Time
	k.Go("x", func() {
		q.Send(ctx, "s", []byte("hi"))
		t0 := k.Now()
		q.Receive(0)
		deliverDelay = k.Now() - t0
	})
	k.Run()
	// Ordered Pub/Sub adds >100 ms of delivery overhead (Figure 7c).
	if deliverDelay < 100*sim.Ms(1) {
		t.Fatalf("ordered pubsub too fast: %v", deliverDelay)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	k := sim.NewKernel(9)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unavailable kind")
		}
	}()
	New(env, "q", cloud.QueueOrdered) // AWS profile has no ordered Pub/Sub
}
