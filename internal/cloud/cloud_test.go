package cloud

import (
	"math"
	"testing"
	"time"

	"faaskeeper/internal/sim"
)

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter()
	m.Charge("s3.write", 5e-6, 1)
	m.Charge("s3.write", 5e-6, 1)
	m.Charge("ddb.read", 0.25e-6, 1)
	if got := m.Cost("s3.write"); got != 1e-5 {
		t.Fatalf("s3.write cost = %v", got)
	}
	if got := m.Count("s3.write"); got != 2 {
		t.Fatalf("s3.write count = %v", got)
	}
	if got := m.Total(); math.Abs(got-1.025e-5) > 1e-12 {
		t.Fatalf("total = %v", got)
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != "ddb.read" || cats[1] != "s3.write" {
		t.Fatalf("categories = %v", cats)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestAWSPricingMatchesTable4(t *testing.T) {
	p := AWSPricing()
	// Table 4: W_S3 = 5e-6, R_S3 = 4e-7 per op.
	if got := p.ObjectWriteCost(250 * 1024); got != 5e-6 {
		t.Fatalf("object write = %v", got)
	}
	if got := p.ObjectReadCost(1024); got != 4e-7 {
		t.Fatalf("object read = %v", got)
	}
	// W_DD(s) = ceil(s/1kB) * 1.25e-6.
	if got := p.KVWriteCost(1024); got != 1.25e-6 {
		t.Fatalf("kv write 1kB = %v", got)
	}
	if got := p.KVWriteCost(1025); got != 2.5e-6 {
		t.Fatalf("kv write 1kB+1 = %v", got)
	}
	// R_DD(s) = ceil(s/4kB) * 0.25e-6 for strong reads.
	if got := p.KVReadCost(4096, true); got != 0.25e-6 {
		t.Fatalf("kv read = %v", got)
	}
	if got := p.KVReadCost(4096, false); got != 0.125e-6 {
		t.Fatalf("kv eventual read = %v", got)
	}
	// Q(s) = ceil(s/64kB) * 0.5e-6.
	if got := p.QueueMsgCost(64 * 1024); got != 0.5e-6 {
		t.Fatalf("queue 64kB = %v", got)
	}
	if got := p.QueueMsgCost(64*1024 + 1); got != 1e-6 {
		t.Fatalf("queue 64kB+1 = %v", got)
	}
	// Paper: "processing requests via SQS is 160x cheaper than with
	// DynamoDB streams" (64 kB SQS chunk vs 64 write units of 1 kB).
	sqs := p.QueueMsgCost(64 * 1024)
	ddbStream := p.KVWriteCost(64 * 1024)
	if ratio := ddbStream / sqs; math.Abs(ratio-160) > 1 {
		t.Fatalf("SQS vs DDB-stream cost ratio = %v, want 160", ratio)
	}
}

func TestGCPQueuePricing(t *testing.T) {
	p := GCPPricing()
	// $40/TB with a 1 kB minimum: a 64 B message bills as 1 kB.
	small := p.QueueMsgCost(64)
	if got := small; math.Abs(got-40*1024/1e12) > 1e-15 {
		t.Fatalf("pubsub small msg = %v", got)
	}
	// Paper: Pub/Sub is 6.7x cheaper than SQS for small messages.
	aws := AWSPricing().QueueMsgCost(64)
	if ratio := aws / small; ratio < 11 || ratio > 13 {
		// $0.5e-6 / $4.096e-8 = 12.2x; the paper's 6.7x counts both
		// publish and subscribe legs. Check the two-leg ratio too.
		t.Fatalf("one-leg ratio = %v", ratio)
	}
	if ratio := aws / (2 * small); math.Abs(ratio-6.1) > 0.2 {
		t.Fatalf("two-leg ratio = %v, want ~6.1 (paper: 6.7x)", ratio)
	}
}

func TestVMCostsMatchPaper(t *testing.T) {
	p := AWSPricing()
	// Section 5.3.4: daily cost $0.5 (t3.small), $1 (t3.medium), $2 (t3.large).
	if got := p.VMDailyCost("t3.small", 1); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("t3.small daily = %v", got)
	}
	if got := p.VMDailyCost("t3.medium", 1); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("t3.medium daily = %v", got)
	}
	if got := p.VMDailyCost("t3.large", 1); math.Abs(got-2.0) > 0.01 {
		t.Fatalf("t3.large daily = %v", got)
	}
	// 20 GB of gp3 per VM: "$4.8 (3 VMs) ... monthly".
	monthly3 := p.BlockStorageDailyCost(60) * 365 / 12
	if math.Abs(monthly3-4.8) > 0.01 {
		t.Fatalf("3-VM monthly EBS = %v", monthly3)
	}
}

func TestFaaSCost(t *testing.T) {
	p := AWSPricing()
	// 512 MB for 1 s = 0.5 GB-s.
	got := p.FaaSCost(512, 1, 1.0, false)
	want := 0.5*0.0000166667 + 0.2e-6
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("faas cost = %v want %v", got, want)
	}
	if arm := p.FaaSCost(512, 1, 1.0, true); arm >= got {
		t.Fatalf("arm %v should be cheaper than x86 %v", arm, got)
	}
	// GCP: dropping from 1 vCPU to 0.33 at 512 MB cuts cost 54-62%
	// (Section 5.3.2).
	g := GCPPricing()
	full := g.FaaSCost(512, 1.0, 1.0, false)
	small := g.FaaSCost(512, 0.33, 1.0, false)
	cut := 1 - small/full
	if cut < 0.54 || cut > 0.68 {
		t.Fatalf("GCP reduced-CPU saving = %.2f, want 0.54-0.68", cut)
	}
}

func TestOpTimeScalesWithContext(t *testing.T) {
	k := sim.NewKernel(1)
	env := NewEnv(k, AWSProfile())
	base := sim.Const(10 * time.Millisecond)
	full := env.OpTime(Ctx{Region: RegionAWSHome, IOScale: 1, CPUScale: 1}, base, sim.Ms(1), 64*1024)
	if full != 74*time.Millisecond {
		t.Fatalf("full-speed op = %v, want 74ms", full)
	}
	slow := env.OpTime(Ctx{Region: RegionAWSHome, IOScale: 0.5, CPUScale: 1}, base, sim.Ms(1), 64*1024)
	if slow != 138*time.Millisecond {
		t.Fatalf("half-I/O op = %v, want 138ms", slow)
	}
	// Zero scales fall back to 1 rather than dividing by zero.
	def := env.OpTime(Ctx{Region: RegionAWSHome}, base, sim.Ms(1), 64*1024)
	if def != full {
		t.Fatalf("default ctx op = %v want %v", def, full)
	}
}

func TestProfilesComplete(t *testing.T) {
	for _, p := range []*Profile{AWSProfile(), GCPProfile()} {
		if p.KVReadBase == nil || p.KVWriteBase == nil || p.ObjReadBase == nil ||
			p.ObjWriteBase == nil || p.QueueSendBase == nil || p.ColdStart == nil ||
			p.WarmOverhead == nil || p.DirectInvoke == nil || p.ClientRTT == nil {
			t.Fatalf("%s profile has nil distributions", p.Name)
		}
		if len(p.QueueDeliver) == 0 {
			t.Fatalf("%s profile has no queues", p.Name)
		}
		if _, ok := p.QueueDeliver[p.OrderedQueueKind()]; !ok {
			t.Fatalf("%s ordered queue kind missing", p.Name)
		}
	}
	if AWSProfile().OrderedQueueKind() != QueueFIFO {
		t.Fatal("aws ordered queue should be SQS FIFO")
	}
	if GCPProfile().OrderedQueueKind() != QueueOrdered {
		t.Fatal("gcp ordered queue should be ordered Pub/Sub")
	}
}
