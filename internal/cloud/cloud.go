// Package cloud models the serverless provider substrate FaaSKeeper runs
// on: regions, latency profiles calibrated against the paper's published
// measurements, a pay-as-you-go cost meter, and the execution context
// threaded through every service call.
//
// Subpackages implement the individual services (kv, object, queue, faas,
// network); this package holds what they share.
package cloud

import (
	"fmt"
	"sort"

	"faaskeeper/internal/sim"
)

// Region identifies a cloud region. The reproduction uses two: the home
// region where the service is deployed and a remote region to measure
// cross-region penalties (Figure 4b).
type Region string

// Default regions mirroring the paper's deployments.
const (
	RegionAWSHome   Region = "us-east-1"
	RegionAWSRemote Region = "eu-central-1"
	RegionGCPHome   Region = "us-central1"
)

// Env bundles the kernel, provider profile, and meter shared by all
// services of one simulated deployment.
type Env struct {
	K       *sim.Kernel
	Profile *Profile
	Meter   *Meter
}

// NewEnv creates an environment on kernel k with the given profile.
func NewEnv(k *sim.Kernel, p *Profile) *Env {
	return &Env{K: k, Profile: p, Meter: NewMeter()}
}

// BillSink receives a copy of every meter charge made under a Ctx carrying
// it, at the instant the charge occurs. Deployments use it to attribute
// exact pay-as-you-go dollars to the request (trace) a service call was
// made on behalf of; a nil sink — the default — costs nothing.
type BillSink interface {
	BillOp(category string, usd float64, n int64)
}

// Ctx describes the caller of a cloud-service operation: where it runs and
// how fast its sandbox can move data. Latency models scale their
// size-dependent terms by 1/IOScale and their base terms by 1/CPUScale, so
// small-memory functions see slower I/O (Figures 9, 13) and reduced-vCPU
// functions see slightly slower processing (Section 5.3.2).
type Ctx struct {
	Region   Region
	IOScale  float64
	CPUScale float64
	// ObjScale additionally scales object-store operations; ARM sandboxes
	// set it below 1 to reproduce the leader-function slowdowns of
	// Section 5.3.2.
	ObjScale float64
	// Bill, when non-nil, receives a copy of every charge made through
	// this context (Env.Charge) for per-request cost attribution.
	Bill BillSink
}

// ClientCtx is the context of a plain client VM in the given region
// (full-speed I/O).
func ClientCtx(region Region) Ctx {
	return Ctx{Region: region, IOScale: 1, CPUScale: 1, ObjScale: 1}
}

// ObjFactor returns the latency multiplier for object-store operations.
func (c Ctx) ObjFactor() float64 {
	if c.ObjScale <= 0 {
		return 1
	}
	return 1 / c.ObjScale
}

func (c Ctx) ioScale() float64 {
	if c.IOScale <= 0 {
		return 1
	}
	return c.IOScale
}

func (c Ctx) cpuScale() float64 {
	if c.CPUScale <= 0 {
		return 1
	}
	return c.CPUScale
}

// OpTime computes the duration of one service operation: a base sample
// scaled by CPU speed plus a size-linear transfer term scaled by I/O speed.
func (e *Env) OpTime(ctx Ctx, base sim.Dist, perKB sim.Time, sizeBytes int) sim.Time {
	t := float64(base.Sample(e.K.Rand())) / c64(ctx.cpuScale())
	t += float64(perKB) * float64(sizeBytes) / 1024 / c64(ctx.ioScale())
	if h := e.K.Fault(); h != nil {
		t += float64(h.OpDelay())
	}
	return sim.Time(t)
}

func c64(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

// Charge records a pay-as-you-go charge against the environment's meter
// and forwards it to the context's attribution sink when one is set. Every
// service call site charges through here so attributed costs are exactly
// the metered costs — never a re-derivation.
func (e *Env) Charge(ctx Ctx, category string, dollars float64, n int64) {
	e.Meter.Charge(category, dollars, n)
	if ctx.Bill != nil {
		ctx.Bill.BillOp(category, dollars, n)
	}
}

// Meter accumulates pay-as-you-go charges and operation counts, keyed by
// category ("s3.write", "lambda.gbs", ...). It is the ground truth for
// every cost figure in the reproduction.
type Meter struct {
	dollars map[string]float64
	counts  map[string]int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{dollars: map[string]float64{}, counts: map[string]int64{}}
}

// Charge adds dollars to a category and bumps its operation count by n.
func (m *Meter) Charge(category string, dollars float64, n int64) {
	m.dollars[category] += dollars
	m.counts[category] += n
}

// Cost returns the accumulated dollars for one category.
func (m *Meter) Cost(category string) float64 { return m.dollars[category] }

// Count returns the accumulated operation count for one category.
func (m *Meter) Count(category string) int64 { return m.counts[category] }

// Total returns the overall accumulated dollars.
func (m *Meter) Total() float64 {
	var t float64
	for _, d := range m.dollars {
		t += d
	}
	return t
}

// Categories returns all categories with charges, sorted.
func (m *Meter) Categories() []string {
	cats := make([]string, 0, len(m.dollars))
	for c := range m.dollars {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	return cats
}

// Reset clears all accumulated charges and counts.
func (m *Meter) Reset() {
	m.dollars = map[string]float64{}
	m.counts = map[string]int64{}
}

// Snapshot returns a copy of the per-category dollars.
func (m *Meter) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(m.dollars))
	for c, d := range m.dollars {
		out[c] = d
	}
	return out
}

// String renders the meter content for reports.
func (m *Meter) String() string {
	s := ""
	for _, c := range m.Categories() {
		s += fmt.Sprintf("%-16s $%.6f (%d ops)\n", c, m.dollars[c], m.counts[c])
	}
	return s
}
