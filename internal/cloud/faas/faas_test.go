package faas

import (
	"errors"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/sim"
)

func newPlatform(seed int64) (*sim.Kernel, *cloud.Env, *Platform) {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	return k, env, NewPlatform(env)
}

func TestDirectInvokeRunsHandler(t *testing.T) {
	k, env, p := newPlatform(1)
	var got []byte
	p.Deploy(Config{Name: "echo", MemoryMB: 512}, func(inv *Invocation) error {
		got = inv.Payload
		inv.K.Sleep(5 * sim.Ms(1))
		return nil
	})
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		if err := p.Invoke(ctx, "echo", []byte("ping")); err != nil {
			t.Errorf("invoke: %v", err)
		}
	})
	k.Run()
	if string(got) != "ping" {
		t.Fatalf("payload = %q", got)
	}
	f := p.Function("echo")
	if f.Invocations() != 1 || f.ColdStarts() != 1 {
		t.Fatalf("inv=%d cold=%d", f.Invocations(), f.ColdStarts())
	}
	if env.Meter.Cost("faas.echo") <= 0 {
		t.Fatal("no faas charge")
	}
}

func TestWarmSandboxReuse(t *testing.T) {
	k, _, p := newPlatform(2)
	p.Deploy(Config{Name: "f", MemoryMB: 512}, func(inv *Invocation) error {
		inv.K.Sleep(sim.Ms(1))
		return nil
	})
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	var first, second sim.Time
	k.Go("client", func() {
		t0 := k.Now()
		p.Invoke(ctx, "f", nil)
		first = k.Now() - t0
		t0 = k.Now()
		p.Invoke(ctx, "f", nil)
		second = k.Now() - t0
	})
	k.Run()
	f := p.Function("f")
	if f.ColdStarts() != 1 {
		t.Fatalf("cold starts = %d, want 1 (second call warm)", f.ColdStarts())
	}
	if second >= first {
		t.Fatalf("warm (%v) not faster than cold (%v)", second, first)
	}
}

func TestSandboxExpiry(t *testing.T) {
	k, _, p := newPlatform(3)
	p.Deploy(Config{Name: "f", MemoryMB: 512}, func(inv *Invocation) error { return nil })
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		p.Invoke(ctx, "f", nil)
		k.Sleep(11 * 60 * sim.Ms(1000)) // beyond the 10-minute idle TTL
		p.Invoke(ctx, "f", nil)
	})
	k.Run()
	if got := p.Function("f").ColdStarts(); got != 2 {
		t.Fatalf("cold starts = %d, want 2", got)
	}
}

func TestQueueTriggerDeliversBatchesInOrder(t *testing.T) {
	k, env, p := newPlatform(4)
	q := queue.New(env, "reqs", cloud.QueueFIFO)
	var seen []string
	p.Deploy(Config{Name: "follower", MemoryMB: 2048}, func(inv *Invocation) error {
		for _, m := range inv.Messages {
			seen = append(seen, string(m.Body))
			inv.K.Sleep(2 * sim.Ms(1))
		}
		return nil
	})
	p.AddQueueTrigger(q, "follower", 1)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		for i := 0; i < 30; i++ {
			q.Send(ctx, "s", []byte{byte('a' + i%26)})
		}
		q.Close()
	})
	k.Run()
	if len(seen) != 30 {
		t.Fatalf("saw %d messages", len(seen))
	}
	for i, s := range seen {
		if s != string(rune('a'+i%26)) {
			t.Fatalf("order broken at %d: %v", i, seen)
		}
	}
}

func TestQueueTriggerRetriesThenDrops(t *testing.T) {
	k, env, p := newPlatform(5)
	q := queue.New(env, "reqs", cloud.QueueFIFO)
	calls := 0
	p.Deploy(Config{Name: "bad", MemoryMB: 512, Retries: 2}, func(inv *Invocation) error {
		calls++
		return errors.New("boom")
	})
	p.AddQueueTrigger(q, "bad", 1)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		q.Send(ctx, "s", []byte("x"))
		k.Sleep(sim.Ms(5000))
		q.Close()
	})
	k.Run()
	if calls != 3 { // 1 try + 2 retries
		t.Fatalf("calls = %d", calls)
	}
	if p.Function("bad").Dropped() != 1 {
		t.Fatalf("dropped = %d", p.Function("bad").Dropped())
	}
}

func TestScheduledTrigger(t *testing.T) {
	k, _, p := newPlatform(6)
	runs := 0
	p.Deploy(Config{Name: "heartbeat", MemoryMB: 128}, func(inv *Invocation) error {
		runs++
		return nil
	})
	p.AddSchedule("heartbeat", 60*sim.Ms(1000))
	k.RunFor(5 * 60 * sim.Ms(1000))
	k.Shutdown()
	if runs != 4 { // fires at 1,2,3,4 min within [0,5min) given ~200ms cold start
		t.Fatalf("runs = %d", runs)
	}
}

func TestStreamTrigger(t *testing.T) {
	k, env, p := newPlatform(7)
	tbl := kv.NewTable(env, "state")
	s := tbl.EnableStream()
	var keys []string
	p.Deploy(Config{Name: "consumer", MemoryMB: 512}, func(inv *Invocation) error {
		for _, m := range inv.Messages {
			keys = append(keys, m.GroupID)
		}
		return nil
	})
	p.AddStreamTrigger(s, "consumer")
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("writer", func() {
		tbl.Put(ctx, "a", kv.Item{"v": kv.N(1)}, nil)
		tbl.Put(ctx, "b", kv.Item{"v": kv.N(2)}, nil)
		k.Sleep(sim.Ms(5000))
		s.Records.Close()
	})
	k.Run()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestInvokeAsyncCompletes(t *testing.T) {
	k, _, p := newPlatform(8)
	p.Deploy(Config{Name: "watch", MemoryMB: 512}, func(inv *Invocation) error {
		inv.K.Sleep(sim.Ms(30))
		return nil
	})
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	var issued, done sim.Time
	k.Go("caller", func() {
		fut := p.InvokeAsync(ctx, "watch", nil)
		issued = k.Now()
		if err := fut.Wait(); err != nil {
			t.Errorf("async err: %v", err)
		}
		done = k.Now()
	})
	k.Run()
	if issued != 0 {
		t.Fatalf("async invoke blocked caller until %v", issued)
	}
	if done <= issued {
		t.Fatal("future resolved immediately")
	}
}

func TestSandboxCtxScaling(t *testing.T) {
	_, _, p := newPlatform(9)
	small := p.Deploy(Config{Name: "small", MemoryMB: 128}, func(*Invocation) error { return nil })
	big := p.Deploy(Config{Name: "big", MemoryMB: 2048}, func(*Invocation) error { return nil })
	arm := p.Deploy(Config{Name: "arm", MemoryMB: 2048, Arch: ARM}, func(*Invocation) error { return nil })
	if small.SandboxCtx().IOScale >= big.SandboxCtx().IOScale {
		t.Fatal("small memory should have lower I/O scale")
	}
	if big.SandboxCtx().IOScale != 1 {
		t.Fatalf("2048MB IOScale = %v", big.SandboxCtx().IOScale)
	}
	if arm.SandboxCtx().ObjScale >= 1 {
		t.Fatal("ARM should penalize object-store transfers")
	}
	if arm.SandboxCtx().CPUScale <= big.SandboxCtx().CPUScale {
		t.Fatal("ARM base ops should be slightly faster")
	}
}

func TestDuplicateDeployPanics(t *testing.T) {
	_, _, p := newPlatform(10)
	p.Deploy(Config{Name: "f"}, func(*Invocation) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Deploy(Config{Name: "f"}, func(*Invocation) error { return nil })
}
