// Package faas implements the simulated function platform: deployable
// functions with memory/architecture configurations, a warm-sandbox pool
// with cold starts, the three trigger classes of Section 2.1 (free
// functions invoked directly, event functions invoked from queues or
// streams, and scheduled functions), retry policies, and GB-second
// billing.
package faas

import (
	"fmt"
	"math"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/sim"
)

// Arch is the sandbox CPU architecture.
type Arch string

// Supported architectures.
const (
	X86 Arch = "x86_64"
	ARM Arch = "arm64"
)

// sandboxIdleTTL is how long an idle sandbox stays warm.
const sandboxIdleTTL = 10 * time.Minute

// Handler is the user code of a function. Returning an error triggers the
// platform retry policy for event invocations.
type Handler func(inv *Invocation) error

// Invocation carries one function execution's inputs.
type Invocation struct {
	K        *sim.Kernel
	Ctx      cloud.Ctx // pre-scaled for the sandbox's memory/arch/vCPU
	Func     *Function
	Messages []queue.Message // queue/stream trigger batch
	Payload  []byte          // direct invocation payload
	Cold     bool
	Attempt  int // 1 for the first try
	// Bill, when set by the handler during execution, receives this
	// invocation's GB-s charge (run bills after the handler returns, so a
	// handler that decodes its batch can attribute the execution cost to
	// the requests it served). Defaults to the context's sink.
	Bill cloud.BillSink
}

// Config describes one deployed function.
type Config struct {
	Name     string
	MemoryMB int
	Arch     Arch
	VCPU     float64 // CPU allocation; 0 = provider default (1 vCPU)
	Retries  int     // extra attempts for failed event invocations
}

// Function is a deployed function with its sandbox pool and counters.
type Function struct {
	p       *Platform
	cfg     Config
	handler Handler

	warmExpiry []sim.Time // idle sandboxes, each with its expiry time

	invocations int64
	coldStarts  int64
	errors      int64
	dropped     int64 // batches abandoned after exhausting retries
	redelivered int64 // duplicate deliveries injected by the fault hook
	billedSec   float64
}

// Platform hosts deployed functions in one region.
type Platform struct {
	env    *cloud.Env
	region cloud.Region
	fns    map[string]*Function
}

// NewPlatform creates a platform in the profile's home region.
func NewPlatform(env *cloud.Env) *Platform {
	return &Platform{env: env, region: env.Profile.Home, fns: map[string]*Function{}}
}

// Deploy registers a function and returns it.
func (p *Platform) Deploy(cfg Config, h Handler) *Function {
	if cfg.MemoryMB <= 0 {
		cfg.MemoryMB = 2048
	}
	if cfg.Arch == "" {
		cfg.Arch = X86
	}
	if _, dup := p.fns[cfg.Name]; dup {
		panic("faas: duplicate function " + cfg.Name)
	}
	f := &Function{p: p, cfg: cfg, handler: h}
	p.fns[cfg.Name] = f
	return f
}

// Function returns a deployed function by name.
func (p *Platform) Function(name string) *Function {
	f, ok := p.fns[name]
	if !ok {
		panic("faas: unknown function " + name)
	}
	return f
}

// Env returns the platform's cloud environment.
func (p *Platform) Env() *cloud.Env { return p.env }

// Config returns the function's configuration.
func (f *Function) Config() Config { return f.cfg }

// Invocations returns the number of completed executions.
func (f *Function) Invocations() int64 { return f.invocations }

// ColdStarts returns how many executions paid a cold start.
func (f *Function) ColdStarts() int64 { return f.coldStarts }

// Errors returns how many executions returned an error.
func (f *Function) Errors() int64 { return f.errors }

// Dropped returns how many event batches were abandoned after retries.
func (f *Function) Dropped() int64 { return f.dropped }

// Redelivered returns how many duplicate batch deliveries the fault hook
// injected (always 0 without a hook).
func (f *Function) Redelivered() int64 { return f.redelivered }

// BilledSeconds returns the accumulated billed duration.
func (f *Function) BilledSeconds() float64 { return f.billedSec }

// SandboxCtx derives the cloud context for this function's sandboxes:
// I/O bandwidth grows with the memory allocation (sub-linearly, as on
// Lambda), the CPU share grows mildly, ARM trades cheaper compute for
// slower object-store transfers, and a reduced vCPU allocation barely
// changes performance (Section 5.3.2).
func (f *Function) SandboxCtx() cloud.Ctx {
	mem := float64(f.cfg.MemoryMB)
	io := math.Sqrt(mem / 2048)
	io = math.Max(0.2, math.Min(io, 1.25))
	cpu := 0.8 + 0.2*math.Min(mem/2048, 1)
	obj := 1.0
	if f.cfg.Arch == ARM {
		cpu *= 1.08
		obj = 0.6
	}
	if f.cfg.VCPU > 0 {
		cpu *= 0.98 + 0.04*f.cfg.VCPU
	}
	return cloud.Ctx{Region: f.p.region, IOScale: io, CPUScale: cpu, ObjScale: obj}
}

// takeSandbox claims a warm sandbox if one is still alive; otherwise the
// invocation is cold.
func (f *Function) takeSandbox() (cold bool) {
	now := f.p.env.K.Now()
	for len(f.warmExpiry) > 0 {
		exp := f.warmExpiry[len(f.warmExpiry)-1]
		f.warmExpiry = f.warmExpiry[:len(f.warmExpiry)-1]
		if exp > now {
			return false
		}
	}
	return true
}

func (f *Function) releaseSandbox() {
	f.warmExpiry = append(f.warmExpiry, f.p.env.K.Now()+sandboxIdleTTL)
}

// run executes the handler once in a sandbox, paying start-up overhead and
// billing the duration. It must be called from a sim process.
func (f *Function) run(inv *Invocation) error {
	env := f.p.env
	cold := f.takeSandbox()
	inv.Cold = cold
	if cold {
		f.coldStarts++
		env.K.Sleep(env.Profile.ColdStart.Sample(env.K.Rand()))
	} else {
		env.K.Sleep(env.Profile.WarmOverhead.Sample(env.K.Rand()))
	}
	start := env.K.Now()
	err := f.handler(inv)
	dur := env.K.Now() - start
	if dur < sim.Ms(1) {
		dur = sim.Ms(1) // 1 ms billing floor
	}
	sec := dur.Seconds()
	f.billedSec += sec
	f.invocations++
	if err != nil {
		f.errors++
	}
	usd := env.Profile.Pricing.FaaSCost(f.cfg.MemoryMB, f.cfg.VCPU, sec, f.cfg.Arch == ARM)
	env.Meter.Charge("faas."+f.cfg.Name, usd, 1)
	if sink := inv.Bill; sink != nil {
		sink.BillOp("faas."+f.cfg.Name, usd, 1)
	} else if inv.Ctx.Bill != nil {
		inv.Ctx.Bill.BillOp("faas."+f.cfg.Name, usd, 1)
	}
	f.releaseSandbox()
	return err
}

// Invoke synchronously executes a free function with an API-call overhead
// (Figure 7a "Direct") and returns the handler error. It must be called
// from a sim process; the caller blocks for the full round trip.
func (p *Platform) Invoke(ctx cloud.Ctx, name string, payload []byte) error {
	f := p.Function(name)
	prof := p.env.Profile
	p.env.K.Sleep(p.env.OpTime(ctx, prof.DirectInvoke, prof.DirectPerKB, len(payload)))
	sctx := f.SandboxCtx()
	sctx.Bill = ctx.Bill // the invocation works on behalf of the caller
	return f.run(&Invocation{K: p.env.K, Ctx: sctx, Func: f, Payload: payload, Attempt: 1})
}

// InvokeAsync fires a free function without waiting for completion,
// returning a future resolved with the handler error. Used for the watch
// function fan-out (Section 4.1).
func (p *Platform) InvokeAsync(ctx cloud.Ctx, name string, payload []byte) *sim.Future[error] {
	f := p.Function(name)
	fut := sim.NewFuture[error](p.env.K)
	prof := p.env.Profile
	p.env.K.Go("invoke-async:"+name, func() {
		p.env.K.Sleep(p.env.OpTime(ctx, prof.DirectInvoke, prof.DirectPerKB, len(payload)))
		sctx := f.SandboxCtx()
		sctx.Bill = ctx.Bill // the invocation works on behalf of the caller
		fut.Complete(f.run(&Invocation{K: p.env.K, Ctx: sctx, Func: f, Payload: payload, Attempt: 1}))
	})
	return fut
}

// AddQueueTrigger starts poller processes that deliver message batches
// from q to the named function. concurrency is the number of parallel
// pollers; FaaSKeeper uses 1 on its FIFO queues so that a single function
// instance processes a session's requests in order (Section 3.1). Failed
// batches are retried up to the function's retry budget, then dropped.
func (p *Platform) AddQueueTrigger(q *queue.Queue, name string, concurrency int) {
	if concurrency <= 0 {
		concurrency = 1
	}
	f := p.Function(name)
	for i := 0; i < concurrency; i++ {
		p.env.K.Go(fmt.Sprintf("trigger:%s:%d", name, i), func() {
			for {
				batch, ok := q.Receive(0)
				if !ok {
					return
				}
				p.deliver(f, batch)
			}
		})
	}
}

// AddStreamTrigger polls a kv change stream (DynamoDB Streams) and invokes
// the named function with record batches, preserving order with a single
// poller per shard.
func (p *Platform) AddStreamTrigger(s *kv.Stream, name string) {
	f := p.Function(name)
	deliver := p.env.Profile.QueueDeliver[cloud.QueueStream]
	if deliver == nil {
		deliver = p.env.Profile.QueueDeliver[p.env.Profile.OrderedQueueKind()]
	}
	p.env.K.Go("stream-trigger:"+name, func() {
		var seq int64
		for {
			recs := s.Records.PopBatch(100, 10*sim.Ms(1))
			if len(recs) == 0 {
				return
			}
			p.env.K.Sleep(deliver.Sample(p.env.K.Rand()))
			msgs := make([]queue.Message, len(recs))
			for i, r := range recs {
				seq++
				body, _ := marshalStreamRecord(r)
				msgs[i] = queue.Message{SeqNo: r.SeqNo, GroupID: r.Key, Body: body, SentAt: p.env.K.Now()}
			}
			p.deliver(f, msgs)
		}
	})
}

// AddSchedule invokes the named function every period, mirroring
// EventBridge scheduled rules (the heartbeat function's trigger).
func (p *Platform) AddSchedule(name string, period sim.Time) {
	f := p.Function(name)
	p.env.K.Go("schedule:"+name, func() {
		for {
			p.env.K.Sleep(period)
			f.run(&Invocation{K: p.env.K, Ctx: f.SandboxCtx(), Func: f, Attempt: 1})
		}
	})
}

func (p *Platform) deliver(f *Function, batch []queue.Message) {
	for attempt := 1; ; attempt++ {
		err := f.run(&Invocation{
			K: p.env.K, Ctx: f.SandboxCtx(), Func: f, Messages: batch, Attempt: attempt,
		})
		if err == nil {
			break
		}
		if attempt > f.cfg.Retries {
			f.dropped++
			return
		}
		// Linear backoff between retries, as SQS redrive behaves.
		p.env.K.Sleep(sim.Time(attempt) * 50 * sim.Ms(1))
	}
	// At-least-once: the queue may deliver an acknowledged batch again.
	// Handlers must already tolerate it (warm-state dedup, head-vs-txid
	// checks), so the duplicate's own error — including a further injected
	// crash — is not retried.
	if h := p.env.K.Fault(); h != nil && h.Redeliver(f.cfg.Name) {
		f.redelivered++
		_ = f.run(&Invocation{
			K: p.env.K, Ctx: f.SandboxCtx(), Func: f, Messages: batch, Attempt: 2,
		})
	}
}

func marshalStreamRecord(r kv.StreamRecord) ([]byte, error) {
	// Stream records only need the key for the experiments that use them;
	// the body is a placeholder of realistic size.
	return []byte(r.Key), nil
}
