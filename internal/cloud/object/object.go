// Package object implements the simulated object store (S3 / Cloud
// Storage) used as FaaSKeeper's user data store: whole-object reads and
// writes with strong consistency, size-linear latency, cross-region
// penalties, and per-operation billing. Partial updates are deliberately
// not offered — their absence forces the leader's read-modify-write cycle
// the paper discusses (Requirement #6).
package object

import (
	"errors"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// ErrNoSuchKey is returned when reading a missing object.
var ErrNoSuchKey = errors.New("object: no such key")

// Bucket is one simulated bucket, pinned to a region. Access from other
// regions pays the cross-region penalty of Figure 4b.
type Bucket struct {
	env     *cloud.Env
	name    string
	region  cloud.Region
	objects map[string][]byte
}

// NewBucket creates an empty bucket in the given region.
func NewBucket(env *cloud.Env, name string, region cloud.Region) *Bucket {
	return &Bucket{env: env, name: name, region: region, objects: map[string][]byte{}}
}

// Name returns the bucket name.
func (b *Bucket) Name() string { return b.name }

// Region returns the bucket's region.
func (b *Bucket) Region() cloud.Region { return b.region }

func (b *Bucket) latency(ctx cloud.Ctx, base sim.Dist, perKB sim.Time, size int) sim.Time {
	p := b.env.Profile
	t := b.env.OpTime(ctx, base, perKB, size)
	if ctx.Region != b.region {
		t += b.env.OpTime(ctx, p.XRegionBase, p.XRegionPerKB, size)
	}
	return sim.Time(float64(t) * ctx.ObjFactor())
}

// Put stores data (a full-object overwrite; there is no offset write).
func (b *Bucket) Put(ctx cloud.Ctx, key string, data []byte) {
	p := b.env.Profile
	b.env.K.Sleep(b.latency(ctx, p.ObjWriteBase, p.ObjWritePerKB, len(data)))
	b.env.Charge(ctx, "obj.write", p.Pricing.ObjectWriteCost(len(data)), 1)
	b.objects[key] = append([]byte(nil), data...)
}

// Get returns a read-only view of the object. Reads are strongly
// consistent: a successful write is immediately visible (Section 2.1).
// Put already copies on the way in and overwrites are whole-object
// replacements (never in-place), so one defensive copy per crossing
// suffices: the returned slice is immutable for its lifetime and callers
// that mutate must copy first.
func (b *Bucket) Get(ctx cloud.Ctx, key string) ([]byte, error) {
	data, ok := b.objects[key]
	p := b.env.Profile
	b.env.K.Sleep(b.latency(ctx, p.ObjReadBase, p.ObjReadPerKB, len(data)))
	b.env.Charge(ctx, "obj.read", p.Pricing.ObjectReadCost(len(data)), 1)
	data, ok = b.objects[key] // racing writer may have landed while we slept
	if !ok {
		return nil, ErrNoSuchKey
	}
	return data, nil
}

// Delete removes the object; deleting a missing key is a no-op, as in S3.
func (b *Bucket) Delete(ctx cloud.Ctx, key string) {
	p := b.env.Profile
	b.env.K.Sleep(b.latency(ctx, p.ObjWriteBase, p.ObjWritePerKB, 0))
	b.env.Charge(ctx, "obj.write", p.Pricing.ObjectWriteCost(0), 1)
	delete(b.objects, key)
}

// Len returns the number of stored objects (test helper, no latency).
func (b *Bucket) Len() int { return len(b.objects) }

// TotalSize returns the stored bytes (for storage-cost accounting).
func (b *Bucket) TotalSize() int {
	n := 0
	for _, d := range b.objects {
		n += len(d)
	}
	return n
}

// SeedPut stores an object without latency or billing, for deployment
// bootstrap before measurement starts.
func (b *Bucket) SeedPut(key string, data []byte) {
	b.objects[key] = append([]byte(nil), data...)
}

// Peek returns the stored object without latency or billing.
func (b *Bucket) Peek(key string) ([]byte, bool) {
	d, ok := b.objects[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}
