package object

import (
	"errors"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

func TestPutGetDelete(t *testing.T) {
	k := sim.NewKernel(1)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		buf := []byte("hello")
		b.Put(ctx, "a", buf)
		buf[0] = 'X' // Put copies on the way in: caller may reuse its buffer
		got, err := b.Get(ctx, "a")
		if err != nil || string(got) != "hello" {
			t.Errorf("get: %q %v", got, err)
		}
		got2, _ := b.Get(ctx, "a")
		if string(got2) != "hello" {
			t.Error("stored object aliased caller buffer")
		}
		b.Delete(ctx, "a")
		if _, err := b.Get(ctx, "a"); !errors.Is(err, ErrNoSuchKey) {
			t.Errorf("after delete: %v", err)
		}
		b.Delete(ctx, "a") // idempotent
	})
	k.Run()
	if env.Meter.Count("obj.write") != 3 || env.Meter.Count("obj.read") != 3 {
		t.Fatalf("meter: %v", env.Meter)
	}
	// Writes are 12.5x more expensive than reads (Figure 4a).
	w := env.Meter.Cost("obj.write") / 3
	r := env.Meter.Cost("obj.read") / 3
	if ratio := w / r; ratio < 12 || ratio > 13 {
		t.Fatalf("write/read cost ratio = %v", ratio)
	}
}

// TestMutationAliasing pins the single-copy contract after removing the
// historical double copy (Put and Get each re-copied the payload). Put is
// the one defensive copy per crossing: the caller's buffer never aliases
// the store. Get returns a read-only view, and because overwrites replace
// the whole object rather than mutating in place, a view obtained before
// an overwrite still reads the old bytes.
func TestMutationAliasing(t *testing.T) {
	k := sim.NewKernel(5)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		buf := []byte("first")
		b.Put(ctx, "k", buf)
		copy(buf, "XXXXX") // caller scribbles over its buffer after Put
		got, err := b.Get(ctx, "k")
		if err != nil || string(got) != "first" {
			t.Errorf("stored object aliased caller buffer: %q %v", got, err)
		}
		view := got
		b.Put(ctx, "k", []byte("second"))
		if string(view) != "first" {
			t.Errorf("overwrite mutated a prior view in place: %q", view)
		}
		got2, err := b.Get(ctx, "k")
		if err != nil || string(got2) != "second" {
			t.Errorf("after overwrite: %q %v", got2, err)
		}
	})
	k.Run()
}

func TestCrossRegionPenalty(t *testing.T) {
	k := sim.NewKernel(2)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	data := make([]byte, 100*1024)
	var local, remote sim.Time
	k.Go("client", func() {
		b.Put(cloud.ClientCtx(cloud.RegionAWSHome), "x", data)
		t0 := k.Now()
		for i := 0; i < 10; i++ {
			b.Get(cloud.ClientCtx(cloud.RegionAWSHome), "x")
		}
		local = k.Now() - t0
		t0 = k.Now()
		for i := 0; i < 10; i++ {
			b.Get(cloud.ClientCtx(cloud.RegionAWSRemote), "x")
		}
		remote = k.Now() - t0
	})
	k.Run()
	if float64(remote) < 3*float64(local) {
		t.Fatalf("cross-region read not penalized: local=%v remote=%v", local, remote)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	k := sim.NewKernel(3)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	var small, large sim.Time
	k.Go("client", func() {
		t0 := k.Now()
		for i := 0; i < 20; i++ {
			b.Put(ctx, "s", make([]byte, 1024))
		}
		small = k.Now() - t0
		t0 = k.Now()
		for i := 0; i < 20; i++ {
			b.Put(ctx, "l", make([]byte, 500*1024))
		}
		large = k.Now() - t0
	})
	k.Run()
	if float64(large) < 2*float64(small) {
		t.Fatalf("large writes too fast: %v vs %v", small, large)
	}
}

func TestIOScaleSlowsFunctions(t *testing.T) {
	// A 512 MB sandbox (IOScale < 1) moves data slower than a 2048 MB one.
	k := sim.NewKernel(4)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	data := make([]byte, 250*1024)
	fast := cloud.Ctx{Region: cloud.RegionAWSHome, IOScale: 1, CPUScale: 1}
	slow := cloud.Ctx{Region: cloud.RegionAWSHome, IOScale: 0.625, CPUScale: 1}
	var tFast, tSlow sim.Time
	k.Go("client", func() {
		t0 := k.Now()
		for i := 0; i < 20; i++ {
			b.Put(fast, "x", data)
		}
		tFast = k.Now() - t0
		t0 = k.Now()
		for i := 0; i < 20; i++ {
			b.Put(slow, "x", data)
		}
		tSlow = k.Now() - t0
	})
	k.Run()
	if tSlow <= tFast {
		t.Fatalf("small sandbox not slower: fast=%v slow=%v", tFast, tSlow)
	}
}

func TestTotalSize(t *testing.T) {
	k := sim.NewKernel(1)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	b := NewBucket(env, "user-data", cloud.RegionAWSHome)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("client", func() {
		b.Put(ctx, "a", make([]byte, 100))
		b.Put(ctx, "b", make([]byte, 50))
		b.Put(ctx, "a", make([]byte, 10)) // overwrite
	})
	k.Run()
	if b.TotalSize() != 60 || b.Len() != 2 {
		t.Fatalf("size=%d len=%d", b.TotalSize(), b.Len())
	}
	if _, ok := b.Peek("a"); !ok {
		t.Fatal("peek failed")
	}
}
