// Package watchfanout implements the hierarchical watch fan-out tier:
// instead of the leader enumerating every watching session inside the
// write hot path (O(watchers) per fired watch), the leader publishes ONE
// notification record per (path, txid) to each regional fan-out node and
// the node owns the per-session delivery. The node keeps the watch
// registrations (one-shot, ZooKeeper 3.6-style persistent, and persistent
// recursive), applies per-watch debounce/coalesce policies (latest-wins
// under a burst; opt-in confd-style interval batching), and reports epoch
// membership back to the leader tier so the client-side Z4 read gate —
// "a session must observe its own watch notification before a read that
// reflects the triggering write" — keeps working: a watch id stays on the
// shard epoch list from the moment its first undelivered firing is
// published until its last in-flight firing is delivered or coalesced
// into a newer one.
//
// Delivery is two-phase to preserve notification-before-readability:
//
//	Publish(change)  — before the user-store write lands. The node
//	                   matches registrations, parks the resulting
//	                   firings under the txid, and returns the watch
//	                   ids that just became in-flight so the leader can
//	                   stamp them onto the shard epoch list.
//	Release(txid)    — after the write is distributed. The parked
//	                   firings become deliverable: immediate-policy
//	                   firings go straight to the per-watch delivery
//	                   worker, coalescing ones enter a debounce slot.
//
// A firing suppressed by latest-wins coalescing is only ever replaced by
// a firing with a strictly larger txid, so the invariant "suppressed
// txid <= delivered txid" holds by construction (no lost terminal
// events). Cross-shard txids are not totally ordered; an out-of-order
// firing is delivered separately rather than clobbering a newer one.
//
// Like the regional cache, the node runs on the cooperative virtual-time
// kernel: exactly one goroutine is ever runnable, so the maps below need
// no locks.
package watchfanout

import (
	"strings"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
)

// Kind is the watch registration kind. The numeric values deliberately
// mirror core.WatchType so conversion is a cast.
type Kind uint8

const (
	KindData                Kind = 1 // one-shot getData watch
	KindExists              Kind = 2 // one-shot exists watch
	KindChild               Kind = 3 // one-shot getChildren watch
	KindPersistent          Kind = 4 // persistent: data + child events, no re-arm
	KindPersistentRecursive Kind = 5 // persistent on a whole subtree
)

// OneShot reports whether the kind is consumed by its first fire.
func (k Kind) OneShot() bool { return k <= KindChild }

// Event mirrors core.EventType (same numeric values).
type Event uint8

const (
	EventDataChanged     Event = 1
	EventCreated         Event = 2
	EventDeleted         Event = 3
	EventChildrenChanged Event = 4
)

// Policy selects how the node paces deliveries for one registration.
type Policy uint8

const (
	// PolicyImmediate delivers every firing as soon as it is released —
	// the one-shot default and the strongest ordering (one delivery per
	// triggering write).
	PolicyImmediate Policy = 0
	// PolicyCoalesce holds a released firing for the node's debounce
	// window; a newer firing for the same watch replaces it (latest
	// wins). The persistent-watch default: a config burst costs one
	// delivery.
	PolicyCoalesce Policy = 1
	// PolicyInterval is the confd pattern: deliveries for the watch are
	// batched on the registration's own interval regardless of burst
	// shape.
	PolicyInterval Policy = 2
)

// Op is the znode mutation class carried by a notification record.
type Op uint8

const (
	OpSet    Op = 1
	OpCreate Op = 2
	OpDelete Op = 3
)

// Change is the leader-side publication: one record per (path, txid),
// independent of how many sessions watch the path.
type Change struct {
	Op     Op
	Path   string
	Parent string // parent path, for child-watch matching
	Txid   int64
	Shard  int
}

// Registration subscribes one session to a path (or subtree, for
// KindPersistentRecursive). The watch id is computed by the caller
// (core.WatchID) so client and node agree without the node hashing.
type Registration struct {
	Session  string
	Path     string
	Kind     Kind
	Policy   Policy
	Interval sim.Time // PolicyInterval batching window
	WID      int64
}

// DeliverFunc pushes one notification to one session. Installed by the
// deployment (it closes over Deployment.notify).
type DeliverFunc func(session string, wid int64, event Event, path string, txid int64)

// EpochExitFunc removes a watch id from the shard's epoch list once its
// last in-flight firing has been delivered or coalesced away. Installed
// by the deployment (it closes over the system store for this region).
type EpochExitFunc func(shard int, wid int64)

// Stats is a point-in-time snapshot of node counters.
type Stats struct {
	Sessions    int64 // live real registrations across all groups
	Synthetic   int64 // synthetic (bulk-registered) subscribers
	Groups      int64
	Publishes   int64 // leader notification records received
	Matches     int64 // group fires across all publishes
	Releases    int64 // txids released with at least one parked firing
	Batches     int64 // delivery batches pushed (one per flushed firing)
	Deliveries  int64 // per-session deliveries, real + synthetic
	Suppressed  int64 // firings coalesced away by latest-wins
	Kicks       int64 // client gate kicks
	EpochEnters int64 // watch ids stamped onto a shard epoch list
	EpochExits  int64 // watch ids retired from a shard epoch list
	Losses      int64 // node wipes (fault injection)
}

// Publish exports the snapshot as fanout-component gauges.
func (s Stats) Publish(reg *obs.Registry, region string) {
	g := func(name string, v int64) {
		reg.SetGauge(obs.Key{Component: "fanout", Name: name, Region: region}, v)
	}
	g("sessions", s.Sessions)
	g("synthetic", s.Synthetic)
	g("groups", s.Groups)
	g("publishes", s.Publishes)
	g("matches", s.Matches)
	g("releases", s.Releases)
	g("batches", s.Batches)
	g("deliveries", s.Deliveries)
	g("suppressed", s.Suppressed)
	g("kicks", s.Kicks)
	g("epoch_enters", s.EpochEnters)
	g("epoch_exits", s.EpochExits)
}

type groupKey struct {
	path string
	kind Kind
}

// sub is one real session's registration options within a group.
type sub struct {
	policy   Policy
	interval sim.Time
}

// synthBlock models a population of identical subscribers without
// materializing sessions — the 1M-watcher experiments register counts,
// and the node bills and counts their deliveries without sending them.
type synthBlock struct {
	policy   Policy
	interval sim.Time
	count    int
}

type group struct {
	wid   int64
	kind  Kind
	path  string
	subs  map[string]sub
	synth []synthBlock
}

// firing is one (watch group, policy class) slice of a published change:
// the group's subscribers that share a delivery policy, parked under the
// txid until Release.
type firing struct {
	wid      int64
	event    Event
	path     string // concrete changed path (differs from the group path for recursive)
	txid     int64
	shard    int
	policy   Policy
	interval sim.Time
	sessions []string
	synth    int
	urgent   bool // a gate kick asked for this txid: skip debounce
}

type inflightKey struct {
	wid   int64
	shard int
}

type slotKey struct {
	wid      int64
	policy   Policy
	interval sim.Time
}

// slot is one open coalescing window: latest-wins buffer plus a kick
// future that forces an early flush.
type slot struct {
	latest *firing
	kick   *sim.Future[struct{}]
}

// Node is one region's fan-out tier, colocated with the regional cache
// node (same provisioned VM class, so per-operation traffic is free and
// the VM accrues by the hour when cost accounting is on).
type Node struct {
	env    *cloud.Env
	region cloud.Region
	ctx    cloud.Ctx // node's own identity for charges from delivery workers

	deliver   DeliverFunc
	epochExit EpochExitFunc
	debounce  sim.Time // PolicyCoalesce window

	groups   map[groupKey]*group
	recRoots map[string]struct{} // subtree roots with a recursive group
	pending  map[int64][]*firing // published, awaiting Release, keyed by txid
	inflight map[inflightKey]int // undelivered firing refcount per (wid, shard)
	slots    map[slotKey]*slot
	queues   map[int64]*sim.Queue[*firing] // per-wid serialized delivery
	water    map[int64]int64               // max delivered txid per wid

	vmAccrual    bool
	vmLastBilled sim.Time
	stats        Stats
}

// New creates a fan-out node for one region. deliver and epochExit are
// installed by the deployment; debounce is the PolicyCoalesce window.
func New(env *cloud.Env, region cloud.Region, deliver DeliverFunc, epochExit EpochExitFunc, debounce sim.Time) *Node {
	return &Node{
		env:       env,
		region:    region,
		ctx:       cloud.ClientCtx(region),
		deliver:   deliver,
		epochExit: epochExit,
		debounce:  debounce,
		groups:    map[groupKey]*group{},
		recRoots:  map[string]struct{}{},
		pending:   map[int64][]*firing{},
		inflight:  map[inflightKey]int{},
		slots:     map[slotKey]*slot{},
		queues:    map[int64]*sim.Queue[*firing]{},
		water:     map[int64]int64{},
	}
}

// EnableVMAccrual starts amortizing the node VM's hourly price over the
// operations it serves (mirrors cache.Regional).
func (n *Node) EnableVMAccrual() {
	n.vmAccrual = true
	n.vmLastBilled = n.env.K.Now()
}

// SetBillCtx replaces the context delivery workers charge under (the
// deployment passes its system-billing context so node-side costs land in
// the ledger like every other system component).
func (n *Node) SetBillCtx(ctx cloud.Ctx) { n.ctx = ctx }

func (n *Node) chargeOp(ctx cloud.Ctx, category string, ops int64) {
	n.env.Charge(ctx, category, 0, ops)
	if !n.vmAccrual {
		return
	}
	now := n.env.K.Now()
	if elapsed := now - n.vmLastBilled; elapsed > 0 {
		n.vmLastBilled = now
		usd := n.env.Profile.Pricing.CacheVMHourly * elapsed.Hours()
		n.env.Charge(ctx, "fanout.vm", usd, 1)
	}
}

func (n *Node) lat(ctx cloud.Ctx, base sim.Dist, perKB sim.Time, size int) {
	n.env.K.Sleep(n.env.OpTime(ctx, base, perKB, size))
}

// Register subscribes a session. Costs one small memory write on the
// node (the registration record).
func (n *Node) Register(ctx cloud.Ctx, r Registration) {
	p := n.env.Profile
	n.lat(ctx, p.MemWriteBase, p.MemWritePerKB, regSize(RegistrationRecord{
		Session: r.Session, Path: r.Path, Kind: byte(r.Kind),
		Policy: byte(r.Policy), IntervalUS: int64(r.Interval), WID: r.WID,
	}))
	n.chargeOp(ctx, "fanout.register", 1)
	g := n.groupFor(r.Path, r.Kind, r.WID)
	if _, dup := g.subs[r.Session]; !dup {
		n.stats.Sessions++
	}
	g.subs[r.Session] = sub{policy: r.Policy, interval: r.Interval}
}

// BulkRegister adds count synthetic subscribers to a group — free of
// latency and charges, it seeds the large-scale experiments.
func (n *Node) BulkRegister(path string, kind Kind, policy Policy, interval sim.Time, wid int64, count int) {
	g := n.groupFor(path, kind, wid)
	g.synth = append(g.synth, synthBlock{policy: policy, interval: interval, count: count})
	n.stats.Synthetic += int64(count)
}

func (n *Node) groupFor(path string, kind Kind, wid int64) *group {
	k := groupKey{path: path, kind: kind}
	g, ok := n.groups[k]
	if !ok {
		g = &group{wid: wid, kind: kind, path: path, subs: map[string]sub{}}
		n.groups[k] = g
		n.stats.Groups++
		if kind == KindPersistentRecursive {
			n.recRoots[path] = struct{}{}
		}
	}
	return g
}

// Publish receives the leader's one-record notification for a committed
// change, before the user-store write lands. It parks the matched
// firings under the txid and returns the watch ids that transitioned to
// in-flight on this shard — the leader appends exactly those to the
// shard epoch list so the client Z4 gate can see them in value stamps.
func (n *Node) Publish(ctx cloud.Ctx, ch Change) []int64 {
	p := n.env.Profile
	n.lat(ctx, p.MemWriteBase, p.MemWritePerKB, notifSize(NotificationRecord{
		Path: ch.Path, Parent: ch.Parent, Op: byte(ch.Op), Txid: ch.Txid, Shard: int64(ch.Shard),
	}))
	n.chargeOp(ctx, "fanout.publish", 1)
	n.stats.Publishes++

	var fs []*firing
	for _, m := range n.match(ch) {
		fs = append(fs, n.fireGroup(m.g, m.event, ch)...)
	}
	if len(fs) == 0 {
		return nil
	}
	n.pending[ch.Txid] = append(n.pending[ch.Txid], fs...)
	var newWids []int64
	for _, f := range fs {
		k := inflightKey{wid: f.wid, shard: f.shard}
		if n.inflight[k] == 0 {
			newWids = append(newWids, f.wid)
			n.stats.EpochEnters++
		}
		n.inflight[k]++
	}
	return newWids
}

type matched struct {
	g     *group
	event Event
}

// match mirrors the leader's legacy queryWatches pairing of mutation
// class to watch attribute, extended with the persistent kinds:
//
//	set    -> data@path, persistent@path (DataChanged), recursive
//	create -> exists@path (Created), child@parent (ChildrenChanged),
//	          persistent@path (Created), persistent@parent
//	          (ChildrenChanged), recursive (Created)
//	delete -> data+exists@path (Deleted), child@parent, persistent@path
//	          (Deleted), persistent@parent (ChildrenChanged), recursive
//
// Recursive groups match every registration root that is an ancestor of
// (or equal to) the changed path and deliver the concrete event at the
// concrete path; like ZooKeeper's PERSISTENT_RECURSIVE mode they do not
// deliver ChildrenChanged.
func (n *Node) match(ch Change) []matched {
	var out []matched
	add := func(path string, kind Kind, ev Event) {
		if g, ok := n.groups[groupKey{path: path, kind: kind}]; ok {
			out = append(out, matched{g: g, event: ev})
		}
	}
	switch ch.Op {
	case OpSet:
		add(ch.Path, KindData, EventDataChanged)
		add(ch.Path, KindPersistent, EventDataChanged)
	case OpCreate:
		add(ch.Path, KindExists, EventCreated)
		add(ch.Parent, KindChild, EventChildrenChanged)
		add(ch.Path, KindPersistent, EventCreated)
		add(ch.Parent, KindPersistent, EventChildrenChanged)
	case OpDelete:
		add(ch.Path, KindData, EventDeleted)
		add(ch.Path, KindExists, EventDeleted)
		add(ch.Parent, KindChild, EventChildrenChanged)
		add(ch.Path, KindPersistent, EventDeleted)
		add(ch.Parent, KindPersistent, EventChildrenChanged)
	}
	if len(n.recRoots) > 0 {
		ev := EventDataChanged
		switch ch.Op {
		case OpCreate:
			ev = EventCreated
		case OpDelete:
			ev = EventDeleted
		}
		for root := range ancestors(ch.Path) {
			if _, ok := n.recRoots[root]; ok {
				add(root, KindPersistentRecursive, ev)
			}
		}
	}
	return out
}

// ancestors yields path and every proper ancestor down to "/".
func ancestors(path string) map[string]struct{} {
	out := map[string]struct{}{path: {}}
	for p := path; p != "/" && p != ""; {
		i := strings.LastIndexByte(p, '/')
		if i <= 0 {
			out["/"] = struct{}{}
			break
		}
		p = p[:i]
		out[p] = struct{}{}
	}
	return out
}

// fireGroup slices one matched group into per-policy firings. One-shot
// groups are claimed here (publish time), exactly like the legacy
// leader's conditional watch-item removal: later writes in the same
// batch do not fire them again.
func (n *Node) fireGroup(g *group, ev Event, ch Change) []*firing {
	n.stats.Matches++
	byClass := map[slotKey]*firing{}
	classOf := func(policy Policy, interval sim.Time) *firing {
		k := slotKey{wid: g.wid, policy: policy, interval: interval}
		f, ok := byClass[k]
		if !ok {
			f = &firing{
				wid: g.wid, event: ev, path: ch.Path, txid: ch.Txid,
				shard: ch.Shard, policy: policy, interval: interval,
			}
			byClass[k] = f
		}
		return f
	}
	for s, o := range g.subs {
		f := classOf(o.policy, o.interval)
		f.sessions = append(f.sessions, s)
	}
	for _, b := range g.synth {
		classOf(b.policy, b.interval).synth += b.count
	}
	if g.kind.OneShot() {
		delete(n.groups, groupKey{path: g.path, kind: g.kind})
		n.stats.Groups--
		n.stats.Sessions -= int64(len(g.subs))
		for _, b := range g.synth {
			n.stats.Synthetic -= int64(b.count)
		}
	}
	out := make([]*firing, 0, len(byClass))
	for _, f := range byClass {
		out = append(out, f)
	}
	return out
}

// Release makes the firings parked under txid deliverable — the leader
// calls it once the change is distributed to the user stores, so no
// session can be notified of a write it cannot yet read. Free when the
// publish matched nothing.
func (n *Node) Release(ctx cloud.Ctx, txid int64) {
	fs := n.pending[txid]
	if len(fs) == 0 {
		return
	}
	delete(n.pending, txid)
	p := n.env.Profile
	n.lat(ctx, p.MemWriteBase, 0, 0)
	n.chargeOp(ctx, "fanout.release", 1)
	n.stats.Releases++
	for _, f := range fs {
		n.route(f)
	}
}

func (n *Node) route(f *firing) {
	if f.policy == PolicyImmediate || f.urgent {
		n.enqueue(f)
		return
	}
	k := slotKey{wid: f.wid, policy: f.policy, interval: f.interval}
	if s, ok := n.slots[k]; ok {
		if f.txid > s.latest.txid {
			n.suppress(s.latest)
			s.latest = f
		} else {
			// Cross-shard txids are not totally ordered: an
			// out-of-order firing may not clobber a newer one, and
			// coalescing it away would break "suppressed <=
			// delivered". Deliver it on its own.
			n.enqueue(f)
		}
		return
	}
	window := n.debounce
	if f.policy == PolicyInterval {
		window = f.interval
	}
	s := &slot{latest: f, kick: sim.NewFuture[struct{}](n.env.K)}
	n.slots[k] = s
	n.env.K.Go("fanout-coalesce", func() {
		s.kick.WaitTimeout(window)
		// A Lose() may have wiped the slot table while we slept; only
		// flush if this slot is still the live one.
		if n.slots[k] == s {
			delete(n.slots, k)
			n.enqueue(s.latest)
		}
	})
}

// suppress retires a firing coalesced away by a strictly newer one. Its
// epoch refcount is handed to the covering firing's eventual delivery:
// the wid stays on the epoch list until that delivery, so the Z4 gate
// still blocks reads of the suppressed write until the covering
// notification (with a larger txid) arrives.
func (n *Node) suppress(f *firing) {
	n.stats.Suppressed++
	n.finish(f)
}

// enqueue hands a firing to the watch's serialized delivery worker.
// One worker per wid keeps per-(session, watch) delivery in release
// order — goroutine-per-session would allow txid inversions.
func (n *Node) enqueue(f *firing) {
	q, ok := n.queues[f.wid]
	if !ok {
		q = sim.NewQueue[*firing](n.env.K)
		n.queues[f.wid] = q
		n.env.K.Go("fanout-deliver", func() {
			for {
				f, ok := q.Pop()
				if !ok {
					return
				}
				n.deliverFiring(f)
			}
		})
	}
	q.Push(f)
}

func (n *Node) deliverFiring(f *firing) {
	total := int64(len(f.sessions) + f.synth)
	n.stats.Batches++
	n.stats.Deliveries += total
	n.chargeOp(n.ctx, "fanout.push", total)
	// Sessions are pushed in parallel from the node; one client RTT
	// covers the batch (synthetic subscribers are billed above but not
	// sent anywhere).
	n.env.K.Sleep(n.env.Profile.ClientRTT.Sample(n.env.K.Rand()))
	for _, s := range f.sessions {
		n.deliver(s, f.wid, f.event, f.path, f.txid)
	}
	if f.txid > n.water[f.wid] {
		n.water[f.wid] = f.txid
	}
	n.finish(f)
}

// finish drops one in-flight refcount for (wid, shard); on the last one
// the wid leaves the shard epoch list.
func (n *Node) finish(f *firing) {
	k := inflightKey{wid: f.wid, shard: f.shard}
	if c := n.inflight[k]; c > 1 {
		n.inflight[k] = c - 1
		return
	}
	delete(n.inflight, k)
	n.stats.EpochExits++
	if n.epochExit != nil {
		n.epochExit(f.shard, f.wid)
	}
}

// Kick is the client Z4 gate's escape hatch: a reader blocked on wid
// asks the node to flush any open coalescing window for it and to mark
// still-parked (unreleased) firings urgent, then re-checks the returned
// delivery watermark. Costs one node memory read.
func (n *Node) Kick(ctx cloud.Ctx, wid int64) int64 {
	p := n.env.Profile
	n.lat(ctx, p.MemReadBase, 0, 0)
	n.chargeOp(ctx, "fanout.kick", 1)
	n.stats.Kicks++
	for k, s := range n.slots {
		if k.wid == wid {
			s.kick.TryComplete(struct{}{})
		}
	}
	for _, fs := range n.pending {
		for _, f := range fs {
			if f.wid == wid {
				f.urgent = true
			}
		}
	}
	return n.water[wid]
}

// Watermark returns the max delivered txid for wid without cost (tests).
func (n *Node) Watermark(wid int64) int64 { return n.water[wid] }

// Lose wipes the node (fault injection): registrations, parked firings,
// and open slots are gone; sessions must re-arm, exactly like a regional
// cache loss. Epoch entries for in-flight firings are flushed so client
// read gates do not hang on notifications that can never arrive.
func (n *Node) Lose() {
	n.stats.Losses++
	for k := range n.inflight {
		n.stats.EpochExits++
		if n.epochExit != nil {
			n.epochExit(k.shard, k.wid)
		}
	}
	n.groups = map[groupKey]*group{}
	n.recRoots = map[string]struct{}{}
	n.pending = map[int64][]*firing{}
	n.inflight = map[inflightKey]int{}
	n.slots = map[slotKey]*slot{}
	n.stats.Sessions = 0
	n.stats.Synthetic = 0
	n.stats.Groups = 0
}

// Stats returns a snapshot of the node counters.
func (n *Node) Stats() Stats { return n.stats }

// Region returns the node's region.
func (n *Node) Region() cloud.Region { return n.region }
