package watchfanout

// Wire records for the fan-out tier (package wire, binary only — these
// records did not exist on the paper-faithful path, so there is no gob
// legacy to preserve). In the simulator they travel as in-memory values
// and only their size feeds the latency model; the sizes below are the
// exact encoded lengths, computed arithmetically so the hot path never
// encodes. Encode/Decode realize the format for tests, fuzzing, and any
// future off-box transport.

import (
	"fmt"

	"faaskeeper/internal/wire"
)

const (
	tagNotification byte = 0xE7
	tagRegistration byte = 0xE8
)

// NotificationRecord is the leader's one-per-(path, txid) publication to
// a regional fan-out node.
type NotificationRecord struct {
	Path   string
	Parent string
	Op     byte
	Txid   int64
	Shard  int64
}

// RegistrationRecord is a session's durable watch registration as stored
// on the node (and in the per-session watch set).
type RegistrationRecord struct {
	Session    string
	Path       string
	Kind       byte
	Policy     byte
	IntervalUS int64 // PolicyInterval window in virtual-time units
	WID        int64
}

// notifSize is len(EncodeNotification(r)), computed without encoding.
func notifSize(r NotificationRecord) int {
	return 1 + wire.UvarintLen(uint64(len(r.Path))) + len(r.Path) +
		wire.UvarintLen(uint64(len(r.Parent))) + len(r.Parent) +
		1 +
		wire.VarintLen(r.Txid) +
		wire.VarintLen(r.Shard)
}

// regSize is len(EncodeRegistration(r)), computed without encoding.
func regSize(r RegistrationRecord) int {
	return 1 + wire.UvarintLen(uint64(len(r.Session))) + len(r.Session) +
		wire.UvarintLen(uint64(len(r.Path))) + len(r.Path) +
		2 +
		wire.VarintLen(r.IntervalUS) +
		wire.VarintLen(r.WID)
}

// EncodeNotification serializes one record in the binary wire format.
func EncodeNotification(r NotificationRecord) []byte {
	e := wire.NewEncoder()
	e.Byte(tagNotification)
	e.String(r.Path)
	e.String(r.Parent)
	e.Byte(r.Op)
	e.Varint(r.Txid)
	e.Varint(r.Shard)
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// DecodeNotification parses a record produced by EncodeNotification.
func DecodeNotification(b []byte) (NotificationRecord, error) {
	d := wire.NewDecoder(b)
	if d.Byte() != tagNotification {
		return NotificationRecord{}, fmt.Errorf("%w: notification tag", wire.ErrCorrupt)
	}
	r := NotificationRecord{
		Path:   d.String(),
		Parent: d.String(),
		Op:     d.Byte(),
		Txid:   d.Varint(),
		Shard:  d.Varint(),
	}
	return r, d.Err()
}

// EncodeRegistration serializes one record in the binary wire format.
func EncodeRegistration(r RegistrationRecord) []byte {
	e := wire.NewEncoder()
	e.Byte(tagRegistration)
	e.String(r.Session)
	e.String(r.Path)
	e.Byte(r.Kind)
	e.Byte(r.Policy)
	e.Varint(r.IntervalUS)
	e.Varint(r.WID)
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// DecodeRegistration parses a record produced by EncodeRegistration.
func DecodeRegistration(b []byte) (RegistrationRecord, error) {
	d := wire.NewDecoder(b)
	if d.Byte() != tagRegistration {
		return RegistrationRecord{}, fmt.Errorf("%w: registration tag", wire.ErrCorrupt)
	}
	r := RegistrationRecord{
		Session:    d.String(),
		Path:       d.String(),
		Kind:       d.Byte(),
		Policy:     d.Byte(),
		IntervalUS: d.Varint(),
		WID:        d.Varint(),
	}
	return r, d.Err()
}
