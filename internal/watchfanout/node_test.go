package watchfanout

import (
	"fmt"
	"sort"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// delivery is one callback invocation recorded by the test harness.
type delivery struct {
	session string
	wid     int64
	event   Event
	path    string
	txid    int64
}

type harness struct {
	k     *sim.Kernel
	ctx   cloud.Ctx
	n     *Node
	got   []delivery
	exits []inflightKey
}

// withNode runs fn as a sim process against a fresh node recording every
// delivery and epoch exit.
func withNode(t *testing.T, debounce sim.Time, fn func(h *harness)) {
	t.Helper()
	k := sim.NewKernel(7)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	h := &harness{k: k, ctx: cloud.ClientCtx(cloud.RegionAWSHome)}
	h.n = New(env, cloud.RegionAWSHome,
		func(session string, wid int64, ev Event, path string, txid int64) {
			h.got = append(h.got, delivery{session, wid, ev, path, txid})
		},
		func(shard int, wid int64) {
			h.exits = append(h.exits, inflightKey{wid: wid, shard: shard})
		},
		debounce)
	k.Go("test", func() { fn(h) })
	k.Run()
	k.Shutdown()
}

func (h *harness) settle() { h.k.Sleep(sim.Ms(5000)) }

func (h *harness) txids(session string) []int64 {
	var out []int64
	for _, d := range h.got {
		if d.session == session {
			out = append(out, d.txid)
		}
	}
	return out
}

func TestOneShotFiresOnceAndExitsEpoch(t *testing.T) {
	withNode(t, sim.Ms(10), func(h *harness) {
		h.n.Register(h.ctx, Registration{Session: "s1", Path: "/a", Kind: KindData, WID: 41})
		wids := h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/a", Parent: "/", Txid: 100, Shard: 0})
		if len(wids) != 1 || wids[0] != 41 {
			t.Fatalf("publish wids = %v, want [41]", wids)
		}
		h.n.Release(h.ctx, 100)
		h.settle()
		if len(h.got) != 1 || h.got[0].txid != 100 || h.got[0].event != EventDataChanged {
			t.Fatalf("deliveries = %+v", h.got)
		}
		// One-shot: the second write must not fire.
		if w := h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/a", Parent: "/", Txid: 101, Shard: 0}); w != nil {
			t.Fatalf("second publish fired a consumed one-shot: %v", w)
		}
		if len(h.exits) != 1 || h.exits[0].wid != 41 {
			t.Fatalf("epoch exits = %v", h.exits)
		}
	})
}

func TestDeliveryWaitsForRelease(t *testing.T) {
	withNode(t, 0, func(h *harness) {
		h.n.Register(h.ctx, Registration{Session: "s1", Path: "/a", Kind: KindData, WID: 41})
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/a", Parent: "/", Txid: 100, Shard: 0})
		h.k.Sleep(sim.Ms(1000))
		if len(h.got) != 0 {
			t.Fatalf("delivered before release: %+v", h.got)
		}
		h.n.Release(h.ctx, 100)
		h.settle()
		if len(h.got) != 1 {
			t.Fatalf("deliveries after release = %+v", h.got)
		}
	})
}

func TestPersistentWatchSurvivesFires(t *testing.T) {
	withNode(t, 0, func(h *harness) {
		wid := int64(77)
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyImmediate, WID: wid,
		})
		for txid := int64(1); txid <= 3; txid++ {
			h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: txid, Shard: 0})
			h.n.Release(h.ctx, txid)
		}
		h.settle()
		got := h.txids("s1")
		want := []int64{1, 2, 3}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("persistent deliveries = %v, want %v", got, want)
		}
		if h.n.Watermark(wid) != 3 {
			t.Fatalf("watermark = %d", h.n.Watermark(wid))
		}
	})
}

func TestPersistentSeesChildEventsAtParent(t *testing.T) {
	withNode(t, 0, func(h *harness) {
		h.n.Register(h.ctx, Registration{Session: "s1", Path: "/dir", Kind: KindPersistent, WID: 9})
		h.n.Publish(h.ctx, Change{Op: OpCreate, Path: "/dir/x", Parent: "/dir", Txid: 5, Shard: 0})
		h.n.Release(h.ctx, 5)
		h.settle()
		if len(h.got) != 1 || h.got[0].event != EventChildrenChanged || h.got[0].path != "/dir/x" {
			t.Fatalf("deliveries = %+v", h.got)
		}
	})
}

func TestRecursiveWatchMatchesSubtree(t *testing.T) {
	withNode(t, 0, func(h *harness) {
		h.n.Register(h.ctx, Registration{Session: "s1", Path: "/app", Kind: KindPersistentRecursive, WID: 8})
		h.n.Publish(h.ctx, Change{Op: OpCreate, Path: "/app/a/b", Parent: "/app/a", Txid: 1, Shard: 0})
		h.n.Release(h.ctx, 1)
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/app/a/b", Parent: "/app/a", Txid: 2, Shard: 0})
		h.n.Release(h.ctx, 2)
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/other", Parent: "/", Txid: 3, Shard: 0})
		h.n.Release(h.ctx, 3)
		h.settle()
		if len(h.got) != 2 {
			t.Fatalf("deliveries = %+v", h.got)
		}
		if h.got[0].event != EventCreated || h.got[1].event != EventDataChanged {
			t.Fatalf("events = %+v", h.got)
		}
		for _, d := range h.got {
			if d.path != "/app/a/b" {
				t.Fatalf("recursive delivery must carry the concrete path, got %q", d.path)
			}
		}
	})
}

func TestCoalesceLatestWinsUnderBurst(t *testing.T) {
	withNode(t, sim.Ms(50), func(h *harness) {
		wid := int64(3)
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyCoalesce, WID: wid,
		})
		// A burst of 10 writes inside one debounce window.
		for txid := int64(1); txid <= 10; txid++ {
			h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: txid, Shard: 0})
			h.n.Release(h.ctx, txid)
			h.k.Sleep(sim.Ms(1))
		}
		h.settle()
		got := h.txids("s1")
		if len(got) == 0 || got[len(got)-1] != 10 {
			t.Fatalf("burst deliveries = %v, want terminal txid 10", got)
		}
		if len(got) > 3 {
			t.Fatalf("coalescing too weak: %d deliveries for a 10-write burst", len(got))
		}
		st := h.n.Stats()
		if st.Suppressed == 0 {
			t.Fatal("no firings suppressed")
		}
		// Suppressed + delivered batches must cover all 10 firings.
		if st.Suppressed+st.Batches != 10 {
			t.Fatalf("suppressed %d + batches %d != 10", st.Suppressed, st.Batches)
		}
		// Every suppressed firing must be covered by a delivered one with
		// a larger txid: terminal watermark is the max write.
		if h.n.Watermark(wid) != 10 {
			t.Fatalf("watermark = %d, want 10", h.n.Watermark(wid))
		}
		if len(h.exits) == 0 {
			t.Fatal("epoch never exited after burst drained")
		}
	})
}

func TestIntervalPolicyBatchesOnItsOwnWindow(t *testing.T) {
	withNode(t, sim.Ms(1), func(h *harness) {
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyInterval, Interval: sim.Ms(200), WID: 4,
		})
		for txid := int64(1); txid <= 5; txid++ {
			h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: txid, Shard: 0})
			h.n.Release(h.ctx, txid)
			h.k.Sleep(sim.Ms(20))
		}
		h.settle()
		got := h.txids("s1")
		// 5 writes spread over 100ms with a 200ms interval: at most 2
		// deliveries, terminal txid included.
		if len(got) > 2 || got[len(got)-1] != 5 {
			t.Fatalf("interval deliveries = %v", got)
		}
	})
}

func TestKickFlushesOpenSlot(t *testing.T) {
	withNode(t, sim.Ms(100000), func(h *harness) { // debounce absurdly long
		wid := int64(6)
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyCoalesce, WID: wid,
		})
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: 9, Shard: 0})
		h.n.Release(h.ctx, 9)
		h.k.Sleep(sim.Ms(10))
		if len(h.got) != 0 {
			t.Fatal("delivered before debounce expiry without a kick")
		}
		h.n.Kick(h.ctx, wid)
		h.settle()
		if w := h.n.Watermark(wid); w != 9 {
			t.Fatalf("watermark after kick = %d, want 9", w)
		}
		if len(h.got) != 1 {
			t.Fatalf("deliveries = %+v", h.got)
		}
	})
}

func TestOutOfOrderFiringNotCoalescedAway(t *testing.T) {
	withNode(t, sim.Ms(50), func(h *harness) {
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyCoalesce, WID: 5,
		})
		// Cross-shard arrival: txid 20 releases before txid 15.
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: 20, Shard: 0})
		h.n.Release(h.ctx, 20)
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: 15, Shard: 1})
		h.n.Release(h.ctx, 15)
		h.settle()
		got := h.txids("s1")
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if fmt.Sprint(got) != fmt.Sprint([]int64{15, 20}) {
			t.Fatalf("out-of-order firing lost: %v", got)
		}
	})
}

func TestBulkRegisterCountsWithoutSending(t *testing.T) {
	withNode(t, 0, func(h *harness) {
		h.n.BulkRegister("/cfg", KindPersistent, PolicyImmediate, 0, 11, 100000)
		h.n.Register(h.ctx, Registration{Session: "real", Path: "/cfg", Kind: KindPersistent, WID: 11})
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: 1, Shard: 0})
		h.n.Release(h.ctx, 1)
		h.settle()
		if len(h.got) != 1 || h.got[0].session != "real" {
			t.Fatalf("deliveries = %+v", h.got)
		}
		st := h.n.Stats()
		if st.Deliveries != 100001 {
			t.Fatalf("deliveries counter = %d, want 100001", st.Deliveries)
		}
	})
}

func TestLoseFlushesInflightEpochs(t *testing.T) {
	withNode(t, sim.Ms(100000), func(h *harness) {
		h.n.Register(h.ctx, Registration{
			Session: "s1", Path: "/cfg", Kind: KindPersistent,
			Policy: PolicyCoalesce, WID: 2,
		})
		h.n.Publish(h.ctx, Change{Op: OpSet, Path: "/cfg", Parent: "/", Txid: 1, Shard: 0})
		h.n.Release(h.ctx, 1)
		h.k.Sleep(sim.Ms(10))
		h.n.Lose()
		h.settle()
		if len(h.exits) != 1 {
			t.Fatalf("lose must flush in-flight epoch entries, exits = %v", h.exits)
		}
		if len(h.got) != 0 {
			t.Fatalf("lost slot still delivered: %+v", h.got)
		}
		if st := h.n.Stats(); st.Sessions != 0 || st.Groups != 0 {
			t.Fatalf("registrations survived loss: %+v", st)
		}
	})
}
