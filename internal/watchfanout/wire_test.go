package watchfanout

import (
	"bytes"
	"errors"
	"testing"

	"faaskeeper/internal/wire"
)

func TestNotificationRoundTrip(t *testing.T) {
	cases := []NotificationRecord{
		{},
		{Path: "/a", Parent: "/", Op: byte(OpSet), Txid: 1, Shard: 0},
		{Path: "/very/deep/config/path", Parent: "/very/deep/config", Op: byte(OpCreate), Txid: 1 << 40, Shard: 7},
		{Path: "/x", Parent: "/", Op: byte(OpDelete), Txid: -3, Shard: 255},
	}
	for _, r := range cases {
		b := EncodeNotification(r)
		if len(b) != notifSize(r) {
			t.Errorf("notifSize(%+v) = %d, encoded %d", r, notifSize(r), len(b))
		}
		got, err := DecodeNotification(b)
		if err != nil || got != r {
			t.Errorf("round trip %+v -> %+v (err %v)", r, got, err)
		}
	}
}

func TestRegistrationRoundTrip(t *testing.T) {
	cases := []RegistrationRecord{
		{},
		{Session: "s-1", Path: "/cfg", Kind: byte(KindPersistent), Policy: byte(PolicyCoalesce), WID: 99},
		{Session: "sess", Path: "/app", Kind: byte(KindPersistentRecursive), Policy: byte(PolicyInterval), IntervalUS: 5_000_000, WID: -1},
	}
	for _, r := range cases {
		b := EncodeRegistration(r)
		if len(b) != regSize(r) {
			t.Errorf("regSize(%+v) = %d, encoded %d", r, regSize(r), len(b))
		}
		got, err := DecodeRegistration(b)
		if err != nil || got != r {
			t.Errorf("round trip %+v -> %+v (err %v)", r, got, err)
		}
	}
}

func TestDecodeRejectsWrongTag(t *testing.T) {
	if _, err := DecodeNotification(EncodeRegistration(RegistrationRecord{})); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("notification decode of registration bytes: err = %v", err)
	}
	if _, err := DecodeRegistration(EncodeNotification(NotificationRecord{})); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("registration decode of notification bytes: err = %v", err)
	}
}

// FuzzNotificationCodec round-trips arbitrary field values and feeds
// mutated encodings back through the decoder.
func FuzzNotificationCodec(f *testing.F) {
	f.Add("/a", "/", byte(1), int64(1), int64(0))
	f.Add("", "", byte(0), int64(-1), int64(255))
	f.Add("/deep/znode/path", "/deep/znode", byte(3), int64(1)<<50, int64(31))
	f.Fuzz(func(t *testing.T, path, parent string, op byte, txid, shard int64) {
		r := NotificationRecord{Path: path, Parent: parent, Op: op, Txid: txid, Shard: shard}
		b := EncodeNotification(r)
		if len(b) != notifSize(r) {
			t.Fatalf("size model %d != encoded %d", notifSize(r), len(b))
		}
		got, err := DecodeNotification(b)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
		// Truncations must error, never panic.
		for cut := 0; cut < len(b); cut++ {
			if _, err := DecodeNotification(b[:cut]); err == nil && cut < len(b)-1 {
				_ = err // short prefixes may decode to zero-values only at exact field edges
			}
		}
		// Corrupt copies must never panic.
		c := bytes.Clone(b)
		for i := range c {
			c[i] ^= 0x5A
			_, _ = DecodeNotification(c)
			c[i] ^= 0x5A
		}
	})
}

// FuzzRegistrationCodec mirrors FuzzNotificationCodec for registrations.
func FuzzRegistrationCodec(f *testing.F) {
	f.Add("s", "/cfg", byte(4), byte(1), int64(0), int64(7))
	f.Add("", "", byte(0), byte(0), int64(-5), int64(-7))
	f.Add("session-9", "/a/b", byte(5), byte(2), int64(1)<<33, int64(1)<<62)
	f.Fuzz(func(t *testing.T, session, path string, kind, policy byte, interval, wid int64) {
		r := RegistrationRecord{Session: session, Path: path, Kind: kind, Policy: policy, IntervalUS: interval, WID: wid}
		b := EncodeRegistration(r)
		if len(b) != regSize(r) {
			t.Fatalf("size model %d != encoded %d", regSize(r), len(b))
		}
		got, err := DecodeRegistration(b)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if got != r {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
		for cut := 0; cut < len(b); cut++ {
			_, _ = DecodeRegistration(b[:cut])
		}
		c := bytes.Clone(b)
		for i := range c {
			c[i] ^= 0xA5
			_, _ = DecodeRegistration(c)
			c[i] ^= 0xA5
		}
	})
}
