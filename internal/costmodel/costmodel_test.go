package costmodel

import (
	"math"
	"testing"

	"faaskeeper/internal/cloud"
)

func TestWorkedExamplesFromPaper(t *testing.T) {
	m := NewAWSModel(512)
	// "A workload of 100,000 read operations costs $0.04."
	if got := 100_000 * m.ReadCost(1024, false); math.Abs(got-0.04) > 0.001 {
		t.Errorf("100k reads = $%.4f, paper says $0.04", got)
	}
	// "A workload of 100,000 write operations costs $1.12."
	if got := 100_000 * m.WriteCost(1024, false); math.Abs(got-1.12) > 0.02 {
		t.Errorf("100k writes = $%.4f, paper says $1.12", got)
	}
	// "With hybrid storage ... 100,000 write operations costs $0.72."
	if got := 100_000 * m.WriteCost(1024, true); math.Abs(got-0.72) > 0.05 {
		t.Errorf("100k hybrid writes = $%.4f, paper says $0.72", got)
	}
}

func TestZooKeeperDailyCosts(t *testing.T) {
	p := cloud.AWSPricing()
	for _, c := range []struct {
		inst string
		want float64 // paper: $0.5 / $1 / $2 per VM per day
	}{
		{"t3.small", 0.5}, {"t3.medium", 1.0}, {"t3.large", 2.0},
	} {
		z := ZooKeeperDeployment{P: p, Servers: 1, InstanceType: c.inst}
		if got := z.VMDailyCost(); math.Abs(got-c.want) > 0.01 {
			t.Errorf("%s daily = %v, want %v", c.inst, got, c.want)
		}
	}
	z := ZooKeeperDeployment{P: p, Servers: 3, InstanceType: "t3.small", DiskGB: 20}
	if z.TotalDailyCost() <= z.VMDailyCost() {
		t.Error("block storage not charged")
	}
}

func TestFig14CornersMatchPaper(t *testing.T) {
	m := NewAWSModel(512)
	check := func(servers int, inst string, reqs, readFrac, want, tol float64, hybrid bool) {
		t.Helper()
		z := ZooKeeperDeployment{P: m.P, Servers: servers, InstanceType: inst, DiskGB: 20}
		got := m.CostRatio(z, reqs, readFrac, 1024, hybrid)
		if math.Abs(got-want) > tol {
			t.Errorf("%dx%s %g req %g%% reads hybrid=%v: ratio %.2f, paper %.2f",
				servers, inst, reqs, readFrac*100, hybrid, got, want)
		}
	}
	// Figure 14, 100% reads panel.
	check(3, "t3.small", 100_000, 1.0, 37.44, 1.0, false)
	check(9, "t3.large", 100_000, 1.0, 449.28, 12, false)
	check(3, "t3.small", 5_000_000, 1.0, 0.75, 0.05, false)
	check(3, "t3.small", 100_000, 1.0, 59.90, 2.0, true)
	check(9, "t3.large", 100_000, 1.0, 718.85, 20, true)
	// 90% reads panel.
	check(3, "t3.small", 100_000, 0.9, 10.14, 0.6, false)
	check(9, "t3.large", 5_000_000, 0.9, 2.43, 0.2, false)
	// 80% reads panel.
	check(3, "t3.small", 100_000, 0.8, 5.86, 0.4, false)
	check(3, "t3.small", 100_000, 0.8, 9.16, 0.8, true)
}

func TestBreakEvenMatchesPaperClaims(t *testing.T) {
	m := NewAWSModel(512)
	z := ZooKeeperDeployment{P: m.P, Servers: 3, InstanceType: "t3.small", DiskGB: 20}
	// "FaaSKeeper can process between 1 and 3.75 million requests daily
	// before the costs equal the smallest possible ZooKeeper deployment"
	// (high read-to-write mixes), growing to ~6M with hybrid reads.
	be100 := m.BreakEvenRequests(z, 1.0, 1024, false)
	if be100 < 3e6 || be100 > 4.2e6 {
		t.Errorf("break-even at 100%% reads = %.0f, want ~3.75M", be100)
	}
	be90 := m.BreakEvenRequests(z, 0.9, 1024, false)
	if be90 < 0.8e6 || be90 > 1.4e6 {
		t.Errorf("break-even at 90%% reads = %.0f, want ~1M", be90)
	}
	beHybrid := m.BreakEvenRequests(z, 1.0, 1024, true)
	if beHybrid < 5.5e6 || beHybrid > 6.5e6 {
		t.Errorf("hybrid break-even = %.0f, want ~5.99M", beHybrid)
	}
	if m.BreakEvenRequests(z, 1.0, 1024, false) >= math.Inf(1) {
		t.Error("break-even infinite")
	}
}

func TestStorageCurvesShape(t *testing.T) {
	p := cloud.AWSPricing()
	bySize := StorageCostVsSize(p, []float64{0.01, 0.1, 1, 10})
	// Figure 4a: object writes 12.5x more expensive than reads; KV storage
	// on large data much more expensive than object storage.
	first := bySize[0]
	if r := (first.S3Write - 0.01*p.ObjectStorageGBMo) / (first.S3Read - 0.01*p.ObjectStorageGBMo); math.Abs(r-12.5) > 0.1 {
		t.Errorf("S3 write/read op ratio = %v", r)
	}
	last := bySize[len(bySize)-1]
	if last.KVRead <= last.S3Read {
		t.Error("KV storage should overtake S3 at 10 GB")
	}
	byOps := StorageCostVsOps(p, []float64{1e3, 1e5, 1e7})
	if byOps[2].S3Write < byOps[2].KVWrite {
		t.Error("frequent 1kB object writes should be costlier than KV writes")
	}
	if byOps[0].S3Write > byOps[2].S3Write {
		t.Error("cost must grow with ops")
	}
}

func TestFig14GridComplete(t *testing.T) {
	cells := Fig14(NewAWSModel(512), 1.0)
	// 5 request columns x 2 server counts x 3 instance types x 2 storage modes.
	if len(cells) != 60 {
		t.Fatalf("grid size = %d", len(cells))
	}
	for _, c := range cells {
		if c.Ratio <= 0 || math.IsNaN(c.Ratio) {
			t.Fatalf("bad ratio in cell %+v", c)
		}
	}
	// Monotonic: more requests -> lower ratio.
	if cells[0].Ratio <= cells[4].Ratio {
		t.Error("ratio should fall as volume grows")
	}
}

func TestHeartbeatDailyCostSmall(t *testing.T) {
	m := NewAWSModel(512)
	// 1/min for 24h at ~100ms, 128 MB: a fraction of a cent (Figure 13
	// reports 0.1-0.25 cents).
	cost := m.HeartbeatDailyCost(0.1, 128, 1440, 64*100)
	if cost <= 0 || cost > 0.01 {
		t.Errorf("heartbeat daily = $%.5f, want under a cent", cost)
	}
	vm := cloud.AWSPricing().VMDailyCost("t3.small", 1)
	if cost > vm/50 {
		t.Errorf("heartbeat (%v) should be a tiny fraction of a VM (%v)", cost, vm)
	}
}

func TestGCPModelWriteCheaperQueueCostlierKV(t *testing.T) {
	aws := NewAWSModel(512)
	gcp := Model{P: cloud.GCPPricing(), FollowerSeconds: 0.04, LeaderSeconds: 0.09, MemoryMB: 512}
	// Datastore ops are flat-priced: a hybrid (KV) write of 64 kB costs
	// the same as 1 kB on GCP, unlike AWS.
	if gcp.P.KVWriteCost(64*1024) != gcp.P.KVWriteCost(1024) {
		t.Error("Datastore write should be size-independent")
	}
	if aws.P.KVWriteCost(64*1024) <= aws.P.KVWriteCost(1024) {
		t.Error("DynamoDB write must grow with size")
	}
	// Pub/Sub small messages are much cheaper than SQS.
	if gcp.P.QueueMsgCost(64) >= aws.P.QueueMsgCost(64) {
		t.Error("Pub/Sub small message should be cheaper than SQS")
	}
}

func TestCachedReadCostScalesWithHitRatio(t *testing.T) {
	m := NewAWSModel(512)
	full := m.ReadCost(1024, true)
	if got := m.CachedReadCost(0, 1024, true); got != full {
		t.Errorf("0%% hits should cost a full read: $%v vs $%v", got, full)
	}
	if got := m.CachedReadCost(1, 1024, true); got != 0 {
		t.Errorf("100%% hits should be per-op free, got $%v", got)
	}
	lo, hi := m.CachedReadCost(0.9, 1024, true), m.CachedReadCost(0.5, 1024, true)
	if !(lo < hi && hi < full) {
		t.Errorf("cached read cost not monotone in miss ratio: %v %v %v", lo, hi, full)
	}
	// Out-of-range ratios clamp instead of going negative.
	if m.CachedReadCost(1.5, 1024, true) != 0 || m.CachedReadCost(-1, 1024, true) != full {
		t.Error("hit ratio should clamp to [0,1]")
	}
}

func TestCacheBreakEven(t *testing.T) {
	m := NewAWSModel(512)
	be := m.CacheBreakEvenReads(0.9, 1024, true, 1)
	if math.IsInf(be, 1) || be <= 0 {
		t.Fatalf("break-even should be finite and positive, got %v", be)
	}
	// At the break-even read volume the cached deployment costs the same
	// as the uncached one (pure-read workload).
	plain := m.DailyCost(be, 1, 1024, true)
	cached := m.CachedDailyCost(be, 1, 0.9, 1024, true, 1)
	if diff := math.Abs(plain-cached) / plain; diff > 1e-9 {
		t.Errorf("costs at break-even differ: $%v vs $%v", plain, cached)
	}
	// A zero hit ratio never pays for the node.
	if !math.IsInf(m.CacheBreakEvenReads(0, 1024, true, 1), 1) {
		t.Error("0%% hit ratio should never break even")
	}
	// More regions cost proportionally more.
	if m.CacheNodeDailyCost(3) != 3*m.CacheNodeDailyCost(1) {
		t.Error("cache node cost should scale with regions")
	}
}

func TestBatchedWriteCost(t *testing.T) {
	m := NewAWSModel(2048)
	base := m.WriteCost(1024, false)
	// No folding (every write survives) still saves a little: the batch
	// shares one leader invocation's request fee.
	unfolded := m.BatchedWriteCost(10, 10, 1024, false)
	if unfolded > base {
		t.Errorf("unfolded batch $%.8f above per-message $%.8f", unfolded, base)
	}
	// Perfect folding on standard storage drops the dominant W_S3 term:
	// a hot-node batch of 10 must save well over a third per write
	// (Table 4: W_S3 is $5/M of the ~$11.2/M write).
	folded := m.BatchedWriteCost(10, 1, 1024, false)
	if folded > 0.65*base {
		t.Errorf("fully folded batch $%.8f, want <= 65%% of $%.8f", folded, base)
	}
	// Monotone in the fold outcome.
	prev := 0.0
	for w := 1; w <= 10; w++ {
		c := m.BatchedWriteCost(10, w, 1024, false)
		if c < prev {
			t.Fatalf("BatchedWriteCost not monotone in store writes at w=%d", w)
		}
		prev = c
	}
	// Degenerate inputs collapse to sensible bounds.
	if got := m.BatchedWriteCost(1, 1, 1024, false); got > base {
		t.Errorf("batch of one costs $%.8f, above per-message $%.8f", got, base)
	}
	if m.BatchedWriteCost(10, 0, 1024, false) != m.BatchedWriteCost(10, 10, 1024, false) {
		t.Error("storeWrites=0 must clamp to the unfolded batch")
	}
}

func TestBatchWriteSavingsAndBreakEven(t *testing.T) {
	m := NewAWSModel(2048)
	s := m.BatchWriteSavings(10, 1, 1024, false)
	if s <= 0.3 || s >= 1 {
		t.Errorf("perfect-fold savings = %.3f, want a large fraction below 1", s)
	}
	if hs := m.BatchWriteSavings(10, 1, 1024, true); hs >= s {
		t.Errorf("hybrid savings %.3f should trail standard %.3f (W_DD < W_S3 at 1 kB)", hs, s)
	}
	// The break-even fold ratio for a modest target must be reachable,
	// monotone in the target, and 0 for impossible targets.
	easy := m.BatchFoldBreakEven(10, 1024, false, 0.10)
	hard := m.BatchFoldBreakEven(10, 1024, false, 0.30)
	if easy <= 0 || easy > 1 || hard <= 0 {
		t.Fatalf("break-even ratios: easy=%.2f hard=%.2f", easy, hard)
	}
	if hard > easy {
		t.Errorf("stricter target needs more folding: hard=%.2f > easy=%.2f", hard, easy)
	}
	if m.BatchFoldBreakEven(10, 1024, false, 0.99) != 0 {
		t.Error("unreachable target must report 0")
	}
	if m.BatchFoldBreakEven(1, 1024, false, 0.1) != 0 {
		t.Error("a batch of one cannot fold")
	}
}

func TestTxnCostScalesWithParticipants(t *testing.T) {
	m := NewAWSModel(2048)
	fast := m.TxnCost(1, 4, 1024, false)
	two := m.TxnCost(2, 4, 1024, false)
	four := m.TxnCost(4, 4, 1024, false)
	if !(fast < two && two < four) {
		t.Errorf("txn cost not monotone in participants: %g %g %g", fast, two, four)
	}
	// The fast path stays in the same ballpark as independent writes (the
	// queue payload and commit transaction trade against the folded store
	// writes), while 2PC pays a real but bounded premium.
	if ov := m.TxnOverhead(1, 4, 1024, false); ov <= 0 || ov > 2 {
		t.Errorf("fast-path overhead = %.2fx, want (0, 2]", ov)
	}
	ov2 := m.TxnOverhead(2, 4, 1024, false)
	ov4 := m.TxnOverhead(4, 4, 1024, false)
	if ov2 <= m.TxnOverhead(1, 4, 1024, false) || ov4 <= ov2 {
		t.Errorf("2PC overhead not increasing: %.2f %.2f", ov2, ov4)
	}
	if ov4 > 5 {
		t.Errorf("4-shard overhead = %.2fx, implausibly high", ov4)
	}
	// Degenerate inputs clamp instead of dividing by zero.
	if c := m.TxnCost(0, 0, 1024, false); c <= 0 {
		t.Errorf("clamped cost = %g", c)
	}
}

func TestReshardCostBounded(t *testing.T) {
	m := NewAWSModel(2048)
	one := m.ReshardCost(1, 20, 0, 512, 1024)
	four := m.ReshardCost(4, 20, 0, 512, 1024)
	if !(one > 0 && one < four) {
		t.Errorf("reshard cost not monotone in sources: %g %g", one, four)
	}
	// A transition with a handful of in-flight retries stays far below
	// one second of the hot traffic that warrants it (~100 writes/s).
	withRetries := m.ReshardCost(4, 40, 8, 512, 1024)
	if hundredWrites := 100 * m.WriteCost(1024, false); withRetries > hundredWrites {
		t.Errorf("reshard $%.8f dwarfs 100 writes $%.8f", withRetries, hundredWrites)
	}
	if m.ReshardCost(0, 0, 0, 0, 0) <= 0 {
		t.Error("clamped reshard cost must stay positive")
	}
	// The per-write dynamic overhead is a small fraction of a write.
	if ov := m.DynamicWriteOverhead(); ov <= 0 || ov > 0.2*m.WriteCost(1024, false) {
		t.Errorf("dynamic write overhead $%.10f out of range", ov)
	}
}

func TestFanoutCostFlatInWatchers(t *testing.T) {
	m := NewAWSModel(512)
	pub := m.FanoutPublishCost()
	if pub <= 0 {
		t.Fatalf("publish cost = %g", pub)
	}
	// The legacy leader-side watch query grows with the watcher count;
	// the fan-out publish does not reference it at all.
	l10k := m.LegacyWatchQueryCost(10_000)
	l1m := m.LegacyWatchQueryCost(1_000_000)
	if l1m <= l10k {
		t.Fatalf("legacy cost not increasing: %g <= %g", l1m, l10k)
	}
	if l1m/pub < 10 {
		t.Fatalf("fan-out saves too little at 1M watchers: legacy %g vs publish %g", l1m, pub)
	}
	// Break-even falls as the watcher count (and thus per-firing savings)
	// grows, and the node cost matches the cache-tier precedent.
	be10k := m.FanoutBreakEvenFirings(10_000, 1)
	be1m := m.FanoutBreakEvenFirings(1_000_000, 1)
	if be1m >= be10k {
		t.Fatalf("break-even did not fall with watchers: %g >= %g", be1m, be10k)
	}
	if m.FanoutNodeDailyCost(2) != m.CacheNodeDailyCost(2) {
		t.Fatalf("fan-out node cost diverges from cache node cost")
	}
}
