// Package costmodel implements the paper's analytic cost model
// (Section 5.3.4, Table 4): per-operation read and write costs for
// FaaSKeeper with standard and hybrid storage, the constant daily cost of
// a provisioned ZooKeeper ensemble, the cost-ratio grids of Figure 14, and
// the storage-price curves of Figure 4a.
package costmodel

import (
	"math"

	"faaskeeper/internal/cloud"
)

// Model evaluates FaaSKeeper operation costs for one provider.
type Model struct {
	P cloud.Pricing

	// Function-execution profile used for F_W and F_D in Table 4: the
	// median runtimes of the follower and leader functions.
	FollowerSeconds float64
	LeaderSeconds   float64
	MemoryMB        int
	ARM             bool
}

// NewAWSModel returns the model with the paper's measured defaults:
// follower ~35 ms, leader ~65 ms (Table 3 medians at small payloads).
func NewAWSModel(memoryMB int) Model {
	if memoryMB <= 0 {
		memoryMB = 512
	}
	return Model{
		P:               cloud.AWSPricing(),
		FollowerSeconds: 0.035,
		LeaderSeconds:   0.065,
		MemoryMB:        memoryMB,
	}
}

// ReadCost returns the dollars for one read of s bytes: a single storage
// access (Cost_R = R_S3(s), or R_DD for hybrid storage).
func (m Model) ReadCost(sizeB int, hybrid bool) float64 {
	if hybrid {
		return m.P.KVReadCost(sizeB, true)
	}
	return m.P.ObjectReadCost(sizeB)
}

// WriteCost returns the dollars for one set_data of s bytes:
//
//	Cost_W = 2*Q(s) + 3*W_DD(1) + R_DD(1) + W_S3(s) + F_W + F_D
//
// Two queue messages (session queue + leader queue), three system-store
// writes (lock, commit+unlock, transaction pop), one system-store read
// (leader's node fetch), the user-store write, and both function
// executions. With hybrid storage W_S3(s) becomes W_DD(s).
func (m Model) WriteCost(sizeB int, hybrid bool) float64 {
	c := 2 * m.P.QueueMsgCost(sizeB)
	c += 3 * m.P.KVWriteCost(1)
	c += m.P.KVReadCost(1, true)
	c += m.P.StoreWriteCost(sizeB, hybrid)
	c += m.P.FaaSCost(m.MemoryMB, 1, m.FollowerSeconds, m.ARM)
	c += m.P.FaaSCost(m.MemoryMB, 1, m.LeaderSeconds, m.ARM)
	return c
}

// BatchedWriteCost returns the average dollars per write when the
// leader's batching distributor folds a batch of batchSize queued writes
// into storeWrites user-store writes (storeWrites <= batchSize; equal
// means no folding). The per-operation terms of Table 4 are unchanged —
// each write still pays its two queue messages, three system-store
// writes, the system-store read, and its follower execution — but the
// user-store term is paid only per surviving write, and the whole batch
// shares one leader invocation whose runtime scales with the folded
// distribution instead of one full execution per message.
func (m Model) BatchedWriteCost(batchSize, storeWrites, sizeB int, hybrid bool) float64 {
	if batchSize <= 0 {
		batchSize = 1
	}
	if storeWrites <= 0 || storeWrites > batchSize {
		storeWrites = batchSize
	}
	n := float64(batchSize)
	w := float64(storeWrites)
	perOp := 2 * m.P.QueueMsgCost(sizeB)
	perOp += 3 * m.P.KVWriteCost(1)
	perOp += m.P.KVReadCost(1, true)
	perOp += m.P.FaaSCost(m.MemoryMB, 1, m.FollowerSeconds, m.ARM)
	total := n * perOp
	total += w * m.P.StoreWriteCost(sizeB, hybrid)
	total += m.P.FaaSCost(m.MemoryMB, 1, m.LeaderSeconds*w, m.ARM)
	return total / n
}

// BatchWriteSavings returns the fraction of the unbatched per-write cost
// the distributor saves at the given batch size and fold outcome.
func (m Model) BatchWriteSavings(batchSize, storeWrites, sizeB int, hybrid bool) float64 {
	base := m.WriteCost(sizeB, hybrid)
	if base <= 0 {
		return 0
	}
	return 1 - m.BatchedWriteCost(batchSize, storeWrites, sizeB, hybrid)/base
}

// BatchFoldBreakEven returns the largest fold ratio (storeWrites divided
// by batchSize, in (0, 1]) at which batching still saves at least
// targetSavings of the unbatched per-write dollars, scanning the possible
// outcomes of one batch. Zero when even perfect folding (one store write
// per batch) cannot reach the target.
func (m Model) BatchFoldBreakEven(batchSize, sizeB int, hybrid bool, targetSavings float64) float64 {
	if batchSize <= 1 {
		return 0
	}
	for w := batchSize; w >= 1; w-- {
		if m.BatchWriteSavings(batchSize, w, sizeB, hybrid) >= targetSavings {
			return float64(w) / float64(batchSize)
		}
	}
	return 0
}

// TxnCost returns the dollars for one multi() transaction of ops
// sub-operations spanning participants write shards (package txn).
//
// Every transaction pays the per-op pipeline terms: the session queue
// message carrying all sub-ops, one lock write and one pending pop per
// touched item, the multi-item commit transaction legs, the leader's head
// checks, and one folded user-store write per target. The fast path
// (participants == 1) adds just one leader-queue message — no
// coordinator machinery at all.
//
// A cross-shard transaction (participants > 1) additionally pays the
// two-phase commit: one commit queue message and one leader execution per
// participant shard, one intent write per item, the durable record's
// writes (begin + pointer, one vote / commit note / ready marker per
// shard, decide, applied, delete + pointer), and the coordinator's
// barrier polling reads.
func (m Model) TxnCost(participants, ops, sizeB int, hybrid bool) float64 {
	if participants < 1 {
		participants = 1
	}
	if ops < 1 {
		ops = 1
	}
	n, k := float64(ops), float64(participants)
	payload := sizeB * ops
	c := m.P.QueueMsgCost(payload) // session queue message
	// The coordinator's follower execution scales with the op count
	// (locking, validation, and — cross-shard — the apply).
	c += m.P.FaaSCost(m.MemoryMB, 1, m.FollowerSeconds*n, m.ARM)
	c += 3 * n * m.P.KVWriteCost(1)  // locks, commit legs, pending pops
	c += n * m.P.KVReadCost(1, true) // leader head checks
	c += n * m.P.StoreWriteCost(sizeB, hybrid)
	c += m.P.FaaSCost(m.MemoryMB, 1, m.LeaderSeconds, m.ARM)
	if participants == 1 {
		return c + m.P.QueueMsgCost(payload)
	}
	c += k * m.P.QueueMsgCost(payload/participants) // commit messages
	c += (k - 1) * m.P.FaaSCost(m.MemoryMB, 1, m.LeaderSeconds, m.ARM)
	c += n * m.P.KVWriteCost(1)          // intent writes
	c += (3*k + 6) * m.P.KVWriteCost(1)  // the durable record's lifecycle
	c += 2 * k * m.P.KVReadCost(1, true) // barrier polls
	return c
}

// TxnOverhead returns the cost multiplier of committing ops writes as one
// transaction versus issuing them as independent set_data calls — the
// price of atomicity the "txn" experiment tracks per shard count.
func (m Model) TxnOverhead(participants, ops, sizeB int, hybrid bool) float64 {
	if ops < 1 {
		ops = 1
	}
	base := float64(ops) * m.WriteCost(sizeB, hybrid)
	if base <= 0 {
		return 0
	}
	return m.TxnCost(participants, ops, sizeB, hybrid) / base
}

// DynamicWriteOverhead returns the extra dollars a write pays on a
// dynamic-sharding deployment: the follower's commit becomes a
// transactional write joining the shard-map generation check, modeled as
// one additional system-store write on the map item. Reads and the rest
// of the pipeline are untouched.
func (m Model) DynamicWriteOverhead() float64 {
	return m.P.KVWriteCost(1)
}

// ReshardCost returns the dollars one live reshard transition costs:
//
//	Cost_RS = 2*W_DD(map) + sources*(Q(1) + W_DD(1))
//	        + polls*R_DD(1) + retried*(W_DD(1) + Q(s))
//
// Two map writes (the migration gate and the epoch flip), one fence
// message and one barrier-ack write per source shard, the coordinator's
// drain-polling reads, and — for writes in flight across the gate or the
// flip — one failed commit plus one re-pushed queue message each. mapB
// is the durable routing table's size (a few hundred bytes, growing with
// overrides and splits). The transition itself is orders of magnitude
// cheaper than a minute of the traffic that warrants it.
func (m Model) ReshardCost(sources, polls, retriedWrites, mapB, sizeB int) float64 {
	if sources <= 0 {
		sources = 1
	}
	c := 2 * m.P.KVWriteCost(mapB)
	c += float64(sources) * (m.P.QueueMsgCost(64) + m.P.KVWriteCost(1))
	c += float64(polls) * m.P.KVReadCost(1, true)
	c += float64(retriedWrites) * (m.P.KVWriteCost(1) + m.P.QueueMsgCost(sizeB))
	return c
}

// ReshardEstimate returns the planning estimate of one reshard transition
// the cost-aware AutoShard policy weighs against accumulated queue-delay
// cost: ReshardCost evaluated with nominal drain polling (four barrier
// reads per source) and in-flight retry counts (two gate-crossed writes
// per source) at 1 kB payloads. The policy compares dollars to dollars —
// a split is only worth its transition once the delay it would relieve
// has cost at least this much.
func (m Model) ReshardEstimate(sources, mapB int) float64 {
	if sources <= 0 {
		sources = 1
	}
	if mapB <= 0 {
		mapB = 512
	}
	return m.ReshardCost(sources, 4*sources, 2*sources, mapB, 1024)
}

// CachedReadCost returns the expected dollars for one read served through
// the cache tier at the given hit ratio: hits touch only the regional
// cache node (per-operation free — the node bills hourly, see
// CacheNodeDailyCost), misses additionally pay the full store read.
func (m Model) CachedReadCost(hitRatio float64, sizeB int, hybrid bool) float64 {
	if hitRatio < 0 {
		hitRatio = 0
	}
	if hitRatio > 1 {
		hitRatio = 1
	}
	return (1 - hitRatio) * m.ReadCost(sizeB, hybrid)
}

// CacheNodeDailyCost is the provisioned cost of the cache tier: one
// regional cache node per user-store region.
func (m Model) CacheNodeDailyCost(regions int) float64 {
	if regions <= 0 {
		regions = 1
	}
	return m.P.CacheVMDailyCost(regions)
}

// CachedDailyCost returns a day of traffic with the cache tier deployed:
// reads at the hit ratio, writes unchanged (each write additionally
// publishes an invalidation to the cache node, which is per-op free), plus
// the provisioned nodes.
func (m Model) CachedDailyCost(requestsPerDay, readFraction, hitRatio float64, sizeB int, hybrid bool, regions int) float64 {
	reads := requestsPerDay * readFraction
	writes := requestsPerDay * (1 - readFraction)
	return reads*m.CachedReadCost(hitRatio, sizeB, hybrid) +
		writes*m.WriteCost(sizeB, hybrid) +
		m.CacheNodeDailyCost(regions)
}

// CacheBreakEvenReads returns the daily read volume above which the cache
// tier pays for itself: the point where the per-read savings of cache hits
// cover the provisioned nodes. Infinite when the hit ratio saves nothing.
func (m Model) CacheBreakEvenReads(hitRatio float64, sizeB int, hybrid bool, regions int) float64 {
	saved := m.ReadCost(sizeB, hybrid) - m.CachedReadCost(hitRatio, sizeB, hybrid)
	if saved <= 0 {
		return math.Inf(1)
	}
	return m.CacheNodeDailyCost(regions) / saved
}

// LegacyWatchQueryCost returns the leader-side dollars for firing one
// watch group the paper's way: a strongly consistent system-store read
// of the session list (one entry per watcher) plus the conditional write
// that clears the one-shot group. It grows linearly with the number of
// registered watchers — the term the fan-out tier removes.
func (m Model) LegacyWatchQueryCost(watchers int) float64 {
	if watchers < 0 {
		watchers = 0
	}
	const entryBytes = 40 // session id + watch metadata per registration
	return m.P.KVReadCost(watchers*entryBytes, true) + m.P.KVWriteCost(1)
}

// FanoutPublishCost returns the leader-side dollars for the same firing
// with the fan-out tier deployed: one notification record — path, op,
// txid — written toward the regional node, independent of the watcher
// count (session enumeration and delivery happen on the per-op-free
// node, see FanoutNodeDailyCost).
func (m Model) FanoutPublishCost() float64 {
	const recordBytes = 64 // NotificationRecord wire size, small paths
	return m.P.KVWriteCost(recordBytes)
}

// FanoutNodeDailyCost is the provisioned cost of the fan-out tier: one
// regional node per user-store region, billed like a cache node.
func (m Model) FanoutNodeDailyCost(regions int) float64 {
	if regions <= 0 {
		regions = 1
	}
	return m.P.CacheVMDailyCost(regions)
}

// FanoutBreakEvenFirings returns the daily watch-group firings above
// which the fan-out tier pays for itself at the given watcher count: the
// point where the per-firing leader savings cover the provisioned nodes.
// Infinite when the tier saves nothing per firing.
func (m Model) FanoutBreakEvenFirings(watchers, regions int) float64 {
	saved := m.LegacyWatchQueryCost(watchers) - m.FanoutPublishCost()
	if saved <= 0 {
		return math.Inf(1)
	}
	return m.FanoutNodeDailyCost(regions) / saved
}

// DailyCost returns FaaSKeeper's cost for a day of traffic.
func (m Model) DailyCost(requestsPerDay float64, readFraction float64, sizeB int, hybrid bool) float64 {
	reads := requestsPerDay * readFraction
	writes := requestsPerDay * (1 - readFraction)
	return reads*m.ReadCost(sizeB, hybrid) + writes*m.WriteCost(sizeB, hybrid)
}

// StorageDailyCost returns the cost of retaining gb of user data for one
// day (S3 for standard storage, DynamoDB for hybrid).
func (m Model) StorageDailyCost(gb float64, hybrid bool) float64 {
	rate := m.P.ObjectStorageGBMo
	if hybrid {
		rate = m.P.KVStorageGBMo
	}
	return rate * gb * 12 / 365
}

// ZooKeeperDeployment sizes the baseline.
type ZooKeeperDeployment struct {
	P            cloud.Pricing
	Servers      int
	InstanceType string
	DiskGB       float64 // block storage per VM
}

// VMDailyCost is the ensemble's compute cost per day (the quantity
// Figure 14 compares against).
func (z ZooKeeperDeployment) VMDailyCost() float64 {
	return z.P.VMDailyCost(z.InstanceType, z.Servers)
}

// TotalDailyCost adds the per-VM block storage.
func (z ZooKeeperDeployment) TotalDailyCost() float64 {
	return z.VMDailyCost() + z.P.BlockStorageDailyCost(z.DiskGB*float64(z.Servers))
}

// CostRatio is ZooKeeper's daily cost divided by FaaSKeeper's: values
// above 1 mean FaaSKeeper is cheaper (the cells of Figure 14).
func (m Model) CostRatio(z ZooKeeperDeployment, requestsPerDay, readFraction float64, sizeB int, hybrid bool) float64 {
	fk := m.DailyCost(requestsPerDay, readFraction, sizeB, hybrid)
	if fk == 0 {
		return math.Inf(1)
	}
	return z.VMDailyCost() / fk
}

// BreakEvenRequests returns the daily request volume at which FaaSKeeper's
// cost equals the ZooKeeper deployment's.
func (m Model) BreakEvenRequests(z ZooKeeperDeployment, readFraction float64, sizeB int, hybrid bool) float64 {
	perRequest := readFraction*m.ReadCost(sizeB, hybrid) +
		(1-readFraction)*m.WriteCost(sizeB, hybrid)
	if perRequest == 0 {
		return math.Inf(1)
	}
	return z.VMDailyCost() / perRequest
}

// HeartbeatDailyCost estimates the monitoring cost of Section 5.3.3: one
// scheduled execution per interval, scanning the session table and
// pinging clients.
func (m Model) HeartbeatDailyCost(execSeconds float64, memoryMB int, invocationsPerDay float64, sessionTableBytes int) float64 {
	perRun := m.P.FaaSCost(memoryMB, 1, execSeconds, false)
	perRun += m.P.KVReadCost(sessionTableBytes, true)
	return perRun * invocationsPerDay
}

// StorageCostPoint is one sample of Figure 4a's storage-cost curves.
type StorageCostPoint struct {
	GB      float64
	Ops     float64
	S3Read  float64
	S3Write float64
	KVRead  float64
	KVWrite float64
}

// StorageCostVsSize reproduces the left panel of Figure 4a: one million
// 1 kB operations plus one month of retention at varying dataset size.
func StorageCostVsSize(p cloud.Pricing, gbs []float64) []StorageCostPoint {
	const ops = 1e6
	out := make([]StorageCostPoint, 0, len(gbs))
	for _, gb := range gbs {
		out = append(out, StorageCostPoint{
			GB:      gb,
			Ops:     ops,
			S3Read:  ops*p.ObjectReadCost(1024) + gb*p.ObjectStorageGBMo,
			S3Write: ops*p.ObjectWriteCost(1024) + gb*p.ObjectStorageGBMo,
			KVRead:  ops*p.KVReadCost(1024, true) + gb*p.KVStorageGBMo,
			KVWrite: ops*p.KVWriteCost(1024) + gb*p.KVStorageGBMo,
		})
	}
	return out
}

// StorageCostVsOps reproduces the right panel of Figure 4a: 1 GB of data,
// varying operation count.
func StorageCostVsOps(p cloud.Pricing, opCounts []float64) []StorageCostPoint {
	const gb = 1.0
	out := make([]StorageCostPoint, 0, len(opCounts))
	for _, ops := range opCounts {
		out = append(out, StorageCostPoint{
			GB:      gb,
			Ops:     ops,
			S3Read:  ops*p.ObjectReadCost(1024) + gb*p.ObjectStorageGBMo,
			S3Write: ops*p.ObjectWriteCost(1024) + gb*p.ObjectStorageGBMo,
			KVRead:  ops*p.KVReadCost(1024, true) + gb*p.KVStorageGBMo,
			KVWrite: ops*p.KVWriteCost(1024) + gb*p.KVStorageGBMo,
		})
	}
	return out
}

// Fig14Grid computes one of Figure 14's heatmaps.
type Fig14Cell struct {
	Deployment  string
	Hybrid      bool
	RequestsDay float64
	Ratio       float64
}

// Fig14 enumerates the paper's grid: requests/day x {3,9} servers x
// {t3.small, t3.medium, t3.large} x {standard, hybrid}, at a given read
// fraction with 1 kB operations.
func Fig14(m Model, readFraction float64) []Fig14Cell {
	requestCols := []float64{100_000, 500_000, 1_000_000, 2_000_000, 5_000_000}
	var cells []Fig14Cell
	for _, hybrid := range []bool{false, true} {
		for _, servers := range []int{3, 9} {
			for _, inst := range []string{"t3.small", "t3.medium", "t3.large"} {
				z := ZooKeeperDeployment{P: m.P, Servers: servers, InstanceType: inst, DiskGB: 20}
				for _, r := range requestCols {
					cells = append(cells, Fig14Cell{
						Deployment:  deploymentLabel(servers, inst),
						Hybrid:      hybrid,
						RequestsDay: r,
						Ratio:       m.CostRatio(z, r, readFraction, 1024, hybrid),
					})
				}
			}
		}
	}
	return cells
}

func deploymentLabel(servers int, inst string) string {
	if servers == 3 {
		return "3 x " + inst
	}
	return "9 x " + inst
}
