package experiments

import (
	"fmt"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/znode"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Heartbeat function performance and cost",
		Ref:   "Figure 13",
		Run:   runFig13,
	})
}

// heartbeatExec measures the scheduled function's execution time with
// nClients sessions each owning one ephemeral node.
func heartbeatExec(seed int64, nClients, memMB, reps int) float64 {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{
		Profile: cloud.AWSProfile(), UserStore: core.StoreKV,
		HeartbeatMemMB: memMB, CollectPhases: true,
	})
	k.Go("bench", func() {
		clients := make([]*fkclient.Client, 0, nClients)
		for i := 0; i < nClients; i++ {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), cloud.RegionAWSHome)
			if err != nil {
				return
			}
			if _, err := c.Create(fmt.Sprintf("/eph-%d", i), nil, znode.FlagEphemeral); err != nil {
				return
			}
			clients = append(clients, c)
		}
		// Invoke the heartbeat directly, as the scheduler would; the
		// handler's own duration is captured as a phase sample, so the
		// invocation-API overhead does not pollute the measurement.
		for rep := 0; rep < reps+1; rep++ {
			if err := d.Platform.Invoke(cloud.ClientCtx(cloud.RegionAWSHome), core.FnHeartbeat, nil); err != nil {
				return
			}
			k.Sleep(5 * time.Second)
		}
		for _, c := range clients {
			c.Close()
		}
	})
	k.RunFor(4 * time.Hour)
	k.Shutdown()
	p := d.Phase("heartbeat.total")
	if p == nil || p.N() < 2 {
		return 0
	}
	// Drop the cold-start invocation (the first sample).
	warm := stats.NewSample(p.N() - 1)
	for _, v := range p.Values()[1:] {
		warm.Add(v)
	}
	return warm.Percentile(50)
}

func runFig13(cfg RunConfig) *Report {
	r := &Report{ID: "fig13", Title: "Heartbeat performance and daily cost", Ref: "Figure 13"}
	reps := cfg.reps(4, 15)
	clientCounts := []int{1, 4, 8, 16, 32, 64}
	memConfigs := []int{128, 256, 512, 1024, 2048}
	if cfg.Quick {
		clientCounts = []int{1, 16, 64}
		memConfigs = []int{128, 512, 2048}
	}
	cols := []string{"clients"}
	for _, mem := range memConfigs {
		cols = append(cols, fmt.Sprintf("%dMB", mem))
	}
	s1 := r.AddSection("Execution time of the heartbeat function (median ms)", cols)
	s2 := r.AddSection("Cost of heartbeat monitoring over 24h at 1/min (cents)", cols)
	m := costmodel.NewAWSModel(512)
	var exec64at128, exec64at2048 float64
	for _, n := range clientCounts {
		row1 := []string{fmt.Sprintf("%d", n)}
		row2 := []string{fmt.Sprintf("%d", n)}
		for _, mem := range memConfigs {
			med := heartbeatExec(cfg.Seed+int64(n*10000+mem), n, mem, reps)
			row1 = append(row1, f1(med))
			daily := m.HeartbeatDailyCost(med/1000, mem, 1440, n*120)
			row2 = append(row2, fmt.Sprintf("%.3f", daily*100))
			if n == 64 && mem == 128 {
				exec64at128 = med
			}
			if n == 64 && mem == 2048 {
				exec64at2048 = med
			}
		}
		s1.AddRow(row1...)
		s2.AddRow(row2...)
	}
	r.Note("Execution time decreases with the memory allocation (%.0f ms at 128 MB vs %.0f ms at 2048 MB for 64 clients) — larger sandboxes get more I/O bandwidth.",
		exec64at128, exec64at2048)
	r.Note("At one invocation per minute the daily allocation time is <0.2%% of the day; monitoring costs a fraction of a VM (paper: 0.1-0.25 cents/day).")
	return r
}
