package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/txn"
)

func init() {
	register(Experiment{
		ID:    "telemetry",
		Title: "Virtual-time telemetry: per-stage latency breakdown of the write pipeline",
		Ref:   "beyond the paper (ROADMAP: metrics stream)",
		Run:   runTelemetry,
	})
}

// telemetryStages is the telescoping stage chain in pipeline order; every
// request's stage spans partition [submit, respond] exactly, so the
// per-stage means in the tables sum to the end-to-end mean.
var telemetryStages = []string{
	obs.StageSubmit, obs.StageQueue, obs.StageValidate, obs.StageRetry,
	obs.StageLeaderQ, obs.StageCommit, obs.StageFlush,
	obs.StageTxnPrep, obs.StageTxnCommit, obs.StageTxnApply,
	obs.StageRespond,
}

// telemetryRun is one traced workload's span analysis.
type telemetryRun struct {
	traces   int                      // distinct request trace trees
	spans    int                      // closed spans, including children
	open     int                      // spans left open (must be 0)
	errs     int                      // tracer invariant violations (must be 0)
	perStage map[string]*stats.Sample // stage-span durations, ms
	e2e      *stats.Sample            // root-span durations, ms
	sumOK    bool                     // every trace: Σ stage durations == root duration
	chromeOK bool                     // exported Chrome trace parses with expected stages
}

// stageMean returns the mean duration of one stage in ms, or 0 when the
// workload never entered that stage.
func (r telemetryRun) stageMean(stage string) float64 {
	s := r.perStage[stage]
	if s == nil || s.N() == 0 {
		return 0
	}
	return s.Mean()
}

// analyzeSpans derives the run's tables from the tracer's closed spans.
func analyzeSpans(tr *obs.Tracer, wantStages []string) telemetryRun {
	res := telemetryRun{
		perStage: map[string]*stats.Sample{},
		e2e:      stats.NewSample(256),
		open:     tr.OpenCount(),
		errs:     len(tr.Errors()),
		sumOK:    true,
	}
	stageSet := map[string]bool{}
	for _, s := range telemetryStages {
		stageSet[s] = true
	}
	spans := tr.Spans()
	res.spans = len(spans)
	type tree struct {
		root     obs.Span
		hasRoot  bool
		stageSum sim.Time
	}
	trees := map[int64]*tree{}
	for _, sp := range spans {
		if sp.Trace == 0 {
			continue // pipeline-level span (batched flush), not a request leg
		}
		t := trees[sp.Trace]
		if t == nil {
			t = &tree{}
			trees[sp.Trace] = t
		}
		switch {
		case sp.Parent == 0:
			t.root, t.hasRoot = sp, true
			res.e2e.AddDur(sp.End - sp.Start)
		case stageSet[sp.Name]:
			t.stageSum += sp.End - sp.Start
			s := res.perStage[sp.Name]
			if s == nil {
				s = stats.NewSample(256)
				res.perStage[sp.Name] = s
			}
			s.AddDur(sp.End - sp.Start)
		}
	}
	res.traces = len(trees)
	for _, t := range trees {
		if !t.hasRoot || t.stageSum != t.root.End-t.root.Start {
			res.sumOK = false
		}
	}

	// The exporter round trip: the Chrome trace-event file must parse and
	// name every stage the workload was expected to pass through.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err == nil {
		if names, err := obs.ValidateChromeTrace(buf.Bytes()); err == nil {
			res.chromeOK = true
			for _, want := range wantStages {
				if names[want] == 0 {
					res.chromeOK = false
				}
			}
		}
	}
	return res
}

// runTelemetryWorkload drives sessions clients with telemetry on and
// returns the span analysis. Modes: "plain" (sequential set_data),
// "txn" (cross-shard multi per op), "reshard" (a live /hot split lands
// mid-workload).
func runTelemetryWorkload(seed int64, cfg core.Config, mode string, sessions, ops int) telemetryRun {
	cfg.Telemetry = true
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	var res telemetryRun
	wantStages := []string{
		obs.StageSubmit, obs.StageQueue, obs.StageValidate, obs.StageRespond,
	}
	if mode == "txn" {
		// Cross-shard multis run 2PC: prepare/commit/apply replace the
		// plain pipeline's leader-queue/commit/flush legs entirely.
		wantStages = append(wantStages,
			obs.StageTxnPrep, obs.StageTxnCommit, obs.StageTxnApply)
	} else {
		wantStages = append(wantStages,
			obs.StageLeaderQ, obs.StageCommit, obs.StageFlush)
	}
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		paths := uniformPaths(sessions)
		if mode == "reshard" {
			if _, err := setup.Create("/hot", nil, 0); err != nil {
				return
			}
			paths = hotPaths(sessions)
		}
		for _, p := range paths {
			if _, err := setup.Create(p, nil, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		// Discard the setup phase's spans so the tables only describe the
		// measured workload.
		d.ResetMetrics()
		payload := bytes.Repeat([]byte("x"), 128)
		done := sim.NewWaitGroup(k)
		for i := range clients {
			i := i
			done.Add(1)
			k.Go(fmt.Sprintf("writer-%d", i), func() {
				defer done.Done()
				for op := 0; op < ops; op++ {
					switch mode {
					case "txn":
						// Adjacent uniform paths live on different shards,
						// so every multi crosses shards and runs 2PC.
						partner := paths[(i+1)%len(paths)]
						_, _ = clients[i].Multi(
							txn.SetData(paths[i], payload, -1),
							txn.SetData(partner, payload, -1))
					default:
						_, _ = clients[i].SetData(paths[i], payload, -1)
					}
				}
			})
		}
		if mode == "reshard" {
			// Land the split while writers are in flight, so some traces
			// carry follower.retry hops from re-routed messages.
			k.Go("splitter", func() {
				k.Sleep(5 * sim.Ms(1))
				_ = d.SplitSubtree("/hot", 2)
			})
		}
		done.Wait()
		for _, c := range clients {
			c.Close()
		}
		setup.Close()
		res = analyzeSpans(d.Obs.Tracer, wantStages)
	})
	k.Run()
	k.Shutdown()
	return res
}

// stageBreakdownRow renders one run as the shared per-stage columns.
func stageBreakdownRow(label string, run telemetryRun) []string {
	queueing := run.stageMean(obs.StageQueue) + run.stageMean(obs.StageLeaderQ)
	row := []string{
		label,
		fmt.Sprintf("%d", run.traces),
		f2(run.stageMean(obs.StageSubmit)),
		f2(queueing),
		f2(run.stageMean(obs.StageValidate) + run.stageMean(obs.StageRetry)),
		f2(run.stageMean(obs.StageCommit)),
		f2(run.stageMean(obs.StageFlush)),
		f2(run.stageMean(obs.StageRespond)),
		f2(run.e2e.Percentile(50)),
		check(run.sumOK),
		check(run.chromeOK),
	}
	return row
}

func check(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func runTelemetry(cfg RunConfig) *Report {
	r := &Report{
		ID:    "telemetry",
		Title: "Per-stage latency breakdown from causal request traces",
		Ref:   "beyond the paper (ROADMAP: metrics stream)",
	}
	sessions := 8
	ops := cfg.reps(6, 20)
	cols := []string{"configuration", "reqs", "submit", "queueing", "validate",
		"commit", "flush", "respond", "e2e p50", "Σ=e2e", "chrome"}

	s := r.AddSection(
		fmt.Sprintf("Stage means (ms) vs shard count (plain writes; %d sessions × %d ops of 128 B)", sessions, ops),
		cols)
	for _, n := range []int{1, 2, 4} {
		run := runTelemetryWorkload(cfg.Seed+int64(n), core.Config{WriteShards: n}, "plain", sessions, ops)
		s.AddRow(stageBreakdownRow(fmt.Sprintf("%d shards", n), run)...)
	}

	s2 := r.AddSection(
		fmt.Sprintf("Stage means (ms) vs batch size (BatchWrites, 2 shards; %d sessions × %d ops)", sessions, ops),
		cols)
	for _, mb := range []int{1, 4, 16} {
		run := runTelemetryWorkload(cfg.Seed+100+int64(mb),
			core.Config{WriteShards: 2, BatchWrites: true, MaxBatch: mb}, "plain", sessions, ops)
		s2.AddRow(stageBreakdownRow(fmt.Sprintf("max batch %d", mb), run)...)
	}

	s3 := r.AddSection(
		"Request classes: span-tree validity (one connected tree per request; stage sums equal end-to-end latency)",
		[]string{"class", "reqs", "spans", "open", "violations", "Σ=e2e", "chrome"})
	classes := []struct {
		label string
		cfg   core.Config
		mode  string
	}{
		{"plain", core.Config{WriteShards: 2}, "plain"},
		{"batched", core.Config{WriteShards: 2, BatchWrites: true}, "plain"},
		{"cross-shard txn", core.Config{WriteShards: 4, EnableTxn: true}, "txn"},
		{"mid-reshard", core.Config{WriteShards: 2, DynamicShards: true}, "reshard"},
	}
	for i, c := range classes {
		run := runTelemetryWorkload(cfg.Seed+200+int64(i), c.cfg, c.mode, sessions, ops)
		s3.AddRow(c.label,
			fmt.Sprintf("%d", run.traces), fmt.Sprintf("%d", run.spans),
			fmt.Sprintf("%d", run.open), fmt.Sprintf("%d", run.errs),
			check(run.sumOK), check(run.chromeOK))
	}

	r.Note("Spans live in virtual time and record pure bookkeeping, so enabling telemetry does not move a single virtual timestamp — the golden single-shard trace stays byte-identical.")
	r.Note("Queueing covers both the client-side session FIFO and the leader queue wait; cross-shard multis replace commit/flush with the 2PC stages (prepare, commit decision, apply), which the class table validates via the exported Chrome trace.")
	return r
}
