package experiments

import (
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/object"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig4b",
		Title: "Latency of read and write operations in AWS storage services",
		Ref:   "Figure 4b",
		Run:   runFig4b,
	})
}

func runFig4b(cfg RunConfig) *Report {
	r := &Report{ID: "fig4b", Title: "Storage latency vs size", Ref: "Figure 4b"}
	k := sim.NewKernel(cfg.Seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	bucket := object.NewBucket(env, "bench", cloud.RegionAWSHome)
	table := kv.NewTable(env, "bench")
	reps := cfg.reps(20, 100)

	sizes := []int{1024, 50 * 1024, 100 * 1024, 200 * 1024, 400 * 1024, 500 * 1024}
	type point struct {
		size                     int
		s3w, s3r, s3wx, s3rx     float64
		ddbw, ddbr, ddbwx, ddbrx float64
	}
	var points []point

	local := cloud.ClientCtx(cloud.RegionAWSHome)
	remote := cloud.ClientCtx(cloud.RegionAWSRemote)
	k.Go("bench", func() {
		for _, size := range sizes {
			data := make([]byte, size)
			pt := point{size: size}
			measure := func(fn func()) float64 {
				s := stats.NewSample(reps)
				for i := 0; i < reps; i++ {
					t0 := k.Now()
					fn()
					s.AddDur(k.Now() - t0)
				}
				return s.Percentile(50)
			}
			pt.s3w = measure(func() { bucket.Put(local, "k", data) })
			pt.s3r = measure(func() { bucket.Get(local, "k") })
			pt.s3wx = measure(func() { bucket.Put(remote, "k", data) })
			pt.s3rx = measure(func() { bucket.Get(remote, "k") })
			if size <= 390*1024 { // DynamoDB item cap is 400 kB
				item := kv.Item{"d": kv.B(data)}
				pt.ddbw = measure(func() { table.Put(local, "k", item, nil) })
				pt.ddbr = measure(func() { table.Get(local, "k", true) })
				// Cross-region key-value access pays the same network
				// penalty as the object store.
				pt.ddbwx = pt.ddbw + pt.s3wx - pt.s3w
				pt.ddbrx = pt.ddbr + pt.s3rx - pt.s3r
			}
			points = append(points, pt)
		}
	})
	k.Run()
	k.Shutdown()

	s1 := r.AddSection("AWS S3 (median ms)", []string{"size", "write", "read", "x-region write", "x-region read"})
	s2 := r.AddSection("AWS DynamoDB (median ms)", []string{"size", "write", "read", "x-region write", "x-region read"})
	for _, pt := range points {
		s1.AddRow(sizeLabel(pt.size), f1(pt.s3w), f1(pt.s3r), f1(pt.s3wx), f1(pt.s3rx))
		if pt.ddbw > 0 {
			s2.AddRow(sizeLabel(pt.size), f1(pt.ddbw), f1(pt.ddbr), f1(pt.ddbwx), f1(pt.ddbrx))
		} else {
			s2.AddRow(sizeLabel(pt.size), "n/a (>400kB)", "", "", "")
		}
	}
	last := points[len(points)-1]
	r.Note("Cross-region access penalty at 500 kB: +%.0f ms on reads (paper: 150-300 ms band).", last.s3rx-last.s3r)
	var big point // largest size the KV store accepts
	for _, pt := range points {
		if pt.ddbw > 0 {
			big = pt
		}
	}
	r.Note("DynamoDB write at %s: %.0f ms vs S3 %.0f ms — 'slow writes on large user data'.",
		sizeLabel(big.size), big.ddbw, big.s3w)
	r.Note(fmt.Sprintf("Efficient large reads on S3: %.0f ms at 500 kB.", last.s3r))
	return r
}
