package experiments

import (
	"fmt"
	"sort"

	"faaskeeper/internal/chaos"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Fault-injection matrix: seeded chaos schedules with history checking",
		Ref:   "beyond the paper (ROADMAP: chaos harness with linearizability checking)",
		Run:   runChaos,
	})
}

// runChaos drives the chaos workload across every deployment config of
// the matrix, once fault-free (control) and once under the standing fault
// schedule, and reports event counts, injected-fault totals, and checker
// verdicts. A violation row includes the replay command — the experiment
// is the human-readable face of the nightly CI matrix.
func runChaos(cfg RunConfig) *Report {
	r := &Report{ID: "chaos", Title: "Fault-injection matrix: seeded chaos schedules with history checking",
		Ref: "beyond the paper (ROADMAP: chaos harness with linearizability checking)"}
	seeds := cfg.reps(1, 3)

	sec := r.AddSection("chaos matrix (per config x seed)", []string{
		"config", "seed", "faults", "events", "injected", "virtual time", "violations"})
	total, failed := 0, 0
	for _, config := range chaos.Configs() {
		for i := 0; i < seeds; i++ {
			seed := cfg.Seed + int64(i)*1000
			for _, arm := range []struct {
				name   string
				faults chaos.Faults
			}{
				{"off", chaos.Quiet()},
				{"default", chaos.DefaultFaults()},
			} {
				s := chaos.Scenario{Seed: seed, Config: config, Faults: arm.faults}
				if cfg.Quick {
					s.Clients = 3
					s.OpsPerClient = 10
				}
				res := chaos.Run(s)
				total++
				injected := int64(0)
				for _, n := range res.FaultCounts {
					injected += n
				}
				verdict := "clean"
				if res.Failed() {
					failed++
					verdict = fmt.Sprintf("%d VIOLATIONS", len(res.Violations))
				}
				sec.AddRow(config, fmt.Sprint(seed), arm.name,
					fmt.Sprint(res.History.Len()), fmt.Sprint(injected),
					res.VirtualTime.String(), verdict)
				if res.Failed() {
					for _, v := range res.Violations {
						r.Note("%s seed %d: %s", config, seed, v)
					}
					r.Note("replay: %s", res.ReplayCmd())
				}
			}
		}
	}

	// Fault-kind totals for one representative heavy run, so the report
	// shows the schedule actually exercises every fault class.
	res := chaos.Run(chaos.Scenario{Seed: cfg.Seed, Config: "txn", Faults: chaos.DefaultFaults()})
	kinds := make([]string, 0, len(res.FaultCounts))
	for k := range res.FaultCounts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fsec := r.AddSection(fmt.Sprintf("injected faults by kind (txn config, seed %d)", cfg.Seed),
		[]string{"kind", "count"})
	for _, k := range kinds {
		fsec.AddRow(k, fmt.Sprint(res.FaultCounts[k]))
	}

	r.Note("%d/%d scenario runs clean; violations (if any) list a deterministic replay command", total-failed, total)
	r.Note("invariants checked: value provenance, per-session mzxid monotonicity, write-ack txid order, read-your-writes, multi() atomicity (reverse-order probe), watch ordering (Z4), lost watches, ephemeral reaping, tree integrity")
	return r
}
