package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "sharding",
		Title: "Write scaling with a sharded leader pipeline",
		Ref:   "beyond the paper (ROADMAP: sharding)",
		Run:   runSharding,
	})
}

// shardCounts is the sweep of the write-scaling experiment.
var shardCounts = []int{1, 2, 4, 8}

// shardingRun is one (shard count, workload) measurement.
type shardingRun struct {
	writes     int
	elapsedSec float64
	lat        *stats.Sample
	cost       float64 // dollars across the measured phase
	ok         bool
}

func (r shardingRun) throughput() float64 {
	if r.elapsedSec <= 0 {
		return 0
	}
	return float64(r.writes) / r.elapsedSec
}

// uniformPaths picks one top-level subtree per session such that the
// subtrees spread evenly over 8 shards (and therefore also over 2 and 4,
// since the shard is hash mod n). This is the balanced multi-tenant
// workload sharding is designed for: many independent subtrees.
func uniformPaths(sessions int) []string {
	paths := make([]string, 0, sessions)
	next := 0
	for i := 0; i < sessions; i++ {
		want := i % 8
		for {
			p := fmt.Sprintf("/t%d", next)
			next++
			if core.ShardOf(p, 8) == want {
				paths = append(paths, p)
				break
			}
		}
	}
	return paths
}

// hotPaths puts every session inside one subtree, so every write lands on
// the same shard regardless of the shard count.
func hotPaths(sessions int) []string {
	paths := make([]string, sessions)
	for i := range paths {
		paths[i] = fmt.Sprintf("/hot/n%d", i)
	}
	return paths
}

// runShardingWorkload drives sessions concurrent clients, each issuing ops
// sequential set_data calls against its own node, and measures the
// client-observed latency distribution plus aggregate throughput in
// virtual time.
func runShardingWorkload(seed int64, shards, sessions, ops int, hot bool) shardingRun {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{WriteShards: shards})
	res := shardingRun{writes: sessions * ops, lat: stats.NewSample(sessions * ops)}
	var paths []string
	if hot {
		paths = hotPaths(sessions)
	} else {
		paths = uniformPaths(sessions)
	}
	var t0, t1 sim.Time
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if hot {
			if _, err := setup.Create("/hot", nil, 0); err != nil {
				return
			}
		}
		for _, p := range paths {
			if _, err := setup.Create(p, nil, 0); err != nil {
				return
			}
		}
		// Warm the follower and leader sandboxes before measuring.
		for i := 0; i < 3; i++ {
			if _, err := setup.SetData(paths[0], []byte("warm"), -1); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		d.ResetMetrics()
		payload := bytes.Repeat([]byte("x"), 128)
		done := sim.NewWaitGroup(k)
		t0 = k.Now()
		for i := range clients {
			i := i
			done.Add(1)
			k.Go(fmt.Sprintf("writer-%d", i), func() {
				defer done.Done()
				for op := 0; op < ops; op++ {
					ts := k.Now()
					if _, err := clients[i].SetData(paths[i], payload, -1); err != nil {
						return
					}
					res.lat.AddDur(k.Now() - ts)
				}
			})
		}
		done.Wait()
		t1 = k.Now()
		res.cost = d.Env.Meter.Total()
		for _, c := range clients {
			c.Close()
		}
		setup.Close()
		res.ok = res.lat.N() == res.writes
	})
	k.Run()
	k.Shutdown()
	res.elapsedSec = (t1 - t0).Seconds()
	return res
}

func runSharding(cfg RunConfig) *Report {
	r := &Report{
		ID:    "sharding",
		Title: "Sharded leader pipeline: write throughput vs shard count",
		Ref:   "beyond the paper (ROADMAP: sharding)",
	}
	sessions := 16
	ops := cfg.reps(8, 25)
	if !cfg.Quick {
		sessions = 24
	}
	for _, hot := range []bool{false, true} {
		label := "Uniform workload"
		note := "one subtree per session, spread over shards"
		if hot {
			label = "Hot-subtree workload"
			note = "every session inside /hot: all writes on one shard"
		}
		s := r.AddSection(
			fmt.Sprintf("%s (%s; %d sessions × %d writes of 128 B)", label, note, sessions, ops),
			[]string{"shards", "writes/s", "speedup", "p50 ms", "p99 ms", "$/1k writes"})
		var base float64
		for _, n := range shardCounts {
			run := runShardingWorkload(cfg.Seed+int64(n)+boolSeed(hot), n, sessions, ops, hot)
			if !run.ok {
				s.AddRow(fmt.Sprintf("%d", n), "-", "-", "-", "-", "-")
				continue
			}
			tput := run.throughput()
			if n == 1 {
				base = tput
			}
			speedup := "-"
			if base > 0 {
				speedup = fmt.Sprintf("%.2fx", tput/base)
			}
			p50, p99 := latCells(run.lat, f1)
			s.AddRow(fmt.Sprintf("%d", n),
				f1(tput), speedup, p50, p99,
				dollars(run.cost/float64(run.writes)*1000))
		}
	}
	r.Note("Routing hashes the top-level path segment, so a parent and its children always share a shard; the per-shard FIFO order preserves every node-local ZooKeeper invariant.")
	r.Note("The uniform workload scales with the shard count (the single ordered queue and its serialized leader are the bottleneck, Section 5.2.2); the hot subtree pins all writes to one shard and gains nothing — partitioning only helps workloads that spread across subtrees.")
	return r
}
