package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "batching",
		Title: "Batching distributor: folded user-store writes, leader time, and cost",
		Ref:   "beyond the paper (ROADMAP: distributor batching)",
		Run:   runBatching,
	})
}

// batchingPayloadB is the node size of the batching workloads.
const batchingPayloadB = 128

// hotNodes is how many nodes the hot workload's sessions pile onto: a
// tiny set keeps batches folding deeply while spreading the follower-side
// node-lock contention that would otherwise dominate the cost column.
const hotNodes = 2

// batchingRun is one (configuration, workload) measurement.
type batchingRun struct {
	writes      int
	elapsedSec  float64
	lat         *stats.Sample
	storeWrites int64   // user-store write calls (obj.write ops)
	leaderUpd   float64 // total ms spent in the leader's distribution phase
	cost        float64 // dollars across the measured phase
	viol        int     // per-session ordering violations observed
	ok          bool
}

func (r batchingRun) throughput() float64 {
	if r.elapsedSec <= 0 {
		return 0
	}
	return float64(r.writes) / r.elapsedSec
}

// batchingWorkload names the three traffic shapes: independent nodes
// (nothing to fold), one shared hot node (set→set folding), and
// create/delete churn under one shared parent (parent-RMW coalescing).
type batchingWorkload string

const (
	wlUniform batchingWorkload = "uniform"
	wlHotNode batchingWorkload = "hotnode"
	wlChurn   batchingWorkload = "churn"
)

// runBatchingWorkload drives sessions concurrent clients for ops
// operations each and measures client latency, aggregate throughput,
// user-store write calls, leader distribution time, and the per-session
// ordering invariants (each response's own mzxid/version strictly
// increasing — a folded write handing out the batch's final stat would
// trip them).
func runBatchingWorkload(seed int64, cfg core.Config, wl batchingWorkload, sessions, ops int) batchingRun {
	cfg.CollectPhases = true
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	res := batchingRun{writes: sessions * ops, lat: stats.NewSample(sessions * ops)}
	var t0, t1 sim.Time
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		paths := make([]string, sessions)
		switch wl {
		case wlUniform:
			spread := uniformPaths(sessions)
			for i, p := range spread {
				if _, err := setup.Create(p, nil, 0); err != nil {
					return
				}
				paths[i] = p
			}
		case wlHotNode:
			if _, err := setup.Create("/hot", nil, 0); err != nil {
				return
			}
			for n := 0; n < hotNodes; n++ {
				if _, err := setup.Create(fmt.Sprintf("/hot/n%d", n), nil, 0); err != nil {
					return
				}
			}
			for i := range paths {
				paths[i] = fmt.Sprintf("/hot/n%d", i%hotNodes)
			}
		case wlChurn:
			if _, err := setup.Create("/app", nil, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		d.ResetMetrics()
		payload := bytes.Repeat([]byte("x"), batchingPayloadB)
		viol := make([]int, sessions)
		done := sim.NewWaitGroup(k)
		t0 = k.Now()
		for i := range clients {
			i := i
			done.Add(1)
			k.Go(fmt.Sprintf("writer-%d", i), func() {
				defer done.Done()
				var lastMzxid int64
				var lastVersion int32 = -1
				for op := 0; op < ops; op++ {
					ts := k.Now()
					switch wl {
					case wlChurn:
						p := fmt.Sprintf("/app/c%d_%d", i, op)
						if _, err := clients[i].Create(p, payload, 0); err != nil {
							viol[i]++
							continue
						}
						if err := clients[i].Delete(p, -1); err != nil {
							viol[i]++
						}
					default:
						st, err := clients[i].SetData(paths[i], payload, -1)
						if err != nil {
							viol[i]++
							continue
						}
						// Each op must carry its own stamps: strictly newer
						// than this session's previous write to the node.
						if st.Mzxid <= lastMzxid || st.Version <= lastVersion {
							viol[i]++
						}
						lastMzxid, lastVersion = st.Mzxid, st.Version
					}
					res.lat.AddDur(k.Now() - ts)
				}
			})
		}
		done.Wait()
		t1 = k.Now()
		res.cost = d.Env.Meter.Total()
		res.storeWrites = d.Env.Meter.Count("obj.write")
		if s := d.Phase("leader.update"); s != nil {
			res.leaderUpd = s.Mean() * float64(s.N())
		}
		for i, c := range clients {
			res.viol += viol[i]
			c.Close()
		}
		setup.Close()
		res.ok = res.lat.N() == res.writes
	})
	k.Run()
	k.Shutdown()
	res.elapsedSec = (t1 - t0).Seconds()
	return res
}

func runBatching(cfg RunConfig) *Report {
	r := &Report{
		ID:    "batching",
		Title: "Batching distributor: folded user-store writes, leader time, and cost",
		Ref:   "beyond the paper (ROADMAP: distributor batching)",
	}
	sessions := 12
	ops := cfg.reps(8, 30)
	if !cfg.Quick {
		sessions = 16
	}

	type variant struct {
		label string
		cc    core.Config
	}
	workloads := []struct {
		wl       batchingWorkload
		caption  string
		variants []variant
	}{
		{wlUniform,
			fmt.Sprintf("Uniform workload (one node per session; %d sessions × %d set_data of %d B)", sessions, ops, batchingPayloadB),
			[]variant{
				{"per-message (paper)", core.Config{}},
				{"batched distributor", core.Config{BatchWrites: true}},
				{"batched + 4 shards", core.Config{BatchWrites: true, WriteShards: 4}},
			}},
		{wlHotNode,
			fmt.Sprintf("Hot-node workload (%d sessions piled onto %d nodes; %d set_data each)", sessions, hotNodes, ops),
			[]variant{
				{"per-message (paper)", core.Config{}},
				{"batched distributor", core.Config{BatchWrites: true}},
			}},
		{wlChurn,
			fmt.Sprintf("Hot-parent churn (create+delete under one parent; %d sessions × %d pairs)", sessions, ops),
			[]variant{
				{"per-message (paper)", core.Config{}},
				{"batched distributor", core.Config{BatchWrites: true}},
			}},
	}

	m := costmodel.NewAWSModel(2048)
	var hotOff, hotOn batchingRun
	for wi, w := range workloads {
		s := r.AddSection(w.caption,
			[]string{"configuration", "writes/s", "speedup", "store wr/op", "leader upd ms/op", "p50 ms", "p99 ms", "$/1M writes", "viol"})
		var base float64
		for vi, v := range w.variants {
			run := runBatchingWorkload(cfg.Seed+int64(wi*10+vi), v.cc, w.wl, sessions, ops)
			if !run.ok {
				s.AddRow(v.label, "-", "-", "-", "-", "-", "-", "-", "-")
				continue
			}
			tput := run.throughput()
			if vi == 0 {
				base = tput
			}
			speedup := "-"
			if base > 0 {
				speedup = fmt.Sprintf("%.2fx", tput/base)
			}
			if w.wl == wlHotNode {
				if vi == 0 {
					hotOff = run
				} else {
					hotOn = run
				}
			}
			p50, p99 := latCells(run.lat, f1)
			s.AddRow(v.label,
				f1(tput), speedup,
				f2(float64(run.storeWrites)/float64(run.writes)),
				f2(run.leaderUpd/float64(run.writes)),
				p50, p99,
				dollars(run.cost/float64(run.writes)*1e6),
				fmt.Sprintf("%d", run.viol))
		}
	}

	if hotOff.ok && hotOn.ok && hotOn.storeWrites > 0 {
		r.Note("Hot node: the distributor folds %d queued writes into %d user-store writes (%.1fx fewer calls) at zero ordering violations — every response still carries its own txid and version.",
			hotOff.storeWrites, hotOn.storeWrites,
			float64(hotOff.storeWrites)/float64(hotOn.storeWrites))
	}
	r.Note("Uniform traffic has nothing to fold (distinct nodes per batch), so batching only trims the per-batch overheads; the wins concentrate on hot nodes (set→set folding) and shared parents (one child-list RMW per batch instead of one per create/delete).")
	r.Note("Cost model: at a full batch of 10 folded to one store write, the analytic cost drops from %s to %s per 1M writes (%.0f%% saved); batching still saves 10%% of the per-write dollars at any fold ratio below %.1f.",
		dollars(m.WriteCost(1024, false)*1e6), dollars(m.BatchedWriteCost(10, 1, 1024, false)*1e6),
		m.BatchWriteSavings(10, 1, 1024, false)*100,
		m.BatchFoldBreakEven(10, 1024, false, 0.10))
	return r
}
