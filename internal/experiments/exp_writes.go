package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/zk"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Write operations in FaaSKeeper and ZooKeeper",
		Ref:   "Figure 9",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Time distribution of FaaSKeeper functions",
		Ref:   "Figure 10",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "tab3",
		Title: "Variability of function performance (2048 MB)",
		Ref:   "Table 3",
		Run:   runTab3,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "FaaSKeeper writes with hybrid storage",
		Ref:   "Figure 11",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "FaaSKeeper writes on Google Cloud",
		Ref:   "Figure 12",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "sec532x",
		Title: "Resource-configuration ablations: ARM Lambda, reduced-vCPU GCP",
		Ref:   "Section 5.3.2 (Resource Configuration)",
		Run:   runSec532x,
	})
}

// writeRun drives reps set_data operations of each size against a fresh
// deployment and returns the client-observed medians plus the deployment
// for phase/meter inspection.
type writeRun struct {
	d       *core.Deployment
	total   map[int]*stats.Sample // size -> client write latency
	success bool
}

func runWrites(seed int64, cfg core.Config, sizes []int, reps int) *writeRun {
	k := sim.NewKernel(seed)
	cfg.CollectPhases = true
	d := core.NewDeployment(k, cfg)
	res := &writeRun{d: d, total: map[int]*stats.Sample{}}
	k.Go("bench", func() {
		c, err := fkclient.Connect(d, "bench", cfg.Profile.Home)
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := c.Create("/bench", nil, 0); err != nil {
			return
		}
		// Warm both function sandboxes before measuring.
		for i := 0; i < 3; i++ {
			if _, err := c.SetData("/bench", []byte("warm"), -1); err != nil {
				return
			}
		}
		d.ResetMetrics()
		for _, size := range sizes {
			payload := bytes.Repeat([]byte("x"), size)
			sample := stats.NewSample(reps)
			for rep := 0; rep < reps; rep++ {
				t0 := k.Now()
				if _, err := c.SetData("/bench", payload, -1); err != nil {
					return
				}
				sample.AddDur(k.Now() - t0)
			}
			res.total[size] = sample
		}
		res.success = true
	})
	k.Run()
	k.Shutdown()
	return res
}

func zkWriteMedian(seed int64, profile *cloud.Profile, sizes []int, reps int) map[int]float64 {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, profile)
	ens := zk.NewEnsemble(env, zk.Config{Servers: 3})
	out := map[int]float64{}
	k.Go("bench", func() {
		c, err := zk.Connect(ens, 0)
		if err != nil {
			return
		}
		defer c.Close()
		c.Create("/bench", nil, 0)
		for _, size := range sizes {
			payload := bytes.Repeat([]byte("x"), size)
			sample := stats.NewSample(reps)
			for rep := 0; rep < reps; rep++ {
				t0 := k.Now()
				if _, err := c.SetData("/bench", payload, -1); err != nil {
					return
				}
				sample.AddDur(k.Now() - t0)
			}
			out[size] = sample.Percentile(50)
		}
	})
	k.RunFor(2 * 60 * sim.Ms(60000))
	k.Shutdown()
	return out
}

var fig9Sizes = []int{4, 1024, 64 * 1024, 128 * 1024, 250 * 1024}

func runFig9(cfg RunConfig) *Report {
	r := &Report{ID: "fig9", Title: "Write latency and cost", Ref: "Figure 9"}
	reps := cfg.reps(25, 100)
	sizes := fig9Sizes
	if cfg.Quick {
		sizes = []int{4, 64 * 1024, 250 * 1024}
	}
	aws := cloud.AWSProfile()

	mems := []int{512, 1024, 2048}
	runs := map[int]*writeRun{}
	for _, mem := range mems {
		runs[mem] = runWrites(cfg.Seed+int64(mem), core.Config{
			Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
			FollowerMemMB: mem, LeaderMemMB: mem,
		}, sizes, reps)
	}
	zkMed := zkWriteMedian(cfg.Seed+9, aws, sizes, reps)

	s1 := r.AddSection("set_data median ms (FaaSKeeper S3 user store vs ZooKeeper)",
		[]string{"size", "FK 512MB", "FK 1024MB", "FK 2048MB", "ZooKeeper"})
	for _, size := range sizes {
		row := []string{sizeLabel(size)}
		for _, mem := range mems {
			row = append(row, f1(runs[mem].total[size].Percentile(50)))
		}
		row = append(row, f1(zkMed[size]))
		s1.AddRow(row...)
	}

	s2 := r.AddSection("Function medians (ms)",
		[]string{"function", "512MB", "1024MB", "2048MB"})
	for _, fn := range []string{"follower.total", "leader.total"} {
		row := []string{fn}
		for _, mem := range mems {
			if p := runs[mem].d.Phase(fn); p != nil {
				row = append(row, f1(p.Percentile(50)))
			} else {
				row = append(row, "-")
			}
		}
		s2.AddRow(row...)
	}

	// Cost distribution of 100,000 requests per configuration.
	s3sec := r.AddSection("Cost split of 100k writes (percent of total; $ extrapolated)",
		[]string{"config", "Queue", "SysStore", "UserStore", "Follower", "Leader", "$/100k"})
	costReps := cfg.reps(20, 60)
	for _, size := range []int{4, 64 * 1024, 250 * 1024} {
		for _, mem := range []int{512, 2048} {
			run := runWrites(cfg.Seed+int64(size+mem), core.Config{
				Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
				FollowerMemMB: mem, LeaderMemMB: mem,
			}, []int{size}, costReps)
			label := fmt.Sprintf("%s @%dMB", sizeLabel(size), mem)
			s3sec.AddRow(costSplitRow(label, run.d, costReps)...)
		}
	}
	r.Note("ZooKeeper writes stay in the low milliseconds; FaaSKeeper pays queue and storage overheads (paper: ~100-200 ms).")
	r.Note("Storage operations are responsible for 40-80%% of the write cost (Section 5.3.2).")
	return r
}

// costSplitRow renders the meter as the paper's stacked-cost bars.
func costSplitRow(label string, d *core.Deployment, ops int) []string {
	m := d.Env.Meter
	queueC := m.Cost("queue.msg")
	sysC := m.Cost("syskv.read") + m.Cost("syskv.write")
	userC := m.Cost("obj.read") + m.Cost("obj.write") + m.Cost("userkv.read") + m.Cost("userkv.write")
	folC := m.Cost("faas." + core.FnFollower)
	leadC := m.Cost("faas." + core.FnLeader)
	total := queueC + sysC + userC + folC + leadC
	if total == 0 {
		return []string{label, "-", "-", "-", "-", "-", "-"}
	}
	pct := func(c float64) string { return fmt.Sprintf("%.0f%%", c/total*100) }
	per100k := total / float64(ops) * 100_000
	return []string{label, pct(queueC), pct(sysC), pct(userC), pct(folC), pct(leadC), dollars(per100k)}
}

var followerPhases = []string{"follower.lock", "follower.push", "follower.commit"}
var leaderPhases = []string{"leader.get", "leader.update", "leader.watchquery", "leader.notify", "leader.pop"}

func runFig10(cfg RunConfig) *Report {
	r := &Report{ID: "fig10", Title: "Function time distribution", Ref: "Figure 10"}
	reps := cfg.reps(25, 100)
	for _, mem := range []int{512, 2048} {
		for _, size := range []int{4, 64 * 1024, 250 * 1024} {
			run := runWrites(cfg.Seed+int64(mem+size), core.Config{
				Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
				FollowerMemMB: mem, LeaderMemMB: mem,
			}, []int{size}, reps)
			s := r.AddSection(fmt.Sprintf("%s @ %d MB (median ms per phase)", sizeLabel(size), mem),
				[]string{"phase", "median", "share"})
			appendPhaseRows(s, run.d, "follower.total", followerPhases)
			appendPhaseRows(s, run.d, "leader.total", leaderPhases)
		}
	}
	r.Note("The follower is dominated by the queue push, the leader by the user-storage update; synchronization operations contribute little (Section 5.3.2 'Overhead').")
	return r
}

func appendPhaseRows(s *Section, d *core.Deployment, totalName string, phases []string) {
	tot := d.Phase(totalName)
	if tot == nil {
		return
	}
	total := tot.Percentile(50)
	s.AddRow(totalName, f1(total), "100%")
	accounted := 0.0
	for _, ph := range phases {
		if p := d.Phase(ph); p != nil {
			med := p.Percentile(50)
			accounted += med
			s.AddRow("  "+ph, f1(med), fmt.Sprintf("%.0f%%", med/total*100))
		}
	}
	if other := total - accounted; other > 0 {
		s.AddRow("  other", f1(other), fmt.Sprintf("%.0f%%", other/total*100))
	}
}

func runTab3(cfg RunConfig) *Report {
	r := &Report{ID: "tab3", Title: "Tail variability of function phases", Ref: "Table 3"}
	reps := cfg.reps(40, 200)
	for _, size := range []int{4, 250 * 1024} {
		run := runWrites(cfg.Seed+int64(size), core.Config{
			Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
			FollowerMemMB: 2048, LeaderMemMB: 2048,
		}, []int{size}, reps)
		s := r.AddSection(fmt.Sprintf("%s payload, 2048 MB (ms)", sizeLabel(size)),
			[]string{"Phase", "Min", "p50", "p90", "p95", "p99"})
		for _, ph := range []string{
			"follower.total", "follower.lock", "follower.push", "follower.commit",
			"leader.total", "leader.get", "leader.update", "leader.watchquery",
		} {
			if p := run.d.Phase(ph); p != nil {
				sum := p.Summarize()
				s.AddRow(ph, f2(sum.Min), f2(sum.P50), f2(sum.P90), f2(sum.P95), f2(sum.P99))
			}
		}
	}
	r.Note("Tail degradation concentrates in the queue push (follower) and the S3 node update (leader), matching the paper's Table 3.")
	return r
}

func runFig11(cfg RunConfig) *Report {
	r := &Report{ID: "fig11", Title: "Hybrid-storage writes", Ref: "Figure 11"}
	reps := cfg.reps(25, 100)
	sizes := []int{4, 128, 512, 1024, 4096}
	if cfg.Quick {
		sizes = []int{4, 512, 4096}
	}
	s1 := r.AddSection("set_data median ms (hybrid vs standard S3 user store)",
		[]string{"size", "hybrid 512MB", "hybrid 2048MB", "standard 512MB", "standard 2048MB"})
	type key struct {
		mem    int
		hybrid bool
	}
	meds := map[key]map[int]float64{}
	deps := map[key]*core.Deployment{}
	for _, mem := range []int{512, 2048} {
		for _, hybrid := range []bool{true, false} {
			storeKind := core.StoreObject
			if hybrid {
				storeKind = core.StoreHybrid
			}
			run := runWrites(cfg.Seed+int64(mem)+boolSeed(hybrid), core.Config{
				Profile: cloud.AWSProfile(), UserStore: storeKind,
				FollowerMemMB: mem, LeaderMemMB: mem,
			}, sizes, reps)
			med := map[int]float64{}
			for _, size := range sizes {
				med[size] = run.total[size].Percentile(50)
			}
			meds[key{mem, hybrid}] = med
			deps[key{mem, hybrid}] = run.d
		}
	}
	for _, size := range sizes {
		s1.AddRow(sizeLabel(size),
			f1(meds[key{512, true}][size]), f1(meds[key{2048, true}][size]),
			f1(meds[key{512, false}][size]), f1(meds[key{2048, false}][size]))
	}
	s2 := r.AddSection("Cost split per configuration (all sizes pooled)",
		[]string{"config", "Queue", "SysStore", "UserStore", "Follower", "Leader", "$/100k"})
	for _, mem := range []int{512, 2048} {
		for _, hybrid := range []bool{true, false} {
			label := fmt.Sprintf("%dMB hybrid=%v", mem, hybrid)
			s2.AddRow(costSplitRow(label, deps[key{mem, hybrid}], reps*len(sizes))...)
		}
	}
	mid := sizes[len(sizes)/2]
	imp := 1 - meds[key{2048, true}][mid]/meds[key{2048, false}][mid]
	r.Note("Replacing S3 with DynamoDB for typical node sizes cuts total write time by %.0f%% (paper: 22-28%%).", imp*100)
	return r
}

func boolSeed(b bool) int64 {
	if b {
		return 7
	}
	return 0
}

func runFig12(cfg RunConfig) *Report {
	r := &Report{ID: "fig12", Title: "Writes on Google Cloud", Ref: "Figure 12"}
	reps := cfg.reps(25, 80)
	for _, mem := range []int{512, 2048} {
		for _, size := range []int{4, 64 * 1024, 250 * 1024} {
			run := runWrites(cfg.Seed+int64(mem+size), core.Config{
				Profile: cloud.GCPProfile(), UserStore: core.StoreObject,
				FollowerMemMB: mem, LeaderMemMB: mem,
			}, []int{size}, reps)
			s := r.AddSection(fmt.Sprintf("%s @ %d MB (median ms per phase)", sizeLabel(size), mem),
				[]string{"phase", "median", "share"})
			appendPhaseRows(s, run.d, "follower.total", followerPhases)
			appendPhaseRows(s, run.d, "leader.total", leaderPhases)
		}
	}
	awsRun := runWrites(cfg.Seed+1000, core.Config{
		Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
	}, []int{4}, reps)
	gcpRun := runWrites(cfg.Seed+1001, core.Config{
		Profile: cloud.GCPProfile(), UserStore: core.StoreObject,
	}, []int{4}, reps)
	r.Note("GCP writes are slower than AWS (%.0f vs %.0f ms median at 4 B): synchronization uses Datastore transactions instead of conditional updates (Section 5.3.2).",
		gcpRun.total[4].Percentile(50), awsRun.total[4].Percentile(50))
	r.Note("Hybrid storage does not pay off on GCP: Datastore reads cost more than object-store reads (Section 4.5).")
	return r
}

func runSec532x(cfg RunConfig) *Report {
	r := &Report{ID: "sec532x", Title: "Resource-configuration ablations", Ref: "Section 5.3.2"}
	reps := cfg.reps(25, 80)

	s1 := r.AddSection("AWS: ARM (Graviton) vs x86 at 2048 MB (median ms; faas $/100k writes)",
		[]string{"arch", "size", "follower", "leader", "follower $", "leader $"})
	for _, arch := range []faas.Arch{faas.X86, faas.ARM} {
		for _, size := range []int{4, 250 * 1024} {
			run := runWrites(cfg.Seed+int64(size)+boolSeed(arch == faas.ARM), core.Config{
				Profile: cloud.AWSProfile(), UserStore: core.StoreObject,
				Arch: arch,
			}, []int{size}, reps)
			fol, lead := "-", "-"
			if p := run.d.Phase("follower.total"); p != nil {
				fol = f1(p.Percentile(50))
			}
			if p := run.d.Phase("leader.total"); p != nil {
				lead = f1(p.Percentile(50))
			}
			m := run.d.Env.Meter
			scale := 100_000.0 / float64(reps)
			s1.AddRow(string(arch), sizeLabel(size), fol, lead,
				dollars(m.Cost("faas."+core.FnFollower)*scale),
				dollars(m.Cost("faas."+core.FnLeader)*scale))
		}
	}
	r.Note("ARM speeds up the follower slightly but slows the leader's object-store transfers (paper: up to 94%% slowdown); ARM cuts follower cost up to ~32%%.")

	s2 := r.AddSection("GCP: vCPU allocation at 512 MB (median write ms; faas $/100k writes)",
		[]string{"vCPU", "write p50", "faas $"})
	for _, vcpu := range []float64{0.33, 1.0} {
		run := runWrites(cfg.Seed+int64(vcpu*100), core.Config{
			Profile: cloud.GCPProfile(), UserStore: core.StoreObject,
			FollowerMemMB: 512, LeaderMemMB: 512, VCPU: vcpu,
		}, []int{1024}, reps)
		m := run.d.Env.Meter
		scale := 100_000.0 / float64(reps)
		faasCost := (m.Cost("faas."+core.FnFollower) + m.Cost("faas."+core.FnLeader)) * scale
		s2.AddRow(fmt.Sprintf("%.2f", vcpu), f1(run.total[1024].Percentile(50)), dollars(faasCost))
	}
	r.Note("I/O-bound functions barely notice the smaller CPU allocation (paper: 2-10%% change) while compute cost drops 54-62%%.")
	return r
}
