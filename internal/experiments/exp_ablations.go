package experiments

import (
	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Requirement ablations: what idealized cloud services would buy",
		Ref:   "Section 6 (R1/R4, R6, R8)",
		Run:   runAblations,
	})
}

// runAblations re-runs the write path with individual serverless
// limitations removed, quantifying the requirements the paper asks cloud
// providers for: fast ordered invocations (R1/R4), partial object updates
// (R6), and fast in-memory serverless storage (R8).
func runAblations(cfg RunConfig) *Report {
	r := &Report{ID: "ablations", Title: "Requirement ablations", Ref: "Section 6"}
	reps := cfg.reps(25, 80)
	sizes := []int{1024, 250 * 1024}

	variants := []struct {
		name    string
		profile func() *cloud.Profile
		store   core.StoreKind
	}{
		{"baseline (AWS, S3 store)", cloud.AWSProfile, core.StoreObject},
		{"R1/R4: microsecond-scale ordered queues", fastQueueProfile, core.StoreObject},
		{"R6: partial object updates", partialUpdateProfile, core.StoreObject},
		{"R8: serverless in-memory user store", cloud.AWSProfile, core.StoreMem},
		{"R1+R4+R6+R8 combined", func() *cloud.Profile { return partialUpdates(fastQueueProfile()) }, core.StoreMem},
	}

	s := r.AddSection("set_data median ms (2048 MB functions)",
		[]string{"variant", sizeLabel(sizes[0]), sizeLabel(sizes[1])})
	base := map[int]float64{}
	combined := map[int]float64{}
	for vi, v := range variants {
		run := runWrites(cfg.Seed+int64(vi)*17, core.Config{
			Profile: v.profile(), UserStore: v.store,
		}, sizes, reps)
		row := []string{v.name}
		for _, size := range sizes {
			med := 0.0
			if sample := run.total[size]; sample != nil && sample.N() > 0 {
				med = sample.Percentile(50)
			}
			row = append(row, f1(med))
			if vi == 0 {
				base[size] = med
			}
			if vi == len(variants)-1 {
				combined[size] = med
			}
		}
		s.AddRow(row...)
	}

	zk := zkWriteMedian(cfg.Seed+99, cloud.AWSProfile(), sizes, reps)
	s.AddRow("ZooKeeper (reference)", f1(zk[sizes[0]]), f1(zk[sizes[1]]))

	r.Note("Queue transport and storage I/O dominate the gap: removing them (R1/R4 + R6 + R8) closes %.0f%% of the distance to ZooKeeper at %s.",
		(base[sizes[0]]-combined[sizes[0]])/(base[sizes[0]]-zk[sizes[0]])*100, sizeLabel(sizes[0]))
	r.Note("This is the paper's Section 6 argument: FaaSKeeper's overheads are isolated to specific services and will shrink as platforms adopt the nine requirements.")
	return r
}

// fastQueueProfile models R1/R4: invocation and queue paths at in-memory
// RPC speed while storage stays untouched.
func fastQueueProfile() *cloud.Profile {
	p := cloud.AWSProfile()
	p.QueueSendBase = sim.Q(0.05, 0.15, 0.3, 0.6, 2)
	p.QueueSendPerKB = sim.Ms(0.002)
	p.QueueDeliver = map[cloud.QueueKind]sim.Dist{
		cloud.QueueFIFO:     sim.Q(0.05, 0.2, 0.5, 1, 3),
		cloud.QueueStandard: sim.Q(0.05, 0.2, 0.5, 1, 3),
		cloud.QueueStream:   sim.Q(0.05, 0.2, 0.5, 1, 3),
	}
	p.WarmOverhead = sim.Q(0.01, 0.05, 0.1, 0.3, 1)
	p.DirectInvoke = sim.Q(0.1, 0.3, 0.8, 1.5, 5)
	return p
}

// partialUpdates models R6: object writes no longer pay the full-object
// rewrite, only the changed bytes (metadata-sized).
func partialUpdates(p *cloud.Profile) *cloud.Profile {
	p.ObjWritePerKB = sim.Ms(0.002)
	p.ObjReadPerKB = sim.Ms(0.002)
	return p
}

func partialUpdateProfile() *cloud.Profile { return partialUpdates(cloud.AWSProfile()) }
