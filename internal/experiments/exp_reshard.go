package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "reshard",
		Title: "Live resharding: hot-subtree splits on the dynamic shard map",
		Ref:   "beyond the paper (ROADMAP: shard auto-scaling, hot-subtree mitigation)",
		Run:   runReshard,
	})
}

// reshardPhase is one measured window of the reshard workload.
type reshardPhase struct {
	writes     int
	elapsedSec float64
	lat        *stats.Sample
}

func (p reshardPhase) throughput() float64 {
	if p.elapsedSec <= 0 {
		return 0
	}
	return float64(p.writes) / p.elapsedSec
}

// reshardOutcome aggregates a run's correctness counters.
type reshardOutcome struct {
	phases     []reshardPhase
	violations int // per-path mzxid regressions observed in responses
	lost       int // acked writes missing from the final state
	writeErrs  int
}

// runReshardWorkload drives sessions writers inside /hot on a dynamic
// deployment. Phases partition each writer's ops; between phases the
// supplied transition runs (nil = none). midSplit instead fires the
// transition concurrently after midAfter acked writes in phase 0.
func runReshardWorkload(seed int64, shards, sessions, opsPerPhase, phases int,
	transition func(d *core.Deployment) error, midSplit bool) reshardOutcome {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{WriteShards: shards, DynamicShards: true})
	out := reshardOutcome{phases: make([]reshardPhase, phases)}
	for i := range out.phases {
		out.phases[i] = reshardPhase{writes: sessions * opsPerPhase, lat: stats.NewSample(sessions * opsPerPhase)}
	}
	paths := make([]string, sessions)
	acked := make([]int, sessions)
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if _, err := setup.Create("/hot", nil, 0); err != nil {
			return
		}
		for i := range paths {
			paths[i] = fmt.Sprintf("/hot/n%d", i)
			if _, err := setup.Create(paths[i], nil, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		payload := bytes.Repeat([]byte("x"), 128)
		lastMzxid := make([]int64, sessions)
		runPhase := func(phase int, concurrent func()) {
			done := sim.NewWaitGroup(k)
			t0 := k.Now()
			for i := range clients {
				i := i
				done.Add(1)
				k.Go(fmt.Sprintf("writer-%d-%d", phase, i), func() {
					defer done.Done()
					for op := 0; op < opsPerPhase; op++ {
						ts := k.Now()
						st, err := clients[i].SetData(paths[i], payload, -1)
						if err != nil {
							out.writeErrs++
							return
						}
						if st.Mzxid <= lastMzxid[i] {
							out.violations++
						}
						lastMzxid[i] = st.Mzxid
						acked[i]++
						out.phases[phase].lat.AddDur(k.Now() - ts)
					}
				})
			}
			if concurrent != nil {
				done.Add(1)
				k.Go("resharder", func() {
					defer done.Done()
					concurrent()
				})
			}
			done.Wait()
			out.phases[phase].elapsedSec = (k.Now() - t0).Seconds()
		}
		for phase := 0; phase < phases; phase++ {
			var concurrent func()
			if midSplit && phase == 0 && transition != nil {
				concurrent = func() {
					// Land the transition in the middle of the window.
					k.Sleep(500 * sim.Ms(1))
					_ = transition(d)
				}
			}
			runPhase(phase, concurrent)
			if !midSplit && transition != nil && phase < phases-1 {
				_ = transition(d)
			}
		}
		// No lost acknowledged write: final versions count every ack.
		for i, p := range paths {
			_, st, err := setup.GetData(p)
			if err != nil || int(st.Version) != acked[i] {
				out.lost += acked[i] - int(st.Version)
			}
		}
		for _, c := range clients {
			c.Close()
		}
		setup.Close()
	})
	k.Run()
	k.Shutdown()
	return out
}

func runReshard(cfg RunConfig) *Report {
	r := &Report{
		ID:    "reshard",
		Title: "Dynamic shard maps: live hot-subtree splits",
		Ref:   "beyond the paper (ROADMAP: shard auto-scaling, hot-subtree mitigation)",
	}
	sessions := 12
	ops := cfg.reps(6, 20)
	if cfg.Quick {
		sessions = 8
	}

	// Before/after: every session inside /hot pins one of two queues;
	// splitting /hot four ways re-routes its second-level subtrees over
	// four fresh queues while the writers keep writing.
	split := func(d *core.Deployment) error { return d.SplitSubtree("/hot", 4) }
	ba := runReshardWorkload(cfg.Seed, 2, sessions, ops, 2, split, false)
	s := r.AddSection(
		fmt.Sprintf("Hot subtree (%d sessions × %d writes of 128 B per phase), split between phases",
			sessions, ops),
		[]string{"phase", "writes/s", "recovery", "p50 ms", "p99 ms", "violations", "lost acks"})
	pre, post := ba.phases[0], ba.phases[1]
	ratio := "-"
	if pre.throughput() > 0 {
		ratio = fmt.Sprintf("%.2fx", post.throughput()/pre.throughput())
	}
	preP50, preP99 := latCells(pre.lat, f1)
	postP50, postP99 := latCells(post.lat, f1)
	s.AddRow("pre-split (/hot pinned on 1 of 2 queues)", f1(pre.throughput()), "1.00x",
		preP50, preP99,
		fmt.Sprintf("%d", ba.violations), fmt.Sprintf("%d", ba.lost))
	s.AddRow("post-split (/hot over 4 queues)", f1(post.throughput()), ratio,
		postP50, postP99,
		fmt.Sprintf("%d", ba.violations), fmt.Sprintf("%d", ba.lost))

	// The split landing mid-workload: writers never pause; the gate holds
	// only /hot's in-flight writes for the drain, and every acknowledged
	// write must survive the migration.
	mid := runReshardWorkload(cfg.Seed+1, 2, sessions, 2*ops, 1, split, true)
	base := runReshardWorkload(cfg.Seed+2, 2, sessions, 2*ops, 1, nil, false)
	s2 := r.AddSection(
		fmt.Sprintf("Split landing mid-workload (%d sessions × %d writes, concurrent writers)",
			sessions, 2*ops),
		[]string{"run", "writes/s", "violations", "lost acks", "write errors"})
	s2.AddRow("no reshard (2 queues)", f1(base.phases[0].throughput()),
		fmt.Sprintf("%d", base.violations), fmt.Sprintf("%d", base.lost), fmt.Sprintf("%d", base.writeErrs))
	s2.AddRow("split at ~0.5 s", f1(mid.phases[0].throughput()),
		fmt.Sprintf("%d", mid.violations), fmt.Sprintf("%d", mid.lost), fmt.Sprintf("%d", mid.writeErrs))

	m := costmodel.NewAWSModel(2048)
	r.Note("The reshard protocol: gate the migrating prefixes (only their writers wait), drain the source queues behind a fence message, then flip the map epoch with the destinations' txid bases raised past the drain bound — readers never block, untouched subtrees never stall, and per-path mzxid stays monotonic across the shard change (violations column).")
	r.Note("A transition itself costs ~$%.8f (4 sources, model: 2 map writes + fences + acks + polling) on top of $%.10f per write for the map-generation commit guard — noise against the hot traffic that warrants the split.",
		m.ReshardCost(4, 30, sessions, 512, 128), m.DynamicWriteOverhead())
	return r
}
