package experiments

import (
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/costmodel"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Feature matrix: ZooKeeper vs cloud storage vs FaaSKeeper",
		Ref:   "Table 1",
		Run:   runTab1,
	})
	register(Experiment{
		ID:    "fig4a",
		Title: "Cost of storage services for varying data size and operations",
		Ref:   "Figure 4a",
		Run:   runFig4a,
	})
	register(Experiment{
		ID:    "tab4",
		Title: "FaaSKeeper cost-model parameters and worked examples",
		Ref:   "Table 4",
		Run:   runTab4,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Cost ratio of ZooKeeper and FaaSKeeper across workload mixes",
		Ref:   "Figure 14",
		Run:   runFig14,
	})
}

func runTab1(cfg RunConfig) *Report {
	r := &Report{ID: "tab1", Title: "Feature matrix", Ref: "Table 1"}
	s := r.AddSection("", []string{"Property", "ZooKeeper", "Cloud Storage", "FaaSKeeper"})
	rows := [][]string{
		{"Scale up", "semi-automatic, >=3 VMs", "automatic", "automatic"},
		{"Scale to zero", "not possible", "storage fees only", "storage fees only"},
		{"Billing", "pay upfront", "pay-as-you-go", "pay-as-you-go"},
		{"Reliability", "depends on cluster size", "cloud SLA", "cloud SLA"},
		{"Consistency", "linearized writes", "strong consistency", "linearized writes"},
		{"Push notifications", "watch events", "none", "watch events"},
		{"Concurrency control", "sequential nodes, cond. updates", "conditional updates", "sequential nodes, cond. updates"},
		{"Fault-tolerance helpers", "ephemeral nodes", "none", "ephemeral nodes"},
	}
	for _, row := range rows {
		s.AddRow(row...)
	}
	r.Note("Rendered from the implemented capability set: internal/zk (baseline), internal/cloud (storage), internal/core (FaaSKeeper).")
	return r
}

func runFig4a(cfg RunConfig) *Report {
	r := &Report{ID: "fig4a", Title: "Storage cost curves", Ref: "Figure 4a"}
	p := cloud.AWSPricing()

	s1 := r.AddSection("One million 1 kB operations, varying stored data [GB] (monthly $)",
		[]string{"GB", "S3 read", "S3 write", "DDB read", "DDB write"})
	for _, pt := range costmodel.StorageCostVsSize(p, []float64{0.01, 0.03, 0.12, 0.40, 1, 4, 10}) {
		s1.AddRow(f2(pt.GB), dollars(pt.S3Read), dollars(pt.S3Write), dollars(pt.KVRead), dollars(pt.KVWrite))
	}

	s2 := r.AddSection("1 GB stored, varying operation count (monthly $)",
		[]string{"ops", "S3 read", "S3 write", "DDB read", "DDB write"})
	for _, pt := range costmodel.StorageCostVsOps(p, []float64{1e1, 1e3, 1e5, 1e6, 1e7}) {
		s2.AddRow(fmt.Sprintf("%.0e", pt.Ops), dollars(pt.S3Read), dollars(pt.S3Write), dollars(pt.KVRead), dollars(pt.KVWrite))
	}

	wRatio := p.ObjectWriteCost(1024) / p.ObjectReadCost(1024)
	r.Note("Object storage writes are %.1fx more expensive than reads (paper: 12.5x).", wRatio)
	large := costmodel.StorageCostVsSize(p, []float64{10})[0]
	r.Note("At 10 GB, key-value retention costs %.2fx object storage (paper: 4.37x more expensive on large data).",
		(large.KVRead-1e6*p.KVReadCost(1024, true))/(large.S3Read-1e6*p.ObjectReadCost(1024)))
	return r
}

func runTab4(cfg RunConfig) *Report {
	r := &Report{ID: "tab4", Title: "Cost model", Ref: "Table 4 + Section 5.3.4"}
	p := cloud.AWSPricing()
	s := r.AddSection("Model parameters (AWS us-east-1)", []string{"Parameter", "Description", "Value"})
	s.AddRow("W_S3(s)", "Writing data to S3", fmt.Sprintf("%.0e $/op", p.ObjectWriteCost(1)))
	s.AddRow("R_S3(s)", "Reading data from S3", fmt.Sprintf("%.0e $/op", p.ObjectReadCost(1)))
	s.AddRow("W_DD(s)", "Writing data to DynamoDB", "ceil(s/1kB) * 1.25e-6 $")
	s.AddRow("R_DD(s)", "Reading data from DynamoDB", "ceil(s/4kB) * 0.25e-6 $")
	s.AddRow("Q(s)", "Push to queue", "ceil(s/64kB) * 0.5e-6 $")
	s.AddRow("F_W/F_D(s)", "Follower/leader execution", "GB-s * 1.667e-5 + 2e-7 $")

	m := costmodel.NewAWSModel(512)
	e := r.AddSection("Worked examples (100,000 operations of 1 kB, 512 MB functions)",
		[]string{"Workload", "This repo", "Paper"})
	e.AddRow("reads (standard)", dollars(100_000*m.ReadCost(1024, false)), "$0.04")
	e.AddRow("writes (standard)", dollars(100_000*m.WriteCost(1024, false)), "$1.12")
	e.AddRow("writes (hybrid)", dollars(100_000*m.WriteCost(1024, true)), "$0.72")

	st := r.AddSection("Retention (per GB-month)", []string{"Store", "$/GB-month"})
	st.AddRow("S3 (user data)", f4(p.ObjectStorageGBMo))
	st.AddRow("DynamoDB (hybrid)", f4(p.KVStorageGBMo))
	st.AddRow("EBS gp3 (ZooKeeper)", f4(p.BlockGBMo))
	r.Note("S3 retention is %.2fx cheaper than EBS gp3 (paper: 3.47x); DynamoDB retention is %.3fx EBS (paper: 3.125x more expensive).",
		p.BlockGBMo/p.ObjectStorageGBMo, p.KVStorageGBMo/p.BlockGBMo)
	return r
}

func runFig14(cfg RunConfig) *Report {
	r := &Report{ID: "fig14", Title: "Cost ratio of ZooKeeper and FaaSKeeper", Ref: "Figure 14"}
	m := costmodel.NewAWSModel(512)
	reqCols := []string{"100K", "500K", "1M", "2M", "5M"}
	for _, panel := range []struct {
		readFrac float64
		label    string
	}{
		{1.0, "100% reads"}, {0.9, "90% reads"}, {0.8, "80% reads"},
	} {
		cells := costmodel.Fig14(m, panel.readFrac)
		s := r.AddSection(fmt.Sprintf("Cost ratio, %s (1 kB ops; >1 means FaaSKeeper cheaper)", panel.label),
			append([]string{"Deployment", "Storage"}, reqCols...))
		// cells come grouped: storage -> servers -> instance -> requests.
		for i := 0; i < len(cells); i += 5 {
			c := cells[i]
			mode := "standard"
			if c.Hybrid {
				mode = "hybrid"
			}
			row := []string{c.Deployment, mode}
			for j := 0; j < 5; j++ {
				row = append(row, f2(cells[i+j].Ratio))
			}
			s.AddRow(row...)
		}
	}
	z := costmodel.ZooKeeperDeployment{P: m.P, Servers: 3, InstanceType: "t3.small", DiskGB: 20}
	r.Note("Break-even volumes vs 3x t3.small: %.2fM req/day at 100%% reads, %.2fM at 90%%, %.2fM hybrid reads (paper: 1-3.75M, 5.99M hybrid).",
		m.BreakEvenRequests(z, 1.0, 1024, false)/1e6,
		m.BreakEvenRequests(z, 0.9, 1024, false)/1e6,
		m.BreakEvenRequests(z, 1.0, 1024, true)/1e6)
	zBig := costmodel.ZooKeeperDeployment{P: m.P, Servers: 9, InstanceType: "t3.large", DiskGB: 20}
	r.Note("Largest savings: %.0fx against 9x t3.large at 100k req/day with hybrid storage (paper headline: up to 719x).",
		m.CostRatio(zBig, 100_000, 1.0, 1024, true))
	return r
}
