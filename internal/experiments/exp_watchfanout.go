package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/watchfanout"
)

func init() {
	register(Experiment{
		ID:    "watchfanout",
		Title: "Hierarchical watch fan-out: O(1) leader-side notification cost",
		Ref:   "beyond the paper (ROADMAP: watch fan-out)",
		Run:   runWatchFanout,
	})
}

// fanoutPayloadB is the node size of the fan-out workloads.
const fanoutPayloadB = 128

// fanoutSweep is one watcher-count measurement of the hot-path workload:
// a writer updates one path carrying `watchers` persistent watches (one
// real session plus a synthetic population on the regional node).
type fanoutSweep struct {
	watchers   int
	writes     int
	sysOps     float64 // leader system-store ops per write
	publishes  float64 // notification records per write
	enters     float64 // shard-epoch appends per write
	deliveries int64   // node-side session deliveries
	usd        float64 // leader-side dollars for the write phase
	ok         bool
}

// runFanoutSweep measures leader-side work at one watcher count. Writes
// are spaced past the delivery drain so every write re-enters the epoch
// — the worst case for leader-side epoch traffic.
func runFanoutSweep(seed int64, watchers, writes int) fanoutSweep {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{
		Profile: cloud.AWSProfile(), UserStore: core.StoreKV,
		WatchFanout: true, CostAccounting: true,
	})
	res := fanoutSweep{watchers: watchers, writes: writes}
	k.Go("driver", func() {
		payload := bytes.Repeat([]byte("x"), fanoutPayloadB)
		w, err := fkclient.Connect(d, "writer", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if _, err := w.Create("/hot", payload, 0); err != nil {
			return
		}
		watcher, err := fkclient.Connect(d, "watcher", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if _, err := watcher.AddWatch("/hot", fkclient.WatchOptions{}, nil); err != nil {
			return
		}
		// The rest of the population is synthetic: the node counts and
		// bills their deliveries without materializing sessions.
		node := d.FanoutFor(d.Cfg.Profile.Home)
		node.BulkRegister("/hot", watchfanout.KindPersistent, watchfanout.PolicyImmediate, 0,
			core.WatchID("/hot", core.WatchPersistent), watchers-1)
		d.ResetMetrics()
		st0 := node.Stats()
		m := d.Env.Meter
		ops0 := m.Count("syskv.read") + m.Count("syskv.write")
		usd0 := m.Cost("syskv.read") + m.Cost("syskv.write") + m.Cost("fanout.publish")
		for i := 0; i < writes; i++ {
			if _, err := w.SetData("/hot", payload, -1); err != nil {
				return
			}
			k.Sleep(sim.Ms(400)) // drain the delivery so the epoch fully cycles
		}
		k.Sleep(sim.Ms(2000))
		st1 := node.Stats()
		n := float64(writes)
		res.sysOps = float64(m.Count("syskv.read")+m.Count("syskv.write")-ops0) / n
		res.usd = m.Cost("syskv.read") + m.Cost("syskv.write") + m.Cost("fanout.publish") - usd0
		res.publishes = float64(st1.Publishes-st0.Publishes) / n
		res.enters = float64(st1.EpochEnters-st0.EpochEnters) / n
		res.deliveries = st1.Deliveries - st0.Deliveries
		res.ok = res.deliveries > 0
		watcher.Close()
		w.Close()
	})
	k.Run()
	k.Shutdown()
	return res
}

// runFanoutBurst measures node-side deliveries for a confd-style burst:
// `watchers` interval-policy watchers on one config path, `writes`
// back-to-back overwrites. With coalescing the node collapses the burst
// to one delivery per subscriber per window.
func runFanoutBurst(seed int64, watchers, writes int, policy watchfanout.Policy, interval sim.Time) (deliveries, suppressed int64, ok bool) {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{
		Profile: cloud.AWSProfile(), UserStore: core.StoreKV, WatchFanout: true,
	})
	k.Go("driver", func() {
		payload := bytes.Repeat([]byte("x"), fanoutPayloadB)
		w, err := fkclient.Connect(d, "writer", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if _, err := w.Create("/cfg", payload, 0); err != nil {
			return
		}
		watcher, err := fkclient.Connect(d, "watcher", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		opts := fkclient.WatchOptions{Policy: policy, Interval: interval}
		if _, err := watcher.AddWatch("/cfg", opts, nil); err != nil {
			return
		}
		node := d.FanoutFor(d.Cfg.Profile.Home)
		node.BulkRegister("/cfg", watchfanout.KindPersistent, policy, interval,
			core.WatchID("/cfg", core.WatchPersistent), watchers-1)
		for i := 0; i < writes; i++ {
			if _, err := w.SetData("/cfg", payload, -1); err != nil {
				return
			}
		}
		k.Sleep(2*interval + sim.Ms(5000))
		st := node.Stats()
		deliveries, suppressed, ok = st.Deliveries, st.Suppressed, true
		watcher.Close()
		w.Close()
	})
	k.Run()
	k.Shutdown()
	return deliveries, suppressed, ok
}

// runFanoutLegacyCompare drives the same small one-shot workload through
// the legacy leader-side watch query and the fan-out tier, returning
// leader system-store ops per write for each.
func runFanoutLegacyCompare(seed int64, fanout bool, sessions, writes int) (sysOps float64, ok bool) {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{
		Profile: cloud.AWSProfile(), UserStore: core.StoreKV, WatchFanout: fanout,
	})
	k.Go("driver", func() {
		payload := bytes.Repeat([]byte("x"), fanoutPayloadB)
		w, err := fkclient.Connect(d, "writer", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		if _, err := w.Create("/n", payload, 0); err != nil {
			return
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("w%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		d.ResetMetrics()
		m := d.Env.Meter
		ops0 := m.Count("syskv.read") + m.Count("syskv.write")
		for i := 0; i < writes; i++ {
			// One-shot watches re-arm before every write, the paper's
			// usage pattern.
			for _, c := range clients {
				if _, _, err := c.GetDataW("/n", func(core.Notification) {}); err != nil {
					return
				}
			}
			if _, err := w.SetData("/n", payload, -1); err != nil {
				return
			}
			k.Sleep(sim.Ms(500))
		}
		k.Sleep(sim.Ms(2000))
		sysOps = float64(m.Count("syskv.read")+m.Count("syskv.write")-ops0) / float64(writes)
		ok = true
		for _, c := range clients {
			c.Close()
		}
		w.Close()
	})
	k.Run()
	k.Shutdown()
	return sysOps, ok
}

// RunWatchFanoutAt runs the hot-path sweep at one watcher count and
// renders it — the fkcli -watchers entry point.
func RunWatchFanoutAt(seed int64, watchers int) *Report {
	r := &Report{
		ID:    "watchfanout",
		Title: "Hierarchical watch fan-out: O(1) leader-side notification cost",
		Ref:   "beyond the paper (ROADMAP: watch fan-out)",
	}
	s := r.AddSection(fmt.Sprintf("Hot path, %d persistent watchers", watchers),
		fanoutSweepColumns)
	run := runFanoutSweep(seed, watchers, 10)
	s.AddRow(fanoutSweepRow(run)...)
	return r
}

var fanoutSweepColumns = []string{
	"watchers", "syskv ops/write", "records/write", "epoch enters/write",
	"node deliveries", "leader $/1M notif",
}

func fanoutSweepRow(run fanoutSweep) []string {
	if !run.ok {
		return []string{fmt.Sprintf("%d", run.watchers), "-", "-", "-", "-", "-"}
	}
	usdPer1M := run.usd / float64(run.deliveries) * 1e6
	return []string{
		fmt.Sprintf("%d", run.watchers),
		f1(run.sysOps), f1(run.publishes), f1(run.enters),
		fmt.Sprintf("%d", run.deliveries), dollars(usdPer1M),
	}
}

func runWatchFanout(cfg RunConfig) *Report {
	r := &Report{
		ID:    "watchfanout",
		Title: "Hierarchical watch fan-out: O(1) leader-side notification cost",
		Ref:   "beyond the paper (ROADMAP: watch fan-out)",
	}
	writes := cfg.reps(5, 20)

	// A: leader-side work must stay flat from 10k to 1M watchers — the
	// leader publishes one notification record per (path, txid) and
	// touches the shard epoch list once, regardless of the population.
	s := r.AddSection(
		fmt.Sprintf("Leader-side work vs watcher count (%d writes of %d B to one hot path)",
			writes, fanoutPayloadB),
		fanoutSweepColumns)
	var first, last fanoutSweep
	for i, watchers := range []int{10_000, 100_000, 1_000_000} {
		run := runFanoutSweep(cfg.Seed+int64(i)*101, watchers, writes)
		if i == 0 {
			first = run
		}
		last = run
		s.AddRow(fanoutSweepRow(run)...)
	}
	if first.ok && last.ok {
		r.Note("Leader work is flat: %.1f system-store ops and %.1f notification records per write at 10k watchers vs %.1f and %.1f at 1M — the 100x population shows up only in node-side deliveries (%d vs %d).",
			first.sysOps, first.publishes, last.sysOps, last.publishes,
			first.deliveries, last.deliveries)
	}

	// B: confd-style config burst — interval coalescing collapses the
	// node-side fan-out of a write burst to roughly one delivery per
	// subscriber per window.
	burstWatchers := 100_000
	burstWrites := cfg.reps(12, 30)
	s2 := r.AddSection(
		fmt.Sprintf("confd burst: %d interval watchers, %d back-to-back overwrites",
			burstWatchers, burstWrites),
		[]string{"policy", "node deliveries", "suppressed", "vs immediate"})
	immDel, _, immOK := runFanoutBurst(cfg.Seed+501, burstWatchers, burstWrites,
		watchfanout.PolicyImmediate, 0)
	coalDel, coalSup, coalOK := runFanoutBurst(cfg.Seed+502, burstWatchers, burstWrites,
		watchfanout.PolicyInterval, sim.Ms(10_000))
	if immOK {
		s2.AddRow("immediate", fmt.Sprintf("%d", immDel), "0", "1.0x")
	} else {
		s2.AddRow("immediate", "-", "-", "-")
	}
	if coalOK && coalDel > 0 {
		s2.AddRow("interval 10s", fmt.Sprintf("%d", coalDel), fmt.Sprintf("%d", coalSup),
			fmt.Sprintf("%.1fx fewer", float64(immDel)/float64(coalDel)))
	} else {
		s2.AddRow("interval 10s", "-", "-", "-")
	}

	// C: the fan-out tier vs the paper's leader-side watch query on the
	// same small real-session workload.
	sessions := 8
	cmpWrites := cfg.reps(3, 8)
	s3 := r.AddSection(
		fmt.Sprintf("Leader system-store ops per write, %d one-shot watchers (real sessions)", sessions),
		[]string{"mode", "syskv ops/write"})
	legacyOps, legacyOK := runFanoutLegacyCompare(cfg.Seed+601, false, sessions, cmpWrites)
	fanoutOps, fanoutOK := runFanoutLegacyCompare(cfg.Seed+602, true, sessions, cmpWrites)
	if legacyOK {
		s3.AddRow("legacy watch query", f1(legacyOps))
	} else {
		s3.AddRow("legacy watch query", "-")
	}
	if fanoutOK {
		s3.AddRow("fan-out tier", f1(fanoutOps))
	} else {
		s3.AddRow("fan-out tier", "-")
	}

	m := costmodel.NewAWSModel(512)
	r.Note("Analytic model: a legacy watch query at 1M watchers costs %s in leader-side storage per firing vs %s for one notification record — one fan-out node breaks even above %.0f firings/day.",
		dollars(m.LegacyWatchQueryCost(1_000_000)), dollars(m.FanoutPublishCost()),
		m.FanoutBreakEvenFirings(1_000_000, 1))
	r.Note("Delivery guarantees are unchanged: the epoch-stamp gate holds reads until a covering notification lands (Z4), and coalescing only ever suppresses a firing whose txid is at most the delivered one.")
	return r
}
