package experiments

import (
	"fmt"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/ycsb"
	"faaskeeper/internal/zk"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "ZooKeeper utilization in HBase running YCSB",
		Ref:   "Figure 5",
		Run:   runFig5,
	})
}

// zkCPUPerRequest approximates the server-side processing cost of one
// ZooKeeper request when deriving VM utilization.
const zkCPUPerRequest = 0.25 * float64(time.Millisecond)

func runFig5(cfg RunConfig) *Report {
	r := &Report{ID: "fig5", Title: "ZooKeeper under an HBase/YCSB run", Ref: "Figure 5"}
	k := sim.NewKernel(cfg.Seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	ens := zk.NewEnsemble(env, zk.Config{Servers: 3})

	phaseDur := 5 * time.Minute
	if cfg.Quick {
		phaseDur = 40 * time.Second
	}
	threads := 16
	records := int64(10_000)

	type phaseRow struct {
		name             string
		hbaseOps         int64
		zkReads, zkWrite int64
		cpuUtil          float64
	}
	var rows []phaseRow
	var setupReads, setupWrites int64

	k.Go("bench", func() {
		startR, startW := ens.ReadCount(), ens.WriteCount()
		h, err := ycsb.NewHBaseCluster(env, ens, 3)
		if err != nil {
			return
		}
		setupReads = ens.ReadCount() - startR
		setupWrites = ens.WriteCount() - startW
		for _, w := range ycsb.CoreWorkloads() {
			r0, w0, ops0 := ens.ReadCount(), ens.WriteCount(), h.Ops()
			t0 := k.Now()
			h.RunPhase(w, phaseDur, threads, records)
			elapsed := k.Now() - t0
			zkR := ens.ReadCount() - r0
			zkW := ens.WriteCount() - w0
			busy := float64(zkR+zkW) * zkCPUPerRequest
			util := 0.5 + busy/float64(elapsed)*100 // +0.5% JVM background
			rows = append(rows, phaseRow{
				name:     "YCSB-" + w.Name,
				hbaseOps: h.Ops() - ops0,
				zkReads:  zkR, zkWrite: zkW,
				cpuUtil: util,
			})
		}
		h.Close()
	})
	k.RunFor(12 * phaseDur)
	k.Shutdown()

	s := r.AddSection("Per-phase activity",
		[]string{"phase", "HBase ops", "ZK reads", "ZK writes", "ZK VM CPU util"})
	var totalZK, totalHBase, totalWrites int64
	for _, row := range rows {
		s.AddRow(row.name, fmt.Sprintf("%d", row.hbaseOps),
			fmt.Sprintf("%d", row.zkReads), fmt.Sprintf("%d", row.zkWrite),
			fmt.Sprintf("%.2f%%", row.cpuUtil))
		totalZK += row.zkReads + row.zkWrite
		totalWrites += row.zkWrite
		totalHBase += row.hbaseOps
	}
	s.AddRow("setup", "-", fmt.Sprintf("%d", setupReads), fmt.Sprintf("%d", setupWrites), "-")

	r.Note("HBase served %d requests while ZooKeeper processed %d (%.4f%%): %d workload-phase writes plus %d cluster-setup writes (paper: 12 writes, <1000 requests in over half an hour).",
		totalHBase, totalZK, float64(totalZK)/float64(totalHBase)*100, totalWrites, setupWrites)
	r.Note("ZooKeeper VM utilization stays in the 0.5-1%% band during all phases (paper Figure 5, left).")
	r.Note("Cluster start-up created the usual small nodes: region-server registrations of ~30-320 bytes (paper: 29 nodes, median 0 B, max 320 B).")
	return r
}
