package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "fig4a", "fig4b", "fig5", "tab6a", "fig6b",
		"fig7a", "fig7b", "fig7c", "fig8", "fig9", "fig10",
		"tab3", "fig11", "fig12", "fig13", "tab4", "fig14", "sec532x",
		"ablations", "sharding", "caching", "batching", "txn", "reshard",
		"telemetry", "chaos", "cost", "watchfanout",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(want) {
		t.Error("IDs incomplete")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Ref: "Fig X"}
	s := r.AddSection("cap", []string{"a", "bb"})
	s.AddRow("1", "2")
	s.AddRow("333", "4")
	r.Note("note %d", 7)
	out := r.Render()
	for _, want := range []string{"=== x — T (Fig X) ===", "cap", "a", "bb", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// runQuick executes an experiment in quick mode and sanity-checks the
// report structure.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	rep := e.Run(RunConfig{Seed: 42, Quick: true})
	if rep == nil {
		t.Fatalf("%s returned nil report", id)
	}
	if len(rep.Sections) == 0 {
		t.Fatalf("%s has no sections", id)
	}
	for _, s := range rep.Sections {
		if len(s.Rows) == 0 {
			t.Fatalf("%s section %q has no rows", id, s.Caption)
		}
		for _, row := range s.Rows {
			if len(row) == 0 {
				t.Fatalf("%s has an empty row", id)
			}
		}
	}
	if out := rep.Render(); len(out) < 50 {
		t.Fatalf("%s render too short", id)
	}
	return rep
}

func TestTab1AndTab4AndFig4aAndFig14(t *testing.T) {
	runQuick(t, "tab1")
	rep := runQuick(t, "tab4")
	found := false
	for _, s := range rep.Sections {
		for _, row := range s.Rows {
			if row[0] == "writes (standard)" && strings.HasPrefix(row[1], "$1.1") {
				found = true
			}
		}
	}
	if !found {
		t.Error("tab4 worked example for standard writes not ~$1.12")
	}
	runQuick(t, "fig4a")
	rep14 := runQuick(t, "fig14")
	if len(rep14.Sections) != 3 {
		t.Errorf("fig14 should have 3 read-mix panels, got %d", len(rep14.Sections))
	}
}

func TestFig4bShape(t *testing.T) {
	rep := runQuick(t, "fig4b")
	// S3 section: cross-region read at 1 kB must exceed local read by >100ms.
	s3 := rep.Sections[0]
	first := s3.Rows[0]
	local, _ := strconv.ParseFloat(first[2], 64)
	cross, _ := strconv.ParseFloat(first[4], 64)
	if cross-local < 100 {
		t.Errorf("cross-region penalty too small: %v vs %v", cross, local)
	}
}

func TestTab6aShape(t *testing.T) {
	rep := runQuick(t, "tab6a")
	rows := rep.Sections[0].Rows
	vals := map[string]float64{}
	for _, row := range rows {
		p50, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad p50 in %v", row)
		}
		vals[row[0]+"/"+row[1]] = p50
	}
	if vals["Timed lock acquire/1kB"] <= vals["Regular DynamoDB write/1kB"] {
		t.Error("lock acquire should cost more than a plain write")
	}
	if vals["Timed lock acquire/64kB"] < 5*vals["Timed lock acquire/1kB"] {
		t.Error("64kB lock should be much slower than 1kB lock")
	}
	// Conditional surcharge ~2.5 ms at 1 kB.
	d := vals["Timed lock acquire/1kB"] - vals["Regular DynamoDB write/1kB"]
	if d < 1 || d > 6 {
		t.Errorf("conditional surcharge = %.2f ms, want ~2.5", d)
	}
}

func TestFig6bEfficiency(t *testing.T) {
	rep := runQuick(t, "fig6b")
	rows := rep.Sections[0].Rows
	last := rows[len(rows)-1]
	std, _ := strconv.ParseFloat(last[1], 64)
	lck, _ := strconv.ParseFloat(last[3], 64)
	if std == 0 || lck == 0 {
		t.Fatalf("zero throughput: %v", last)
	}
	eff := lck / std
	if eff < 0.7 || eff > 1.0 {
		t.Errorf("locking efficiency = %.2f, want ~0.84", eff)
	}
}

func TestFig7aOrderings(t *testing.T) {
	rep := runQuick(t, "fig7a")
	p50 := map[string]float64{}
	for _, row := range rep.Sections[0].Rows {
		if row[1] == "64B" {
			v, _ := strconv.ParseFloat(row[3], 64)
			p50[row[0]] = v
		}
	}
	if !(p50["SQS FIFO"] < p50["Direct"]) {
		t.Errorf("FIFO (%v) should beat direct (%v) at p50, as in the paper", p50["SQS FIFO"], p50["Direct"])
	}
	if !(p50["DynamoDB Stream"] > 4*p50["SQS FIFO"]) {
		t.Errorf("streams (%v) should be far slower than FIFO (%v)", p50["DynamoDB Stream"], p50["SQS FIFO"])
	}
}

func TestFig7bFIFOSaturates(t *testing.T) {
	rep := runQuick(t, "fig7b")
	rows := rep.Sections[0].Rows
	last := rows[len(rows)-1] // 200 offered
	fifo, _ := strconv.ParseFloat(last[3], 64)
	std, _ := strconv.ParseFloat(last[1], 64)
	if fifo > 160 {
		t.Errorf("FIFO did not saturate: %v op/s at 200 offered", fifo)
	}
	if std < fifo {
		t.Errorf("standard queue (%v) should outrun FIFO (%v)", std, fifo)
	}
}

func TestFig8Orderings(t *testing.T) {
	rep := runQuick(t, "fig8")
	aws := rep.Sections[0]
	row := aws.Rows[0] // smallest size
	ddb, _ := strconv.ParseFloat(row[1], 64)
	s3, _ := strconv.ParseFloat(row[2], 64)
	redis, _ := strconv.ParseFloat(row[3], 64)
	zkv, _ := strconv.ParseFloat(row[5], 64)
	if !(redis < ddb && ddb < s3) {
		t.Errorf("expected redis < ddb < s3 on small reads: %v %v %v", redis, ddb, s3)
	}
	if redis > 3*zkv+1 {
		t.Errorf("in-memory store (%v ms) should be near ZooKeeper (%v ms)", redis, zkv)
	}
}

func TestFig9Orderings(t *testing.T) {
	rep := runQuick(t, "fig9")
	lat := rep.Sections[0]
	small := lat.Rows[0]
	fk2048, _ := strconv.ParseFloat(small[3], 64)
	zkv, _ := strconv.ParseFloat(small[4], 64)
	if fk2048 < 5*zkv {
		t.Errorf("FaaSKeeper writes (%v ms) should be much slower than ZooKeeper (%v ms)", fk2048, zkv)
	}
	if fk2048 < 40 || fk2048 > 400 {
		t.Errorf("FK write median %v ms out of the paper's ballpark (~100 ms)", fk2048)
	}
	// Cost split: storage fraction 40-80%.
	costs := rep.Sections[2]
	for _, row := range costs.Rows {
		sys := parsePct(row[2])
		user := parsePct(row[3])
		q := parsePct(row[1])
		if sys+user+q < 35 || sys+user > 98 {
			t.Errorf("storage+queue share out of band in %v", row)
		}
	}
}

func parsePct(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	return v
}

func TestFig10PushAndUpdateDominate(t *testing.T) {
	rep := runQuick(t, "fig10")
	// In every section, leader.update must be the largest leader phase at
	// large sizes; follower.push significant.
	found := false
	for _, s := range rep.Sections {
		if !strings.Contains(s.Caption, "250kB") {
			continue
		}
		var update, get float64
		for _, row := range s.Rows {
			name := strings.TrimSpace(row[0])
			if name == "leader.update" {
				update, _ = strconv.ParseFloat(row[1], 64)
			}
			if name == "leader.get" {
				get, _ = strconv.ParseFloat(row[1], 64)
			}
		}
		if update > 0 && get > 0 {
			found = true
			if update < 3*get {
				t.Errorf("leader.update (%v) should dominate leader.get (%v) at 250kB", update, get)
			}
		}
	}
	if !found {
		t.Error("no 250kB leader section found")
	}
}

func TestTab3TailsGrow(t *testing.T) {
	rep := runQuick(t, "tab3")
	for _, s := range rep.Sections {
		for _, row := range s.Rows {
			p50, _ := strconv.ParseFloat(row[2], 64)
			p99, _ := strconv.ParseFloat(row[5], 64)
			if p99 < p50 {
				t.Errorf("p99 < p50 in %v", row)
			}
		}
	}
}

func TestFig11HybridFaster(t *testing.T) {
	rep := runQuick(t, "fig11")
	rows := rep.Sections[0].Rows
	for _, row := range rows {
		hybrid, _ := strconv.ParseFloat(row[2], 64)   // 2048MB hybrid
		standard, _ := strconv.ParseFloat(row[4], 64) // 2048MB standard
		if hybrid >= standard {
			t.Errorf("hybrid (%v) not faster than standard (%v) at %s", hybrid, standard, row[0])
		}
	}
}

func TestFig12GCPSlower(t *testing.T) {
	rep := runQuick(t, "fig12")
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "slower than AWS") {
		t.Error("fig12 should note the GCP slowdown")
	}
}

func TestFig13MemoryHelps(t *testing.T) {
	rep := runQuick(t, "fig13")
	execRows := rep.Sections[0].Rows
	last := execRows[len(execRows)-1] // 64 clients
	small, _ := strconv.ParseFloat(last[1], 64)
	big, _ := strconv.ParseFloat(last[len(last)-1], 64)
	if small <= big {
		t.Errorf("128MB heartbeat (%v ms) should be slower than 2048MB (%v ms)", small, big)
	}
	costRows := rep.Sections[1].Rows
	for _, row := range costRows {
		for _, cell := range row[1:] {
			c, err := strconv.ParseFloat(cell, 64)
			if err != nil || c <= 0 || c > 2 {
				t.Errorf("daily heartbeat cost %q out of range (cents)", cell)
			}
		}
	}
}

func TestFig5ZooKeeperIdle(t *testing.T) {
	rep := runQuick(t, "fig5")
	rows := rep.Sections[0].Rows
	for _, row := range rows[:len(rows)-1] { // skip setup row
		util := parsePct(row[4])
		if util > 3 {
			t.Errorf("ZooKeeper utilization %v%% too high in %v", util, row)
		}
	}
}

func TestAblationsCloseTheGap(t *testing.T) {
	rep := runQuick(t, "ablations")
	rows := rep.Sections[0].Rows
	parse := func(i, col int) float64 {
		v, _ := strconv.ParseFloat(rows[i][col], 64)
		return v
	}
	baseline := parse(0, 1)
	combined := parse(len(rows)-2, 1)
	zkRef := parse(len(rows)-1, 1)
	if combined >= baseline/2 {
		t.Errorf("combined ablation (%v ms) should cut the baseline (%v ms) by far more than half", combined, baseline)
	}
	if zkRef >= baseline {
		t.Errorf("ZooKeeper reference (%v) should beat the serverless baseline (%v)", zkRef, baseline)
	}
}

func TestShardingScalesUniformWrites(t *testing.T) {
	rep := runQuick(t, "sharding")
	if len(rep.Sections) != 2 {
		t.Fatalf("expected uniform and hot sections, got %d", len(rep.Sections))
	}
	// Uniform workload: throughput must grow monotonically with the shard
	// count and reach at least 2x at 8 shards.
	tput := map[string]float64{}
	for _, row := range rep.Sections[0].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad throughput in %v", row)
		}
		tput[row[0]] = v
	}
	if !(tput["1"] < tput["2"] && tput["2"] < tput["4"] && tput["4"] < tput["8"]) {
		t.Errorf("uniform throughput not monotone: %v", tput)
	}
	if tput["8"] < 2*tput["1"] {
		t.Errorf("8 shards = %.1f writes/s, want >= 2x single shard (%.1f)", tput["8"], tput["1"])
	}
	// Hot subtree: all writes on one shard, no scaling expected (within
	// noise of 25%).
	hot := map[string]float64{}
	for _, row := range rep.Sections[1].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad hot-subtree throughput in %v", row)
		}
		hot[row[0]] = v
	}
	if hot["8"] > 1.25*hot["1"] {
		t.Errorf("hot-subtree workload should not scale: %v", hot)
	}
}

func TestCachingBeatsDirectReads(t *testing.T) {
	rep := runQuick(t, "caching")
	rows := rep.Sections[0].Rows
	if len(rows) != 4 {
		t.Fatalf("expected 4 configurations, got %d", len(rows))
	}
	type cols struct{ hit, mean float64 }
	parsed := map[string]cols{}
	for _, row := range rows {
		hit, err1 := strconv.ParseFloat(row[1], 64)
		mean, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if row[6] != "0" {
			t.Errorf("Z3 violations in %q: %s", row[0], row[6])
		}
		parsed[row[0]] = cols{hit: hit, mean: mean}
	}
	base := parsed["FK DynamoDB (no cache)"]
	two := parsed["FK DynamoDB + two-level cache"]
	reg := parsed["FK DynamoDB + regional cache"]
	mem := parsed["FK Redis user store (paper ablation)"]
	if base.hit != 0 {
		t.Errorf("uncached run reports %v%% hits", base.hit)
	}
	// Acceptance: the cache tier must at least halve the mean read
	// latency of the KV-store baseline on the Zipf read-heavy workload.
	for name, v := range map[string]cols{"two-level": two, "regional": reg} {
		if v.hit < 50 {
			t.Errorf("%s hit ratio %.1f%%, want > 50%%", name, v.hit)
		}
		if v.mean > base.mean/2 {
			t.Errorf("%s mean %.2f ms, want <= half of the %.2f ms baseline", name, v.mean, base.mean)
		}
	}
	// The all-mem ablation bounds what caching can reach from below.
	if !(mem.mean < two.mean && two.mean < base.mean) {
		t.Errorf("expected mem < two-level < direct means: %v %v %v", mem.mean, two.mean, base.mean)
	}
}

func TestSec532x(t *testing.T) {
	rep := runQuick(t, "sec532x")
	if len(rep.Sections) != 2 {
		t.Fatalf("expected ARM and vCPU sections, got %d", len(rep.Sections))
	}
	rows := rep.Sections[1].Rows
	small, _ := strconv.ParseFloat(strings.TrimPrefix(rows[0][2], "$"), 64)
	full, _ := strconv.ParseFloat(strings.TrimPrefix(rows[1][2], "$"), 64)
	if small >= full {
		t.Errorf("0.33 vCPU cost ($%v) should be below 1 vCPU ($%v)", small, full)
	}
}

func TestBatchingFoldsHotWrites(t *testing.T) {
	rep := runQuick(t, "batching")
	if len(rep.Sections) != 3 {
		t.Fatalf("expected uniform, hot-node, and churn sections, got %d", len(rep.Sections))
	}
	parse := func(row []string) (tput, storeWr, cost float64) {
		tput, err1 := strconv.ParseFloat(row[1], 64)
		storeWr, err2 := strconv.ParseFloat(row[3], 64)
		cost, err3 := strconv.ParseFloat(strings.TrimPrefix(row[7], "$"), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad row %v", row)
		}
		if row[8] != "0" {
			t.Errorf("ordering violations in %q: %s", row[0], row[8])
		}
		return
	}
	// Hot-node acceptance: the batched distributor must at least halve the
	// user-store write calls, cut $/1M writes, and raise throughput, with
	// zero per-op ordering violations anywhere.
	hot := rep.Sections[1].Rows
	offTput, offWr, offCost := parse(hot[0])
	onTput, onWr, onCost := parse(hot[1])
	if onWr > offWr/2 {
		t.Errorf("batched hot-node store writes/op = %.2f, want <= half of %.2f", onWr, offWr)
	}
	if onCost >= offCost {
		t.Errorf("batched hot-node $/1M = %.4f, want below %.4f", onCost, offCost)
	}
	if onTput <= offTput {
		t.Errorf("batched hot-node throughput %.1f/s, want above %.1f/s", onTput, offTput)
	}
	// Churn: one parent RMW per batch instead of one per create/delete
	// must show up as fewer store writes per op.
	churn := rep.Sections[2].Rows
	_, cOffWr, _ := parse(churn[0])
	_, cOnWr, _ := parse(churn[1])
	if cOnWr >= cOffWr {
		t.Errorf("batched churn store writes/op = %.2f, want below %.2f", cOnWr, cOffWr)
	}
	// Uniform traffic must stay correct (violations checked in parse) and
	// keep its per-op store write (nothing to fold across distinct nodes).
	uni := rep.Sections[0].Rows
	_, uOffWr, _ := parse(uni[0])
	_, uOnWr, _ := parse(uni[1])
	if uOffWr != 1 || uOnWr != 1 {
		t.Errorf("uniform store writes/op = %.2f/%.2f, want 1.00 both", uOffWr, uOnWr)
	}
}

func TestTxnCommitLatencyAndAtomicity(t *testing.T) {
	rep := runQuick(t, "txn")
	if len(rep.Sections) != 2 {
		t.Fatalf("expected latency and contention sections, got %d", len(rep.Sections))
	}
	lat := rep.Sections[0].Rows
	parse := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("bad cell %q in row %v", row[col], row)
		}
		return v
	}
	// The fast path must beat the 2PC rows on p50 commit latency, and
	// latency must grow with the participant count.
	fast, two, four := parse(lat[0], 3), parse(lat[1], 3), parse(lat[2], 3)
	if !(fast < two && two < four) {
		t.Errorf("p50 latency not monotone in participants: %.1f %.1f %.1f", fast, two, four)
	}
	if lat[0][1] != "fast path" || lat[1][1] != "2PC" {
		t.Errorf("path labels wrong: %v %v", lat[0][1], lat[1][1])
	}
	// Contention rows: some commits, and never a partial commit.
	for _, row := range rep.Sections[1].Rows {
		if c := parse(row, 1); c <= 0 {
			t.Errorf("shards=%s: no commits under contention", row[0])
		}
		if row[4] != "0" {
			t.Errorf("shards=%s: partial commits reported: %s", row[0], row[4])
		}
	}
}

func TestChaosMatrixClean(t *testing.T) {
	rep := runQuick(t, "chaos")
	if len(rep.Sections) != 2 {
		t.Fatalf("expected matrix and fault-kind sections, got %d", len(rep.Sections))
	}
	// Every (config, seed, arm) row must come back clean, the control arm
	// must inject zero faults, and the fault arm must inject at least one.
	for _, row := range rep.Sections[0].Rows {
		if row[6] != "clean" {
			t.Errorf("%s seed %s faults=%s: %s", row[0], row[1], row[2], row[6])
		}
		injected, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			t.Fatalf("bad injected count in %v", row)
		}
		if row[2] == "off" && injected != 0 {
			t.Errorf("%s seed %s: control arm injected %d faults", row[0], row[1], injected)
		}
		if row[2] == "default" && injected == 0 {
			t.Errorf("%s seed %s: fault arm injected nothing", row[0], row[1])
		}
	}
	// The representative heavy run must exercise more than one fault class.
	if len(rep.Sections[1].Rows) < 2 {
		t.Errorf("fault-kind breakdown too thin: %v", rep.Sections[1].Rows)
	}
}

func TestTelemetryBreakdownValid(t *testing.T) {
	rep := runQuick(t, "telemetry")
	if len(rep.Sections) != 3 {
		t.Fatalf("expected shard, batch, and class sections, got %d", len(rep.Sections))
	}
	// Shard and batch sweeps: stage sums must telescope to end-to-end and
	// the exported Chrome trace must carry the expected stage names.
	for _, sec := range rep.Sections[:2] {
		for _, row := range sec.Rows {
			n := len(row)
			if row[n-2] != "yes" || row[n-1] != "yes" {
				t.Errorf("%s: stage-sum/chrome check failed: %v", row[0], row)
			}
		}
	}
	// Every request class (plain, batched, cross-shard txn, mid-reshard)
	// must leave zero open spans and zero invariant violations.
	if got := len(rep.Sections[2].Rows); got != 4 {
		t.Fatalf("expected 4 request classes, got %d", got)
	}
	for _, row := range rep.Sections[2].Rows {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("class %s: open=%s violations=%s", row[0], row[3], row[4])
		}
		if row[5] != "yes" || row[6] != "yes" {
			t.Errorf("class %s: stage-sum/chrome check failed: %v", row[0], row)
		}
	}
	// Deeper sharding must shrink the queueing stage mean: the whole point
	// of the breakdown is attributing the speedup to the right stage.
	q := map[string]float64{}
	for _, row := range rep.Sections[0].Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad queueing mean in %v", row)
		}
		q[row[0]] = v
	}
	if !(q["4 shards"] < q["1 shards"]) {
		t.Errorf("queueing mean should drop with shards: %v", q)
	}
}

func TestCostLiveMeasuredAndConserved(t *testing.T) {
	rep := runQuick(t, "cost")
	if len(rep.Sections) != 2 {
		t.Fatalf("expected per-config and load-sweep sections, got %d", len(rep.Sections))
	}
	// Every config must bill real dollars, conserve its ledger, and the
	// headline shape must hold: pay-as-you-go undercuts the provisioned
	// ensemble at low load and overtakes it at high load (a break-even
	// exists inside the sweep).
	per1m := map[string]float64{}
	for _, row := range rep.Sections[0].Rows {
		v, err := strconv.ParseFloat(strings.TrimPrefix(row[2], "$"), 64)
		if err != nil || v <= 0 {
			t.Fatalf("config %s: bad $/1M %q", row[0], row[2])
		}
		per1m[row[0]] = v
		if row[len(row)-1] != "yes" {
			t.Errorf("config %s: conservation check failed: %v", row[0], row)
		}
	}
	if len(per1m) != len(costConfigMatrix) {
		t.Fatalf("expected %d configs, got %d", len(costConfigMatrix), len(per1m))
	}
	sweep := rep.Sections[1].Rows
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimPrefix(s, "$"), 64)
		if err != nil {
			t.Fatalf("bad dollar cell %q", s)
		}
		return v
	}
	first, last := sweep[0], sweep[len(sweep)-1]
	zk := len(first) - 1
	if !(parse(first[1]) < parse(first[zk])) {
		t.Errorf("at %s req/day the plain config should undercut ZooKeeper: %v", first[0], first)
	}
	if !(parse(last[1]) > parse(last[zk])) {
		t.Errorf("at %s req/day the plain config should exceed ZooKeeper: %v", last[0], last)
	}
}

func TestWatchFanoutFlatAndCoalesced(t *testing.T) {
	rep := runQuick(t, "watchfanout")
	// Section A: leader-side per-write work must be identical at every
	// watcher count while node deliveries scale with the population.
	sweep := rep.Sections[0].Rows
	if len(sweep) != 3 {
		t.Fatalf("sweep rows = %d, want 3", len(sweep))
	}
	for _, col := range []int{1, 2, 3} {
		for _, row := range sweep[1:] {
			if row[col] != sweep[0][col] {
				t.Errorf("leader work not flat in column %d: %v vs %v", col, row, sweep[0])
			}
		}
	}
	d0, _ := strconv.ParseInt(sweep[0][4], 10, 64)
	d2, _ := strconv.ParseInt(sweep[2][4], 10, 64)
	if d2 < 50*d0 {
		t.Errorf("node deliveries did not scale with watchers: %d vs %d", d2, d0)
	}
	// Section B: coalescing must cut node deliveries at least 10x on the
	// confd burst.
	burst := rep.Sections[1].Rows
	imm, _ := strconv.ParseInt(burst[0][1], 10, 64)
	coal, err := strconv.ParseInt(burst[1][1], 10, 64)
	if err != nil || imm == 0 || coal == 0 {
		t.Fatalf("burst rows incomplete: %v", burst)
	}
	if float64(imm)/float64(coal) < 10 {
		t.Errorf("coalescing saves only %.1fx, want >= 10x", float64(imm)/float64(coal))
	}
	// Section C: the fan-out tier must do strictly less leader-side
	// system-store work than the legacy watch query.
	cmp := rep.Sections[2].Rows
	legacy, _ := strconv.ParseFloat(cmp[0][1], 64)
	fan, err2 := strconv.ParseFloat(cmp[1][1], 64)
	if err2 != nil || legacy == 0 {
		t.Fatalf("compare rows incomplete: %v", cmp)
	}
	if fan >= legacy {
		t.Errorf("fan-out tier not cheaper: %v vs %v syskv ops/write", fan, legacy)
	}
}
