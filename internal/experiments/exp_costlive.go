package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/txn"
)

func init() {
	register(Experiment{
		ID:    "cost",
		Title: "Measured $/1M requests per pipeline config vs a provisioned ZooKeeper ensemble",
		Ref:   "Figure 14 + Section 5.3.4 (measured, not analytic)",
		Run:   runCostLive,
	})
}

// costRun is one measured workload's ledger summary.
type costRun struct {
	reqs      int64   // client requests completed (writes + reads; a multi is one request)
	usd       float64 // ledger grand total over the measured window
	sysUSD    float64 // system-bucket share (control plane, untraced reads)
	conserved bool    // AttributedPd == TotalPd: nothing orphaned or double-billed
}

func (r costRun) perReq() float64 {
	if r.reqs == 0 {
		return 0
	}
	return r.usd / float64(r.reqs)
}

func (r costRun) per1M() float64 { return r.perReq() * 1e6 }

// runCostWorkload drives a mixed workload (each session alternates one
// write — a cross-shard multi in "txn" mode — and one read) with cost
// accounting on and returns the attributed dollars. The ledger is reset
// after setup so the numbers cover only the measured requests; in
// "reshard" mode a live /hot split lands mid-workload and its
// control-plane spend shows up in the system bucket.
func runCostWorkload(seed int64, cfg core.Config, mode string, sessions, ops int) costRun {
	cfg.CostAccounting = true
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	var res costRun
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		paths := uniformPaths(sessions)
		if mode == "reshard" {
			if _, err := setup.Create("/hot", nil, 0); err != nil {
				return
			}
			paths = hotPaths(sessions)
		}
		for _, p := range paths {
			if _, err := setup.Create(p, nil, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		d.ResetMetrics()
		payload := bytes.Repeat([]byte("x"), 128)
		var reqs int64
		done := sim.NewWaitGroup(k)
		for i := range clients {
			i := i
			done.Add(1)
			k.Go(fmt.Sprintf("writer-%d", i), func() {
				defer done.Done()
				for op := 0; op < ops; op++ {
					switch mode {
					case "txn":
						partner := paths[(i+1)%len(paths)]
						if _, err := clients[i].Multi(
							txn.SetData(paths[i], payload, -1),
							txn.SetData(partner, payload, -1)); err == nil {
							reqs++
						}
					default:
						if _, err := clients[i].SetData(paths[i], payload, -1); err == nil {
							reqs++
						}
					}
					if _, _, err := clients[i].GetData(paths[i]); err == nil {
						reqs++
					}
				}
			})
		}
		if mode == "reshard" {
			k.Go("splitter", func() {
				k.Sleep(5 * sim.Ms(1))
				_ = d.SplitSubtree("/hot", 2)
			})
		}
		done.Wait()
		for _, c := range clients {
			c.Close()
		}
		setup.Close()
		l := d.Obs.Cost
		res = costRun{
			reqs:      reqs,
			usd:       l.TotalUSD(),
			sysUSD:    obs.PdToUSD(l.SystemPd()),
			conserved: l.AttributedPd() == l.TotalPd(),
		}
	})
	k.Run()
	k.Shutdown()
	return res
}

// costConfigMatrix is the paper's headline comparison set: the
// paper-faithful pipeline plus each cost-bearing extension.
var costConfigMatrix = []struct {
	label string
	cfg   core.Config
	mode  string
}{
	{"plain (paper-faithful)", core.Config{}, "plain"},
	{"batching (2 shards, fold 16)", core.Config{WriteShards: 2, BatchWrites: true, MaxBatch: 16}, "plain"},
	{"caching (two-level)", core.Config{CacheMode: core.CacheTwoLevel}, "plain"},
	{"txn (4 shards, cross-shard)", core.Config{WriteShards: 4, EnableTxn: true}, "txn"},
	{"reshard (live split mid-run)", core.Config{WriteShards: 2, DynamicShards: true}, "reshard"},
}

func runCostLive(cfg RunConfig) *Report {
	r := &Report{
		ID:    "cost",
		Title: "Measured $/1M requests vs provisioned ZooKeeper",
		Ref:   "Figure 14 + Section 5.3.4 (measured, not analytic)",
	}
	sessions := 6
	ops := cfg.reps(5, 20)

	runs := make([]costRun, len(costConfigMatrix))
	s := r.AddSection(
		fmt.Sprintf("Attributed cost per config (%d sessions × %d write+read pairs of 128 B)", sessions, ops),
		[]string{"configuration", "requests", "$/1M req", "system $ share", "conserved"})
	for i, tc := range costConfigMatrix {
		run := runCostWorkload(cfg.Seed+int64(i), tc.cfg, tc.mode, sessions, ops)
		runs[i] = run
		share := 0.0
		if run.usd > 0 {
			share = run.sysUSD / run.usd
		}
		s.AddRow(tc.label, fmt.Sprintf("%d", run.reqs), dollars(run.per1M()),
			fmt.Sprintf("%.0f%%", share*100), check(run.conserved))
	}

	// The headline comparison: pay-as-you-go spend scales with load, the
	// provisioned ensemble costs the same every day.
	z := costmodel.ZooKeeperDeployment{P: cloud.AWSPricing(), Servers: 3, InstanceType: "t3.small", DiskGB: 20}
	zkDaily := z.TotalDailyCost()
	loads := []float64{1e5, 5e5, 1e6, 2e6, 5e6, 1e7}
	cols := []string{"requests/day"}
	for _, tc := range costConfigMatrix {
		cols = append(cols, tc.label)
	}
	cols = append(cols, "ZooKeeper 3x t3.small")
	s2 := r.AddSection("Daily cost vs load ($/day; measured per-request cost x volume)", cols)
	for _, load := range loads {
		row := []string{fmt.Sprintf("%.1fM", load/1e6)}
		for i := range costConfigMatrix {
			row = append(row, dollars(runs[i].perReq()*load))
		}
		row = append(row, dollars(zkDaily))
		s2.AddRow(row...)
	}

	breakEvens := make([]float64, len(runs))
	for i, run := range runs {
		if p := run.perReq(); p > 0 {
			breakEvens[i] = zkDaily / p
		}
	}
	r.Note("Break-even volumes vs the $%.2f/day ensemble: %s.", zkDaily, breakEvenList(breakEvens))
	m := costmodel.NewAWSModel(2048)
	r.Note("Fidelity: the plain config's measured write-heavy $/1M sits beside the analytic Table 4 write cost, $%.2f/1M (the measured mix includes the cheap read half of every pair).",
		1e6*m.WriteCost(128, false))
	r.Note("Every row conserves: the sum of per-request attributed picodollars equals the ledger's charged total exactly — no charge is orphaned or double-billed.")
	return r
}

// breakEvenList renders each config's break-even daily volume.
func breakEvenList(bes []float64) string {
	var b bytes.Buffer
	for i, be := range bes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.1fM req/day", costConfigMatrix[i].label, be/1e6)
	}
	return b.String()
}
