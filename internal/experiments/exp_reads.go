package experiments

import (
	"bytes"
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/zk"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Read operations in FaaSKeeper and ZooKeeper",
		Ref:   "Figure 8",
		Run:   runFig8,
	})
}

// fkReadMedian measures get_data on a FaaSKeeper deployment with the given
// user store across node sizes.
func fkReadMedian(seed int64, profile *cloud.Profile, store core.StoreKind, sizes []int, reps int) map[int]float64 {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, core.Config{Profile: profile, UserStore: store})
	out := map[int]float64{}
	k.Go("bench", func() {
		c, err := fkclient.Connect(d, "bench", profile.Home)
		if err != nil {
			return
		}
		defer c.Close()
		for i, size := range sizes {
			path := fmt.Sprintf("/n%d", i)
			if _, err := c.Create(path, bytes.Repeat([]byte("x"), size), 0); err != nil {
				return
			}
			sample := stats.NewSample(reps)
			for rep := 0; rep < reps; rep++ {
				t0 := k.Now()
				if _, _, err := c.GetData(path); err != nil {
					return
				}
				sample.AddDur(k.Now() - t0)
			}
			out[size] = sample.Percentile(50)
		}
	})
	k.Run()
	k.Shutdown()
	return out
}

// zkReadMedian measures get_data against the ZooKeeper baseline.
func zkReadMedian(seed int64, profile *cloud.Profile, sizes []int, reps int) map[int]float64 {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, profile)
	ens := zk.NewEnsemble(env, zk.Config{Servers: 3})
	out := map[int]float64{}
	k.Go("bench", func() {
		c, err := zk.Connect(ens, 0)
		if err != nil {
			return
		}
		defer c.Close()
		for i, size := range sizes {
			path := fmt.Sprintf("/n%d", i)
			if _, err := c.Create(path, bytes.Repeat([]byte("x"), size), 0); err != nil {
				return
			}
			sample := stats.NewSample(reps)
			for rep := 0; rep < reps; rep++ {
				t0 := k.Now()
				if _, _, err := c.GetData(path); err != nil {
					return
				}
				sample.AddDur(k.Now() - t0)
			}
			out[size] = sample.Percentile(50)
		}
	})
	k.RunFor(2 * 60 * sim.Ms(60000))
	k.Shutdown()
	return out
}

func runFig8(cfg RunConfig) *Report {
	r := &Report{ID: "fig8", Title: "Read latency vs node size", Ref: "Figure 8"}
	reps := cfg.reps(30, 100)
	awsSizes := []int{1024, 16 * 1024, 64 * 1024, 128 * 1024, 250 * 1024}
	if cfg.Quick {
		awsSizes = []int{1024, 64 * 1024, 250 * 1024}
	}

	aws := cloud.AWSProfile()
	ddb := fkReadMedian(cfg.Seed, aws, core.StoreKV, awsSizes, reps)
	s3 := fkReadMedian(cfg.Seed+1, aws, core.StoreObject, awsSizes, reps)
	redis := fkReadMedian(cfg.Seed+2, aws, core.StoreMem, awsSizes, reps)
	hybrid := fkReadMedian(cfg.Seed+3, aws, core.StoreHybrid, awsSizes, reps)
	zkAws := zkReadMedian(cfg.Seed+4, aws, awsSizes, reps)

	s1 := r.AddSection("AWS: get_data median ms",
		[]string{"size", "FK DynamoDB", "FK S3", "FK Redis", "FK hybrid", "ZooKeeper"})
	for _, size := range awsSizes {
		s1.AddRow(sizeLabel(size), f2(ddb[size]), f2(s3[size]), f2(redis[size]), f2(hybrid[size]), f2(zkAws[size]))
	}

	gcp := cloud.GCPProfile()
	gcpSizes := awsSizes
	ds := fkReadMedian(cfg.Seed+5, gcp, core.StoreKV, gcpSizes, reps)
	gcs := fkReadMedian(cfg.Seed+6, gcp, core.StoreObject, gcpSizes, reps)
	zkGcp := zkReadMedian(cfg.Seed+7, gcp, gcpSizes, reps)

	s2 := r.AddSection("GCP: get_data median ms",
		[]string{"size", "FK Datastore", "FK Cloud Storage", "ZooKeeper"})
	for _, size := range gcpSizes {
		s2.AddRow(sizeLabel(size), f2(ds[size]), f2(gcs[size]), f2(zkGcp[size]))
	}

	small, large := awsSizes[0], awsSizes[len(awsSizes)-1]
	r.Note("Cloud-native storage dominates read time: FK/DynamoDB %.1f ms vs ZooKeeper %.1f ms at %s.",
		ddb[small], zkAws[small], sizeLabel(small))
	r.Note("FaaSKeeper with the in-memory store (%.1f ms) is on par with self-hosted ZooKeeper (%.1f ms).",
		redis[small], zkAws[small])
	r.Note("GCP Datastore is %.1fx slower than DynamoDB on small nodes and %.0f%% faster on large nodes (paper: 2.3x / 30%%).",
		ds[small]/ddb[small], (1-ds[large]/ddb[large])*100)
	return r
}
