package experiments

import (
	"fmt"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/faas"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/cloud/network"
	"faaskeeper/internal/cloud/queue"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig7a",
		Title: "End-to-end latency of FaaS invocation on AWS with a TCP reply",
		Ref:   "Figure 7a",
		Run:   func(cfg RunConfig) *Report { return runInvocationLatency(cfg, cloud.AWSProfile()) },
	})
	register(Experiment{
		ID:    "fig7c",
		Title: "End-to-end latency of FaaS invocation on GCP with a TCP reply",
		Ref:   "Figure 7c",
		Run:   func(cfg RunConfig) *Report { return runInvocationLatency(cfg, cloud.GCPProfile()) },
	})
	register(Experiment{
		ID:    "fig7b",
		Title: "Throughput of function invocations on queues",
		Ref:   "Figure 7b",
		Run:   runFig7b,
	})
}

// invocationRig wires one queue (or a stream, or nothing for direct
// invocation) to an echo function that replies to the client over TCP.
type invocationRig struct {
	k      *sim.Kernel
	env    *cloud.Env
	p      *faas.Platform
	q      *queue.Queue
	stream *kv.Stream
	tbl    *kv.Table
	client *network.End
	ctx    cloud.Ctx
}

func newInvocationRig(seed int64, profile *cloud.Profile, kind cloud.QueueKind, useStream bool) *invocationRig {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, profile)
	rig := &invocationRig{k: k, env: env, p: faas.NewPlatform(env), ctx: cloud.ClientCtx(profile.Home)}
	conn := network.NewConn(env, profile.Home, profile.Home)
	rig.client = conn.B()
	cloudEnd := conn.A()
	rig.p.Deploy(faas.Config{Name: "echo", MemoryMB: 2048}, func(inv *faas.Invocation) error {
		n := len(inv.Messages)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			cloudEnd.Send("done", 16)
		}
		return nil
	})
	switch {
	case useStream:
		rig.tbl = kv.NewTable(env, "stream-src")
		rig.stream = rig.tbl.EnableStream()
		rig.p.AddStreamTrigger(rig.stream, "echo")
	case kind != "":
		rig.q = queue.New(env, "bench", kind)
		rig.p.AddQueueTrigger(rig.q, "echo", 1)
	}
	return rig
}

// send fires one invocation and returns when the TCP reply arrives.
func (rig *invocationRig) send(payload []byte) {
	switch {
	case rig.stream != nil:
		rig.tbl.Put(rig.ctx, fmt.Sprintf("k%d", rig.k.Now()), kv.Item{"d": kv.B(payload)}, nil)
	case rig.q != nil:
		rig.q.Send(rig.ctx, "g", payload)
	default:
		rig.p.Invoke(rig.ctx, "echo", payload)
		return // Invoke blocks for the full round trip already
	}
	rig.client.Recv()
}

func runInvocationLatency(cfg RunConfig, profile *cloud.Profile) *Report {
	id := "fig7a"
	if profile.Name == "gcp" {
		id = "fig7c"
	}
	r := &Report{ID: id, Title: "Invocation latency on " + profile.Name, Ref: "Figure 7a/7c"}
	s := r.AddSection("End-to-end ms (warm), per payload size",
		[]string{"Trigger", "Size", "Min", "p50", "p95", "p99", "Max"})
	reps := cfg.reps(60, 500)

	type variant struct {
		name      string
		kind      cloud.QueueKind
		useStream bool
	}
	variants := []variant{{name: "Direct"}}
	if profile.Name == "aws" {
		variants = append(variants,
			variant{name: "SQS", kind: cloud.QueueStandard},
			variant{name: "SQS FIFO", kind: cloud.QueueFIFO},
			variant{name: "DynamoDB Stream", useStream: true},
		)
	} else {
		variants = append(variants,
			variant{name: "PubSub", kind: cloud.QueueStandard},
			variant{name: "PubSub FIFO", kind: cloud.QueueOrdered},
		)
	}
	var fifoP50, directP50 float64
	for vi, v := range variants {
		for _, size := range []int{64, 64 * 1024} {
			rig := newInvocationRig(cfg.Seed+int64(vi), profile, v.kind, v.useStream)
			sample := stats.NewSample(reps)
			rig.k.Go("client", func() {
				payload := make([]byte, size)
				rig.send(payload) // warm the sandbox; not measured
				for i := 0; i < reps; i++ {
					t0 := rig.k.Now()
					rig.send(payload)
					sample.AddDur(rig.k.Now() - t0)
					rig.k.Sleep(50 * sim.Ms(1)) // idle between probes
				}
			})
			rig.k.Run()
			rig.k.Shutdown()
			sum := sample.Summarize()
			s.AddRow(sumRow(v.name, sizeLabel(size), sum)...)
			if size == 64 {
				switch v.name {
				case "Direct":
					directP50 = sum.P50
				case "SQS FIFO", "PubSub FIFO":
					fifoP50 = sum.P50
				}
			}
		}
	}
	if profile.Name == "aws" {
		r.Note("SQS FIFO p50 (%.1f ms) beats direct invocation (%.1f ms), as the paper observed; paper p50s: 24.22 vs 39.0 ms.", fifoP50, directP50)
		r.Note("DynamoDB Streams adds >200 ms of trigger latency (paper p50: 242.65 ms).")
	} else {
		r.Note("Ordered Pub/Sub p50 (%.1f ms) is far slower than direct invocation (%.1f ms); paper: 201.22 vs 83.29 ms.", fifoP50, directP50)
	}
	return r
}

func runFig7b(cfg RunConfig) *Report {
	r := &Report{ID: "fig7b", Title: "Queue throughput under load", Ref: "Figure 7b"}
	s := r.AddSection("Received results over 1 s windows, 64 B payload (op/s)",
		[]string{"offered op/s", "SQS p50", "SQS p99", "FIFO p50", "FIFO p99", "Stream p50", "Stream p99"})
	offered := []int{25, 50, 75, 100, 125, 150, 175, 200}
	if cfg.Quick {
		offered = []int{25, 100, 200}
	}
	var fifoAt200 float64
	for _, rate := range offered {
		std := queueLoadRun(cfg.Seed, cloud.AWSProfile(), cloud.QueueStandard, false, rate)
		fifo := queueLoadRun(cfg.Seed+1, cloud.AWSProfile(), cloud.QueueFIFO, false, rate)
		strm := queueLoadRun(cfg.Seed+2, cloud.AWSProfile(), "", true, rate)
		s.AddRow(fmt.Sprintf("%d", rate),
			f1(std.p50), f1(std.p99), f1(fifo.p50), f1(fifo.p99), f1(strm.p50), f1(strm.p99))
		if rate == 200 {
			fifoAt200 = fifo.p50
		}
	}
	r.Note("FIFO queues saturate near one hundred requests per second (measured %.0f op/s at 200 offered); the paper draws the same ceiling.", fifoAt200)
	r.Note("Unordered queues keep up but accumulate bursts of large batches, visible as p50/p99 spread.")
	return r
}

// queueLoadRun offers rate msgs/s for 10 s and measures the delivery rate.
func queueLoadRun(seed int64, profile *cloud.Profile, kind cloud.QueueKind, useStream bool, rate int) ratePair {
	rig := newInvocationRig(seed, profile, kind, useStream)
	counter := stats.NewCounter(time.Second)
	// The synchronous send API takes ~13 ms, so a single closed-loop
	// producer cannot offer 200 op/s; spread the load over processes, as
	// the paper's multiprocessing benchmark does.
	producers := max(1, rate/40)
	for pi := 0; pi < producers; pi++ {
		pi := pi
		rig.k.Go(fmt.Sprintf("producer-%d", pi), func() {
			perProducer := rate / producers
			if perProducer == 0 {
				perProducer = 1
			}
			interval := time.Second / time.Duration(perProducer)
			payload := make([]byte, 64)
			rig.k.Sleep(time.Duration(pi) * interval / time.Duration(producers))
			for rig.k.Now() < 10*time.Second {
				issueAt := rig.k.Now()
				switch {
				case rig.stream != nil:
					rig.tbl.Put(rig.ctx, fmt.Sprintf("k%d-%d", pi, rig.k.Now()), kv.Item{"d": kv.B(payload)}, nil)
				default:
					rig.q.Send(rig.ctx, "g", payload)
				}
				if next := issueAt + interval; next > rig.k.Now() {
					rig.k.Sleep(next - rig.k.Now())
				}
			}
		})
	}
	rig.k.Go("collector", func() {
		for {
			_, ok := rig.client.Recv()
			if !ok {
				return
			}
			counter.Tick(rig.k.Now())
		}
	})
	rig.k.RunUntil(15 * time.Second)
	rig.k.Shutdown()
	rates := counter.Rates()
	if len(rates) > 10 {
		rates = rates[:10] // the measurement window
	}
	sample := stats.NewSample(len(rates))
	for _, v := range rates {
		sample.Add(v)
	}
	if sample.N() == 0 {
		return ratePair{}
	}
	return ratePair{p50: sample.Percentile(50), p99: sample.Percentile(99)}
}
