package experiments

import (
	"fmt"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/kv"
	"faaskeeper/internal/fksync"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "tab6a",
		Title: "Latency of synchronization primitives on the key-value store",
		Ref:   "Table 6a (Figure 6a)",
		Run:   runTab6a,
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "Throughput of standard and locked key-value updates",
		Ref:   "Figure 6b",
		Run:   runFig6b,
	})
}

func runTab6a(cfg RunConfig) *Report {
	r := &Report{ID: "tab6a", Title: "Synchronization primitive latency", Ref: "Table 6a"}
	k := sim.NewKernel(cfg.Seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	tbl := kv.NewTable(env, "system")
	locks := fksync.NewLockManager(env, tbl, time.Second)
	ctr := fksync.NewCounter(tbl, "ctr", "v")
	lst := fksync.NewList(tbl, "lst", "w")
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	reps := cfg.reps(150, 1000)

	s := r.AddSection("Latency in ms over warmed-up data",
		[]string{"Primitive", "Size", "Min", "p50", "p95", "p99", "Max"})

	measure := func(fn func()) stats.Summary {
		sample := stats.NewSample(reps)
		for i := 0; i < reps; i++ {
			t0 := k.Now()
			fn()
			sample.AddDur(k.Now() - t0)
		}
		return sample.Summarize()
	}

	k.Go("bench", func() {
		for _, size := range []int{1024, 64 * 1024} {
			item := kv.Item{"d": kv.B(make([]byte, size))}
			tbl.Put(ctx, "node", item, nil)
			w := measure(func() {
				tbl.Update(ctx, "node", []kv.Update{kv.Set{Name: "x", V: kv.N(1)}}, nil)
			})
			s.AddRow(sumRow("Regular DynamoDB write", sizeLabel(size), w)...)
			acqS := stats.NewSample(reps)
			relS := stats.NewSample(reps)
			for i := 0; i < reps; i++ {
				t0 := k.Now()
				l, _, err := locks.Acquire(ctx, "node")
				acqS.AddDur(k.Now() - t0)
				if err != nil {
					continue
				}
				t0 = k.Now()
				locks.Release(ctx, l)
				relS.AddDur(k.Now() - t0)
			}
			s.AddRow(sumRow("Timed lock acquire", sizeLabel(size), acqS.Summarize())...)
			s.AddRow(sumRow("Timed lock release", sizeLabel(size), relS.Summarize())...)
		}
		c := measure(func() { ctr.Add(ctx, 1) })
		s.AddRow(sumRow("Atomic counter", "8", c)...)
		// Append to a fresh item each repetition so the measured cost is
		// the append itself, not the accumulated item size.
		i := 0
		one := measure(func() {
			i++
			fksync.NewList(tbl, fmt.Sprintf("lst1-%d", i), "w").Append(ctx, 7)
		})
		s.AddRow(sumRow("Atomic list append", "1", one)...)
		big := make([]int64, 1024*128) // 1024 appended entries of 1 kB each
		bigApp := measure(func() {
			i++
			fksync.NewList(tbl, fmt.Sprintf("lstN-%d", i), "w").Append(ctx, big...)
		})
		s.AddRow(sumRow("Atomic list append", "1024x1kB", bigApp)...)
		_ = lst
	})
	k.Run()
	k.Shutdown()
	r.Note("Paper medians: regular write 4.35/66.31 ms (1/64 kB); lock acquire 6.8/67.16 ms; counter 5.59 ms; list append 5.89/76.01 ms.")
	r.Note("The conditional update surcharge (~2.5 ms median) and the item-size penalty on locks motivate separating system and user storage.")
	return r
}

func runFig6b(cfg RunConfig) *Report {
	r := &Report{ID: "fig6b", Title: "Locked vs standard update throughput", Ref: "Figure 6b"}
	s := r.AddSection("Median processed op/s over 1 s windows (10 clients, 5 s run)",
		[]string{"offered op/s", "standard p50", "standard p99", "locked p50", "locked p99"})
	offered := []int{100, 200, 400, 600, 800, 1000, 1200}
	if cfg.Quick {
		offered = []int{100, 400, 800, 1200}
	}
	var effAtPeak float64
	for _, rate := range offered {
		std := throughputRun(cfg.Seed, rate, false)
		lck := throughputRun(cfg.Seed+1, rate, true)
		s.AddRow(fmt.Sprintf("%d", rate),
			f1(std.p50), f1(std.p99), f1(lck.p50), f1(lck.p99))
		if rate == offered[len(offered)-1] && std.p50 > 0 {
			effAtPeak = lck.p50 / std.p50
		}
	}
	r.Note("Locking efficiency at the highest load: %.0f%% of standard update throughput (paper: 84%%).", effAtPeak*100)
	r.Note("Table capacity admits ~1430 standard read+write pairs per second; conditional (locked) updates consume 1.4x capacity each, so locked pairs saturate near 1000/s — the paper's 'up to 1200 requests per second'.")
	return r
}

type ratePair struct{ p50, p99 float64 }

// throughputRun offers `rate` operation pairs/s from 10 clients for 5
// seconds and reports the processed-rate distribution. Following the
// paper, the standard variant issues a read+write pair and the locked
// variant an acquire+commit pair; both pairs contend for the same table
// capacity, which is what makes the locked version land at ~84%.
func throughputRun(seed int64, rate int, locked bool) ratePair {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	tbl := kv.NewTable(env, "bench")
	// DynamoDB admits ~2860 request units/s on this table; conditional
	// updates cost 1.4 units, capping locked pairs at ~1000/s — the "up to
	// 1200 requests per second" and 84% efficiency the paper reports.
	tbl.SetWriteCapacity(2860, 1.4)
	locks := fksync.NewLockManager(env, tbl, time.Second)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	counter := stats.NewCounter(time.Second)

	// Open-loop issue from 10 client processes: each submission runs in
	// its own process, so throughput is bounded by the store, not by the
	// submitters' round-trip latency.
	clients := 10
	perClient := rate / clients
	if perClient == 0 {
		perClient = 1
	}
	for c := 0; c < clients; c++ {
		c := c
		name := fmt.Sprintf("client-%d", c)
		k.Go(name, func() {
			interval := time.Second / time.Duration(perClient)
			i := 0
			for k.Now() < 5*time.Second {
				// Spread each client's updates over its own pool of 128 items
				// so independent transactions never contend on one lock
				// (the paper's "independent updates" setting).
				key := fmt.Sprintf("item-%d-%d", c, i%128)
				i++
				k.Go(name+"-op", func() {
					if locked {
						l, _, err := locks.Acquire(ctx, key)
						if err != nil {
							return // collision: not a processed request
						}
						if _, err := locks.CommitUnlock(ctx, l,
							[]kv.Update{kv.Add{Name: "v", Delta: 1}}); err != nil {
							return
						}
					} else {
						tbl.Get(ctx, key, true)
						if _, err := tbl.Update(ctx, key,
							[]kv.Update{kv.Add{Name: "v", Delta: 1}}, nil); err != nil {
							return
						}
					}
					counter.Tick(k.Now())
				})
				k.Sleep(interval)
			}
		})
	}
	k.RunUntil(8 * time.Second)
	k.Shutdown()
	rates := counter.Rates()
	s := stats.NewSample(len(rates))
	for _, v := range rates {
		s.Add(v)
	}
	return ratePair{p50: s.Percentile(50), p99: s.Percentile(99)}
}
