// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 5). Each experiment builds the systems it
// needs inside a fresh simulation kernel, drives the workload, and renders
// a Report whose rows mirror what the paper plots, so the reproduction can
// be compared side by side with the published results.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"faaskeeper/internal/stats"
)

// RunConfig parameterizes an experiment run.
type RunConfig struct {
	Seed  int64
	Quick bool // reduced repetition counts for tests and benchmarks
}

// reps picks the repetition count for the mode.
func (c RunConfig) reps(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Ref   string // paper figure/table
	Run   func(RunConfig) *Report
}

// Report is an experiment's rendered result.
type Report struct {
	ID       string
	Title    string
	Ref      string
	Sections []*Section
	Notes    []string
}

// Section is one table within a report.
type Section struct {
	Caption string
	Columns []string
	Rows    [][]string
}

// AddSection appends a table and returns it for row insertion.
func (r *Report) AddSection(caption string, columns []string) *Section {
	s := &Section{Caption: caption, Columns: columns}
	r.Sections = append(r.Sections, s)
	return s
}

// AddRow appends one formatted row.
func (s *Section) AddRow(cells ...string) {
	s.Rows = append(s.Rows, cells)
}

// Note appends a free-text observation.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned text form of the report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s (%s) ===\n", r.ID, r.Title, r.Ref)
	for _, s := range r.Sections {
		if s.Caption != "" {
			fmt.Fprintf(&b, "\n-- %s --\n", s.Caption)
		}
		widths := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			widths[i] = len(c)
		}
		for _, row := range s.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
			}
			b.WriteByte('\n')
		}
		writeRow(s.Columns)
		sep := make([]string, len(s.Columns))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range s.Rows {
			writeRow(row)
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  * %s\n", n)
		}
	}
	return b.String()
}

// registry of experiments in presentation order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// formatting helpers shared by all experiments.

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func dollars(v float64) string { return fmt.Sprintf("$%.4f", v) }

func sizeLabel(b int) string {
	switch {
	case b < 1024:
		return fmt.Sprintf("%dB", b)
	case b < 1024*1024:
		return fmt.Sprintf("%dkB", b/1024)
	default:
		return fmt.Sprintf("%dMB", b/(1024*1024))
	}
}

// sumRow renders a stats summary in the paper's min/p50/p95/p99/max shape.
func sumRow(label string, sub string, s stats.Summary) []string {
	return []string{label, sub, f2(s.Min), f2(s.P50), f2(s.P95), f2(s.P99), f2(s.Max)}
}

// latCells renders the "p50 ms"/"p99 ms" column pair every latency table
// shares; f selects the precision the table uses (f1 or f2).
func latCells(s *stats.Sample, f func(float64) string) (p50, p99 string) {
	return f(s.Percentile(50)), f(s.Percentile(99))
}
