package experiments

import (
	"bytes"
	"fmt"
	"math/rand"

	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/ycsb"
)

func init() {
	register(Experiment{
		ID:    "caching",
		Title: "Read-path cache tier: hit ratio, latency, and cost",
		Ref:   "beyond the paper (ROADMAP: caching)",
		Run:   runCaching,
	})
}

// cachingPayloadB is the node size of the caching workload.
const cachingPayloadB = 256

// cachingRun is one configuration's measurement.
type cachingRun struct {
	reads   int
	lat     *stats.Sample
	l1Hits  int64
	l2Hits  int64
	misses  int64
	z3Viol  int
	elapsed float64 // seconds of the read phase
	ok      bool
}

// hitRatio is the client-observed share of reads served by either cache
// level (0 with the tier off).
func (r cachingRun) hitRatio() float64 {
	total := r.l1Hits + r.l2Hits + r.misses
	if total == 0 {
		return 0
	}
	return float64(r.l1Hits+r.l2Hits) / float64(total)
}

// runCachingWorkload drives the Zipf(0.99) read-heavy workload: `readers`
// sessions issue zipf-chosen get_data calls against a flat node set while
// one writer session keeps overwriting zipf-chosen nodes, so the leader's
// push invalidations and the cache's fill/floor races actually exercise.
// Each reader checks Z3 inline: a node's observed mzxid must never regress
// within the session.
func runCachingWorkload(seed int64, cfg core.Config, readers, readsPer, nodeCount int) cachingRun {
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	res := cachingRun{reads: readers * readsPer, lat: stats.NewSample(readers * readsPer)}
	paths := make([]string, nodeCount)
	for i := range paths {
		paths[i] = fmt.Sprintf("/app/n%d", i)
	}
	var t0, t1 sim.Time
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		payload := bytes.Repeat([]byte("x"), cachingPayloadB)
		if _, err := setup.Create("/app", nil, 0); err != nil {
			return
		}
		for _, p := range paths {
			if _, err := setup.Create(p, payload, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, readers)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("r%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		writer, err := fkclient.Connect(d, "writer", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		d.ResetMetrics()
		readersDone := sim.NewWaitGroup(k)
		writerDone := sim.NewWaitGroup(k)
		stopWriter := false
		t0 = k.Now()
		writerDone.Add(1)
		k.Go("caching-writer", func() {
			defer writerDone.Done()
			z := ycsb.NewZipfian(int64(nodeCount))
			r := rand.New(rand.NewSource(seed*7717 + 13))
			for !stopWriter {
				if _, err := writer.SetData(paths[z.Next(r)], payload, -1); err != nil {
					return
				}
				k.Sleep(10 * sim.Ms(1))
			}
		})
		viol := make([]int, readers)
		for i := range clients {
			i := i
			readersDone.Add(1)
			k.Go(fmt.Sprintf("caching-reader-%d", i), func() {
				defer readersDone.Done()
				z := ycsb.NewZipfian(int64(nodeCount))
				r := rand.New(rand.NewSource(seed + int64(i)*919))
				lastRead := map[string]int64{}
				for op := 0; op < readsPer; op++ {
					p := paths[z.Next(r)]
					ts := k.Now()
					_, st, err := clients[i].GetData(p)
					if err != nil {
						continue
					}
					res.lat.AddDur(k.Now() - ts)
					if st.Mzxid < lastRead[p] {
						viol[i]++
					}
					lastRead[p] = st.Mzxid
					k.Sleep(sim.Time(r.Intn(4)) * sim.Ms(1))
				}
			})
		}
		readersDone.Wait()
		t1 = k.Now()
		stopWriter = true
		writerDone.Wait()
		for i, c := range clients {
			h1, h2, mi := c.CacheStats()
			res.l1Hits += h1
			res.l2Hits += h2
			res.misses += mi
			res.z3Viol += viol[i]
			c.Close()
		}
		writer.Close()
		setup.Close()
		res.ok = res.lat.N() == res.reads
	})
	k.Run()
	k.Shutdown()
	res.elapsed = (t1 - t0).Seconds()
	return res
}

// cachingDollarsPer1M prices one million reads of this configuration:
// per-operation storage charges at the measured hit ratio plus the
// provisioned cache VM amortized over the time those reads take at the
// measured throughput.
func cachingDollarsPer1M(m costmodel.Model, run cachingRun, perOpFree bool, vmNodes int) float64 {
	perOp := m.CachedReadCost(run.hitRatio(), cachingPayloadB, true)
	if perOpFree {
		perOp = 0
	}
	cost := perOp * 1e6
	if vmNodes > 0 && run.elapsed > 0 {
		tput := float64(run.reads) / run.elapsed
		cost += m.CacheNodeDailyCost(vmNodes) * (1e6 / (tput * 86400))
	}
	return cost
}

func runCaching(cfg RunConfig) *Report {
	r := &Report{
		ID:    "caching",
		Title: "Read-path cache tier: hit ratio, latency, and cost",
		Ref:   "beyond the paper (ROADMAP: caching)",
	}
	readers := 6
	readsPer := cfg.reps(25, 120)
	nodes := 32

	type variant struct {
		label     string
		cc        core.Config
		perOpFree bool // no per-operation storage charges (mem-backed)
		vmNodes   int  // provisioned VMs to amortize
	}
	variants := []variant{
		{"FK DynamoDB (no cache)", core.Config{UserStore: core.StoreKV}, false, 0},
		{"FK DynamoDB + regional cache", core.Config{UserStore: core.StoreKV, CacheMode: core.CacheRegional}, false, 1},
		{"FK DynamoDB + two-level cache", core.Config{UserStore: core.StoreKV, CacheMode: core.CacheTwoLevel}, false, 1},
		{"FK Redis user store (paper ablation)", core.Config{UserStore: core.StoreMem}, true, 1},
	}

	s := r.AddSection(
		fmt.Sprintf("AWS, Zipf(0.99) read-heavy: %d readers × %d reads of %d B over %d nodes, concurrent writer",
			readers, readsPer, cachingPayloadB, nodes),
		[]string{"configuration", "hit %", "mean ms", "p50 ms", "p99 ms", "$/1M reads", "Z3 viol"})
	m := costmodel.NewAWSModel(2048)
	var baseMean, cachedMean float64
	var cachedHit float64
	for i, v := range variants {
		run := runCachingWorkload(cfg.Seed+int64(i)*31, v.cc, readers, readsPer, nodes)
		if !run.ok {
			s.AddRow(v.label, "-", "-", "-", "-", "-", "-")
			continue
		}
		mean := run.lat.Mean()
		switch i {
		case 0:
			baseMean = mean
		case 2:
			cachedMean = mean
			cachedHit = run.hitRatio()
		}
		p50, p99 := latCells(run.lat, f2)
		s.AddRow(v.label,
			f1(run.hitRatio()*100),
			f2(mean), p50, p99,
			dollars(cachingDollarsPer1M(m, run, v.perOpFree, v.vmNodes)),
			fmt.Sprintf("%d", run.z3Viol))
	}

	// Capacity sensitivity: a regional node too small for the working set
	// must keep evicting and lose its hit ratio, not break consistency.
	s2 := r.AddSection("Two-level cache vs regional capacity (same workload)",
		[]string{"regional capacity", "hit %", "mean ms", "Z3 viol"})
	for i, capB := range []int{4 << 10, 64 << 20} {
		cc := core.Config{
			UserStore:      core.StoreKV,
			CacheMode:      core.CacheTwoLevel,
			CacheCapacityB: capB,
			// Starve the client level too, so the regional capacity is
			// what the row actually measures.
			ClientCacheCapacityB: 2 << 10,
		}
		run := runCachingWorkload(cfg.Seed+int64(100+i), cc, readers, readsPer, nodes)
		if !run.ok {
			s2.AddRow(sizeLabel(capB), "-", "-", "-")
			continue
		}
		s2.AddRow(sizeLabel(capB), f1(run.hitRatio()*100), f2(run.lat.Mean()),
			fmt.Sprintf("%d", run.z3Viol))
	}

	if baseMean > 0 && cachedMean > 0 {
		r.Note("Two-level cache: %.2f ms mean reads vs %.2f ms direct DynamoDB (%.1fx) at %.0f%% hits — the regional node turns most reads into the mem-store round trip of the paper's Redis ablation without giving up pay-as-you-go storage.",
			cachedMean, baseMean, baseMean/cachedMean, cachedHit*100)
	}
	r.Note("Entries are served only when they pass the session guards (per-path last-seen floor, shard MRD, Z4 epoch stamps), so the Z3 violation column must stay zero; the leader push-invalidates the regional node on every user-store write and per-path mzxid floors reject stale fills that race an overwrite.")
	r.Note("Break-even: at %.0f%% hits on 256 B hybrid reads one cache node pays for itself above %.1fM reads/day.",
		90.0, m.CacheBreakEvenReads(0.9, cachingPayloadB, true, 1)/1e6)
	return r
}
