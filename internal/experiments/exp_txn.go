package experiments

import (
	"fmt"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/costmodel"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/stats"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/zk"
)

func init() {
	register(Experiment{
		ID:    "txn",
		Title: "Cross-shard multi() transactions: commit latency, cost, and abort rate vs participants",
		Ref:   "beyond the paper (ROADMAP: cross-shard multi-op transactions)",
		Run:   runTxn,
	})
}

// txnPayloadB sizes each sub-op's data.
const txnPayloadB = 128

// txnShardPaths returns count top-level paths whose shards cycle through
// the residues 0..n-1, so a k-op multi over paths[i*k:(i+1)*k] spans
// exactly min(k, n) shards.
func txnShardPaths(n, count int) []string {
	paths := make([]string, 0, count)
	next := 0
	for len(paths) < count {
		p := fmt.Sprintf("/t%d", next)
		next++
		if core.ShardOf(p, n) == len(paths)%n {
			paths = append(paths, p)
		}
	}
	return paths
}

// txnRun is one commit-latency measurement.
type txnRun struct {
	txns    int
	lat     *stats.Sample
	elapsed float64
	cost    float64
	aborts  int
	ok      bool
}

func (r txnRun) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.txns) / r.elapsed
}

// runTxnLatency drives sessions concurrent clients, each committing ops
// multis of spread sub-ops over its own per-shard path set (conflict-free:
// the numbers isolate coordination cost, not lock contention).
func runTxnLatency(seed int64, shards, spread, sessions, ops int) txnRun {
	cfg := core.Config{EnableTxn: true, WriteShards: shards, UserStore: core.StoreKV}
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	res := txnRun{txns: sessions * ops, lat: stats.NewSample(sessions * ops)}
	var t0, t1 sim.Time
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		paths := txnShardPaths(shards, sessions*spread)
		for _, p := range paths {
			if _, err := setup.Create(p, nil, 0); err != nil {
				return
			}
		}
		clients := make([]*fkclient.Client, sessions)
		for i := range clients {
			c, err := fkclient.Connect(d, fmt.Sprintf("s%d", i), d.Cfg.Profile.Home)
			if err != nil {
				return
			}
			clients[i] = c
		}
		d.ResetMetrics()
		payload := make([]byte, txnPayloadB)
		done := sim.NewWaitGroup(k)
		t0 = k.Now()
		for i := range clients {
			i := i
			mine := paths[i*spread : (i+1)*spread]
			done.Add(1)
			k.Go(fmt.Sprintf("txw%d", i), func() {
				defer done.Done()
				for op := 0; op < ops; op++ {
					subs := make([]txn.Op, 0, spread)
					for _, p := range mine {
						subs = append(subs, txn.SetData(p, payload, int32(op)))
					}
					ts := k.Now()
					if _, err := clients[i].Multi(subs...); err != nil {
						res.aborts++
						continue
					}
					res.lat.AddDur(k.Now() - ts)
				}
			})
		}
		done.Wait()
		t1 = k.Now()
		res.cost = d.Env.Meter.Total()
		for _, c := range clients {
			c.Close()
		}
		setup.Close()
		res.ok = res.lat.N() == res.txns && res.aborts == 0
	})
	k.Run()
	k.Shutdown()
	res.elapsed = (t1 - t0).Seconds()
	return res
}

// runTxnContention races version-guarded cross-shard multis from several
// sessions over ONE shared path pair: losers abort on the version check
// (or on intent contention) and the final version counts exactly the
// winners — the all-or-nothing bookkeeping the abort-rate column reports.
func runTxnContention(seed int64, shards, sessions, rounds int) (commits, aborts int, lost bool) {
	cfg := core.Config{EnableTxn: true, WriteShards: shards, UserStore: core.StoreKV}
	k := sim.NewKernel(seed)
	d := core.NewDeployment(k, cfg)
	var finalA, finalB int32
	k.Go("driver", func() {
		setup, err := fkclient.Connect(d, "setup", d.Cfg.Profile.Home)
		if err != nil {
			return
		}
		paths := txnShardPaths(shards, 2)
		for _, p := range paths {
			if _, err := setup.Create(p, nil, 0); err != nil {
				return
			}
		}
		done := sim.NewWaitGroup(k)
		for i := 0; i < sessions; i++ {
			i := i
			done.Add(1)
			k.Go(fmt.Sprintf("c%d", i), func() {
				defer done.Done()
				c, err := fkclient.Connect(d, fmt.Sprintf("c%d", i), d.Cfg.Profile.Home)
				if err != nil {
					return
				}
				defer c.Close()
				for r := 0; r < rounds; r++ {
					_, st, err := c.GetData(paths[0])
					if err != nil {
						return
					}
					_, err = c.Multi(
						txn.SetData(paths[0], []byte{byte(i)}, st.Version),
						txn.SetData(paths[1], []byte{byte(i)}, st.Version),
					)
					if err == nil {
						commits++
					} else {
						aborts++
					}
					k.Sleep(sim.Ms(3))
				}
			})
		}
		done.Wait()
		if _, st, err := setup.GetData(paths[0]); err == nil {
			finalA = st.Version
		}
		if _, st, err := setup.GetData(paths[1]); err == nil {
			finalB = st.Version
		}
		setup.Close()
	})
	k.Run()
	k.Shutdown()
	// Atomicity check: both paths advanced exactly once per commit.
	lost = int(finalA) != commits || int(finalB) != commits
	return commits, aborts, lost
}

// runZKMultiBaseline times the baseline ensemble's native multi.
func runZKMultiBaseline(seed int64, spread, ops int) *stats.Sample {
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	e := zk.NewEnsemble(env, zk.Config{Servers: 3})
	lat := stats.NewSample(ops)
	k.Go("driver", func() {
		c, err := zk.Connect(e, 1)
		if err != nil {
			return
		}
		defer c.Close()
		paths := make([]string, spread)
		for i := range paths {
			paths[i] = fmt.Sprintf("/t%d", i)
			if _, err := c.Create(paths[i], nil, 0); err != nil {
				return
			}
		}
		payload := make([]byte, txnPayloadB)
		for op := 0; op < ops; op++ {
			subs := make([]zk.MultiOp, 0, spread)
			for _, p := range paths {
				subs = append(subs, zk.MultiOp{Op: zk.OpSetData, Path: p, Data: payload, Version: int32(op)})
			}
			ts := k.Now()
			if _, err := c.Multi(subs...); err != nil {
				return
			}
			lat.AddDur(k.Now() - ts)
		}
	})
	k.RunFor(sim.Ms(1000) * 600)
	k.Shutdown()
	return lat
}

func runTxn(cfg RunConfig) *Report {
	r := &Report{
		ID:    "txn",
		Title: "Cross-shard multi() transactions: commit latency, cost, and abort rate vs participants",
		Ref:   "beyond the paper (ROADMAP: cross-shard multi-op transactions)",
	}
	sessions := cfg.reps(4, 8)
	ops := cfg.reps(6, 20)
	const shards = 4

	m := costmodel.NewAWSModel(2048)
	s := r.AddSection(
		fmt.Sprintf("Commit latency vs participant shards (WriteShards=%d, %d sessions × %d multis, %d B/op, conflict-free)",
			shards, sessions, ops, txnPayloadB),
		[]string{"participants", "path", "txn/s", "p50 ms", "p99 ms", "$/txn", "model $/txn", "overhead vs single ops"})
	for vi, spread := range []int{1, 2, 4} {
		run := runTxnLatency(cfg.Seed+int64(vi), shards, spread, sessions, ops)
		if !run.ok {
			s.AddRow(fmt.Sprintf("%d", spread), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		path := "2PC"
		if spread == 1 {
			path = "fast path"
		}
		p50, p99 := latCells(run.lat, f1)
		s.AddRow(fmt.Sprintf("%d", spread), path,
			f1(run.throughput()),
			p50, p99,
			fmt.Sprintf("$%.6f", run.cost/float64(run.txns)),
			fmt.Sprintf("$%.6f", m.TxnCost(spread, spread, txnPayloadB, false)),
			fmt.Sprintf("%.2fx", m.TxnOverhead(spread, spread, txnPayloadB, false)))
	}
	zkLat := runZKMultiBaseline(cfg.Seed+11, 2, ops)
	if zkLat.N() > 0 {
		p50, p99 := latCells(zkLat, f1)
		s.AddRow("2 (zk baseline)", "ZAB multi", "-", p50, p99, "-", "-", "-")
	}

	s2 := r.AddSection(
		fmt.Sprintf("Abort rate under contention (version-guarded multis racing on one cross-shard pair, %d sessions)", sessions),
		[]string{"shards", "commits", "aborts", "abort rate", "partial commits"})
	for vi, sh := range []int{2, 4} {
		commits, aborts, lost := runTxnContention(cfg.Seed+20+int64(vi), sh, sessions, cfg.reps(4, 10))
		total := commits + aborts
		rate := "-"
		if total > 0 {
			rate = fmt.Sprintf("%.0f%%", 100*float64(aborts)/float64(total))
		}
		partial := "0"
		if lost {
			partial = "VIOLATION"
		}
		s2.AddRow(fmt.Sprintf("%d", sh), fmt.Sprintf("%d", commits), fmt.Sprintf("%d", aborts), rate, partial)
	}

	r.Note("The fast path (one participant shard) pays no coordinator machinery: one leader message and one multi-item system-store transaction; a WriteShards=1 deployment always takes it.")
	r.Note("Cross-shard commits pay the two-phase protocol — intents + storage-backed votes, per-shard commit messages, a ready barrier, then one atomic user-store apply — so latency grows with the slowest participant, not with the op count.")
	r.Note("Contention resolves through version guards and intent fencing: losers abort cleanly (the final versions count exactly the winners — the 'partial commits' column must stay 0).")
	return r
}
