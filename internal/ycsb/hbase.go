package ycsb

import (
	"fmt"
	"math/rand"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/zk"
	"faaskeeper/internal/znode"
)

// newRand builds a per-thread deterministic source; the simulation is
// single-threaded, so plain rand.Rand values are safe.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// HBaseCluster models the HBase deployment of Section 5.1: region servers
// that serve reads/writes from memory+disk, coordinated through ZooKeeper.
// ZooKeeper holds only cluster state — master election, region-server
// membership (ephemeral nodes), and the meta-region location — so a YCSB
// run drives thousands of requests per second through HBase while
// ZooKeeper sees almost nothing.
type HBaseCluster struct {
	env *cloud.Env
	ens *zk.Ensemble

	master  *zk.Client
	servers []*regionServer

	opLatency sim.Dist
	ops       int64
}

type regionServer struct {
	id      int
	session *zk.Client
}

// NewHBaseCluster boots a cluster with n region servers, performing the
// same ZooKeeper setup traffic a real HBase start-up produces (~29 small
// nodes in the paper's profile). Must be called from a sim process.
func NewHBaseCluster(env *cloud.Env, ens *zk.Ensemble, n int) (*HBaseCluster, error) {
	h := &HBaseCluster{
		env: env, ens: ens,
		opLatency: sim.Q(0.3, 0.9, 2.5, 6.0, 40), // region-server op, ms
	}
	m, err := zk.Connect(ens, 0)
	if err != nil {
		return nil, err
	}
	h.master = m
	// The znode layout HBase creates at start-up.
	for _, p := range []string{
		"/hbase", "/hbase/rs", "/hbase/splitWAL", "/hbase/table",
		"/hbase/master-maintenance", "/hbase/online-snapshot",
		"/hbase/flush-table-proc", "/hbase/replication",
	} {
		if _, err := m.Create(p, nil, 0); err != nil {
			return nil, fmt.Errorf("hbase setup %s: %w", p, err)
		}
	}
	// Master election and meta location: small ephemeral/data nodes.
	if _, err := m.Create("/hbase/master", []byte("master:16000"), znode.FlagEphemeral); err != nil {
		return nil, err
	}
	if _, err := m.Create("/hbase/meta-region-server", []byte("rs0:16020"), 0); err != nil {
		return nil, err
	}
	// The master watches region-server membership.
	if _, err := m.GetChildrenW("/hbase/rs", func(zk.WatchEvent) {
		// Re-arm on membership change, as the real master does.
		m.GetChildrenW("/hbase/rs", func(zk.WatchEvent) {})
	}); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sess, err := zk.Connect(ens, i%ens.Servers())
		if err != nil {
			return nil, err
		}
		// Each RegionServer registers an ephemeral node with its address —
		// the ~320-byte nodes observed in the paper.
		addr := fmt.Sprintf("rs%d.cluster.internal:16020,%d", i, i)
		if _, err := sess.Create(fmt.Sprintf("/hbase/rs/rs%d", i),
			[]byte(addr), znode.FlagEphemeral); err != nil {
			return nil, err
		}
		// Each RS records a small amount of state under /hbase/table.
		if _, err := sess.Create(fmt.Sprintf("/hbase/table/t%d", i), []byte("ENABLED"), 0); err != nil {
			return nil, err
		}
		h.servers = append(h.servers, &regionServer{id: i, session: sess})
	}
	return h, nil
}

// Do executes one YCSB operation against the serving layer. ZooKeeper is
// not on the data path; only a rare region-cache miss sends a client back
// to the meta-region-server node, producing the read trickle visible in
// the paper's Figure 5.
func (h *HBaseCluster) Do(op OpKind, key int64) {
	if h.env.K.Rand().Float64() < metaLookupProb {
		_, _, _ = h.master.GetData("/hbase/meta-region-server")
	}
	lat := h.opLatency.Sample(h.env.K.Rand())
	if op == OpScan {
		lat *= 4 // scans touch multiple rows
	}
	if op == OpReadModifyWrite {
		lat *= 2
	}
	h.env.K.Sleep(lat)
	h.ops++
}

// metaLookupProb calibrates ZooKeeper's read trickle to the paper's "less
// than a thousand requests in over half an hour" of YCSB traffic.
const metaLookupProb = 1.0 / 30000

// Ops returns the number of completed serving-layer operations.
func (h *HBaseCluster) Ops() int64 { return h.ops }

// Close shuts down sessions (removing the ephemeral registrations).
func (h *HBaseCluster) Close() {
	for _, rs := range h.servers {
		rs.session.Close()
	}
	h.master.Close()
}

// RunPhase drives one workload for the given duration with nThreads
// closed-loop clients, as the YCSB driver does.
func (h *HBaseCluster) RunPhase(w Workload, d time.Duration, nThreads int, records int64) {
	k := h.env.K
	wg := sim.NewWaitGroup(k)
	deadline := k.Now() + d
	for t := 0; t < nThreads; t++ {
		wg.Add(1)
		seed := int64(t)*7919 + 13
		k.Go(fmt.Sprintf("ycsb-%s-%d", w.Name, t), func() {
			defer wg.Done()
			r := newRand(seed)
			kc := NewKeyChooser(records, w.Latest, r)
			for k.Now() < deadline {
				op := w.Next(r)
				key := kc.Next()
				if op == OpInsert {
					key = kc.Insert()
				}
				h.Do(op, key)
			}
		})
	}
	wg.Wait()
}
