package ycsb

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/zk"
)

func TestWorkloadMixesSumToOne(t *testing.T) {
	for _, w := range CoreWorkloads() {
		sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("workload %s mix sums to %v", w.Name, sum)
		}
	}
}

func TestWorkloadNextRespectsMix(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	w := Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05}
	reads := 0
	n := 10000
	for i := 0; i < n; i++ {
		if w.Next(r) == OpRead {
			reads++
		}
	}
	frac := float64(reads) / float64(n)
	if frac < 0.93 || frac > 0.97 {
		t.Errorf("read fraction = %v, want ~0.95", frac)
	}
}

func TestZipfianSkewAndRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	z := NewZipfian(1000)
	counts := map[int64]int{}
	n := 20000
	for i := 0; i < n; i++ {
		k := z.Next(r)
		if k < 0 || k >= 1000 {
			t.Fatalf("key out of range: %d", k)
		}
		counts[k]++
	}
	// The hottest key should take a large share (theta=0.99 zipf).
	if counts[0] < n/20 {
		t.Errorf("hot key only %d/%d draws", counts[0], n)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys drawn", len(counts))
	}
}

func TestZipfianBoundsProperty(t *testing.T) {
	f := func(seed int64, nRecords uint16) bool {
		n := int64(nRecords)%5000 + 2
		z := NewZipfian(n)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			k := z.Next(r)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyChooserLatestBias(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	kc := NewKeyChooser(1000, true, r)
	recent := 0
	n := 5000
	for i := 0; i < n; i++ {
		if kc.Next() >= 900 {
			recent++
		}
	}
	if float64(recent)/float64(n) < 0.5 {
		t.Errorf("latest chooser not biased to recent keys: %d/%d", recent, n)
	}
	first := kc.Insert()
	second := kc.Insert()
	if second != first+1 {
		t.Errorf("insert keys: %d %d", first, second)
	}
}

func TestHBaseClusterBarelyUsesZooKeeper(t *testing.T) {
	// The heart of Figure 5: a full YCSB phase drives thousands of ops
	// through HBase while ZooKeeper sees only the cluster-state traffic.
	k := sim.NewKernel(4)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	ens := zk.NewEnsemble(env, zk.Config{Servers: 3})
	var hbaseOps, zkWrites, zkReads int64
	k.Go("bench", func() {
		h, err := NewHBaseCluster(env, ens, 3)
		if err != nil {
			t.Errorf("cluster: %v", err)
			return
		}
		startW, startR := ens.WriteCount(), ens.ReadCount()
		h.RunPhase(CoreWorkloads()[0], 30*time.Second, 8, 1000)
		hbaseOps = h.Ops()
		zkWrites = ens.WriteCount() - startW
		zkReads = ens.ReadCount() - startR
		h.Close()
	})
	k.RunFor(10 * time.Minute)
	k.Shutdown()
	if hbaseOps < 10000 {
		t.Fatalf("hbase ops = %d, want thousands", hbaseOps)
	}
	total := zkWrites + zkReads
	if total > hbaseOps/100 {
		t.Fatalf("zookeeper saw %d requests for %d hbase ops — not idle", total, hbaseOps)
	}
	if zkWrites != 0 {
		t.Fatalf("workload phase should not write to zookeeper, got %d", zkWrites)
	}
}

func TestHBaseSetupCreatesClusterState(t *testing.T) {
	k := sim.NewKernel(5)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	ens := zk.NewEnsemble(env, zk.Config{Servers: 3})
	var kids []string
	k.Go("bench", func() {
		h, err := NewHBaseCluster(env, ens, 4)
		if err != nil {
			t.Errorf("cluster: %v", err)
			return
		}
		c, _ := zk.Connect(ens, 0)
		kids, _ = c.GetChildren("/hbase/rs")
		c.Close()
		h.Close()
	})
	k.RunFor(10 * time.Minute)
	k.Shutdown()
	if len(kids) != 4 {
		t.Fatalf("region servers registered = %v", kids)
	}
}
