// Package ycsb implements the YCSB core workloads (A-F) and the zipfian /
// uniform / latest key-choosers from the benchmark paper, plus the
// HBase-like serving layer of Section 5.1: region servers coordinate
// through ZooKeeper (ephemeral registration, master watches, meta
// location) while the actual workload traffic never touches ZooKeeper —
// which is precisely the paper's point about ZooKeeper underutilization.
package ycsb

import (
	"math"
	"math/rand"
)

// OpKind is one YCSB operation type.
type OpKind uint8

// YCSB operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// Workload is one YCSB core workload mix.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	// Latest biases the key-chooser toward recently inserted records
	// (workload D).
	Latest bool
}

// CoreWorkloads returns the standard YCSB workloads A-F.
func CoreWorkloads() []Workload {
	return []Workload{
		{Name: "A", ReadProp: 0.5, UpdateProp: 0.5},
		{Name: "B", ReadProp: 0.95, UpdateProp: 0.05},
		{Name: "C", ReadProp: 1.0},
		{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Latest: true},
		{Name: "E", ScanProp: 0.95, InsertProp: 0.05},
		{Name: "F", ReadProp: 0.5, RMWProp: 0.5},
	}
}

// Next draws the next operation kind from the mix.
func (w Workload) Next(r *rand.Rand) OpKind {
	u := r.Float64()
	switch {
	case u < w.ReadProp:
		return OpRead
	case u < w.ReadProp+w.UpdateProp:
		return OpUpdate
	case u < w.ReadProp+w.UpdateProp+w.InsertProp:
		return OpInsert
	case u < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		return OpScan
	default:
		return OpReadModifyWrite
	}
}

// Zipfian generates keys in [0, n) with the YCSB zipfian distribution
// (theta 0.99), using the Gray et al. rejection-free method.
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian builds a zipfian chooser over n items.
func NewZipfian(n int64) *Zipfian {
	const theta = 0.99
	z := &Zipfian{n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws a key index; hot items are the low indices.
func (z *Zipfian) Next(r *rand.Rand) int64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// KeyChooser picks record keys for a workload.
type KeyChooser struct {
	zip      *Zipfian
	latest   bool
	inserted int64
	r        *rand.Rand
}

// NewKeyChooser builds a chooser over an initial record count.
func NewKeyChooser(records int64, latest bool, r *rand.Rand) *KeyChooser {
	return &KeyChooser{zip: NewZipfian(records), latest: latest, inserted: records, r: r}
}

// Next returns the key index for the next operation.
func (kc *KeyChooser) Next() int64 {
	k := kc.zip.Next(kc.r)
	if kc.latest {
		// Workload D: bias toward the most recent inserts.
		k = kc.inserted - 1 - k
		if k < 0 {
			k = 0
		}
	}
	if k >= kc.inserted {
		k = kc.inserted - 1
	}
	return k
}

// Insert records a new key, growing the keyspace (workloads D and E).
func (kc *KeyChooser) Insert() int64 {
	k := kc.inserted
	kc.inserted++
	return k
}
