package zk

import (
	"faaskeeper/internal/cloud/network"
	"faaskeeper/internal/sim"
)

// serverSession is the server-side half of one client session.
type serverSession struct {
	id        string
	srv       *Server
	end       *network.End // server side of the session connection
	lastHeard sim.Time
	closing   bool
	closed    bool

	// writeBarrier chains the session's in-flight writes so reads issued
	// after a write wait for its local commit (FIFO order).
	writeBarrier *sim.Future[struct{}]
}

// accept wires a new session onto the server and starts its handler.
func (s *Server) accept(id string, end *network.End) *serverSession {
	sess := &serverSession{id: id, srv: s, end: end, lastHeard: s.ens.env.K.Now()}
	s.sessions[id] = sess
	s.ens.env.K.Go("zk-session-"+id, sess.handlerLoop)
	return sess
}

func (sess *serverSession) close() {
	if !sess.closed {
		sess.closed = true
		sess.end.Close()
	}
}

func (sess *serverSession) sendEvent(ev WatchEvent) {
	if !sess.closed {
		sess.end.Send(ev, ev.wireSize())
	}
}

func (sess *serverSession) send(r response) {
	if !sess.closed {
		sess.end.Send(r, r.wireSize())
	}
}

// handlerLoop processes the session's requests in arrival (FIFO) order.
func (sess *serverSession) handlerLoop() {
	s := sess.srv
	env := s.ens.env
	for {
		pkt, ok := sess.end.Recv()
		if !ok {
			return
		}
		if sess.closed || !s.alive {
			return
		}
		req := pkt.Payload.(request)
		sess.lastHeard = env.K.Now()
		switch req.Op {
		case OpPing:
			sess.send(response{Seq: req.Seq, Code: CodeOK})
		case OpAddWatch:
			// Registration is server-local (the replica serving this
			// session fires it), like one-shot watch arming on reads.
			if sess.writeBarrier != nil && !sess.writeBarrier.Done() {
				sess.writeBarrier.Wait()
			}
			s.registerAddWatch(req.Path, req.Mode, sess.id)
			sess.send(response{Seq: req.Seq, Code: CodeOK})
		case OpGetData, OpExists, OpGetChildren:
			sess.handleRead(req)
		case OpCreate, OpSetData, OpDelete, OpMulti, OpCloseSession:
			barrier := sim.NewFuture[struct{}](env.K)
			sess.writeBarrier = barrier
			pw := &pendingWrite{serverID: s.id, session: sess, req: req, barrier: barrier}
			s.submitWrite(pw)
			if req.Op == OpCloseSession {
				sess.closing = true
			}
		}
	}
}

// handleRead serves the request from the local replica; a read that
// follows an uncommitted write of the same session waits for it first.
func (sess *serverSession) handleRead(req request) {
	s := sess.srv
	env := s.ens.env
	if sess.writeBarrier != nil && !sess.writeBarrier.Done() {
		sess.writeBarrier.Wait()
	}
	// Register the watch before reading so no update can slip between.
	if req.Watch {
		switch req.Op {
		case OpGetData:
			s.registerWatch(req.Path, EventDataChanged, sess.id)
		case OpExists:
			s.registerWatch(req.Path, EventCreated, sess.id)
		case OpGetChildren:
			s.registerWatch(req.Path, EventChildrenChanged, sess.id)
		}
	}
	n, ok := s.replica.get(req.Path)
	// Request processing on a warm server: sub-millisecond, size-linear.
	size := 0
	if ok {
		size = len(n.Data)
	}
	env.K.Sleep(sim.Ms(0.08) + sim.Time(float64(size)/1024*float64(sim.Ms(0.008))))
	s.ens.reads++
	resp := response{Seq: req.Seq, Path: req.Path}
	if !ok {
		resp.Code = CodeNoNode
		if req.Op == OpExists {
			resp.Code = CodeOK
			resp.Exists = false
		}
		sess.send(resp)
		return
	}
	resp.Code = CodeOK
	resp.Exists = true
	resp.Stat = n.Stat
	switch req.Op {
	case OpGetData:
		resp.Data = append([]byte(nil), n.Data...)
	case OpGetChildren:
		resp.Children = n.SortedChildren()
	}
	sess.send(resp)
}

// replyWrite completes a client write after local commit (or validation
// failure on the leader).
func (s *Server) replyWrite(pw *pendingWrite, code Code, path string) {
	sess := pw.session
	if pw.barrier != nil {
		pw.barrier.TryComplete(struct{}{})
	}
	sess.send(response{Seq: pw.req.Seq, Code: code, Path: path, Stat: pw.stat})
}

// deliverReply routes a leader-side rejection back through the origin
// server (which may be the leader itself).
func (s *Server) deliverReply(pw *pendingWrite) {
	if pw.serverID == s.id {
		s.replyWrite(pw, pw.code, pw.path)
		return
	}
	s.sendPeer(pw.serverID, peerMsg{Type: msgReject, From: s.id, Txn: &txn{origin: pw}})
}
