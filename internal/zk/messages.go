// Package zk implements the baseline ZooKeeper that FaaSKeeper is compared
// against throughout the evaluation: an ensemble of in-simulation servers
// running a ZAB-style atomic broadcast (propose / quorum-ack / commit),
// client sessions over ordered TCP-like links with FIFO request handling,
// reads served from the local replica, ordered watch delivery, and
// heartbeat-driven session expiry that removes ephemeral nodes.
package zk

import (
	"faaskeeper/internal/znode"
)

// OpCode identifies a client request type.
type OpCode uint8

// Client operations.
const (
	OpCreate OpCode = iota + 1
	OpSetData
	OpDelete
	OpGetData
	OpExists
	OpGetChildren
	OpPing
	OpCloseSession
	OpCheck    // version guard inside a multi
	OpMulti    // atomic multi-op transaction
	OpAddWatch // ZooKeeper 3.6 addWatch: persistent / persistent-recursive
)

// AddWatchMode selects the addWatch registration kind.
type AddWatchMode uint8

// addWatch modes, mirroring ZooKeeper's AddWatchMode enum.
const (
	AddWatchPersistent AddWatchMode = iota + 1
	AddWatchPersistentRecursive
)

// MultiOp is one sub-operation of a baseline multi() transaction.
type MultiOp struct {
	Op      OpCode
	Path    string
	Data    []byte
	Version int32
	Flags   znode.Flags
}

// request travels client -> server over the session connection.
type request struct {
	Seq      int64
	Op       OpCode
	Path     string
	Data     []byte
	Version  int32
	Flags    znode.Flags
	Watch    bool
	Mode     AddWatchMode // OpAddWatch only
	MultiOps []MultiOp
}

func (r request) wireSize() int {
	n := len(r.Path) + len(r.Data) + 48
	for _, op := range r.MultiOps {
		n += len(op.Path) + len(op.Data) + 16
	}
	return n
}

// Code is a ZooKeeper result code.
type Code uint8

// Result codes.
const (
	CodeOK Code = iota
	CodeNodeExists
	CodeNoNode
	CodeBadVersion
	CodeNotEmpty
	CodeNoChildrenEph
	CodeClosed
)

// response travels server -> client.
type response struct {
	Seq      int64
	Code     Code
	Path     string
	Data     []byte
	Stat     znode.Stat
	Children []string
	Exists   bool
}

func (r response) wireSize() int { return len(r.Path) + len(r.Data) + 64 + 8*len(r.Children) }

// WatchEvent is pushed to clients over the session connection; because the
// connection is FIFO, events are ordered with respect to replies (Z4).
type WatchEvent struct {
	Type EventType
	Path string
	Zxid int64
}

func (e WatchEvent) wireSize() int { return len(e.Path) + 24 }

// EventType mirrors ZooKeeper's watch event types.
type EventType uint8

// Event types.
const (
	EventDataChanged EventType = iota + 1
	EventCreated
	EventDeleted
	EventChildrenChanged
)

// txnType is the kind of a replicated transaction.
type txnType uint8

const (
	txnCreate txnType = iota + 1
	txnSetData
	txnDelete
	txnCloseSession
	txnMulti // an atomic batch of sub-transactions sharing one zxid
)

// txn is one replicated state change: the unit ZAB agrees on.
type txn struct {
	Zxid      int64
	Type      txnType
	Path      string
	Data      []byte
	Flags     znode.Flags
	Owner     string // ephemeral owner session
	SessionID string // originating session (close-session txns)
	Sub       []*txn // txnMulti: the sub-transactions, applied atomically

	// Filled by the leader when it validates and sequences the request.
	origin *pendingWrite
}

// size is the replication payload size.
func (t *txn) size() int {
	n := len(t.Path) + len(t.Data) + 48
	for _, sub := range t.Sub {
		n += sub.size()
	}
	return n
}

// pendingWrite tracks a client write from proposal to commit.
type pendingWrite struct {
	serverID int // server that owns the client session
	session  *serverSession
	req      request
	code     Code // validation verdict decided by the leader
	path     string
	stat     znode.Stat
	barrier  interface{ TryComplete(struct{}) bool }
}

// peerMsgType is the inter-server protocol message kind.
type peerMsgType uint8

const (
	msgForward peerMsgType = iota + 1 // follower -> leader: client write
	msgPropose                        // leader -> follower: proposal
	msgAck                            // follower -> leader: proposal logged
	msgCommit                         // leader -> follower: commit
	msgReject                         // leader -> origin: validation failure
)

// peerMsg is one inter-server protocol message.
type peerMsg struct {
	Type peerMsgType
	From int
	Txn  *txn
	Zxid int64
}

func (m peerMsg) wireSize() int {
	if m.Txn != nil {
		return m.Txn.size() + 16
	}
	return 24
}
