package zk

import (
	"fmt"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/cloud/network"
	"faaskeeper/internal/sim"
)

// Config sizes the ensemble.
type Config struct {
	Servers        int           // default 3 (the smallest deployment)
	SessionTimeout time.Duration // default 6 s
	InstanceType   string        // for cost accounting (default t3.medium)
}

func (c *Config) defaults() {
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 6 * time.Second
	}
	if c.InstanceType == "" {
		c.InstanceType = "t3.medium"
	}
}

// Ensemble is a running ZooKeeper deployment.
type Ensemble struct {
	env *cloud.Env
	cfg Config

	servers []*Server
	epoch   int64

	writes int64 // committed write transactions (utilization accounting)
	reads  int64
}

// Server is one ensemble member holding a full replica.
type Server struct {
	ens   *Ensemble
	id    int
	alive bool

	replica *tree
	mailbox *sim.Queue[peerMsg]
	peers   map[int]*network.End

	isLeader bool
	spec     *tree // leader only: speculative future state
	nextCtr  int64
	pending  map[int64]*proposal
	commitAt int64 // next zxid (counter part) to commit, in order

	lastApplied int64
	sessions    map[string]*serverSession
	watches     map[string]map[EventType]map[string]bool // path -> event -> sessions
	persistent  map[string]map[string]bool               // path -> sessions (addWatch)
	recursive   map[string]map[string]bool               // subtree root -> sessions
	nextSessNum int64
}

type proposal struct {
	txn  *txn
	acks map[int]bool
}

// NewEnsemble starts the servers and elects server 0 leader.
func NewEnsemble(env *cloud.Env, cfg Config) *Ensemble {
	cfg.defaults()
	e := &Ensemble{env: env, cfg: cfg, epoch: 1}
	for i := 0; i < cfg.Servers; i++ {
		s := &Server{
			ens: e, id: i, alive: true,
			replica:    newTree(),
			mailbox:    sim.NewQueue[peerMsg](env.K),
			peers:      map[int]*network.End{},
			pending:    map[int64]*proposal{},
			sessions:   map[string]*serverSession{},
			watches:    map[string]map[EventType]map[string]bool{},
			persistent: map[string]map[string]bool{},
			recursive:  map[string]map[string]bool{},
		}
		e.servers = append(e.servers, s)
	}
	// Full mesh of ordered server-to-server links.
	for i := 0; i < cfg.Servers; i++ {
		for j := i + 1; j < cfg.Servers; j++ {
			conn := network.NewLANConn(env)
			e.servers[i].attachPeer(j, conn.A())
			e.servers[j].attachPeer(i, conn.B())
		}
	}
	e.servers[0].becomeLeader()
	for _, s := range e.servers {
		srv := s
		env.K.Go(fmt.Sprintf("zk-server-%d", srv.id), srv.mainLoop)
		env.K.Go(fmt.Sprintf("zk-expirer-%d", srv.id), srv.sessionExpiryLoop)
	}
	return e
}

// Env returns the cloud environment.
func (e *Ensemble) Env() *cloud.Env { return e.env }

// Leader returns the current leader server.
func (e *Ensemble) Leader() *Server {
	for _, s := range e.servers {
		if s.alive && s.isLeader {
			return s
		}
	}
	return nil
}

// Server returns ensemble member i.
func (e *Ensemble) Server(i int) *Server { return e.servers[i] }

// Servers returns the ensemble size.
func (e *Ensemble) Servers() int { return len(e.servers) }

// quorum is the majority of the full ensemble.
func (e *Ensemble) quorum() int { return len(e.servers)/2 + 1 }

// WriteCount returns committed write transactions (utilization profiling,
// Section 5.1).
func (e *Ensemble) WriteCount() int64 { return e.writes }

// ReadCount returns served read requests.
func (e *Ensemble) ReadCount() int64 { return e.reads }

// KillServer stops a member; its sessions are dropped. Killing the leader
// triggers an election among the remaining members.
func (e *Ensemble) KillServer(i int) {
	s := e.servers[i]
	if !s.alive {
		return
	}
	wasLeader := s.isLeader
	s.alive = false
	s.isLeader = false
	s.mailbox.Close()
	for _, sess := range s.sessions {
		sess.close()
	}
	s.sessions = map[string]*serverSession{}
	if wasLeader {
		e.elect()
	}
}

// elect promotes the live server with the freshest state, bumping the
// epoch so new zxids dominate all previous ones (ZAB's recovery step,
// reduced to the synchronous-simulation setting).
func (e *Ensemble) elect() {
	var best *Server
	for _, s := range e.servers {
		if !s.alive {
			continue
		}
		if best == nil || s.lastApplied > best.lastApplied {
			best = s
		}
	}
	if best == nil {
		return
	}
	e.epoch++
	best.becomeLeader()
}

func (s *Server) becomeLeader() {
	s.isLeader = true
	s.spec = s.replica.clone()
	s.nextCtr = 1
	s.commitAt = 1
	s.pending = map[int64]*proposal{}
}

func (s *Server) attachPeer(id int, end *network.End) {
	s.peers[id] = end
	s.ens.env.K.Go(fmt.Sprintf("zk-peer-recv-%d<-%d", s.id, id), func() {
		for {
			pkt, ok := end.Recv()
			if !ok {
				return
			}
			if !s.alive {
				continue
			}
			s.mailbox.Push(pkt.Payload.(peerMsg))
		}
	})
}

func (s *Server) sendPeer(to int, m peerMsg) {
	if end, ok := s.peers[to]; ok {
		end.Send(m, m.wireSize())
	}
}

// zxid packs epoch and counter, as in ZAB.
func (e *Ensemble) zxid(ctr int64) int64 { return e.epoch<<32 | ctr }

// mainLoop drives the ZAB state machine for both roles.
func (s *Server) mainLoop() {
	for {
		m, ok := s.mailbox.Pop()
		if !ok {
			return
		}
		if !s.alive {
			return
		}
		switch m.Type {
		case msgForward:
			if s.isLeader {
				s.leaderPropose(m.Txn.origin)
			}
		case msgPropose:
			// Follower: log durably, then acknowledge.
			s.fsync(m.Txn.size())
			s.pending[m.Zxid] = &proposal{txn: m.Txn}
			s.sendPeer(m.From, peerMsg{Type: msgAck, From: s.id, Zxid: m.Zxid})
		case msgAck:
			if s.isLeader {
				s.onAck(m.From, m.Zxid)
			}
		case msgCommit:
			if p, ok := s.pending[m.Zxid]; ok {
				delete(s.pending, m.Zxid)
				s.applyCommitted(p.txn)
			}
		case msgReject:
			pw := m.Txn.origin
			s.replyWrite(pw, pw.code, pw.path)
		}
	}
}

// submitWrite enters a client write into the broadcast, either locally (on
// the leader) or by forwarding over the leader link.
func (s *Server) submitWrite(pw *pendingWrite) {
	leader := s.ens.Leader()
	if leader == nil {
		s.replyWrite(pw, CodeClosed, pw.req.Path)
		return
	}
	x := &txn{origin: pw}
	if leader == s {
		s.mailbox.Push(peerMsg{Type: msgForward, From: s.id, Txn: x})
		return
	}
	s.sendPeer(leader.id, peerMsg{Type: msgForward, From: s.id, Txn: x})
}

// leaderPropose validates against the speculative tree, sequences the
// transaction, logs it, and broadcasts the proposal.
func (s *Server) leaderPropose(pw *pendingWrite) {
	if pw.req.Op == OpMulti {
		s.leaderProposeMulti(pw)
		return
	}
	code, finalPath, owner := s.spec.validate(pw.session.id, pw.req)
	if pw.req.Op == OpCloseSession {
		code, finalPath = CodeOK, ""
	}
	if code != CodeOK {
		// Rejections are not replicated; answer through the origin server.
		pw.code = code
		pw.path = pw.req.Path
		s.deliverReply(pw)
		return
	}
	zxid := s.ens.zxid(s.nextCtr)
	s.nextCtr++
	x := &txn{
		Zxid: zxid, Path: finalPath, Data: pw.req.Data,
		Flags: pw.req.Flags, Owner: owner, origin: pw,
		SessionID: pw.session.id,
	}
	switch pw.req.Op {
	case OpCreate:
		x.Type = txnCreate
	case OpSetData:
		x.Type = txnSetData
	case OpDelete:
		x.Type = txnDelete
	case OpCloseSession:
		x.Type = txnCloseSession
	}
	s.spec.apply(x)
	s.fsync(x.size())
	s.pending[zxid] = &proposal{txn: x, acks: map[int]bool{s.id: true}}
	for _, peer := range s.ens.servers {
		if peer.id != s.id && peer.alive {
			s.sendPeer(peer.id, peerMsg{Type: msgPropose, From: s.id, Txn: x, Zxid: zxid})
		}
	}
	s.maybeCommit()
}

// leaderProposeMulti validates a multi() sequentially against a clone of
// the speculative tree (sub-ops see their predecessors' effects) and, if
// every sub-op passes, replicates the whole batch as ONE transaction with
// one zxid — the baseline semantics FaaSKeeper's coordinator is compared
// against. Any failure rejects the multi without replicating anything.
func (s *Server) leaderProposeMulti(pw *pendingWrite) {
	spec := s.spec.clone()
	zxid := s.ens.zxid(s.nextCtr)
	subs := make([]*txn, 0, len(pw.req.MultiOps))
	for _, op := range pw.req.MultiOps {
		sub := request{Op: op.Op, Path: op.Path, Data: op.Data, Version: op.Version, Flags: op.Flags}
		code, finalPath, owner := spec.validate(pw.session.id, sub)
		if code != CodeOK {
			pw.code = code
			pw.path = op.Path
			s.deliverReply(pw)
			return
		}
		if op.Op == OpCheck {
			continue // guards replicate nothing
		}
		x := &txn{
			Zxid: zxid, Path: finalPath, Data: op.Data,
			Flags: op.Flags, Owner: owner, SessionID: pw.session.id,
		}
		switch op.Op {
		case OpCreate:
			x.Type = txnCreate
		case OpSetData:
			x.Type = txnSetData
		case OpDelete:
			x.Type = txnDelete
		}
		spec.apply(x)
		subs = append(subs, x)
	}
	s.nextCtr++
	x := &txn{Zxid: zxid, Type: txnMulti, Sub: subs, SessionID: pw.session.id, origin: pw}
	s.spec.apply(x)
	s.fsync(x.size())
	s.pending[zxid] = &proposal{txn: x, acks: map[int]bool{s.id: true}}
	for _, peer := range s.ens.servers {
		if peer.id != s.id && peer.alive {
			s.sendPeer(peer.id, peerMsg{Type: msgPropose, From: s.id, Txn: x, Zxid: zxid})
		}
	}
	s.maybeCommit()
}

func (s *Server) onAck(from int, zxid int64) {
	p, ok := s.pending[zxid]
	if !ok {
		return
	}
	if p.acks == nil {
		p.acks = map[int]bool{}
	}
	p.acks[from] = true
	s.maybeCommit()
}

// maybeCommit commits proposals strictly in zxid order once each reaches a
// quorum of acknowledgments.
func (s *Server) maybeCommit() {
	for {
		zxid := s.ens.zxid(s.commitAt)
		p, ok := s.pending[zxid]
		if !ok || len(p.acks) < s.ens.quorum() {
			return
		}
		delete(s.pending, zxid)
		s.commitAt++
		s.ens.writes++
		for _, peer := range s.ens.servers {
			if peer.id != s.id && peer.alive {
				s.sendPeer(peer.id, peerMsg{Type: msgCommit, From: s.id, Zxid: zxid})
			}
		}
		s.applyCommitted(p.txn)
	}
}

// applyCommitted applies a committed txn to the local replica, fires local
// watches, and answers the client if its session lives here.
func (s *Server) applyCommitted(x *txn) {
	stat, events := s.replica.apply(x)
	if x.Zxid > s.lastApplied {
		s.lastApplied = x.Zxid
	}
	s.fireWatches(events, x.Zxid)
	if x.origin != nil && x.origin.serverID == s.id {
		pw := x.origin
		pw.stat = stat
		s.replyWrite(pw, CodeOK, x.Path)
	}
	if x.Type == txnCloseSession {
		if sess, ok := s.sessions[x.SessionID]; ok {
			sess.close()
			delete(s.sessions, x.SessionID)
		}
	}
}

// fsync models the transaction-log disk write that gates every ZAB ack.
func (s *Server) fsync(size int) {
	env := s.ens.env
	d := env.Profile.ZKDiskSync.Sample(env.K.Rand())
	d += sim.Time(float64(size) / 1024 * float64(sim.Ms(0.05)))
	env.K.Sleep(d)
}

// fireWatches delivers one event per (session, path) over the session
// connections; FIFO links order them against read replies (Z4).
func (s *Server) fireWatches(events []firedEvent, zxid int64) {
	for _, ev := range events {
		targets := map[string]bool{}
		if byEvent := s.watches[ev.Path]; byEvent != nil {
			consume := func(et EventType) {
				for sess := range byEvent[et] {
					targets[sess] = true
				}
				delete(byEvent, et)
			}
			// A node event consumes the matching registrations, mirroring
			// ZooKeeper's one-shot semantics.
			switch ev.Type {
			case EventCreated:
				consume(EventCreated)
			case EventDataChanged, EventDeleted:
				consume(EventDataChanged)
				consume(EventCreated) // exists watches fire on change/delete
			case EventChildrenChanged:
				consume(EventChildrenChanged)
			}
		}
		// addWatch registrations survive their fires. Persistent watches
		// see every event type at the exact path; persistent-recursive
		// watches see node lifecycle and data events anywhere in the
		// subtree but no ChildrenChanged (ZooKeeper 3.6 semantics).
		for sess := range s.persistent[ev.Path] {
			targets[sess] = true
		}
		if ev.Type != EventChildrenChanged {
			for root, sessions := range s.recursive {
				if !underTree(root, ev.Path) {
					continue
				}
				for sess := range sessions {
					targets[sess] = true
				}
			}
		}
		for sessID := range targets {
			if sess, ok := s.sessions[sessID]; ok {
				sess.sendEvent(WatchEvent{Type: ev.Type, Path: ev.Path, Zxid: zxid})
			}
		}
	}
}

// underTree reports whether path lies in the subtree rooted at root
// (inclusive).
func underTree(root, path string) bool {
	if root == path {
		return true
	}
	if root == "/" {
		return true
	}
	return len(path) > len(root) && path[:len(root)] == root && path[len(root)] == '/'
}

// registerWatch adds a one-shot registration. Watch kinds are encoded by
// the event type that consumes them: EventDataChanged for data watches,
// EventCreated for exists watches, EventChildrenChanged for child watches.
func (s *Server) registerWatch(path string, et EventType, session string) {
	byEvent := s.watches[path]
	if byEvent == nil {
		byEvent = map[EventType]map[string]bool{}
		s.watches[path] = byEvent
	}
	if byEvent[et] == nil {
		byEvent[et] = map[string]bool{}
	}
	byEvent[et][session] = true
}

// registerAddWatch adds a persistent (mode AddWatchPersistent) or
// persistent-recursive registration; unlike one-shot watches it is never
// consumed by a fire and lives until the session ends.
func (s *Server) registerAddWatch(path string, mode AddWatchMode, session string) {
	reg := s.persistent
	if mode == AddWatchPersistentRecursive {
		reg = s.recursive
	}
	if reg[path] == nil {
		reg[path] = map[string]bool{}
	}
	reg[path][session] = true
}

// sessionExpiryLoop prunes sessions that stopped sending heartbeats,
// submitting close-session transactions that delete their ephemerals.
func (s *Server) sessionExpiryLoop() {
	tick := s.ens.cfg.SessionTimeout / 3
	for {
		s.ens.env.K.Sleep(tick)
		if !s.alive {
			return
		}
		now := s.ens.env.K.Now()
		for id, sess := range s.sessions {
			if now-sess.lastHeard > s.ens.cfg.SessionTimeout && !sess.closing {
				sess.closing = true
				pw := &pendingWrite{
					serverID: s.id, session: sess,
					req: request{Op: OpCloseSession},
				}
				_ = id
				s.submitWrite(pw)
			}
		}
	}
}

// SessionIDs lists the server's live session ids (test helper).
func (s *Server) SessionIDs() []string {
	out := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	return out
}
