package zk

import (
	"errors"
	"fmt"
	"time"

	"faaskeeper/internal/cloud/network"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// Client-facing errors, mirroring the FaaSKeeper client so experiments can
// drive both systems through the same shape of API.
var (
	ErrNodeExists    = errors.New("zk: node already exists")
	ErrNoNode        = errors.New("zk: node does not exist")
	ErrBadVersion    = errors.New("zk: version mismatch")
	ErrNotEmpty      = errors.New("zk: node has children")
	ErrNoChildrenEph = errors.New("zk: ephemeral nodes cannot have children")
	ErrSessionClosed = errors.New("zk: session closed")
	ErrTimeout       = errors.New("zk: request timed out")
)

func codeError(c Code) error {
	switch c {
	case CodeOK:
		return nil
	case CodeNodeExists:
		return ErrNodeExists
	case CodeNoNode:
		return ErrNoNode
	case CodeBadVersion:
		return ErrBadVersion
	case CodeNotEmpty:
		return ErrNotEmpty
	case CodeNoChildrenEph:
		return ErrNoChildrenEph
	default:
		return ErrSessionClosed
	}
}

// requestTimeout bounds client waits.
const requestTimeout = 60 * time.Second

// WatchCallback receives one-shot watch events.
type WatchCallback func(WatchEvent)

type watchKind uint8

const (
	watchData watchKind = iota + 1
	watchExists
	watchChild
)

type clientWatchKey struct {
	path string
	kind watchKind
}

// Client is one ZooKeeper session, connected to a specific server.
type Client struct {
	ens     *Ensemble
	id      string
	end     *network.End
	nextSeq int64
	pending map[int64]*sim.Future[response]
	watches map[clientWatchKey]WatchCallback
	// addWatch registrations: persistent callbacks keyed by exact path,
	// recursive ones by subtree root. Neither is cleared on dispatch.
	pwatches map[string]WatchCallback
	rwatches map[string]WatchCallback
	// events decouples callback execution from the I/O loop, like the
	// Java client's event thread: a callback may safely issue synchronous
	// operations (re-registering a watch, for example).
	events  *sim.Queue[WatchEvent]
	closed  bool
	crashed bool
}

// Connect opens a session against ensemble member serverIdx. It must be
// called from a sim process.
func Connect(e *Ensemble, serverIdx int) (*Client, error) {
	s := e.servers[serverIdx]
	if !s.alive {
		return nil, ErrSessionClosed
	}
	s.nextSessNum++
	id := fmt.Sprintf("zk-%d-%d", serverIdx, s.nextSessNum)
	conn := network.NewLANConn(e.env)
	s.accept(id, conn.A())
	c := &Client{
		ens: e, id: id, end: conn.B(),
		pending:  map[int64]*sim.Future[response]{},
		watches:  map[clientWatchKey]WatchCallback{},
		pwatches: map[string]WatchCallback{},
		rwatches: map[string]WatchCallback{},
		events:   sim.NewQueue[WatchEvent](e.env.K),
	}
	e.env.K.Go("zk-client-"+id, c.responderLoop)
	e.env.K.Go("zk-events-"+id, c.eventLoop)
	e.env.K.Go("zk-pinger-"+id, c.pingLoop)
	return c, nil
}

// ID returns the session id.
func (c *Client) ID() string { return c.id }

func (c *Client) responderLoop() {
	for {
		pkt, ok := c.end.Recv()
		if !ok {
			c.events.Close()
			return
		}
		if c.crashed {
			continue
		}
		switch v := pkt.Payload.(type) {
		case response:
			if f, ok := c.pending[v.Seq]; ok {
				delete(c.pending, v.Seq)
				f.TryComplete(v)
			}
		case WatchEvent:
			c.events.Push(v)
		}
	}
}

func (c *Client) eventLoop() {
	for {
		ev, ok := c.events.Pop()
		if !ok {
			return
		}
		c.dispatchEvent(ev)
	}
}

// dispatchEvent fires and clears the one-shot registrations the event
// consumes, matching ZooKeeper's semantics (a delete clears both data and
// exists watches, for example).
func (c *Client) dispatchEvent(ev WatchEvent) {
	var kinds []watchKind
	switch ev.Type {
	case EventCreated:
		kinds = []watchKind{watchExists}
	case EventDataChanged, EventDeleted:
		kinds = []watchKind{watchData, watchExists}
	case EventChildrenChanged:
		kinds = []watchKind{watchChild}
	}
	for _, kind := range kinds {
		key := clientWatchKey{path: ev.Path, kind: kind}
		if cb, ok := c.watches[key]; ok {
			delete(c.watches, key)
			if cb != nil {
				cb(ev)
			}
		}
	}
	// addWatch callbacks fire on every matching event without being
	// cleared; recursive ones match the whole subtree but never see
	// ChildrenChanged (ZooKeeper 3.6 semantics).
	if cb, ok := c.pwatches[ev.Path]; ok && cb != nil {
		cb(ev)
	}
	if ev.Type != EventChildrenChanged {
		for root, cb := range c.rwatches {
			if cb != nil && underTree(root, ev.Path) {
				cb(ev)
			}
		}
	}
}

func (c *Client) pingLoop() {
	tick := c.ens.cfg.SessionTimeout / 3
	for {
		c.ens.env.K.Sleep(tick)
		if c.closed || c.crashed {
			return
		}
		c.call(request{Op: OpPing})
	}
}

// call sends one request and waits for its response.
func (c *Client) call(req request) (response, error) {
	if c.closed {
		return response{}, ErrSessionClosed
	}
	c.nextSeq++
	req.Seq = c.nextSeq
	f := sim.NewFuture[response](c.ens.env.K)
	c.pending[req.Seq] = f
	c.end.Send(req, req.wireSize())
	resp, ok := f.WaitTimeout(requestTimeout)
	if !ok {
		delete(c.pending, req.Seq)
		return response{}, ErrTimeout
	}
	return resp, nil
}

// Create creates a node and returns its final path.
func (c *Client) Create(path string, data []byte, flags znode.Flags) (string, error) {
	if err := c.check(path); err != nil {
		return "", err
	}
	resp, err := c.call(request{Op: OpCreate, Path: path, Data: data, Version: -1, Flags: flags})
	if err != nil {
		return "", err
	}
	return resp.Path, codeError(resp.Code)
}

// SetData replaces a node's data; version -1 matches any.
func (c *Client) SetData(path string, data []byte, version int32) (znode.Stat, error) {
	if err := c.check(path); err != nil {
		return znode.Stat{}, err
	}
	resp, err := c.call(request{Op: OpSetData, Path: path, Data: data, Version: version})
	if err != nil {
		return znode.Stat{}, err
	}
	return resp.Stat, codeError(resp.Code)
}

// Delete removes a node; version -1 matches any.
func (c *Client) Delete(path string, version int32) error {
	if err := c.check(path); err != nil {
		return err
	}
	resp, err := c.call(request{Op: OpDelete, Path: path, Version: version})
	if err != nil {
		return err
	}
	return codeError(resp.Code)
}

// Multi submits an atomic multi-op transaction: every sub-op commits at
// one zxid or the whole batch is rejected (the first failing op's error
// is returned). The baseline counterpart of FaaSKeeper's Multi.
func (c *Client) Multi(ops ...MultiOp) (znode.Stat, error) {
	for _, op := range ops {
		if err := c.check(op.Path); err != nil {
			return znode.Stat{}, err
		}
	}
	resp, err := c.call(request{Op: OpMulti, Path: "/", Version: -1, MultiOps: ops})
	if err != nil {
		return znode.Stat{}, err
	}
	return resp.Stat, codeError(resp.Code)
}

// GetData reads a node from the session's server replica.
func (c *Client) GetData(path string) ([]byte, znode.Stat, error) {
	return c.GetDataW(path, nil)
}

// GetDataW is GetData with an optional one-shot data watch.
func (c *Client) GetDataW(path string, cb WatchCallback) ([]byte, znode.Stat, error) {
	if err := c.check(path); err != nil {
		return nil, znode.Stat{}, err
	}
	watch := cb != nil
	if watch {
		c.watches[clientWatchKey{path, watchData}] = cb
	}
	resp, err := c.call(request{Op: OpGetData, Path: path, Watch: watch})
	if err != nil {
		return nil, znode.Stat{}, err
	}
	if e := codeError(resp.Code); e != nil {
		return nil, znode.Stat{}, e
	}
	return resp.Data, resp.Stat, nil
}

// Exists returns the node's Stat or nil; an optional watch fires on
// creation, change, or deletion.
func (c *Client) Exists(path string) (*znode.Stat, error) { return c.ExistsW(path, nil) }

// ExistsW is Exists with an optional one-shot watch.
func (c *Client) ExistsW(path string, cb WatchCallback) (*znode.Stat, error) {
	if err := c.check(path); err != nil {
		return nil, err
	}
	watch := cb != nil
	if watch {
		c.watches[clientWatchKey{path, watchExists}] = cb
	}
	resp, err := c.call(request{Op: OpExists, Path: path, Watch: watch})
	if err != nil {
		return nil, err
	}
	if e := codeError(resp.Code); e != nil {
		return nil, e
	}
	if !resp.Exists {
		return nil, nil
	}
	stat := resp.Stat
	return &stat, nil
}

// GetChildren lists a node's children in sorted order.
func (c *Client) GetChildren(path string) ([]string, error) { return c.GetChildrenW(path, nil) }

// GetChildrenW is GetChildren with an optional one-shot child watch.
func (c *Client) GetChildrenW(path string, cb WatchCallback) ([]string, error) {
	if err := c.check(path); err != nil {
		return nil, err
	}
	watch := cb != nil
	if watch {
		c.watches[clientWatchKey{path, watchChild}] = cb
	}
	resp, err := c.call(request{Op: OpGetChildren, Path: path, Watch: watch})
	if err != nil {
		return nil, err
	}
	if e := codeError(resp.Code); e != nil {
		return nil, e
	}
	return resp.Children, nil
}

// AddWatch registers a persistent watch on path (ZooKeeper 3.6 addWatch):
// it fires cb on every matching event without re-arming, until the
// session ends. With AddWatchPersistentRecursive the watch covers the
// whole subtree (node lifecycle and data events, no ChildrenChanged).
func (c *Client) AddWatch(path string, mode AddWatchMode, cb WatchCallback) error {
	if err := c.check(path); err != nil {
		return err
	}
	// Arm the local callback before the request so no event delivered
	// after the server-side registration can be missed.
	if mode == AddWatchPersistentRecursive {
		c.rwatches[path] = cb
	} else {
		c.pwatches[path] = cb
	}
	resp, err := c.call(request{Op: OpAddWatch, Path: path, Mode: mode})
	if err != nil {
		return err
	}
	return codeError(resp.Code)
}

func (c *Client) check(path string) error {
	if c.closed {
		return ErrSessionClosed
	}
	return znode.ValidatePath(path)
}

// Close gracefully ends the session; the ensemble deletes its ephemeral
// nodes as part of the close-session transaction.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	resp, err := c.call(request{Op: OpCloseSession})
	c.closed = true
	c.end.Close()
	if err != nil {
		return err
	}
	return codeError(resp.Code)
}

// Crash simulates the client process dying: heartbeats stop and the
// server-side session-expiry mechanism must clean up.
func (c *Client) Crash() {
	c.crashed = true
	c.closed = true
}
