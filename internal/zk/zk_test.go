package zk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/znode"
)

// harness runs fn inside a sim process against a fresh ensemble. Ensembles
// run periodic expiry loops, so the run is time-bounded.
func harness(t *testing.T, seed int64, cfg Config, horizon time.Duration, fn func(k *sim.Kernel, e *Ensemble)) {
	t.Helper()
	k := sim.NewKernel(seed)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	e := NewEnsemble(env, cfg)
	done := false
	k.Go("zk-test", func() { fn(k, e); done = true })
	k.RunFor(horizon)
	k.Shutdown()
	if !done {
		t.Fatal("test body did not finish within the simulation horizon")
	}
}

func TestBasicCreateGetSetDelete(t *testing.T) {
	harness(t, 1, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, err := Connect(e, 1) // a follower, so writes get forwarded
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Create("/a", []byte("v1"), 0); err != nil {
			t.Errorf("create: %v", err)
		}
		data, stat, err := c.GetData("/a")
		if err != nil || string(data) != "v1" || stat.Version != 0 {
			t.Errorf("get: %q %+v %v", data, stat, err)
		}
		st, err := c.SetData("/a", []byte("v2"), 0)
		if err != nil || st.Version != 1 {
			t.Errorf("set: %+v %v", st, err)
		}
		if st.Mzxid <= stat.Mzxid {
			t.Errorf("mzxid did not advance: %d <= %d", st.Mzxid, stat.Mzxid)
		}
		data, _, _ = c.GetData("/a")
		if string(data) != "v2" {
			t.Errorf("after set: %q", data)
		}
		if err := c.Delete("/a", -1); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, _, err := c.GetData("/a"); !errors.Is(err, ErrNoNode) {
			t.Errorf("get deleted: %v", err)
		}
	})
}

func TestValidationErrors(t *testing.T) {
	harness(t, 2, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 0)
		defer c.Close()
		c.Create("/a", nil, 0)
		if _, err := c.Create("/a", nil, 0); !errors.Is(err, ErrNodeExists) {
			t.Errorf("dup: %v", err)
		}
		if _, err := c.Create("/x/y", nil, 0); !errors.Is(err, ErrNoNode) {
			t.Errorf("orphan: %v", err)
		}
		if _, err := c.SetData("/a", nil, 9); !errors.Is(err, ErrBadVersion) {
			t.Errorf("bad version: %v", err)
		}
		c.Create("/a/b", nil, 0)
		if err := c.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("not empty: %v", err)
		}
		eph, _ := Connect(e, 0)
		defer eph.Close()
		eph.Create("/e", nil, znode.FlagEphemeral)
		if _, err := c.Create("/e/child", nil, 0); !errors.Is(err, ErrNoChildrenEph) {
			t.Errorf("child of ephemeral: %v", err)
		}
	})
}

func TestAllReplicasConverge(t *testing.T) {
	harness(t, 3, Config{Servers: 5}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 2)
		defer c.Close()
		for i := 0; i < 10; i++ {
			c.Create(fmt.Sprintf("/n%d", i), []byte{byte(i)}, 0)
		}
		k.Sleep(2 * time.Second) // let commits propagate everywhere
		for si := 0; si < e.Servers(); si++ {
			for i := 0; i < 10; i++ {
				n, ok := e.Server(si).replica.get(fmt.Sprintf("/n%d", i))
				if !ok || n.Data[0] != byte(i) {
					t.Errorf("server %d missing /n%d", si, i)
				}
			}
		}
	})
}

func TestSequentialAndEphemeral(t *testing.T) {
	harness(t, 4, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c1, _ := Connect(e, 0)
		c2, _ := Connect(e, 1)
		defer c2.Close()
		c1.Create("/locks", nil, 0)
		p1, _ := c1.Create("/locks/l-", nil, znode.FlagSequential|znode.FlagEphemeral)
		p2, _ := c2.Create("/locks/l-", nil, znode.FlagSequential|znode.FlagEphemeral)
		if p1 >= p2 {
			t.Errorf("sequential order: %q %q", p1, p2)
		}
		kids, _ := c2.GetChildren("/locks")
		if len(kids) != 2 {
			t.Errorf("children: %v", kids)
		}
		c1.Close()
		k.Sleep(2 * time.Second)
		kids, _ = c2.GetChildren("/locks")
		if len(kids) != 1 {
			t.Errorf("after owner close: %v", kids)
		}
	})
}

func TestSessionExpiryRemovesEphemerals(t *testing.T) {
	cfg := Config{SessionTimeout: 3 * time.Second}
	harness(t, 5, cfg, 2*time.Hour, func(k *sim.Kernel, e *Ensemble) {
		dying, _ := Connect(e, 1)
		obs, _ := Connect(e, 2)
		defer obs.Close()
		dying.Create("/w", nil, znode.FlagEphemeral)
		// Reads on another server are sequentially consistent, not
		// linearizable: give the commit a moment to propagate.
		k.Sleep(time.Second)
		st, _ := obs.Exists("/w")
		if st == nil {
			t.Error("ephemeral missing before crash")
		}
		dying.Crash()
		k.Sleep(15 * time.Second)
		st, err := obs.Exists("/w")
		if err != nil || st != nil {
			t.Errorf("ephemeral after expiry: %+v %v", st, err)
		}
	})
}

func TestWatchesFireInOrder(t *testing.T) {
	harness(t, 6, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		w, _ := Connect(e, 1)
		writer, _ := Connect(e, 2)
		defer w.Close()
		defer writer.Close()
		writer.Create("/cfg", []byte("0"), 0)
		var events []WatchEvent
		w.GetDataW("/cfg", func(ev WatchEvent) { events = append(events, ev) })
		w.GetChildrenW("/", func(ev WatchEvent) { events = append(events, ev) })
		writer.SetData("/cfg", []byte("1"), -1)
		writer.Create("/other", nil, 0)
		k.Sleep(2 * time.Second)
		if len(events) != 2 {
			t.Errorf("events: %v", events)
			return
		}
		if events[0].Type != EventDataChanged || events[1].Type != EventChildrenChanged {
			t.Errorf("order: %v", events)
		}
		if events[0].Zxid >= events[1].Zxid {
			t.Errorf("zxid order: %v", events)
		}
		// One-shot: further writes do not re-fire.
		writer.SetData("/cfg", []byte("2"), -1)
		k.Sleep(2 * time.Second)
		if len(events) != 2 {
			t.Errorf("watch re-fired: %v", events)
		}
	})
}

func TestFollowerFailureToleratedByQuorum(t *testing.T) {
	harness(t, 7, Config{Servers: 3}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 0)
		defer c.Close()
		c.Create("/pre", nil, 0)
		e.KillServer(2) // one follower down: 2/3 still a quorum
		if _, err := c.Create("/post", nil, 0); err != nil {
			t.Errorf("write after follower failure: %v", err)
		}
		if st, _ := c.Exists("/post"); st == nil {
			t.Error("write lost")
		}
	})
}

func TestLeaderFailoverElectsNewLeader(t *testing.T) {
	harness(t, 8, Config{Servers: 3}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 1) // session on a follower that survives
		defer c.Close()
		c.Create("/before", nil, 0)
		oldLeader := e.Leader().id
		e.KillServer(oldLeader)
		nl := e.Leader()
		if nl == nil || nl.id == oldLeader {
			t.Error("no new leader elected")
			return
		}
		if _, err := c.Create("/after", nil, 0); err != nil {
			t.Errorf("write after failover: %v", err)
		}
		_, st, err := c.GetData("/after")
		if err != nil {
			t.Errorf("read after failover: %v", err)
			return
		}
		// New epoch dominates old zxids.
		_, stOld, _ := c.GetData("/before")
		if st.Czxid <= stOld.Czxid {
			t.Errorf("zxid did not advance across epochs: %d <= %d", st.Czxid, stOld.Czxid)
		}
	})
}

func TestPipelinedWritesFIFO(t *testing.T) {
	harness(t, 9, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 1)
		defer c.Close()
		c.Create("/p", nil, 0)
		// Issue reads and writes back-to-back; the final read must observe
		// the last write (reads wait for the session's pending writes).
		for i := 0; i < 5; i++ {
			c.SetData("/p", []byte{byte(i)}, -1)
			data, _, err := c.GetData("/p")
			if err != nil || data[0] != byte(i) {
				t.Errorf("read-your-write %d: %v %v", i, data, err)
			}
		}
	})
}

func TestReadLatencyFarBelowFaaSKeeper(t *testing.T) {
	// Figure 8: self-hosted ZooKeeper serves reads in about a millisecond.
	harness(t, 10, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 0)
		defer c.Close()
		c.Create("/r", bytes.Repeat([]byte("x"), 1024), 0)
		n := 100
		t0 := k.Now()
		for i := 0; i < n; i++ {
			c.GetData("/r")
		}
		avg := (k.Now() - t0) / sim.Time(n)
		if avg > 3*time.Millisecond {
			t.Errorf("zk read avg = %v, want ~1ms", avg)
		}
	})
}

func TestWriteCountTracksCommits(t *testing.T) {
	harness(t, 11, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, _ := Connect(e, 0)
		defer c.Close()
		before := e.WriteCount()
		c.Create("/w1", nil, 0)
		c.SetData("/w1", []byte("x"), -1)
		c.Delete("/w1", -1)
		if got := e.WriteCount() - before; got != 3 {
			t.Errorf("write count = %d, want 3", got)
		}
		if e.ReadCount() != 0 {
			c.GetData("/") // ensure reads tracked separately
		}
	})
}

func TestMultiAtomicCommitAndAbort(t *testing.T) {
	harness(t, 21, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, err := Connect(e, 1)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Create("/cfg", []byte("v0"), 0); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Commit: check + two writes, all at one zxid.
		st, err := c.Multi(
			MultiOp{Op: OpCheck, Path: "/cfg", Version: 0},
			MultiOp{Op: OpCreate, Path: "/cfg/a", Data: []byte("one"), Version: -1},
			MultiOp{Op: OpSetData, Path: "/cfg", Data: []byte("v1"), Version: 0},
		)
		if err != nil {
			t.Errorf("multi: %v", err)
			return
		}
		data, gst, err := c.GetData("/cfg")
		if err != nil || string(data) != "v1" || gst.Version != 1 {
			t.Errorf("after multi: %q v%d (%v)", data, gst.Version, err)
		}
		ast, err := c.Exists("/cfg/a")
		if err != nil || ast == nil {
			t.Errorf("created sub-node: %v %v", ast, err)
		} else if ast.Czxid != gst.Mzxid || st.Mzxid != gst.Mzxid {
			t.Errorf("sub-ops did not share one zxid: create %d, set %d, reply %d",
				ast.Czxid, gst.Mzxid, st.Mzxid)
		}
		// Abort: a failing version guard rejects the whole batch.
		if _, err := c.Multi(
			MultiOp{Op: OpSetData, Path: "/cfg", Data: []byte("v2"), Version: 1},
			MultiOp{Op: OpCheck, Path: "/cfg/a", Version: 9},
		); !errors.Is(err, ErrBadVersion) {
			t.Errorf("aborting multi: %v, want ErrBadVersion", err)
		}
		if data, _, _ := c.GetData("/cfg"); string(data) != "v1" {
			t.Errorf("abort leaked a write: %q", data)
		}
	})
}

func TestAddWatchPersistentAndRecursive(t *testing.T) {
	harness(t, 9, Config{}, time.Hour, func(k *sim.Kernel, e *Ensemble) {
		c, err := Connect(e, 1)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		defer c.Close()
		w, err := Connect(e, 2)
		if err != nil {
			t.Errorf("connect watcher: %v", err)
			return
		}
		defer w.Close()
		if _, err := c.Create("/app", nil, 0); err != nil {
			t.Errorf("create: %v", err)
		}
		var pfires, rfires []WatchEvent
		if err := w.AddWatch("/app", AddWatchPersistent, func(ev WatchEvent) {
			pfires = append(pfires, ev)
		}); err != nil {
			t.Errorf("addwatch persistent: %v", err)
		}
		if err := w.AddWatch("/app", AddWatchPersistentRecursive, func(ev WatchEvent) {
			rfires = append(rfires, ev)
		}); err != nil {
			t.Errorf("addwatch recursive: %v", err)
		}
		// Persistent fires on every change at the exact path, including
		// ChildrenChanged; recursive covers the subtree without
		// ChildrenChanged. Neither is consumed by a fire.
		if _, err := c.SetData("/app", []byte("v1"), -1); err != nil {
			t.Errorf("set: %v", err)
		}
		if _, err := c.SetData("/app", []byte("v2"), -1); err != nil {
			t.Errorf("set2: %v", err)
		}
		if _, err := c.Create("/app/svc", []byte("x"), 0); err != nil {
			t.Errorf("create child: %v", err)
		}
		if _, err := c.SetData("/app/svc", []byte("y"), -1); err != nil {
			t.Errorf("set child: %v", err)
		}
		k.Sleep(time.Second)
		// Persistent at /app: 2 data changes + 1 ChildrenChanged.
		if len(pfires) != 3 {
			t.Errorf("persistent fires = %+v, want 3", pfires)
		}
		nChild := 0
		for _, ev := range pfires {
			if ev.Type == EventChildrenChanged {
				nChild++
			}
		}
		if nChild != 1 {
			t.Errorf("persistent ChildrenChanged fires = %d, want 1", nChild)
		}
		// Recursive at /app: 2 data changes at /app, create + set of
		// /app/svc — and no ChildrenChanged.
		if len(rfires) != 4 {
			t.Errorf("recursive fires = %+v, want 4", rfires)
		}
		for _, ev := range rfires {
			if ev.Type == EventChildrenChanged {
				t.Errorf("recursive watch saw ChildrenChanged: %+v", ev)
			}
		}
		for i := 1; i < len(rfires); i++ {
			if rfires[i].Zxid < rfires[i-1].Zxid {
				t.Errorf("recursive fires out of order: %+v", rfires)
			}
		}
	})
}
