package zk

import (
	"sort"

	"faaskeeper/internal/znode"
)

// tree is one server's replica of the ZooKeeper data tree. The leader
// keeps a second, speculative tree it mutates at proposal time, so
// pipelined writes validate against the future state (the equivalent of
// ZooKeeper's outstanding-changes list).
type tree struct {
	nodes map[string]*znode.Node
	seq   map[string]int64    // per-parent sequential-node counters
	eph   map[string][]string // session -> owned ephemeral paths
}

func newTree() *tree {
	t := &tree{
		nodes: map[string]*znode.Node{},
		seq:   map[string]int64{},
		eph:   map[string][]string{},
	}
	t.nodes[znode.Root] = &znode.Node{Path: znode.Root}
	return t
}

func (t *tree) clone() *tree {
	out := newTree()
	for p, n := range t.nodes {
		out.nodes[p] = n.Clone()
	}
	for p, s := range t.seq {
		out.seq[p] = s
	}
	for s, paths := range t.eph {
		out.eph[s] = append([]string(nil), paths...)
	}
	return out
}

func (t *tree) get(path string) (*znode.Node, bool) {
	n, ok := t.nodes[path]
	return n, ok
}

// validate checks a write request against the current (speculative) state
// and, for creates, resolves the final sequential path and ephemeral
// owner. It mirrors the semantics checks of the FaaSKeeper follower.
func (t *tree) validate(session string, req request) (code Code, finalPath, owner string) {
	switch req.Op {
	case OpCreate:
		parentPath := znode.Parent(req.Path)
		parent, ok := t.nodes[parentPath]
		if !ok {
			return CodeNoNode, "", ""
		}
		if parent.Stat.Ephemeral {
			return CodeNoChildrenEph, "", ""
		}
		finalPath = req.Path
		if req.Flags&znode.FlagSequential != 0 {
			finalPath = znode.SequentialName(req.Path, t.seq[parentPath])
		}
		if _, exists := t.nodes[finalPath]; exists {
			return CodeNodeExists, "", ""
		}
		if req.Flags&znode.FlagEphemeral != 0 {
			owner = session
		}
		return CodeOK, finalPath, owner
	case OpSetData:
		n, ok := t.nodes[req.Path]
		if !ok {
			return CodeNoNode, "", ""
		}
		if req.Version != -1 && req.Version != n.Stat.Version {
			return CodeBadVersion, "", ""
		}
		return CodeOK, req.Path, ""
	case OpDelete:
		n, ok := t.nodes[req.Path]
		if !ok {
			return CodeNoNode, "", ""
		}
		if req.Version != -1 && req.Version != n.Stat.Version {
			return CodeBadVersion, "", ""
		}
		if len(n.Children) > 0 {
			return CodeNotEmpty, "", ""
		}
		return CodeOK, req.Path, ""
	case OpCheck:
		n, ok := t.nodes[req.Path]
		if !ok {
			return CodeNoNode, "", ""
		}
		if req.Version != -1 && req.Version != n.Stat.Version {
			return CodeBadVersion, "", ""
		}
		return CodeOK, req.Path, ""
	}
	return CodeOK, req.Path, ""
}

// firedEvent describes a watch-relevant change produced by applying a txn.
type firedEvent struct {
	Type EventType
	Path string
}

// apply mutates the tree with a committed transaction and returns the
// node's resulting stat plus the watch events the change triggers.
func (t *tree) apply(x *txn) (znode.Stat, []firedEvent) {
	switch x.Type {
	case txnCreate:
		return t.applyCreate(x)
	case txnSetData:
		return t.applySetData(x)
	case txnDelete:
		return t.applyDelete(x)
	case txnCloseSession:
		return znode.Stat{}, t.applyCloseSession(x)
	case txnMulti:
		// All sub-transactions apply at one zxid — ZooKeeper's multi is a
		// single replicated transaction, never partially visible.
		var stat znode.Stat
		var events []firedEvent
		for _, sub := range x.Sub {
			st, evs := t.apply(sub)
			stat = st
			events = append(events, evs...)
		}
		return stat, events
	}
	return znode.Stat{}, nil
}

func (t *tree) applyCreate(x *txn) (znode.Stat, []firedEvent) {
	parentPath := znode.Parent(x.Path)
	parent := t.nodes[parentPath]
	n := &znode.Node{
		Path: x.Path,
		Data: append([]byte(nil), x.Data...),
		Stat: znode.Stat{
			Czxid: x.Zxid, Mzxid: x.Zxid, Pzxid: x.Zxid,
			Ephemeral: x.Owner != "", Owner: x.Owner,
			DataLength: int32(len(x.Data)),
		},
	}
	t.nodes[x.Path] = n
	parent.Children = append(parent.Children, znode.Base(x.Path))
	parent.Stat.Cversion++
	parent.Stat.Pzxid = x.Zxid
	parent.Stat.NumChildren = int32(len(parent.Children))
	t.seq[parentPath]++
	if x.Owner != "" {
		t.eph[x.Owner] = append(t.eph[x.Owner], x.Path)
	}
	return n.Stat, []firedEvent{
		{EventCreated, x.Path},
		{EventChildrenChanged, parentPath},
	}
}

func (t *tree) applySetData(x *txn) (znode.Stat, []firedEvent) {
	n, ok := t.nodes[x.Path]
	if !ok {
		return znode.Stat{}, nil
	}
	n.Data = append([]byte(nil), x.Data...)
	n.Stat.Version++
	n.Stat.Mzxid = x.Zxid
	n.Stat.DataLength = int32(len(x.Data))
	return n.Stat, []firedEvent{{EventDataChanged, x.Path}}
}

func (t *tree) applyDelete(x *txn) (znode.Stat, []firedEvent) {
	n, ok := t.nodes[x.Path]
	if !ok {
		return znode.Stat{}, nil
	}
	parentPath := znode.Parent(x.Path)
	parent := t.nodes[parentPath]
	delete(t.nodes, x.Path)
	if parent != nil {
		kept := parent.Children[:0:0]
		name := znode.Base(x.Path)
		for _, c := range parent.Children {
			if c != name {
				kept = append(kept, c)
			}
		}
		parent.Children = kept
		parent.Stat.Cversion++
		parent.Stat.Pzxid = x.Zxid
		parent.Stat.NumChildren = int32(len(parent.Children))
	}
	if n.Stat.Owner != "" {
		owned := t.eph[n.Stat.Owner][:0:0]
		for _, p := range t.eph[n.Stat.Owner] {
			if p != x.Path {
				owned = append(owned, p)
			}
		}
		t.eph[n.Stat.Owner] = owned
	}
	return n.Stat, []firedEvent{
		{EventDeleted, x.Path},
		{EventChildrenChanged, parentPath},
	}
}

// applyCloseSession removes every ephemeral node the session owns, in
// deterministic path order, and returns all fired events.
func (t *tree) applyCloseSession(x *txn) []firedEvent {
	paths := append([]string(nil), t.eph[x.SessionID]...)
	sort.Strings(paths)
	var events []firedEvent
	for _, p := range paths {
		if _, ok := t.nodes[p]; !ok {
			continue
		}
		_, evs := t.applyDelete(&txn{Zxid: x.Zxid, Type: txnDelete, Path: p})
		events = append(events, evs...)
	}
	delete(t.eph, x.SessionID)
	return events
}
