package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/core"
	"faaskeeper/internal/fkclient"
	"faaskeeper/internal/obs"
	"faaskeeper/internal/sim"
	"faaskeeper/internal/txn"
	"faaskeeper/internal/watchfanout"
	"faaskeeper/internal/znode"
)

// Scenario is one chaos run: a seed, a deployment config name, workload
// sizing, and a fault schedule. Everything the run does is a pure function
// of this struct, so a failing scenario replays exactly.
type Scenario struct {
	Seed         int64
	Config       string // one of Configs()
	Clients      int    // shared-path worker sessions (default 4)
	OpsPerClient int    // ops per worker (default 25)
	Faults       Faults
	Telemetry    bool
}

// Result is one completed chaos run.
type Result struct {
	Scenario    Scenario
	History     *History
	Violations  []Violation
	FaultCounts map[string]int64
	Schedule    []string // injector's fault log, for failure artifacts
	VirtualTime sim.Time
	Spans       []obs.Span // only with Scenario.Telemetry
}

// Failed reports whether the run found invariant violations.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// ReplayCmd is the command line that re-runs this exact scenario.
func (r *Result) ReplayCmd() string {
	return fmt.Sprintf("go test ./internal/chaos -run TestChaos -chaos.seed=%d -chaos.config=%s",
		r.Scenario.Seed, r.Scenario.Config)
}

// Configs lists the deployment configurations the chaos matrix covers:
// the paper-faithful single-shard pipeline, the batching distributor, the
// two-level cache tier, cross-shard transactions, live resharding, and
// the hierarchical watch fan-out tier.
func Configs() []string {
	return []string{"plain", "batching", "caching", "txn", "reshard", "fanout"}
}

// DeployConfig maps a matrix config name to its deployment config. All
// configs raise the retry budget well above the crash cap so injected
// crash storms always terminate in a redelivery that completes, and run
// the heartbeat function so crashed sessions' ephemerals are reaped.
func DeployConfig(name string) (core.Config, bool) {
	base := core.Config{
		Retries:        30,
		HeartbeatEvery: 2 * time.Second,
		EnableTxn:      true,
	}
	switch name {
	case "plain":
		return base, true
	case "batching":
		base.WriteShards = 2
		base.BatchWrites = true
		return base, true
	case "caching":
		base.WriteShards = 2
		base.CacheMode = core.CacheTwoLevel
		base.UserStore = core.StoreKV
		return base, true
	case "txn":
		base.WriteShards = 4
		base.UserStore = core.StoreKV
		return base, true
	case "reshard":
		base.WriteShards = 2
		base.DynamicShards = true
		base.UserStore = core.StoreKV
		return base, true
	case "fanout":
		base.WriteShards = 2
		base.UserStore = core.StoreKV
		base.WatchFanout = true
		return base, true
	default:
		return core.Config{}, false
	}
}

// Workload layout. Shared paths take the randomized multi-writer traffic;
// the swap pair is written only by atomic multis and probed in reverse
// order; private paths have a single writing session each.
var sharedRoots = []string{"/s0", "/s1", "/s2", "/s3"}

const (
	watchPath  = "/s0/x"
	ephPath    = "/eph-cr0"
	swapParent = "/swp"
	swapA      = "/swp/a" // colocated pair: one shard, fast-path multi
	swapB      = "/swp/b"
	crossA     = "/sxa" // top-level pair: spans shards under WriteShards>1
	crossB     = "/sxb"
)

// swapPairsFor returns the swap probes active under a config. The
// cross-shard pair runs only where the user store applies the 2PC commit
// atomically and no cache tier sits in the read path (cross-shard txids
// are not numerically comparable, which the cache floors rely on).
func swapPairsFor(config string) [][2]string {
	pairs := [][2]string{{swapA, swapB}}
	if config == "txn" || config == "reshard" {
		pairs = append(pairs, [2]string{crossA, crossB})
	}
	return pairs
}

// isDefinite classifies an operation error: definite errors come from
// validation (or client-side checks) before any commit could happen;
// anything else — system errors, timeouts — is indeterminate and the
// write may still land later.
func isDefinite(err error) bool {
	for _, e := range []error{
		core.ErrNoNode, core.ErrNodeExists, core.ErrBadVersion,
		core.ErrNotEmpty, core.ErrNoChildrenEph, core.ErrTooLarge,
		core.ErrTxnAborted, core.ErrTxnDisabled, core.ErrSessionClosed,
		znode.ErrBadPath,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Run executes one scenario: deploy, install the seeded injector, drive
// the workload clients, settle, audit the end state, and check the
// recorded history. It never calls testing APIs so the experiment runner
// and the CLI share it with the test harness.
func Run(s Scenario) *Result {
	if s.Clients <= 0 {
		s.Clients = 4
	}
	if s.OpsPerClient <= 0 {
		s.OpsPerClient = 25
	}
	cfg, ok := DeployConfig(s.Config)
	if !ok {
		return &Result{Scenario: s, Violations: []Violation{{
			Invariant: "harness", Detail: fmt.Sprintf("unknown config %q", s.Config),
		}}}
	}
	cfg.Telemetry = s.Telemetry

	k := sim.NewKernel(s.Seed)
	inj := NewInjector(s.Seed, s.Faults)
	k.SetFaultHook(inj)
	d := core.NewDeployment(k, cfg)
	home := d.Cfg.Profile.Home

	h := &History{}
	res := &Result{Scenario: s, History: h}
	record := func(e Event) { h.Add(e) }
	harness := func(format string, args ...any) {
		res.Violations = append(res.Violations, Violation{
			Invariant: "harness", Detail: fmt.Sprintf(format, args...),
		})
	}

	// ---- recorded client-op wrappers -----------------------------------
	doSet := func(c *fkclient.Client, session, path, value string) {
		start := k.Now()
		st, err := c.SetData(path, []byte(value), -1)
		record(Event{
			Session: session, Kind: KindWrite, Op: "set", Path: path, Value: value,
			Mzxid: st.Mzxid, Start: start, End: k.Now(),
			Err: errStr(err), Definite: err != nil && isDefinite(err),
		})
	}
	doCreate := func(c *fkclient.Client, session, path, value string, flags znode.Flags) error {
		start := k.Now()
		_, err := c.Create(path, []byte(value), flags)
		record(Event{
			Session: session, Kind: KindWrite, Op: "create", Path: path, Value: value,
			Start: start, End: k.Now(),
			Err: errStr(err), Definite: err != nil && isDefinite(err),
		})
		return err
	}
	doDelete := func(c *fkclient.Client, session, path string) {
		start := k.Now()
		err := c.Delete(path, -1)
		record(Event{
			Session: session, Kind: KindWrite, Op: "delete", Path: path,
			Start: start, End: k.Now(),
			Err: errStr(err), Definite: err != nil && isDefinite(err),
		})
	}
	doGet := func(c *fkclient.Client, session, path string) {
		start := k.Now()
		data, st, err := c.GetData(path)
		record(Event{
			Session: session, Kind: KindRead, Op: "get", Path: path, Value: string(data),
			Mzxid: st.Mzxid, Start: start, End: k.Now(),
			Err: errStr(err), Definite: err != nil && isDefinite(err),
		})
	}
	doMulti := func(c *fkclient.Client, session string, ops ...txn.Op) {
		start := k.Now()
		results, err := c.Multi(ops...)
		ev := Event{
			Session: session, Kind: KindMulti, Op: "multi", Path: ops[0].Path,
			Start: start, End: k.Now(),
			Err: errStr(err), Definite: err != nil && isDefinite(err),
		}
		for i, op := range ops {
			sub := SubOp{Op: opName(op.Type), Path: op.Path, Value: string(op.Data)}
			if i < len(results) {
				sub.Code = results[i].Code
				sub.Txid = results[i].Txid
			} else {
				sub.Code = "?" // no result returned: outcome unknown
			}
			ev.Ops = append(ev.Ops, sub)
		}
		record(ev)
	}

	// ---- driver ---------------------------------------------------------
	const (
		mainDeadline  = 15 * time.Minute // virtual
		settleTime    = 20 * time.Second
		auditDeadline = 3 * time.Minute
	)
	mainDone, auditDone := false, false
	watcherID := "watcher"

	k.Go("chaos-driver", func() {
		setup, err := fkclient.Connect(d, "setup", home)
		if err != nil {
			harness("setup connect: %v", err)
			mainDone = true
			return
		}
		for _, p := range sharedRoots {
			if err := doCreate(setup, "setup", p, "init"+p+"#0", 0); err != nil {
				harness("setup create %s: %v", p, err)
			}
		}
		_ = doCreate(setup, "setup", watchPath, "init"+watchPath+"#0", 0)
		_ = doCreate(setup, "setup", "/s1/y", "init/s1/y#0", 0)
		_ = doCreate(setup, "setup", swapParent, "init"+swapParent+"#0", 0)
		for _, pair := range swapPairsFor(s.Config) {
			_ = doCreate(setup, "setup", pair[0], pair[0]+"#0", 0)
			_ = doCreate(setup, "setup", pair[1], pair[1]+"#0", 0)
		}

		done := sim.NewWaitGroup(k)
		spawn := func(name string, fn func()) {
			done.Add(1)
			k.Go(name, func() {
				defer done.Done()
				fn()
			})
		}

		// Shared-path workers: randomized set/get plus create/delete of an
		// owned child, per-client seeded streams.
		for ci := 0; ci < s.Clients; ci++ {
			id := fmt.Sprintf("w%d", ci)
			r := rand.New(rand.NewSource(s.Seed + int64(ci)*101))
			spawn(id, func() {
				c, err := fkclient.Connect(d, id, home)
				if err != nil {
					harness("%s connect: %v", id, err)
					return
				}
				defer c.Close()
				own := "/s1/" + id
				for op := 0; op < s.OpsPerClient; op++ {
					path := sharedRoots[r.Intn(len(sharedRoots))]
					switch r.Intn(10) {
					case 0, 1, 2, 3:
						doSet(c, id, path, fmt.Sprintf("%s#%d", id, op))
					case 4:
						_ = doCreate(c, id, own, fmt.Sprintf("%s-own#%d", id, op), 0)
					case 5:
						doDelete(c, id, own)
					case 6:
						doSet(c, id, watchPath, fmt.Sprintf("%s@x#%d", id, op))
					default:
						doGet(c, id, path)
					}
					k.Sleep(time.Duration(r.Intn(40)) * time.Millisecond)
				}
			})
		}

		// Private read-your-writes sessions: sole writer of their path.
		for pi := 0; pi < 2; pi++ {
			id := fmt.Sprintf("p%d", pi)
			path := "/p-" + id
			r := rand.New(rand.NewSource(s.Seed + 7000 + int64(pi)))
			spawn(id, func() {
				c, err := fkclient.Connect(d, id, home)
				if err != nil {
					harness("%s connect: %v", id, err)
					return
				}
				defer c.Close()
				if doCreate(c, id, path, id+"#0", 0) != nil {
					return
				}
				for op := 1; op <= s.OpsPerClient; op++ {
					if r.Intn(2) == 0 {
						doSet(c, id, path, fmt.Sprintf("%s#%d", id, op))
					} else {
						doGet(c, id, path)
					}
					k.Sleep(time.Duration(r.Intn(30)) * time.Millisecond)
				}
			})
		}

		// Swap writer + reverse-order reader per active pair.
		for wi, pair := range swapPairsFor(s.Config) {
			pair := pair
			wid := fmt.Sprintf("swapw%d", wi)
			rid := fmt.Sprintf("swapr%d", wi)
			spawn(wid, func() {
				c, err := fkclient.Connect(d, wid, home)
				if err != nil {
					harness("%s connect: %v", wid, err)
					return
				}
				defer c.Close()
				for kk := 1; kk <= s.OpsPerClient; kk++ {
					v := fmt.Sprintf("sw%d#%d", wi, kk)
					doMulti(c, wid,
						txn.SetData(pair[0], []byte(v), -1),
						txn.SetData(pair[1], []byte(v), -1))
					k.Sleep(60 * time.Millisecond)
				}
			})
			rr := rand.New(rand.NewSource(s.Seed + 9000 + int64(wi)))
			spawn(rid, func() {
				c, err := fkclient.Connect(d, rid, home)
				if err != nil {
					harness("%s connect: %v", rid, err)
					return
				}
				defer c.Close()
				for n := 0; n < s.OpsPerClient; n++ {
					doGet(c, rid, pair[1]) // b first ...
					doGet(c, rid, pair[0]) // ... then a: a must not trail b
					k.Sleep(time.Duration(20+rr.Intn(60)) * time.Millisecond)
				}
			})
		}

		// Watcher: one-shot data watch on a hot path, re-armed after each
		// fire; a never-firing arm gathers read evidence for the checker.
		spawn(watcherID, func() {
			c, err := fkclient.Connect(d, watcherID, home)
			if err != nil {
				harness("%s connect: %v", watcherID, err)
				return
			}
			// No Close: the session must stay open so an armed-but-silent
			// watch at history end is judged, not excused.
			wid := core.WatchID(watchPath, core.WatchData)
			armErrs := 0
			for n := 0; n < s.OpsPerClient; n++ {
				fired := false
				cb := func(note core.Notification) {
					record(Event{
						Session: watcherID, Kind: KindWatchFire, Path: note.Path,
						Mzxid: note.Txid, WatchID: note.WatchID,
						Start: k.Now(), End: k.Now(),
					})
					fired = true
				}
				start := k.Now()
				_, st, err := c.GetDataW(watchPath, cb)
				record(Event{
					Session: watcherID, Kind: KindWatchArm, Path: watchPath,
					Mzxid: st.Mzxid, WatchID: wid, Start: start, End: k.Now(),
					Err: errStr(err),
				})
				if err != nil {
					// Arm reads can time out under heavy schedules; each
					// retry costs a full request timeout, so give up after
					// a few rather than eat the phase deadline.
					if armErrs++; armErrs >= 3 {
						break
					}
					k.Sleep(200 * time.Millisecond)
					continue
				}
				armErrs = 0
				waitUntil := k.Now() + sim.Time(30*time.Second)
				for !fired && k.Now() < waitUntil {
					k.Sleep(50 * time.Millisecond)
				}
				if !fired {
					// Evidence reads, spaced past any in-flight pipeline
					// race, then give up on this arm.
					k.Sleep(5 * time.Second)
					doGet(c, watcherID, watchPath)
					k.Sleep(5 * time.Second)
					doGet(c, watcherID, watchPath)
					break
				}
			}
		})

		// Fan-out tier watchers: a coalescing persistent data watch on the
		// hot path and a recursive subtree watch. Both sessions stay open
		// to history end so the persistent coverage rule can judge them:
		// coalescing may suppress intermediate deliveries, but the newest
		// delivered txid must catch up with every settled write.
		if cfg.WatchFanout {
			for _, pw := range []struct {
				id   string
				path string
				opts fkclient.WatchOptions
			}{
				{"pwatch", watchPath, fkclient.WatchOptions{Policy: watchfanout.PolicyCoalesce}},
				{"rwatch", "/s0", fkclient.WatchOptions{Recursive: true}},
			} {
				pw := pw
				spawn(pw.id, func() {
					c, err := fkclient.Connect(d, pw.id, home)
					if err != nil {
						harness("%s connect: %v", pw.id, err)
						return
					}
					// No Close: the coverage rule only judges open sessions.
					start := k.Now()
					wid, err := c.AddWatch(pw.path, pw.opts, func(note core.Notification) {
						record(Event{
							Session: pw.id, Kind: KindWatchFire, Path: note.Path,
							Mzxid: note.Txid, WatchID: note.WatchID,
							Persistent: true, Recursive: pw.opts.Recursive,
							Start: k.Now(), End: k.Now(),
						})
					})
					record(Event{
						Session: pw.id, Kind: KindWatchArm, Path: pw.path, WatchID: wid,
						Persistent: true, Recursive: pw.opts.Recursive,
						Start: start, End: k.Now(), Err: errStr(err),
					})
					if err != nil {
						harness("%s addwatch: %v", pw.id, err)
						return
					}
					// Reads through the persistent Z4 kick gate, interleaved
					// with the deliveries they may have to wait on.
					for n := 0; n < s.OpsPerClient/2; n++ {
						doGet(c, pw.id, pw.path)
						k.Sleep(300 * time.Millisecond)
					}
				})
			}
		}

		// Session churn: connect, work, clean close, reconnect fresh.
		spawn("churn", func() {
			for gen := 0; gen < 3; gen++ {
				id := fmt.Sprintf("churn%d", gen)
				c, err := fkclient.Connect(d, id, home)
				if err != nil {
					harness("%s connect: %v", id, err)
					return
				}
				for n := 0; n < 5; n++ {
					doSet(c, id, "/s2", fmt.Sprintf("%s#%d", id, n))
					doGet(c, id, "/s2")
					k.Sleep(30 * time.Millisecond)
				}
				if err := c.Close(); err != nil {
					harness("%s close: %v", id, err)
				}
			}
		})

		// Crasher: ephemeral owner that stops answering heartbeats mid-run
		// — the settle phase must reap its ephemeral.
		spawn("cr0", func() {
			c, err := fkclient.Connect(d, "cr0", home)
			if err != nil {
				harness("cr0 connect: %v", err)
				return
			}
			if doCreate(c, "cr0", ephPath, "eph#0", znode.FlagEphemeral) != nil {
				c.Crash()
				return
			}
			for n := 1; n <= 4; n++ {
				doSet(c, "cr0", ephPath, fmt.Sprintf("eph#%d", n))
				k.Sleep(40 * time.Millisecond)
			}
			c.Crash()
		})

		// Regional cache-node loss, where a cache tier exists.
		if rc := d.CacheFor(home); rc != nil && s.Faults.CacheLosses > 0 {
			spawn("cache-killer", func() {
				for n := 0; n < s.Faults.CacheLosses; n++ {
					k.Sleep(3 * time.Second)
					rc.Lose()
				}
			})
		}

		// Live resharding mid-traffic.
		if s.Config == "reshard" {
			spawn("resharder", func() {
				k.Sleep(2 * time.Second)
				if err := d.SplitSubtree("/s0", 2); err != nil {
					harness("split /s0: %v", err)
				}
				k.Sleep(4 * time.Second)
				if err := d.GrowShards(d.NumShards() + 1); err != nil {
					harness("grow shards: %v", err)
				}
				k.Sleep(4 * time.Second)
				if err := d.MergeSubtree("/s0"); err != nil {
					harness("merge /s0: %v", err)
				}
			})
		}

		done.Wait()
		if err := setup.Close(); err != nil {
			harness("setup close: %v", err)
		}
		mainDone = true
	})

	// The heartbeat function keeps the event loop alive forever, so the
	// kernel is driven in bounded slices gated on completion flags rather
	// than run to quiescence.
	deadline := k.Now() + sim.Time(mainDeadline)
	for !mainDone && k.Now() < deadline {
		k.RunFor(time.Second)
	}
	if !mainDone {
		harness("workload stuck: main phase incomplete after %v virtual time (seed %d, config %s)",
			mainDeadline, s.Seed, s.Config)
	} else {
		k.RunFor(settleTime)

		// ---- audit: end-state reads through a fresh session, ephemeral
		// reaping, and store-level tree integrity.
		k.Go("chaos-audit", func() {
			defer func() { auditDone = true }()
			c, err := fkclient.Connect(d, "audit", home)
			if err != nil {
				harness("audit connect: %v", err)
				return
			}
			defer c.Close()
			paths := append([]string{}, sharedRoots...)
			paths = append(paths, watchPath, "/s1/y")
			for _, pair := range swapPairsFor(s.Config) {
				paths = append(paths, pair[0], pair[1])
			}
			for _, p := range paths {
				doGet(c, "audit", p)
			}
			// The crashed session's ephemeral must be reaped once its
			// heartbeats lapse; poll since eviction rides the faulty
			// pipeline too.
			evicted := false
			evictBy := k.Now() + sim.Time(90*time.Second)
			for k.Now() < evictBy {
				_, _, err := c.GetData(ephPath)
				if errors.Is(err, core.ErrNoNode) {
					evicted = true
					break
				}
				k.Sleep(5 * time.Second)
			}
			if !evicted {
				res.Violations = append(res.Violations, Violation{
					Invariant: "ephemeral-reaping", Session: "cr0", Path: ephPath,
					Detail: "ephemeral of crashed session still readable 90s after crash",
				})
			}
			// Tree integrity: parent/child links in the user store agree.
			ctx := cloud.ClientCtx(home)
			store := d.StoreFor(home)
			var walk func(path string)
			walk = func(path string) {
				n, _, err := store.Read(ctx, path)
				if err != nil {
					res.Violations = append(res.Violations, Violation{
						Invariant: "tree-integrity", Path: path,
						Detail: fmt.Sprintf("unreadable: %v", err),
					})
					return
				}
				for _, child := range n.Children {
					childPath := znode.Join(path, child)
					if cn, _, err := store.Read(ctx, childPath); err != nil {
						res.Violations = append(res.Violations, Violation{
							Invariant: "tree-integrity", Path: childPath,
							Detail: fmt.Sprintf("listed by %s but unreadable: %v", path, err),
						})
					} else if cn.Path != childPath {
						res.Violations = append(res.Violations, Violation{
							Invariant: "tree-integrity", Path: childPath,
							Detail: fmt.Sprintf("stored under wrong path %s", cn.Path),
						})
					} else {
						walk(childPath)
					}
				}
			}
			walk(znode.Root)
		})
		auditBy := k.Now() + sim.Time(auditDeadline)
		for !auditDone && k.Now() < auditBy {
			k.RunFor(time.Second)
		}
		if !auditDone {
			harness("audit stuck after %v virtual time", auditDeadline)
		}
	}

	res.VirtualTime = k.Now()
	res.FaultCounts = inj.Counts()
	res.Schedule = inj.Schedule()
	if s.Telemetry && d.Obs != nil {
		res.Spans = d.Obs.Tracer.Spans()
	}
	k.Shutdown()

	open := map[string]bool{watcherID: true}
	if cfg.WatchFanout {
		open["pwatch"] = true
		open["rwatch"] = true
	}
	res.Violations = append(res.Violations, Check(h, CheckOpts{
		SwapPairs:    swapPairsFor(s.Config),
		OpenSessions: open,
	})...)
	return res
}

func opName(t txn.OpType) string {
	switch t {
	case txn.OpCreate:
		return "create"
	case txn.OpSetData:
		return "set"
	case txn.OpDelete:
		return "delete"
	default:
		return "check"
	}
}
