package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"faaskeeper/internal/sim"
)

// Injector implements sim.FaultHook: it draws every fault decision from
// its own seeded source — never the kernel's — so the schedule is a pure
// function of (seed, call sequence) and a replay with the same seed
// injects exactly the same faults at the same points.
type Injector struct {
	f      Faults
	rng    *rand.Rand
	stages map[string]bool
	cap    int

	crashes map[string]int   // (stage|session|seq) -> injected crashes
	counts  map[string]int64 // fault kind -> total injections
	log     []string         // bounded human-readable schedule
}

// maxLog bounds the schedule log kept for failure artifacts.
const maxLog = 4096

// NewInjector builds the seeded injector for one fault schedule.
func NewInjector(seed int64, f Faults) *Injector {
	if f.CrashCap <= 0 {
		f.CrashCap = DefaultCrashCap
	}
	var stages map[string]bool
	if len(f.Stages) > 0 {
		stages = make(map[string]bool, len(f.Stages))
		for _, s := range f.Stages {
			stages[s] = true
		}
	}
	return &Injector{
		f:       f,
		rng:     rand.New(rand.NewSource(seed ^ 0x5eedfa17)),
		stages:  stages,
		cap:     f.CrashCap,
		crashes: map[string]int{},
		counts:  map[string]int64{},
	}
}

func (in *Injector) note(kind, detail string) {
	in.counts[kind]++
	if len(in.log) < maxLog {
		in.log = append(in.log, kind+" "+detail)
	}
}

// Crash implements sim.FaultHook.
func (in *Injector) Crash(stage, session string, seq int64) bool {
	if in.f.CrashProb <= 0 {
		return false
	}
	if in.stages != nil && !in.stages[stage] {
		return false
	}
	// One draw per opportunity keeps the schedule deterministic even for
	// capped keys.
	if in.rng.Float64() >= in.f.CrashProb {
		return false
	}
	key := fmt.Sprintf("%s|%s|%d", stage, session, seq)
	if in.crashes[key] >= in.cap {
		return false
	}
	in.crashes[key]++
	in.note("crash."+stage, key)
	return true
}

// Redeliver implements sim.FaultHook.
func (in *Injector) Redeliver(fn string) bool {
	if in.f.RedeliverProb <= 0 || in.rng.Float64() >= in.f.RedeliverProb {
		return false
	}
	in.note("redeliver."+fn, fn)
	return true
}

// DeliveryDelay implements sim.FaultHook.
func (in *Injector) DeliveryDelay(queue string) sim.Time {
	if in.f.DelayProb <= 0 || in.f.DelayMax <= 0 || in.rng.Float64() >= in.f.DelayProb {
		return 0
	}
	d := sim.Time(1 + in.rng.Int63n(int64(in.f.DelayMax)))
	in.note("delay.queue", fmt.Sprintf("%s %v", queue, d))
	return d
}

// OpDelay implements sim.FaultHook.
func (in *Injector) OpDelay() sim.Time {
	if in.f.OpJitterProb <= 0 || in.f.OpJitterMax <= 0 || in.rng.Float64() >= in.f.OpJitterProb {
		return 0
	}
	// Jitter is frequent; keep it out of the schedule log but counted.
	in.counts["jitter.op"]++
	return sim.Time(1 + in.rng.Int63n(int64(in.f.OpJitterMax)))
}

// Counts returns a copy of the per-kind injection totals.
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// CountKinds returns the injected fault kinds, sorted, for reports.
func (in *Injector) CountKinds() []string {
	kinds := make([]string, 0, len(in.counts))
	for k := range in.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Schedule returns the recorded fault schedule (bounded at maxLog
// entries) — part of the failure artifact that makes a seed's run
// inspectable without re-running it.
func (in *Injector) Schedule() []string { return in.log }
