// Package chaos is the simulator-level fault-injection harness: seeded
// fault schedules (function crashes at labeled pipeline stages, duplicate
// batch deliveries, delivery delays, storage jitter, regional cache-node
// loss) driven against randomized multi-client workloads whose complete
// client-visible history is recorded and checked for linearizability-style
// invariants. A violation reports the scenario's seed and config, so the
// exact run replays with
//
//	go test ./internal/chaos -run TestChaos -chaos.seed=N -chaos.config=C
//
// or, outside the test harness, `fkcli -seed N chaos C`.
package chaos

import "time"

// Faults is one fault schedule: the per-opportunity probabilities and
// bounds the seeded Injector draws against. The zero value injects
// nothing.
type Faults struct {
	// CrashProb is the probability that a function dies at any one
	// crash-eligible pipeline stage (the obs.Stage* labels). Every crash
	// makes the queue trigger redeliver and replay the batch.
	CrashProb float64

	// CrashCap bounds injected crashes per (stage, session, seq) key so
	// replay storms always terminate inside the function retry budget.
	// 0 means DefaultCrashCap.
	CrashCap int

	// Stages restricts crash injection to the listed obs stage labels;
	// empty means every instrumented stage is eligible.
	Stages []string

	// RedeliverProb is the probability that a successfully processed
	// batch is delivered once more — the at-least-once duplicate.
	RedeliverProb float64

	// DelayProb / DelayMax inject extra in-flight latency on a batch
	// delivery (uniform in (0, DelayMax]).
	DelayProb float64
	DelayMax  time.Duration

	// OpJitterProb / OpJitterMax inject extra latency on individual
	// storage and service operations (uniform in (0, OpJitterMax]).
	OpJitterProb float64
	OpJitterMax  time.Duration

	// CacheLosses is how many times the scenario kills the regional cache
	// node mid-run (only meaningful for configs with a cache tier).
	CacheLosses int
}

// DefaultCrashCap bounds injected crashes per (stage, session, seq) key.
const DefaultCrashCap = 2

// DefaultFaults is the standing chaos schedule: every fault class on at
// rates that make multi-fault interleavings common in a few hundred ops
// while the crash cap and retry budget keep every request completing.
func DefaultFaults() Faults {
	return Faults{
		CrashProb:     0.10,
		CrashCap:      DefaultCrashCap,
		RedeliverProb: 0.10,
		DelayProb:     0.06,
		DelayMax:      1200 * time.Millisecond,
		OpJitterProb:  0.05,
		OpJitterMax:   15 * time.Millisecond,
		CacheLosses:   2,
	}
}

// Quiet is a schedule with every fault off — the control arm: the
// workload and checker must pass without faults before a failure under
// DefaultFaults means anything.
func Quiet() Faults { return Faults{} }
