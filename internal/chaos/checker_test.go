package chaos

// Self-tests for the history checker: hand-crafted known-bad histories it
// must flag, and a known-good history it must pass. A checker that cannot
// see a planted bug proves nothing about the runs it blesses.

import (
	"testing"
	"time"

	"faaskeeper/internal/sim"
)

func sec(n int64) sim.Time { return sim.Time(n) * time.Second }

func hasViolation(vs []Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

func checkH(events ...Event) []Violation {
	return Check(&History{Events: events}, CheckOpts{
		SwapPairs:    [][2]string{{"/swp/a", "/swp/b"}},
		OpenSessions: map[string]bool{"w": true},
	})
}

func TestCheckerCleanHistoryPasses(t *testing.T) {
	vs := checkH(
		Event{Session: "s", Kind: KindWrite, Op: "create", Path: "/x", Value: "v#0", End: 1},
		Event{Session: "s", Kind: KindWrite, Op: "set", Path: "/x", Value: "v#1", Mzxid: 10, End: 2},
		Event{Session: "s", Kind: KindRead, Op: "get", Path: "/x", Value: "v#1", Mzxid: 10, End: 3},
		Event{Session: "s", Kind: KindWrite, Op: "set", Path: "/x", Value: "v#2", Mzxid: 14, End: 4},
		Event{Session: "r", Kind: KindRead, Op: "get", Path: "/x", Value: "v#2", Mzxid: 14, End: 5},
	)
	if len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestCheckerFlagsTornMulti(t *testing.T) {
	// The multi set a=b=2 atomically, but a reader saw b at 2 while a was
	// still at 1 afterwards: a torn commit.
	vs := checkH(
		Event{Session: "w", Kind: KindMulti, Op: "multi", Path: "/swp/a", End: 1, Ops: []SubOp{
			{Op: "set", Path: "/swp/a", Value: "sw#1", Code: "ok", Txid: 10},
			{Op: "set", Path: "/swp/b", Value: "sw#1", Code: "ok", Txid: 10},
		}},
		Event{Session: "w", Kind: KindMulti, Op: "multi", Path: "/swp/a", End: 2, Ops: []SubOp{
			{Op: "set", Path: "/swp/a", Value: "sw#2", Code: "ok", Txid: 18},
			{Op: "set", Path: "/swp/b", Value: "sw#2", Code: "ok", Txid: 18},
		}},
		Event{Session: "r", Kind: KindRead, Op: "get", Path: "/swp/b", Value: "sw#2", Mzxid: 18, End: 3},
		Event{Session: "r", Kind: KindRead, Op: "get", Path: "/swp/a", Value: "sw#1", Mzxid: 10, End: 4},
	)
	if !hasViolation(vs, "multi-atomicity") {
		t.Fatalf("torn multi not flagged: %v", vs)
	}
}

func TestCheckerFlagsRolledBackMultiVisible(t *testing.T) {
	// A definite rollback's value must never become readable.
	vs := checkH(
		Event{Session: "w", Kind: KindMulti, Op: "multi", Path: "/swp/a", End: 1,
			Err: "faaskeeper: transaction aborted", Definite: true, Ops: []SubOp{
				{Op: "set", Path: "/swp/a", Value: "sw#9", Code: "txn_aborted"},
				{Op: "set", Path: "/swp/b", Value: "sw#9", Code: "bad_version"},
			}},
		Event{Session: "r", Kind: KindRead, Op: "get", Path: "/swp/a", Value: "sw#9", Mzxid: 30, End: 2},
	)
	if !hasViolation(vs, "failed-write-visible") {
		t.Fatalf("rolled-back multi value visible but not flagged: %v", vs)
	}
}

func TestCheckerFlagsMzxidRegression(t *testing.T) {
	vs := checkH(
		Event{Session: "s", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 20, End: 1},
		Event{Session: "s", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 12, End: 2},
	)
	if !hasViolation(vs, "mzxid-regression") {
		t.Fatalf("mzxid regression not flagged: %v", vs)
	}
}

func TestCheckerFlagsWriteAckReordering(t *testing.T) {
	vs := checkH(
		Event{Session: "s", Kind: KindWrite, Op: "set", Path: "/x", Value: "a#1", Mzxid: 9, End: 1},
		Event{Session: "s", Kind: KindWrite, Op: "set", Path: "/x", Value: "a#2", Mzxid: 7, End: 2},
	)
	if !hasViolation(vs, "write-txid-order") {
		t.Fatalf("write ack reordering not flagged: %v", vs)
	}
}

func TestCheckerFlagsReadYourWritesBreak(t *testing.T) {
	vs := checkH(
		Event{Session: "p0", Kind: KindWrite, Op: "set", Path: "/p-p0", Value: "p0#1", Mzxid: 5, End: 1},
		Event{Session: "p0", Kind: KindWrite, Op: "set", Path: "/p-p0", Value: "p0#2", Mzxid: 8, End: 2},
		Event{Session: "p0", Kind: KindRead, Op: "get", Path: "/p-p0", Value: "p0#1", Mzxid: 5, End: 3},
	)
	if !hasViolation(vs, "read-your-writes") {
		t.Fatalf("stale own-write read not flagged: %v", vs)
	}
}

func TestCheckerAllowsIndeterminateWrite(t *testing.T) {
	// A timed-out write may or may not have landed: reading either the old
	// or the new value is legal.
	base := []Event{
		{Session: "p0", Kind: KindWrite, Op: "set", Path: "/p-p0", Value: "p0#1", Mzxid: 5, End: 1},
		{Session: "p0", Kind: KindWrite, Op: "set", Path: "/p-p0", Value: "p0#2",
			Err: "fkclient: request timed out", End: 2},
	}
	for _, v := range []string{"p0#1", "p0#2"} {
		vs := checkH(append(base,
			Event{Session: "p0", Kind: KindRead, Op: "get", Path: "/p-p0", Value: v, Mzxid: 5, End: 3})...)
		if hasViolation(vs, "read-your-writes") || hasViolation(vs, "phantom-value") {
			t.Fatalf("legal read %q after indeterminate write flagged: %v", v, vs)
		}
	}
}

func TestCheckerFlagsPhantomValue(t *testing.T) {
	vs := checkH(
		Event{Session: "s", Kind: KindWrite, Op: "set", Path: "/x", Value: "v#1", Mzxid: 3, End: 1},
		Event{Session: "r", Kind: KindRead, Op: "get", Path: "/x", Value: "ghost", Mzxid: 4, End: 2},
	)
	if !hasViolation(vs, "phantom-value") {
		t.Fatalf("phantom value not flagged: %v", vs)
	}
}

func TestCheckerFlagsSameMzxidDifferentData(t *testing.T) {
	vs := checkH(
		Event{Session: "a", Kind: KindRead, Op: "get", Path: "/x", Value: "v1", Mzxid: 11, End: 1},
		Event{Session: "b", Kind: KindRead, Op: "get", Path: "/x", Value: "v2", Mzxid: 11, End: 2},
	)
	if !hasViolation(vs, "same-mzxid-different-data") {
		t.Fatalf("diverging data at one mzxid not flagged: %v", vs)
	}
	if !hasViolation(vs, "phantom-value") {
		// Both values also lack any producing write; sanity-check the
		// provenance pass sees through reads.
		t.Fatalf("expected phantom-value too: %v", vs)
	}
}

func TestCheckerFlagsStaleReadBeforeWatchDelivery(t *testing.T) {
	// The watch for txid 20 fired at End=9, but the owner read state from
	// txid 25 at End=5 — newer state visible before its notification.
	vs := checkH(
		Event{Session: "w", Kind: KindWatchArm, Path: "/x", Mzxid: 10, WatchID: 77, End: 2},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 25, End: 5},
		Event{Session: "w", Kind: KindWatchFire, Path: "/x", Mzxid: 20, WatchID: 77, End: 9},
	)
	if !hasViolation(vs, "watch-stale-read") {
		t.Fatalf("stale read before watch delivery not flagged: %v", vs)
	}
}

func TestCheckerFlagsLostWatch(t *testing.T) {
	// Armed at mzxid 10, then two distinct newer states observed long
	// after, never a fire, session still open: the watch was dropped.
	vs := checkH(
		Event{Session: "w", Kind: KindWatchArm, Path: "/x", Mzxid: 10, WatchID: 77, End: sec(1)},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 14, End: sec(10)},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 19, End: sec(20)},
	)
	if !hasViolation(vs, "lost-watch") {
		t.Fatalf("lost watch not flagged: %v", vs)
	}
}

func TestCheckerLostWatchNeedsDistantEvidence(t *testing.T) {
	// The same observations within the in-flight window prove nothing: a
	// write already in the pipeline may legally miss a racing arm.
	vs := checkH(
		Event{Session: "w", Kind: KindWatchArm, Path: "/x", Mzxid: 10, WatchID: 77, End: sec(1)},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 14, End: sec(1) + 1},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 19, End: sec(1) + 2},
	)
	if hasViolation(vs, "lost-watch") {
		t.Fatalf("in-flight race misflagged as lost watch: %v", vs)
	}
	// And a delivered fire clears the arm entirely.
	vs = checkH(
		Event{Session: "w", Kind: KindWatchArm, Path: "/x", Mzxid: 10, WatchID: 77, End: sec(1)},
		Event{Session: "w", Kind: KindWatchFire, Path: "/x", Mzxid: 14, WatchID: 77, End: sec(2)},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 14, End: sec(10)},
		Event{Session: "w", Kind: KindRead, Op: "get", Path: "/x", Value: "", Mzxid: 19, End: sec(20)},
	)
	if hasViolation(vs, "lost-watch") {
		t.Fatalf("fired watch misflagged as lost: %v", vs)
	}
}
