package chaos

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var (
	flagSeed = flag.Int64("chaos.seed", -1,
		"replay one exact scenario seed instead of the matrix")
	flagSeeds = flag.Int("chaos.seeds", 4,
		"seeds per config in matrix mode")
	flagConfig = flag.String("chaos.config", "",
		"restrict to one config name (see Configs)")
	flagQuick = flag.Bool("chaos.quick", false,
		"smaller workloads for PR-gating smoke runs")
)

// matrixSeedBase spaces matrix seeds so every (seed index, config) cell is
// a distinct RNG stream; replay uses the reported seed directly.
const matrixSeedBase = 1000

func scenarioFor(seed int64, config string) Scenario {
	s := Scenario{
		Seed:   seed,
		Config: config,
		Faults: DefaultFaults(),
	}
	if *flagQuick {
		s.Clients = 3
		s.OpsPerClient = 12
	}
	return s
}

func runScenario(t *testing.T, s Scenario) {
	t.Helper()
	res := Run(s)
	if res.History.Len() == 0 {
		t.Fatalf("seed %d config %s recorded no events", s.Seed, s.Config)
	}
	if !res.Failed() {
		return
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	t.Errorf("seed %d config %s: %d violation(s); replay with: %s",
		s.Seed, s.Config, len(res.Violations), res.ReplayCmd())
	writeArtifacts(t, res)
}

// writeArtifacts dumps the failing run's history, fault schedule, and
// violations where CI can pick them up ($CHAOS_ARTIFACT_DIR, if set).
func writeArtifacts(t *testing.T, res *Result) {
	t.Helper()
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	base := fmt.Sprintf("chaos-%s-seed%d", res.Scenario.Config, res.Scenario.Seed)
	hf, err := os.Create(filepath.Join(dir, base+".history.jsonl"))
	if err == nil {
		_ = res.History.WriteJSONL(hf)
		hf.Close()
	}
	report := struct {
		Scenario   Scenario         `json:"scenario"`
		Replay     string           `json:"replay"`
		Violations []Violation      `json:"violations"`
		Faults     map[string]int64 `json:"fault_counts"`
		Schedule   []string         `json:"schedule"`
	}{res.Scenario, res.ReplayCmd(), res.Violations, res.FaultCounts, res.Schedule}
	if data, err := json.MarshalIndent(report, "", "  "); err == nil {
		_ = os.WriteFile(filepath.Join(dir, base+".report.json"), data, 0o644)
	}
	t.Logf("artifacts written under %s/%s.*", dir, base)
}

// TestChaos is the seed-matrix entry point: N seeds per deployment config
// under the standing fault schedule, or — with -chaos.seed — one exact
// replay of a reported failure.
func TestChaos(t *testing.T) {
	configs := Configs()
	if *flagConfig != "" {
		if _, ok := DeployConfig(*flagConfig); !ok {
			t.Fatalf("unknown -chaos.config %q (have %s)",
				*flagConfig, strings.Join(Configs(), ", "))
		}
		configs = []string{*flagConfig}
	}
	if *flagSeed >= 0 {
		for _, cfg := range configs {
			cfg := cfg
			t.Run(fmt.Sprintf("%s/seed%d", cfg, *flagSeed), func(t *testing.T) {
				runScenario(t, scenarioFor(*flagSeed, cfg))
			})
		}
		return
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg, func(t *testing.T) {
			for i := 0; i < *flagSeeds; i++ {
				seed := matrixSeedBase*int64(i+1) + int64(len(cfg))
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					runScenario(t, scenarioFor(seed, cfg))
				})
			}
		})
	}
}

// TestChaosQuietControl runs the workload with every fault off: the
// harness and checker themselves must be clean before a failure under
// faults means anything.
func TestChaosQuietControl(t *testing.T) {
	for _, cfg := range Configs() {
		cfg := cfg
		t.Run(cfg, func(t *testing.T) {
			s := scenarioFor(42, cfg)
			s.Faults = Quiet()
			runScenario(t, s)
		})
	}
}

// TestChaosDeterministicReplay: the same (seed, config) must produce the
// same history and the same fault schedule, event for event — otherwise
// a reported failing seed cannot be debugged.
func TestChaosDeterministicReplay(t *testing.T) {
	cfg := "batching"
	if *flagQuick {
		cfg = "plain"
	}
	a := Run(scenarioFor(7, cfg))
	b := Run(scenarioFor(7, cfg))
	if a.History.Len() != b.History.Len() {
		t.Fatalf("replay diverged: %d events vs %d", a.History.Len(), b.History.Len())
	}
	for i := range a.History.Events {
		if !reflect.DeepEqual(a.History.Events[i], b.History.Events[i]) {
			t.Fatalf("replay diverged at event %d:\n  %+v\n  %+v",
				i, a.History.Events[i], b.History.Events[i])
		}
	}
	if !reflect.DeepEqual(a.FaultCounts, b.FaultCounts) {
		t.Fatalf("fault schedules diverged: %v vs %v", a.FaultCounts, b.FaultCounts)
	}
}

// TestChaosInjectsFaults guards against the harness silently running
// fault-free: under the default schedule at least crashes and duplicate
// deliveries must actually have been injected.
func TestChaosInjectsFaults(t *testing.T) {
	res := Run(scenarioFor(11, "plain"))
	var crashes, redelivers int64
	for kind, n := range res.FaultCounts {
		switch {
		case strings.HasPrefix(kind, "crash."):
			crashes += n
		case strings.HasPrefix(kind, "redeliver."):
			redelivers += n
		}
	}
	if crashes == 0 || redelivers == 0 {
		t.Fatalf("default schedule injected crashes=%d redelivers=%d; counts: %v",
			crashes, redelivers, res.FaultCounts)
	}
	if res.Failed() {
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
	}
}

// TestChaosFanoutWatchesExercised guards the fanout config against
// passing vacuously: the persistent and recursive watchers must have
// armed and actually received deliveries, so the coverage rule judged a
// non-empty fire set.
func TestChaosFanoutWatchesExercised(t *testing.T) {
	res := Run(scenarioFor(11, "fanout"))
	if res.Failed() {
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
	}
	arms := map[string]int{}
	firesBy := map[string]int{}
	for _, e := range res.History.Events {
		if !e.Persistent {
			continue
		}
		switch e.Kind {
		case KindWatchArm:
			if e.Err == "" {
				arms[e.Session]++
			}
		case KindWatchFire:
			firesBy[e.Session]++
		}
	}
	for _, id := range []string{"pwatch", "rwatch"} {
		if arms[id] != 1 {
			t.Errorf("%s: want 1 successful persistent arm, got %d", id, arms[id])
		}
		if firesBy[id] == 0 {
			t.Errorf("%s: persistent watch armed but never delivered", id)
		}
	}
}
