package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Violation is one invariant breach found in a history.
type Violation struct {
	Invariant string `json:"invariant"`
	Session   string `json:"session,omitempty"`
	Path      string `json:"path,omitempty"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] session=%s path=%s: %s", v.Invariant, v.Session, v.Path, v.Detail)
}

// CheckOpts parameterizes the checker with the workload's structure: which
// path pairs are written atomically, which paths have a single owning
// writer, and which sessions were still alive when the history ended.
type CheckOpts struct {
	// SwapPairs lists [a, b] path pairs a multi() always sets to the same
	// value "...#k" with k strictly increasing, applied in (a, b) order. A
	// reader that reads b then a must never see a's counter behind b's —
	// the reverse-order probe that exposes torn multi() commits.
	SwapPairs [][2]string

	// PrivatePrefix marks single-writer paths: only the session named in
	// the path writes them, so read-your-writes is checked exactly.
	PrivatePrefix string

	// OpenSessions are sessions still connected at the end of the run —
	// the only ones whose armed-but-never-fired watches can be judged.
	OpenSessions map[string]bool

	// LostWatchGap is how long after an arm a read must complete to count
	// as lost-watch evidence: a write already in the leader pipeline when
	// the registration landed may legally miss it, so only changes
	// observed well past any in-flight latency prove the watch was
	// dropped. 0 means 5s (virtual).
	LostWatchGap int64
}

// writeStatus accumulates how a (path, value) write concluded across the
// history: committed, indeterminate, or definitely-failed.
type writeStatus struct{ ok, indet bool }

type spKey struct{ session, path string }

// Check validates a history against the linearizability-style invariants
// of the client API: per-session per-path mzxid monotonicity, write-ack
// txid ordering, value provenance (a read never returns data no
// non-failed write produced), a single data value per mzxid, strict
// read-your-writes on single-writer paths, reverse-order multi()
// atomicity, and watch ordering (no stale read before a delivered
// notification, no silently lost watch). It returns every violation
// found; an empty slice is a clean history.
func Check(h *History, opts CheckOpts) []Violation {
	if opts.PrivatePrefix == "" {
		opts.PrivatePrefix = "/p-"
	}
	if opts.LostWatchGap == 0 {
		opts.LostWatchGap = int64(5 * time.Second)
	}
	var out []Violation
	add := func(inv, session, path, format string, args ...any) {
		out = append(out, Violation{
			Invariant: inv, Session: session, Path: path,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// ---- Pass 1: value provenance and mzxid->value maps over the whole
	// history (reads anywhere may observe writes from any session).
	prov := map[string]map[string]*writeStatus{} // path -> value -> status
	note := func(path, value string, ok, indet bool) {
		m := prov[path]
		if m == nil {
			m = map[string]*writeStatus{}
			prov[path] = m
		}
		st := m[value]
		if st == nil {
			st = &writeStatus{}
			m[value] = st
		}
		st.ok = st.ok || ok
		st.indet = st.indet || indet
	}
	mzval := map[string]map[int64]string{}  // path -> mzxid -> value
	setAcks := map[string]map[int64]int64{} // path -> acked set txid -> ack end time
	ackSet := func(path string, txid, end int64) {
		if txid <= 0 {
			return
		}
		m := setAcks[path]
		if m == nil {
			m = map[int64]int64{}
			setAcks[path] = m
		}
		if end > m[txid] {
			m[txid] = end
		}
	}
	flaggedMz := map[string]bool{}
	noteMz := func(session, path string, mzxid int64, value string) {
		if mzxid <= 0 {
			return
		}
		m := mzval[path]
		if m == nil {
			m = map[int64]string{}
			mzval[path] = m
		}
		if v, ok := m[mzxid]; ok {
			if v != value {
				k := fmt.Sprintf("%s@%d", path, mzxid)
				if !flaggedMz[k] {
					flaggedMz[k] = true
					add("same-mzxid-different-data", session, path,
						"mzxid %d observed as %q and %q", mzxid, v, value)
				}
			}
			return
		}
		m[mzxid] = value
	}

	for _, e := range h.Events {
		switch e.Kind {
		case KindWrite:
			if e.Op != "create" && e.Op != "set" {
				continue
			}
			note(e.Path, e.Value, e.Err == "", e.Err != "" && !e.Definite)
			if e.Err == "" && e.Op == "set" {
				noteMz(e.Session, e.Path, e.Mzxid, e.Value)
				ackSet(e.Path, e.Mzxid, int64(e.End))
			}
		case KindMulti:
			for _, op := range e.Ops {
				if op.Op != "create" && op.Op != "set" {
					continue
				}
				switch {
				case op.Code == "ok" && e.Err == "":
					note(op.Path, op.Value, true, false)
					if op.Op == "set" {
						noteMz(e.Session, op.Path, op.Txid, op.Value)
						ackSet(op.Path, op.Txid, int64(e.End))
					}
				case e.Err != "" && !e.Definite:
					note(op.Path, op.Value, false, true)
				default:
					// Definite rollback: the value must never be read.
					note(op.Path, op.Value, false, false)
				}
			}
		case KindRead:
			if e.Err == "" {
				noteMz(e.Session, e.Path, e.Mzxid, e.Value)
			}
		}
	}

	// ---- Pass 2: per-(session, path) ordering chains, read-your-writes,
	// swap-pair counters, and watch pairing — one ordered sweep.
	lastObs := map[spKey]int64{}       // newest mzxid observed by session on path
	lastWrite := map[spKey]int64{}     // newest own write-ack txid
	ryw := map[spKey]map[string]bool{} // acceptable values on private paths

	pairOfB := map[string]int{}
	pairOfA := map[string]int{}
	for i, p := range opts.SwapPairs {
		pairOfA[p[0]] = i
		pairOfB[p[1]] = i
	}
	lastB := map[string]map[int]int64{} // session -> pair -> counter read on b

	type armRec struct {
		r   int64 // mzxid of the arming read
		end int64 // when the arm completed
	}
	type fireRec struct {
		path    string
		t       int64 // notification txid
		armEnd  int64
		fireEnd int64
	}
	type swKey struct {
		session string
		wid     int64
	}
	pendingArm := map[swKey]armRec{}
	armPath := map[swKey]string{}
	// Persistent (fan-out tier) watches: arms are never consumed and fires
	// repeat, so they bypass the one-shot pairing above and are judged by
	// the coverage rule below.
	type pArmRec struct {
		path string
		rec  bool
		end  int64
	}
	type pFireRec struct {
		path string
		t    int64
	}
	pArms := map[swKey]pArmRec{}
	pFires := map[swKey][]pFireRec{}
	var fires []struct {
		session string
		f       fireRec
	}
	reads := map[spKey][]struct{ end, mzxid int64 }{} // successful reads

	obsUp := func(k spKey, m int64) {
		if m > lastObs[k] {
			lastObs[k] = m
		}
	}
	ackWrite := func(session, path string, txid int64) {
		if txid <= 0 {
			return
		}
		k := spKey{session, path}
		if prev := lastWrite[k]; prev > 0 && txid <= prev {
			add("write-txid-order", session, path,
				"write ack txid %d after %d", txid, prev)
		}
		lastWrite[k] = txid
		obsUp(k, txid)
	}
	rywWrite := func(session, path, value string, committed bool) {
		if !strings.HasPrefix(path, opts.PrivatePrefix) {
			return
		}
		k := spKey{session, path}
		if committed {
			ryw[k] = map[string]bool{value: true}
		} else {
			if ryw[k] == nil {
				ryw[k] = map[string]bool{}
			}
			ryw[k][value] = true
		}
	}

	for _, e := range h.Events {
		switch e.Kind {
		case KindWrite:
			if e.Err == "" {
				ackWrite(e.Session, e.Path, e.Mzxid)
				if e.Op == "create" || e.Op == "set" {
					rywWrite(e.Session, e.Path, e.Value, true)
				}
			} else if !e.Definite && (e.Op == "create" || e.Op == "set") {
				rywWrite(e.Session, e.Path, e.Value, false)
			}
		case KindMulti:
			for _, op := range e.Ops {
				if e.Err == "" && op.Code == "ok" {
					ackWrite(e.Session, op.Path, op.Txid)
				}
			}
		case KindRead:
			if e.Err != "" {
				continue
			}
			k := spKey{e.Session, e.Path}
			if e.Mzxid > 0 && e.Mzxid < lastObs[k] {
				add("mzxid-regression", e.Session, e.Path,
					"read mzxid %d after observing %d", e.Mzxid, lastObs[k])
			}
			obsUp(k, e.Mzxid)
			reads[k] = append(reads[k], struct{ end, mzxid int64 }{int64(e.End), e.Mzxid})

			// Provenance: the value must come from a write that was not a
			// definite failure ("" is the pre-write state of any node).
			if e.Value != "" {
				st := prov[e.Path][e.Value]
				if st == nil {
					add("phantom-value", e.Session, e.Path,
						"read %q which no recorded write produced", e.Value)
				} else if !st.ok && !st.indet {
					add("failed-write-visible", e.Session, e.Path,
						"read %q produced only by definitely-failed writes", e.Value)
				}
			}

			// Read-your-writes on single-writer paths.
			if strings.HasPrefix(e.Path, opts.PrivatePrefix) &&
				strings.Contains(e.Path, e.Session) {
				if acc := ryw[k]; acc != nil && !acc[e.Value] {
					add("read-your-writes", e.Session, e.Path,
						"read %q, acceptable %v", e.Value, keysOf(acc))
				}
			}

			// Swap pairs: reading b then a must never show a behind b.
			if pi, isB := pairOfB[e.Path]; isB {
				if kc, ok := swapCounter(e.Value); ok {
					m := lastB[e.Session]
					if m == nil {
						m = map[int]int64{}
						lastB[e.Session] = m
					}
					if kc > m[pi] {
						m[pi] = kc
					}
				}
			}
			if pi, isA := pairOfA[e.Path]; isA {
				if ka, ok := swapCounter(e.Value); ok {
					if kb, seen := lastB[e.Session][pi]; seen && ka < kb {
						add("multi-atomicity", e.Session, e.Path,
							"pair %v: read a=%d after b=%d (torn multi visible)",
							opts.SwapPairs[pi], ka, kb)
					}
				}
			}
		case KindWatchArm:
			if e.Err != "" {
				continue
			}
			k := swKey{e.Session, e.WatchID}
			if e.Persistent {
				pArms[k] = pArmRec{path: e.Path, rec: e.Recursive, end: int64(e.End)}
				continue
			}
			pendingArm[k] = armRec{r: e.Mzxid, end: int64(e.End)}
			armPath[k] = e.Path
		case KindWatchFire:
			k := swKey{e.Session, e.WatchID}
			if e.Persistent {
				// Deliveries do not enter the session's read-freshness
				// chain: the kick gate bounds, not forbids, a read running
				// ahead of a coalesced delivery.
				pFires[k] = append(pFires[k], pFireRec{path: e.Path, t: e.Mzxid})
				continue
			}
			if arm, ok := pendingArm[k]; ok {
				fires = append(fires, struct {
					session string
					f       fireRec
				}{e.Session, fireRec{path: e.Path, t: e.Mzxid, armEnd: arm.end, fireEnd: int64(e.End)}})
				delete(pendingArm, k)
			}
			obsUp(spKey{e.Session, e.Path}, e.Mzxid)
		}
	}

	// ---- Watch ordering: between arming and delivery, the owner must not
	// read state newer than the firing transaction (Z4's "notification
	// before the new state it announces").
	for _, fr := range fires {
		for _, r := range reads[spKey{fr.session, fr.f.path}] {
			if r.end >= fr.f.armEnd && r.end < fr.f.fireEnd && r.mzxid > fr.f.t {
				add("watch-stale-read", fr.session, fr.f.path,
					"read mzxid %d before delivery of watch txid %d", r.mzxid, fr.f.t)
			}
		}
	}

	// ---- Lost watches: an armed watch whose owner then observed two
	// distinct post-arm changes must have fired — the second change's
	// watch query provably ran after the registration landed.
	for k, arm := range pendingArm {
		if !opts.OpenSessions[k.session] {
			continue
		}
		path := armPath[k]
		distinct := map[int64]bool{}
		for _, r := range reads[spKey{k.session, path}] {
			if r.end > arm.end+opts.LostWatchGap && r.mzxid > arm.r {
				distinct[r.mzxid] = true
			}
		}
		if len(distinct) >= 2 {
			add("lost-watch", k.session, path,
				"watch %d armed at mzxid %d never fired despite %d observed changes",
				k.wid, arm.r, len(distinct))
		}
	}

	// ---- Persistent watch coverage: the fan-out node may coalesce
	// deliveries, but only ever below the delivered watermark — for every
	// covered path, the newest delivered fire txid must catch up with every
	// write acked well after the registration and well before history end.
	// Fires must also stay inside the watch's scope and never announce a
	// txid newer than any state the history observed on that path.
	histEnd := int64(0)
	for _, e := range h.Events {
		if int64(e.End) > histEnd {
			histEnd = int64(e.End)
		}
	}
	maxMz := map[string]int64{}
	for p, m := range mzval {
		for t := range m {
			if t > maxMz[p] {
				maxMz[p] = t
			}
		}
	}
	for k, arm := range pArms {
		covers := func(p string) bool {
			if arm.rec {
				return p == arm.path || strings.HasPrefix(p, arm.path+"/")
			}
			return p == arm.path
		}
		maxFire := map[string]int64{}
		for _, f := range pFires[k] {
			if !covers(f.path) {
				add("persistent-watch-scope", k.session, f.path,
					"delivery for a path outside watch root %s", arm.path)
				continue
			}
			if mm := maxMz[f.path]; mm > 0 && f.t > mm {
				add("phantom-notification", k.session, f.path,
					"delivered txid %d but newest observed mzxid is %d", f.t, mm)
			}
			if f.t > maxFire[f.path] {
				maxFire[f.path] = f.t
			}
		}
		if !opts.OpenSessions[k.session] {
			continue
		}
		for p, acks := range setAcks {
			if !covers(p) {
				continue
			}
			var want int64
			for t, end := range acks {
				// Writes still in the leader pipeline at registration may
				// legally miss the watch; writes acked at the very end may
				// not have had time to deliver before recording stopped.
				if end > arm.end+opts.LostWatchGap && end+opts.LostWatchGap < histEnd && t > want {
					want = t
				}
			}
			if want > maxFire[p] {
				add("persistent-watch-coverage", k.session, p,
					"write txid %d settled post-arm but newest delivered fire is %d (coalescing may only suppress below the delivered watermark)",
					want, maxFire[p])
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Invariant < out[j].Invariant })
	return out
}

// swapCounter parses the trailing "#k" counter of a swap-pair value.
func swapCounter(v string) (int64, bool) {
	i := strings.LastIndexByte(v, '#')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(v[i+1:], 10, 64)
	return n, err == nil
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
