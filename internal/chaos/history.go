package chaos

import (
	"encoding/json"
	"io"

	"faaskeeper/internal/sim"
)

// Event kinds recorded in a history.
const (
	KindWrite     = "write"      // single-op write ack (create/set/delete)
	KindRead      = "read"       // GetData / audit read
	KindMulti     = "multi"      // multi() with per-sub-op results
	KindWatchArm  = "watch-arm"  // one-shot data watch registered
	KindWatchFire = "watch-fire" // notification delivered to the session
)

// SubOp is one sub-operation's outcome inside a multi() event.
type SubOp struct {
	Op    string `json:"op"`
	Path  string `json:"path"`
	Value string `json:"value,omitempty"`
	Code  string `json:"code"`
	Txid  int64  `json:"txid,omitempty"`
}

// Event is one completed client-visible operation. Events are appended at
// completion time under the simulator's cooperative scheduling, so a
// history is totally ordered by End (equal timestamps keep completion
// order).
type Event struct {
	Session string   `json:"session"`
	Kind    string   `json:"kind"`
	Op      string   `json:"op,omitempty"` // create|set|delete|get
	Path    string   `json:"path"`
	Value   string   `json:"value,omitempty"`
	Mzxid   int64    `json:"mzxid,omitempty"` // observed mzxid / ack txid / fire txid / arm-read mzxid
	Start   sim.Time `json:"start_ns"`
	End     sim.Time `json:"end_ns"`
	Err     string   `json:"err,omitempty"`
	// Definite marks an error the validation pipeline produced before any
	// commit (no_node, bad_version, ...): the operation certainly did not
	// happen. Errors without it (system error, timeout) are indeterminate
	// — the write may still have committed behind the failure.
	Definite bool  `json:"definite,omitempty"`
	WatchID  int64 `json:"watch_id,omitempty"`
	// Persistent marks fan-out tier watch events (addWatch-style): arms
	// are never consumed and fires repeat, so the one-shot pairing rules
	// do not apply — the persistent coverage rule judges them instead.
	// Recursive additionally marks a subtree watch rooted at Path.
	Persistent bool    `json:"persistent,omitempty"`
	Recursive  bool    `json:"recursive,omitempty"`
	Ops        []SubOp `json:"ops,omitempty"`
}

// History is the recorded client-visible history of one scenario run.
type History struct {
	Events []Event
}

// Add appends one completed event.
func (h *History) Add(e Event) { h.Events = append(h.Events, e) }

// Len returns the number of recorded events.
func (h *History) Len() int { return len(h.Events) }

// WriteJSONL dumps the history one JSON event per line — the artifact a
// failing nightly run uploads next to its seed.
func (h *History) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range h.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
