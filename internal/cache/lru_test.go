package cache

import (
	"bytes"
	"testing"
)

func blob(n int) []byte { return bytes.Repeat([]byte("x"), n) }

// capFor returns a capacity that holds exactly n entries of the given
// payload size under single-letter keys.
func capFor(n, payloadB int) int { return n * (payloadB + 1 + entryOverheadB) }

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(capFor(3, 100))
	for _, k := range []string{"a", "b", "c"} {
		l.Put(k, Entry{Blob: blob(100)})
	}
	if l.Len() != 3 {
		t.Fatalf("expected 3 entries, got %d", l.Len())
	}
	// Touch "a": it becomes most recently used, so "b" is now oldest.
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a missing")
	}
	l.Put("d", Entry{Blob: blob(100)})
	if _, ok := l.Peek("b"); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := l.Peek(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if l.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", l.Evictions())
	}
	want := []string{"d", "a", "c"}
	got := l.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recency order = %v, want %v", got, want)
		}
	}
}

func TestLRUByteCapacityEnforced(t *testing.T) {
	capB := capFor(4, 50)
	l := NewLRU(capB)
	for i := 0; i < 20; i++ {
		l.Put(string(rune('a'+i)), Entry{Blob: blob(50)})
		if l.Bytes() > capB {
			t.Fatalf("bytes %d exceed capacity %d after insert %d", l.Bytes(), capB, i)
		}
	}
	if l.Len() != 4 {
		t.Errorf("expected 4 resident entries, got %d", l.Len())
	}
	// A larger replacement for an existing key re-accounts its size.
	l.Put("t", Entry{Blob: blob(50)})
	before := l.Bytes()
	l.Put("t", Entry{Blob: blob(60)})
	if l.Bytes() > capB {
		t.Errorf("bytes %d exceed capacity after in-place growth", l.Bytes())
	}
	if _, ok := l.Peek("t"); !ok {
		t.Error("replaced entry missing")
	}
	_ = before
}

func TestLRUOversizedEntryNotCached(t *testing.T) {
	l := NewLRU(256)
	l.Put("big", Entry{Blob: blob(1024)})
	if _, ok := l.Peek("big"); ok {
		t.Error("entry larger than the whole capacity must not be cached")
	}
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Errorf("cache should stay empty: len=%d bytes=%d", l.Len(), l.Bytes())
	}
	// An oversized replacement also removes the old resident copy rather
	// than leaving a stale one behind.
	l.Put("k", Entry{Blob: blob(64), Mzxid: 1})
	l.Put("k", Entry{Blob: blob(1024), Mzxid: 2})
	if _, ok := l.Peek("k"); ok {
		t.Error("stale small copy must not survive an oversized replacement")
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(1 << 10)
	l.Put("x", Entry{Blob: blob(10), Mzxid: 7})
	if !l.Remove("x") {
		t.Error("remove should report presence")
	}
	if l.Remove("x") {
		t.Error("second remove should report absence")
	}
	if l.Bytes() != 0 {
		t.Errorf("bytes not released: %d", l.Bytes())
	}
}
