// Package cache implements FaaSKeeper's read-path cache tier: a shared
// regional cache node (a Redis-like VM fronting the user store, as in the
// paper's FK/Redis ablation) plus a byte-accounted LRU reusable as the
// per-session client cache. Entries carry the node's marshaled blob — which
// embeds the epoch stamp the leader attached at write time — and its mzxid,
// so the client library can apply the exact Z3/Z4 guards the direct read
// path uses before serving a cached copy. Invalidation is push-based:
// the leader publishes per-path records (path, new mzxid, epoch union) on
// every user-store write, and the cache keeps a per-path mzxid floor so a
// stale fill racing an invalidation can never resurrect overwritten data.
package cache

import (
	"container/list"

	"faaskeeper/internal/sim"
)

// entryOverheadB approximates the per-entry bookkeeping bytes (list node,
// map slot, stamps) charged against the byte capacity on top of the blob.
const entryOverheadB = 64

// Entry is one cached node version.
type Entry struct {
	// Blob is the marshaled znode including the epoch stamp attached by
	// the leader at write time (znode.Marshal output).
	Blob []byte
	// Mzxid is the newest transaction reflected in the blob: the node's
	// modification txid, raised to its Pzxid for parent objects — a
	// child-list rebuild changes the stored object without touching the
	// node's own mzxid. Duplicated outside the blob so guard checks and
	// floor comparisons never need to unmarshal.
	Mzxid int64
	// FilledAt is the virtual time the entry was cached; client caches
	// use it to bound staleness (ZooKeeper's timeliness guarantee).
	FilledAt sim.Time
}

type lruItem struct {
	key   string
	entry Entry
	size  int
}

// LRU is a least-recently-used cache with byte-capacity accounting. It is
// not safe for OS-level concurrency, which is fine: all simulated processes
// are serialized by the sim kernel.
type LRU struct {
	capB      int
	bytes     int
	ll        *list.List // front = most recently used
	idx       map[string]*list.Element
	evictions int64
}

// NewLRU builds a cache holding at most capB bytes of entries.
func NewLRU(capB int) *LRU {
	if capB <= 0 {
		capB = 1 << 20
	}
	return &LRU{capB: capB, ll: list.New(), idx: map[string]*list.Element{}}
}

func entrySize(key string, e Entry) int {
	return len(e.Blob) + len(key) + entryOverheadB
}

// Get returns the entry for key and marks it most recently used.
func (l *LRU) Get(key string) (Entry, bool) {
	el, ok := l.idx[key]
	if !ok {
		return Entry{}, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Peek returns the entry without touching recency (tests and stats).
func (l *LRU) Peek(key string) (Entry, bool) {
	el, ok := l.idx[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*lruItem).entry, true
}

// Put inserts or replaces the entry for key, evicting least-recently-used
// entries until the byte capacity holds. An entry larger than the whole
// capacity is not cached at all.
func (l *LRU) Put(key string, e Entry) {
	size := entrySize(key, e)
	if size > l.capB {
		l.Remove(key)
		return
	}
	if el, ok := l.idx[key]; ok {
		it := el.Value.(*lruItem)
		l.bytes += size - it.size
		it.entry, it.size = e, size
		l.ll.MoveToFront(el)
	} else {
		l.idx[key] = l.ll.PushFront(&lruItem{key: key, entry: e, size: size})
		l.bytes += size
	}
	for l.bytes > l.capB {
		l.evictOldest()
	}
}

// Remove drops the entry for key, reporting whether it was present.
func (l *LRU) Remove(key string) bool {
	el, ok := l.idx[key]
	if !ok {
		return false
	}
	l.drop(el)
	return true
}

func (l *LRU) evictOldest() {
	el := l.ll.Back()
	if el == nil {
		return
	}
	l.drop(el)
	l.evictions++
}

func (l *LRU) drop(el *list.Element) {
	it := el.Value.(*lruItem)
	l.ll.Remove(el)
	delete(l.idx, it.key)
	l.bytes -= it.size
}

// Len returns the number of cached entries.
func (l *LRU) Len() int { return l.ll.Len() }

// Bytes returns the accounted size of all cached entries.
func (l *LRU) Bytes() int { return l.bytes }

// CapacityB returns the configured byte capacity.
func (l *LRU) CapacityB() int { return l.capB }

// Evictions returns how many entries capacity pressure has pushed out.
func (l *LRU) Evictions() int64 { return l.evictions }

// Keys returns the cached keys from most to least recently used (tests).
func (l *LRU) Keys() []string {
	keys := make([]string, 0, l.ll.Len())
	for el := l.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruItem).key)
	}
	return keys
}
