package cache

import (
	"fmt"
	"testing"

	"faaskeeper/internal/cloud"
	"faaskeeper/internal/sim"
)

// withRegional runs fn as a sim process against a fresh regional cache.
func withRegional(t *testing.T, capB int, fn func(k *sim.Kernel, ctx cloud.Ctx, r *Regional)) {
	t.Helper()
	k := sim.NewKernel(11)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	r := NewRegional(env, cloud.RegionAWSHome, capB)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	k.Go("test", func() { fn(k, ctx, r) })
	k.Run()
	k.Shutdown()
}

func TestRegionalFillLookupInvalidate(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		if _, _, ok := r.Lookup(ctx, "/a"); ok {
			t.Error("empty cache should miss")
		}
		if !r.Fill(ctx, "/a", blob(64), 10) {
			t.Fatal("first fill rejected")
		}
		b, mzxid, ok := r.Lookup(ctx, "/a")
		if !ok || mzxid != 10 || len(b) != 64 {
			t.Fatalf("lookup after fill: ok=%v mzxid=%d len=%d", ok, mzxid, len(b))
		}
		r.Invalidate(ctx, Invalidation{Path: "/a", Mzxid: 20, Epoch: []int64{5, 6}})
		if _, _, ok := r.Lookup(ctx, "/a"); ok {
			t.Error("invalidated entry still served")
		}
		floor, epoch := r.Floor("/a")
		if floor != 20 || len(epoch) != 2 {
			t.Errorf("floor = %d epoch %v, want 20 [5 6]", floor, epoch)
		}
		st := r.Stats()
		if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
			t.Errorf("stats off: %+v", st)
		}
	})
}

func TestRegionalStaleFillRejectedByFloor(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		// The overwrite's invalidation lands before a reader — who
		// fetched the pre-overwrite value from the store — tries to fill.
		r.Invalidate(ctx, Invalidation{Path: "/n", Mzxid: 50})
		if r.Fill(ctx, "/n", blob(32), 40) {
			t.Error("fill below the invalidation floor must be rejected")
		}
		if _, _, ok := r.Lookup(ctx, "/n"); ok {
			t.Error("rejected fill must not be readable")
		}
		// The post-overwrite value passes.
		if !r.Fill(ctx, "/n", blob(32), 50) {
			t.Error("fill at the floor must be accepted")
		}
		if r.Stats().RejectedFills != 1 {
			t.Errorf("rejected fills = %d, want 1", r.Stats().RejectedFills)
		}
	})
}

func TestRegionalOlderFillLosesToNewerEntry(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		if !r.Fill(ctx, "/r", blob(16), 100) {
			t.Fatal("fill rejected")
		}
		// A late fill of an older version loses.
		if r.Fill(ctx, "/r", blob(16), 90) {
			t.Error("older fill must not replace a newer entry")
		}
		if _, mzxid, ok := r.Lookup(ctx, "/r"); !ok || mzxid != 100 {
			t.Errorf("newer entry lost to an older fill: ok=%v mzxid=%d", ok, mzxid)
		}
	})
}

// TestRegionalSharedRootOutOfOrderInvalidation pins the shared-root race:
// two shard leaders rebuild the root under the lock in the opposite of
// txid order, so two DIFFERENT root contents share one freshness value
// (pzxid only rises). The second rebuild's lower-txid invalidation must
// still fence the first rebuild's cached copy — and any in-flight fill of
// it — even though mzxid comparison cannot tell the versions apart.
func TestRegionalSharedRootOutOfOrderInvalidation(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		const txC, txD = 7, 10 // shard B commits C, shard A commits D first
		// Shard A's rebuild (txid D) lands first: invalidate, write, and a
		// reader caches the root at freshness D — without shard B's child.
		r.Invalidate(ctx, Invalidation{Path: "/", Mzxid: txD})
		if !r.Fill(ctx, "/", blob(20), txD) {
			t.Fatal("fill of the first rebuild rejected")
		}
		// Shard B's rebuild (txid C < D) runs second: its content
		// supersedes the cached copy, its freshness is still D.
		r.Invalidate(ctx, Invalidation{Path: "/", Mzxid: txC})
		if _, _, ok := r.Lookup(ctx, "/"); ok {
			t.Error("superseded root copy survived the out-of-order invalidation")
		}
		// A delayed fill of the pre-rebuild value (same freshness D) must
		// be fenced too.
		if r.Fill(ctx, "/", blob(20), txD) {
			t.Error("in-flight fill of the superseded root must be rejected")
		}
		// The root regains cacheability at its next higher-txid change.
		r.Invalidate(ctx, Invalidation{Path: "/", Mzxid: txD + 5})
		if !r.Fill(ctx, "/", blob(20), txD+5) {
			t.Error("fill of a genuinely newer root rejected")
		}
	})
}

// TestFloorCompaction: overflowing the watermark map folds the older half
// into the global floor — the map stays bounded, folded paths stay fenced
// (over-missing, never stale), and recent paths keep exact floors.
func TestFloorCompaction(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		r.floorCap = 4
		const paths = 8
		for i := 0; i < paths; i++ {
			r.Invalidate(ctx, Invalidation{Path: fmt.Sprintf("/n%d", i), Mzxid: int64(100 + i)})
		}
		if len(r.floors) > r.floorCap {
			t.Errorf("floors map not bounded: %d > cap %d", len(r.floors), r.floorCap)
		}
		// A folded path is fenced at the global fold floor: a fill of the
		// version its invalidation superseded must still be rejected.
		if r.Fill(ctx, "/n0", blob(8), 99) {
			t.Error("stale fill slipped under a folded watermark")
		}
		// A recent path keeps its exact floor and accepts current fills.
		if f, _ := r.Floor(fmt.Sprintf("/n%d", paths-1)); f != int64(100+paths-1) {
			t.Errorf("recent floor = %d, want %d", f, 100+paths-1)
		}
		if !r.Fill(ctx, fmt.Sprintf("/n%d", paths-1), blob(8), int64(100+paths-1)) {
			t.Error("current fill of a recent path rejected")
		}
		// Writes newer than the fold point restore cacheability of folded
		// paths.
		if !r.Fill(ctx, "/n0", blob(8), 500) {
			t.Error("genuinely newer fill of a folded path rejected")
		}
	})
}

// TestInvalidationOrderingUnderConcurrentShardWrites models two shard
// leaders racing their distribution phases: each publishes invalidations
// for its own paths in its shard's txid order while readers keep
// re-filling stale copies. Whatever the interleaving, every path's floor
// must end at its newest invalidation and no entry below the floor may
// survive.
func TestInvalidationOrderingUnderConcurrentShardWrites(t *testing.T) {
	k := sim.NewKernel(23)
	env := cloud.NewEnv(k, cloud.AWSProfile())
	r := NewRegional(env, cloud.RegionAWSHome, 1<<20)
	ctx := cloud.ClientCtx(cloud.RegionAWSHome)
	const nShards, writesPerShard = 2, 8
	newest := map[string]int64{}
	wg := sim.NewWaitGroup(k)
	for shard := 0; shard < nShards; shard++ {
		shard := shard
		path := fmt.Sprintf("/shard%d/node", shard)
		// Shard-encoded txids as the write pipeline mints them:
		// seqNo*nShards + shard, strictly increasing within the shard.
		for seq := int64(1); seq <= writesPerShard; seq++ {
			txid := seq*nShards + int64(shard)
			if txid > newest[path] {
				newest[path] = txid
			}
		}
		wg.Add(1)
		k.Go(fmt.Sprintf("leader-%d", shard), func() {
			defer wg.Done()
			for seq := int64(1); seq <= writesPerShard; seq++ {
				txid := seq*nShards + int64(shard)
				r.Invalidate(ctx, Invalidation{Path: path, Mzxid: txid, Epoch: []int64{txid}})
				// A racing reader re-fills the version this write just
				// overwrote; the floor must reject it.
				r.Fill(ctx, path, blob(24), txid-int64(nShards))
				k.Sleep(sim.Ms(1))
			}
		})
	}
	ok := false
	k.Go("verify", func() {
		wg.Wait()
		for path, want := range newest {
			floor, epoch := r.Floor(path)
			if floor != want {
				t.Errorf("%s floor = %d, want %d", path, floor, want)
			}
			if len(epoch) != 1 || epoch[0] != want {
				t.Errorf("%s floor epoch = %v, want [%d]", path, epoch, want)
			}
			if e, present := r.lru.Peek(path); present && e.Mzxid < floor {
				t.Errorf("%s: stale entry (mzxid %d) survived below floor %d", path, e.Mzxid, floor)
			}
		}
		if r.Stats().RejectedFills == 0 {
			t.Error("the racing stale fills should have been rejected")
		}
		ok = true
	})
	k.Run()
	k.Shutdown()
	if !ok {
		t.Fatal("verification did not run")
	}
}

func TestInvalidateBatchCoalesces(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		for i, p := range []string{"/a", "/b", "/c"} {
			if !r.Fill(ctx, p, blob(64), int64(10+i)) {
				t.Fatalf("fill %s rejected", p)
			}
		}
		// One multi-path record: every path's floor raised, every fenced
		// entry dropped, but only ONE cache-node write paid.
		writesBefore := k.Now()
		r.InvalidateBatch(ctx, []Invalidation{
			{Path: "/a", Mzxid: 20, Epoch: []int64{5}},
			{Path: "/b", Mzxid: 30, Epoch: []int64{5}},
		})
		batchDur := k.Now() - writesBefore
		for _, c := range []struct {
			path  string
			floor int64
		}{{"/a", 20}, {"/b", 30}} {
			if f, _ := r.Floor(c.path); f != c.floor {
				t.Errorf("floor of %s = %d, want %d", c.path, f, c.floor)
			}
			if _, _, ok := r.Lookup(ctx, c.path); ok {
				t.Errorf("fenced entry %s still served", c.path)
			}
		}
		if _, _, ok := r.Lookup(ctx, "/c"); !ok {
			t.Error("untouched path /c evicted by the batch record")
		}
		if st := r.Stats(); st.Invalidations != 2 {
			t.Errorf("invalidation count = %d, want one per record entry", st.Invalidations)
		}
		// The coalesced record must be cheaper than two standalone
		// publishes (one base round trip instead of two).
		t0 := k.Now()
		r.Invalidate(ctx, Invalidation{Path: "/a", Mzxid: 40, Epoch: []int64{5}})
		r.Invalidate(ctx, Invalidation{Path: "/b", Mzxid: 50, Epoch: []int64{5}})
		if single := k.Now() - t0; batchDur >= single {
			t.Errorf("batch record took %v, two standalone records %v", batchDur, single)
		}
	})
}

func TestInvalidateBatchEmptyIsFree(t *testing.T) {
	withRegional(t, 1<<20, func(k *sim.Kernel, ctx cloud.Ctx, r *Regional) {
		t0 := k.Now()
		r.InvalidateBatch(ctx, nil)
		if k.Now() != t0 {
			t.Error("empty batch paid a round trip")
		}
		if st := r.Stats(); st.Invalidations != 0 {
			t.Error("empty batch counted invalidations")
		}
	})
}
