package cache

// Wire codec for invalidation records (package wire). In the simulator
// invalidations travel as in-memory values and only their size feeds the
// latency model, so the gob-default path keeps the legacy fixed-width
// size formula byte-for-byte (the golden trace depends on it) while the
// binary codec bills the record's real varint-framed encoding — computed
// arithmetically, no encode on the hot path. EncodeInvalidation and
// DecodeInvalidation realize that exact format for tests and any future
// off-box cache transport.

import (
	"fmt"

	"faaskeeper/internal/wire"
)

const tagInvalidation byte = 0xD1

// SetWireCodec selects the invalidation size model (set once at
// deployment time).
func (r *Regional) SetWireCodec(c wire.Codec) { r.codec = c }

func (r *Regional) invSizeOf(inv Invalidation) int {
	if r.codec == wire.Gob {
		return invSize(inv)
	}
	return binaryInvSize(inv)
}

// binaryInvSize is len(EncodeInvalidation(inv)), computed without
// encoding.
func binaryInvSize(inv Invalidation) int {
	n := 1 + wire.UvarintLen(uint64(len(inv.Path))) + len(inv.Path) +
		wire.VarintLen(inv.Mzxid) +
		wire.UvarintLen(uint64(len(inv.Epoch))) +
		wire.VarintLen(inv.MapEpoch)
	for _, e := range inv.Epoch {
		n += wire.VarintLen(e)
	}
	return n
}

// EncodeInvalidation serializes one record in the binary wire format.
func EncodeInvalidation(inv Invalidation) []byte {
	e := wire.NewEncoder()
	e.Byte(tagInvalidation)
	e.String(inv.Path)
	e.Varint(inv.Mzxid)
	e.Int64s(inv.Epoch)
	e.Varint(inv.MapEpoch)
	b := e.Data()
	e.Detach()
	e.Release()
	return b
}

// DecodeInvalidation parses a record produced by EncodeInvalidation.
func DecodeInvalidation(b []byte) (Invalidation, error) {
	d := wire.NewDecoder(b)
	if d.Byte() != tagInvalidation {
		return Invalidation{}, fmt.Errorf("%w: invalidation tag", wire.ErrCorrupt)
	}
	inv := Invalidation{
		Path:     d.String(),
		Mzxid:    d.Varint(),
		Epoch:    d.Int64s(),
		MapEpoch: d.Varint(),
	}
	return inv, d.Err()
}
