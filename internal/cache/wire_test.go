package cache

import (
	"reflect"
	"testing"

	"faaskeeper/internal/wire"
)

func TestInvalidationRoundTrip(t *testing.T) {
	for _, inv := range []Invalidation{
		{},
		{Path: "/a/b", Mzxid: 42, Epoch: []int64{1, -2, 3}, MapEpoch: 9},
		{Path: "/x", Mzxid: -1},
	} {
		got, err := DecodeInvalidation(EncodeInvalidation(inv))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		want := inv
		if len(want.Epoch) == 0 {
			want.Epoch = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: %+v != %+v", got, want)
		}
	}
	if _, err := DecodeInvalidation([]byte{0x00}); err == nil {
		t.Error("bad tag accepted")
	}
}

// TestBinaryInvSizeExact pins the arithmetic size model to the real
// encoding: the latency bill under WireCodec "binary" must be the bytes
// a real transport would move, computed without encoding.
func TestBinaryInvSizeExact(t *testing.T) {
	for _, inv := range []Invalidation{
		{},
		{Path: "/a", Mzxid: 1},
		{Path: "/deep/long/path/with/segments", Mzxid: 1 << 40, Epoch: []int64{5, 6, 7, 1 << 50}, MapEpoch: 3},
		{Path: "/neg", Mzxid: -9, Epoch: []int64{-1}, MapEpoch: -2},
	} {
		if got, want := binaryInvSize(inv), len(EncodeInvalidation(inv)); got != want {
			t.Errorf("binaryInvSize(%+v) = %d, encoded len %d", inv, got, want)
		}
	}
}

// TestInvSizeModelSelection checks the codec switch: gob keeps the legacy
// fixed-width formula (the golden trace depends on it), binary bills the
// varint encoding.
func TestInvSizeModelSelection(t *testing.T) {
	inv := Invalidation{Path: "/a/b", Mzxid: 42, Epoch: []int64{1, 2}, MapEpoch: 7}
	var r Regional
	if got, want := r.invSizeOf(inv), invSize(inv); got != want {
		t.Errorf("gob size = %d, want legacy %d", got, want)
	}
	r.SetWireCodec(wire.Binary)
	if got, want := r.invSizeOf(inv), len(EncodeInvalidation(inv)); got != want {
		t.Errorf("binary size = %d, want %d", got, want)
	}
}

// FuzzInvalidationCodec round-trips fuzzed records and cross-checks the
// arithmetic size model against the real encoding.
func FuzzInvalidationCodec(f *testing.F) {
	f.Add("/a", int64(1), int64(2), int64(3), int64(4))
	f.Add("", int64(0), int64(-1), int64(1)<<62, int64(0))
	f.Fuzz(func(t *testing.T, path string, mzxid int64, e1 int64, e2 int64, mapEpoch int64) {
		inv := Invalidation{Path: path, Mzxid: mzxid, Epoch: []int64{e1, e2}, MapEpoch: mapEpoch}
		b := EncodeInvalidation(inv)
		if got, want := binaryInvSize(inv), len(b); got != want {
			t.Fatalf("size model %d != encoded %d", got, want)
		}
		got, err := DecodeInvalidation(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, inv) {
			t.Fatalf("round trip: %+v != %+v", got, inv)
		}
	})
}
